examples/calendar_scheduling.ml: List Printf Quantum Relational String Workload

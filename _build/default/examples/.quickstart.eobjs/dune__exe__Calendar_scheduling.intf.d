examples/calendar_scheduling.mli:

examples/entangled_travel.ml: Printf Quantum Workload

examples/entangled_travel.mli:

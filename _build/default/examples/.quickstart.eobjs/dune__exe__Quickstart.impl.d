examples/quickstart.ml: Format List Printf Quantum Relational Workload

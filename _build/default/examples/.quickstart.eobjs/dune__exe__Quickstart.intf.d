examples/quickstart.mli:

examples/recovery_demo.ml: Printf Quantum Relational Workload

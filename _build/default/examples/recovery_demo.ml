(* Durability of the quantum state (paper Section 4, "Recovery").

   Run with:  dune exec examples/recovery_demo.exe

   Pending resource transactions are serialized into the
   __pending_xacts table before their commit is acknowledged, so a crash
   loses nothing: the rebuilt engine holds the same pending set, keeps
   the nonempty-worlds invariant, and still honours entanglement. *)

module Qdb = Quantum.Qdb
module Wal = Relational.Wal
module Flights = Workload.Flights
module Travel = Workload.Travel

let () =
  (* The WAL backend survives the "machine"; everything else is volatile. *)
  let backend = Wal.mem_backend () in
  let geometry = { Flights.flights = 1; rows_per_flight = 3; dest = "LA" } in
  let store = Flights.fresh_store ~backend geometry in
  let qdb = Qdb.create store in

  print_endline "Before the crash:";
  let mickey = { Travel.name = "Mickey"; partner = "Goofy"; flight = 0 } in
  ignore (Qdb.submit qdb (Travel.entangled_txn mickey));
  ignore (Qdb.submit qdb (Travel.plain_txn { Travel.name = "Donald"; partner = "-"; flight = 0 }));
  (* Donald checks in: his booking is grounded and hits the WAL. *)
  ignore (Qdb.read qdb (Travel.seat_query { Travel.name = "Donald"; partner = "-"; flight = 0 }));
  Printf.printf "  pending: %d (Mickey, waiting for Goofy)\n" (Qdb.pending_count qdb);
  Printf.printf "  Donald's seat (grounded, durable): %s\n"
    (match Flights.booking_of (Qdb.db qdb) "Donald" with
     | Some (f, s) -> Printf.sprintf "flight %d seat %d" f s
     | None -> "none!");

  print_endline "\n*** CRASH ***  (all in-memory state dropped)\n";

  let qdb' = Qdb.recover backend in
  print_endline "After recovery from the write-ahead log:";
  Printf.printf "  pending: %d\n" (Qdb.pending_count qdb');
  Printf.printf "  invariant holds: %b\n" (Qdb.invariant_holds qdb');
  Printf.printf "  Donald still booked: %b\n" (Flights.booking_of (Qdb.db qdb') "Donald" <> None);

  print_endline "\nGoofy finally books — the recovered engine still grounds the pair together:";
  let goofy = { Travel.name = "Goofy"; partner = "Mickey"; flight = 0 } in
  ignore (Qdb.submit qdb' (Travel.entangled_txn goofy));
  (match Flights.booking_of (Qdb.db qdb') "Mickey", Flights.booking_of (Qdb.db qdb') "Goofy" with
   | Some (_, sm), Some (_, sg) ->
     Printf.printf "  Mickey seat %d, Goofy seat %d — adjacent: %b\n" sm sg
       (Flights.seats_adjacent (Qdb.db qdb') sm sg)
   | _ -> failwith "the entangled pair should be booked");
  ignore (Qdb.ground_all qdb');
  Printf.printf "  pending after grounding everything: %d\n" (Qdb.pending_count qdb')

lib/core/compose.ml: Array Atom Formula Fun List Logic Relational Rtxn String Unify

lib/core/compose.mli: Logic Relational Rtxn

lib/core/datalog_parser.ml: Atom Buffer Format Formula Hashtbl List Logic Printf Relational Rtxn Solver String Term

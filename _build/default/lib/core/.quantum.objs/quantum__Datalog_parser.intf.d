lib/core/datalog_parser.mli: Rtxn Solver

lib/core/metrics.ml: Format Fun Solver Unix

lib/core/metrics.mli: Format Solver

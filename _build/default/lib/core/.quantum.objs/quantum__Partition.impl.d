lib/core/partition.ml: Compose Formula Int List Logic Option Rtxn Solver Subst Term Unify

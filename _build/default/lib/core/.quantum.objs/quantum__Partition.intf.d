lib/core/partition.mli: Compose Logic Rtxn Solver

lib/core/qdb.ml: Array Atom Compose Float Format Formula Hashtbl List Logic Logs Metrics Option Partition Printf Relational Rtxn Sat Solver String Subst Term Unify

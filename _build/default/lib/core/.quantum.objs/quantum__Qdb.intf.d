lib/core/qdb.mli: Logic Metrics Relational Rtxn Solver

lib/core/rtxn.ml: Array Atom Format Formula Hashtbl List Logic Relational Subst Term

lib/core/rtxn.mli: Format Logic Relational

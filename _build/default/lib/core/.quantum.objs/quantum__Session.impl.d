lib/core/session.ml: Array Fun Hashtbl List Mutex Printf Qdb Queue Relational Rtxn

lib/core/session.mli: Qdb Relational Rtxn Solver

lib/core/sql_parser.ml: Array Atom Buffer Either Format Formula Hashtbl List Logic Printf Relational Rtxn String Term

lib/core/sql_parser.mli: Relational Rtxn

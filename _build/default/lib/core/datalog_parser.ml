(* Parser for the paper's Datalog-like intermediate representation
   (Section 2).  The concrete grammar:

     txn        ::= updates ":-1" body "."?
                  | ":-1" body "."?            (pure CHOOSE, no updates)
     updates    ::= update ("," update)*
     update     ::= "+" atom | "-" atom
     body       ::= item ("," item)*
     item       ::= "?" atom                   optional (underlined) atom
                  | atom                       hard atom
                  | "?" "{" constraints "}"    optional constraint group
                  | constraint                 hard (dis)equality
     constraint ::= term ("=" | "<>" | "!=") term
     atom       ::= IDENT "(" term ("," term)* ")"
     term       ::= INT | STRING | "true" | "false"
                  | lowercase IDENT            variable
                  | uppercase IDENT            string constant (paper's M, G)

     query      ::= "(" term ("," term)* ")" ":-" body "."?

   Identifiers starting with a lowercase letter are variables; capitalised
   bare identifiers abbreviate string constants exactly as the paper's
   examples abbreviate 'Mickey' to M. *)

module Value = Relational.Value
open Logic

exception Syntax_error of string

let syntax_error fmt = Format.kasprintf (fun msg -> raise (Syntax_error msg)) fmt

(* -- Lexer ---------------------------------------------------------------- *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | PLUS
  | MINUS
  | QUESTION
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | TURNSTILE_ONE (* ":-1" *)
  | TURNSTILE (* ":-" *)
  | DOT
  | EOF

let token_to_string = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | PLUS -> "+"
  | MINUS -> "-"
  | QUESTION -> "?"
  | EQ -> "="
  | NEQ -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | TURNSTILE_ONE -> ":-1"
  | TURNSTILE -> ":-"
  | DOT -> "."
  | EOF -> "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit tok = tokens := tok :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '%' then begin
      (* comment to end of line *)
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      emit (INT (int_of_string (String.sub input start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      emit (IDENT (String.sub input start (!i - start)))
    end
    else if c = '\'' || c = '"' then begin
      let quote = c in
      incr i;
      let buf = Buffer.create 16 in
      while !i < n && input.[!i] <> quote do
        Buffer.add_char buf input.[!i];
        incr i
      done;
      if !i >= n then syntax_error "unterminated string literal";
      incr i;
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      let three = if !i + 2 < n then String.sub input !i 3 else "" in
      if three = ":-1" then begin
        emit TURNSTILE_ONE;
        i := !i + 3
      end
      else if two = ":-" then begin
        emit TURNSTILE;
        i := !i + 2
      end
      else if two = "<>" || two = "!=" then begin
        emit NEQ;
        i := !i + 2
      end
      else if two = "<=" then begin
        emit LE;
        i := !i + 2
      end
      else if two = ">=" then begin
        emit GE;
        i := !i + 2
      end
      else begin
        (match c with
         | '(' -> emit LPAREN
         | ')' -> emit RPAREN
         | '{' -> emit LBRACE
         | '}' -> emit RBRACE
         | ',' -> emit COMMA
         | '+' -> emit PLUS
         | '-' -> emit MINUS
         | '?' -> emit QUESTION
         | '=' -> emit EQ
         | '<' -> emit LT
         | '>' -> emit GT
         | '.' -> emit DOT
         | c -> syntax_error "unexpected character '%c'" c);
        incr i
      end
    end
  done;
  List.rev (EOF :: !tokens)

(* -- Parser --------------------------------------------------------------- *)

type state = {
  mutable toks : token list;
  (* variables are shared by name within one parse *)
  vars : (string, Term.var) Hashtbl.t;
}

let peek st =
  match st.toks with
  | tok :: _ -> tok
  | [] -> EOF

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else syntax_error "expected %s, found %s" (token_to_string tok) (token_to_string (peek st))

let variable st name =
  match Hashtbl.find_opt st.vars name with
  | Some v -> v
  | None ->
    let v = Term.fresh_var name in
    Hashtbl.add st.vars name v;
    v

let parse_term st =
  match peek st with
  | INT n ->
    advance st;
    Term.int n
  | MINUS ->
    advance st;
    (match peek st with
     | INT n ->
       advance st;
       Term.int (-n)
     | tok -> syntax_error "expected integer after '-', found %s" (token_to_string tok))
  | STRING s ->
    advance st;
    Term.str s
  | IDENT "true" ->
    advance st;
    Term.bool true
  | IDENT "false" ->
    advance st;
    Term.bool false
  | IDENT name ->
    advance st;
    if name.[0] >= 'a' && name.[0] <= 'z' then Term.var (variable st name)
    else Term.str name (* capitalised bare identifier: string constant *)
  | tok -> syntax_error "expected a term, found %s" (token_to_string tok)

let parse_term_list st =
  expect st LPAREN;
  let rec items acc =
    let t = parse_term st in
    match peek st with
    | COMMA ->
      advance st;
      items (t :: acc)
    | RPAREN ->
      advance st;
      List.rev (t :: acc)
    | tok -> syntax_error "expected ',' or ')', found %s" (token_to_string tok)
  in
  items []

let parse_atom st =
  match peek st with
  | IDENT rel ->
    advance st;
    let args = parse_term_list st in
    Atom.make rel args
  | tok -> syntax_error "expected a relation name, found %s" (token_to_string tok)

(* An item is an atom when an identifier is followed by '('; otherwise a
   constraint starting with a term. *)
let item_is_atom = function
  | IDENT _ :: LPAREN :: _ -> true
  | _ -> false

let parse_constraint st =
  let lhs = parse_term st in
  match peek st with
  | EQ ->
    advance st;
    let rhs = parse_term st in
    Formula.eq lhs rhs
  | NEQ ->
    advance st;
    let rhs = parse_term st in
    Formula.neq lhs rhs
  | LT ->
    advance st;
    let rhs = parse_term st in
    Formula.lt lhs rhs
  | LE ->
    advance st;
    let rhs = parse_term st in
    Formula.le lhs rhs
  | GT ->
    advance st;
    let rhs = parse_term st in
    Formula.lt rhs lhs
  | GE ->
    advance st;
    let rhs = parse_term st in
    Formula.le rhs lhs
  | tok -> syntax_error "expected a comparison operator, found %s" (token_to_string tok)

type body = {
  hard : Atom.t list;
  optional : Atom.t list;
  constraints : Formula.t list;
  optional_constraints : Formula.t list;
}

let parse_body st =
  let hard = ref [] and optional = ref [] in
  let constraints = ref [] and optional_constraints = ref [] in
  let parse_item () =
    match peek st with
    | QUESTION ->
      advance st;
      (match peek st with
       | LBRACE ->
         advance st;
         let rec group () =
           optional_constraints := parse_constraint st :: !optional_constraints;
           match peek st with
           | COMMA ->
             advance st;
             group ()
           | RBRACE -> advance st
           | tok -> syntax_error "expected ',' or '}', found %s" (token_to_string tok)
         in
         group ()
       | _ -> optional := parse_atom st :: !optional)
    | _ ->
      if item_is_atom st.toks then hard := parse_atom st :: !hard
      else constraints := parse_constraint st :: !constraints
  in
  let rec items () =
    parse_item ();
    match peek st with
    | COMMA ->
      advance st;
      items ()
    | _ -> ()
  in
  items ();
  {
    hard = List.rev !hard;
    optional = List.rev !optional;
    constraints = List.rev !constraints;
    optional_constraints = List.rev !optional_constraints;
  }

let parse_updates st =
  let rec updates acc =
    let u =
      match peek st with
      | PLUS ->
        advance st;
        Rtxn.Ins (parse_atom st)
      | MINUS ->
        advance st;
        Rtxn.Del (parse_atom st)
      | tok -> syntax_error "expected '+' or '-', found %s" (token_to_string tok)
    in
    match peek st with
    | COMMA ->
      advance st;
      updates (u :: acc)
    | _ -> List.rev (u :: acc)
  in
  updates []

let finish st =
  if peek st = DOT then advance st;
  match peek st with
  | EOF -> ()
  | tok -> syntax_error "trailing input at %s" (token_to_string tok)

let parse_txn ?label ?trigger input =
  let st = { toks = tokenize input; vars = Hashtbl.create 8 } in
  let updates =
    match peek st with
    | TURNSTILE_ONE -> []
    | _ -> parse_updates st
  in
  expect st TURNSTILE_ONE;
  let body = parse_body st in
  finish st;
  Rtxn.make ?label ?trigger ~hard:body.hard ~optional:body.optional
    ~constraints:body.constraints ~optional_constraints:body.optional_constraints
    ~updates ()

let parse_query input =
  let st = { toks = tokenize input; vars = Hashtbl.create 8 } in
  let head = parse_term_list st in
  expect st TURNSTILE;
  let body = parse_body st in
  finish st;
  if body.optional <> [] || body.optional_constraints <> [] then
    syntax_error "read queries cannot contain optional items";
  Solver.Query.make ~constraints:body.constraints ~head ~body:body.hard ()

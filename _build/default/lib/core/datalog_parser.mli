(** Parser for the paper's Datalog-like intermediate representation.

    Example (Figure 1's transaction, with [?] marking OPTIONAL items):

    {[
      -Available(f1, s1), +Bookings(Mickey, f1, s1)
        :-1 Available(f1, s1), ?Bookings(Goofy, f1, s2), ?Adjacent(s1, s2)
    ]}

    Lowercase identifiers are variables, capitalised bare identifiers are
    string constants (the paper's M/G abbreviations), [%] starts a
    comment.  Read queries use [(head terms) :- body]. *)

exception Syntax_error of string

val parse_txn : ?label:string -> ?trigger:Rtxn.trigger -> string -> Rtxn.t
(** @raise Syntax_error on malformed input.
    @raise Rtxn.Ill_formed when the transaction violates range
    restriction. *)

val parse_query : string -> Solver.Query.t

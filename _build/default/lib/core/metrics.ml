(* Engine-level counters and wall-clock accumulators, the raw material of
   the experiment harness (Figures 5, 7, 8). *)

type t = {
  mutable submitted : int;
  mutable committed : int;
  mutable rejected : int;
  mutable grounded : int;
  mutable forced_groundings : int; (* k-pressure or read-induced *)
  mutable reads : int;
  mutable writes : int;
  mutable writes_rejected : int;
  mutable partition_merges : int;
  mutable time_submit : float; (* seconds *)
  mutable time_ground : float;
  mutable time_read : float;
  cache_stats : Solver.Cache.stats;
  solver_stats : Solver.Backtrack.stats;
}

let create () =
  {
    submitted = 0;
    committed = 0;
    rejected = 0;
    grounded = 0;
    forced_groundings = 0;
    reads = 0;
    writes = 0;
    writes_rejected = 0;
    partition_merges = 0;
    time_submit = 0.;
    time_ground = 0.;
    time_read = 0.;
    cache_stats = Solver.Cache.fresh_stats ();
    solver_stats = Solver.Backtrack.fresh_stats ();
  }

let timed accumulate f =
  let start = Unix.gettimeofday () in
  let finally () = accumulate (Unix.gettimeofday () -. start) in
  Fun.protect ~finally f

let pp fmt m =
  Format.fprintf fmt
    "@[<v>submitted=%d committed=%d rejected=%d grounded=%d forced=%d@,\
     reads=%d writes=%d writes_rejected=%d merges=%d@,\
     t_submit=%.3fs t_ground=%.3fs t_read=%.3fs@,\
     cache: ext=%d hit=%d full=%d inval=%d@,\
     solver: nodes=%d cand=%d back=%d@]"
    m.submitted m.committed m.rejected m.grounded m.forced_groundings m.reads m.writes
    m.writes_rejected m.partition_merges m.time_submit m.time_ground m.time_read
    m.cache_stats.Solver.Cache.extensions m.cache_stats.Solver.Cache.extension_hits
    m.cache_stats.Solver.Cache.full_solves m.cache_stats.Solver.Cache.invalidations
    m.solver_stats.Solver.Backtrack.nodes m.solver_stats.Solver.Backtrack.candidates
    m.solver_stats.Solver.Backtrack.backtracks

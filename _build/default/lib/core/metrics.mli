(** Engine-level counters and wall-clock accumulators — the raw material of
    the experiment harness (Figures 5, 7, 8). *)

type t = {
  mutable submitted : int;
  mutable committed : int;
  mutable rejected : int;
  mutable grounded : int;
  mutable forced_groundings : int;  (** k-pressure or read-induced *)
  mutable reads : int;
  mutable writes : int;
  mutable writes_rejected : int;
  mutable partition_merges : int;
  mutable time_submit : float;  (** seconds *)
  mutable time_ground : float;
  mutable time_read : float;
  cache_stats : Solver.Cache.stats;
  solver_stats : Solver.Backtrack.stats;
}

val create : unit -> t

val timed : (float -> unit) -> (unit -> 'a) -> 'a
(** [timed accumulate f] runs [f], passing its wall-clock duration to
    [accumulate] even when [f] raises. *)

val pp : Format.formatter -> t -> unit

(* Parser for the SQL-like resource-transaction surface of Figure 1:

     SELECT 'Mickey', F.fno AS @f, A1.seat AS @s
     FROM Flights F, Available A1, OPTIONAL Available A2, OPTIONAL Adjacent J
     WHERE OPTIONAL ('Goofy', A2.fno, A2.seat) IN Bookings
       AND F.dest = 'LA' AND A1.fno = F.fno
       AND J.s1 = A1.seat AND J.s2 = A2.seat
     CHOOSE 1
     FOLLOWED BY (
       DELETE (@f, @s) FROM Available;
       INSERT ('Mickey', @f, @s) INTO Bookings; )

   The paper's prototype accepted only the Datalog-like intermediate form;
   this module implements the full surface and lowers it to {!Rtxn}:

   - each FROM item becomes a relational atom with one fresh variable per
     column (the relation's schema decides the arity, so the parser takes
     a schema resolver);
   - [Alias.col] and unqualified-but-unambiguous [col] references resolve
     to those variables;
   - [AS @x] names a term for reuse in FOLLOWED BY;
   - OPTIONAL FROM items / conditions become the transaction's optional
     atoms / optional constraints;
   - [(... ) IN Rel] is atom membership (Figure 1's coordination idiom);
   - FOLLOWED BY holds the blind writes.

   Keywords are case-insensitive; string literals use single or double
   quotes. *)

module Value = Relational.Value
module Schema = Relational.Schema
open Logic

exception Syntax_error of string

let syntax_error fmt = Format.kasprintf (fun msg -> raise (Syntax_error msg)) fmt

(* -- Lexer ---------------------------------------------------------------- *)

type token =
  | IDENT of string (* original spelling *)
  | KEYWORD of string (* uppercased known keyword *)
  | AT_VAR of string (* @name *)
  | INT of int
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "OPTIONAL"; "AND"; "CHOOSE"; "FOLLOWED"; "BY"; "DELETE";
    "INSERT"; "INTO"; "IN"; "AS"; "TRUE"; "FALSE" ]

let token_to_string = function
  | IDENT s -> s
  | KEYWORD s -> s
  | AT_VAR s -> "@" ^ s
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "'%s'" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | SEMI -> ";"
  | EQ -> "="
  | NEQ -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit tok = tokens := tok :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '-' then begin
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      emit (INT (int_of_string (String.sub input start (!i - start))))
    end
    else if c = '-' && !i + 1 < n && is_digit input.[!i + 1] then begin
      incr i;
      let start = !i in
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      emit (INT (-int_of_string (String.sub input start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      let word = String.sub input start (!i - start) in
      let upper = String.uppercase_ascii word in
      if List.mem upper keywords then emit (KEYWORD upper) else emit (IDENT word)
    end
    else if c = '@' then begin
      incr i;
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      if !i = start then syntax_error "expected a name after '@'";
      emit (AT_VAR (String.sub input start (!i - start)))
    end
    else if c = '\'' || c = '"' then begin
      let quote = c in
      incr i;
      let buf = Buffer.create 16 in
      while !i < n && input.[!i] <> quote do
        Buffer.add_char buf input.[!i];
        incr i
      done;
      if !i >= n then syntax_error "unterminated string literal";
      incr i;
      emit (STRING (Buffer.contents buf))
    end
    else begin
      (match c with
       | '(' -> emit LPAREN
       | ')' -> emit RPAREN
       | ',' -> emit COMMA
       | '.' -> emit DOT
       | ';' -> emit SEMI
       | '=' -> emit EQ
       | '<' when !i + 1 < n && input.[!i + 1] = '>' ->
         incr i;
         emit NEQ
       | '!' when !i + 1 < n && input.[!i + 1] = '=' ->
         incr i;
         emit NEQ
       | '<' when !i + 1 < n && input.[!i + 1] = '=' ->
         incr i;
         emit LE
       | '>' when !i + 1 < n && input.[!i + 1] = '=' ->
         incr i;
         emit GE
       | '<' -> emit LT
       | '>' -> emit GT
       | c -> syntax_error "unexpected character '%c'" c);
      incr i
    end
  done;
  List.rev (EOF :: !tokens)

(* -- Parser state ----------------------------------------------------------- *)

type from_item = {
  rel : string;
  alias : string;
  vars : Term.var array; (* one per column *)
  fi_optional : bool;
}

type state = {
  mutable toks : token list;
  schema_of : string -> Schema.t option;
  mutable froms : from_item list;
  at_vars : (string, Term.t) Hashtbl.t; (* @x bindings from AS clauses *)
}

let peek st =
  match st.toks with
  | tok :: _ -> tok
  | [] -> EOF

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else syntax_error "expected %s, found %s" (token_to_string tok) (token_to_string (peek st))

let expect_kw st kw =
  match peek st with
  | KEYWORD k when k = kw -> advance st
  | tok -> syntax_error "expected %s, found %s" kw (token_to_string tok)

let schema st rel =
  match st.schema_of rel with
  | Some schema -> schema
  | None -> syntax_error "unknown relation %s" rel

(* Resolve [alias.col] or unambiguous bare [col] to a variable. *)
let column_var st ?alias col =
  let candidates =
    List.filter_map
      (fun fi ->
        let matches_alias =
          match alias with
          | Some a -> String.equal a fi.alias
          | None -> true
        in
        if not matches_alias then None
        else
          match Schema.column_index (schema st fi.rel) col with
          | Some idx -> Some fi.vars.(idx)
          | None -> None)
      st.froms
  in
  match candidates, alias with
  | [ v ], _ -> v
  | [], Some a -> syntax_error "no column %s in alias %s" col a
  | [], None -> syntax_error "no FROM item has a column %s" col
  | _ :: _ :: _, None -> syntax_error "ambiguous column %s; qualify it" col
  | _ :: _ :: _, Some a -> syntax_error "alias %s used more than once?" a

(* An operand: literal, @var, Alias.col, bare col, TRUE/FALSE. *)
let parse_operand st =
  match peek st with
  | INT n ->
    advance st;
    Term.int n
  | STRING s ->
    advance st;
    Term.str s
  | KEYWORD "TRUE" ->
    advance st;
    Term.bool true
  | KEYWORD "FALSE" ->
    advance st;
    Term.bool false
  | AT_VAR name ->
    advance st;
    (match Hashtbl.find_opt st.at_vars name with
     | Some t -> t
     | None -> syntax_error "@%s used before its AS binding" name)
  | IDENT first ->
    advance st;
    (match peek st with
     | DOT ->
       advance st;
       (match peek st with
        | IDENT col ->
          advance st;
          Term.V (column_var st ~alias:first col)
        | tok -> syntax_error "expected a column after '.', found %s" (token_to_string tok))
     | _ -> Term.V (column_var st first))
  | tok -> syntax_error "expected an operand, found %s" (token_to_string tok)

let parse_operand_list st =
  expect st LPAREN;
  let rec items acc =
    let t = parse_operand st in
    match peek st with
    | COMMA ->
      advance st;
      items (t :: acc)
    | RPAREN ->
      advance st;
      List.rev (t :: acc)
    | tok -> syntax_error "expected ',' or ')', found %s" (token_to_string tok)
  in
  items []

(* -- Clause parsers ---------------------------------------------------------- *)

(* SELECT list: operands, optionally bound with AS @x.  The list itself is
   presentation; only the AS bindings matter for FOLLOWED BY. *)
let parse_select st =
  expect_kw st "SELECT";
  let rec items () =
    let t = parse_operand st in
    (match peek st with
     | KEYWORD "AS" ->
       advance st;
       (match peek st with
        | AT_VAR name ->
          advance st;
          Hashtbl.replace st.at_vars name t
        | tok -> syntax_error "expected @name after AS, found %s" (token_to_string tok))
     | _ -> ());
    match peek st with
    | COMMA ->
      advance st;
      items ()
    | _ -> ()
  in
  items ()

let parse_from st =
  expect_kw st "FROM";
  let rec items () =
    let fi_optional =
      match peek st with
      | KEYWORD "OPTIONAL" ->
        advance st;
        true
      | _ -> false
    in
    (match peek st with
     | IDENT rel ->
       advance st;
       let alias =
         match peek st with
         | IDENT a ->
           advance st;
           a
         | _ -> rel
       in
       if List.exists (fun fi -> String.equal fi.alias alias) st.froms then
         syntax_error "duplicate alias %s" alias;
       let s = schema st rel in
       let vars =
         Array.map (fun name -> Term.fresh_var (alias ^ "." ^ name)) (Schema.column_names s)
       in
       st.froms <- st.froms @ [ { rel; alias; vars; fi_optional } ]
     | tok -> syntax_error "expected a relation name, found %s" (token_to_string tok));
    match peek st with
    | COMMA ->
      advance st;
      items ()
    | _ -> ()
  in
  items ()

type cond =
  | C_eq of Term.t * Term.t * bool (* optional? *)
  | C_neq of Term.t * Term.t * bool
  | C_cmp of Formula.t * bool (* Lt/Le leaf *)
  | C_in of Term.t list * string * bool

let parse_where st =
  match peek st with
  | KEYWORD "WHERE" ->
    advance st;
    let rec conds acc =
      let optional =
        match peek st with
        | KEYWORD "OPTIONAL" ->
          advance st;
          true
        | _ -> false
      in
      let cond =
        match peek st with
        | LPAREN ->
          let terms = parse_operand_list st in
          expect_kw st "IN";
          (match peek st with
           | IDENT rel ->
             advance st;
             C_in (terms, rel, optional)
           | tok -> syntax_error "expected a relation after IN, found %s" (token_to_string tok))
        | _ ->
          let lhs = parse_operand st in
          (match peek st with
           | EQ ->
             advance st;
             C_eq (lhs, parse_operand st, optional)
           | NEQ ->
             advance st;
             C_neq (lhs, parse_operand st, optional)
           | LT ->
             advance st;
             C_cmp (Formula.lt lhs (parse_operand st), optional)
           | LE ->
             advance st;
             C_cmp (Formula.le lhs (parse_operand st), optional)
           | GT ->
             advance st;
             C_cmp (Formula.lt (parse_operand st) lhs, optional)
           | GE ->
             advance st;
             C_cmp (Formula.le (parse_operand st) lhs, optional)
           | tok ->
             syntax_error "expected a comparison operator, found %s" (token_to_string tok))
      in
      match peek st with
      | KEYWORD "AND" ->
        advance st;
        conds (cond :: acc)
      | _ -> List.rev (cond :: acc)
    in
    conds []
  | _ -> []

let parse_followed_by st =
  expect_kw st "FOLLOWED";
  expect_kw st "BY";
  expect st LPAREN;
  let rec stmts acc =
    match peek st with
    | RPAREN ->
      advance st;
      List.rev acc
    | KEYWORD "DELETE" ->
      advance st;
      let terms = parse_operand_list st in
      expect_kw st "FROM";
      (match peek st with
       | IDENT rel ->
         advance st;
         let u = Rtxn.Del (Atom.make rel terms) in
         if peek st = SEMI then advance st;
         stmts (u :: acc)
       | tok -> syntax_error "expected a relation after FROM, found %s" (token_to_string tok))
    | KEYWORD "INSERT" ->
      advance st;
      let terms = parse_operand_list st in
      expect_kw st "INTO";
      (match peek st with
       | IDENT rel ->
         advance st;
         let u = Rtxn.Ins (Atom.make rel terms) in
         if peek st = SEMI then advance st;
         stmts (u :: acc)
       | tok -> syntax_error "expected a relation after INTO, found %s" (token_to_string tok))
    | tok -> syntax_error "expected DELETE, INSERT or ')', found %s" (token_to_string tok)
  in
  stmts []

(* -- Lowering ------------------------------------------------------------------ *)

let parse_txn ?(label = "sql-txn") ~schema_of input =
  let st = { toks = tokenize input; schema_of; froms = []; at_vars = Hashtbl.create 8 } in
  (* FROM must be scanned before SELECT's operands can resolve, but SELECT
     comes first textually: take two passes — skim to FROM, parse it, then
     rewind and parse normally. *)
  let all_tokens = st.toks in
  let rec skim = function
    | KEYWORD "FROM" :: _ as rest -> rest
    | _ :: rest -> skim rest
    | [] -> syntax_error "missing FROM clause"
  in
  st.toks <- skim all_tokens;
  parse_from st;
  let after_from = st.toks in
  st.toks <- all_tokens;
  parse_select st;
  (* Skip the FROM clause we already handled. *)
  st.toks <- after_from;
  let conds = parse_where st in
  expect_kw st "CHOOSE";
  expect st (INT 1);
  let updates = parse_followed_by st in
  (match peek st with
   | EOF -> ()
   | tok -> syntax_error "trailing input at %s" (token_to_string tok));
  (* Assemble the transaction. *)
  let hard_atoms, optional_atoms =
    List.partition_map
      (fun fi ->
        let atom = Atom.of_array fi.rel (Array.map (fun v -> Term.V v) fi.vars) in
        if fi.fi_optional then Either.Right atom else Either.Left atom)
      st.froms
  in
  (* A condition mentioning a variable of an OPTIONAL FROM item is part of
     the soft preference even without an explicit OPTIONAL keyword: a hard
     constraint over a variable the hard body never binds would be
     ill-formed (and contradicts the intent of marking the item
     OPTIONAL). *)
  let optional_vars =
    List.fold_left
      (fun acc fi ->
        if fi.fi_optional then
          Array.fold_left (fun acc v -> Term.Var_set.add v acc) acc fi.vars
        else acc)
      Term.Var_set.empty st.froms
  in
  let touches_optional terms =
    List.exists
      (fun t ->
        match t with
        | Term.V v -> Term.Var_set.mem v optional_vars
        | Term.C _ -> false)
      terms
  in
  let constraints = ref [] and optional_constraints = ref [] in
  let in_hard = ref [] and in_optional = ref [] in
  List.iter
    (fun cond ->
      match cond with
      | C_eq (a, b, opt) ->
        if opt || touches_optional [ a; b ] then
          optional_constraints := Formula.eq a b :: !optional_constraints
        else constraints := Formula.eq a b :: !constraints
      | C_neq (a, b, opt) ->
        if opt || touches_optional [ a; b ] then
          optional_constraints := Formula.neq a b :: !optional_constraints
        else constraints := Formula.neq a b :: !constraints
      | C_cmp (f, opt) ->
        let terms =
          match f with
          | Formula.Lt (a, b) | Formula.Le (a, b) -> [ a; b ]
          | _ -> []
        in
        if opt || touches_optional terms then
          optional_constraints := f :: !optional_constraints
        else constraints := f :: !constraints
      | C_in (terms, rel, opt) ->
        if opt || touches_optional terms then
          in_optional := Atom.make rel terms :: !in_optional
        else in_hard := Atom.make rel terms :: !in_hard)
    conds;
  (* Hard equalities are applied as a substitution where possible (they
     come from join conditions), keeping bodies small; the remainder stay
     as constraints. *)
  Rtxn.make ~label
    ~hard:(hard_atoms @ List.rev !in_hard)
    ~optional:(optional_atoms @ List.rev !in_optional)
    ~constraints:(List.rev !constraints)
    ~optional_constraints:(List.rev !optional_constraints)
    ~updates ()

(** Parser for the SQL-like resource-transaction surface of Figure 1
    (SELECT … FROM … WHERE … CHOOSE 1 FOLLOWED BY (…)), lowered to
    {!Rtxn}.  Goes beyond the paper's prototype, which accepted only the
    Datalog-like intermediate representation.

    [OPTIONAL] FROM items and WHERE conditions become optional atoms and
    constraints; [(t, …) IN Rel] is atom membership; [AS @x] names a term
    for use in the FOLLOWED BY block.  Keywords are case-insensitive;
    [--] starts a comment. *)

exception Syntax_error of string

val parse_txn :
  ?label:string ->
  schema_of:(string -> Relational.Schema.t option) ->
  string ->
  Rtxn.t
(** @raise Syntax_error on malformed input or unknown relations/columns.
    @raise Rtxn.Ill_formed when the lowered transaction violates range
    restriction (e.g. a FOLLOWED BY term bound only by an OPTIONAL
    item). *)

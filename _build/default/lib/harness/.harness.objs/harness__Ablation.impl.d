lib/harness/ablation.ml: Common List Logic Printf Quantum Solver Unix Workload

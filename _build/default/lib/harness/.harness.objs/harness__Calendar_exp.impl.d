lib/harness/calendar_exp.ml: Common Hashtbl List Printf Quantum Relational Workload

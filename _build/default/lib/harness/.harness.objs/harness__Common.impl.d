lib/harness/common.ml: Filename List Printf Quantum String Sys Workload

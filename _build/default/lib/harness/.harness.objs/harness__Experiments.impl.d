lib/harness/experiments.ml: Array Common List Printf Quantum Workload

(* The per-figure/table experiment harness (paper Section 5).

   Each [run_*] function regenerates one table or figure of the paper's
   evaluation: it builds the corresponding workload, drives the engine
   and/or the Intelligent Social baseline, and prints the same rows or
   series the paper reports.  Absolute numbers differ (our substrate is
   an in-process engine, not MySQL on a 2009 Xeon); EXPERIMENTS.md
   records the shape comparison. *)

module Qdb = Quantum.Qdb
module Runner = Workload.Runner
module Travel = Workload.Travel

open Common

let all_orders = [ Travel.Alternate; Travel.Random_order; Travel.In_order; Travel.Reverse_order ]

(* -- Figure 5: cumulative transaction time per arrival order ---------------- *)

let run_fig5 scale =
  section "Figure 5: cumulative time of transaction execution per arrival order";
  let series =
    List.map
      (fun order ->
        let outcome =
          Runner.run (Runner.Quantum_engine fig56_config) (fig56_spec scale order (List.hd (seeds scale)))
        in
        (Printf.sprintf "QDB %s" (Travel.order_to_string order), outcome.Runner.cumulative_ms))
      all_orders
    @ [ (let outcome =
           Runner.run Runner.Intelligent_social
             (fig56_spec scale Travel.Random_order (List.hd (seeds scale)))
         in
         ("IS Random", outcome.Runner.cumulative_ms));
      ]
  in
  (* Sample the cumulative curves at 10% steps of the stream. *)
  let points = 10 in
  let header =
    "series"
    :: List.init (points + 1) (fun i -> Printf.sprintf "t@%d%%" (i * 100 / points))
  in
  let rows =
    List.map
      (fun (name, curve) ->
        let n = Array.length curve in
        name
        :: List.init (points + 1) (fun i ->
               let idx = min (n - 1) (i * (n - 1) / points) in
               Printf.sprintf "%.1fms" curve.(idx)))
      series
  in
  print_table ~csv:"fig5" ~header rows;
  Printf.printf
    "(expected shape: Alternate ≈ IS ≪ Random < In Order ≈ Reverse Order,\n\
    \ with the In/Reverse slopes easing once partners start arriving)\n";
  rows

(* -- Figure 6: coordination percentage per arrival order -------------------- *)

let run_fig6 scale =
  section "Figure 6: percentage of coordination per arrival order";
  let header = [ "order"; "QuantumDB"; "Intelligent Social" ] in
  let rows =
    List.map
      (fun order ->
        let qdb =
          averaged scale (fun seed ->
              (Runner.run (Runner.Quantum_engine fig56_config) (fig56_spec scale order seed))
                .Runner.coordination_pct)
        in
        let is =
          averaged scale (fun seed ->
              (Runner.run Runner.Intelligent_social (fig56_spec scale order seed))
                .Runner.coordination_pct)
        in
        [ Travel.order_to_string order; f1 qdb ^ "%"; f1 is ^ "%" ])
      all_orders
  in
  print_table ~csv:"fig6" ~header rows;
  Printf.printf "(expected shape: QDB at 100%% everywhere; IS high only for Alternate)\n";
  rows

(* -- Table 1: arrival orders and maximum pending transactions --------------- *)

let run_table1 scale =
  section "Table 1: maximum number of pending transactions per arrival order";
  let spec0 = fig56_spec scale Travel.Alternate (List.hd (seeds scale)) in
  let pairs = spec0.Runner.pairs_per_flight in
  let header = [ "order"; "analytic bound"; "measured max pending" ] in
  let bound = function
    | Travel.Alternate -> "1"
    | Travel.Random_order -> Printf.sprintf "<= N/2 = %d" pairs
    | Travel.In_order | Travel.Reverse_order -> Printf.sprintf "N/2 = %d" pairs
  in
  let rows =
    List.map
      (fun order ->
        let outcome =
          Runner.run (Runner.Quantum_engine fig56_config)
            (fig56_spec scale order (List.hd (seeds scale)))
        in
        [ Travel.order_to_string order; bound order; string_of_int outcome.Runner.max_pending ])
      all_orders
  in
  print_table ~csv:"table1" ~header rows;
  rows

(* -- Figure 7 / Table 2: scalability and coordination vs k ------------------ *)

type fig7_row = {
  flights : int;
  txns : int;
  times : (string * float) list; (* per series, seconds *)
  coords : (string * float) list; (* per series, percent *)
}

let fig7_series _scale =
  List.map (fun k -> (Printf.sprintf "k=%d" k, Runner.Quantum_engine (config_with_k k))) fig7_ks
  @ [ ("IS", Runner.Intelligent_social) ]

let run_fig7_data scale =
  List.map
    (fun flights ->
      let txns = 2 * fig7_pairs scale * flights in
      let measurements =
        List.map
          (fun (name, engine) ->
            let outcomes =
              List.map (fun seed -> Runner.run engine (fig7_spec scale ~flights seed)) (seeds scale)
            in
            let time = mean (List.map (fun o -> o.Runner.total_time_s) outcomes) in
            let coord = mean (List.map (fun o -> o.Runner.coordination_pct) outcomes) in
            (name, time, coord))
          (fig7_series scale)
      in
      {
        flights;
        txns;
        times = List.map (fun (n, t, _) -> (n, t)) measurements;
        coords = List.map (fun (n, _, c) -> (n, c)) measurements;
      })
    (fig7_flight_counts scale)

let print_fig7 data =
  section "Figure 7: scalability — total time vs number of transactions";
  let series_names =
    match data with
    | row :: _ -> List.map fst row.times
    | [] -> []
  in
  let header = "flights" :: "txns" :: series_names in
  let rows =
    List.map
      (fun row ->
        string_of_int row.flights :: string_of_int row.txns
        :: List.map (fun (_, t) -> Printf.sprintf "%.2fs" t) row.times)
      data
  in
  print_table ~csv:"fig7" ~header rows;
  Printf.printf
    "(expected shape: time linear in transactions; smaller k faster;\n\
    \ IS cheapest in raw time but far behind in coordination)\n"

let print_table2 data =
  section "Table 2: average percentage of successful coordinations";
  let series_names =
    match data with
    | row :: _ -> List.map fst row.coords
    | [] -> []
  in
  let header = series_names in
  let avg name =
    mean (List.map (fun row -> List.assoc name row.coords) data)
  in
  let rows = [ List.map (fun n -> f1 (avg n) ^ "%") series_names ] in
  print_table ~csv:"table2" ~header rows;
  Printf.printf "(paper: k=20 45.6%%, k=30 86.9%%, k=40 99.9%%, IS 20.2%% —\n\
                \ coordination grows with k and IS trails far behind)\n"

let run_fig7_and_table2 scale =
  let data = run_fig7_data scale in
  print_fig7 data;
  print_table2 data;
  data

(* -- Figures 8 and 9: mixed read/update workload ----------------------------- *)

type fig89_row = {
  read_pct : int;
  per_k : (int * Runner.outcome) list;
}

let run_fig89_data scale =
  List.map
    (fun read_fraction ->
      let per_k =
        List.map
          (fun k ->
            let seed = List.hd (seeds scale) in
            let outcome =
              Runner.run
                (Runner.Quantum_engine (config_with_k k))
                (fig89_spec scale ~read_fraction seed)
            in
            (k, outcome))
          fig7_ks
      in
      { read_pct = int_of_float (read_fraction *. 100.); per_k })
    fig89_read_fractions

let print_fig8 data =
  section "Figure 8: time on reads vs updates under a mixed workload";
  let header =
    "reads%"
    :: List.concat_map
         (fun k -> [ Printf.sprintf "k=%d upd" k; Printf.sprintf "k=%d read" k ])
         fig7_ks
  in
  let rows =
    List.map
      (fun row ->
        string_of_int row.read_pct
        :: List.concat_map
             (fun k ->
               let o = List.assoc k row.per_k in
               [ Printf.sprintf "%.2fs" o.Runner.time_updates_s;
                 Printf.sprintf "%.2fs" o.Runner.time_reads_s ])
             fig7_ks)
      data
  in
  print_table ~csv:"fig8" ~header rows;
  Printf.printf
    "(expected shape: time on reads grows and time on resource transactions\n\
    \ falls as the read share increases — reads pre-empt groundings)\n"

let print_fig9 data =
  section "Figure 9: percentage of coordination vs percentage of reads";
  let header = "reads%" :: List.map (fun k -> Printf.sprintf "k=%d" k) fig7_ks in
  let rows =
    List.map
      (fun row ->
        string_of_int row.read_pct
        :: List.map
             (fun k -> f1 (List.assoc k row.per_k).Runner.coordination_pct ^ "%")
             fig7_ks)
      data
  in
  print_table ~csv:"fig9" ~header rows;
  Printf.printf "(expected shape: coordination falls roughly linearly with the read share)\n"

let run_fig89 scale =
  let data = run_fig89_data scale in
  print_fig8 data;
  print_fig9 data;
  data

lib/logic/atom.mli: Format Relational Term

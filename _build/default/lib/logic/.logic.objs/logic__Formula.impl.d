lib/logic/formula.ml: Array Atom Format List Printf Relational Subst Term

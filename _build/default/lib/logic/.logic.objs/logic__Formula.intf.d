lib/logic/formula.mli: Atom Format Relational Subst Term

lib/logic/subst.ml: Array Atom Format List Term

lib/logic/subst.mli: Atom Format Term

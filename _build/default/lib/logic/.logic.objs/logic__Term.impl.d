lib/logic/term.ml: Format Int Map Relational Set

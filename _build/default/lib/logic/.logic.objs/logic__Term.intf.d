lib/logic/term.mli: Format Map Relational Set

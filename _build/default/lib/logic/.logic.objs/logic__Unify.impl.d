lib/logic/unify.ml: Array Atom Formula List Option Relational String Subst Term

lib/logic/unify.mli: Atom Formula Subst Term

(* Relational atoms: a relation name applied to terms, e.g.
   Available(f1, s1) or Bookings("Goofy", f1, s2). *)

type t = {
  rel : string;
  args : Term.t array;
}

let make rel args = { rel; args = Array.of_list args }
let of_array rel args = { rel; args }
let arity a = Array.length a.args

let equal a b =
  String.equal a.rel b.rel
  && Array.length a.args = Array.length b.args
  && Array.for_all2 Term.equal a.args b.args

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c
  else begin
    let la = Array.length a.args and lb = Array.length b.args in
    let c = Int.compare la lb in
    if c <> 0 then c
    else begin
      let rec go i =
        if i >= la then 0
        else
          let c = Term.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    end
  end

let vars a =
  Array.fold_left
    (fun acc t ->
      match t with
      | Term.V v -> Term.Var_set.add v acc
      | Term.C _ -> acc)
    Term.Var_set.empty a.args

let is_ground a = Array.for_all (fun t -> not (Term.is_var t)) a.args

(* A ground atom as a database tuple. *)
let to_tuple a =
  Array.map
    (fun t ->
      match t with
      | Term.C v -> v
      | Term.V v ->
        invalid_arg (Printf.sprintf "Atom.to_tuple: unbound variable %s_%d" v.vname v.vid))
    a.args

let of_tuple rel tuple = { rel; args = Array.map (fun v -> Term.C v) tuple }

(* The lookup pattern for the atom's constant positions: variables become
   wildcards. *)
let to_pattern a =
  Array.map
    (fun t ->
      match t with
      | Term.C v -> Some v
      | Term.V _ -> None)
    a.args

let pp fmt a =
  Format.fprintf fmt "%s(@[<h>%a@])" a.rel
    (Format.pp_print_seq ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ") Term.pp)
    (Array.to_seq a.args)

let to_string a = Format.asprintf "%a" pp a

let to_sexp a =
  Relational.Sexp.List
    (Relational.Sexp.Atom a.rel :: Array.to_list (Array.map Term.to_sexp a.args))

let of_sexp = function
  | Relational.Sexp.List (Relational.Sexp.Atom rel :: args) ->
    { rel; args = Array.of_list (List.map Term.of_sexp args) }
  | s -> raise (Relational.Sexp.Parse_error ("bad atom sexp: " ^ Relational.Sexp.to_string s))

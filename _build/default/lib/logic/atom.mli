(** Relational atoms: a relation name applied to terms. *)

type t = {
  rel : string;
  args : Term.t array;
}

val make : string -> Term.t list -> t
val of_array : string -> Term.t array -> t
val arity : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val vars : t -> Term.Var_set.t
val is_ground : t -> bool

val to_tuple : t -> Relational.Tuple.t
(** @raise Invalid_argument when the atom has a variable. *)

val of_tuple : string -> Relational.Tuple.t -> t

val to_pattern : t -> Relational.Table.pattern
(** Constants become equality bounds, variables wildcards. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_sexp : t -> Relational.Sexp.t
val of_sexp : Relational.Sexp.t -> t

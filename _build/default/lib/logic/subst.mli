(** Substitutions: maps from variables to terms, applied to a fixpoint. *)

type t = Term.t Term.Var_map.t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int
val find : Term.var -> t -> Term.t option
val bindings : t -> (Term.var * Term.t) list

val resolve : t -> Term.t -> Term.t
(** Chase variable chains until a constant or an unbound variable. *)

val bind : Term.var -> Term.t -> t -> t
val apply_term : t -> Term.t -> Term.t
val apply_atom : t -> Atom.t -> Atom.t
val flatten : t -> t
(** Rebind every key directly to its fully resolved term. *)

(** [restrict keep s] flattens [s], then keeps only bindings of [keep]. *)
val restrict : Term.Var_set.t -> t -> t
val of_list : (Term.var * Term.t) list -> t

val equations : t -> (Term.t * Term.t) list
(** The bindings as equality constraints — the raw material of a unification
    predicate (Definition 3.3). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Terms: variables and constants of the resource-transaction calculus. *)

type var = {
  vname : string;  (** user-facing name *)
  vid : int;  (** globally unique id *)
}

type t =
  | V of var
  | C of Relational.Value.t

val fresh_var : string -> var
(** Mint a variable with a globally unique id. *)

val var : var -> t
val const : Relational.Value.t -> t
val int : int -> t
val str : string -> t
val bool : bool -> t
val is_var : t -> bool

val compare_var : var -> var -> int
val equal_var : var -> var -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val pp_var : Format.formatter -> var -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Var_map : Map.S with type key = var
module Var_set : Set.S with type elt = var

val to_sexp : t -> Relational.Sexp.t

val of_sexp : Relational.Sexp.t -> t
(** Also advances the fresh-variable counter past any deserialized id, so
    recovery cannot re-mint a live id. *)

(* Most general unifiers (Definition 3.2) and unification predicates
   (Definition 3.3).

   Atoms contain only variables and constants — no function symbols — so
   unification is linear and needs no occurs check beyond skipping bindings
   of a variable to itself. *)

let unify_terms subst t1 t2 =
  let r1 = Subst.resolve subst t1 and r2 = Subst.resolve subst t2 in
  match r1, r2 with
  | Term.C a, Term.C b -> if Relational.Value.equal a b then Some subst else None
  | Term.V v, (Term.C _ as c) | (Term.C _ as c), Term.V v -> Some (Subst.bind v c subst)
  | Term.V v1, Term.V v2 ->
    if Term.equal_var v1 v2 then Some subst else Some (Subst.bind v1 (Term.V v2) subst)

let mgu_terms t1 t2 = unify_terms Subst.empty t1 t2

let mgu ?(subst = Subst.empty) (a : Atom.t) (b : Atom.t) =
  if (not (String.equal a.Atom.rel b.Atom.rel)) || Atom.arity a <> Atom.arity b then None
  else begin
    let n = Atom.arity a in
    let rec go i subst =
      if i >= n then Some subst
      else
        match unify_terms subst a.Atom.args.(i) b.Atom.args.(i) with
        | Some subst -> go (i + 1) subst
        | None -> None
    in
    go 0 subst
  end

let unifiable a b = Option.is_some (mgu a b)

(* The unification predicate ϕ(b1, b2): the mgu's bindings as equality
   constraints, trivially false when no unifier exists and trivially true
   when the mgu is empty (both atoms ground and equal). *)
let predicate a b =
  match mgu a b with
  | None -> Formula.fls
  | Some subst -> Formula.of_equations (Subst.equations subst)

(* A conservative syntactic check used by partitioning and read-impact
   analysis: do any two atoms drawn from the two sets unify? *)
let any_unifiable atoms_a atoms_b =
  List.exists (fun a -> List.exists (fun b -> unifiable a b) atoms_b) atoms_a

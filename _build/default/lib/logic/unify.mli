(** Most general unifiers (Definition 3.2) and unification predicates
    (Definition 3.3) over function-free atoms. *)

val unify_terms : Subst.t -> Term.t -> Term.t -> Subst.t option
val mgu_terms : Term.t -> Term.t -> Subst.t option

val mgu : ?subst:Subst.t -> Atom.t -> Atom.t -> Subst.t option
(** Most general unifier of two atoms, extending [subst] when given;
    [None] when relation names, arities or constants clash. *)

val unifiable : Atom.t -> Atom.t -> bool

val predicate : Atom.t -> Atom.t -> Formula.t
(** The unification predicate ϕ(b1, b2): conjunction of the mgu's equality
    constraints; [False] without a unifier, [True] for an empty mgu. *)

val any_unifiable : Atom.t list -> Atom.t list -> bool
(** Conservative dependence test between two atom sets (partitioning and
    read-impact analysis). *)

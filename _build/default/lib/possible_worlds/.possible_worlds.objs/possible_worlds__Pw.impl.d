lib/possible_worlds/pw.ml: Hashtbl List Option Quantum Relational Solver String

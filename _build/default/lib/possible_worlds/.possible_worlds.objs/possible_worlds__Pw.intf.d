lib/possible_worlds/pw.mli: Quantum Relational Solver

(* Extensional possible-worlds reference (Section 3.1, Figure 2).

   The quantum database is an intensional representation of exactly this
   object: the set of concrete databases reachable by grounding every
   committed resource transaction in sequence.  Here the set is kept
   explicitly — forked on each submission, pruned of worlds in which the
   new transaction cannot ground — which is exponential and only usable at
   test scale, precisely why the paper replaces it with the composed-body
   representation.  The test suite cross-validates the engine against
   this module: same accept/reject decisions, and every collapse lands on
   a member world. *)

module Database = Relational.Database
module Table = Relational.Table
module Tuple = Relational.Tuple
module Wal = Relational.Wal
module Sexp = Relational.Sexp

exception Too_many_worlds of int

type t = {
  mutable worlds : Database.t list; (* nonempty unless the state is broken *)
  max_worlds : int;
}

(* Canonical fingerprint for world deduplication: the checkpoint image
   serializes tables sorted by name and rows sorted lexicographically. *)
let fingerprint db = Sexp.to_string (Wal.database_to_sexp db)

let dedup worlds =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun w ->
      let fp = fingerprint w in
      if Hashtbl.mem seen fp then false
      else begin
        Hashtbl.add seen fp ();
        true
      end)
    worlds

let create ?(max_worlds = 20_000) db = { worlds = [ Database.copy db ]; max_worlds }
let worlds t = t.worlds
let world_count t = List.length t.worlds

(* All groundings of the hard body over one world; each yields a successor
   world when the updates apply cleanly (a failing update — duplicate key
   or missing delete — invalidates that grounding, the extensional
   counterpart of the engine's insert-safety and delete-existence
   clauses). *)
let successors_in_world txn world =
  let body = Quantum.Rtxn.hard_formula txn in
  let groundings = Solver.Backtrack.solutions world body in
  List.filter_map
    (fun subst ->
      match Quantum.Rtxn.ops_under txn subst with
      | ops ->
        let forked = Database.copy world in
        (match Database.apply_ops forked ops with
         | Ok () -> Some forked
         | Error _ -> None)
      | exception Quantum.Rtxn.Ill_formed _ -> None)
    groundings

let submit t txn =
  let successors = List.concat_map (successors_in_world txn) t.worlds in
  let successors = dedup successors in
  if List.length successors > t.max_worlds then raise (Too_many_worlds (List.length successors));
  match successors with
  | [] -> `Rejected
  | _ ->
    t.worlds <- successors;
    `Committed

(* Would the transaction commit, without changing the state? *)
let can_commit t txn = List.exists (fun w -> successors_in_world txn w <> []) t.worlds

(* -- Reads ----------------------------------------------------------------- *)

(* All answers across all worlds (the "expose uncertainty" read option). *)
let read_all t q =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun w -> List.iter (fun tuple -> Hashtbl.replace seen tuple ()) (Solver.Query.all w q))
    t.worlds;
  Hashtbl.fold (fun tuple () acc -> tuple :: acc) seen []

(* Collapse (the paper's read choice): pick the answer set preserving the
   most worlds, retain exactly the consistent worlds. *)
let read_collapse t q =
  let grouped = Hashtbl.create 16 in
  List.iter
    (fun w ->
      let answers = List.sort Tuple.compare (Solver.Query.all w q) in
      let key = String.concat ";" (List.map Tuple.to_string answers) in
      let existing =
        Option.value ~default:(answers, []) (Hashtbl.find_opt grouped key)
      in
      Hashtbl.replace grouped key (fst existing, w :: snd existing))
    t.worlds;
  let best =
    Hashtbl.fold
      (fun _ (answers, ws) best ->
        match best with
        | Some (_, best_ws) when List.length best_ws >= List.length ws -> best
        | _ -> Some (answers, ws))
      grouped None
  in
  match best with
  | None -> []
  | Some (answers, ws) ->
    t.worlds <- ws;
    answers

(* Does some world equal [db] on the given relations?  The cross-check used
   after the engine grounds everything. *)
let contains_world t ?relations db =
  let project source =
    match relations with
    | None -> Wal.database_to_sexp source
    | Some rels ->
      let tmp = Database.create () in
      List.iter
        (fun rel ->
          match Database.find_table source rel with
          | Some table ->
            let copy = Database.create_table tmp (Table.schema table) in
            Table.iter (fun row -> ignore (Table.insert copy row)) table
          | None -> ())
        rels;
      Wal.database_to_sexp tmp
  in
  let target = Sexp.to_string (project db) in
  List.exists (fun w -> String.equal (Sexp.to_string (project w)) target) t.worlds

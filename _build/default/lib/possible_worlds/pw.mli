(** Extensional possible-worlds reference implementation (Figure 2): the
    object a quantum database represents intensionally, materialized for
    cross-validation at test scale. *)

exception Too_many_worlds of int

type t

val create : ?max_worlds:int -> Relational.Database.t -> t
(** Start from a single concrete world (a deep copy of [db]). *)

val worlds : t -> Relational.Database.t list
val world_count : t -> int

val submit : t -> Quantum.Rtxn.t -> [ `Committed | `Rejected ]
(** Fork every world on every grounding of the hard body; worlds in which
    the transaction cannot ground are eliminated (Figure 2).  [`Rejected]
    leaves the state unchanged.  @raise Too_many_worlds over the cap. *)

val can_commit : t -> Quantum.Rtxn.t -> bool

val read_all : t -> Solver.Query.t -> Relational.Tuple.t list
(** Union of answers across worlds (the "expose uncertainty" option). *)

val read_collapse : t -> Solver.Query.t -> Relational.Tuple.t list
(** The paper's read semantics: return the answer set preserved by the
    largest number of worlds and retain exactly the consistent worlds. *)

val contains_world : t -> ?relations:string list -> Relational.Database.t -> bool
(** Is [db] (restricted to [relations] when given) one of the worlds? *)

lib/relational/database.ml: Format Hashtbl List Option Printf Schema Sexp String Table Tuple

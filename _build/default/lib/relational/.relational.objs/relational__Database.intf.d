lib/relational/database.mli: Format Schema Sexp Table Tuple

lib/relational/relalg.ml: Array Database Format Hashtbl List Schema Seq String Table Tuple Value

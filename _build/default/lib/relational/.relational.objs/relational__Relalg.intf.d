lib/relational/relalg.mli: Database Seq Tuple Value

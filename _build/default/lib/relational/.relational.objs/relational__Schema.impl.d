lib/relational/schema.ml: Array Format Fun Hashtbl Int List Sexp String Tuple Value

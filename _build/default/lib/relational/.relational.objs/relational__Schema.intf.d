lib/relational/schema.mli: Format Sexp Tuple Value

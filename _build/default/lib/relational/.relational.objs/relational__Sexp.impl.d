lib/relational/sexp.ml: Buffer Format List String

lib/relational/sexp.mli: Format

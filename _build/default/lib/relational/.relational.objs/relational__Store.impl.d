lib/relational/store.ml: Database Wal

lib/relational/store.mli: Database Schema Table Wal

lib/relational/table.ml: Array Format Hashtbl List Map Option Printf Schema Seq Tuple Value

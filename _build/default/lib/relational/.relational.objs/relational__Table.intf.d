lib/relational/table.mli: Format Schema Seq Tuple Value

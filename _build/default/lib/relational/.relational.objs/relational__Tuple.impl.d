lib/relational/tuple.ml: Array Format List Sexp Value

lib/relational/tuple.mli: Format Sexp Value

lib/relational/value.ml: Bool Format Hashtbl Int Sexp String

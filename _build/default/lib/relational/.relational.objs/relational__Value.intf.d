lib/relational/value.mli: Format Sexp

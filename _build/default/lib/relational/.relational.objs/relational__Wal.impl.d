lib/relational/wal.ml: Database List Schema Sexp Sys Table Tuple

lib/relational/wal.mli: Database Schema Sexp

(* A named collection of tables plus atomic application of update batches.

   Updates are the blind writes of resource transactions: inserts and deletes
   of single tuples.  [apply_ops] is all-or-nothing — it undoes the applied
   prefix when a later operation fails — which is what lets the quantum
   engine treat a grounding execution as a classical transaction. *)

type t = { tables : (string, Table.t) Hashtbl.t }

type op =
  | Insert of string * Tuple.t
  | Delete of string * Tuple.t

type op_error =
  | No_such_table of string
  | Duplicate of string * Tuple.t
  | Missing of string * Tuple.t

exception Error of op_error

let op_error_to_string = function
  | No_such_table rel -> Printf.sprintf "no such table: %s" rel
  | Duplicate (rel, t) -> Printf.sprintf "duplicate key in %s: %s" rel (Tuple.to_string t)
  | Missing (rel, t) -> Printf.sprintf "missing tuple in %s: %s" rel (Tuple.to_string t)

let create () = { tables = Hashtbl.create 16 }

let create_table t schema =
  let name = schema.Schema.name in
  if Hashtbl.mem t.tables name then
    raise (Schema.Invalid (Printf.sprintf "table %s already exists" name));
  let table = Table.create schema in
  Hashtbl.add t.tables name table;
  table

let drop_table t name = Hashtbl.remove t.tables name
let find_table t name = Hashtbl.find_opt t.tables name

let table t name =
  match find_table t name with
  | Some table -> table
  | None -> raise (Error (No_such_table name))

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] |> List.sort String.compare

let mem_tuple t rel tuple = Table.mem (table t rel) tuple

(* Does some row share the key of [tuple]?  Inserting [tuple] would then
   violate set semantics even when the non-key columns differ. *)
let key_occupied t rel tuple =
  let table = table t rel in
  let schema = Table.schema table in
  Option.is_some (Table.find_by_key table (Schema.key_of_tuple schema tuple))

let apply_op t op =
  match op with
  | Insert (rel, tuple) ->
    (match Table.insert (table t rel) tuple with
     | Table.Inserted -> ()
     | Table.Duplicate_key -> raise (Error (Duplicate (rel, tuple))))
  | Delete (rel, tuple) ->
    if not (Table.delete (table t rel) tuple) then raise (Error (Missing (rel, tuple)))

let invert = function
  | Insert (rel, tuple) -> Delete (rel, tuple)
  | Delete (rel, tuple) -> Insert (rel, tuple)

let apply_ops t ops =
  let rec go applied = function
    | [] -> Ok ()
    | op :: rest ->
      (match apply_op t op with
       | () -> go (op :: applied) rest
       | exception Error err ->
         (* Roll the applied prefix back, newest first. *)
         List.iter (fun op -> apply_op t (invert op)) applied;
         Error err)
  in
  go [] ops

let can_apply_ops t ops =
  match apply_ops t ops with
  | Ok () ->
    List.iter (fun op -> apply_op t (invert op)) (List.rev ops);
    true
  | Error _ -> false

let copy t =
  let fresh = { tables = Hashtbl.create (Hashtbl.length t.tables) } in
  Hashtbl.iter (fun name table -> Hashtbl.add fresh.tables name (Table.copy table)) t.tables;
  fresh

let total_rows t = Hashtbl.fold (fun _ table acc -> acc + Table.cardinality table) t.tables 0

(* Structural equality on contents: same tables, same rows.  Used by the
   recovery tests and the possible-worlds reference. *)
let equal a b =
  let names x = table_names x in
  names a = names b
  && List.for_all
       (fun name ->
         let ta = table a name and tb = table b name in
         Table.cardinality ta = Table.cardinality tb
         && Table.fold (fun row ok -> ok && Table.mem tb row) ta true)
       (names a)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun name -> Format.fprintf fmt "%a@," Table.pp (table t name)) (table_names t);
  Format.fprintf fmt "@]"

let op_to_sexp = function
  | Insert (rel, tuple) -> Sexp.List [ Sexp.Atom "+"; Sexp.Atom rel; Tuple.to_sexp tuple ]
  | Delete (rel, tuple) -> Sexp.List [ Sexp.Atom "-"; Sexp.Atom rel; Tuple.to_sexp tuple ]

let op_of_sexp = function
  | Sexp.List [ Sexp.Atom "+"; Sexp.Atom rel; tuple ] -> Insert (rel, Tuple.of_sexp tuple)
  | Sexp.List [ Sexp.Atom "-"; Sexp.Atom rel; tuple ] -> Delete (rel, Tuple.of_sexp tuple)
  | s -> raise (Sexp.Parse_error ("bad op sexp: " ^ Sexp.to_string s))

(** A database: named tables plus atomic application of update batches. *)

type t

(** Blind single-tuple writes — the vocabulary of FOLLOWED BY blocks. *)
type op =
  | Insert of string * Tuple.t
  | Delete of string * Tuple.t

type op_error =
  | No_such_table of string
  | Duplicate of string * Tuple.t
  | Missing of string * Tuple.t

exception Error of op_error

val op_error_to_string : op_error -> string

val create : unit -> t

val create_table : t -> Schema.t -> Table.t
(** @raise Schema.Invalid when the name is taken. *)

val drop_table : t -> string -> unit
val find_table : t -> string -> Table.t option

val table : t -> string -> Table.t
(** @raise Error ([No_such_table]) when absent. *)

val table_names : t -> string list
val mem_tuple : t -> string -> Tuple.t -> bool

val key_occupied : t -> string -> Tuple.t -> bool
(** Does some row share [tuple]'s key?  Inserting it would then violate
    set semantics even when non-key columns differ. *)

val apply_op : t -> op -> unit
(** @raise Error on duplicate-key insert or missing-tuple delete. *)

val invert : op -> op

val apply_ops : t -> op list -> (unit, op_error) result
(** Atomic: on failure the already-applied prefix is rolled back and the
    database is unchanged. *)

val can_apply_ops : t -> op list -> bool
(** Dry run of [apply_ops]; always leaves the database unchanged. *)

val copy : t -> t
val total_rows : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val op_to_sexp : op -> Sexp.t
val op_of_sexp : Sexp.t -> op

(* Relational algebra over the in-memory engine.

   This is the classical query layer of the substrate: scans, selections,
   projections, renames, equi-joins (hash join), products, set operations
   and LIMIT.  Rows flow as tuples with an accompanying column-name header;
   evaluation is lazy where the operator allows it, and [Limit] cuts the
   stream — the `LIMIT 1` shape the paper's satisfiability checks compile
   to. *)

type pred =
  | Eq_col of string * string
  | Neq_col of string * string
  | Eq_const of string * Value.t
  | Neq_const of string * Value.t
  | Lt_const of string * Value.t
  | Gt_const of string * Value.t
  | And of pred list
  | Or of pred list
  | Not of pred

(* Aggregate functions over a column (or rows, for Count). *)
type agg =
  | Count
  | Sum of string
  | Min of string
  | Max of string

type expr =
  | Scan of string
  | Select of pred * expr
  | Project of string list * expr
  | Rename of (string * string) list * expr
  | Join of expr * expr (* natural equi-join on shared column names *)
  | Product of expr * expr
  | Union of expr * expr
  | Diff of expr * expr
  | Distinct of expr
  | Limit of int * expr
  | Aggregate of string list * (string * agg) list * expr
    (* GROUP BY columns, named aggregates, input *)

exception Eval_error of string

let eval_error fmt = Format.kasprintf (fun msg -> raise (Eval_error msg)) fmt

type result = {
  header : string array;
  rows : Tuple.t Seq.t;
}

let column_pos header name =
  let n = Array.length header in
  let rec go i =
    if i >= n then eval_error "unknown column %s" name
    else if String.equal header.(i) name then i
    else go (i + 1)
  in
  go 0

let rec eval_pred header pred (row : Tuple.t) =
  match pred with
  | Eq_col (a, b) -> Value.equal row.(column_pos header a) row.(column_pos header b)
  | Neq_col (a, b) -> not (Value.equal row.(column_pos header a) row.(column_pos header b))
  | Eq_const (a, v) -> Value.equal row.(column_pos header a) v
  | Neq_const (a, v) -> not (Value.equal row.(column_pos header a) v)
  | Lt_const (a, v) -> Value.compare row.(column_pos header a) v < 0
  | Gt_const (a, v) -> Value.compare row.(column_pos header a) v > 0
  | And ps -> List.for_all (fun p -> eval_pred header p row) ps
  | Or ps -> List.exists (fun p -> eval_pred header p row) ps
  | Not p -> not (eval_pred header p row)

(* Force a sequence into a list so downstream multi-pass operators (hash
   join build side, set ops) see a stable snapshot. *)
let materialize rows = List.of_seq rows

let shared_columns ha hb =
  Array.to_list ha |> List.filter (fun c -> Array.exists (String.equal c) hb)

let rec eval db expr =
  match expr with
  | Scan name ->
    let table =
      match Database.find_table db name with
      | Some t -> t
      | None -> eval_error "no such table: %s" name
    in
    (* Qualify nothing: scan exposes the schema's own column names. *)
    { header = Schema.column_names (Table.schema table); rows = Table.to_seq table }
  | Select (pred, e) ->
    let r = eval db e in
    { r with rows = Seq.filter (eval_pred r.header pred) r.rows }
  | Project (cols, e) ->
    let r = eval db e in
    let positions = Array.of_list (List.map (column_pos r.header) cols) in
    { header = Array.of_list cols; rows = Seq.map (Tuple.project positions) r.rows }
  | Rename (renames, e) ->
    let r = eval db e in
    let header =
      Array.map
        (fun c ->
          match List.assoc_opt c renames with
          | Some c' -> c'
          | None -> c)
        r.header
    in
    { header; rows = r.rows }
  | Join (a, b) ->
    let ra = eval db a and rb = eval db b in
    let shared = shared_columns ra.header rb.header in
    if shared = [] then eval_error "natural join with no shared columns; use Product"
    else hash_join ra rb shared
  | Product (a, b) ->
    let ra = eval db a and rb = eval db b in
    let clash = shared_columns ra.header rb.header in
    (match clash with
     | c :: _ -> eval_error "product with shared column %s; rename first" c
     | [] ->
       let right = materialize rb.rows in
       let rows =
         Seq.concat_map
           (fun ta -> List.to_seq (List.map (fun tb -> Array.append ta tb) right))
           ra.rows
       in
       { header = Array.append ra.header rb.header; rows })
  | Union (a, b) ->
    let ra = eval db a and rb = eval db b in
    if ra.header <> rb.header then eval_error "union headers differ";
    let seen = Hashtbl.create 64 in
    let keep row =
      if Hashtbl.mem seen row then false
      else begin
        Hashtbl.add seen row ();
        true
      end
    in
    { ra with rows = Seq.filter keep (Seq.append ra.rows rb.rows) }
  | Diff (a, b) ->
    let ra = eval db a and rb = eval db b in
    if ra.header <> rb.header then eval_error "difference headers differ";
    let right = Hashtbl.create 64 in
    List.iter (fun row -> Hashtbl.replace right row ()) (materialize rb.rows);
    { ra with rows = Seq.filter (fun row -> not (Hashtbl.mem right row)) ra.rows }
  | Distinct e ->
    let r = eval db e in
    let seen = Hashtbl.create 64 in
    let keep row =
      if Hashtbl.mem seen row then false
      else begin
        Hashtbl.add seen row ();
        true
      end
    in
    { r with rows = Seq.filter keep r.rows }
  | Limit (n, e) ->
    let r = eval db e in
    { r with rows = Seq.take n r.rows }
  | Aggregate (group_cols, aggs, e) ->
    let r = eval db e in
    let group_pos = Array.of_list (List.map (column_pos r.header) group_cols) in
    let agg_col = function
      | Count -> None
      | Sum c | Min c | Max c -> Some (column_pos r.header c)
    in
    let agg_positions = List.map (fun (_, a) -> (a, agg_col a)) aggs in
    let groups : (Tuple.t, Tuple.t list ref) Hashtbl.t = Hashtbl.create 16 in
    Seq.iter
      (fun row ->
        let key = Tuple.project group_pos row in
        match Hashtbl.find_opt groups key with
        | Some cell -> cell := row :: !cell
        | None -> Hashtbl.add groups key (ref [ row ]))
      r.rows;
    let int_of = function
      | Value.Int n -> n
      | v -> eval_error "SUM over non-integer value %s" (Value.to_string v)
    in
    let compute rows (a, pos) =
      match a, pos with
      | Count, _ -> Value.Int (List.length rows)
      | Sum _, Some p -> Value.Int (List.fold_left (fun acc row -> acc + int_of (Tuple.get row p)) 0 rows)
      | Min _, Some p ->
        (match rows with
         | [] -> eval_error "MIN over empty group"
         | first :: rest ->
           List.fold_left
             (fun acc row -> if Value.compare (Tuple.get row p) acc < 0 then Tuple.get row p else acc)
             (Tuple.get first p) rest)
      | Max _, Some p ->
        (match rows with
         | [] -> eval_error "MAX over empty group"
         | first :: rest ->
           List.fold_left
             (fun acc row -> if Value.compare (Tuple.get row p) acc > 0 then Tuple.get row p else acc)
             (Tuple.get first p) rest)
      | (Sum _ | Min _ | Max _), None -> assert false
    in
    let header = Array.of_list (group_cols @ List.map fst aggs) in
    let out =
      Hashtbl.fold
        (fun key rows acc ->
          let agg_values = List.map (compute !rows) agg_positions in
          Array.append key (Array.of_list agg_values) :: acc)
        groups []
    in
    (* Aggregation over an empty ungrouped input yields one all-zero /
       undefined row only for COUNT; follow SQL and emit a single row when
       there are no GROUP BY columns. *)
    let out =
      if out = [] && group_cols = [] then
        [ Array.of_list (List.map (fun (_, a) ->
              match a with
              | Count -> Value.Int 0
              | Sum _ -> Value.Int 0
              | Min _ | Max _ -> eval_error "MIN/MAX over empty input") aggs) ]
      else out
    in
    { header; rows = List.to_seq out }

(* Hash join on the shared column names: build on the right input, probe
   with the left; the output header is left's columns followed by right's
   non-shared columns (natural-join convention). *)
and hash_join ra rb shared =
  let left_pos = List.map (column_pos ra.header) shared in
  let right_pos = List.map (column_pos rb.header) shared in
  let right_keep =
    (* positions of right columns not in the shared set *)
    let shared_set = List.map (column_pos rb.header) shared in
    Array.to_list rb.header
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (i, _) -> not (List.mem i shared_set))
  in
  let build = Hashtbl.create 64 in
  List.iter
    (fun row ->
      let key = List.map (fun i -> row.(i)) right_pos in
      let bucket = try Hashtbl.find build key with Not_found -> [] in
      Hashtbl.replace build key (row :: bucket))
    (materialize rb.rows);
  let header =
    Array.append ra.header (Array.of_list (List.map snd right_keep))
  in
  let rows =
    Seq.concat_map
      (fun la ->
        let key = List.map (fun i -> la.(i)) left_pos in
        match Hashtbl.find_opt build key with
        | None -> Seq.empty
        | Some matches ->
          List.to_seq matches
          |> Seq.map (fun rb_row ->
            Array.append la (Array.of_list (List.map (fun (i, _) -> rb_row.(i)) right_keep))))
      ra.rows
  in
  { header; rows }

let run db expr =
  let r = eval db expr in
  (r.header, materialize r.rows)

let run_first db expr =
  let r = eval db (Limit (1, expr)) in
  match Seq.uncons r.rows with
  | Some (row, _) -> Some (r.header, row)
  | None -> None

let count db expr =
  let r = eval db expr in
  Seq.fold_left (fun n _ -> n + 1) 0 r.rows

(** Relational algebra over the in-memory engine: scans, selections,
    projections, renames, natural hash joins, products, set operations,
    DISTINCT and LIMIT — the classical query surface of the substrate. *)

type pred =
  | Eq_col of string * string
  | Neq_col of string * string
  | Eq_const of string * Value.t
  | Neq_const of string * Value.t
  | Lt_const of string * Value.t
  | Gt_const of string * Value.t
  | And of pred list
  | Or of pred list
  | Not of pred

(** Aggregate functions. *)
type agg =
  | Count
  | Sum of string
  | Min of string
  | Max of string

type expr =
  | Scan of string
  | Select of pred * expr
  | Project of string list * expr
  | Rename of (string * string) list * expr
  | Join of expr * expr  (** natural equi-join on shared column names *)
  | Product of expr * expr  (** headers must be disjoint *)
  | Union of expr * expr  (** set union; headers must agree *)
  | Diff of expr * expr
  | Distinct of expr
  | Limit of int * expr
  | Aggregate of string list * (string * agg) list * expr
      (** GROUP BY columns, (output name, aggregate) pairs, input.  With no
          group columns and empty input, COUNT/SUM yield one zero row. *)

exception Eval_error of string

type result = {
  header : string array;
  rows : Tuple.t Seq.t;
}

val eval : Database.t -> expr -> result
(** Lazy evaluation: [Limit] cuts the underlying stream. *)

val run : Database.t -> expr -> string array * Tuple.t list
val run_first : Database.t -> expr -> (string array * Tuple.t) option
val count : Database.t -> expr -> int

(* Relation schemas.  Every relation that can appear in the FOLLOWED BY
   clause of a resource transaction must have a key (paper, Section 3.2.1);
   we make that universal: every relation declares a key, defaulting to the
   whole tuple, which gives set semantics. *)

type column = {
  col_name : string;
  col_ty : Value.ty;
}

type t = {
  name : string;
  columns : column array;
  key : int array; (* indices of key columns, sorted, nonempty *)
}

exception Invalid of string

let invalid fmt = Format.kasprintf (fun msg -> raise (Invalid msg)) fmt

let column name ty = { col_name = name; col_ty = ty }

let make ~name ~columns ?key () =
  if columns = [] then invalid "schema %s: no columns" name;
  let columns = Array.of_list columns in
  let arity = Array.length columns in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun c ->
      if Hashtbl.mem seen c.col_name then
        invalid "schema %s: duplicate column %s" name c.col_name;
      Hashtbl.add seen c.col_name ())
    columns;
  let key =
    match key with
    | None -> Array.init arity Fun.id
    | Some [] -> invalid "schema %s: empty key" name
    | Some cols ->
      let idx_of col =
        let rec find i =
          if i >= arity then invalid "schema %s: key column %s not found" name col
          else if String.equal columns.(i).col_name col then i
          else find (i + 1)
        in
        find 0
      in
      let ids = List.map idx_of cols in
      let sorted = List.sort_uniq Int.compare ids in
      if List.length sorted <> List.length ids then
        invalid "schema %s: duplicate key column" name;
      Array.of_list sorted
  in
  { name; columns; key }

let arity s = Array.length s.columns
let column_names s = Array.map (fun c -> c.col_name) s.columns
let column_types s = Array.map (fun c -> c.col_ty) s.columns
let key_indices s = s.key
let key_of_tuple s t = Tuple.project s.key t

let column_index s col =
  let rec find i =
    if i >= arity s then None
    else if String.equal s.columns.(i).col_name col then Some i
    else find (i + 1)
  in
  find 0

let check_tuple s t =
  if Tuple.arity t <> arity s then
    invalid "relation %s: tuple arity %d, expected %d" s.name (Tuple.arity t) (arity s);
  Array.iteri
    (fun i v ->
      if Value.type_of v <> s.columns.(i).col_ty then
        invalid "relation %s: column %s expects %s, got %s" s.name s.columns.(i).col_name
          (Value.ty_name s.columns.(i).col_ty)
          (Value.ty_name (Value.type_of v)))
    t

let pp fmt s =
  let pp_col fmt c = Format.fprintf fmt "%s:%s" c.col_name (Value.ty_name c.col_ty) in
  Format.fprintf fmt "%s(@[<h>%a@])@ key=[%a]" s.name
    (Format.pp_print_seq ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ") pp_col)
    (Array.to_seq s.columns)
    (Format.pp_print_seq ~pp_sep:(fun fmt () -> Format.fprintf fmt ";") Format.pp_print_int)
    (Array.to_seq s.key)

let to_sexp s =
  let col c =
    Sexp.List [ Sexp.Atom c.col_name; Sexp.Atom (Value.ty_name c.col_ty) ]
  in
  Sexp.List
    [ Sexp.Atom s.name;
      Sexp.List (Array.to_list (Array.map col s.columns));
      Sexp.List
        (Array.to_list (Array.map (fun i -> Sexp.Atom (string_of_int i)) s.key));
    ]

let of_sexp sexp =
  match sexp with
  | Sexp.List [ Sexp.Atom name; Sexp.List cols; Sexp.List key ] ->
    let parse_col = function
      | Sexp.List [ Sexp.Atom n; Sexp.Atom ty ] ->
        (match Value.ty_of_name ty with
         | Some ty -> { col_name = n; col_ty = ty }
         | None -> raise (Sexp.Parse_error ("bad column type: " ^ ty)))
      | s -> raise (Sexp.Parse_error ("bad column sexp: " ^ Sexp.to_string s))
    in
    let parse_idx = function
      | Sexp.Atom i ->
        (match int_of_string_opt i with
         | Some i -> i
         | None -> raise (Sexp.Parse_error ("bad key index: " ^ i)))
      | s -> raise (Sexp.Parse_error ("bad key sexp: " ^ Sexp.to_string s))
    in
    { name;
      columns = Array.of_list (List.map parse_col cols);
      key = Array.of_list (List.map parse_idx key);
    }
  | s -> raise (Sexp.Parse_error ("bad schema sexp: " ^ Sexp.to_string s))

(** Relation schemas with mandatory keys.

    Every relation declares a primary key (defaulting to the whole tuple),
    giving the set semantics that the paper's composition theorem assumes for
    relations written by resource transactions. *)

type column = {
  col_name : string;
  col_ty : Value.ty;
}

type t = private {
  name : string;
  columns : column array;
  key : int array;  (** indices of key columns, sorted ascending *)
}

exception Invalid of string

val column : string -> Value.ty -> column

val make : name:string -> columns:column list -> ?key:string list -> unit -> t
(** Build a schema.  [key] names the key columns; omitted means the whole
    tuple is the key.  @raise Invalid on duplicate columns, unknown key
    columns or an empty column list. *)

val arity : t -> int
val column_names : t -> string array
val column_types : t -> Value.ty array
val key_indices : t -> int array
val key_of_tuple : t -> Tuple.t -> Tuple.t
val column_index : t -> string -> int option

val check_tuple : t -> Tuple.t -> unit
(** @raise Invalid when the tuple does not match the schema's arity/types. *)

val pp : Format.formatter -> t -> unit
val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> t

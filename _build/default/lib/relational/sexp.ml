(* Minimal s-expression representation used to serialize values, tuples and
   pending resource transactions for durability.  We implement our own codec
   because the sealed build environment provides no sexplib; the grammar is
   the classic one: atoms (bare or double-quoted with escapes) and lists. *)

type t =
  | Atom of string
  | List of t list

let atom s = Atom s
let list l = List l

let rec equal a b =
  match a, b with
  | Atom x, Atom y -> String.equal x y
  | List xs, List ys -> ( try List.for_all2 equal xs ys with Invalid_argument _ -> false)
  | Atom _, List _ | List _, Atom _ -> false

(* An atom can be printed bare when it is nonempty and contains no character
   that the reader would interpret as structure or whitespace. *)
let bare_atom s =
  s <> ""
  && String.for_all
       (fun c ->
         match c with
         | '(' | ')' | '"' | ';' | ' ' | '\t' | '\n' | '\r' -> false
         | _ -> true)
       s

let escape_atom s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec to_buffer buf = function
  | Atom s -> Buffer.add_string buf (if bare_atom s then s else escape_atom s)
  | List l ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_char buf ' ';
        to_buffer buf s)
      l;
    Buffer.add_char buf ')'

let to_string s =
  let buf = Buffer.create 128 in
  to_buffer buf s;
  Buffer.contents buf

exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun msg -> raise (Parse_error msg)) fmt

(* A tiny recursive-descent reader over a string with an explicit cursor. *)
type cursor = { input : string; mutable pos : int }

let peek cur = if cur.pos < String.length cur.input then Some cur.input.[cur.pos] else None
let advance cur = cur.pos <- cur.pos + 1

let rec skip_space cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance cur;
    skip_space cur
  | Some ';' ->
    (* Comment to end of line. *)
    let rec to_eol () =
      match peek cur with
      | Some '\n' | None -> ()
      | Some _ ->
        advance cur;
        to_eol ()
    in
    to_eol ();
    skip_space cur
  | Some _ | None -> ()

let read_quoted cur =
  let buf = Buffer.create 16 in
  advance cur;
  (* opening quote *)
  let rec loop () =
    match peek cur with
    | None -> parse_error "unterminated string at offset %d" cur.pos
    | Some '"' ->
      advance cur;
      Buffer.contents buf
    | Some '\\' ->
      advance cur;
      (match peek cur with
       | Some 'n' -> Buffer.add_char buf '\n'
       | Some 't' -> Buffer.add_char buf '\t'
       | Some 'r' -> Buffer.add_char buf '\r'
       | Some (('"' | '\\') as c) -> Buffer.add_char buf c
       | Some c -> parse_error "bad escape '\\%c' at offset %d" c cur.pos
       | None -> parse_error "unterminated escape at offset %d" cur.pos);
      advance cur;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance cur;
      loop ()
  in
  loop ()

let read_bare cur =
  let start = cur.pos in
  let rec loop () =
    match peek cur with
    | Some ('(' | ')' | '"' | ';' | ' ' | '\t' | '\n' | '\r') | None -> ()
    | Some _ ->
      advance cur;
      loop ()
  in
  loop ();
  String.sub cur.input start (cur.pos - start)

let rec read_sexp cur =
  skip_space cur;
  match peek cur with
  | None -> parse_error "unexpected end of input"
  | Some '(' ->
    advance cur;
    let rec items acc =
      skip_space cur;
      match peek cur with
      | Some ')' ->
        advance cur;
        List (List.rev acc)
      | None -> parse_error "unterminated list"
      | Some _ -> items (read_sexp cur :: acc)
    in
    items []
  | Some ')' -> parse_error "unexpected ')' at offset %d" cur.pos
  | Some '"' -> Atom (read_quoted cur)
  | Some _ -> Atom (read_bare cur)

let of_string input =
  let cur = { input; pos = 0 } in
  let s = read_sexp cur in
  skip_space cur;
  (match peek cur with
   | Some c -> parse_error "trailing input '%c' at offset %d" c cur.pos
   | None -> ());
  s

let of_string_many input =
  let cur = { input; pos = 0 } in
  let rec loop acc =
    skip_space cur;
    match peek cur with
    | None -> List.rev acc
    | Some _ -> loop (read_sexp cur :: acc)
  in
  loop []

let rec pp fmt = function
  | Atom s -> Format.pp_print_string fmt (if bare_atom s then s else escape_atom s)
  | List l ->
    Format.fprintf fmt "@[<hov 1>(%a)@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
      l

(** Minimal s-expressions for durable serialization (values, tuples, pending
    resource transactions).  Atoms are printed bare when safe, double-quoted
    with escapes otherwise; [;] starts a comment running to end of line. *)

type t =
  | Atom of string
  | List of t list

val atom : string -> t
val list : t list -> t
val equal : t -> t -> bool

val to_string : t -> string
(** Render on a single line; inverse of {!of_string}. *)

exception Parse_error of string

val of_string : string -> t
(** Parse exactly one s-expression.  @raise Parse_error on malformed input or
    trailing garbage. *)

val of_string_many : string -> t list
(** Parse a whole document of consecutive s-expressions. *)

val pp : Format.formatter -> t -> unit

(* Tuples are immutable value arrays.  By convention callers never mutate a
   tuple after handing it to a table; [copy] exists for the rare cases where a
   caller builds tuples incrementally. *)

type t = Value.t array

let of_list = Array.of_list
let to_list = Array.to_list
let arity = Array.length
let get = Array.get
let copy = Array.copy

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

(* Projection onto a list of column indices, used for key extraction and
   secondary-index keys. *)
let project indices t = Array.map (fun i -> t.(i)) indices

let pp fmt t =
  Format.fprintf fmt "(@[<h>%a@])"
    (Format.pp_print_seq
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
       Value.pp)
    (Array.to_seq t)

let to_string t = Format.asprintf "%a" pp t
let to_sexp t = Sexp.List (Array.to_list (Array.map Value.to_sexp t))

let of_sexp = function
  | Sexp.List items -> Array.of_list (List.map Value.of_sexp items)
  | Sexp.Atom _ as s -> raise (Sexp.Parse_error ("bad tuple sexp: " ^ Sexp.to_string s))

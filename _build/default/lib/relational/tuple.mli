(** Immutable tuples of database values. *)

type t = Value.t array

val of_list : Value.t list -> t
val to_list : t -> Value.t list
val arity : t -> int
val get : t -> int -> Value.t
val copy : t -> t

val compare : t -> t -> int
(** Lexicographic; shorter tuples sort first. *)

val equal : t -> t -> bool
val hash : t -> int

val project : int array -> t -> t
(** [project indices t] extracts the listed columns in order; used for
    primary-key and secondary-index keys. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> t

(* Database values.  The travel and calendar scenarios only need integers,
   strings and booleans; keeping the universe closed lets unification and
   grounding stay total and decidable. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool

type ty =
  | Tint
  | Tstr
  | Tbool

let int n = Int n
let str s = Str s
let bool b = Bool b

let type_of = function
  | Int _ -> Tint
  | Str _ -> Tstr
  | Bool _ -> Tbool

let ty_name = function
  | Tint -> "int"
  | Tstr -> "str"
  | Tbool -> "bool"

let ty_of_name = function
  | "int" -> Some Tint
  | "str" -> Some Tstr
  | "bool" -> Some Tbool
  | _ -> None

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Int _, (Str _ | Bool _) -> -1
  | (Str _ | Bool _), Int _ -> 1
  | Str _, Bool _ -> -1
  | Bool _, Str _ -> 1

let equal a b = compare a b = 0

let hash = function
  | Int n -> Hashtbl.hash (0, n)
  | Str s -> Hashtbl.hash (1, s)
  | Bool b -> Hashtbl.hash (2, b)

let pp fmt = function
  | Int n -> Format.pp_print_int fmt n
  | Str s -> Format.fprintf fmt "%S" s
  | Bool b -> Format.pp_print_bool fmt b

let to_string v = Format.asprintf "%a" pp v

let to_sexp = function
  | Int n -> Sexp.List [ Sexp.Atom "i"; Sexp.Atom (string_of_int n) ]
  | Str s -> Sexp.List [ Sexp.Atom "s"; Sexp.Atom s ]
  | Bool b -> Sexp.List [ Sexp.Atom "b"; Sexp.Atom (string_of_bool b) ]

let of_sexp = function
  | Sexp.List [ Sexp.Atom "i"; Sexp.Atom n ] ->
    (match int_of_string_opt n with
     | Some n -> Int n
     | None -> raise (Sexp.Parse_error ("bad int value: " ^ n)))
  | Sexp.List [ Sexp.Atom "s"; Sexp.Atom s ] -> Str s
  | Sexp.List [ Sexp.Atom "b"; Sexp.Atom b ] ->
    (match bool_of_string_opt b with
     | Some b -> Bool b
     | None -> raise (Sexp.Parse_error ("bad bool value: " ^ b)))
  | s -> raise (Sexp.Parse_error ("bad value sexp: " ^ Sexp.to_string s))

(** Database values: the closed universe over which tuples, unification and
    grounding operate. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool

(** Column types. *)
type ty =
  | Tint
  | Tstr
  | Tbool

val int : int -> t
val str : string -> t
val bool : bool -> t

val type_of : t -> ty
val ty_name : ty -> string
val ty_of_name : string -> ty option

val compare : t -> t -> int
(** Total order: all ints before all strings before all booleans; natural
    order within a type. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> t
(** @raise Sexp.Parse_error on a sexp that does not encode a value. *)

lib/sat/cnf.ml: Array Format Int List

lib/sat/cnf.mli: Format

lib/sat/dpll.ml: Array List

lib/sat/dpll.mli:

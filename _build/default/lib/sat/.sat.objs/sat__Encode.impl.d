lib/sat/encode.ml: Array Atom Cnf Dpll Formula Hashtbl List Logic Option Relational Subst Term

lib/sat/encode.mli: Cnf Logic Relational

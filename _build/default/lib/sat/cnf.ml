(* CNF instances.  Variables are positive integers minted by the builder;
   literals are nonzero integers (negative = negated), DIMACS style. *)

type lit = int

type t = {
  mutable num_vars : int;
  mutable clauses : lit array list;
  mutable num_clauses : int;
}

let create () = { num_vars = 0; clauses = []; num_clauses = 0 }

let fresh_var t =
  t.num_vars <- t.num_vars + 1;
  t.num_vars

let var_of_lit l = abs l
let neg l = -l

exception Bad_literal of int

let add_clause t lits =
  List.iter
    (fun l ->
      if l = 0 || abs l > t.num_vars then raise (Bad_literal l))
    lits;
  (* Drop tautologies and duplicate literals. *)
  let sorted = List.sort_uniq Int.compare lits in
  let tautology = List.exists (fun l -> List.mem (-l) sorted) sorted in
  if not tautology then begin
    t.clauses <- Array.of_list sorted :: t.clauses;
    t.num_clauses <- t.num_clauses + 1
  end

let add_at_most_one t lits =
  let rec pairs = function
    | [] -> ()
    | l :: rest ->
      List.iter (fun l' -> add_clause t [ -l; -l' ]) rest;
      pairs rest
  in
  pairs lits

let add_exactly_one t lits =
  add_clause t lits;
  add_at_most_one t lits

let clauses t = t.clauses
let num_vars t = t.num_vars
let num_clauses t = t.num_clauses

let pp fmt t =
  Format.fprintf fmt "p cnf %d %d@." t.num_vars t.num_clauses;
  List.iter
    (fun clause ->
      Array.iter (fun l -> Format.fprintf fmt "%d " l) clause;
      Format.fprintf fmt "0@.")
    (List.rev t.clauses)

(** CNF instances, DIMACS-style: positive-integer variables, signed-integer
    literals. *)

type lit = int

type t

val create : unit -> t
val fresh_var : t -> lit
val var_of_lit : lit -> int
val neg : lit -> lit

exception Bad_literal of int

val add_clause : t -> lit list -> unit
(** Deduplicates literals and drops tautologies.
    @raise Bad_literal on zero or out-of-range literals. *)

val add_at_most_one : t -> lit list -> unit
(** Pairwise AMO encoding. *)

val add_exactly_one : t -> lit list -> unit

val clauses : t -> lit array list
val num_vars : t -> int
val num_clauses : t -> int
val pp : Format.formatter -> t -> unit

(** DPLL SAT solver: two watched literals, unit propagation,
    activity-guided branching, chronological backtracking.  Realizes the
    paper's Section 6 proposal of offloading composed-body satisfiability
    to a SAT solver (via {!Encode}). *)

type result =
  | Sat of bool array  (** model indexed by variable, 1-based *)
  | Unsat

val solve : ?num_vars:int -> int array list -> result
(** Solve a clause list (DIMACS-style literals).  [num_vars] may be given
    when it exceeds the largest literal. *)

val check_model : int array list -> bool array -> bool
(** Does the model satisfy every clause? *)

lib/solver/backtrack.ml: Atom Formula List Logic Option Relational Seq Subst Term Unify

lib/solver/backtrack.mli: Logic Relational

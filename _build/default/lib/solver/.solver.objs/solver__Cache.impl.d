lib/solver/cache.ml: Backtrack Formula List Logic Subst Term

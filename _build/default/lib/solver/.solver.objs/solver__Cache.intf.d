lib/solver/cache.mli: Backtrack Logic Relational

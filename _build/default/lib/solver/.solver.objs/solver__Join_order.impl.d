lib/solver/join_order.ml: Array Atom Float List Logic Relational Term

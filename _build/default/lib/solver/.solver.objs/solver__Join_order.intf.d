lib/solver/join_order.mli: Logic Relational

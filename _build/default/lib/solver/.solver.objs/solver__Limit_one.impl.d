lib/solver/limit_one.ml: Atom Backtrack Formula Join_order List Logic Option Relational Seq Subst Term Unify

lib/solver/limit_one.mli: Backtrack Logic Relational

lib/solver/query.ml: Array Atom Backtrack Format Formula Hashtbl List Logic Option Relational Subst Term

lib/solver/query.mli: Format Logic Relational

lib/solver/soft.ml: Array Backtrack Formula Fun Int List Logic Option Subst

lib/solver/soft.mli: Backtrack Logic Relational

(** Solution cache (paper Section 4): keeps witness groundings of a
    composed transaction body and amortizes admission checks by extending
    them instead of re-solving.

    Implements the multi-solution strategy the paper describes but left
    unimplemented in its prototype: up to [capacity] witnesses in LRU
    order, plus {!refill} for computing spares out of the critical path. *)

type stats = {
  mutable extensions : int;
  mutable extension_hits : int;
  mutable full_solves : int;
  mutable invalidations : int;
}

val fresh_stats : unit -> stats

type t

val default_capacity : int
(** 1 — the paper prototype's behaviour. *)

val create : ?stats:stats -> ?capacity:int -> unit -> t
val witness : t -> Logic.Subst.t option
val witnesses : t -> Logic.Subst.t list
val stats : t -> stats
val solver_stats : t -> Backtrack.stats
val invalidate : t -> unit

val set_witness : t -> Logic.Subst.t -> unit
(** Authoritative witness for a new composed body; spares are dropped. *)

val extend_or_resolve :
  ?node_limit:int ->
  t ->
  Relational.Database.t ->
  new_clauses:Logic.Formula.t ->
  full_formula:Logic.Formula.t ->
  Logic.Subst.t option
(** Try to extend each cached witness over [new_clauses] (successful base
    promoted, LRU); on miss re-solve [full_formula].  Caches and returns
    the resulting witness; [None] means the composed body is
    unsatisfiable and admission must be refused. *)

val revalidate : t -> Relational.Database.t -> Logic.Formula.t -> bool
(** After an external write: drop witnesses the current database no
    longer supports; [true] when at least one survives. *)

val refill : ?node_limit:int -> t -> Relational.Database.t -> Logic.Formula.t -> int
(** Top the cache up to capacity with distinct witnesses (the paper's
    background-process role); returns the number now held. *)

(* Join-order planning with bounded search depth.

   The paper's prototype leans on MySQL's optimizer, whose plan search is
   exhaustive by default and bounded by `optimizer_search_depth`; the
   evaluation section sets that parameter to 3 and later attributes latency
   anomalies to bad plans.  This module reproduces the mechanism: a
   depth-[d] lookahead over atom orderings with a textbook cardinality
   model — exhaustive when [search_depth >= number of atoms], greedy
   committing one atom at a time otherwise. *)

module Table = Relational.Table
module Database = Relational.Database
open Logic

(* Estimated result size of probing [atom] when the variables in [bound]
   already have values.  Constants and bound variables both count as bound
   columns; an index on a superset-of-bound column set gives
   cardinality / distinct-keys, a primary key fully covered gives 1. *)
let estimate db bound (atom : Atom.t) =
  match Database.find_table db atom.Atom.rel with
  | None -> 0.
  | Some table ->
    let schema = Table.schema table in
    let card = float_of_int (Table.cardinality table) in
    if card = 0. then 0.
    else begin
      let bound_cols =
        let cols = ref [] in
        Array.iteri
          (fun i t ->
            match t with
            | Term.C _ -> cols := i :: !cols
            | Term.V v -> if Term.Var_set.mem v bound then cols := i :: !cols)
          atom.Atom.args;
        !cols
      in
      let covered idx_cols = Array.for_all (fun c -> List.mem c bound_cols) idx_cols in
      if covered (Relational.Schema.key_indices schema) then 1.
      else begin
        let best =
          List.fold_left
            (fun acc (cols, distinct) ->
              if covered cols && distinct > 0 then Float.min acc (card /. float_of_int distinct)
              else acc)
            card (Table.index_stats table)
        in
        (* Unindexed bound columns still filter; assume independence with a
           fixed selectivity per extra bound column. *)
        let indexed_cols =
          List.fold_left
            (fun acc (cols, _) -> if covered cols then max acc (Array.length cols) else acc)
            0 (Table.index_stats table)
        in
        let extra = max 0 (List.length bound_cols - indexed_cols) in
        Float.max 1. (best *. (0.1 ** float_of_int extra))
      end
    end

let atom_bound_vars bound (atom : Atom.t) = Term.Var_set.union bound (Atom.vars atom)

(* Cost of evaluating [order]: the sum of estimated intermediate result
   sizes, the classical left-deep nested-loop model. *)
let cost_of_order db atoms =
  let _, _, total =
    List.fold_left
      (fun (bound, rows, total) atom ->
        let est = estimate db bound atom in
        let rows = Float.max 1. (rows *. est) in
        (atom_bound_vars bound atom, rows, total +. rows))
      (Term.Var_set.empty, 1., 0.)
      atoms
  in
  total

(* Best next prefix of length <= depth, explored exhaustively. *)
let rec best_extension db bound rows depth remaining =
  if depth = 0 || remaining = [] then (0., [])
  else begin
    let try_first best atom =
      let others = List.filter (fun a -> a != atom) remaining in
      let est = estimate db bound atom in
      let rows' = Float.max 1. (rows *. est) in
      let sub_cost, sub_order =
        best_extension db (atom_bound_vars bound atom) rows' (depth - 1) others
      in
      let cost = rows' +. sub_cost in
      match best with
      | Some (c, _) when c <= cost -> best
      | _ -> Some (cost, atom :: sub_order)
    in
    match List.fold_left try_first None remaining with
    | Some (cost, order) -> (cost, order)
    | None -> (0., [])
  end

let plan ?(search_depth = max_int) db atoms =
  let rec commit bound rows acc remaining =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let depth = min search_depth (List.length remaining) in
      (match best_extension db bound rows depth remaining with
       | _, [] -> List.rev_append acc remaining
       | _, first :: _ ->
         let est = estimate db bound first in
         let rows' = Float.max 1. (rows *. est) in
         let remaining' = List.filter (fun a -> a != first) remaining in
         commit (atom_bound_vars bound first) rows' (first :: acc) remaining')
  in
  commit Term.Var_set.empty 1. [] atoms

(** Join-order planning with bounded lookahead — the reproduction of
    MySQL's [optimizer_search_depth] that the paper's evaluation tunes. *)

val estimate :
  Relational.Database.t -> Logic.Term.Var_set.t -> Logic.Atom.t -> float
(** Estimated matches for probing an atom when [bound] variables already
    have values: 1 for a covered key, cardinality/distinct-keys for a
    covered index, with a fixed per-extra-column selectivity otherwise. *)

val cost_of_order : Relational.Database.t -> Logic.Atom.t list -> float
(** Sum of estimated intermediate sizes under the left-deep nested-loop
    model. *)

val plan : ?search_depth:int -> Relational.Database.t -> Logic.Atom.t list -> Logic.Atom.t list
(** Reorder atoms for evaluation.  Exhaustive when [search_depth] covers all
    atoms (the MySQL default), greedy with depth-[d] lookahead otherwise. *)

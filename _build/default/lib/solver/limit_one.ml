(* The LIMIT-1 compilation path.

   The paper's prototype answers each satisfiability check by issuing a
   `LIMIT 1` SQL join query against MySQL.  This module mirrors that
   architecture: the composed body is expanded to disjuncts, each disjunct
   is planned as a *static* join order (with the bounded-lookahead planner
   standing in for MySQL's optimizer), and evaluated as a fixed-order
   indexed nested-loop join that stops at the first row.

   Unlike {!Backtrack} the atom order is chosen once per disjunct, which is
   exactly what makes the paper's "bad query plan" anomaly reproducible:
   with a small [search_depth] the planner occasionally commits to a poor
   order and the query runs orders of magnitude slower. *)

module Table = Relational.Table
module Database = Relational.Database
open Logic

exception Formula_too_large

let default_max_disjuncts = 4096

(* A disjunct: positive atoms plus residual constraints. *)
type disjunct = {
  atoms : Atom.t list;
  eqs : (Term.t * Term.t) list;
  neqs : (Term.t * Term.t) list;
  cmps : Formula.t list; (* residual Lt/Le leaves *)
  not_atoms : Atom.t list;
  key_frees : Atom.t list;
}

let empty_disjunct =
  { atoms = []; eqs = []; neqs = []; cmps = []; not_atoms = []; key_frees = [] }

(* Distribute a formula into DNF, counting disjuncts against [max]. *)
let dnf ?(max_disjuncts = default_max_disjuncts) formula =
  let rec go f : disjunct list =
    match f with
    | Formula.True -> [ empty_disjunct ]
    | Formula.False -> []
    | Formula.Atom a -> [ { empty_disjunct with atoms = [ a ] } ]
    | Formula.Not_atom a -> [ { empty_disjunct with not_atoms = [ a ] } ]
    | Formula.Key_free a -> [ { empty_disjunct with key_frees = [ a ] } ]
    | Formula.Eq (x, y) -> [ { empty_disjunct with eqs = [ (x, y) ] } ]
    | Formula.Neq (x, y) -> [ { empty_disjunct with neqs = [ (x, y) ] } ]
    | (Formula.Lt _ | Formula.Le _) as f -> [ { empty_disjunct with cmps = [ f ] } ]
    | Formula.Or fs -> List.concat_map go fs
    | Formula.And fs ->
      List.fold_left
        (fun acc f ->
          let here = go f in
          let product =
            List.concat_map
              (fun d1 ->
                List.map
                  (fun d2 ->
                    {
                      atoms = d1.atoms @ d2.atoms;
                      eqs = d1.eqs @ d2.eqs;
                      neqs = d1.neqs @ d2.neqs;
                      cmps = d1.cmps @ d2.cmps;
                      not_atoms = d1.not_atoms @ d2.not_atoms;
                      key_frees = d1.key_frees @ d2.key_frees;
                    })
                  here)
              acc
          in
          if List.length product > max_disjuncts then raise Formula_too_large;
          product)
        [ empty_disjunct ] fs
  in
  let disjuncts = go formula in
  if List.length disjuncts > max_disjuncts then raise Formula_too_large;
  disjuncts

(* Evaluate one disjunct with a fixed atom order. *)
let solve_disjunct ?(search_depth = max_int) ?(stats = Backtrack.fresh_stats ()) db seed d =
  (* Equalities first: they only strengthen the seed or fail the disjunct. *)
  let subst =
    List.fold_left
      (fun acc (x, y) ->
        match acc with
        | None -> None
        | Some s -> Unify.unify_terms s x y)
      (Some seed) d.eqs
  in
  match subst with
  | None -> None
  | Some subst ->
    let order = Join_order.plan ~search_depth db (List.map (Subst.apply_atom subst) d.atoms) in
    let check_residuals subst =
      let neq_ok =
        List.for_all
          (fun (x, y) ->
            match Subst.resolve subst x, Subst.resolve subst y with
            | Term.C a, Term.C b -> not (Relational.Value.equal a b)
            | rx, ry ->
              (* Two aliased variables are equal whatever they get bound
                 to; distinct variables are vacuously distinct. *)
              not (Term.equal rx ry))
          d.neqs
      in
      neq_ok
      && List.for_all
           (fun f ->
             match Formula.apply_subst subst f with
             | Formula.False -> false
             | _ -> true (* true, or non-ground: vacuously satisfiable *))
           d.cmps
      && List.for_all
           (fun a ->
             let a = Subst.apply_atom subst a in
             if Atom.is_ground a then not (Database.mem_tuple db a.Atom.rel (Atom.to_tuple a))
             else true)
           d.not_atoms
      && List.for_all
           (fun a ->
             let a = Subst.apply_atom subst a in
             if Atom.is_ground a then not (Database.key_occupied db a.Atom.rel (Atom.to_tuple a))
             else true)
           d.key_frees
    in
    let rec join subst = function
      | [] -> if check_residuals subst then Some subst else None
      | atom :: rest ->
        stats.Backtrack.nodes <- stats.Backtrack.nodes + 1;
        let atom = Subst.apply_atom subst atom in
        (match Database.find_table db atom.Atom.rel with
         | None -> None
         | Some table ->
           let rec try_tuples candidates =
             match Seq.uncons candidates with
             | None ->
               stats.Backtrack.backtracks <- stats.Backtrack.backtracks + 1;
               None
             | Some (tuple, more) ->
               stats.Backtrack.candidates <- stats.Backtrack.candidates + 1;
               (match Unify.mgu ~subst atom (Atom.of_tuple atom.Atom.rel tuple) with
                | Some subst' ->
                  (match join subst' rest with
                   | Some _ as result -> result
                   | None -> try_tuples more)
                | None -> try_tuples more)
           in
           try_tuples (Table.lookup_seq table (Atom.to_pattern atom)))
    in
    join subst order

let solve ?search_depth ?max_disjuncts ?(seed = Subst.empty) ?stats db formula =
  let formula = Formula.apply_subst seed formula in
  let disjuncts = dnf ?max_disjuncts formula in
  List.find_map (fun d -> solve_disjunct ?search_depth ?stats db seed d) disjuncts

let satisfiable ?search_depth ?max_disjuncts ?seed ?stats db formula =
  Option.is_some (solve ?search_depth ?max_disjuncts ?seed ?stats db formula)

(** LIMIT-1 compilation path: the paper prototype's architecture, where each
    satisfiability check becomes a statically-planned first-answer join
    query.  Slower and plan-sensitive by design — the ablation counterpart
    of {!Backtrack}. *)

exception Formula_too_large

val default_max_disjuncts : int

val solve :
  ?search_depth:int ->
  ?max_disjuncts:int ->
  ?seed:Logic.Subst.t ->
  ?stats:Backtrack.stats ->
  Relational.Database.t ->
  Logic.Formula.t ->
  Logic.Subst.t option
(** @raise Formula_too_large when DNF expansion exceeds [max_disjuncts]. *)

val satisfiable :
  ?search_depth:int ->
  ?max_disjuncts:int ->
  ?seed:Logic.Subst.t ->
  ?stats:Backtrack.stats ->
  Relational.Database.t ->
  Logic.Formula.t ->
  bool

(* Conjunctive read queries: the SELECT surface clients use against a
   quantum database.  A query has a head (the returned terms), body atoms
   and residual constraints; answers are the distinct head tuples of all
   satisfying valuations. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
open Logic

type t = {
  head : Term.t list;
  body : Atom.t list;
  constraints : Formula.t list; (* equalities / disequalities *)
}

let make ?(constraints = []) ~head ~body () = { head; body; constraints }

let formula q = Formula.and_ (List.map Formula.atom q.body @ q.constraints)

let vars q =
  List.fold_left (fun acc a -> Term.Var_set.union acc (Atom.vars a)) Term.Var_set.empty q.body

(* Range restriction: every head variable must occur in the body, otherwise
   answers would be infinite. *)
let well_formed q =
  let bvars = vars q in
  List.for_all
    (fun t ->
      match t with
      | Term.C _ -> true
      | Term.V v -> Term.Var_set.mem v bvars)
    q.head

exception Not_range_restricted

let head_tuple subst q =
  Array.of_list
    (List.map
       (fun t ->
         match Subst.resolve subst t with
         | Term.C v -> v
         | Term.V _ -> raise Not_range_restricted)
       q.head)

let all ?limit db q =
  if not (well_formed q) then raise Not_range_restricted;
  let solutions = Backtrack.solutions ?limit db (formula q) in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun subst ->
      let tuple = head_tuple subst q in
      if Hashtbl.mem seen tuple then None
      else begin
        Hashtbl.add seen tuple ();
        Some tuple
      end)
    solutions

let first db q =
  if not (well_formed q) then raise Not_range_restricted;
  Backtrack.solve db (formula q) |> Option.map (fun subst -> head_tuple subst q)

let exists db q = Option.is_some (Backtrack.solve db (formula q))

let pp fmt q =
  Format.fprintf fmt "@[<hov 2>(%a) :-@ %a@]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ") Term.pp)
    q.head
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ") Atom.pp)
    q.body

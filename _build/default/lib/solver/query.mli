(** Conjunctive read queries: head terms, body atoms, residual constraints.
    The SELECT surface of the quantum database API. *)

type t = {
  head : Logic.Term.t list;
  body : Logic.Atom.t list;
  constraints : Logic.Formula.t list;
}

val make :
  ?constraints:Logic.Formula.t list ->
  head:Logic.Term.t list ->
  body:Logic.Atom.t list ->
  unit ->
  t

val formula : t -> Logic.Formula.t
val vars : t -> Logic.Term.Var_set.t
val well_formed : t -> bool

exception Not_range_restricted

val all : ?limit:int -> Relational.Database.t -> t -> Relational.Tuple.t list
(** Distinct head tuples of all satisfying valuations.
    @raise Not_range_restricted when a head variable misses from the body. *)

val first : Relational.Database.t -> t -> Relational.Tuple.t option
val exists : Relational.Database.t -> t -> bool
val pp : Format.formatter -> t -> unit

(* Soft (OPTIONAL) constraint maximization.

   Semantics from Sections 2 and 3.1: the system only guarantees the hard
   body; when values are fixed, an assignment satisfying as many optional
   conditions as possible must be preferred.  We search subsets of the
   optional formulas from largest to smallest; for more optionals than
   [exact_threshold] the exponential sweep is replaced by a greedy
   drop-one-at-a-time descent (documented deviation: greedy may be
   suboptimal, but resource transactions carry at most a handful of
   optional atoms in all paper workloads). *)

open Logic

type outcome = {
  valuation : Subst.t;
  satisfied : bool array; (* which optional formulas the valuation honours *)
}

let exact_threshold = 12

let subsets_by_size n =
  (* All bitmasks over n elements, largest popcount first; n <= exact_threshold. *)
  let popcount m =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go m 0
  in
  let masks = List.init (1 lsl n) Fun.id in
  List.sort (fun a b -> Int.compare (popcount b) (popcount a)) masks

let formula_of_mask hard soft mask =
  let chosen =
    List.filteri (fun i _ -> mask land (1 lsl i) <> 0) soft
  in
  (* Optionals first: they are the tight constraints, and the solver breaks
     branching ties by goal order, so putting them ahead of the hard body
     keeps their conflicts shallow in the search tree. *)
  Formula.and_ (chosen @ [ hard ])

let flags_of_mask n mask = Array.init n (fun i -> mask land (1 lsl i) <> 0)

(* One attempt at a mask.  Exhausting the node budget while *optionals*
   are in play is treated as "this subset cannot be satisfied cheaply" and
   the search moves to a smaller subset — optionals are best-effort by
   definition (Section 2), so trading completeness of the *preference*
   maximization for bounded latency is semantically safe.  The hard-only
   mask must stay exact, so its budget overrun propagates. *)
let attempt ?node_limit ?seed ?stats db hard soft n mask =
  let f = formula_of_mask hard soft mask in
  match Backtrack.solve ?node_limit ?seed ?stats db f with
  | Some valuation -> Some { valuation; satisfied = flags_of_mask n mask }
  | None -> None
  | exception Backtrack.Too_many_nodes when mask <> 0 -> None

let solve_exact ?node_limit ?seed ?stats db hard soft =
  let n = List.length soft in
  let rec try_masks = function
    | [] -> None
    | mask :: rest ->
      (match attempt ?node_limit ?seed ?stats db hard soft n mask with
       | Some _ as outcome -> outcome
       | None -> try_masks rest)
  in
  try_masks (subsets_by_size n)

let solve_greedy ?node_limit ?seed ?stats db hard soft =
  let n = List.length soft in
  let full_mask = (1 lsl n) - 1 in
  let descend mask =
    match attempt ?node_limit ?seed ?stats db hard soft n mask with
    | Some _ as outcome -> outcome
    | None ->
      if mask = 0 then None
      else begin
        (* Drop the optional whose removal first yields a solution. *)
        let rec drop i =
          if i >= n then None
          else if mask land (1 lsl i) = 0 then drop (i + 1)
          else
            let mask' = mask land lnot (1 lsl i) in
            match attempt ?node_limit ?seed ?stats db hard soft n mask' with
            | Some _ as outcome -> outcome
            | None -> drop (i + 1)
        in
        match drop 0 with
        | Some _ as result -> result
        | None ->
          (* No single drop helps; abandon all optionals. *)
          attempt ?node_limit ?seed ?stats db hard soft n 0
      end
  in
  descend full_mask

let solve ?node_limit ?seed ?stats db ~hard ~soft =
  match soft with
  | [] ->
    Backtrack.solve ?node_limit ?seed ?stats db hard
    |> Option.map (fun valuation -> { valuation; satisfied = [||] })
  | _ ->
    if List.length soft <= exact_threshold then solve_exact ?node_limit ?seed ?stats db hard soft
    else solve_greedy ?node_limit ?seed ?stats db hard soft

let satisfied_count outcome = Array.fold_left (fun n b -> if b then n + 1 else n) 0 outcome.satisfied

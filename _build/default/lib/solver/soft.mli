(** Soft (OPTIONAL) constraint maximization: find a valuation of the hard
    formula satisfying as many optional formulas as possible — the
    preference rule of Sections 2 and 3.1. *)

type outcome = {
  valuation : Logic.Subst.t;
  satisfied : bool array;  (** per optional formula, in input order *)
}

val exact_threshold : int
(** Up to this many optionals the subset sweep is exhaustive (optimal);
    beyond it a greedy drop-one descent is used. *)

val solve :
  ?node_limit:int ->
  ?seed:Logic.Subst.t ->
  ?stats:Backtrack.stats ->
  Relational.Database.t ->
  hard:Logic.Formula.t ->
  soft:Logic.Formula.t list ->
  outcome option
(** [None] only when the hard formula itself is unsatisfiable. *)

val satisfied_count : outcome -> int

lib/workload/calendar.ml: Atom Formula List Logic Quantum Relational Solver Term

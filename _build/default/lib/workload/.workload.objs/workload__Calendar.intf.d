lib/workload/calendar.mli: Quantum Relational Solver

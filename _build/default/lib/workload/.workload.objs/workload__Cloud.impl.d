lib/workload/cloud.ml: Array Atom Formula List Logic Quantum Relational String Term

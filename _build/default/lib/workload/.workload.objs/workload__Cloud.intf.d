lib/workload/cloud.mli: Quantum Relational

lib/workload/flights.ml: List Relational

lib/workload/flights.mli: Relational

lib/workload/prng.mli:

lib/workload/runner.ml: Array Flights Float List Prng Quantum Relational Solver Travel Unix

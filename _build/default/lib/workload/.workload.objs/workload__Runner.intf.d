lib/workload/runner.mli: Flights Prng Quantum Travel

lib/workload/travel.ml: Array Atom Flights Formula Fun Hashtbl Int List Logic Option Printf Prng Quantum Relational Solver String Term

lib/workload/travel.mli: Flights Prng Quantum Relational Solver

(* The calendar-management scenario of Section 1: meetings whose time
   slots stay quantum until shortly before they happen, so a
   higher-priority meeting arriving late displaces them without any human
   rescheduling.

   Relations:
     Free(person, slot)    — the person is free in the slot
     Meeting(mid, slot)    — the meeting is fixed in the slot (after
                             grounding; pending meetings keep it open)

   A meeting request for participants p1..pn is the resource transaction

     -Free(p1,s), ..., -Free(pn,s), +Meeting(m, s)
        :-1 Free(p1,s), ..., Free(pn,s) [, preferences]

   CHOOSE 1 picks a common slot; deferral keeps it unpicked until a read
   (someone checks the calendar) or an explicit grounding. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Table = Relational.Table
module Database = Relational.Database
module Store = Relational.Store
module Rtxn = Quantum.Rtxn
open Logic

let free_schema =
  Schema.make ~name:"Free"
    ~columns:[ Schema.column "person" Value.Tstr; Schema.column "slot" Value.Tint ]
    ~key:[ "person"; "slot" ] ()

let meeting_schema =
  Schema.make ~name:"Meeting"
    ~columns:[ Schema.column "mid" Value.Tstr; Schema.column "slot" Value.Tint ]
    ~key:[ "mid" ] ()

(* A working week of [days] × [hours_per_day] slots, everyone free. *)
let fresh_store ?(backend = Relational.Wal.mem_backend ()) ~people ~days ~hours_per_day () =
  let store = Store.create backend in
  ignore (Store.create_table store free_schema);
  ignore (Store.create_table store meeting_schema);
  let ops = ref [] in
  List.iter
    (fun person ->
      for slot = 0 to (days * hours_per_day) - 1 do
        ops := Database.Insert ("Free", Tuple.of_list [ Value.Str person; Value.Int slot ]) :: !ops
      done)
    people;
  (match Store.apply store (List.rev !ops) with
   | Ok () -> ()
   | Error err -> failwith (Database.op_error_to_string err));
  Table.create_index_on (Store.table store "Free") [ "person" ];
  Table.create_index_on (Store.table store "Free") [ "slot" ];
  store

(* Meeting request: any slot where all participants are free, with an
   optional preference window [prefer_before] (e.g. "this week"). *)
let meeting_txn ?prefer_before ~mid ~participants () =
  let s = Term.V (Term.fresh_var "slot") in
  let hard = List.map (fun p -> Atom.make "Free" [ Term.str p; s ]) participants in
  let deletes = List.map (fun p -> Rtxn.Del (Atom.make "Free" [ Term.str p; s ])) participants in
  let optional_constraints =
    match prefer_before with
    | Some bound -> [ Formula.lt s (Term.int bound) ]
    | None -> []
  in
  Rtxn.make ~label:mid ~hard ~optional_constraints
    ~updates:(deletes @ [ Rtxn.Ins (Atom.make "Meeting" [ Term.str mid; s ]) ])
    ()

(* A fixed-time meeting (the short-notice CEO meeting): hard slot. *)
let fixed_meeting_txn ~mid ~participants ~slot () =
  let s = Term.V (Term.fresh_var "slot") in
  let hard =
    List.map (fun p -> Atom.make "Free" [ Term.str p; s ]) participants
    @ []
  in
  Rtxn.make ~label:mid ~hard
    ~constraints:[ Formula.eq s (Term.int slot) ]
    ~updates:
      (List.map (fun p -> Rtxn.Del (Atom.make "Free" [ Term.str p; s ])) participants
      @ [ Rtxn.Ins (Atom.make "Meeting" [ Term.str mid; s ]) ])
    ()

(* Where is the meeting?  Forces grounding under the Collapse policy. *)
let slot_query mid =
  let s = Term.V (Term.fresh_var "slot") in
  Solver.Query.make ~head:[ s ] ~body:[ Atom.make "Meeting" [ Term.str mid; s ] ] ()

let meeting_slot db mid =
  let meetings = Database.table db "Meeting" in
  match Table.lookup_first meetings [| Some (Value.Str mid); None |] with
  | Some row ->
    (match Tuple.to_list row with
     | [ _; Value.Int slot ] -> Some slot
     | _ -> None)
  | None -> None

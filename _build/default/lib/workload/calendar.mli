(** The calendar-management scenario of the paper's introduction: meeting
    slots stay quantum until observed, so late high-priority meetings
    displace flexible ones without human rescheduling. *)

val free_schema : Relational.Schema.t
val meeting_schema : Relational.Schema.t

val fresh_store :
  ?backend:Relational.Wal.backend ->
  people:string list ->
  days:int ->
  hours_per_day:int ->
  unit ->
  Relational.Store.t
(** Everyone free over a [days] × [hours_per_day] slot grid. *)

val meeting_txn :
  ?prefer_before:int -> mid:string -> participants:string list -> unit -> Quantum.Rtxn.t
(** Any slot where all participants are free; [prefer_before] adds an
    OPTIONAL early-window preference. *)

val fixed_meeting_txn :
  mid:string -> participants:string list -> slot:int -> unit -> Quantum.Rtxn.t
(** A hard-slot meeting (the short-notice high-priority case). *)

val slot_query : string -> Solver.Query.t
val meeting_slot : Relational.Database.t -> string -> int option

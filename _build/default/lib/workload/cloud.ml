(* Cloud-instance allocation — the EC2 scenario from the paper's
   introduction: tenants lease "some instance with at least C cores",
   optionally preferring a region.  Deferring the binding lets the
   provider keep large instances free for tenants that actually need
   them, exactly the Mickey's-window-seat effect on a different resource.

   Relations:
     Spec(iid, cores, region)   — the catalog (immutable)
     Free(iid)                  — instances currently unleased
     Leased(iid, tenant)        — allocations (after grounding)

   A lease request is the resource transaction

     -Free(i), +Leased(i, tenant)
        :-1 Free(i), Spec(i, c, r), min_cores <= c [, ?{ r = region }] *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Table = Relational.Table
module Database = Relational.Database
module Store = Relational.Store
module Rtxn = Quantum.Rtxn
open Logic

let spec_schema =
  Schema.make ~name:"Spec"
    ~columns:
      [ Schema.column "iid" Value.Tint; Schema.column "cores" Value.Tint;
        Schema.column "region" Value.Tstr ]
    ~key:[ "iid" ] ()

let free_schema =
  Schema.make ~name:"Free" ~columns:[ Schema.column "iid" Value.Tint ] ~key:[ "iid" ] ()

let leased_schema =
  Schema.make ~name:"Leased"
    ~columns:[ Schema.column "iid" Value.Tint; Schema.column "tenant" Value.Tstr ]
    ~key:[ "iid" ] ()

type instance = {
  cores : int;
  region : string;
}

(* A fleet: instance [i] gets [fleet.(i)]'s spec; everything starts free. *)
let fresh_store ?(backend = Relational.Wal.mem_backend ()) fleet =
  let store = Store.create backend in
  ignore (Store.create_table store spec_schema);
  ignore (Store.create_table store free_schema);
  ignore (Store.create_table store leased_schema);
  let ops = ref [] in
  Array.iteri
    (fun i inst ->
      ops :=
        Database.Insert
          ("Spec", Tuple.of_list [ Value.Int i; Value.Int inst.cores; Value.Str inst.region ])
        :: Database.Insert ("Free", Tuple.of_list [ Value.Int i ])
        :: !ops)
    fleet;
  (match Store.apply store (List.rev !ops) with
   | Ok () -> ()
   | Error err -> failwith (Database.op_error_to_string err));
  Table.create_index_on (Store.table store "Spec") [ "region" ];
  Table.create_ordered_index_on (Store.table store "Spec") "cores";
  store

(* Lease request: any free instance with at least [min_cores], optionally
   preferring [prefer_region]. *)
let lease_txn ?prefer_region ~tenant ~min_cores () =
  let i = Term.V (Term.fresh_var "i") in
  let c = Term.V (Term.fresh_var "c") and r = Term.V (Term.fresh_var "r") in
  let optional_constraints =
    match prefer_region with
    | Some region -> [ Formula.eq r (Term.str region) ]
    | None -> []
  in
  Rtxn.make ~label:tenant
    ~hard:[ Atom.make "Free" [ i ]; Atom.make "Spec" [ i; c; r ] ]
    ~constraints:[ Formula.le (Term.int min_cores) c ]
    ~optional_constraints
    ~updates:
      [ Rtxn.Del (Atom.make "Free" [ i ]);
        Rtxn.Ins (Atom.make "Leased" [ i; Term.str tenant ]) ]
    ()

let lease_of db tenant =
  let leased = Database.table db "Leased" in
  Table.fold
    (fun row acc ->
      match acc, Tuple.to_list row with
      | None, [ Value.Int iid; Value.Str t ] when String.equal t tenant -> Some iid
      | acc, _ -> acc)
    leased None

let instance_spec db iid =
  match Table.find_by_key (Database.table db "Spec") (Tuple.of_list [ Value.Int iid ]) with
  | Some row ->
    (match Tuple.to_list row with
     | [ _; Value.Int cores; Value.Str region ] -> Some { cores; region }
     | _ -> None)
  | None -> None

(* A mixed fleet: [counts] pairs of (how many, spec). *)
let fleet counts =
  Array.of_list (List.concat_map (fun (n, inst) -> List.init n (fun _ -> inst)) counts)

(** Cloud-instance allocation: the EC2 scenario of the paper's
    introduction — "some instance with at least C cores", optionally in a
    preferred region, bound as late as possible. *)

val spec_schema : Relational.Schema.t
val free_schema : Relational.Schema.t
val leased_schema : Relational.Schema.t

type instance = {
  cores : int;
  region : string;
}

val fresh_store : ?backend:Relational.Wal.backend -> instance array -> Relational.Store.t

val lease_txn :
  ?prefer_region:string -> tenant:string -> min_cores:int -> unit -> Quantum.Rtxn.t
(** [-Free(i), +Leased(i, tenant) :-1 Free(i), Spec(i,c,r), min_cores <= c]
    with an OPTIONAL region preference. *)

val lease_of : Relational.Database.t -> string -> int option
(** The instance a tenant holds, if leased. *)

val instance_spec : Relational.Database.t -> int -> instance option

val fleet : (int * instance) list -> instance array
(** Expand (count, spec) pairs into a concrete fleet. *)

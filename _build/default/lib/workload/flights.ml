(* The travel-application database of Section 5.2.

   Flights with seats arranged in rows of three; the [Adjacent] relation
   holds the four ordered within-row pairs per row ((A,B),(B,A),(B,C),
   (C,B)), so one coordinated couple occupies two of the four and at most
   one couple fits per row — which is why a flight with R rows can host at
   most 2R coordinated users, the paper's "ten rows, twenty coordination
   requests" arithmetic. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Table = Relational.Table
module Database = Relational.Database
module Store = Relational.Store

let flights_schema =
  Schema.make ~name:"Flights"
    ~columns:[ Schema.column "fno" Value.Tint; Schema.column "dest" Value.Tstr ]
    ~key:[ "fno" ] ()

let available_schema =
  Schema.make ~name:"Available"
    ~columns:[ Schema.column "fno" Value.Tint; Schema.column "seat" Value.Tint ]
    ~key:[ "fno"; "seat" ] ()

let bookings_schema =
  Schema.make ~name:"Bookings"
    ~columns:
      [ Schema.column "user" Value.Tstr;
        Schema.column "fno" Value.Tint;
        Schema.column "seat" Value.Tint;
      ]
    ~key:[ "fno"; "seat" ] ()

let adjacent_schema =
  Schema.make ~name:"Adjacent"
    ~columns:[ Schema.column "s1" Value.Tint; Schema.column "s2" Value.Tint ]
    ~key:[ "s1"; "s2" ] ()

type geometry = {
  flights : int;
  rows_per_flight : int;
  dest : string;
}

let seats_per_flight g = 3 * g.rows_per_flight
let total_seats g = g.flights * seats_per_flight g

(* Ordered adjacent seat pairs within each row of three. *)
let adjacent_pairs g =
  List.concat
    (List.init g.rows_per_flight (fun r ->
         let a = 3 * r and b = (3 * r) + 1 and c = (3 * r) + 2 in
         [ (a, b); (b, a); (b, c); (c, b) ]))

(* Populate [db] (tables are created if missing) and build the secondary
   indexes the grounding searches rely on. *)
let populate_database db g =
  let ensure schema =
    match Database.find_table db schema.Schema.name with
    | Some table -> table
    | None -> Database.create_table db schema
  in
  let flights = ensure flights_schema in
  let available = ensure available_schema in
  let bookings = ensure bookings_schema in
  let adjacent = ensure adjacent_schema in
  Table.create_index_on available [ "fno" ];
  Table.create_index_on bookings [ "user" ];
  Table.create_index_on bookings [ "fno" ];
  Table.create_index_on adjacent [ "s1" ];
  Table.create_index_on adjacent [ "s2" ];
  for f = 0 to g.flights - 1 do
    ignore (Table.insert flights (Tuple.of_list [ Value.Int f; Value.Str g.dest ]));
    for s = 0 to seats_per_flight g - 1 do
      ignore (Table.insert available (Tuple.of_list [ Value.Int f; Value.Int s ]))
    done
  done;
  List.iter
    (fun (s1, s2) ->
      ignore (Table.insert adjacent (Tuple.of_list [ Value.Int s1; Value.Int s2 ])))
    (adjacent_pairs g)

(* A fresh durable store holding the generated travel database. *)
let fresh_store ?(backend = Relational.Wal.mem_backend ()) g =
  let store = Store.create backend in
  ignore (Store.create_table store flights_schema);
  ignore (Store.create_table store available_schema);
  ignore (Store.create_table store bookings_schema);
  ignore (Store.create_table store adjacent_schema);
  (* Rows go through the WAL so recovery reproduces the initial state. *)
  let ops = ref [] in
  for f = 0 to g.flights - 1 do
    ops := Database.Insert ("Flights", Tuple.of_list [ Value.Int f; Value.Str g.dest ]) :: !ops;
    for s = 0 to seats_per_flight g - 1 do
      ops := Database.Insert ("Available", Tuple.of_list [ Value.Int f; Value.Int s ]) :: !ops
    done
  done;
  List.iter
    (fun (s1, s2) ->
      ops := Database.Insert ("Adjacent", Tuple.of_list [ Value.Int s1; Value.Int s2 ]) :: !ops)
    (adjacent_pairs g);
  (match Store.apply store (List.rev !ops) with
   | Ok () -> ()
   | Error err -> failwith (Database.op_error_to_string err));
  let db = Store.db store in
  Table.create_index_on (Database.table db "Available") [ "fno" ];
  Table.create_index_on (Database.table db "Bookings") [ "user" ];
  Table.create_index_on (Database.table db "Bookings") [ "fno" ];
  Table.create_index_on (Database.table db "Adjacent") [ "s1" ];
  Table.create_index_on (Database.table db "Adjacent") [ "s2" ];
  store

(* -- Inspection helpers ---------------------------------------------------- *)

let booking_of db user =
  let bookings = Database.table db "Bookings" in
  let pattern = [| Some (Value.Str user); None; None |] in
  match Table.lookup_first bookings pattern with
  | Some row ->
    (match Tuple.to_list row with
     | [ _; Value.Int f; Value.Int s ] -> Some (f, s)
     | _ -> None)
  | None -> None

let seats_adjacent db s1 s2 =
  Database.mem_tuple db "Adjacent" (Tuple.of_list [ Value.Int s1; Value.Int s2 ])

let available_count db fno =
  Table.count_matches (Database.table db "Available") [| Some (Value.Int fno); None |]

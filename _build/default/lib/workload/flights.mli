(** The travel-application database of the paper's evaluation: flights,
    per-flight seats in rows of three, and the ordered [Adjacent] relation
    (four pairs per row, one coordinated couple per row). *)

val flights_schema : Relational.Schema.t
val available_schema : Relational.Schema.t
val bookings_schema : Relational.Schema.t
val adjacent_schema : Relational.Schema.t

type geometry = {
  flights : int;
  rows_per_flight : int;
  dest : string;
}

val seats_per_flight : geometry -> int
val total_seats : geometry -> int
val adjacent_pairs : geometry -> (int * int) list

val populate_database : Relational.Database.t -> geometry -> unit
(** Create (if missing), fill, and index the four travel tables. *)

val fresh_store : ?backend:Relational.Wal.backend -> geometry -> Relational.Store.t
(** A durable store with the generated database; initial rows go through
    the WAL so crash recovery reproduces them. *)

val booking_of : Relational.Database.t -> string -> (int * int) option
(** The (flight, seat) a user currently holds, if any. *)

val seats_adjacent : Relational.Database.t -> int -> int -> bool
val available_count : Relational.Database.t -> int -> int

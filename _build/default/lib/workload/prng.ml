(* Deterministic splitmix64 PRNG.

   Experiments must be reproducible run-to-run and engine-vs-baseline, so
   every workload takes an explicit seed and derives all randomness from
   this generator rather than [Random]. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* 62 random bits: always a nonnegative OCaml int on 64-bit platforms. *)
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let float t =
  (* 53 random bits into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int bits /. 9007199254740992.

let bool t = Int64.logand (next t) 1L = 1L

(* In-place Fisher-Yates shuffle. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle_list t l =
  let arr = Array.of_list l in
  shuffle t arr;
  Array.to_list arr

let pick t l =
  match l with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth l (int t (List.length l))

(** Deterministic splitmix64 PRNG for reproducible workloads. *)

type t

val create : int -> t
val next : t -> int64
val int : t -> int -> int
(** Uniform in [0, bound).  @raise Invalid_argument on non-positive bound. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
val shuffle : t -> 'a array -> unit
val shuffle_list : t -> 'a list -> 'a list
val pick : t -> 'a list -> 'a

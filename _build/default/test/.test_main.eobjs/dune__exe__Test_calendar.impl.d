test/test_calendar.ml: Alcotest List Printf Quantum Relational Workload

test/test_cloud.ml: Alcotest Quantum Relational Workload

test/test_compose.ml: Alcotest Atom Formula Gen List Logic Possible_worlds Printf QCheck QCheck_alcotest Quantum Relational Solver String Term Test

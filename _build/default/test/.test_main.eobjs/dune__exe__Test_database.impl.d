test/test_database.ml: Alcotest Gen List QCheck QCheck_alcotest Relational Result Test

test/test_engine_edge.ml: Alcotest Atom Formula List Logic Option Printf Quantum Relational Result Term Workload

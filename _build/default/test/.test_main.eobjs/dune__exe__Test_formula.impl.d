test/test_formula.ml: Alcotest Array Atom Formula Gen List Logic Printf QCheck QCheck_alcotest Relational Seq Term Test

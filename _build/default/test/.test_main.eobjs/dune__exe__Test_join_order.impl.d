test/test_join_order.ml: Alcotest Atom Formula List Logic Relational Solver Term

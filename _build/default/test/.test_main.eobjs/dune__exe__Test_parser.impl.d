test/test_parser.ml: Alcotest Array Atom List Logic Quantum Solver Term Workload

test/test_partition.ml: Alcotest Array Atom Formula Gen List Logic Printf QCheck QCheck_alcotest Quantum Relational Solver String Term Test Unify Workload

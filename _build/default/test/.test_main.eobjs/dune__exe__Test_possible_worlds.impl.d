test/test_possible_worlds.ml: Alcotest Array Atom Gen List Logic Possible_worlds Printf QCheck QCheck_alcotest Quantum Relational String Term Test Workload

test/test_qdb.ml: Alcotest Atom List Logic Printf Quantum Relational Result Term Workload

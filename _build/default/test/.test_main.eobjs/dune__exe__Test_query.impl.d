test/test_query.ml: Alcotest Atom Formula List Logic Relational Solver Term

test/test_recovery.ml: Alcotest List Quantum Relational String Workload

test/test_relalg.ml: Alcotest Array List Option Relational String

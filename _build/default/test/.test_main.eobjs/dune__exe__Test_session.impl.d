test/test_session.ml: Alcotest List Mutex Printf Quantum Relational Result Thread Workload

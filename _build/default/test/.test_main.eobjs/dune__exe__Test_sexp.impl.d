test/test_sexp.ml: Alcotest Gen List QCheck QCheck_alcotest Relational

test/test_solver.ml: Alcotest Array Atom Formula Hashtbl List Logic Option Printf QCheck QCheck_alcotest Relational Sat Solver Subst Term

test/test_sql_parser.ml: Alcotest Array Atom List Logic Option Quantum Relational Term Workload

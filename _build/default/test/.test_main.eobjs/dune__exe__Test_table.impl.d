test/test_table.ml: Alcotest Gen List QCheck QCheck_alcotest Relational Test

test/test_unify.ml: Alcotest Array Atom Formula Gen List Logic Option Printf QCheck QCheck_alcotest Relational Subst Term Unify

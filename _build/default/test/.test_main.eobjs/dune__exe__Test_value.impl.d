test/test_value.ml: Alcotest Gen List QCheck QCheck_alcotest Relational

test/test_wal_file.ml: Alcotest Filename Fun Quantum Relational Sys Workload

test/test_workload.ml: Alcotest Fun Int List Quantum Relational String Workload

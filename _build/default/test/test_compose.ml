(* Tests for resource transactions and composition (Lemma 3.4,
   Theorem 3.5, Figure 3), cross-validated against the extensional
   possible-worlds semantics. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Database = Relational.Database
module Rtxn = Quantum.Rtxn
module Compose = Quantum.Compose
open Logic

(* Schemas of the paper's running example: A = Available(f,s),
   B = Bookings(user,f,s). *)
let setup rows_a rows_b =
  let db = Database.create () in
  let a =
    Database.create_table db
      (Schema.make ~name:"A"
         ~columns:[ Schema.column "f" Value.Tint; Schema.column "s" Value.Tint ]
         ())
  in
  let b =
    Database.create_table db
      (Schema.make ~name:"B"
         ~columns:
           [ Schema.column "u" Value.Tstr; Schema.column "f" Value.Tint;
             Schema.column "s" Value.Tint ]
         ~key:[ "f"; "s" ] ())
  in
  List.iter (fun (f, s) -> ignore (Relational.Table.insert a (Tuple.of_list [ Value.Int f; Value.Int s ]))) rows_a;
  List.iter
    (fun (u, f, s) ->
      ignore (Relational.Table.insert b (Tuple.of_list [ Value.Str u; Value.Int f; Value.Int s ])))
    rows_b;
  db

(* Book a seat on flight [f] for [u]: -A(f,s), +B(u,f,s) :-1 A(f,s). *)
let booking u f =
  let s = Term.V (Term.fresh_var "s") in
  let fc = Term.int f in
  Rtxn.make ~label:u
    ~hard:[ Atom.make "A" [ fc; s ] ]
    ~updates:[ Rtxn.Del (Atom.make "A" [ fc; s ]); Rtxn.Ins (Atom.make "B" [ Term.str u; fc; s ]) ]
    ()

(* Cancellation (Figure 3's T1): -B(u,f,s), +A(f,s) :-1 B(u,f,s). *)
let cancellation u f =
  let s = Term.V (Term.fresh_var "s") in
  let fc = Term.int f in
  Rtxn.make ~label:(u ^ "-cancel")
    ~hard:[ Atom.make "B" [ Term.str u; fc; s ] ]
    ~updates:[ Rtxn.Del (Atom.make "B" [ Term.str u; fc; s ]); Rtxn.Ins (Atom.make "A" [ fc; s ]) ]
    ()

(* Unconstrained booking (Figure 3's T2): flight is a variable. *)
let booking_any u =
  let f = Term.V (Term.fresh_var "f") and s = Term.V (Term.fresh_var "s") in
  Rtxn.make ~label:u
    ~hard:[ Atom.make "A" [ f; s ] ]
    ~updates:[ Rtxn.Del (Atom.make "A" [ f; s ]); Rtxn.Ins (Atom.make "B" [ Term.str u; f; s ]) ]
    ()

let test_rtxn_validation () =
  let s = Term.V (Term.fresh_var "s") in
  Alcotest.(check bool) "unrestricted update var" true
    (match
       Rtxn.make ~hard:[] ~updates:[ Rtxn.Ins (Atom.make "B" [ Term.str "x"; Term.int 1; s ]) ] ()
     with
     | exception Rtxn.Ill_formed _ -> true
     | _ -> false);
  (* Variable bound only by an optional atom cannot drive an update. *)
  Alcotest.(check bool) "optional-only var in update" true
    (match
       Rtxn.make
         ~hard:[ Atom.make "A" [ Term.int 1; Term.int 2 ] ]
         ~optional:[ Atom.make "A" [ Term.int 1; s ] ]
         ~updates:[ Rtxn.Del (Atom.make "A" [ Term.int 1; s ]) ]
         ()
     with
     | exception Rtxn.Ill_formed _ -> true
     | _ -> false)

let test_rtxn_freshen_and_roundtrip () =
  let t = booking "M" 1 in
  let t' = Rtxn.freshen t in
  let vars_of t = Term.Var_set.elements (Rtxn.all_vars t) in
  Alcotest.(check bool) "freshen renames" true
    (List.for_all
       (fun v -> not (List.exists (Term.equal_var v) (vars_of t')))
       (vars_of t));
  let encoded = Relational.Sexp.to_string (Rtxn.to_sexp t) in
  let decoded = Rtxn.of_sexp (Relational.Sexp.of_string encoded) in
  Alcotest.(check string) "serialization roundtrip" (Rtxn.to_string t) (Rtxn.to_string decoded)

(* Lemma 3.4, delete case: after T1 deletes what B2 would ground on,
   composition forbids it. *)
let test_lemma_delete_case () =
  let db = setup [ (1, 5) ] [] in
  let t1 = booking "M" 1 in
  let t2 = booking "D" 1 in
  (* One seat: T1 alone satisfiable, T1;T2 not. *)
  Alcotest.(check bool) "t1 alone sat" true
    (Solver.Backtrack.satisfiable db (Compose.body_of_sequence ~key_of:(Compose.resolver_of_db db) [ t1 ]));
  Alcotest.(check bool) "t1;t2 unsat on one seat" false
    (Solver.Backtrack.satisfiable db (Compose.body_of_sequence ~key_of:(Compose.resolver_of_db db) [ t1; t2 ]));
  (* Two seats: both fit. *)
  let db2 = setup [ (1, 5); (1, 6) ] [] in
  Alcotest.(check bool) "t1;t2 sat on two seats" true
    (Solver.Backtrack.satisfiable db2
       (Compose.body_of_sequence ~key_of:(Compose.resolver_of_db db2) [ t1; t2 ]))

(* Lemma 3.4, insert case: a later body atom may ground on an earlier
   pending insert. *)
let test_lemma_insert_case () =
  (* Empty A; Mickey cancels (inserting into A), Donald books. *)
  let db = setup [] [ ("M", 1, 5) ] in
  let t1 = cancellation "M" 1 in
  let t2 = booking "D" 1 in
  Alcotest.(check bool) "t2 alone unsat (no seats)" false
    (Solver.Backtrack.satisfiable db (Compose.body_of_sequence ~key_of:(Compose.resolver_of_db db) [ t2 ]));
  Alcotest.(check bool) "cancel then book sat" true
    (Solver.Backtrack.satisfiable db (Compose.body_of_sequence ~key_of:(Compose.resolver_of_db db) [ t1; t2 ]))

(* Figure 3 exactly: T1 cancel on flight 1, T2 unconstrained booking,
   T3 booking on flight 2. *)
let test_figure3 () =
  let t1 = cancellation "M" 1 in
  let t2 = booking_any "D" in
  let t3 = booking "G" 2 in
  (* Shape check on T12: the T2 atom clause must be a disjunction between
     grounding on A and unifying with T1's insert. *)
  let clause = Compose.clause_for_atom [ t1 ] (List.hd t2.Rtxn.hard) in
  (match clause with
   | Formula.Or [ _; _ ] -> ()
   | f -> Alcotest.failf "expected 2-way disjunction, got %s" (Formula.to_string f));
  (* Semantics: B(M,1,5) present, A empty, one seat on flight 2 free...
     after the cancel, D can take Mickey's freed seat and G needs A(2,s3). *)
  let db = setup [ (2, 7) ] [ ("M", 1, 5) ] in
  Alcotest.(check bool) "T123 satisfiable" true
    (Solver.Backtrack.satisfiable db (Compose.body_of_sequence ~key_of:(Compose.resolver_of_db db) [ t1; t2; t3 ]));
  (* Remove flight-2 availability: T3 has no seat (T2 will consume the
     freed seat or the freed seat is on flight 1 — either way T3 fails). *)
  let db2 = setup [] [ ("M", 1, 5) ] in
  Alcotest.(check bool) "T123 unsat without flight-2 seat" false
    (Solver.Backtrack.satisfiable db2
       (Compose.body_of_sequence ~key_of:(Compose.resolver_of_db db2) [ t1; t2; t3 ]));
  (* D takes the freed seat; G must not be able to take it too. *)
  let db3 = setup [] [ ("M", 2, 7) ] in
  let t1' = cancellation "M" 2 in
  Alcotest.(check bool) "freed seat usable once" true
    (Solver.Backtrack.satisfiable db3
       (Compose.body_of_sequence ~key_of:(Compose.resolver_of_db db3) [ t1'; t2 ]));
  Alcotest.(check bool) "freed seat not usable twice" false
    (Solver.Backtrack.satisfiable db3
       (Compose.body_of_sequence ~key_of:(Compose.resolver_of_db db3) [ t1'; t2; t3 ]))

(* Insert key-safety: booking the same (f,s) key twice via inserts. *)
let test_insert_safety () =
  let db = setup [ (1, 5) ] [ ("X", 1, 6) ] in
  (* Bookings has key (f,s); inserting B(M,1,6) collides with X's row. *)
  let t =
    Rtxn.make ~label:"M"
      ~hard:[ Atom.make "A" [ Term.int 1; Term.int 5 ] ]
      ~updates:[ Rtxn.Ins (Atom.make "B" [ Term.str "M"; Term.int 1; Term.int 6 ]) ]
      ()
  in
  Alcotest.(check bool) "key collision unsat" false
    (Solver.Backtrack.satisfiable db (Compose.body_of_sequence ~key_of:(Compose.resolver_of_db db) [ t ]));
  Alcotest.(check bool) "without check_inserts it would pass" true
    (Solver.Backtrack.satisfiable db (Compose.body_of_sequence ~check_inserts:false ~key_of:(Compose.resolver_of_db db) [ t ]));
  (* But a pending delete of the colliding row makes it legal again. *)
  let cancel_x =
    Rtxn.make ~label:"X-cancel"
      ~hard:[ Atom.make "B" [ Term.str "X"; Term.int 1; Term.int 6 ] ]
      ~updates:[ Rtxn.Del (Atom.make "B" [ Term.str "X"; Term.int 1; Term.int 6 ]) ]
      ()
  in
  Alcotest.(check bool) "delete-then-insert sat" true
    (Solver.Backtrack.satisfiable db (Compose.body_of_sequence ~key_of:(Compose.resolver_of_db db) [ cancel_x; t ]))

(* Property: composed-body satisfiability = possible-worlds reachability,
   on random small booking/cancellation sequences. *)
let prop_composition_equals_possible_worlds =
  let open QCheck in
  let txn_gen =
    Gen.map
      (fun (kind, who, f) ->
        let user = Printf.sprintf "u%d" (who mod 3) in
        let flight = f mod 2 in
        (kind mod 3, user, flight))
      Gen.(triple small_nat small_nat small_nat)
  in
  Test.make ~name:"Thm 3.5 sequence = possible worlds" ~count:150
    (make
       (Gen.list_size (Gen.int_range 1 5) txn_gen)
       ~print:(fun l ->
         String.concat ";"
           (List.map (fun (k, u, f) -> Printf.sprintf "%d:%s:%d" k u f) l)))
    (fun specs ->
      let txns =
        List.map
          (fun (kind, user, flight) ->
            match kind with
            | 0 -> booking user flight
            | 1 -> cancellation user flight
            | _ -> booking_any user)
          specs
      in
      let db = setup [ (0, 0); (0, 1); (1, 0) ] [ ("u0", 1, 9) ] in
      let pw = Possible_worlds.Pw.create db in
      (* Feed transactions one by one; compare reachability at each prefix. *)
      let rec go accepted = function
        | [] -> true
        | txn :: rest ->
          let txn = Rtxn.freshen txn in
          let intensional =
            Solver.Backtrack.satisfiable db
              (Compose.body_of_sequence ~key_of:(Compose.resolver_of_db db)
                 (List.rev (txn :: accepted)))
          in
          let extensional = Possible_worlds.Pw.can_commit pw txn in
          if intensional <> extensional then false
          else if intensional then begin
            ignore (Possible_worlds.Pw.submit pw txn);
            go (txn :: accepted) rest
          end
          else go accepted rest
      in
      go [] txns)

let suite =
  [ Alcotest.test_case "rtxn validation" `Quick test_rtxn_validation;
    Alcotest.test_case "rtxn freshen and serialization" `Quick test_rtxn_freshen_and_roundtrip;
    Alcotest.test_case "Lemma 3.4 delete case" `Quick test_lemma_delete_case;
    Alcotest.test_case "Lemma 3.4 insert case" `Quick test_lemma_insert_case;
    Alcotest.test_case "Figure 3 composition" `Quick test_figure3;
    Alcotest.test_case "insert key-safety" `Quick test_insert_safety;
    QCheck_alcotest.to_alcotest prop_composition_equals_possible_worlds;
  ]

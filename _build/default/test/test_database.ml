(* Tests for the database layer: DDL, atomic update batches, WAL replay,
   checkpoints and the durable store. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Table = Relational.Table
module Database = Relational.Database
module Wal = Relational.Wal
module Store = Relational.Store

let schema_r =
  Schema.make ~name:"R" ~columns:[ Schema.column "a" Value.Tint; Schema.column "b" Value.Tint ]
    ~key:[ "a" ] ()

let schema_s =
  Schema.make ~name:"S" ~columns:[ Schema.column "x" Value.Tstr ] ()

let r a b = Tuple.of_list [ Value.Int a; Value.Int b ]
let s x = Tuple.of_list [ Value.Str x ]

let test_ddl () =
  let db = Database.create () in
  ignore (Database.create_table db schema_r);
  Alcotest.(check bool) "duplicate table" true
    (match Database.create_table db schema_r with
     | exception Schema.Invalid _ -> true
     | _ -> false);
  Alcotest.(check (list string)) "names" [ "R" ] (Database.table_names db)

let test_atomic_batches () =
  let db = Database.create () in
  ignore (Database.create_table db schema_r);
  ignore (Database.create_table db schema_s);
  (* Successful batch. *)
  let ok =
    Database.apply_ops db [ Database.Insert ("R", r 1 10); Database.Insert ("S", s "a") ]
  in
  Alcotest.(check bool) "batch ok" true (ok = Ok ());
  (* Failing batch rolls back the applied prefix. *)
  let failing =
    Database.apply_ops db
      [ Database.Insert ("R", r 2 20);
        Database.Delete ("S", s "missing");
        Database.Insert ("R", r 3 30);
      ]
  in
  Alcotest.(check bool) "batch failed" true (Result.is_error failing);
  Alcotest.(check bool) "prefix rolled back" false (Database.mem_tuple db "R" (r 2 20));
  Alcotest.(check int) "state preserved" 2 (Database.total_rows db);
  (* Duplicate-key insert fails. *)
  let dup = Database.apply_ops db [ Database.Insert ("R", r 1 99) ] in
  Alcotest.(check bool) "dup key rejected" true (Result.is_error dup)

let test_can_apply_leaves_unchanged () =
  let db = Database.create () in
  ignore (Database.create_table db schema_r);
  ignore (Database.apply_ops db [ Database.Insert ("R", r 1 10) ]);
  Alcotest.(check bool) "dry-run ok" true
    (Database.can_apply_ops db [ Database.Delete ("R", r 1 10); Database.Insert ("R", r 2 2) ]);
  Alcotest.(check bool) "unchanged after dry-run" true (Database.mem_tuple db "R" (r 1 10));
  Alcotest.(check int) "row count stable" 1 (Database.total_rows db)

let test_wal_replay () =
  let backend = Wal.mem_backend () in
  let wal = Wal.create backend in
  Wal.log wal (Wal.Create_table schema_r);
  ignore (Wal.log_batch wal [ Database.Insert ("R", r 1 10); Database.Insert ("R", r 2 20) ]);
  ignore (Wal.log_batch wal [ Database.Delete ("R", r 1 10) ]);
  let db = Wal.replay wal in
  Alcotest.(check bool) "replayed delete" false (Database.mem_tuple db "R" (r 1 10));
  Alcotest.(check bool) "replayed insert" true (Database.mem_tuple db "R" (r 2 20))

let test_wal_torn_batch () =
  let backend = Wal.mem_backend () in
  let wal = Wal.create backend in
  Wal.log wal (Wal.Create_table schema_r);
  ignore (Wal.log_batch wal [ Database.Insert ("R", r 1 10) ]);
  (* A torn batch: Begin + op without Commit — the crash case. *)
  Wal.log wal (Wal.Begin 99);
  Wal.log wal (Wal.Op (Database.Insert ("R", r 2 20)));
  let db = Wal.replay (Wal.create backend) in
  Alcotest.(check bool) "committed batch survives" true (Database.mem_tuple db "R" (r 1 10));
  Alcotest.(check bool) "torn batch dropped" false (Database.mem_tuple db "R" (r 2 20))

let test_checkpoint () =
  let backend = Wal.mem_backend () in
  let wal = Wal.create backend in
  Wal.log wal (Wal.Create_table schema_r);
  ignore (Wal.log_batch wal [ Database.Insert ("R", r 1 10) ]);
  let db = Wal.replay wal in
  Wal.checkpoint wal db;
  ignore (Wal.log_batch wal [ Database.Insert ("R", r 2 20) ]);
  let db' = Wal.replay (Wal.create backend) in
  Alcotest.(check bool) "pre-checkpoint row" true (Database.mem_tuple db' "R" (r 1 10));
  Alcotest.(check bool) "post-checkpoint row" true (Database.mem_tuple db' "R" (r 2 20))

let test_store_recovery () =
  let backend = Wal.mem_backend () in
  let store = Store.create backend in
  ignore (Store.create_table store schema_r);
  Alcotest.(check bool) "apply" true
    (Store.apply store [ Database.Insert ("R", r 1 10); Database.Insert ("R", r 2 20) ] = Ok ());
  Alcotest.(check bool) "reject bad batch" true
    (Result.is_error (Store.apply store [ Database.Insert ("R", r 1 99) ]));
  let before = Database.copy (Store.db store) in
  let recovered = Store.crash_and_recover backend in
  Alcotest.(check bool) "recovered state equals pre-crash" true
    (Database.equal before (Store.db recovered))

let prop_wal_replay_equals_state =
  (* Random applicable batches: replay must reproduce the live database. *)
  let open QCheck in
  let op_gen =
    Gen.map (fun (ins, a, b) -> (ins, a mod 8, b mod 8)) (Gen.triple Gen.bool Gen.small_nat Gen.small_nat)
  in
  Test.make ~name:"wal replay reproduces live state" ~count:100
    (make (Gen.list_size (Gen.int_range 0 50) op_gen))
    (fun ops ->
      let backend = Wal.mem_backend () in
      let store = Store.create backend in
      ignore (Store.create_table store schema_r);
      List.iter
        (fun (ins, a, b) ->
          let op =
            if ins then Database.Insert ("R", r a b) else Database.Delete ("R", r a b)
          in
          ignore (Store.apply store [ op ]))
        ops;
      let recovered = Store.crash_and_recover backend in
      Database.equal (Store.db store) (Store.db recovered))

let suite =
  [ Alcotest.test_case "ddl" `Quick test_ddl;
    Alcotest.test_case "atomic batches" `Quick test_atomic_batches;
    Alcotest.test_case "dry run" `Quick test_can_apply_leaves_unchanged;
    Alcotest.test_case "wal replay" `Quick test_wal_replay;
    Alcotest.test_case "wal torn batch" `Quick test_wal_torn_batch;
    Alcotest.test_case "checkpoint" `Quick test_checkpoint;
    Alcotest.test_case "store recovery" `Quick test_store_recovery;
    QCheck_alcotest.to_alcotest prop_wal_replay_equals_state;
  ]

(* Tests for the formula AST: smart-constructor simplification, negation,
   and evaluation semantics. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Database = Relational.Database
open Logic

let db_with_r rows =
  let db = Database.create () in
  let table =
    Database.create_table db
      (Schema.make ~name:"R"
         ~columns:[ Schema.column "a" Value.Tint; Schema.column "b" Value.Tint ]
         ())
  in
  List.iter
    (fun (a, b) ->
      ignore (Relational.Table.insert table (Tuple.of_list [ Value.Int a; Value.Int b ])))
    rows;
  db

let test_smart_constructors () =
  let x = Term.V (Term.fresh_var "x") in
  Alcotest.(check bool) "eq same term" true (Formula.eq x x = Formula.True);
  Alcotest.(check bool) "eq consts equal" true (Formula.eq (Term.int 1) (Term.int 1) = Formula.True);
  Alcotest.(check bool) "eq consts differ" true (Formula.eq (Term.int 1) (Term.int 2) = Formula.False);
  Alcotest.(check bool) "neq same term" true (Formula.neq x x = Formula.False);
  Alcotest.(check bool) "and drops true" true
    (Formula.and_ [ Formula.True; Formula.Eq (x, Term.int 1) ] = Formula.Eq (x, Term.int 1));
  Alcotest.(check bool) "and short-circuits false" true
    (Formula.and_ [ Formula.Eq (x, Term.int 1); Formula.False ] = Formula.False);
  Alcotest.(check bool) "or drops false" true
    (Formula.or_ [ Formula.False; Formula.Eq (x, Term.int 1) ] = Formula.Eq (x, Term.int 1));
  Alcotest.(check bool) "or short-circuits true" true
    (Formula.or_ [ Formula.Eq (x, Term.int 1); Formula.True ] = Formula.True);
  Alcotest.(check bool) "empty and" true (Formula.and_ [] = Formula.True);
  Alcotest.(check bool) "empty or" true (Formula.or_ [] = Formula.False);
  (* Nested conjunctions flatten. *)
  (match Formula.and_ [ Formula.And [ Formula.Eq (x, Term.int 1); Formula.Eq (x, Term.int 2) ];
                        Formula.Neq (x, Term.int 3) ] with
   | Formula.And fs -> Alcotest.(check int) "flattened" 3 (List.length fs)
   | f -> Alcotest.failf "expected And, got %s" (Formula.to_string f))

let test_negate_involution_shape () =
  let x = Term.V (Term.fresh_var "x") in
  let a = Atom.make "R" [ x; Term.int 1 ] in
  let f =
    Formula.And
      [ Formula.Atom a; Formula.Or [ Formula.Eq (x, Term.int 1); Formula.Neq (x, Term.int 2) ] ]
  in
  (* Double negation restores semantics (checked by eval below) and shape
     here for simple cases. *)
  Alcotest.(check bool) "negate atom" true (Formula.negate (Formula.Atom a) = Formula.Not_atom a);
  Alcotest.(check bool) "negate not_atom" true
    (Formula.negate (Formula.Not_atom a) = Formula.Atom a);
  let db = db_with_r [ (1, 1) ] in
  let valuation v = if v.Term.vname = "x" then Some (Value.Int 1) else None in
  Alcotest.(check bool) "negate flips eval" true
    (Formula.eval db valuation f <> Formula.eval db valuation (Formula.negate f));
  Alcotest.(check bool) "double negation restores eval" true
    (Formula.eval db valuation f = Formula.eval db valuation (Formula.negate (Formula.negate f)))

let test_eval_atoms () =
  let db = db_with_r [ (1, 2); (3, 4) ] in
  let x = Term.fresh_var "x" in
  let valuation v = if Term.equal_var v x then Some (Value.Int 1) else None in
  let present = Formula.Atom (Atom.make "R" [ Term.V x; Term.int 2 ]) in
  let absent = Formula.Atom (Atom.make "R" [ Term.V x; Term.int 9 ]) in
  Alcotest.(check bool) "present" true (Formula.eval db valuation present);
  Alcotest.(check bool) "absent" false (Formula.eval db valuation absent);
  Alcotest.(check bool) "not_atom" true
    (Formula.eval db valuation (Formula.Not_atom (Atom.make "R" [ Term.V x; Term.int 9 ])));
  Alcotest.(check bool) "unbound raises" true
    (match Formula.eval db (fun _ -> None) present with
     | exception Formula.Unbound _ -> true
     | _ -> false)

let test_order_constructors () =
  let x = Term.V (Term.fresh_var "x") in
  Alcotest.(check bool) "lt const fold true" true (Formula.lt (Term.int 1) (Term.int 2) = Formula.True);
  Alcotest.(check bool) "lt const fold false" true (Formula.lt (Term.int 2) (Term.int 2) = Formula.False);
  Alcotest.(check bool) "le reflexive" true (Formula.le x x = Formula.True);
  Alcotest.(check bool) "lt irreflexive" true (Formula.lt x x = Formula.False);
  (* Negation duals: ¬(a<b) = b<=a. *)
  Alcotest.(check bool) "negate lt" true
    (Formula.negate (Formula.Lt (x, Term.int 3)) = Formula.Le (Term.int 3, x));
  Alcotest.(check bool) "negate le" true
    (Formula.negate (Formula.Le (x, Term.int 3)) = Formula.Lt (Term.int 3, x));
  (* Eval semantics. *)
  let db = db_with_r [] in
  let valuation v = if v.Term.vname = "x" then Some (Value.Int 2) else None in
  Alcotest.(check bool) "2 < 3" true (Formula.eval db valuation (Formula.Lt (x, Term.int 3)));
  Alcotest.(check bool) "2 <= 2" true (Formula.eval db valuation (Formula.Le (x, Term.int 2)));
  Alcotest.(check bool) "not 2 < 2" false (Formula.eval db valuation (Formula.Lt (x, Term.int 2)))

let test_stats () =
  let x = Term.V (Term.fresh_var "x") in
  let a = Atom.make "R" [ x; Term.int 1 ] in
  let f =
    Formula.And
      [ Formula.Atom a; Formula.Not_atom a;
        Formula.Or [ Formula.Eq (x, Term.int 1); Formula.Neq (x, Term.int 2) ] ]
  in
  let s = Formula.stats f in
  Alcotest.(check int) "atoms" 1 s.Formula.atoms;
  Alcotest.(check int) "neg atoms" 1 s.Formula.negative_atoms;
  Alcotest.(check int) "eqs" 1 s.Formula.equalities;
  Alcotest.(check int) "neqs" 1 s.Formula.disequalities;
  Alcotest.(check int) "or nodes" 1 s.Formula.or_nodes;
  Alcotest.(check int) "or branches" 2 s.Formula.or_branches;
  Alcotest.(check int) "vars" 1 s.Formula.variables

(* -- Property: smart constructors preserve evaluation --------------------- *)

(* Random formulas over vars q0..q3 and relation R; compare raw-AST
   evaluation with the smart-constructed equivalent. *)
let pool = Array.init 4 (fun i -> Term.fresh_var (Printf.sprintf "f%d" i))

let formula_gen =
  let open QCheck.Gen in
  let term_gen =
    oneof [ map (fun i -> Term.V pool.(i mod 4)) small_nat; map (fun n -> Term.int (n mod 3)) small_nat ]
  in
  let atom_gen =
    let* t1 = term_gen and* t2 = term_gen in
    return (Atom.make "R" [ t1; t2 ])
  in
  let rec gen depth =
    if depth = 0 then
      oneof
        [ return Formula.True; return Formula.False;
          map (fun a -> Formula.Atom a) atom_gen;
          map (fun a -> Formula.Not_atom a) atom_gen;
          (let* t1 = term_gen and* t2 = term_gen in
           return (Formula.Eq (t1, t2)));
          (let* t1 = term_gen and* t2 = term_gen in
           return (Formula.Neq (t1, t2)));
          (let* t1 = term_gen and* t2 = term_gen in
           return (Formula.Lt (t1, t2)));
          (let* t1 = term_gen and* t2 = term_gen in
           return (Formula.Le (t1, t2)));
        ]
    else
      frequency
        [ (2, gen 0);
          (1, map (fun fs -> Formula.And fs) (list_size (int_range 0 3) (gen (depth - 1))));
          (1, map (fun fs -> Formula.Or fs) (list_size (int_range 0 3) (gen (depth - 1))));
        ]
  in
  gen 3

(* Rebuild the formula through smart constructors. *)
let rec smart = function
  | Formula.True -> Formula.tru
  | Formula.False -> Formula.fls
  | Formula.Atom a -> Formula.atom a
  | Formula.Not_atom a -> Formula.not_atom a
  | Formula.Key_free a -> Formula.key_free a
  | Formula.Eq (a, b) -> Formula.eq a b
  | Formula.Neq (a, b) -> Formula.neq a b
  | Formula.Lt (a, b) -> Formula.lt a b
  | Formula.Le (a, b) -> Formula.le a b
  | Formula.And fs -> Formula.and_ (List.map smart fs)
  | Formula.Or fs -> Formula.or_ (List.map smart fs)

let eval_with db vals f =
  let valuation v =
    Array.to_seq pool
    |> Seq.mapi (fun i p -> (p, vals.(i)))
    |> Seq.find_map (fun (p, value) -> if Term.equal_var p v then Some (Value.Int value) else None)
  in
  Formula.eval db valuation f

let prop_smart_preserves_semantics =
  let open QCheck in
  let case = pair (make formula_gen ~print:Formula.to_string) (array_of_size (Gen.return 4) (int_range 0 2)) in
  Test.make ~name:"smart constructors preserve semantics" ~count:1000 case (fun (f, vals) ->
      let db = db_with_r [ (0, 0); (1, 2); (2, 1) ] in
      eval_with db vals f = eval_with db vals (smart f))

let prop_negate_flips_semantics =
  let open QCheck in
  let case = pair (make formula_gen ~print:Formula.to_string) (array_of_size (Gen.return 4) (int_range 0 2)) in
  Test.make ~name:"negate flips semantics" ~count:1000 case (fun (f, vals) ->
      let db = db_with_r [ (0, 0); (1, 2); (2, 1) ] in
      eval_with db vals f <> eval_with db vals (Formula.negate f))

let suite =
  [ Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
    Alcotest.test_case "negation" `Quick test_negate_involution_shape;
    Alcotest.test_case "eval atoms" `Quick test_eval_atoms;
    Alcotest.test_case "order constructors" `Quick test_order_constructors;
    Alcotest.test_case "stats" `Quick test_stats;
    QCheck_alcotest.to_alcotest prop_smart_preserves_semantics;
    QCheck_alcotest.to_alcotest prop_negate_flips_semantics;
  ]

(* Tests for the join-order planner (the optimizer_search_depth
   reproduction) and the LIMIT-1 evaluation path built on it. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Database = Relational.Database
module Table = Relational.Table
open Logic

(* Big(a,b) with 1000 rows, Small(b,c) with 2 rows, indexed. *)
let setup () =
  let db = Database.create () in
  let big =
    Database.create_table db
      (Schema.make ~name:"Big"
         ~columns:[ Schema.column "a" Value.Tint; Schema.column "b" Value.Tint ]
         ())
  in
  let small =
    Database.create_table db
      (Schema.make ~name:"Small"
         ~columns:[ Schema.column "b" Value.Tint; Schema.column "c" Value.Tint ]
         ())
  in
  for i = 0 to 999 do
    ignore (Table.insert big (Tuple.of_list [ Value.Int i; Value.Int (i mod 100) ]))
  done;
  ignore (Table.insert small (Tuple.of_list [ Value.Int 5; Value.Int 0 ]));
  ignore (Table.insert small (Tuple.of_list [ Value.Int 6; Value.Int 1 ]));
  Table.create_index_on big [ "b" ];
  Table.create_index_on small [ "b" ];
  db

let test_planner_prefers_selective_first () =
  let db = setup () in
  let a = Term.V (Term.fresh_var "a") and b = Term.V (Term.fresh_var "b") in
  let c = Term.V (Term.fresh_var "c") in
  let big = Atom.make "Big" [ a; b ] in
  let small = Atom.make "Small" [ b; c ] in
  (* Exhaustive planning must start with the 2-row table. *)
  (match Solver.Join_order.plan db [ big; small ] with
   | first :: _ -> Alcotest.(check string) "small first" "Small" first.Atom.rel
   | [] -> Alcotest.fail "empty plan");
  (* Cost model agrees: small-first is cheaper. *)
  Alcotest.(check bool) "cost ordering" true
    (Solver.Join_order.cost_of_order db [ small; big ]
     < Solver.Join_order.cost_of_order db [ big; small ])

let test_estimate_uses_indexes () =
  let db = setup () in
  let b_bound = Term.fresh_var "b" in
  let bound = Term.Var_set.singleton b_bound in
  let atom = Atom.make "Big" [ Term.V (Term.fresh_var "a"); Term.V b_bound ] in
  let est_bound = Solver.Join_order.estimate db bound atom in
  let est_free = Solver.Join_order.estimate db Term.Var_set.empty atom in
  Alcotest.(check bool) "bound var cuts estimate" true (est_bound < est_free);
  (* 1000 rows / 100 distinct b values = 10 per bucket. *)
  Alcotest.(check (float 0.01) "bucket estimate" ) 10. est_bound

let test_search_depth_degrades () =
  (* With depth 1 the planner is purely greedy; construct a case where
     greedy picks the locally-smallest first atom but a deeper lookahead
     finds the chain order.  We only assert exhaustive <= greedy cost. *)
  let db = setup () in
  let mk name args = Atom.make name args in
  let v n = Term.V (Term.fresh_var n) in
  let a = v "a" and b = v "b" and c = v "c" in
  let atoms = [ mk "Big" [ a; b ]; mk "Small" [ b; c ]; mk "Big" [ c; a ] ] in
  let exhaustive = Solver.Join_order.plan db atoms in
  let greedy = Solver.Join_order.plan ~search_depth:1 db atoms in
  Alcotest.(check bool) "exhaustive no worse" true
    (Solver.Join_order.cost_of_order db exhaustive
     <= Solver.Join_order.cost_of_order db greedy +. 1e-9);
  Alcotest.(check int) "plans cover all atoms" 3 (List.length greedy)

let test_limit_one_solves_join () =
  let db = setup () in
  let a = Term.V (Term.fresh_var "a") and b = Term.V (Term.fresh_var "b") in
  let c = Term.V (Term.fresh_var "c") in
  let f =
    Formula.and_
      [ Formula.atom (Atom.make "Big" [ a; b ]);
        Formula.atom (Atom.make "Small" [ b; c ]);
        Formula.eq c (Term.int 1);
      ]
  in
  (match Solver.Limit_one.solve db f with
   | Some s ->
     Alcotest.(check bool) "b=6 from small" true
       (Term.equal (Logic.Subst.resolve s b) (Term.int 6))
   | None -> Alcotest.fail "join should be satisfiable");
  (* Unsatisfiable residual. *)
  let f2 = Formula.and_ [ f; Formula.neq c (Term.int 1) ] in
  Alcotest.(check bool) "contradiction" false (Solver.Limit_one.satisfiable db f2)

let test_limit_one_dnf_cap () =
  let db = setup () in
  let x = Term.V (Term.fresh_var "x") in
  (* An 8-way nested disjunction exceeds a cap of 4. *)
  let leaf = Formula.Or (List.init 8 (fun i -> Formula.Eq (x, Term.int i))) in
  Alcotest.(check bool) "cap enforced" true
    (match Solver.Limit_one.solve ~max_disjuncts:4 db leaf with
     | exception Solver.Limit_one.Formula_too_large -> true
     | _ -> false)

let suite =
  [ Alcotest.test_case "selective table first" `Quick test_planner_prefers_selective_first;
    Alcotest.test_case "index-based estimates" `Quick test_estimate_uses_indexes;
    Alcotest.test_case "search depth" `Quick test_search_depth_degrades;
    Alcotest.test_case "limit-one join" `Quick test_limit_one_solves_join;
    Alcotest.test_case "limit-one dnf cap" `Quick test_limit_one_dnf_cap;
  ]

(* Tests for conjunctive read queries (Solver.Query). *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Database = Relational.Database
open Logic

let setup () =
  let db = Database.create () in
  let edge =
    Database.create_table db
      (Schema.make ~name:"Edge"
         ~columns:[ Schema.column "src" Value.Tint; Schema.column "dst" Value.Tint ]
         ())
  in
  List.iter
    (fun (a, b) -> ignore (Relational.Table.insert edge (Tuple.of_list [ Value.Int a; Value.Int b ])))
    [ (1, 2); (2, 3); (3, 1); (2, 4) ];
  db

let v name = Term.V (Term.fresh_var name)

let test_all_and_first () =
  let db = setup () in
  let x = v "x" and y = v "y" in
  let q = Solver.Query.make ~head:[ x; y ] ~body:[ Atom.make "Edge" [ x; y ] ] () in
  Alcotest.(check int) "all edges" 4 (List.length (Solver.Query.all db q));
  Alcotest.(check bool) "first exists" true (Solver.Query.first db q <> None);
  Alcotest.(check int) "limit" 2 (List.length (Solver.Query.all ~limit:2 db q))

let test_join_query () =
  let db = setup () in
  let x = v "x" and y = v "y" and z = v "z" in
  (* Two-hop paths. *)
  let q =
    Solver.Query.make ~head:[ x; z ]
      ~body:[ Atom.make "Edge" [ x; y ]; Atom.make "Edge" [ y; z ] ]
      ()
  in
  (* 1->2->3, 1->2->4, 2->3->1, 3->1->2. *)
  Alcotest.(check int) "two-hop paths" 4 (List.length (Solver.Query.all db q))

let test_projection_dedup () =
  let db = setup () in
  let x = v "x" and y = v "y" in
  (* Project only sources: 2 appears twice but must be returned once. *)
  let q = Solver.Query.make ~head:[ x ] ~body:[ Atom.make "Edge" [ x; y ] ] () in
  Alcotest.(check int) "distinct sources" 3 (List.length (Solver.Query.all db q))

let test_constraints () =
  let db = setup () in
  let x = v "x" and y = v "y" in
  let q =
    Solver.Query.make
      ~constraints:[ Formula.neq x (Term.int 2) ]
      ~head:[ x; y ]
      ~body:[ Atom.make "Edge" [ x; y ] ]
      ()
  in
  Alcotest.(check int) "filtered" 2 (List.length (Solver.Query.all db q));
  let q2 =
    Solver.Query.make
      ~constraints:[ Formula.eq y (Term.int 4) ]
      ~head:[ x ]
      ~body:[ Atom.make "Edge" [ x; y ] ]
      ()
  in
  Alcotest.(check bool) "eq constraint" true
    (match Solver.Query.all db q2 with
     | [ t ] -> Value.equal (Tuple.get t 0) (Value.Int 2)
     | _ -> false)

let test_constant_head_and_exists () =
  let db = setup () in
  let x = v "x" in
  let q =
    Solver.Query.make ~head:[ Term.str "found"; x ]
      ~body:[ Atom.make "Edge" [ Term.int 1; x ] ]
      ()
  in
  (match Solver.Query.all db q with
   | [ t ] -> Alcotest.(check bool) "constant col" true (Value.equal (Tuple.get t 0) (Value.Str "found"))
   | _ -> Alcotest.fail "one row expected");
  Alcotest.(check bool) "exists" true (Solver.Query.exists db q);
  let none =
    Solver.Query.make ~head:[ x ] ~body:[ Atom.make "Edge" [ Term.int 9; x ] ] ()
  in
  Alcotest.(check bool) "not exists" false (Solver.Query.exists db none)

let test_range_restriction () =
  let db = setup () in
  let x = v "x" and free = v "free" in
  let q = Solver.Query.make ~head:[ free ] ~body:[ Atom.make "Edge" [ x; x ] ] () in
  Alcotest.(check bool) "head var not in body" true
    (match Solver.Query.all db q with
     | exception Solver.Query.Not_range_restricted -> true
     | _ -> false)

let suite =
  [ Alcotest.test_case "all and first" `Quick test_all_and_first;
    Alcotest.test_case "join query" `Quick test_join_query;
    Alcotest.test_case "projection dedup" `Quick test_projection_dedup;
    Alcotest.test_case "constraints" `Quick test_constraints;
    Alcotest.test_case "constant head / exists" `Quick test_constant_head_and_exists;
    Alcotest.test_case "range restriction" `Quick test_range_restriction;
  ]

(* Crash-recovery tests (paper Section 4, "Recovery"): pending resource
   transactions survive a crash through the pending-transactions table;
   the rebuilt engine has the same pending set, keeps the invariant, and
   can still ground everything.  Includes failure injection around the
   commit point. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Database = Relational.Database
module Store = Relational.Store
module Wal = Relational.Wal
module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn
module Flights = Workload.Flights
module Travel = Workload.Travel

let geometry rows = { Flights.flights = 1; rows_per_flight = rows; dest = "LA" }
let user name partner = { Travel.name; partner; flight = 0 }

let test_recover_pending () =
  let backend = Wal.mem_backend () in
  let store = Flights.fresh_store ~backend (geometry 2) in
  let qdb = Qdb.create store in
  List.iter
    (fun n -> ignore (Qdb.submit qdb (Travel.plain_txn (user n "-"))))
    [ "a"; "b"; "c" ];
  ignore (Qdb.ground qdb 0);
  Alcotest.(check int) "two pending pre-crash" 2 (Qdb.pending_count qdb);
  (* Crash: all in-memory state gone; recover from the log. *)
  let qdb' = Qdb.recover backend in
  Alcotest.(check int) "two pending post-crash" 2 (Qdb.pending_count qdb');
  Alcotest.(check bool) "invariant restored" true (Qdb.invariant_holds qdb');
  let labels = List.map (fun t -> t.Rtxn.label) (Qdb.pending qdb') |> List.sort String.compare in
  Alcotest.(check (list string)) "same pending transactions" [ "b"; "c" ] labels;
  (* Grounded booking survived. *)
  Alcotest.(check bool) "a's booking durable" true (Flights.booking_of (Qdb.db qdb') "a" <> None);
  (* The recovered engine still grounds everything. *)
  ignore (Qdb.ground_all qdb');
  Alcotest.(check int) "all booked" 3
    (Relational.Table.cardinality (Database.table (Qdb.db qdb') "Bookings"));
  Alcotest.(check int) "no pending" 0 (Qdb.pending_count qdb')

let test_recover_is_idempotent () =
  let backend = Wal.mem_backend () in
  let store = Flights.fresh_store ~backend (geometry 2) in
  let qdb = Qdb.create store in
  ignore (Qdb.submit qdb (Travel.plain_txn (user "a" "-")));
  let once = Qdb.recover backend in
  let twice = Qdb.recover backend in
  Alcotest.(check int) "same pending count" (Qdb.pending_count once) (Qdb.pending_count twice);
  Alcotest.(check bool) "same database" true (Database.equal (Qdb.db once) (Qdb.db twice))

let test_recovered_ids_do_not_collide () =
  let backend = Wal.mem_backend () in
  let store = Flights.fresh_store ~backend (geometry 2) in
  let qdb = Qdb.create store in
  ignore (Qdb.submit qdb (Travel.plain_txn (user "a" "-")));
  ignore (Qdb.submit qdb (Travel.plain_txn (user "b" "-")));
  let qdb' = Qdb.recover backend in
  (* New submissions must not collide with recovered ids. *)
  (match Qdb.submit qdb' (Travel.plain_txn (user "c" "-")) with
   | Qdb.Committed id -> Alcotest.(check bool) "fresh id" true (id >= 2)
   | Qdb.Rejected _ -> Alcotest.fail "commit expected");
  ignore (Qdb.ground_all qdb');
  Alcotest.(check int) "three booked" 3
    (Relational.Table.cardinality (Database.table (Qdb.db qdb') "Bookings"))

(* Failure injection: crash with a torn WAL batch — the last pending
   insert is half-written.  Recovery must drop the torn batch and keep a
   consistent prefix. *)
let test_torn_commit () =
  let backend = Wal.mem_backend () in
  let store = Flights.fresh_store ~backend (geometry 2) in
  let qdb = Qdb.create store in
  ignore (Qdb.submit qdb (Travel.plain_txn (user "a" "-")));
  (* Simulate the crash mid-commit of "b": write Begin+Op, no Commit. *)
  let row =
    Tuple.of_list [ Value.Int 99; Value.Str "(99 b () () () () () on-demand)" ]
  in
  backend.Wal.append
    (Relational.Sexp.to_string (Wal.record_to_sexp (Wal.Begin 999)));
  backend.Wal.append
    (Relational.Sexp.to_string
       (Wal.record_to_sexp (Wal.Op (Database.Insert (Qdb.pending_table_name, row)))));
  let qdb' = Qdb.recover backend in
  Alcotest.(check int) "only the acknowledged txn recovered" 1 (Qdb.pending_count qdb');
  Alcotest.(check bool) "invariant" true (Qdb.invariant_holds qdb')

let test_entangled_trigger_survives_recovery () =
  let backend = Wal.mem_backend () in
  let store = Flights.fresh_store ~backend (geometry 2) in
  let qdb = Qdb.create store in
  ignore (Qdb.submit qdb (Travel.entangled_txn (user "a" "b")));
  Alcotest.(check int) "a waits" 1 (Qdb.pending_count qdb);
  let qdb' = Qdb.recover backend in
  Alcotest.(check int) "a still pending" 1 (Qdb.pending_count qdb');
  (* The partner arrives after recovery: both must ground together,
     adjacent. *)
  ignore (Qdb.submit qdb' (Travel.entangled_txn (user "b" "a")));
  Alcotest.(check int) "both grounded" 0 (Qdb.pending_count qdb');
  (match Flights.booking_of (Qdb.db qdb') "a", Flights.booking_of (Qdb.db qdb') "b" with
   | Some (_, s1), Some (_, s2) ->
     Alcotest.(check bool) "adjacent after recovery" true
       (Flights.seats_adjacent (Qdb.db qdb') s1 s2)
   | _ -> Alcotest.fail "both should be booked")

let suite =
  [ Alcotest.test_case "recover pending transactions" `Quick test_recover_pending;
    Alcotest.test_case "recovery idempotent" `Quick test_recover_is_idempotent;
    Alcotest.test_case "recovered ids fresh" `Quick test_recovered_ids_do_not_collide;
    Alcotest.test_case "torn commit dropped" `Quick test_torn_commit;
    Alcotest.test_case "entangled trigger survives recovery" `Quick
      test_entangled_trigger_survives_recovery;
  ]

(* Tests for the relational-algebra query layer. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Database = Relational.Database
module Relalg = Relational.Relalg

let setup () =
  let db = Database.create () in
  let emp =
    Database.create_table db
      (Schema.make ~name:"Emp"
         ~columns:
           [ Schema.column "eid" Value.Tint; Schema.column "name" Value.Tstr;
             Schema.column "dept" Value.Tint ]
         ~key:[ "eid" ] ())
  in
  let dept =
    Database.create_table db
      (Schema.make ~name:"Dept"
         ~columns:[ Schema.column "dept" Value.Tint; Schema.column "dname" Value.Tstr ]
         ~key:[ "dept" ] ())
  in
  let e i n d = Tuple.of_list [ Value.Int i; Value.Str n; Value.Int d ] in
  let d i n = Tuple.of_list [ Value.Int i; Value.Str n ] in
  List.iter (fun t -> ignore (Relational.Table.insert emp t))
    [ e 1 "ann" 10; e 2 "bob" 10; e 3 "cat" 20; e 4 "dan" 30 ];
  List.iter (fun t -> ignore (Relational.Table.insert dept t)) [ d 10 "eng"; d 20 "ops" ];
  db

let rows db expr = snd (Relalg.run db expr)

let test_scan_select () =
  let db = setup () in
  Alcotest.(check int) "scan all" 4 (List.length (rows db (Relalg.Scan "Emp")));
  let q = Relalg.Select (Relalg.Eq_const ("dept", Value.Int 10), Relalg.Scan "Emp") in
  Alcotest.(check int) "select dept 10" 2 (List.length (rows db q));
  let q2 = Relalg.Select (Relalg.Neq_const ("dept", Value.Int 10), Relalg.Scan "Emp") in
  Alcotest.(check int) "select others" 2 (List.length (rows db q2))

let test_project_rename () =
  let db = setup () in
  let header, result = Relalg.run db (Relalg.Project ([ "name" ], Relalg.Scan "Emp")) in
  Alcotest.(check (array string)) "header" [| "name" |] header;
  Alcotest.(check int) "rows" 4 (List.length result);
  let header, _ =
    Relalg.run db (Relalg.Rename ([ ("name", "who") ], Relalg.Scan "Emp"))
  in
  Alcotest.(check bool) "renamed" true (Array.exists (String.equal "who") header)

let test_join () =
  let db = setup () in
  let joined = Relalg.Join (Relalg.Scan "Emp", Relalg.Scan "Dept") in
  let header, result = Relalg.run db joined in
  (* dan's dept 30 has no Dept row: inner join drops him. *)
  Alcotest.(check int) "join rows" 3 (List.length result);
  Alcotest.(check int) "join header width" 4 (Array.length header);
  (* Join then select gives the expected employee set. *)
  let q =
    Relalg.Project
      ([ "name" ], Relalg.Select (Relalg.Eq_const ("dname", Value.Str "eng"), joined))
  in
  let names =
    rows db q |> List.map (fun t -> Tuple.get t 0) |> List.sort Value.compare
  in
  Alcotest.(check int) "eng members" 2 (List.length names)

let test_product_requires_disjoint () =
  let db = setup () in
  Alcotest.(check bool) "product clash" true
    (match Relalg.run db (Relalg.Product (Relalg.Scan "Emp", Relalg.Scan "Emp")) with
     | exception Relalg.Eval_error _ -> true
     | _ -> false);
  let renamed =
    Relalg.Rename
      ([ ("eid", "eid2"); ("name", "name2"); ("dept", "dept2") ], Relalg.Scan "Emp")
  in
  let _, result = Relalg.run db (Relalg.Product (Relalg.Scan "Emp", renamed)) in
  Alcotest.(check int) "product size" 16 (List.length result)

let test_set_ops () =
  let db = setup () in
  let eng = Relalg.Select (Relalg.Eq_const ("dept", Value.Int 10), Relalg.Scan "Emp") in
  let ops = Relalg.Select (Relalg.Eq_const ("dept", Value.Int 20), Relalg.Scan "Emp") in
  Alcotest.(check int) "union" 3 (List.length (rows db (Relalg.Union (eng, ops))));
  Alcotest.(check int) "union dedup" 2 (List.length (rows db (Relalg.Union (eng, eng))));
  Alcotest.(check int) "diff" 2 (List.length (rows db (Relalg.Diff (Relalg.Scan "Emp", ops)) |> List.filter (fun t -> Value.equal (Tuple.get t 2) (Value.Int 10))));
  Alcotest.(check int) "distinct" 1
    (List.length (rows db (Relalg.Distinct (Relalg.Project ([ "dept" ], eng)))))

let test_limit_lazy () =
  let db = setup () in
  Alcotest.(check int) "limit 2" 2 (List.length (rows db (Relalg.Limit (2, Relalg.Scan "Emp"))));
  Alcotest.(check bool) "run_first" true
    (Option.is_some (Relalg.run_first db (Relalg.Scan "Emp")));
  Alcotest.(check bool) "run_first empty" true
    (Relalg.run_first db (Relalg.Select (Relalg.Eq_const ("dept", Value.Int 99), Relalg.Scan "Emp"))
     = None)

let test_aggregates () =
  let db = setup () in
  (* COUNT per department. *)
  let q =
    Relalg.Aggregate ([ "dept" ], [ ("n", Relalg.Count) ], Relalg.Scan "Emp")
  in
  let _, result = Relalg.run db q in
  Alcotest.(check int) "three groups" 3 (List.length result);
  let count_of dept =
    List.find_map
      (fun t ->
        if Value.equal (Tuple.get t 0) (Value.Int dept) then
          match Tuple.get t 1 with
          | Value.Int n -> Some n
          | _ -> None
        else None)
      result
  in
  Alcotest.(check (option int)) "dept 10 has 2" (Some 2) (count_of 10);
  Alcotest.(check (option int)) "dept 30 has 1" (Some 1) (count_of 30);
  (* Global SUM / MIN / MAX without grouping. *)
  let q2 =
    Relalg.Aggregate
      ( [],
        [ ("total", Relalg.Sum "eid"); ("lo", Relalg.Min "eid"); ("hi", Relalg.Max "eid") ],
        Relalg.Scan "Emp" )
  in
  (match snd (Relalg.run db q2) with
   | [ t ] ->
     Alcotest.(check bool) "sum" true (Value.equal (Tuple.get t 0) (Value.Int 10));
     Alcotest.(check bool) "min" true (Value.equal (Tuple.get t 1) (Value.Int 1));
     Alcotest.(check bool) "max" true (Value.equal (Tuple.get t 2) (Value.Int 4))
   | _ -> Alcotest.fail "single row expected");
  (* COUNT over empty input yields a zero row. *)
  let q3 =
    Relalg.Aggregate
      ([], [ ("n", Relalg.Count) ],
       Relalg.Select (Relalg.Eq_const ("dept", Value.Int 99), Relalg.Scan "Emp"))
  in
  (match snd (Relalg.run db q3) with
   | [ t ] -> Alcotest.(check bool) "zero" true (Value.equal (Tuple.get t 0) (Value.Int 0))
   | _ -> Alcotest.fail "single zero row expected")

let suite =
  [ Alcotest.test_case "scan and select" `Quick test_scan_select;
    Alcotest.test_case "project and rename" `Quick test_project_rename;
    Alcotest.test_case "natural join" `Quick test_join;
    Alcotest.test_case "product" `Quick test_product_requires_disjoint;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "limit" `Quick test_limit_lazy;
    Alcotest.test_case "aggregates" `Quick test_aggregates;
  ]

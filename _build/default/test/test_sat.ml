(* Tests for the DPLL SAT solver and the CNF builder. *)

let test_trivial () =
  Alcotest.(check bool) "empty instance sat" true
    (match Sat.Dpll.solve [] with
     | Sat.Dpll.Sat _ -> true
     | Sat.Dpll.Unsat -> false);
  Alcotest.(check bool) "empty clause unsat" true (Sat.Dpll.solve [ [||] ] = Sat.Dpll.Unsat);
  Alcotest.(check bool) "unit sat" true
    (match Sat.Dpll.solve [ [| 1 |] ] with
     | Sat.Dpll.Sat m -> m.(1)
     | Sat.Dpll.Unsat -> false);
  Alcotest.(check bool) "conflicting units unsat" true
    (Sat.Dpll.solve [ [| 1 |]; [| -1 |] ] = Sat.Dpll.Unsat)

let test_small_instances () =
  (* (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (x1 ∨ ¬x2): forces x1=x2=true. *)
  (match Sat.Dpll.solve [ [| 1; 2 |]; [| -1; 2 |]; [| 1; -2 |] ] with
   | Sat.Dpll.Sat m ->
     Alcotest.(check bool) "x1" true m.(1);
     Alcotest.(check bool) "x2" true m.(2)
   | Sat.Dpll.Unsat -> Alcotest.fail "should be sat");
  (* All four binary clauses over two vars: unsat. *)
  Alcotest.(check bool) "full binary unsat" true
    (Sat.Dpll.solve [ [| 1; 2 |]; [| -1; 2 |]; [| 1; -2 |]; [| -1; -2 |] ] = Sat.Dpll.Unsat)

let test_pigeonhole () =
  (* PHP(3,2): 3 pigeons, 2 holes — classically unsat.  Var p_{i,h} = 2i+h+1. *)
  let var i h = (2 * i) + h + 1 in
  let clauses =
    (* each pigeon in some hole *)
    List.init 3 (fun i -> [| var i 0; var i 1 |])
    @ (* no two pigeons share a hole *)
    List.concat_map
      (fun h ->
        [ [| -var 0 h; -var 1 h |]; [| -var 0 h; -var 2 h |]; [| -var 1 h; -var 2 h |] ])
      [ 0; 1 ]
  in
  Alcotest.(check bool) "php(3,2) unsat" true (Sat.Dpll.solve clauses = Sat.Dpll.Unsat)

let test_cnf_builder () =
  let cnf = Sat.Cnf.create () in
  let a = Sat.Cnf.fresh_var cnf and b = Sat.Cnf.fresh_var cnf and c = Sat.Cnf.fresh_var cnf in
  Sat.Cnf.add_exactly_one cnf [ a; b; c ];
  (* ALO(1) + AMO(3 pairs) = 4 clauses *)
  Alcotest.(check int) "exactly-one clause count" 4 (Sat.Cnf.num_clauses cnf);
  Sat.Cnf.add_clause cnf [ a; Sat.Cnf.neg a ];
  Alcotest.(check int) "tautology dropped" 4 (Sat.Cnf.num_clauses cnf);
  Alcotest.(check bool) "bad literal" true
    (match Sat.Cnf.add_clause cnf [ 99 ] with
     | exception Sat.Cnf.Bad_literal _ -> true
     | _ -> false);
  (match Sat.Dpll.solve (Sat.Cnf.clauses cnf) with
   | Sat.Dpll.Sat m ->
     let count = List.length (List.filter (fun v -> m.(v)) [ a; b; c ]) in
     Alcotest.(check int) "exactly one true" 1 count
   | Sat.Dpll.Unsat -> Alcotest.fail "exactly-one should be sat")

(* Brute-force reference: try all assignments. *)
let brute_force num_vars clauses =
  let rec go v model =
    if v > num_vars then Sat.Dpll.check_model clauses model
    else begin
      model.(v) <- false;
      go (v + 1) model
      ||
      (model.(v) <- true;
       go (v + 1) model)
    end
  in
  go 1 (Array.make (num_vars + 1) false)

let clause_gen num_vars =
  let open QCheck.Gen in
  let lit_gen =
    let* v = int_range 1 num_vars in
    let* sign = bool in
    return (if sign then v else -v)
  in
  list_size (int_range 0 20) (map Array.of_list (list_size (int_range 1 4) lit_gen))

let prop_dpll_agrees_with_brute_force =
  QCheck.Test.make ~name:"dpll = brute force on random 3-sat-ish" ~count:500
    (QCheck.make (clause_gen 6)
       ~print:(fun cs ->
         String.concat " "
           (List.map
              (fun c ->
                "(" ^ String.concat "," (List.map string_of_int (Array.to_list c)) ^ ")")
              cs)))
    (fun clauses ->
      let brute = brute_force 6 clauses in
      match Sat.Dpll.solve ~num_vars:6 clauses with
      | Sat.Dpll.Sat model -> brute && Sat.Dpll.check_model clauses model
      | Sat.Dpll.Unsat -> not brute)

let suite =
  [ Alcotest.test_case "trivial cases" `Quick test_trivial;
    Alcotest.test_case "small instances" `Quick test_small_instances;
    Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole;
    Alcotest.test_case "cnf builder" `Quick test_cnf_builder;
    QCheck_alcotest.to_alcotest prop_dpll_agrees_with_brute_force;
  ]

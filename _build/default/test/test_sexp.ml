(* Tests for the s-expression codec. *)

module Sexp = Relational.Sexp

let check_roundtrip name s =
  Alcotest.(check string) name (Sexp.to_string s) (Sexp.to_string (Sexp.of_string (Sexp.to_string s)))

let test_atoms () =
  check_roundtrip "bare" (Sexp.atom "hello");
  check_roundtrip "spaces" (Sexp.atom "hello world");
  check_roundtrip "quotes" (Sexp.atom "say \"hi\"");
  check_roundtrip "escapes" (Sexp.atom "line1\nline2\ttab\\slash");
  check_roundtrip "empty" (Sexp.atom "");
  check_roundtrip "parens" (Sexp.atom "a(b)c")

let test_lists () =
  check_roundtrip "empty list" (Sexp.list []);
  check_roundtrip "nested"
    (Sexp.list [ Sexp.atom "a"; Sexp.list [ Sexp.atom "b"; Sexp.list [] ]; Sexp.atom "c" ])

let test_parse_basics () =
  Alcotest.(check bool) "atom" true (Sexp.equal (Sexp.of_string "abc") (Sexp.atom "abc"));
  Alcotest.(check bool)
    "list" true
    (Sexp.equal (Sexp.of_string "(a b c)") (Sexp.list [ Sexp.atom "a"; Sexp.atom "b"; Sexp.atom "c" ]));
  Alcotest.(check bool)
    "whitespace" true
    (Sexp.equal (Sexp.of_string "  ( a\n\tb )  ") (Sexp.list [ Sexp.atom "a"; Sexp.atom "b" ]));
  Alcotest.(check bool)
    "comments" true
    (Sexp.equal (Sexp.of_string "(a ; comment\n b)") (Sexp.list [ Sexp.atom "a"; Sexp.atom "b" ]))

let test_parse_many () =
  let docs = Sexp.of_string_many "a (b c) d" in
  Alcotest.(check int) "three documents" 3 (List.length docs)

let test_parse_errors () =
  let fails input =
    match Sexp.of_string input with
    | exception Sexp.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unterminated list" true (fails "(a b");
  Alcotest.(check bool) "stray paren" true (fails ")");
  Alcotest.(check bool) "unterminated string" true (fails "\"abc");
  Alcotest.(check bool) "trailing garbage" true (fails "(a) b");
  Alcotest.(check bool) "empty input" true (fails "")

let qcheck_sexp_gen =
  let open QCheck in
  let atom_gen = Gen.map Sexp.atom (Gen.string_size ~gen:Gen.printable (Gen.int_range 0 8)) in
  let rec sexp_gen depth =
    if depth = 0 then atom_gen
    else
      Gen.frequency
        [ (3, atom_gen);
          (1, Gen.map Sexp.list (Gen.list_size (Gen.int_range 0 4) (sexp_gen (depth - 1))));
        ]
  in
  make (sexp_gen 3) ~print:Sexp.to_string

let prop_roundtrip =
  QCheck.Test.make ~name:"sexp print/parse roundtrip" ~count:500 qcheck_sexp_gen (fun s ->
      Sexp.equal s (Sexp.of_string (Sexp.to_string s)))

let suite =
  [ Alcotest.test_case "atoms roundtrip" `Quick test_atoms;
    Alcotest.test_case "lists roundtrip" `Quick test_lists;
    Alcotest.test_case "parse basics" `Quick test_parse_basics;
    Alcotest.test_case "parse many" `Quick test_parse_many;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]

(* Tests for schemas, tables, keys, and secondary indexes. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Table = Relational.Table

let seats_schema =
  Schema.make ~name:"Seats"
    ~columns:
      [ Schema.column "fno" Value.Tint; Schema.column "seat" Value.Tint;
        Schema.column "class" Value.Tstr ]
    ~key:[ "fno"; "seat" ] ()

let row f s c = Tuple.of_list [ Value.Int f; Value.Int s; Value.Str c ]

let test_schema_validation () =
  let fails f =
    match f () with
    | exception Schema.Invalid _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "duplicate column" true
    (fails (fun () ->
         Schema.make ~name:"T" ~columns:[ Schema.column "a" Value.Tint; Schema.column "a" Value.Tint ] ()));
  Alcotest.(check bool) "unknown key column" true
    (fails (fun () ->
         Schema.make ~name:"T" ~columns:[ Schema.column "a" Value.Tint ] ~key:[ "b" ] ()));
  Alcotest.(check bool) "no columns" true
    (fails (fun () -> Schema.make ~name:"T" ~columns:[] ()));
  Alcotest.(check bool) "empty key" true
    (fails (fun () -> Schema.make ~name:"T" ~columns:[ Schema.column "a" Value.Tint ] ~key:[] ()))

let test_insert_and_key () =
  let t = Table.create seats_schema in
  Alcotest.(check bool) "first insert" true (Table.insert t (row 1 1 "econ") = Table.Inserted);
  Alcotest.(check bool) "duplicate key" true (Table.insert t (row 1 1 "biz") = Table.Duplicate_key);
  Alcotest.(check bool) "different key" true (Table.insert t (row 1 2 "econ") = Table.Inserted);
  Alcotest.(check int) "cardinality" 2 (Table.cardinality t);
  Alcotest.(check bool) "mem exact" true (Table.mem t (row 1 1 "econ"));
  Alcotest.(check bool) "mem wrong non-key" false (Table.mem t (row 1 1 "biz"))

let test_type_checking () =
  let t = Table.create seats_schema in
  let bad = Tuple.of_list [ Value.Str "x"; Value.Int 1; Value.Str "econ" ] in
  Alcotest.(check bool) "type error" true
    (match Table.insert t bad with
     | exception Schema.Invalid _ -> true
     | _ -> false);
  let wrong_arity = Tuple.of_list [ Value.Int 1 ] in
  Alcotest.(check bool) "arity error" true
    (match Table.insert t wrong_arity with
     | exception Schema.Invalid _ -> true
     | _ -> false)

let test_delete () =
  let t = Table.create seats_schema in
  ignore (Table.insert t (row 1 1 "econ"));
  Alcotest.(check bool) "delete wrong non-key fails" false (Table.delete t (row 1 1 "biz"));
  Alcotest.(check bool) "delete exact" true (Table.delete t (row 1 1 "econ"));
  Alcotest.(check bool) "delete absent" false (Table.delete t (row 1 1 "econ"));
  Alcotest.(check int) "empty" 0 (Table.cardinality t)

let fill t n =
  for f = 0 to n - 1 do
    for s = 0 to 9 do
      ignore (Table.insert t (row f s (if s mod 2 = 0 then "econ" else "biz")))
    done
  done

let test_pattern_lookup () =
  let t = Table.create seats_schema in
  fill t 5;
  let pat_flight2 = [| Some (Value.Int 2); None; None |] in
  Alcotest.(check int) "scan match count" 10 (List.length (Table.lookup t pat_flight2));
  let pat_biz = [| None; None; Some (Value.Str "biz") |] in
  Alcotest.(check int) "biz seats" 25 (List.length (Table.lookup t pat_biz));
  let pat_key = [| Some (Value.Int 3); Some (Value.Int 4); None |] in
  Alcotest.(check int) "key probe" 1 (List.length (Table.lookup t pat_key));
  let pat_none = [| Some (Value.Int 99); None; None |] in
  Alcotest.(check int) "no match" 0 (List.length (Table.lookup t pat_none))

let test_secondary_index () =
  let t = Table.create seats_schema in
  fill t 50;
  Table.create_index_on t [ "fno" ];
  let pat = [| Some (Value.Int 7); None; None |] in
  Alcotest.(check int) "indexed lookup" 10 (List.length (Table.lookup t pat));
  Alcotest.(check int) "estimate via index" 10 (Table.estimate_matches t pat);
  (* Index stays correct across mutation. *)
  ignore (Table.delete t (row 7 0 "econ"));
  Alcotest.(check int) "after delete" 9 (List.length (Table.lookup t pat));
  ignore (Table.insert t (row 7 0 "econ"));
  Alcotest.(check int) "after reinsert" 10 (List.length (Table.lookup t pat));
  (* Index created after rows exist covers them (tested by construction),
     and index_stats reports distinct keys. *)
  let stats = Table.index_stats t in
  Alcotest.(check int) "one index" 1 (List.length stats);
  Alcotest.(check int) "distinct flights" 50 (snd (List.hd stats))

let test_copy_isolation () =
  let t = Table.create seats_schema in
  fill t 3;
  Table.create_index_on t [ "fno" ];
  let c = Table.copy t in
  ignore (Table.delete t (row 0 0 "econ"));
  Alcotest.(check int) "copy unaffected" 30 (Table.cardinality c);
  Alcotest.(check int) "original changed" 29 (Table.cardinality t);
  let pat = [| Some (Value.Int 0); None; None |] in
  Alcotest.(check int) "copy index works" 10 (List.length (Table.lookup c pat))

let test_ordered_index_range () =
  let t = Table.create seats_schema in
  fill t 10;
  Table.create_ordered_index_on t "fno";
  let range ?lo ?hi () = Table.range_on t ~col_name:"fno" ?lo ?hi () in
  Alcotest.(check int) "full range" 100 (List.length (range ()));
  Alcotest.(check int) "lo inclusive" 30
    (List.length (range ~lo:(Table.Inclusive (Value.Int 7)) ()));
  Alcotest.(check int) "lo exclusive" 20
    (List.length (range ~lo:(Table.Exclusive (Value.Int 7)) ()));
  Alcotest.(check int) "window" 30
    (List.length (range ~lo:(Table.Inclusive (Value.Int 3)) ~hi:(Table.Exclusive (Value.Int 6)) ()));
  (* Ascending order on the indexed column. *)
  let flights = List.map (fun row -> Tuple.get row 0) (range ()) in
  Alcotest.(check bool) "ascending" true
    (List.sort Value.compare flights = flights);
  (* Maintained under mutation. *)
  ignore (Table.delete t (row 5 0 "econ"));
  Alcotest.(check int) "after delete" 9
    (List.length (range ~lo:(Table.Inclusive (Value.Int 5)) ~hi:(Table.Inclusive (Value.Int 5)) ()));
  Alcotest.(check bool) "min" true (Table.min_value t ~col:0 = Some (Value.Int 0));
  Alcotest.(check bool) "max" true (Table.max_value t ~col:0 = Some (Value.Int 9))

let test_range_without_index_agrees () =
  let indexed = Table.create seats_schema and plain = Table.create seats_schema in
  fill indexed 6;
  fill plain 6;
  Table.create_ordered_index_on indexed "seat";
  let get t = Table.range_on t ~col_name:"seat" ~lo:(Table.Inclusive (Value.Int 3)) () in
  let key_sorted rows = List.sort Relational.Tuple.compare rows in
  Alcotest.(check bool) "indexed = scan" true
    (List.equal Relational.Tuple.equal (key_sorted (get indexed)) (key_sorted (get plain)))

let prop_lookup_agrees_with_scan =
  (* Random inserts/deletes; pattern lookup must equal a naive filter. *)
  let open QCheck in
  let op_gen =
    Gen.map
      (fun (ins, f, s) -> (ins, f mod 4, s mod 4))
      (Gen.triple Gen.bool Gen.small_nat Gen.small_nat)
  in
  Test.make ~name:"indexed lookup = naive scan" ~count:200
    (make (Gen.list_size (Gen.int_range 0 40) op_gen))
    (fun ops ->
      let t = Table.create seats_schema in
      Table.create_index_on t [ "fno" ];
      List.iter
        (fun (ins, f, s) ->
          if ins then ignore (Table.insert t (row f s "econ"))
          else ignore (Table.delete t (row f s "econ")))
        ops;
      List.for_all
        (fun f ->
          let pat = [| Some (Value.Int f); None; None |] in
          let indexed = List.sort Relational.Tuple.compare (Table.lookup t pat) in
          let naive =
            List.sort Relational.Tuple.compare
              (List.filter (Table.pattern_matches pat) (Table.to_list t))
          in
          List.equal Relational.Tuple.equal indexed naive)
        [ 0; 1; 2; 3 ])

let suite =
  [ Alcotest.test_case "schema validation" `Quick test_schema_validation;
    Alcotest.test_case "insert and key" `Quick test_insert_and_key;
    Alcotest.test_case "type checking" `Quick test_type_checking;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "pattern lookup" `Quick test_pattern_lookup;
    Alcotest.test_case "secondary index" `Quick test_secondary_index;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
    Alcotest.test_case "ordered index range" `Quick test_ordered_index_range;
    Alcotest.test_case "range without index" `Quick test_range_without_index_agrees;
    QCheck_alcotest.to_alcotest prop_lookup_agrees_with_scan;
  ]

(* Tests for terms, substitutions, most general unifiers (Definition 3.2)
   and unification predicates (Definition 3.3). *)

module Value = Relational.Value
open Logic

let v name = Term.fresh_var name

let test_subst_resolve_chains () =
  let a = v "a" and b = v "b" in
  let s = Subst.bind a (Term.V b) (Subst.bind b (Term.int 5) Subst.empty) in
  Alcotest.(check bool) "chain resolves" true (Term.equal (Subst.resolve s (Term.V a)) (Term.int 5));
  let flat = Subst.flatten s in
  Alcotest.(check bool) "flattened direct" true
    (match Subst.find a flat with
     | Some t -> Term.equal t (Term.int 5)
     | None -> false)

let test_restrict_flattens () =
  let a = v "a" and b = v "b" in
  let s = Subst.bind a (Term.V b) (Subst.bind b (Term.int 7) Subst.empty) in
  let restricted = Subst.restrict (Term.Var_set.singleton a) s in
  Alcotest.(check bool) "kept var resolves to constant" true
    (Term.equal (Subst.resolve restricted (Term.V a)) (Term.int 7))

let test_mgu_paper_example () =
  (* R(1, v1, v2) and R(v3, 2, v4): mgu = {v1/2, v2/v4, v3/1}. *)
  let v1 = v "v1" and v2 = v "v2" and v3 = v "v3" and v4 = v "v4" in
  let a = Atom.make "R" [ Term.int 1; Term.V v1; Term.V v2 ] in
  let b = Atom.make "R" [ Term.V v3; Term.int 2; Term.V v4 ] in
  match Unify.mgu a b with
  | None -> Alcotest.fail "expected a unifier"
  | Some s ->
    Alcotest.(check bool) "v1 = 2" true (Term.equal (Subst.resolve s (Term.V v1)) (Term.int 2));
    Alcotest.(check bool) "v3 = 1" true (Term.equal (Subst.resolve s (Term.V v3)) (Term.int 1));
    Alcotest.(check bool) "v2 ~ v4" true
      (Term.equal (Subst.resolve s (Term.V v2)) (Subst.resolve s (Term.V v4)));
    (* ϕ = (v1=2) ∧ (v2=v4) ∧ (v3=1): three equalities. *)
    (match Unify.predicate a b with
     | Formula.And fs -> Alcotest.(check int) "three equalities" 3 (List.length fs)
     | f -> Alcotest.failf "unexpected predicate %s" (Formula.to_string f))

let test_mgu_failures () =
  let x = v "x" in
  Alcotest.(check bool) "relation mismatch" true
    (Unify.mgu (Atom.make "R" [ Term.V x ]) (Atom.make "S" [ Term.V x ]) = None);
  Alcotest.(check bool) "arity mismatch" true
    (Unify.mgu (Atom.make "R" [ Term.V x ]) (Atom.make "R" [ Term.V x; Term.V x ]) = None);
  Alcotest.(check bool) "constant clash" true
    (Unify.mgu (Atom.make "R" [ Term.int 1 ]) (Atom.make "R" [ Term.int 2 ]) = None);
  Alcotest.(check bool) "predicate trivially false" true
    (Unify.predicate (Atom.make "R" [ Term.int 1 ]) (Atom.make "R" [ Term.int 2 ]) = Formula.False)

let test_ground_identical_atoms () =
  let a = Atom.make "R" [ Term.int 1; Term.str "x" ] in
  Alcotest.(check bool) "empty mgu" true
    (match Unify.mgu a a with
     | Some s -> Subst.is_empty s
     | None -> false);
  Alcotest.(check bool) "predicate trivially true" true (Unify.predicate a a = Formula.True)

let test_repeated_var () =
  (* R(x, x) with R(1, 2) must fail; with R(3, 3) must succeed. *)
  let x = v "x" in
  let a = Atom.make "R" [ Term.V x; Term.V x ] in
  Alcotest.(check bool) "x=1 and x=2 clash" true
    (Unify.mgu a (Atom.make "R" [ Term.int 1; Term.int 2 ]) = None);
  Alcotest.(check bool) "x=3 twice ok" true
    (Option.is_some (Unify.mgu a (Atom.make "R" [ Term.int 3; Term.int 3 ])))

(* -- Properties ------------------------------------------------------------ *)

(* Generator of random atoms over a small vocabulary with shared variables. *)
let atom_pair_gen =
  let open QCheck in
  let gen =
    let open Gen in
    let* rel = oneofl [ "R"; "S" ] in
    let* arity = int_range 1 3 in
    (* A pool of shared variables so unifiers are nontrivial. *)
    let pool = Array.init 4 (fun i -> Term.fresh_var (Printf.sprintf "q%d" i)) in
    let term_gen =
      oneof
        [ map (fun i -> Term.V pool.(i mod 4)) small_nat;
          map (fun n -> Term.int (n mod 3)) small_nat;
        ]
    in
    let* args1 = list_size (return arity) term_gen in
    let* args2 = list_size (return arity) term_gen in
    return (Atom.make rel args1, Atom.make rel args2)
  in
  make gen ~print:(fun (a, b) -> Atom.to_string a ^ " ~ " ^ Atom.to_string b)

let prop_mgu_is_unifier =
  QCheck.Test.make ~name:"mgu output unifies the atoms" ~count:1000 atom_pair_gen
    (fun (a, b) ->
      match Unify.mgu a b with
      | None -> true
      | Some s -> Atom.equal (Subst.apply_atom s a) (Subst.apply_atom s b))

let prop_mgu_symmetric =
  QCheck.Test.make ~name:"unifiability is symmetric" ~count:1000 atom_pair_gen (fun (a, b) ->
      Unify.unifiable a b = Unify.unifiable b a)

let prop_predicate_false_iff_no_unifier =
  QCheck.Test.make ~name:"predicate is False exactly when no unifier" ~count:1000 atom_pair_gen
    (fun (a, b) -> Unify.unifiable a b = (Unify.predicate a b <> Formula.False))

let suite =
  [ Alcotest.test_case "subst chains" `Quick test_subst_resolve_chains;
    Alcotest.test_case "restrict flattens" `Quick test_restrict_flattens;
    Alcotest.test_case "mgu paper example" `Quick test_mgu_paper_example;
    Alcotest.test_case "mgu failures" `Quick test_mgu_failures;
    Alcotest.test_case "ground identical atoms" `Quick test_ground_identical_atoms;
    Alcotest.test_case "repeated variable" `Quick test_repeated_var;
    QCheck_alcotest.to_alcotest prop_mgu_is_unifier;
    QCheck_alcotest.to_alcotest prop_mgu_symmetric;
    QCheck_alcotest.to_alcotest prop_predicate_false_iff_no_unifier;
  ]

(* Tests for values and tuples. *)

module Value = Relational.Value
module Tuple = Relational.Tuple

let test_ordering () =
  Alcotest.(check bool) "int < str" true (Value.compare (Value.Int 5) (Value.Str "a") < 0);
  Alcotest.(check bool) "str < bool" true (Value.compare (Value.Str "z") (Value.Bool false) < 0);
  Alcotest.(check bool) "int order" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "str order" true (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  Alcotest.(check bool) "bool order" true (Value.compare (Value.Bool false) (Value.Bool true) < 0);
  Alcotest.(check bool) "equal ints" true (Value.equal (Value.Int 7) (Value.Int 7))

let test_value_sexp_roundtrip () =
  List.iter
    (fun v ->
      let v' = Value.of_sexp (Value.to_sexp v) in
      Alcotest.(check bool) (Value.to_string v) true (Value.equal v v'))
    [ Value.Int 0; Value.Int (-42); Value.Int max_int; Value.Str ""; Value.Str "hello world";
      Value.Str "with \"quotes\""; Value.Bool true; Value.Bool false ]

let test_tuple_compare () =
  let t1 = Tuple.of_list [ Value.Int 1; Value.Str "a" ] in
  let t2 = Tuple.of_list [ Value.Int 1; Value.Str "b" ] in
  let t3 = Tuple.of_list [ Value.Int 1 ] in
  Alcotest.(check bool) "lex order" true (Tuple.compare t1 t2 < 0);
  Alcotest.(check bool) "prefix first" true (Tuple.compare t3 t1 < 0);
  Alcotest.(check bool) "reflexive" true (Tuple.equal t1 t1)

let test_tuple_project () =
  let t = Tuple.of_list [ Value.Int 10; Value.Int 20; Value.Int 30 ] in
  let p = Tuple.project [| 2; 0 |] t in
  Alcotest.(check bool)
    "projection order" true
    (Tuple.equal p (Tuple.of_list [ Value.Int 30; Value.Int 10 ]))

let test_tuple_sexp_roundtrip () =
  let t = Tuple.of_list [ Value.Int 1; Value.Str "x y"; Value.Bool true ] in
  Alcotest.(check bool) "roundtrip" true (Tuple.equal t (Tuple.of_sexp (Tuple.to_sexp t)))

let value_gen =
  let open QCheck in
  let gen =
    Gen.oneof
      [ Gen.map Value.int Gen.small_signed_int;
        Gen.map Value.str (Gen.string_size ~gen:Gen.printable (Gen.int_range 0 6));
        Gen.map Value.bool Gen.bool;
      ]
  in
  make gen ~print:Value.to_string

let prop_compare_total_order =
  QCheck.Test.make ~name:"value compare is antisymmetric" ~count:500
    (QCheck.pair value_gen value_gen) (fun (a, b) ->
      let c1 = Value.compare a b and c2 = Value.compare b a in
      (c1 = 0 && c2 = 0) || (c1 < 0 && c2 > 0) || (c1 > 0 && c2 < 0))

let prop_hash_consistent =
  QCheck.Test.make ~name:"equal values hash equally" ~count:500 (QCheck.pair value_gen value_gen)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let prop_value_sexp =
  QCheck.Test.make ~name:"value sexp roundtrip" ~count:500 value_gen (fun v ->
      Value.equal v (Value.of_sexp (Value.to_sexp v)))

let suite =
  [ Alcotest.test_case "value ordering" `Quick test_ordering;
    Alcotest.test_case "value sexp roundtrip" `Quick test_value_sexp_roundtrip;
    Alcotest.test_case "tuple compare" `Quick test_tuple_compare;
    Alcotest.test_case "tuple project" `Quick test_tuple_project;
    Alcotest.test_case "tuple sexp roundtrip" `Quick test_tuple_sexp_roundtrip;
    QCheck_alcotest.to_alcotest prop_compare_total_order;
    QCheck_alcotest.to_alcotest prop_hash_consistent;
    QCheck_alcotest.to_alcotest prop_value_sexp;
  ]

(* Tests for the file-based WAL backend: persistence across re-opens, and
   a full engine crash/recovery cycle over a real file. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Database = Relational.Database
module Store = Relational.Store
module Wal = Relational.Wal
module Qdb = Quantum.Qdb
module Flights = Workload.Flights
module Travel = Workload.Travel

let with_temp_wal f =
  let path = Filename.temp_file "qdb_wal" ".log" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_file_backend_roundtrip () =
  with_temp_wal (fun path ->
      let backend = Wal.file_backend path in
      backend.Wal.append "line one";
      backend.Wal.append "line two";
      Alcotest.(check (list string)) "readback" [ "line one"; "line two" ] (backend.Wal.read_all ());
      (* A fresh backend over the same path sees the same contents. *)
      let backend2 = Wal.file_backend path in
      Alcotest.(check (list string)) "reopen" [ "line one"; "line two" ] (backend2.Wal.read_all ());
      backend2.Wal.reset ();
      Alcotest.(check (list string)) "reset" [] (backend.Wal.read_all ()))

let test_store_on_file () =
  with_temp_wal (fun path ->
      let schema =
        Relational.Schema.make ~name:"T"
          ~columns:[ Relational.Schema.column "a" Value.Tint ]
          ()
      in
      let store = Store.create (Wal.file_backend path) in
      ignore (Store.create_table store schema);
      ignore (Store.apply store [ Database.Insert ("T", Tuple.of_list [ Value.Int 1 ]) ]);
      ignore (Store.apply store [ Database.Insert ("T", Tuple.of_list [ Value.Int 2 ]) ]);
      ignore (Store.apply store [ Database.Delete ("T", Tuple.of_list [ Value.Int 1 ]) ]);
      (* Recover through a fresh backend over the same file. *)
      let recovered = Store.crash_and_recover (Wal.file_backend path) in
      Alcotest.(check bool) "1 gone" false (Database.mem_tuple (Store.db recovered) "T" (Tuple.of_list [ Value.Int 1 ]));
      Alcotest.(check bool) "2 present" true (Database.mem_tuple (Store.db recovered) "T" (Tuple.of_list [ Value.Int 2 ])))

let test_engine_recovery_on_file () =
  with_temp_wal (fun path ->
      let geometry = { Flights.flights = 1; rows_per_flight = 2; dest = "LA" } in
      let store = Flights.fresh_store ~backend:(Wal.file_backend path) geometry in
      let qdb = Qdb.create store in
      ignore (Qdb.submit qdb (Travel.plain_txn { Travel.name = "a"; partner = "-"; flight = 0 }));
      ignore (Qdb.submit qdb (Travel.plain_txn { Travel.name = "b"; partner = "-"; flight = 0 }));
      ignore (Qdb.ground qdb 0);
      (* Recover from the file alone. *)
      let qdb' = Qdb.recover (Wal.file_backend path) in
      Alcotest.(check int) "one pending" 1 (Qdb.pending_count qdb');
      Alcotest.(check bool) "a durable" true (Flights.booking_of (Qdb.db qdb') "a" <> None);
      ignore (Qdb.ground_all qdb');
      Alcotest.(check bool) "b booked after recovery" true
        (Flights.booking_of (Qdb.db qdb') "b" <> None))

let test_checkpoint_compaction () =
  with_temp_wal (fun path ->
      let schema =
        Relational.Schema.make ~name:"T"
          ~columns:[ Relational.Schema.column "a" Value.Tint ]
          ()
      in
      let store = Store.create (Wal.file_backend path) in
      ignore (Store.create_table store schema);
      for i = 1 to 20 do
        ignore (Store.apply store [ Database.Insert ("T", Tuple.of_list [ Value.Int i ]) ])
      done;
      Store.checkpoint store;
      ignore (Store.apply store [ Database.Insert ("T", Tuple.of_list [ Value.Int 99 ]) ]);
      let recovered = Store.crash_and_recover (Wal.file_backend path) in
      Alcotest.(check int) "all rows restored" 21
        (Relational.Table.cardinality (Database.table (Store.db recovered) "T")))

let suite =
  [ Alcotest.test_case "file backend roundtrip" `Quick test_file_backend_roundtrip;
    Alcotest.test_case "store on file" `Quick test_store_on_file;
    Alcotest.test_case "engine recovery on file" `Quick test_engine_recovery_on_file;
    Alcotest.test_case "checkpoint compaction" `Quick test_checkpoint_compaction;
  ]

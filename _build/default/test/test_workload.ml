(* Tests for the workload layer: PRNG determinism, flight geometry,
   arrival orders (Table 1's pending bounds), the IS baseline and the
   runner. *)

module Flights = Workload.Flights
module Travel = Workload.Travel
module Prng = Workload.Prng
module Runner = Workload.Runner
module Qdb = Quantum.Qdb

let geometry rows flights = { Flights.flights; rows_per_flight = rows; dest = "LA" }

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  let xs = List.init 20 (fun _ -> Prng.int a 1000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys;
  let c = Prng.create 8 in
  let zs = List.init 20 (fun _ -> Prng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_prng_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let n = Prng.int rng 7 in
    if n < 0 || n >= 7 then Alcotest.fail "out of range"
  done;
  for _ = 1 to 1000 do
    let f = Prng.float rng in
    if f < 0. || f >= 1. then Alcotest.fail "float out of range"
  done

let test_shuffle_permutes () =
  let rng = Prng.create 5 in
  let l = List.init 30 Fun.id in
  let s = Prng.shuffle_list rng l in
  Alcotest.(check (list int)) "same multiset" l (List.sort Int.compare s);
  Alcotest.(check bool) "actually shuffled" true (s <> l)

let test_geometry () =
  let g = geometry 10 1 in
  Alcotest.(check int) "seats" 30 (Flights.seats_per_flight g);
  (* 4 ordered adjacent pairs per row. *)
  Alcotest.(check int) "adjacent pairs" 40 (List.length (Flights.adjacent_pairs g));
  (* Adjacency is symmetric and within-row. *)
  List.iter
    (fun (s1, s2) ->
      Alcotest.(check bool) "symmetric" true (List.mem (s2, s1) (Flights.adjacent_pairs g));
      Alcotest.(check int) "same row" (s1 / 3) (s2 / 3))
    (Flights.adjacent_pairs g)

let test_store_population () =
  let g = geometry 4 3 in
  let store = Flights.fresh_store g in
  let db = Relational.Store.db store in
  Alcotest.(check int) "availability" 36
    (Relational.Table.cardinality (Relational.Database.table db "Available"));
  Alcotest.(check int) "flights" 3
    (Relational.Table.cardinality (Relational.Database.table db "Flights"));
  Alcotest.(check int) "per-flight availability" 12 (Flights.available_count db 1)

let max_pending_for order =
  let g = geometry 6 1 in
  let spec =
    { Runner.default_spec with geometry = g; pairs_per_flight = 6; order; seed = 11 }
  in
  let out = Runner.run (Runner.Quantum_engine Qdb.default_config) spec in
  out.Runner.max_pending

(* Table 1: Alternate leaves at most 1 pending; In Order and Reverse
   Order peak at N/2 (= number of pairs). *)
let test_table1_pending_bounds () =
  Alcotest.(check int) "Alternate max pending" 1 (max_pending_for Travel.Alternate);
  Alcotest.(check int) "In Order max pending" 6 (max_pending_for Travel.In_order);
  Alcotest.(check int) "Reverse Order max pending" 6 (max_pending_for Travel.Reverse_order);
  let random = max_pending_for Travel.Random_order in
  Alcotest.(check bool) "Random between 1 and N/2" true (random >= 1 && random <= 6)

let test_orders_preserve_users () =
  let users = Travel.make_users ~flights:2 ~pairs_per_flight:3 in
  let rng = Prng.create 1 in
  List.iter
    (fun order ->
      let ordered = Travel.order_users order rng users in
      let names l = List.sort String.compare (List.map (fun u -> u.Travel.name) l) in
      Alcotest.(check (list string))
        (Travel.order_to_string order) (names users) (names ordered))
    [ Travel.Alternate; Travel.Random_order; Travel.In_order; Travel.Reverse_order ]

let test_is_baseline_books_everyone () =
  let g = geometry 4 1 in
  let store = Flights.fresh_store g in
  let users = Travel.make_users ~flights:1 ~pairs_per_flight:6 in
  List.iter (fun u -> Alcotest.(check bool) u.Travel.name true (Travel.is_book store u)) users;
  let db = Relational.Store.db store in
  Alcotest.(check int) "all seated" 12
    (Relational.Table.cardinality (Relational.Database.table db "Bookings"));
  (* Alternate-order IS achieves full coordination. *)
  let coordinated = Travel.coordinated_users db users in
  Alcotest.(check int) "alternate IS coordinates all (bounded by rows)" 8 coordinated

let test_quantum_beats_is_on_random () =
  let spec =
    { Runner.default_spec with
      geometry = geometry 6 1;
      pairs_per_flight = 9;
      order = Travel.Random_order;
      seed = 123;
    }
  in
  let q = Runner.run (Runner.Quantum_engine Qdb.default_config) spec in
  let is = Runner.run Runner.Intelligent_social spec in
  Alcotest.(check bool) "quantum reaches max coordination" true
    (q.Runner.coordinated = q.Runner.max_possible);
  Alcotest.(check bool) "IS strictly below quantum" true (is.Runner.coordinated < q.Runner.coordinated);
  Alcotest.(check int) "same ops" q.Runner.ops is.Runner.ops

let test_reads_reduce_coordination () =
  let base =
    { Runner.default_spec with
      geometry = geometry 6 1;
      pairs_per_flight = 9;
      order = Travel.Random_order;
      seed = 7;
    }
  in
  let no_reads = Runner.run (Runner.Quantum_engine Qdb.default_config) base in
  let heavy_reads =
    Runner.run (Runner.Quantum_engine Qdb.default_config) { base with read_fraction = 0.8 }
  in
  Alcotest.(check bool) "ops grow with reads" true (heavy_reads.Runner.ops > no_reads.Runner.ops);
  Alcotest.(check bool) "coordination does not improve under reads" true
    (heavy_reads.Runner.coordination_pct <= no_reads.Runner.coordination_pct)

let suite =
  [ Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "seat geometry" `Quick test_geometry;
    Alcotest.test_case "store population" `Quick test_store_population;
    Alcotest.test_case "Table 1 pending bounds" `Quick test_table1_pending_bounds;
    Alcotest.test_case "orders preserve users" `Quick test_orders_preserve_users;
    Alcotest.test_case "IS baseline" `Quick test_is_baseline_books_everyone;
    Alcotest.test_case "quantum beats IS (random order)" `Quick test_quantum_beats_is_on_random;
    Alcotest.test_case "reads reduce coordination" `Quick test_reads_reduce_coordination;
  ]

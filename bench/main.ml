(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5), runs the ablation benches, and finishes with
   Bechamel micro-benchmarks of the engine's core operations.

   Usage:  dune exec bench/main.exe [-- --full] [-- --only fig5,fig6,...]
                                    [-- --csv results/]

   Default sizes are scaled down to finish in minutes; [--full] switches
   to the paper's sizes (and 5-run averages). *)

module Common = Harness.Common
module Experiments = Harness.Experiments
module Ablation = Harness.Ablation
module Calendar_exp = Harness.Calendar_exp
module Scaling = Harness.Scaling
module Admission = Harness.Admission

let parse_args () =
  let full = ref false in
  let only = ref [] in
  let domains = ref [ 1; 2; 4 ] in
  let args = Array.to_list Sys.argv in
  let rec go = function
    | [] -> ()
    | "--full" :: rest ->
      full := true;
      go rest
    | "--only" :: spec :: rest ->
      only := String.split_on_char ',' spec;
      go rest
    | "--csv" :: dir :: rest ->
      Common.csv_dir := Some dir;
      go rest
    | "--domains" :: spec :: rest ->
      (* "--domains 4" sweeps 1..4-ish; "--domains 1,2,4" is explicit. *)
      domains :=
        (match String.split_on_char ',' spec with
         | [ one ] ->
           let n = int_of_string one in
           List.filter (fun d -> d <= n) [ 1; 2; 4; 8 ] @ (if List.mem n [ 1; 2; 4; 8 ] then [] else [ n ])
         | many -> List.map int_of_string many);
      go rest
    | _ :: rest -> go rest
  in
  go args;
  let scale = if !full then Common.paper_scale else Common.default_scale in
  (scale, !only, !domains)

let wanted only name = only = [] || List.mem name only

(* -- Bechamel micro-benchmarks --------------------------------------------- *)

module Micro = struct
  module Value = Relational.Value
  module Rtxn = Quantum.Rtxn
  module Qdb = Quantum.Qdb
  open Logic

  (* Fixtures shared by the micro benches. *)
  let geometry = { Workload.Flights.flights = 1; rows_per_flight = 17; dest = "LA" }
  let db_fixture () = Relational.Store.db (Workload.Flights.fresh_store geometry)

  let atom_pair =
    let f = Term.V (Term.fresh_var "f") and s = Term.V (Term.fresh_var "s") in
    let f2 = Term.V (Term.fresh_var "f2") and s2 = Term.V (Term.fresh_var "s2") in
    ( Atom.make "Available" [ f; s ],
      Atom.make "Available" [ f2; Term.int 3 ] |> fun a2 ->
      (Atom.make "Available" [ f; s ], a2) |> fun _ ->
      (Atom.make "Available" [ f; s ], Atom.make "Available" [ f2; s2 ]) )

  let users = Workload.Travel.make_users ~flights:1 ~pairs_per_flight:10

  let pending_sequence =
    List.mapi
      (fun i u -> { (Rtxn.freshen (Workload.Travel.entangled_txn u)) with Rtxn.id = i })
      users

  let composed db =
    Quantum.Compose.body_of_sequence ~key_of:(Quantum.Compose.resolver_of_db db)
      pending_sequence

  (* Gauge divisor for compose/20-txn-body: top-level conjuncts of the
     composed body, so the exported figure is ns per produced clause. *)
  let compose_clause_count =
    lazy (List.length (Formula.conjuncts (composed (db_fixture ()))))

  (* Streaming candidate enumeration (the solver hot path): drain
     [Table.lookup_seq] over the full Available table in pkey order.
     [enumerate_count] is the gauge divisor — candidates per run. *)
  let enumerate_table = lazy (Relational.Database.table (db_fixture ()) "Available")
  let enumerate_count = lazy (Relational.Table.cardinality (Lazy.force enumerate_table))

  (* A prepared in-memory log for the replay bench: one schema DDL plus
     512 single-insert batches (3 records each — Begin/Op/Commit). *)
  let replay_batches = 512
  let replay_records = 1 + (3 * replay_batches)

  (* CDCL unit-propagation micro: a 4096-long implication chain solved
     under one assumption — every run pays exactly [sat_chain_len]
     propagations on a warm persistent solver, so ns/run divided by the
     chain length is the watched-literal propagation cost per literal. *)
  let sat_chain_len = 4096

  let sat_chain =
    lazy
      (let s = Sat.Cdcl.create () in
       let v = Array.init (sat_chain_len + 1) (fun _ -> Sat.Cdcl.new_var s) in
       for i = 0 to sat_chain_len - 1 do
         Sat.Cdcl.add_clause s [| -v.(i); v.(i + 1) |]
       done;
       (s, v.(0)))

  let replay_backend () =
    let module Wal = Relational.Wal in
    let backend = Wal.mem_backend () in
    let wal = Wal.create backend in
    let schema = Workload.Flights.bookings_schema in
    Wal.log wal (Wal.Create_table schema);
    for i = 0 to replay_batches - 1 do
      ignore
        (Wal.log_batch wal
           [ Relational.Database.Insert
               ( schema.Relational.Schema.name,
                 [| Relational.Value.Str (Printf.sprintf "u%d" i);
                    Relational.Value.Int 0; Relational.Value.Int i |] ) ])
    done;
    backend

  let tests () =
    let db = db_fixture () in
    let formula = composed db in
    let a1, a2 = snd atom_pair in
    let replay_log = replay_backend () in
    let open Bechamel in
    [ Test.make ~name:"unify/mgu" (Staged.stage (fun () -> Logic.Unify.mgu a1 a2));
      Test.make ~name:"unify/predicate" (Staged.stage (fun () -> Logic.Unify.predicate a1 a2));
      Test.make ~name:"compose/20-txn-body"
        (Staged.stage (fun () -> ignore (composed db)));
      Test.make ~name:"solve/20-txn-body"
        (Staged.stage (fun () -> ignore (Solver.Backtrack.solve db formula)));
      Test.make ~name:"solver/enumerate"
        (Staged.stage (fun () ->
             (* One full streamed scan in primary-key order — the
                candidate source of every solver choice point. *)
             let table = Lazy.force enumerate_table in
             ignore
               (Seq.fold_left (fun n _ -> n + 1) 0
                  (Relational.Table.lookup_seq table [| None; None |]))));
      Test.make ~name:"sat/propagate"
        (Staged.stage (fun () ->
             let s, first = Lazy.force sat_chain in
             ignore (Sat.Cdcl.solve ~assumptions:[ first ] s)));
      Test.make ~name:"wal/replay"
        (Staged.stage (fun () ->
             (* Full recovery of a 512-batch log: decode + checksum +
                sequence check + apply, per run. *)
             ignore (Relational.Wal.replay (Relational.Wal.create replay_log))));
      Test.make ~name:"admission/submit+reject-cycle"
        (Staged.stage (fun () ->
             (* One full admission check against a standing partition. *)
             let store = Workload.Flights.fresh_store geometry in
             let qdb = Qdb.create store in
             List.iter
               (fun u -> ignore (Qdb.submit qdb (Workload.Travel.plain_txn u)))
               (List.filteri (fun i _ -> i < 5) users)));
    ]

  (* Runs the benches, prints the table, and returns the per-operation
     ns/run estimates so main can export them as registry gauges. *)
  let run () =
    Common.section "Micro-benchmarks (Bechamel)";
    let open Bechamel in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let grouped = Test.make_grouped ~name:"core" (tests ()) in
    let raw = Benchmark.all cfg [ instance ] grouped in
    let analyzed = Analyze.all ols instance raw in
    let estimates =
      Hashtbl.fold
        (fun name ols acc ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> (name, est) :: acc
          | Some _ | None -> acc)
        analyzed []
    in
    let rows =
      List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f ns/run" ns ])
        (List.sort compare estimates)
    in
    Common.print_table ~header:[ "operation"; "time" ] rows;
    estimates
end

let () =
  let scale, only, domains = parse_args () in
  Printf.printf "quantum-db benchmark harness (%s scale, %d run(s) per point)\n%!"
    (if scale.Common.full then "paper" else "reduced")
    scale.Common.runs;
  if wanted only "table1" then ignore (Experiments.run_table1 scale);
  if wanted only "fig5" then ignore (Experiments.run_fig5 scale);
  if wanted only "fig6" then ignore (Experiments.run_fig6 scale);
  if wanted only "fig7" || wanted only "table2" then
    ignore (Experiments.run_fig7_and_table2 scale);
  if wanted only "fig8" || wanted only "fig9" then ignore (Experiments.run_fig89 scale);
  if wanted only "calendar" then ignore (Calendar_exp.run scale);
  if wanted only "ablation" then begin
    ignore (Ablation.run_backend_ablation scale);
    ignore (Ablation.run_serializability_ablation scale);
    ignore (Ablation.run_adaptive_ablation scale);
    ignore (Ablation.run_cache_capacity_ablation scale);
    ignore (Ablation.run_cache_stats scale);
    ignore (Ablation.run_formula_growth scale)
  end;
  (* The domain-pool scalability sweep is opt-in (--only scaling): it
     reruns the full Figure-7 sharded workload once per domain count. *)
  if List.mem "scaling" only then begin
    let r = Scaling.run ~domains_list:domains () in
    Scaling.print r;
    let dir = Option.value !Common.csv_dir ~default:"results" in
    ignore (Scaling.write ~path:(Filename.concat dir "BENCH_scaling.json") r)
  end;
  (* Rejection-path smoke, opt-in: over-capacity workload asserting the
     rejection counters, rejected-outcome spans and flight-recorder
     records all fire; Harness.Rejection.run raises on any violation. *)
  if List.mem "rejection" only then ignore (Harness.Rejection.run ());
  (* Flash-crowd contention sweep, opt-in: over-capacity ticket-sale and
     hotel-overbooking crowds driven into the 10–50% rejection regime,
     plus one squeezed-governor point exercising [Overloaded]; records
     outcome counts and the accept/reject/overload latency split. *)
  if List.mem "contention" only then begin
    let r = Harness.Contention.run () in
    Harness.Contention.print_summary r;
    let dir = Option.value !Common.csv_dir ~default:"results" in
    ignore (Harness.Contention.write ~path:(Filename.concat dir "BENCH_contention.json") r)
  end;
  (* Pending-depth sweep for the incremental-admission path, also opt-in:
     each k runs with delta composition on and off and cross-checks the
     outcomes before recording. *)
  if List.mem "admission" only then begin
    let r = Admission.run () in
    Admission.print r;
    let dir = Option.value !Common.csv_dir ~default:"results" in
    ignore (Admission.write ~path:(Filename.concat dir "BENCH_admission.json") r)
  end;
  (* SAT-backend sweep (backtracking vs from-scratch DPLL vs incremental
     CDCL), opt-in: outcome traces are cross-checked across the three
     backends before recording. *)
  if List.mem "sat" only then begin
    let r = Harness.Sat_bench.run () in
    Harness.Sat_bench.print r;
    let dir = Option.value !Common.csv_dir ~default:"results" in
    ignore (Harness.Sat_bench.write ~path:(Filename.concat dir "BENCH_sat.json") r)
  end;
  let micro_estimates = if wanted only "micro" then Micro.run () else [] in
  (* Telemetry export: every quantum run above merged its engine metrics
     into the workload runner's sink; snapshot it — plus any micro-bench
     estimates as gauges — into metrics.json next to the CSVs. *)
  let registry = Quantum.Metrics.snapshot Workload.Runner.metrics_sink in
  List.iter
    (fun (name, ns) ->
      Obs.Registry.set_gauge registry ("bench.micro." ^ name ^ ".ns_per_run") ns;
      if name = "core/wal/replay" then
        Obs.Registry.set_gauge registry "bench.micro.wal.replay.ns_per_record"
          (ns /. float_of_int Micro.replay_records);
      if name = "core/solver/enumerate" then
        Obs.Registry.set_gauge registry "bench.micro.solver.enumerate.ns_per_candidate"
          (ns /. float_of_int (Lazy.force Micro.enumerate_count));
      if name = "core/compose/20-txn-body" then
        Obs.Registry.set_gauge registry "bench.micro.compose.ns_per_clause"
          (ns /. float_of_int (Lazy.force Micro.compose_clause_count));
      if name = "core/sat/propagate" then
        Obs.Registry.set_gauge registry "bench.micro.sat.propagate.ns_per_literal"
          (ns /. float_of_int Micro.sat_chain_len))
    micro_estimates;
  ignore (Common.write_metrics registry);
  Printf.printf "\nAll benches complete.\n"

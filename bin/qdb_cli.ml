(* Command-line driver for the quantum database.

   Subcommands:
     exp    — regenerate one paper table/figure, the ablations, or 'all'
     demo   — the Mickey/Goofy walkthrough on a tiny flight
     shell  — interactive session: submit resource transactions in the
              Datalog-like notation, read/peek, inspect read impact,
              ground, print tables
     stats  — run a travel workload and print the engine's telemetry
              registry (pretty, prometheus or json); with --wal FILE,
              recover from that log instead and print the registry with
              the wal.recovery.* gauges; --top-slow N appends the N
              slowest admissions from the flight recorder
     profile — run a travel workload with the flight recorder on and
              print where admission time went: per-phase totals, the
              slowest per-admission records, and (with --slow-ms) the
              record + span dump of each admission over the threshold
     crashmonkey — deterministic crash/recover cycles with fault
              injection; exits 1 on any recovery-invariant violation;
              --domains N runs each cycle's refill fan-out on a pool;
              --actors N routes every engine call through an owning
              actor on a spawned domain
     scaling — the Figure-7 sweep: the same seeded workload at each
              --domains count, asserting identical outcomes, writing the
              BENCH_scaling.json series (schema v3: per-phase breakdown,
              actor busy time, parallelism efficiency, contended
              companion points); --mode actor (default, shared-nothing
              partition owners) or pool (legacy orchestrated sharding)
     bench diff — compare a fresh bench recording against a committed
              baseline and exit non-zero past the --gate threshold; the
              one regression comparator scripts/ci.sh calls for both the
              admission and the scaling gates
   Every non-interactive subcommand takes --trace FILE to capture a
   Chrome trace_event JSON of the engine's spans.
   (micro-benchmarks live in bench/main.exe) *)

module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn
module Flights = Workload.Flights
module Travel = Workload.Travel
module Common = Harness.Common
module Experiments = Harness.Experiments
module Ablation = Harness.Ablation

open Cmdliner

(* -- tracing ------------------------------------------------------------------ *)

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record engine trace events and write them to $(docv) as Chrome \
                 trace_event JSON (loadable in chrome://tracing or Perfetto).")

let with_trace file f =
  match file with
  | None -> f ()
  | Some path ->
    (* Fail before the run, not after: a --full experiment shouldn't spend
       minutes only to lose its trace to an unwritable path. *)
    (try close_out (open_out path)
     with Sys_error msg ->
       Printf.eprintf "qdb: cannot write trace file: %s\n" msg;
       exit 1);
    Obs.Trace.enable ();
    Fun.protect f ~finally:(fun () ->
        Obs.Export.write_chrome_trace path (Obs.Trace.events ());
        Printf.printf "(trace written to %s: %d event(s), %d overwritten)\n%!" path
          (Obs.Trace.recorded ()) (Obs.Trace.dropped ());
        Obs.Trace.disable ())

(* -- exp --------------------------------------------------------------------- *)

let full_flag =
  Arg.(value & flag & info [ "full" ] ~doc:"Use the paper's full experiment sizes.")

let exp_names = [ "table1"; "fig5"; "fig6"; "fig7"; "table2"; "fig8"; "fig9"; "calendar"; "ablation"; "all" ]

let exp_arg =
  let doc =
    Printf.sprintf "Experiment to run: %s." (String.concat ", " exp_names)
  in
  Arg.(required & pos 0 (some (enum (List.map (fun n -> (n, n)) exp_names))) None
       & info [] ~docv:"EXPERIMENT" ~doc)

let run_exp name full trace =
  with_trace trace @@ fun () ->
  let scale = if full then Common.paper_scale else Common.default_scale in
  let pick wanted = name = "all" || name = wanted in
  if pick "table1" then ignore (Experiments.run_table1 scale);
  if pick "fig5" then ignore (Experiments.run_fig5 scale);
  if pick "fig6" then ignore (Experiments.run_fig6 scale);
  if pick "fig7" || pick "table2" then ignore (Experiments.run_fig7_and_table2 scale);
  if pick "fig8" || pick "fig9" then ignore (Experiments.run_fig89 scale);
  if pick "calendar" then ignore (Harness.Calendar_exp.run scale);
  if pick "ablation" then begin
    ignore (Ablation.run_backend_ablation scale);
    ignore (Ablation.run_serializability_ablation scale);
    ignore (Ablation.run_adaptive_ablation scale);
    ignore (Ablation.run_cache_capacity_ablation scale);
    ignore (Ablation.run_cache_stats scale);
    ignore (Ablation.run_formula_growth scale)
  end

let exp_cmd =
  let doc = "Regenerate a table or figure of the paper's evaluation." in
  Cmd.v (Cmd.info "exp" ~doc) Term.(const run_exp $ exp_arg $ full_flag $ trace_arg)

(* -- demo --------------------------------------------------------------------- *)

let run_demo trace =
  with_trace trace @@ fun () ->
  let geometry = { Flights.flights = 1; rows_per_flight = 2; dest = "LA" } in
  let store = Flights.fresh_store geometry in
  let qdb = Qdb.create store in
  print_endline "A flight to LA with two rows of three seats (0,1,2 / 3,4,5).";
  print_endline "";
  print_endline "Mickey books any seat, OPTIONALLY next to Goofy (who has not arrived):";
  let mickey = { Travel.name = "Mickey"; partner = "Goofy"; flight = 0 } in
  (match Qdb.submit qdb (Travel.entangled_txn mickey) with
   | Qdb.Committed id ->
     Printf.printf "  -> committed (id %d), seat NOT yet assigned (quantum state)\n" id
   | Qdb.Rejected r | Qdb.Overloaded r -> Printf.printf "  -> rejected: %s\n" r);
  Printf.printf "  pending transactions: %d; Bookings table rows: %d\n"
    (Qdb.pending_count qdb)
    (Relational.Table.cardinality (Relational.Database.table (Qdb.db qdb) "Bookings"));
  print_endline "";
  print_endline "Donald books a specific seat (seat 1):";
  let donald =
    Quantum.Datalog_parser.parse_txn ~label:"Donald"
      {|-Available(f, s), +Bookings("Donald", f, s) :-1 Available(f, s), f = 0, s = 1|}
  in
  (match Qdb.submit qdb donald with
   | Qdb.Committed _ -> print_endline "  -> committed; Mickey's options narrowed, nothing visible"
   | Qdb.Rejected r | Qdb.Overloaded r -> Printf.printf "  -> rejected: %s\n" r);
  print_endline "";
  print_endline "Goofy arrives; he wants to sit next to Mickey:";
  let goofy = { Travel.name = "Goofy"; partner = "Mickey"; flight = 0 } in
  (match Qdb.submit qdb (Travel.entangled_txn goofy) with
   | Qdb.Committed _ ->
     print_endline "  -> committed; the entangled pair grounds immediately"
   | Qdb.Rejected r | Qdb.Overloaded r -> Printf.printf "  -> rejected: %s\n" r);
  print_endline "";
  print_endline "Mickey checks in (a read — collapses any remaining uncertainty):";
  let answers = Qdb.read qdb (Travel.seat_query mickey) in
  List.iter (fun t -> Printf.printf "  Mickey's (flight, seat): %s\n" (Relational.Tuple.to_string t)) answers;
  (match Flights.booking_of (Qdb.db qdb) "Mickey", Flights.booking_of (Qdb.db qdb) "Goofy" with
   | Some (_, sm), Some (_, sg) ->
     Printf.printf "  Mickey seat %d, Goofy seat %d — adjacent: %b\n" sm sg
       (Flights.seats_adjacent (Qdb.db qdb) sm sg)
   | _ -> ());
  ignore (Qdb.ground_all qdb);
  print_endline "";
  print_endline "Final bookings:";
  Format.printf "%a@." Relational.Table.pp (Relational.Database.table (Qdb.db qdb) "Bookings")

let demo_cmd =
  let doc = "Walk through the paper's Mickey/Goofy scenario." in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run_demo $ trace_arg)

(* -- stats -------------------------------------------------------------------- *)

(* Drive a travel workload against one engine instance, then print its
   telemetry registry (counters, latency histograms, live gauges, WAL
   counters) in the chosen format.  With --trace, the same run also yields
   a Chrome trace of every span the engine emitted. *)

let pp_registry registry =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, value) ->
      match value with
      | Obs.Registry.Counter n -> Buffer.add_string b (Printf.sprintf "%-28s %d\n" name n)
      | Obs.Registry.Gauge g -> Buffer.add_string b (Printf.sprintf "%-28s %g\n" name g)
      | Obs.Registry.Histogram h ->
        let module H = Obs.Histogram in
        if H.count h = 0 then Buffer.add_string b (Printf.sprintf "%-28s (empty)\n" name)
        else
          Buffer.add_string b
            (Printf.sprintf
               "%-28s count=%d p50=%.1fus p90=%.1fus p99=%.1fus p999=%.1fus max=%.1fus\n"
               name (H.count h)
               (H.quantile h 0.5 *. 1e6) (H.quantile h 0.9 *. 1e6)
               (H.quantile h 0.99 *. 1e6) (H.quantile h 0.999 *. 1e6)
               (H.max_value h *. 1e6)))
    (Obs.Registry.items registry);
  print_string (Buffer.contents b)

(* With --wal, skip the synthetic workload: recover an engine from the
   given log file (leniently — damaged tails are truncated, not fatal)
   and print its registry, which then carries the wal.recovery.* gauges
   alongside a human-readable recovery line. *)
let run_stats_wal format path =
  let backend = Relational.Wal.file_backend path in
  let qdb = Qdb.recover backend in
  let registry = Qdb.registry qdb in
  (match format with
   | `Pretty ->
     Printf.printf "recovered from %s:\n" path;
     (match Qdb.recovery_report qdb with
      | Some report -> Printf.printf "  %s\n\n" (Relational.Wal.report_to_string report)
      | None -> print_newline ());
     pp_registry registry
   | `Prometheus -> print_string (Obs.Export.prometheus registry)
   | `Json -> print_endline (Obs.Export.json_snapshot_string registry))

(* The shared workload driver for stats/profile: one engine, the op
   stream sized to seat capacity as in Figures 5/6 (2 users per pair,
   3 seats per row). *)
let run_travel_workload ~flights ~rows ~read_fraction =
  let geometry = { Flights.flights; rows_per_flight = rows; dest = "LA" } in
  let spec =
    { Workload.Runner.default_spec with
      geometry;
      read_fraction;
      order = Travel.Random_order;
      pairs_per_flight = 3 * rows / 2;
    }
  in
  let store = Flights.fresh_store geometry in
  let qdb = Qdb.create store in
  let rng = Workload.Prng.create spec.Workload.Runner.seed in
  let ops, _ = Workload.Runner.build_ops spec rng in
  List.iter
    (fun op ->
      match op with
      | Workload.Runner.Book u -> ignore (Qdb.submit qdb (Travel.entangled_txn u))
      | Workload.Runner.Read_seat u -> ignore (Qdb.read qdb (Travel.seat_query u)))
    ops;
  ignore (Qdb.ground_all qdb);
  (qdb, List.length ops)

(* -- flight-recorder reporting (shared by stats --top-slow and profile) ------- *)

module Flight = Obs.Flight

let us ns = float_of_int ns /. 1e3

(* The per-record "coord" column: everything around the admission pipeline
   proper — queue wait, snapshot freeze, worker-side residue, merge and
   install time charged while the admission was open on its domain. *)
let coordination_ns (r : Flight.record) =
  List.fold_left
    (fun acc ph -> acc + Flight.record_phase_ns r ph)
    0
    [ Flight.Queue; Flight.Freeze; Flight.Compute; Flight.Merge; Flight.Install;
      Flight.Coordination ]

let print_top_slow n =
  match Flight.top_slow n with
  | [] -> print_endline "(flight recorder: no admission records)"
  | records ->
    Common.subsection
      (Printf.sprintf "%d slowest admission(s), per-phase self time in us"
         (List.length records));
    let rows =
      List.map
        (fun (r : Flight.record) ->
          let p ph = Common.f1 (us (Flight.record_phase_ns r ph)) in
          [ string_of_int r.Flight.seq;
            string_of_int r.Flight.txn_id;
            r.Flight.label;
            r.Flight.outcome;
            Common.f1 (us r.Flight.total_ns);
            p Flight.Compose;
            p Flight.Cache;
            p Flight.Solve;
            p Flight.Wal;
            p Flight.Ground;
            Common.f1 (us (coordination_ns r));
            string_of_int r.Flight.solver_nodes;
            string_of_int r.Flight.chunks_reused;
          ])
        records
    in
    Common.print_table
      ~header:
        [ "seq"; "txn"; "label"; "outcome"; "total"; "compose"; "cache"; "solve"; "wal";
          "ground"; "coord"; "nodes"; "reused" ]
      rows

let run_stats format trace flights rows read_fraction wal top_slow =
  match wal with
  | Some path -> run_stats_wal format path
  | None ->
  with_trace trace @@ fun () ->
  let recorder_was_on = Flight.on () in
  if top_slow > 0 && not recorder_was_on then Flight.enable ();
  Fun.protect
    ~finally:(fun () -> if top_slow > 0 && not recorder_was_on then Flight.disable ())
  @@ fun () ->
  let qdb, ops = run_travel_workload ~flights ~rows ~read_fraction in
  let registry = Qdb.registry qdb in
  (match format with
   | `Pretty ->
     Printf.printf "telemetry after %d operation(s) on %d flight(s) x %d seats:\n\n"
       ops flights (3 * rows);
     pp_registry registry
   | `Prometheus -> print_string (Obs.Export.prometheus registry)
   | `Json -> print_endline (Obs.Export.json_snapshot_string registry));
  if top_slow > 0 then begin
    print_newline ();
    print_top_slow top_slow
  end

let stats_cmd =
  let doc = "Run a travel workload and print the engine's telemetry registry." in
  let format_arg =
    let formats = [ ("pretty", `Pretty); ("prometheus", `Prometheus); ("json", `Json) ] in
    Arg.(value & opt (enum formats) `Pretty
         & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: pretty, prometheus or json.")
  in
  let read_fraction_arg =
    Arg.(value & opt float 0.2
         & info [ "read-fraction" ] ~doc:"Fraction of the op stream that is reads.")
  in
  let rows_arg = Arg.(value & opt int 17 & info [ "rows" ] ~doc:"Seat rows per flight.") in
  let flights_arg = Arg.(value & opt int 2 & info [ "flights" ] ~doc:"Number of flights.") in
  let wal_arg =
    Arg.(value & opt (some string) None
         & info [ "wal" ] ~docv:"FILE"
             ~doc:"Instead of running a workload, recover from the WAL at $(docv) \
                   (lenient replay) and print the registry, including the \
                   wal.recovery.* gauges.")
  in
  let top_slow_arg =
    Arg.(value & opt int 0
         & info [ "top-slow" ] ~docv:"N"
             ~doc:"Also run the flight recorder and append the $(docv) slowest \
                   admissions with their per-phase time split.")
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run_stats $ format_arg $ trace_arg $ flights_arg $ rows_arg
          $ read_fraction_arg $ wal_arg $ top_slow_arg)

(* -- profile ------------------------------------------------------------------- *)

(* Where did admission time go?  The stats workload under the flight
   recorder: per-phase totals against wall time, the slowest per-admission
   records, and — past --slow-ms — each slow admission's record with the
   trace spans of its window (spans need --trace too). *)

let print_phase_totals ~wall_s =
  Common.subsection "process-wide phase totals (exclusive self time)";
  let rows =
    List.filter_map
      (fun (ph, ns) ->
        if ns = 0 then None
        else
          Some
            [ Flight.phase_name ph;
              Printf.sprintf "%.4f" (float_of_int ns *. 1e-9);
              (if wall_s > 0. then Common.f1 (100. *. float_of_int ns *. 1e-9 /. wall_s)
               else "-");
            ])
      (Flight.totals ())
  in
  Common.print_table ~header:[ "phase"; "seconds"; "% of wall" ] rows;
  let attributed = float_of_int (Flight.total_attributed_ns ()) *. 1e-9 in
  Printf.printf "attributed %.3fs of %.3fs wall (%.1f%%)\n%!" attributed wall_s
    (if wall_s > 0. then 100. *. attributed /. wall_s else 0.)

let print_slow_dumps () =
  match Flight.slow_dumps () with
  | [] -> ()
  | dumps ->
    print_newline ();
    Common.subsection (Printf.sprintf "%d slow-admission dump(s)" (List.length dumps));
    List.iter
      (fun ((r : Flight.record), events) ->
        Printf.printf "txn %d (%s, %s): %.1fus total, %d solver node(s), %d span(s) in window\n"
          r.Flight.txn_id r.Flight.label r.Flight.outcome (us r.Flight.total_ns)
          r.Flight.solver_nodes (List.length events);
        List.iter
          (fun (e : Obs.Trace.event) ->
            Printf.printf "    %-28s %.1fus\n" e.Obs.Trace.name
              (Int64.to_float e.Obs.Trace.dur_ns /. 1e3))
          events)
      dumps

let run_profile trace flights rows read_fraction top slow_ms =
  with_trace trace @@ fun () ->
  let slow_threshold_ns =
    match slow_ms with
    | None -> Int64.max_int
    | Some ms -> Int64.of_float (ms *. 1e6)
  in
  Flight.enable ~slow_threshold_ns ();
  Fun.protect ~finally:(fun () -> Flight.disable ()) @@ fun () ->
  let t0 = Obs.Mclock.now_ns () in
  let _qdb, ops = run_travel_workload ~flights ~rows ~read_fraction in
  let wall_s = Obs.Mclock.elapsed_s t0 in
  Common.section
    (Printf.sprintf "admission profile: %d operation(s) on %d flight(s) x %d seats, %.3fs wall"
       ops flights (3 * rows) wall_s);
  print_phase_totals ~wall_s;
  print_newline ();
  print_top_slow top;
  Printf.printf "(%d admission(s) recorded, %d overwritten in the %d-record ring)\n%!"
    (Flight.recorded ()) (Flight.dropped ()) (Flight.capacity ());
  print_slow_dumps ()

let profile_cmd =
  let doc =
    "Run a travel workload under the flight recorder and print where admission time went."
  in
  let read_fraction_arg =
    Arg.(value & opt float 0.2
         & info [ "read-fraction" ] ~doc:"Fraction of the op stream that is reads.")
  in
  let rows_arg = Arg.(value & opt int 17 & info [ "rows" ] ~doc:"Seat rows per flight.") in
  let flights_arg = Arg.(value & opt int 2 & info [ "flights" ] ~doc:"Number of flights.") in
  let top_arg =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N" ~doc:"How many of the slowest admissions to print.")
  in
  let slow_ms_arg =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Dump the record and trace-span window of every admission slower \
                   than $(docv) milliseconds (combine with --trace for spans).")
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run_profile $ trace_arg $ flights_arg $ rows_arg $ read_fraction_arg
          $ top_arg $ slow_ms_arg)

(* -- crashmonkey --------------------------------------------------------------- *)

(* Deterministic crash/recover torture: every cycle crashes a live engine
   at a PRNG-chosen WAL append with a PRNG-chosen damage mode, recovers,
   and checks the recovery contract.  Exit 1 on any violation, so CI can
   gate on it. *)

let run_crashmonkey cycles seed domains actors server =
  if server then begin
    (* Server mode: live TCP sessions into a group-commit engine whose
       WAL rides a volatile page cache, crashes armed at PRNG-chosen
       sync boundaries — every acked admission must survive replay. *)
    let s = Workload.Crash_monkey.run_server ~cycles ~seed ~domains () in
    Format.printf "crash monkey, server mode (seed %d, %d domain(s)):@.%a@." seed
      (max 1 domains) Workload.Crash_monkey.pp_server s;
    match s.Workload.Crash_monkey.srv_violations with
    | [] -> ()
    | violations ->
      List.iter
        (fun (cycle, what) -> Printf.eprintf "violation in cycle %d: %s\n" cycle what)
        violations;
      exit 1
  end
  else begin
    let pool = if domains > 1 then Some (Par.Pool.create ~domains ()) else None in
    let actors = if actors > 0 then Some actors else None in
    let s =
      Fun.protect
        ~finally:(fun () -> Option.iter Par.Pool.shutdown pool)
        (fun () -> Workload.Crash_monkey.run ~cycles ~seed ?pool ?actors ())
    in
    Format.printf "crash monkey (seed %d, %d domain(s)%s):@.%a@." seed (max 1 domains)
      (match actors with
       | Some n -> Printf.sprintf ", actor-routed x%d" n
       | None -> "")
      Workload.Crash_monkey.pp s;
    match s.Workload.Crash_monkey.violations with
    | [] -> ()
    | violations ->
      List.iter
        (fun (cycle, what) -> Printf.eprintf "violation in cycle %d: %s\n" cycle what)
        violations;
      exit 1
  end

let crashmonkey_cmd =
  let doc =
    "Run deterministic crash/recover cycles with fault injection and check the \
     recovery invariants."
  in
  let cycles_arg =
    Arg.(value & opt int 200
         & info [ "cycles" ] ~docv:"N" ~doc:"Number of crash/recover cycles.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let domains_arg =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Run each cycle's engine over an $(docv)-domain pool (cache \
                   capacity 3, so the parallel refill fan-out fires every \
                   commit) — the recovery contract must hold regardless.")
  in
  let actors_arg =
    Arg.(value & opt int 0
         & info [ "actors" ] ~docv:"N"
             ~doc:"Route every post-fixture engine call through an owning actor \
                   on a real spawned domain (unclamped $(docv)-actor runtime) — \
                   the injected crash must propagate across the domain boundary \
                   and the recovery contract must hold regardless.")
  in
  let server_arg =
    Arg.(value & flag
         & info [ "server" ]
             ~doc:"Crash the network front door instead: TCP sessions admit through \
                   the group-commit queue over a volatile write buffer, the crash \
                   arms at a PRNG-chosen sync, and recovery must show every acked \
                   admission durable (un-acked may vanish, never half-apply).")
  in
  Cmd.v (Cmd.info "crashmonkey" ~doc)
    Term.(const run_crashmonkey $ cycles_arg $ seed_arg $ domains_arg $ actors_arg
          $ server_arg)

(* -- chaos --------------------------------------------------------------------- *)

(* Engine-wide chaos: every cycle injects solver-budget exhaustion
   (squeezed governors) and pool-worker crashes mid-fan-out, runs at 1, 2
   and 4 domains, and checks the survival contract — faults absorbed,
   bit-identical outcomes, squeezed rejections genuine, [Overloaded]
   side-effect-free.  Exit 1 on any violation, so CI can gate on it. *)

let run_chaos cycles seed =
  let s = Workload.Chaos.run ~cycles ~seed () in
  Format.printf "chaos (seed %d):@.%a@." seed Workload.Chaos.pp s;
  match s.Workload.Chaos.violations with
  | [] -> ()
  | violations ->
    List.iter
      (fun (cycle, what) -> Printf.eprintf "violation in cycle %d: %s\n" cycle what)
      violations;
    exit 1

let chaos_cmd =
  let doc =
    "Run deterministic engine-wide chaos cycles (budget exhaustion, worker crashes) and \
     check the survival and determinism invariants."
  in
  let cycles_arg =
    Arg.(value & opt int 100
         & info [ "cycles" ] ~docv:"N"
             ~doc:"Number of chaos cycles (each runs at 1, 2 and 4 domains).")
  in
  let seed_arg =
    Arg.(value & opt int 1234 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  Cmd.v (Cmd.info "chaos" ~doc) Term.(const run_chaos $ cycles_arg $ seed_arg)

(* -- scaling ------------------------------------------------------------------- *)

let run_scaling trace mode repeats domains flights rows pairs seed out =
  with_trace trace @@ fun () ->
  let r =
    Harness.Scaling.run ~mode ~repeats ~domains_list:domains ~flights ~rows ~pairs ~seed ()
  in
  Harness.Scaling.print r;
  ignore (Harness.Scaling.write ~path:out r)

let scaling_cmd =
  let doc =
    "Run the Figure-7 workload once per domain count, check the admission \
     outcomes are identical, and write the scaling series as JSON."
  in
  let mode_arg =
    let modes =
      Arg.enum [ ("actor", Harness.Scaling.Actor); ("pool", Harness.Scaling.Pool) ]
    in
    Arg.(value & opt modes Harness.Scaling.Actor
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"Execution mode: $(b,actor) (default) runs shared-nothing \
                   partition owners — one long-lived domain per live actor, \
                   clamped to the host's parallelism; $(b,pool) runs the legacy \
                   orchestrated sharding for comparison.")
  in
  let repeats_arg =
    Arg.(value & opt int 1
         & info [ "repeats" ] ~docv:"N"
             ~doc:"Run each point $(docv) times and keep the fastest (outcome \
                   counts are deterministic; only the clock varies).")
  in
  let domains_arg =
    Arg.(value & opt (list int) [ 1; 2; 4 ]
         & info [ "domains" ] ~docv:"N,N,..." ~doc:"Domain counts to sweep.")
  in
  let flights_arg =
    Arg.(value & opt int 10 & info [ "flights" ] ~doc:"Number of flights (shards).")
  in
  let rows_arg =
    Arg.(value & opt int 50 & info [ "rows" ] ~doc:"Seat rows per flight (3 seats each).")
  in
  let pairs_arg =
    Arg.(value & opt int 75 & info [ "pairs" ] ~doc:"User pairs per flight.")
  in
  let seed_arg =
    Arg.(value & opt int 1000 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let out_arg =
    Arg.(value & opt string "results/BENCH_scaling.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON series.")
  in
  Cmd.v (Cmd.info "scaling" ~doc)
    Term.(const run_scaling $ trace_arg $ mode_arg $ repeats_arg $ domains_arg
          $ flights_arg $ rows_arg $ pairs_arg $ seed_arg $ out_arg)

(* -- serve / load --------------------------------------------------------------- *)

(* The network front door as a process: [serve] owns a store and the
   engine; [load] is the open-loop generator pointed at it from any
   other process.  Both default to the same 4x400 load shape so a bare
   `qdb_cli serve` and a bare `qdb_cli load` agree on the flight bands
   the sessions book into. *)

let run_serve host port sessions requests domains wal duration =
  let geometry = Harness.Server.geometry_for ~sessions ~requests_per_session:requests in
  let backend = Option.map Relational.Wal.file_backend wal in
  let store = Workload.Flights.fresh_store ?backend geometry in
  let config = { Net.Server.default_config with Net.Server.domains } in
  let server = Net.Server.start ~config ~store (Net.Server.Tcp (host, port)) in
  (match Net.Server.address server with
   | Net.Server.Tcp (h, p) ->
     Printf.printf "qdb server listening on %s:%d (%d flights, %d domain(s), wal: %s)\n%!" h p
       geometry.Workload.Flights.flights domains
       (Option.value ~default:"in-memory" wal)
   | Net.Server.Unix_sock p -> Printf.printf "qdb server listening on %s\n%!" p);
  let interrupted = Atomic.make false in
  let previous =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set interrupted true))
  in
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) duration in
  let expired () =
    match deadline with Some d -> Unix.gettimeofday () >= d | None -> false
  in
  while
    (not (Atomic.get interrupted))
    && (not (expired ()))
    && Net.Server.failure server = None
  do
    Unix.sleepf 0.1
  done;
  Sys.set_signal Sys.sigint previous;
  Net.Server.stop server;
  let gc = Net.Server.group_commit server in
  Printf.printf "server stopped: %d group-commit batches, %d acked, mean batch %.2f\n%!"
    (Net.Group_commit.batches gc)
    (Net.Group_commit.acked_durable gc)
    (Net.Group_commit.mean_batch_size gc);
  match Net.Server.failure server with
  | Some exn ->
    Printf.eprintf "engine failure: %s\n%!" (Printexc.to_string exn);
    exit 1
  | None -> ()

let sessions_arg =
  Arg.(value & opt int 4
       & info [ "sessions" ] ~docv:"N" ~doc:"Concurrent sessions the load shape plans for.")

let requests_arg =
  Arg.(value & opt int 400
       & info [ "requests" ] ~docv:"N" ~doc:"Requests per session the load shape plans for.")

let serve_cmd =
  let doc =
    "Run the network front door: accept connections, admit transactions through the \
     group-commit queue, until Ctrl-C, $(b,--duration), or an engine failure."
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Bind address.")
  in
  let port_arg =
    Arg.(value & opt int 7790 & info [ "port" ] ~docv:"PORT" ~doc:"Bind port (0 picks one).")
  in
  let domains_arg =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Engine domain-pool size.")
  in
  let wal_arg =
    Arg.(value & opt (some string) None
         & info [ "wal" ] ~docv:"FILE"
             ~doc:"Write-ahead log file (real fsyncs); in-memory when absent.")
  in
  let duration_arg =
    Arg.(value & opt (some float) None
         & info [ "duration" ] ~docv:"SECONDS" ~doc:"Stop gracefully after $(docv).")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run_serve $ host_arg $ port_arg $ sessions_arg $ requests_arg $ domains_arg
          $ wal_arg $ duration_arg)

let run_load host port sessions requests hz seed =
  let stats =
    Harness.Server.load ~host ~port ~sessions ~requests_per_session:requests ~target_hz:hz
      ~seed
  in
  Harness.Server.print_load stats;
  if stats.Harness.Server.l_errors > 0 then exit 1

let load_cmd =
  let doc =
    "Drive a running server with the open-loop generator (target-rate arrivals) and \
     report client-side admission latency; exits 1 on any error response."
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server address.")
  in
  let port_arg =
    Arg.(value & opt int 7790 & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let hz_arg =
    Arg.(value & opt float 800. & info [ "hz" ] ~docv:"HZ" ~doc:"Per-session arrival rate.")
  in
  let seed_arg =
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(const run_load $ host_arg $ port_arg $ sessions_arg $ requests_arg $ hz_arg
          $ seed_arg)

(* -- bench diff ---------------------------------------------------------------- *)

(* The one regression comparator.  scripts/ci.sh used to carry two
   copy-pasted inline gates (admission and scaling); both now call

     qdb_cli bench diff BASELINE CURRENT --gate PCT

   which checks, shared across schemas: same schema string, identical
   workload object, current recording deterministic.  Then per schema:

     qdb.bench.admission/v1 — the k=20 incremental/from-scratch cost
       ratio must not exceed the baseline's by more than PCT percent,
       and the k=20 incremental speedup must stay >= 2x;
     qdb.bench.scaling/v2 — the 1-domain ns/admission must not exceed
       the baseline's by more than PCT percent, and every point must
       carry a phases_s breakdown attributing >= 95% of its wall time;
     qdb.bench.scaling/v3 — the same 1-domain cost ratio, plus the
       actor-mode no-slowdown gate: speedup_vs_1 >= 0.9 at every point
       (multicore wins are gravy; going *slower* with more domains — the
       old pool pathology — fails), queue_wait < 5% of wall, per-phase
       attribution >= 95% of measured actor busy time, and the contended
       companion series must show real rejections and real Overloaded
       outcomes;
     qdb.bench.server/v1 — admission outcome counts pinned exactly to
       the baseline's (the load is seeded and per-flight-deterministic),
       zero error responses, mean group-commit batch size > 1 (the
       queue must actually group), accept/reject p50/p99/p999 splits
       present, and the accept-p99 admission latency must not exceed
       the baseline's by more than PCT percent;
     qdb.bench.sat/v1 — cdcl ns/admission at k=40 and k=160 must not
       exceed the baseline's by more than PCT percent, the incremental
       CDCL session must stay >= 3x over from-scratch DPLL at k=40, and
       at k=160 it must solve natively (zero fallbacks, real conflicts)
       while eager DPLL shows encode-budget fallbacks.

   Exits 1 with a FAIL line on any violation, 0 with OK lines otherwise. *)

module Json = Obs.Json

let bench_fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "FAIL: %s\n%!" msg;
      exit 1)
    fmt

let bench_load label path =
  let text =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> bench_fail "%s: %s" label msg
  in
  try Json.of_string text with Json.Parse_error msg -> bench_fail "%s (%s): %s" label path msg

let jstr label name j =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> s
  | None -> bench_fail "%s: missing string field %S" label name

let jnum label name j =
  match Option.bind (Json.member name j) Json.to_number with
  | Some x -> x
  | None -> bench_fail "%s: missing numeric field %S" label name

let jseries label j =
  match Json.member "series" j with
  | Some (Json.List points) -> points
  | _ -> bench_fail "%s: missing \"series\" array" label

(* Admission v1: cost of the k-th admission, incremental over from-scratch. *)
let admission_rel_cost label ~k j =
  let find mode =
    List.find_opt
      (fun p ->
        Option.bind (Json.member "k" p) Json.to_number = Some (float_of_int k)
        && Option.bind (Json.member "mode" p) Json.to_str = Some mode)
      (jseries label j)
  in
  match find "incremental", find "from-scratch" with
  | Some inc, Some scratch ->
    let ni = jnum label "ns_per_admission" inc in
    let ns = jnum label "ns_per_admission" scratch in
    if ns <= 0. then bench_fail "%s: from-scratch ns_per_admission is %g at k=%d" label ns k;
    ni /. ns
  | _ -> bench_fail "%s: no k=%d incremental/from-scratch point pair" label k

let admission_speedup label ~k j =
  let points =
    match Json.member "speedup_vs_scratch" j with
    | Some (Json.List l) -> l
    | _ -> bench_fail "%s: missing \"speedup_vs_scratch\" array" label
  in
  match
    List.find_opt
      (fun p -> Option.bind (Json.member "k" p) Json.to_number = Some (float_of_int k))
      points
  with
  | Some p -> jnum label "x" p
  | None -> bench_fail "%s: no k=%d speedup point" label k

(* Scaling v2: ns/admission of the 1-domain point. *)
let scaling_base_cost label j =
  match
    List.find_opt
      (fun p -> Option.bind (Json.member "domains" p) Json.to_number = Some 1.)
      (jseries label j)
  with
  | Some p -> jnum label "ns_per_admission" p
  | None -> bench_fail "%s: no 1-domain point" label

let scaling_check_phases label j =
  List.iter
    (fun p ->
      let domains = int_of_float (jnum label "domains" p) in
      let phases =
        match Json.member "phases_s" p with
        | Some (Json.Obj fields) -> fields
        | _ -> bench_fail "%s: %d-domain point has no \"phases_s\" breakdown" label domains
      in
      List.iter
        (fun bucket ->
          if not (List.mem_assoc bucket phases) then
            bench_fail "%s: %d-domain phases_s lacks %S" label domains bucket)
        [ "queue_wait"; "freeze"; "compute"; "merge"; "install"; "wal" ];
      let attributed = jnum label "attributed_pct" p in
      if attributed < 95. then
        bench_fail "%s: %d-domain point attributes only %.1f%% of wall time (floor: 95%%)"
          label domains attributed)
    (jseries label j)

(* Scaling v3: the actor-mode gates.  [attributed_pct]'s denominator is
   measured busy time (actor mode) or wall x domains (pool mode), so the
   95% floor is meaningful at every domain count — the fix for the old
   615%/694% wall-basis readings.  The no-slowdown gate encodes the
   1-core honesty rule: with the hardware clamp, extra requested domains
   must cost nothing (speedup ~1.0), and on multicore they must win; a
   small tolerance absorbs clock noise. *)
let scaling_v3_check label j =
  let actor_mode =
    match Option.bind (Json.member "mode" j) Json.to_str with
    | Some "actor" -> true
    | _ -> false
  in
  List.iter
    (fun p ->
      let domains = int_of_float (jnum label "domains" p) in
      let phases =
        match Json.member "phases_s" p with
        | Some (Json.Obj fields) -> fields
        | _ -> bench_fail "%s: %d-domain point has no \"phases_s\" breakdown" label domains
      in
      List.iter
        (fun bucket ->
          if not (List.mem_assoc bucket phases) then
            bench_fail "%s: %d-domain phases_s lacks %S" label domains bucket)
        [ "queue_wait"; "freeze"; "compute"; "merge"; "install"; "wal" ];
      let attributed = jnum label "attributed_pct" p in
      (* In pool mode the wall x domains basis undercounts whenever the
         pool idles, so the floor is only meaningful at 1 domain. *)
      if (actor_mode || domains = 1) && attributed < 95. then
        bench_fail "%s: %d-domain point attributes only %.1f%% of busy time (floor: 95%%)"
          label domains attributed;
      let speedup = jnum label "speedup_vs_1" p in
      if speedup < 0.9 then
        bench_fail
          "%s: %d-domain point runs %.2fx vs 1 domain — more domains may not slow \
           admission down (floor: 0.90x)"
          label domains speedup;
      if actor_mode then begin
        let wall = jnum label "wall_s" p in
        let queue =
          match List.assoc_opt "queue_wait" phases with
          | Some q -> Option.value ~default:0. (Json.to_number q)
          | None -> 0.
        in
        if wall > 0. && queue > 0.05 *. wall then
          bench_fail "%s: %d-domain queue_wait %.3fs is %.1f%% of wall (ceiling: 5%%)" label
            domains queue
            (100. *. queue /. wall)
      end)
    (jseries label j);
  let contended =
    match Json.member "contended" j with
    | Some (Json.List points) -> points
    | _ -> bench_fail "%s: missing \"contended\" series" label
  in
  let some field =
    List.exists (fun p -> jnum label field p > 0.) contended
  in
  if not (some "rejected") then
    bench_fail "%s: no contended point with real rejections" label;
  if not (some "overloaded") then
    bench_fail "%s: no contended point with real Overloaded outcomes" label

(* Sat v1: one sparse-series point by backend mode and pending depth. *)
let sat_point label ~mode ~k j =
  match
    List.find_opt
      (fun p ->
        Option.bind (Json.member "mode" p) Json.to_str = Some mode
        && Option.bind (Json.member "k" p) Json.to_number = Some (float_of_int k)
        && Option.bind (Json.member "dense" p) (function
             | Json.Bool d -> Some (not d)
             | _ -> None)
           = Some true)
      (jseries label j)
  with
  | Some p -> p
  | None -> bench_fail "%s: no sparse %s point at k=%d" label mode k

let sat_speedup_vs_dpll label ~k j =
  let points =
    match Json.member "speedup_cdcl_vs_dpll" j with
    | Some (Json.List l) -> l
    | _ -> bench_fail "%s: missing \"speedup_cdcl_vs_dpll\" array" label
  in
  match
    List.find_opt
      (fun p -> Option.bind (Json.member "k" p) Json.to_number = Some (float_of_int k))
      points
  with
  | Some p -> jnum label "x" p
  | None -> bench_fail "%s: no k=%d speedup point" label k

let run_bench_diff baseline_path current_path gate =
  let baseline = bench_load "baseline" baseline_path in
  let current = bench_load "current" current_path in
  let schema = jstr "baseline" "schema" baseline in
  let schema_cur = jstr "current" "schema" current in
  if not (String.equal schema schema_cur) then
    bench_fail "schema mismatch: baseline %s vs current %s" schema schema_cur;
  (* Apples to apples: identical workload objects, field for field. *)
  (match Json.member "workload" baseline, Json.member "workload" current with
   | Some wb, Some wc ->
     if not (String.equal (Json.to_string wb) (Json.to_string wc)) then
       bench_fail "workload mismatch: baseline %s vs current %s" (Json.to_string wb)
         (Json.to_string wc)
   | _ -> bench_fail "missing \"workload\" object");
  (match Option.bind (Json.member "deterministic" current) (function
     | Json.Bool b -> Some b
     | _ -> None)
   with
   | Some true -> ()
   | _ -> bench_fail "current recording is not deterministic");
  let allowed = 1. +. (gate /. 100.) in
  let check_ratio what base cur =
    let ratio = if base > 0. then cur /. base else infinity in
    if ratio > allowed then
      bench_fail "%s regressed: %.1f vs baseline %.1f (%.2fx > allowed %.2fx)" what cur base
        ratio allowed;
    Printf.printf "OK: %s %.1f vs baseline %.1f (%.2fx <= %.2fx)\n" what cur base ratio
      allowed
  in
  (match schema with
   | "qdb.bench.admission/v1" ->
     let k = 20 in
     check_ratio
       (Printf.sprintf "k=%d incremental/from-scratch cost ratio (x1000)" k)
       (1000. *. admission_rel_cost "baseline" ~k baseline)
       (1000. *. admission_rel_cost "current" ~k current);
     let speedup = admission_speedup "current" ~k current in
     if speedup < 2.0 then
       bench_fail "k=%d incremental speedup %.2fx below the 2x floor" k speedup;
     Printf.printf "OK: k=%d incremental speedup %.2fx (floor 2x)\n" k speedup
   | "qdb.bench.scaling/v2" ->
     check_ratio "1-domain ns/admission"
       (scaling_base_cost "baseline" baseline)
       (scaling_base_cost "current" current);
     scaling_check_phases "current" current;
     Printf.printf "OK: per-phase attribution >= 95%% of wall at every domain count\n"
   | "qdb.bench.scaling/v3" ->
     (match Option.bind (Json.member "mode" baseline) Json.to_str,
            Option.bind (Json.member "mode" current) Json.to_str
      with
      | Some mb, Some mc when not (String.equal mb mc) ->
        bench_fail "mode mismatch: baseline %s vs current %s" mb mc
      | _ -> ());
     check_ratio "1-domain ns/admission"
       (scaling_base_cost "baseline" baseline)
       (scaling_base_cost "current" current);
     scaling_v3_check "current" current;
     Printf.printf
       "OK: no slowdown at any domain count (>= 0.90x), queue_wait < 5%% of wall, \
        attribution >= 95%% of busy, contended series has real rejections and overloads\n"
   | "qdb.bench.contention/v1" ->
     (* Outcome counts are deterministic (pigeonhole capacity arguments,
        fixed seeds) — pin them exactly, point by point.  Latency splits
        must be present but their values are never gated. *)
     let point_name label p =
       match Option.bind (Json.member "point" p) Json.to_str with
       | Some s -> s
       | None -> bench_fail "%s: contention point without a \"point\" name" label
     in
     let counts label p =
       ( int_of_float (jnum label "submissions" p),
         int_of_float (jnum label "committed" p),
         int_of_float (jnum label "rejected" p),
         int_of_float (jnum label "overloaded" p) )
     in
     let current_points = jseries "current" current in
     List.iter
       (fun bp ->
         let name = point_name "baseline" bp in
         match
           List.find_opt (fun cp -> String.equal (point_name "current" cp) name)
             current_points
         with
         | None -> bench_fail "current recording lacks contention point %S" name
         | Some cp ->
           let b = counts "baseline" bp and c = counts "current" cp in
           if b <> c then begin
             let s (su, co, re, ov) = Printf.sprintf "%d/%d/%d/%d" su co re ov in
             bench_fail
               "%s: outcome counts changed: %s vs baseline %s \
                (submitted/committed/rejected/overloaded)"
               name (s c) (s b)
           end;
           Printf.printf "OK: %s outcome counts match baseline\n" name)
       (jseries "baseline" baseline);
     let in_regime =
       List.exists
         (fun p ->
           let pct = jnum "current" "reject_pct" p in
           pct >= 10. && pct <= 50.)
         current_points
     in
     if not in_regime then
       bench_fail "no contention point lands in the 10-50%% rejection regime";
     List.iter
       (fun p ->
         let name = point_name "current" p in
         match Json.member "latency_us" p with
         | Some (Json.Obj fields) ->
           List.iter
             (fun split ->
               if not (List.mem_assoc split fields) then
                 bench_fail "%s: latency_us lacks the %S split" name split)
             [ "accept"; "reject"; "overload" ]
         | _ -> bench_fail "%s: missing \"latency_us\" split" name)
       current_points;
     Printf.printf
       "OK: >=1 point in the 10-50%% rejection regime; accept/reject/overload latency \
        split present everywhere\n"
   | "qdb.bench.server/v1" ->
     (* The load is seeded and every flight band is driven by exactly one
        session, so per-flight admission order — and with it the outcome
        counts — is deterministic: pin them exactly.  Latency is the one
        machine-dependent number, so only its accept-p99 is gated. *)
     let outcomes label j =
       match Json.member "outcomes" j with
       | Some o ->
         ( int_of_float (jnum label "committed" o),
           int_of_float (jnum label "rejected" o),
           int_of_float (jnum label "overloaded" o),
           int_of_float (jnum label "errors" o) )
       | None -> bench_fail "%s: missing \"outcomes\" object" label
     in
     let b = outcomes "baseline" baseline and c = outcomes "current" current in
     if b <> c then begin
       let s (co, re, ov, er) = Printf.sprintf "%d/%d/%d/%d" co re ov er in
       bench_fail
         "admission outcomes changed: %s vs baseline %s \
          (committed/rejected/overloaded/errors)"
         (s c) (s b)
     end;
     let _, _, _, errors = c in
     if errors <> 0 then bench_fail "%d error responses under clean load" errors;
     Printf.printf "OK: admission outcome counts match baseline\n";
     let gc_field name =
       match Json.member "group_commit" current with
       | Some g -> jnum "current" name g
       | None -> bench_fail "current: missing \"group_commit\" object"
     in
     let mean_batch = gc_field "mean_batch_size" in
     if mean_batch <= 1.0 then
       bench_fail "group commit never grouped: mean batch size %.2f (floor: > 1)" mean_batch;
     Printf.printf "OK: mean group-commit batch size %.2f > 1 (%d batches)\n" mean_batch
       (int_of_float (gc_field "batches"));
     let split label j which =
       match Json.member "latency_us" j with
       | Some l ->
         (match Json.member which l with
          | Some s -> s
          | None -> bench_fail "%s: latency_us lacks the %S split" label which)
       | None -> bench_fail "%s: missing \"latency_us\" object" label
     in
     List.iter
       (fun which ->
         let s = split "current" current which in
         List.iter
           (fun f -> ignore (jnum "current" f s))
           [ "count"; "mean"; "p50"; "p99"; "p999" ])
       [ "accept"; "reject" ];
     Printf.printf "OK: accept/reject p50/p99/p999 admission-latency splits present\n";
     check_ratio "accept p99 admission latency (us)"
       (jnum "baseline" "p99" (split "baseline" baseline "accept"))
       (jnum "current" "p99" (split "current" current "accept"))
   | "qdb.bench.sat/v1" ->
     (* The CDCL claims, pinned: no slowdown on the incremental-session
        cost at the shallow and deep ends; the incremental session must
        beat from-scratch DPLL >= 3x at k=40 (where DPLL still solves
        natively); and at k=160 CDCL must solve every admission natively
        (zero search-solver fallbacks, with real conflict work) while
        eager DPLL cannot hold the flattened body within the default
        encode budget (fallbacks > 0) — losing either half of that
        contrast means the backend or the ablation silently changed. *)
     List.iter
       (fun k ->
         check_ratio
           (Printf.sprintf "k=%d cdcl ns/admission" k)
           (jnum "baseline" "ns_per_admission" (sat_point "baseline" ~mode:"cdcl" ~k baseline))
           (jnum "current" "ns_per_admission" (sat_point "current" ~mode:"cdcl" ~k current)))
       [ 40; 160 ];
     let speedup = sat_speedup_vs_dpll "current" ~k:40 current in
     if speedup < 3.0 then
       bench_fail "k=40 cdcl speedup over dpll %.2fx below the 3x floor" speedup;
     Printf.printf "OK: k=40 cdcl speedup over dpll %.2fx (floor 3x)\n" speedup;
     let cdcl160 = sat_point "current" ~mode:"cdcl" ~k:160 current in
     let dpll160 = sat_point "current" ~mode:"dpll" ~k:160 current in
     if jnum "current" "fallbacks" cdcl160 > 0. then
       bench_fail "k=160 cdcl fell back to the search solver %d times (must be native)"
         (int_of_float (jnum "current" "fallbacks" cdcl160));
     if jnum "current" "conflicts" cdcl160 <= 0. then
       bench_fail "k=160 cdcl recorded no conflicts — the session did no real solving";
     if jnum "current" "fallbacks" dpll160 <= 0. then
       bench_fail
         "k=160 dpll never fell back — the eager encode budget no longer separates the \
          backends";
     Printf.printf
       "OK: k=160 cdcl native (0 fallbacks, %d conflicts); dpll fell back %d/160 times\n"
       (int_of_float (jnum "current" "conflicts" cdcl160))
       (int_of_float (jnum "current" "fallbacks" dpll160))
   | other -> bench_fail "unsupported schema %S" other);
  Printf.printf "bench diff: %s within %.0f%% of %s\n%!" current_path gate baseline_path

let run_bench_server sessions requests hz domains seed out =
  let spec = { Harness.Server.sessions; requests_per_session = requests;
               target_hz = hz; domains; seed } in
  let r = Harness.Server.bench ~spec () in
  Harness.Server.print r;
  ignore (Harness.Server.write ~path:out r)

let bench_cmd =
  let diff_cmd =
    let doc =
      "Compare a fresh bench recording against a committed baseline; exit 1 past the gate."
    in
    let baseline_arg =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"BASELINE" ~doc:"Committed baseline JSON.")
    in
    let current_arg =
      Arg.(required & pos 1 (some string) None & info [] ~docv:"CURRENT" ~doc:"Fresh recording JSON.")
    in
    let gate_arg =
      Arg.(value & opt float 25.
           & info [ "gate" ] ~docv:"PCT"
               ~doc:"Allowed headline-cost regression over the baseline, percent.")
    in
    Cmd.v (Cmd.info "diff" ~doc)
      Term.(const run_bench_diff $ baseline_arg $ current_arg $ gate_arg)
  in
  let server_cmd =
    let doc =
      "Run the loopback server bench: open-loop load over a real socket into the \
       group-commit queue, twice with the same seed, and write the \
       qdb.bench.server/v1 recording."
    in
    let hz_arg =
      Arg.(value & opt float 800. & info [ "hz" ] ~docv:"HZ" ~doc:"Per-session arrival rate.")
    in
    let domains_arg =
      Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Engine domain-pool size.")
    in
    let seed_arg =
      Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
    in
    let out_arg =
      Arg.(value & opt string "results/BENCH_server.json"
           & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON recording.")
    in
    Cmd.v (Cmd.info "server" ~doc)
      Term.(const run_bench_server $ sessions_arg $ requests_arg $ hz_arg $ domains_arg
            $ seed_arg $ out_arg)
  in
  let doc = "Bench-recording tooling (producers and regression comparison)." in
  Cmd.group (Cmd.info "bench" ~doc) [ diff_cmd; server_cmd ]

(* -- shell --------------------------------------------------------------------- *)

let shell_help =
  {|Commands:
  txn <datalog>     submit a resource transaction, e.g.
                    txn -Available(f,s), +Bookings("me",f,s) :-1 Available(f,s)
  read <query>      read (collapses impacted pending txns), e.g.
                    read (f,s) :- Bookings("me",f,s)
  peek <query>      read without fixing anything (witness view)
  impact <query>    show which pending txns a read would collapse
  ground <id>       fix the values of pending transaction <id>
  ground all        fix everything
  pending           list pending transactions
  show <table>      print a table
  tables            list tables
  help              this message
  quit              exit|}

let run_shell rows flights =
  let geometry = { Flights.flights; rows_per_flight = rows; dest = "LA" } in
  let store = Flights.fresh_store geometry in
  let qdb = Qdb.create store in
  Printf.printf
    "quantum-db shell — %d flight(s) x %d seats. Type 'help' for commands.\n%!"
    flights (3 * rows);
  let rec loop () =
    print_string "qdb> ";
    match read_line () with
    | exception End_of_file -> ()
    | line ->
      let line = String.trim line in
      (try
         if line = "quit" || line = "exit" then raise Exit
         else if line = "help" then print_endline shell_help
         else if line = "tables" then
           List.iter print_endline (Relational.Database.table_names (Qdb.db qdb))
         else if line = "pending" then
           List.iter (fun t -> Printf.printf "%s\n" (Rtxn.to_string t)) (Qdb.pending qdb)
         else if line = "ground all" then begin
           let gs = Qdb.ground_all qdb in
           Printf.printf "grounded %d transaction(s)\n" (List.length gs)
         end
         else if String.length line > 7 && String.sub line 0 7 = "ground " then begin
           let id = int_of_string (String.trim (String.sub line 7 (String.length line - 7))) in
           let gs = Qdb.ground qdb id in
           Printf.printf "grounded %d transaction(s)\n" (List.length gs)
         end
         else if String.length line > 5 && String.sub line 0 5 = "show " then begin
           let name = String.trim (String.sub line 5 (String.length line - 5)) in
           match Relational.Database.find_table (Qdb.db qdb) name with
           | Some table -> Format.printf "%a@." Relational.Table.pp table
           | None -> Printf.printf "no such table: %s\n" name
         end
         else if String.length line > 4 && String.sub line 0 4 = "txn " then begin
           let txn =
             Quantum.Datalog_parser.parse_txn (String.sub line 4 (String.length line - 4))
           in
           match Qdb.submit qdb txn with
           | Qdb.Committed id -> Printf.printf "committed (id %d)\n" id
           | Qdb.Rejected reason | Qdb.Overloaded reason -> Printf.printf "rejected: %s\n" reason
         end
         else if String.length line > 5 && String.sub line 0 5 = "read " then begin
           let q =
             Quantum.Datalog_parser.parse_query (String.sub line 5 (String.length line - 5))
           in
           let answers = Qdb.read qdb q in
           if answers = [] then print_endline "(no answers)"
           else List.iter (fun t -> print_endline (Relational.Tuple.to_string t)) answers
         end
         else if String.length line > 5 && String.sub line 0 5 = "peek " then begin
           let q =
             Quantum.Datalog_parser.parse_query (String.sub line 5 (String.length line - 5))
           in
           let answers = Qdb.read ~policy:Qdb.Peek qdb q in
           if answers = [] then print_endline "(no answers)"
           else List.iter (fun t -> print_endline (Relational.Tuple.to_string t)) answers;
           print_endline "(nothing was fixed — these values may still change)"
         end
         else if String.length line > 7 && String.sub line 0 7 = "impact " then begin
           let q =
             Quantum.Datalog_parser.parse_query (String.sub line 7 (String.length line - 7))
           in
           match Qdb.read_impact qdb q with
           | [] -> print_endline "(this read would fix nothing)"
           | impacted ->
             Printf.printf "this read would force grounding of %d transaction(s):\n"
               (List.length impacted);
             List.iter (fun t -> print_endline ("  " ^ Rtxn.to_string t)) impacted
         end
         else if line = "" then ()
         else Printf.printf "unknown command (try 'help')\n"
       with
       | Exit -> raise Exit
       | Quantum.Datalog_parser.Syntax_error msg -> Printf.printf "syntax error: %s\n" msg
       | Rtxn.Ill_formed msg -> Printf.printf "ill-formed transaction: %s\n" msg
       | Failure msg -> Printf.printf "error: %s\n" msg);
      loop ()
  in
  (try loop () with Exit -> ());
  print_endline "bye."

let verbose_flag =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show engine debug logs.")

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let rows_arg =
  Arg.(value & opt int 2 & info [ "rows" ] ~doc:"Seat rows per flight.")

let flights_arg =
  Arg.(value & opt int 1 & info [ "flights" ] ~doc:"Number of flights.")

let shell_cmd =
  let doc = "Interactive quantum-database session over a travel database." in
  let run verbose rows flights =
    setup_logs verbose;
    run_shell rows flights
  in
  Cmd.v (Cmd.info "shell" ~doc) Term.(const run $ verbose_flag $ rows_arg $ flights_arg)

(* -- main ---------------------------------------------------------------------- *)

let () =
  let doc = "Quantum databases: late-binding resource transactions (CIDR 2013 reproduction)." in
  let info = Cmd.info "qdb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ exp_cmd; demo_cmd; shell_cmd; stats_cmd; profile_cmd; crashmonkey_cmd;
            chaos_cmd; scaling_cmd; serve_cmd; load_cmd; bench_cmd ]))

(* Command-line driver for the quantum database.

   Subcommands:
     exp    — regenerate one paper table/figure, the ablations, or 'all'
     demo   — the Mickey/Goofy walkthrough on a tiny flight
     shell  — interactive session: submit resource transactions in the
              Datalog-like notation, read/peek, inspect read impact,
              ground, print tables
     stats  — run a travel workload and print the engine's telemetry
              registry (pretty, prometheus or json); with --wal FILE,
              recover from that log instead and print the registry with
              the wal.recovery.* gauges
     crashmonkey — deterministic crash/recover cycles with fault
              injection; exits 1 on any recovery-invariant violation;
              --domains N runs each cycle's refill fan-out on a pool
     scaling — the Figure-7 domain-pool sweep: the same seeded sharded
              workload at each --domains count, asserting identical
              outcomes, writing the BENCH_scaling.json series
   Every non-interactive subcommand takes --trace FILE to capture a
   Chrome trace_event JSON of the engine's spans.
   (micro-benchmarks live in bench/main.exe) *)

module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn
module Flights = Workload.Flights
module Travel = Workload.Travel
module Common = Harness.Common
module Experiments = Harness.Experiments
module Ablation = Harness.Ablation

open Cmdliner

(* -- tracing ------------------------------------------------------------------ *)

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record engine trace events and write them to $(docv) as Chrome \
                 trace_event JSON (loadable in chrome://tracing or Perfetto).")

let with_trace file f =
  match file with
  | None -> f ()
  | Some path ->
    (* Fail before the run, not after: a --full experiment shouldn't spend
       minutes only to lose its trace to an unwritable path. *)
    (try close_out (open_out path)
     with Sys_error msg ->
       Printf.eprintf "qdb: cannot write trace file: %s\n" msg;
       exit 1);
    Obs.Trace.enable ();
    Fun.protect f ~finally:(fun () ->
        Obs.Export.write_chrome_trace path (Obs.Trace.events ());
        Printf.printf "(trace written to %s: %d event(s), %d overwritten)\n%!" path
          (Obs.Trace.recorded ()) (Obs.Trace.dropped ());
        Obs.Trace.disable ())

(* -- exp --------------------------------------------------------------------- *)

let full_flag =
  Arg.(value & flag & info [ "full" ] ~doc:"Use the paper's full experiment sizes.")

let exp_names = [ "table1"; "fig5"; "fig6"; "fig7"; "table2"; "fig8"; "fig9"; "calendar"; "ablation"; "all" ]

let exp_arg =
  let doc =
    Printf.sprintf "Experiment to run: %s." (String.concat ", " exp_names)
  in
  Arg.(required & pos 0 (some (enum (List.map (fun n -> (n, n)) exp_names))) None
       & info [] ~docv:"EXPERIMENT" ~doc)

let run_exp name full trace =
  with_trace trace @@ fun () ->
  let scale = if full then Common.paper_scale else Common.default_scale in
  let pick wanted = name = "all" || name = wanted in
  if pick "table1" then ignore (Experiments.run_table1 scale);
  if pick "fig5" then ignore (Experiments.run_fig5 scale);
  if pick "fig6" then ignore (Experiments.run_fig6 scale);
  if pick "fig7" || pick "table2" then ignore (Experiments.run_fig7_and_table2 scale);
  if pick "fig8" || pick "fig9" then ignore (Experiments.run_fig89 scale);
  if pick "calendar" then ignore (Harness.Calendar_exp.run scale);
  if pick "ablation" then begin
    ignore (Ablation.run_backend_ablation scale);
    ignore (Ablation.run_serializability_ablation scale);
    ignore (Ablation.run_adaptive_ablation scale);
    ignore (Ablation.run_cache_capacity_ablation scale);
    ignore (Ablation.run_cache_stats scale);
    ignore (Ablation.run_formula_growth scale)
  end

let exp_cmd =
  let doc = "Regenerate a table or figure of the paper's evaluation." in
  Cmd.v (Cmd.info "exp" ~doc) Term.(const run_exp $ exp_arg $ full_flag $ trace_arg)

(* -- demo --------------------------------------------------------------------- *)

let run_demo trace =
  with_trace trace @@ fun () ->
  let geometry = { Flights.flights = 1; rows_per_flight = 2; dest = "LA" } in
  let store = Flights.fresh_store geometry in
  let qdb = Qdb.create store in
  print_endline "A flight to LA with two rows of three seats (0,1,2 / 3,4,5).";
  print_endline "";
  print_endline "Mickey books any seat, OPTIONALLY next to Goofy (who has not arrived):";
  let mickey = { Travel.name = "Mickey"; partner = "Goofy"; flight = 0 } in
  (match Qdb.submit qdb (Travel.entangled_txn mickey) with
   | Qdb.Committed id ->
     Printf.printf "  -> committed (id %d), seat NOT yet assigned (quantum state)\n" id
   | Qdb.Rejected r -> Printf.printf "  -> rejected: %s\n" r);
  Printf.printf "  pending transactions: %d; Bookings table rows: %d\n"
    (Qdb.pending_count qdb)
    (Relational.Table.cardinality (Relational.Database.table (Qdb.db qdb) "Bookings"));
  print_endline "";
  print_endline "Donald books a specific seat (seat 1):";
  let donald =
    Quantum.Datalog_parser.parse_txn ~label:"Donald"
      {|-Available(f, s), +Bookings("Donald", f, s) :-1 Available(f, s), f = 0, s = 1|}
  in
  (match Qdb.submit qdb donald with
   | Qdb.Committed _ -> print_endline "  -> committed; Mickey's options narrowed, nothing visible"
   | Qdb.Rejected r -> Printf.printf "  -> rejected: %s\n" r);
  print_endline "";
  print_endline "Goofy arrives; he wants to sit next to Mickey:";
  let goofy = { Travel.name = "Goofy"; partner = "Mickey"; flight = 0 } in
  (match Qdb.submit qdb (Travel.entangled_txn goofy) with
   | Qdb.Committed _ ->
     print_endline "  -> committed; the entangled pair grounds immediately"
   | Qdb.Rejected r -> Printf.printf "  -> rejected: %s\n" r);
  print_endline "";
  print_endline "Mickey checks in (a read — collapses any remaining uncertainty):";
  let answers = Qdb.read qdb (Travel.seat_query mickey) in
  List.iter (fun t -> Printf.printf "  Mickey's (flight, seat): %s\n" (Relational.Tuple.to_string t)) answers;
  (match Flights.booking_of (Qdb.db qdb) "Mickey", Flights.booking_of (Qdb.db qdb) "Goofy" with
   | Some (_, sm), Some (_, sg) ->
     Printf.printf "  Mickey seat %d, Goofy seat %d — adjacent: %b\n" sm sg
       (Flights.seats_adjacent (Qdb.db qdb) sm sg)
   | _ -> ());
  ignore (Qdb.ground_all qdb);
  print_endline "";
  print_endline "Final bookings:";
  Format.printf "%a@." Relational.Table.pp (Relational.Database.table (Qdb.db qdb) "Bookings")

let demo_cmd =
  let doc = "Walk through the paper's Mickey/Goofy scenario." in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run_demo $ trace_arg)

(* -- stats -------------------------------------------------------------------- *)

(* Drive a travel workload against one engine instance, then print its
   telemetry registry (counters, latency histograms, live gauges, WAL
   counters) in the chosen format.  With --trace, the same run also yields
   a Chrome trace of every span the engine emitted. *)

let pp_registry registry =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, value) ->
      match value with
      | Obs.Registry.Counter n -> Buffer.add_string b (Printf.sprintf "%-28s %d\n" name n)
      | Obs.Registry.Gauge g -> Buffer.add_string b (Printf.sprintf "%-28s %g\n" name g)
      | Obs.Registry.Histogram h ->
        let module H = Obs.Histogram in
        if H.count h = 0 then Buffer.add_string b (Printf.sprintf "%-28s (empty)\n" name)
        else
          Buffer.add_string b
            (Printf.sprintf "%-28s count=%d p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus\n"
               name (H.count h)
               (H.quantile h 0.5 *. 1e6) (H.quantile h 0.9 *. 1e6)
               (H.quantile h 0.99 *. 1e6) (H.max_value h *. 1e6)))
    (Obs.Registry.items registry);
  print_string (Buffer.contents b)

(* With --wal, skip the synthetic workload: recover an engine from the
   given log file (leniently — damaged tails are truncated, not fatal)
   and print its registry, which then carries the wal.recovery.* gauges
   alongside a human-readable recovery line. *)
let run_stats_wal format path =
  let backend = Relational.Wal.file_backend path in
  let qdb = Qdb.recover backend in
  let registry = Qdb.registry qdb in
  (match format with
   | `Pretty ->
     Printf.printf "recovered from %s:\n" path;
     (match Qdb.recovery_report qdb with
      | Some report -> Printf.printf "  %s\n\n" (Relational.Wal.report_to_string report)
      | None -> print_newline ());
     pp_registry registry
   | `Prometheus -> print_string (Obs.Export.prometheus registry)
   | `Json -> print_endline (Obs.Export.json_snapshot_string registry))

let run_stats format trace flights rows read_fraction wal =
  match wal with
  | Some path -> run_stats_wal format path
  | None ->
  with_trace trace @@ fun () ->
  let geometry = { Flights.flights; rows_per_flight = rows; dest = "LA" } in
  (* Users sized to seat capacity, as in Figures 5/6 (2 users per pair,
     3 seats per row). *)
  let spec =
    { Workload.Runner.default_spec with
      geometry;
      read_fraction;
      order = Travel.Random_order;
      pairs_per_flight = 3 * rows / 2;
    }
  in
  let store = Flights.fresh_store geometry in
  let qdb = Qdb.create store in
  let rng = Workload.Prng.create spec.Workload.Runner.seed in
  let ops, _ = Workload.Runner.build_ops spec rng in
  List.iter
    (fun op ->
      match op with
      | Workload.Runner.Book u -> ignore (Qdb.submit qdb (Travel.entangled_txn u))
      | Workload.Runner.Read_seat u -> ignore (Qdb.read qdb (Travel.seat_query u)))
    ops;
  ignore (Qdb.ground_all qdb);
  let registry = Qdb.registry qdb in
  match format with
  | `Pretty ->
    Printf.printf "telemetry after %d operation(s) on %d flight(s) x %d seats:\n\n"
      (List.length ops) flights (3 * rows);
    pp_registry registry
  | `Prometheus -> print_string (Obs.Export.prometheus registry)
  | `Json -> print_endline (Obs.Export.json_snapshot_string registry)

let stats_cmd =
  let doc = "Run a travel workload and print the engine's telemetry registry." in
  let format_arg =
    let formats = [ ("pretty", `Pretty); ("prometheus", `Prometheus); ("json", `Json) ] in
    Arg.(value & opt (enum formats) `Pretty
         & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: pretty, prometheus or json.")
  in
  let read_fraction_arg =
    Arg.(value & opt float 0.2
         & info [ "read-fraction" ] ~doc:"Fraction of the op stream that is reads.")
  in
  let rows_arg = Arg.(value & opt int 17 & info [ "rows" ] ~doc:"Seat rows per flight.") in
  let flights_arg = Arg.(value & opt int 2 & info [ "flights" ] ~doc:"Number of flights.") in
  let wal_arg =
    Arg.(value & opt (some string) None
         & info [ "wal" ] ~docv:"FILE"
             ~doc:"Instead of running a workload, recover from the WAL at $(docv) \
                   (lenient replay) and print the registry, including the \
                   wal.recovery.* gauges.")
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run_stats $ format_arg $ trace_arg $ flights_arg $ rows_arg
          $ read_fraction_arg $ wal_arg)

(* -- crashmonkey --------------------------------------------------------------- *)

(* Deterministic crash/recover torture: every cycle crashes a live engine
   at a PRNG-chosen WAL append with a PRNG-chosen damage mode, recovers,
   and checks the recovery contract.  Exit 1 on any violation, so CI can
   gate on it. *)

let run_crashmonkey cycles seed domains =
  let pool = if domains > 1 then Some (Par.Pool.create ~domains ()) else None in
  let s =
    Fun.protect
      ~finally:(fun () -> Option.iter Par.Pool.shutdown pool)
      (fun () -> Workload.Crash_monkey.run ~cycles ~seed ?pool ())
  in
  Format.printf "crash monkey (seed %d, %d domain(s)):@.%a@." seed (max 1 domains)
    Workload.Crash_monkey.pp s;
  match s.Workload.Crash_monkey.violations with
  | [] -> ()
  | violations ->
    List.iter
      (fun (cycle, what) -> Printf.eprintf "violation in cycle %d: %s\n" cycle what)
      violations;
    exit 1

let crashmonkey_cmd =
  let doc =
    "Run deterministic crash/recover cycles with fault injection and check the \
     recovery invariants."
  in
  let cycles_arg =
    Arg.(value & opt int 200
         & info [ "cycles" ] ~docv:"N" ~doc:"Number of crash/recover cycles.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let domains_arg =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Run each cycle's engine over an $(docv)-domain pool (cache \
                   capacity 3, so the parallel refill fan-out fires every \
                   commit) — the recovery contract must hold regardless.")
  in
  Cmd.v (Cmd.info "crashmonkey" ~doc)
    Term.(const run_crashmonkey $ cycles_arg $ seed_arg $ domains_arg)

(* -- scaling ------------------------------------------------------------------- *)

let run_scaling domains flights rows pairs seed out =
  let r =
    Harness.Scaling.run ~domains_list:domains ~flights ~rows ~pairs ~seed ()
  in
  Harness.Scaling.print r;
  ignore (Harness.Scaling.write ~path:out r)

let scaling_cmd =
  let doc =
    "Run the Figure-7 sharded workload once per domain count, check the \
     admission outcomes are identical, and write the scaling series as JSON."
  in
  let domains_arg =
    Arg.(value & opt (list int) [ 1; 2; 4 ]
         & info [ "domains" ] ~docv:"N,N,..." ~doc:"Domain counts to sweep.")
  in
  let flights_arg =
    Arg.(value & opt int 10 & info [ "flights" ] ~doc:"Number of flights (shards).")
  in
  let rows_arg =
    Arg.(value & opt int 50 & info [ "rows" ] ~doc:"Seat rows per flight (3 seats each).")
  in
  let pairs_arg =
    Arg.(value & opt int 75 & info [ "pairs" ] ~doc:"User pairs per flight.")
  in
  let seed_arg =
    Arg.(value & opt int 1000 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let out_arg =
    Arg.(value & opt string "results/BENCH_scaling.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON series.")
  in
  Cmd.v (Cmd.info "scaling" ~doc)
    Term.(const run_scaling $ domains_arg $ flights_arg $ rows_arg $ pairs_arg
          $ seed_arg $ out_arg)

(* -- shell --------------------------------------------------------------------- *)

let shell_help =
  {|Commands:
  txn <datalog>     submit a resource transaction, e.g.
                    txn -Available(f,s), +Bookings("me",f,s) :-1 Available(f,s)
  read <query>      read (collapses impacted pending txns), e.g.
                    read (f,s) :- Bookings("me",f,s)
  peek <query>      read without fixing anything (witness view)
  impact <query>    show which pending txns a read would collapse
  ground <id>       fix the values of pending transaction <id>
  ground all        fix everything
  pending           list pending transactions
  show <table>      print a table
  tables            list tables
  help              this message
  quit              exit|}

let run_shell rows flights =
  let geometry = { Flights.flights; rows_per_flight = rows; dest = "LA" } in
  let store = Flights.fresh_store geometry in
  let qdb = Qdb.create store in
  Printf.printf
    "quantum-db shell — %d flight(s) x %d seats. Type 'help' for commands.\n%!"
    flights (3 * rows);
  let rec loop () =
    print_string "qdb> ";
    match read_line () with
    | exception End_of_file -> ()
    | line ->
      let line = String.trim line in
      (try
         if line = "quit" || line = "exit" then raise Exit
         else if line = "help" then print_endline shell_help
         else if line = "tables" then
           List.iter print_endline (Relational.Database.table_names (Qdb.db qdb))
         else if line = "pending" then
           List.iter (fun t -> Printf.printf "%s\n" (Rtxn.to_string t)) (Qdb.pending qdb)
         else if line = "ground all" then begin
           let gs = Qdb.ground_all qdb in
           Printf.printf "grounded %d transaction(s)\n" (List.length gs)
         end
         else if String.length line > 7 && String.sub line 0 7 = "ground " then begin
           let id = int_of_string (String.trim (String.sub line 7 (String.length line - 7))) in
           let gs = Qdb.ground qdb id in
           Printf.printf "grounded %d transaction(s)\n" (List.length gs)
         end
         else if String.length line > 5 && String.sub line 0 5 = "show " then begin
           let name = String.trim (String.sub line 5 (String.length line - 5)) in
           match Relational.Database.find_table (Qdb.db qdb) name with
           | Some table -> Format.printf "%a@." Relational.Table.pp table
           | None -> Printf.printf "no such table: %s\n" name
         end
         else if String.length line > 4 && String.sub line 0 4 = "txn " then begin
           let txn =
             Quantum.Datalog_parser.parse_txn (String.sub line 4 (String.length line - 4))
           in
           match Qdb.submit qdb txn with
           | Qdb.Committed id -> Printf.printf "committed (id %d)\n" id
           | Qdb.Rejected reason -> Printf.printf "rejected: %s\n" reason
         end
         else if String.length line > 5 && String.sub line 0 5 = "read " then begin
           let q =
             Quantum.Datalog_parser.parse_query (String.sub line 5 (String.length line - 5))
           in
           let answers = Qdb.read qdb q in
           if answers = [] then print_endline "(no answers)"
           else List.iter (fun t -> print_endline (Relational.Tuple.to_string t)) answers
         end
         else if String.length line > 5 && String.sub line 0 5 = "peek " then begin
           let q =
             Quantum.Datalog_parser.parse_query (String.sub line 5 (String.length line - 5))
           in
           let answers = Qdb.read ~policy:Qdb.Peek qdb q in
           if answers = [] then print_endline "(no answers)"
           else List.iter (fun t -> print_endline (Relational.Tuple.to_string t)) answers;
           print_endline "(nothing was fixed — these values may still change)"
         end
         else if String.length line > 7 && String.sub line 0 7 = "impact " then begin
           let q =
             Quantum.Datalog_parser.parse_query (String.sub line 7 (String.length line - 7))
           in
           match Qdb.read_impact qdb q with
           | [] -> print_endline "(this read would fix nothing)"
           | impacted ->
             Printf.printf "this read would force grounding of %d transaction(s):\n"
               (List.length impacted);
             List.iter (fun t -> print_endline ("  " ^ Rtxn.to_string t)) impacted
         end
         else if line = "" then ()
         else Printf.printf "unknown command (try 'help')\n"
       with
       | Exit -> raise Exit
       | Quantum.Datalog_parser.Syntax_error msg -> Printf.printf "syntax error: %s\n" msg
       | Rtxn.Ill_formed msg -> Printf.printf "ill-formed transaction: %s\n" msg
       | Failure msg -> Printf.printf "error: %s\n" msg);
      loop ()
  in
  (try loop () with Exit -> ());
  print_endline "bye."

let verbose_flag =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show engine debug logs.")

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let rows_arg =
  Arg.(value & opt int 2 & info [ "rows" ] ~doc:"Seat rows per flight.")

let flights_arg =
  Arg.(value & opt int 1 & info [ "flights" ] ~doc:"Number of flights.")

let shell_cmd =
  let doc = "Interactive quantum-database session over a travel database." in
  let run verbose rows flights =
    setup_logs verbose;
    run_shell rows flights
  in
  Cmd.v (Cmd.info "shell" ~doc) Term.(const run $ verbose_flag $ rows_arg $ flights_arg)

(* -- main ---------------------------------------------------------------------- *)

let () =
  let doc = "Quantum databases: late-binding resource transactions (CIDR 2013 reproduction)." in
  let info = Cmd.info "qdb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ exp_cmd; demo_cmd; shell_cmd; stats_cmd; crashmonkey_cmd; scaling_cmd ]))

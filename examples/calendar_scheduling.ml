(* Calendar management (paper Section 1, second motivating scenario).

   Run with:  dune exec examples/calendar_scheduling.exe

   Mickey schedules a team offsite weeks in advance.  With a classical
   calendar the slot is fixed immediately; when the CEO calls a
   high-priority meeting in that exact slot, somebody has to reschedule
   by hand.  With a quantum calendar the offsite's slot stays in
   superposition, so the CEO meeting simply commits and the offsite's
   possibilities shrink — nobody reschedules anything. *)

module Qdb = Quantum.Qdb
module Calendar = Workload.Calendar

let team = [ "mickey"; "minnie"; "donald" ]
let slot_name slot = Printf.sprintf "day %d, %d:00" (slot / 8) (9 + (slot mod 8))

let () =
  (* A week of 5 days x 8 hours for the team; the CEO's calendar is
     managed elsewhere. *)
  let store = Calendar.fresh_store ~people:team ~days:5 ~hours_per_day:8 () in
  let qdb = Qdb.create store in

  print_endline "Two months ahead: Mickey schedules the team offsite (any common slot,";
  print_endline "preferring the first two days).";
  let offsite =
    Calendar.meeting_txn ~prefer_before:16 ~mid:"offsite" ~participants:team ()
  in
  (match Qdb.submit qdb offsite with
   | Qdb.Committed _ ->
     print_endline "  -> committed.  No slot chosen yet: the whole week is still possible."
   | Qdb.Rejected r | Qdb.Overloaded r -> failwith r);
  Printf.printf "  Meeting table rows: %d (none — deferred)\n\n"
    (Relational.Table.cardinality (Relational.Database.table (Qdb.db qdb) "Meeting"));

  print_endline "Lots of other meetings land on the calendar during the two months:";
  List.iteri
    (fun i participants ->
      let mid = Printf.sprintf "mtg-%d" i in
      match Qdb.submit qdb (Calendar.meeting_txn ~mid ~participants ()) with
      | Qdb.Committed _ -> Printf.printf "  %s (%s) committed, slot open\n" mid (String.concat "+" participants)
      | Qdb.Rejected r | Qdb.Overloaded r -> Printf.printf "  %s rejected: %s\n" mid r)
    [ [ "mickey"; "minnie" ]; [ "donald" ]; [ "minnie"; "donald" ]; [ "mickey" ] ];
  print_endline "";

  print_endline "Wednesday before: the CEO demands slot 0 (day 0, 9:00) with Mickey —";
  print_endline "exactly where a classical scheduler might have pinned the offsite.";
  let ceo = Calendar.fixed_meeting_txn ~mid:"ceo" ~participants:[ "mickey" ] ~slot:0 () in
  (match Qdb.submit qdb ceo with
   | Qdb.Committed _ ->
     print_endline "  -> committed instantly.  Nothing is rescheduled; the offsite's";
     print_endline "     possibilities silently exclude slot 0."
   | Qdb.Rejected r | Qdb.Overloaded r -> failwith r);
  print_endline "";

  print_endline "Thursday evening: everyone reads tomorrow's calendar (collapse):";
  List.iter
    (fun mid ->
      match Qdb.read qdb (Calendar.slot_query mid) with
      | [ answer ] ->
        (match Relational.Tuple.to_list answer with
         | [ Relational.Value.Int slot ] -> Printf.printf "  %-8s -> %s\n" mid (slot_name slot)
         | _ -> ())
      | _ -> Printf.printf "  %-8s -> (not scheduled)\n" mid)
    [ "ceo"; "offsite"; "mtg-0"; "mtg-1"; "mtg-2"; "mtg-3" ];
  print_endline "";

  (* Sanity: the CEO meeting holds slot 0 and the offsite found a
     conflict-free slot for the whole team. *)
  let db = Qdb.db qdb in
  assert (Calendar.meeting_slot db "ceo" = Some 0);
  (match Calendar.meeting_slot db "offsite" with
   | Some slot ->
     assert (slot <> 0);
     Printf.printf "The offsite landed on %s — no human rescheduling needed.\n" (slot_name slot);
     if slot < 16 then print_endline "(and the OPTIONAL early-week preference was honoured)"
   | None -> failwith "offsite lost its slot — invariant broken!")

(* Entangled resource transactions at workload scale (paper Section 5).

   Run with:  dune exec examples/entangled_travel.exe

   Couples book flights independently, each asking (OPTIONALLY) to sit
   next to their partner.  We drive the same random arrival stream
   through the quantum engine and through the Intelligent Social baseline
   and compare the coordination they achieve. *)

module Qdb = Quantum.Qdb
module Runner = Workload.Runner
module Travel = Workload.Travel
module Flights = Workload.Flights

let () =
  let spec =
    {
      Runner.geometry = { Flights.flights = 2; rows_per_flight = 10; dest = "LA" };
      pairs_per_flight = 15;
      order = Travel.Random_order;
      seed = 2013;
      read_fraction = 0.;
    }
  in
  let users = 2 * spec.Runner.pairs_per_flight * spec.Runner.geometry.Flights.flights in
  Printf.printf
    "Workload: %d travellers (%d couples) over %d flights x %d seats,\n\
     arriving in random order, every couple wanting adjacent seats.\n\n"
    users (users / 2) spec.Runner.geometry.Flights.flights
    (3 * spec.Runner.geometry.Flights.rows_per_flight);

  Printf.printf "Quantum database (deferred assignment, entangled optionals):\n";
  let q = Runner.run (Runner.Quantum_engine Qdb.default_config) spec in
  Printf.printf "  committed %d / rejected %d\n" q.Runner.committed q.Runner.rejected;
  Printf.printf "  coordinated travellers: %d of %d possible (%.1f%%)\n"
    q.Runner.coordinated q.Runner.max_possible q.Runner.coordination_pct;
  Printf.printf "  peak pending transactions: %d\n" q.Runner.max_pending;
  Printf.printf "  wall clock: %.3fs\n\n" q.Runner.total_time_s;

  Printf.printf "Intelligent Social baseline (immediate assignment, partner-aware):\n";
  let is = Runner.run Runner.Intelligent_social spec in
  Printf.printf "  committed %d / rejected %d\n" is.Runner.committed is.Runner.rejected;
  Printf.printf "  coordinated travellers: %d of %d possible (%.1f%%)\n"
    is.Runner.coordinated is.Runner.max_possible is.Runner.coordination_pct;
  Printf.printf "  wall clock: %.3fs\n\n" is.Runner.total_time_s;

  Printf.printf "Deferred assignment won %d extra coordinated travellers (%.1f%% -> %.1f%%).\n"
    (q.Runner.coordinated - is.Runner.coordinated)
    is.Runner.coordination_pct q.Runner.coordination_pct;

  (* The same stream with a 40%% read mix: reads force early grounding and
     erode coordination — the effect behind the paper's Figure 9. *)
  Printf.printf "\nWith 40%% of operations being seat-check reads:\n";
  let q_reads =
    Runner.run (Runner.Quantum_engine Qdb.default_config) { spec with Runner.read_fraction = 0.4 }
  in
  Printf.printf "  coordination drops to %.1f%% — observation collapses opportunity.\n"
    q_reads.Runner.coordination_pct;

  (* Group coordination: one transaction reserving a full row for a family
     of three, committed while everything above was going on. *)
  Printf.printf "\nA family of three books one transaction asking for a full row:\n";
  let store2 = Flights.fresh_store { Flights.flights = 1; rows_per_flight = 4; dest = "LA" } in
  let qdb2 = Qdb.create store2 in
  let family = [ "huey"; "dewey"; "louie" ] in
  (match Qdb.submit qdb2 (Travel.group_txn ~members:family ~flight:0 ()) with
   | Qdb.Committed id ->
     ignore (Qdb.ground qdb2 id);
     Printf.printf "  seated together in one row: %b\n"
       (Travel.group_coordinated (Qdb.db qdb2) family)
   | Qdb.Rejected r | Qdb.Overloaded r -> Printf.printf "  rejected: %s\n" r)

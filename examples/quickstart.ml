(* Quickstart: the paper's running example as a library walkthrough.

   Run with:  dune exec examples/quickstart.exe

   We create a tiny travel database, submit Figure 1's resource
   transaction for Mickey (any seat, OPTIONALLY next to Goofy), watch the
   system defer the seat choice, and collapse it with a read. *)

module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn
module P = Quantum.Datalog_parser
module Flights = Workload.Flights

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ " ==\n")

let () =
  (* 1. A durable store with one flight of 2 rows (seats 0..5), plus the
        Adjacent relation for within-row neighbours. *)
  let geometry = { Flights.flights = 1; rows_per_flight = 2; dest = "LA" } in
  let store = Flights.fresh_store geometry in
  let qdb = Qdb.create store in

  step "Goofy books seat 1 the classical way (immediate write)";
  assert (Workload.Travel.book store { Workload.Travel.name = "Goofy"; partner = "Mickey"; flight = 0 } 1);
  Format.printf "%a@." Relational.Table.pp (Relational.Database.table (Qdb.db qdb) "Bookings");

  step "Mickey submits Figure 1's resource transaction";
  (* The Datalog-like intermediate representation of the paper; [?] marks
     OPTIONAL items.  Capitalised bare identifiers are string constants. *)
  let mickey =
    P.parse_txn ~label:"Mickey"
      {|-Available(f, s), +Bookings("Mickey", f, s)
          :-1 Available(f, s), ?Bookings("Goofy", f, s2), ?Adjacent(s, s2)|}
  in
  (match Qdb.submit qdb mickey with
   | Qdb.Committed id ->
     Printf.printf "committed with id %d — and that is a *guarantee* a seat exists,\n" id;
     Printf.printf "but no concrete seat has been chosen (deferred assignment).\n"
   | Qdb.Rejected reason | Qdb.Overloaded reason -> failwith reason);
  Printf.printf "pending transactions: %d\n" (Qdb.pending_count qdb);
  Printf.printf "Bookings rows for Mickey so far: %d\n"
    (List.length
       (Relational.Table.lookup
          (Relational.Database.table (Qdb.db qdb) "Bookings")
          [| Some (Relational.Value.Str "Mickey"); None; None |]));

  step "Other passengers keep booking — the quantum state absorbs them";
  List.iter
    (fun name ->
      let txn =
        P.parse_txn ~label:name
          (Printf.sprintf
             {|-Available(f, s), +Bookings("%s", f, s) :-1 Available(f, s)|} name)
      in
      match Qdb.submit qdb txn with
      | Qdb.Committed _ -> Printf.printf "%s committed (deferred)\n" name
      | Qdb.Rejected reason | Qdb.Overloaded reason -> Printf.printf "%s rejected: %s\n" name reason)
    [ "Donald"; "Minnie"; "Pluto" ];
  Printf.printf "pending: %d; the invariant guarantees all of them a seat\n"
    (Qdb.pending_count qdb);

  step "The flight has 6 seats; a 6th booking (5 pending + Goofy) still fits";
  (match
     Qdb.submit qdb
       (P.parse_txn ~label:"Daisy"
          {|-Available(f, s), +Bookings("Daisy", f, s) :-1 Available(f, s)|})
   with
   | Qdb.Committed _ -> print_endline "Daisy committed"
   | Qdb.Rejected reason | Qdb.Overloaded reason -> Printf.printf "Daisy rejected: %s\n" reason);
  (match
     Qdb.submit qdb
       (P.parse_txn ~label:"Scrooge"
          {|-Available(f, s), +Bookings("Scrooge", f, s) :-1 Available(f, s)|})
   with
   | Qdb.Committed _ -> print_endline "Scrooge committed (should not happen!)"
   | Qdb.Rejected reason | Qdb.Overloaded reason ->
     Printf.printf "Scrooge rejected — the plane is logically full: %s\n" reason);

  step "Mickey checks in: the read collapses his part of the quantum state";
  let q = P.parse_query {|(f, s) :- Bookings("Mickey", f, s)|} in
  (match Qdb.read qdb q with
   | [ answer ] -> Printf.printf "Mickey's (flight, seat) = %s\n" (Relational.Tuple.to_string answer)
   | _ -> failwith "expected exactly one answer");
  (match Flights.booking_of (Qdb.db qdb) "Mickey" with
   | Some (_, seat) ->
     Printf.printf "adjacent to Goofy (seat 1)? %b  — the OPTIONAL preference held\n"
       (Flights.seats_adjacent (Qdb.db qdb) seat 1)
   | None -> failwith "Mickey should be booked");

  step "Everyone else gets grounded at departure";
  ignore (Qdb.ground_all qdb);
  Format.printf "%a@." Relational.Table.pp (Relational.Database.table (Qdb.db qdb) "Bookings");
  Printf.printf "remaining Available rows: %d (none — exactly booked out)\n"
    (Relational.Table.cardinality (Relational.Database.table (Qdb.db qdb) "Available"))

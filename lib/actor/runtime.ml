(* Shared-nothing partition actors: one long-lived domain per live
   actor, each owning the state of every group routed to it.  The
   mailbox (Par.Mailbox) is the only thing two domains ever share; group
   state is created on the owning actor's domain and never leaves it, so
   the hot path needs no locks at all.

   Clamping is the multicore honesty rule: spawning more actor domains
   than the host's recommended parallelism cannot add throughput, only
   stop-the-world GC pressure (the exact pathology the old pool-sharded
   sweep measured), so [create] multiplexes groups onto at most
   [Domain.recommended_domain_count ()] domains unless told otherwise.
   A single live actor runs inline on the caller — no domain, no
   mailbox hop — which keeps the 1-domain configuration cost-free and
   shares its code path with the N-domain one. *)

type 'a outcome = Value of 'a | Raised of exn * Printexc.raw_backtrace

type 'a ivar = {
  ivm : Mutex.t;
  ivc : Condition.t;
  mutable cell : 'a option;
}

let ivar () = { ivm = Mutex.create (); ivc = Condition.create (); cell = None }

let fill iv v =
  Mutex.lock iv.ivm;
  iv.cell <- Some v;
  Condition.broadcast iv.ivc;
  Mutex.unlock iv.ivm

let await iv =
  Mutex.lock iv.ivm;
  while iv.cell = None do
    Condition.wait iv.ivc iv.ivm
  done;
  let v = Option.get iv.cell in
  Mutex.unlock iv.ivm;
  v

(* A message either carries work (handed a resolver that finds-or-makes
   group state on this actor) or is a drain barrier: by mailbox FIFO,
   answering the barrier proves every earlier message completed. *)
type 'g msg =
  | Work of (((int -> 'g) -> unit)[@warning "-27"])
  | Barrier of unit ivar

type 'g actor = {
  idx : int;
  mbox : 'g msg Par.Mailbox.t;
  groups : (int, 'g) Hashtbl.t;
  mutable busy_ns : int64;
  mutable messages : int;
  mutable failed : (exn * Printexc.raw_backtrace) option;
}

type 'g t = {
  requested : int;
  acts : 'g actor array;
  make : int -> 'g;
  on_batch_end : ('g -> unit) option;
  mutable domains : unit Domain.t list;
  coord : Mutex.t; (* serializes multi-owner coordinations *)
  mutable stopped : bool;
}

type stats = { busy_ns : int; messages : int }

let requested t = t.requested
let live t = Array.length t.acts
let owner t ~key = ((key mod live t) + live t) mod live t

let resolver t a key =
  match Hashtbl.find_opt a.groups key with
  | Some g -> g
  | None ->
    let g = t.make key in
    Hashtbl.add a.groups key g;
    g

(* Run one unit of work on (conceptually) actor [a], timing it as actor
   busy time and folding it into the flight recorder's Compute phase so
   per-phase attribution sums to busy time, not to an inflated multiple
   of wall clock.  Exceptions are the caller's problem: [post] wraps the
   task to store them, [call] to ship them back. *)
let run_work t (a : _ actor) f =
  let t0 = Obs.Mclock.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      a.busy_ns <- Int64.add a.busy_ns (Obs.Mclock.elapsed_ns t0);
      a.messages <- a.messages + 1)
    (fun () -> Obs.Flight.time Obs.Flight.Compute (fun () -> f (resolver t a)))

let store_failure a f resolve =
  try f resolve
  with e ->
    if a.failed = None then a.failed <- Some (e, Printexc.get_raw_backtrace ())

(* The group-commit boundary: run the batch-end hook over every group
   this actor owns.  Counted as busy time (the hook is real actor work —
   typically one WAL sync covering the whole drained batch); failures
   park in [failed] like any posted task's. *)
let batch_end t (a : _ actor) =
  match t.on_batch_end with
  | None -> ()
  | Some hook ->
    if Hashtbl.length a.groups > 0 then begin
      let t0 = Obs.Mclock.now_ns () in
      Fun.protect
        ~finally:(fun () -> a.busy_ns <- Int64.add a.busy_ns (Obs.Mclock.elapsed_ns t0))
        (fun () ->
          try Hashtbl.iter (fun _ g -> hook g) a.groups
          with e ->
            if a.failed = None then a.failed <- Some (e, Printexc.get_raw_backtrace ()))
    end

let rec actor_loop t a =
  match Par.Mailbox.recv a.mbox with
  | None -> batch_end t a (* closed and drained: final boundary, then shutdown *)
  | Some (Work f) ->
    run_work t a f;
    (* Mailbox ran dry: everything admitted since the last boundary is
       one batch — exactly when the front door's commit queue would
       sync.  Back-to-back arrivals keep coalescing instead. *)
    if Par.Mailbox.length a.mbox = 0 then batch_end t a;
    actor_loop t a
  | Some (Barrier iv) ->
    (* Durability before visibility: the barrier answers only after the
       open batch hit the hook, so [drain]-then-read sees synced state. *)
    batch_end t a;
    fill iv ();
    actor_loop t a

let create ?(mailbox_capacity = 64) ?(clamp = true) ?on_batch_end ~actors ~make () =
  let requested = max 1 actors in
  let hw = max 1 (Domain.recommended_domain_count ()) in
  let n = if clamp then min requested hw else requested in
  let acts =
    Array.init n (fun idx ->
        {
          idx;
          mbox = Par.Mailbox.create ~capacity:mailbox_capacity ();
          groups = Hashtbl.create 16;
          busy_ns = 0L;
          messages = 0;
          failed = None;
        })
  in
  let t =
    { requested; acts; make; on_batch_end; domains = []; coord = Mutex.create ();
      stopped = false }
  in
  if n > 1 then
    t.domains <-
      Array.to_list (Array.map (fun a -> Domain.spawn (fun () -> actor_loop t a)) acts);
  t

let inline_mode t = t.domains = [] (* live = 1: run on the caller *)

let check_running t =
  if t.stopped then invalid_arg "Actor.Runtime: runtime is shut down"

(* Ship work to an actor by index.  Inline mode executes immediately on
   the caller's domain — same [run_work] instrumentation, no hop. *)
let dispatch t idx f =
  check_running t;
  let a = t.acts.(idx) in
  if inline_mode t then begin
    run_work t a (store_failure a f);
    (* Inline mode has no mailbox to run dry: every task is its own
       batch, which is exactly the [Every_batch] cost the 1-domain
       configuration always paid. *)
    batch_end t a
  end
  else if not (Par.Mailbox.send a.mbox (Work (store_failure a f))) then
    invalid_arg "Actor.Runtime: mailbox closed"

let post t ~key f = dispatch t (owner t ~key) (fun resolve -> f (resolve key))

(* Round-trip on a given actor with full group-resolver access (the
   building block for [call] and single-owner coordinations). *)
let call_on t idx f =
  check_running t;
  let a = t.acts.(idx) in
  let body resolve = try Value (f resolve) with e -> Raised (e, Printexc.get_raw_backtrace ()) in
  let result =
    if inline_mode t then begin
      let out = ref None in
      run_work t a (fun resolve -> out := Some (body resolve));
      batch_end t a;
      Option.get !out
    end
    else begin
      let iv = ivar () in
      if not (Par.Mailbox.send a.mbox (Work (fun resolve -> fill iv (body resolve)))) then
        invalid_arg "Actor.Runtime: mailbox closed";
      await iv
    end
  in
  match result with
  | Value v -> v
  | Raised (e, bt) -> Printexc.raise_with_backtrace e bt

let call t ~key f = call_on t (owner t ~key) (fun resolve -> f (resolve key))

let reraise_first_failure t =
  Array.iter
    (fun a ->
      match a.failed with
      | Some (e, bt) ->
        a.failed <- None;
        Printexc.raise_with_backtrace e bt
      | None -> ())
    t.acts

let drain t =
  check_running t;
  if not (inline_mode t) then begin
    (* Barriers fan out first, then all are awaited: actors quiesce in
       parallel instead of one after the other. *)
    let barriers =
      Array.map
        (fun a ->
          let iv = ivar () in
          if Par.Mailbox.send a.mbox (Barrier iv) then Some iv else None)
        t.acts
    in
    Array.iter (function Some iv -> await iv | None -> ()) barriers
  end;
  reraise_first_failure t

let group t ~key =
  let a = t.acts.(owner t ~key) in
  Hashtbl.find_opt a.groups key

let stats t =
  Array.map
    (fun (a : _ actor) -> { busy_ns = Int64.to_int a.busy_ns; messages = a.messages })
    t.acts

let shutdown t =
  if not t.stopped then begin
    (try drain t
     with e ->
       (* Still stop the domains before letting the failure out. *)
       t.stopped <- true;
       Array.iter (fun a -> Par.Mailbox.close a.mbox) t.acts;
       List.iter Domain.join t.domains;
       t.domains <- [];
       raise e);
    t.stopped <- true;
    Array.iter (fun a -> Par.Mailbox.close a.mbox) t.acts;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

(* -- Two-phase cross-group coordination ------------------------------------ *)

let dedup keys =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun k ->
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    keys

type 'e decision = Commit | Abort of 'e

let coordinate t ~keys ~prepare ~commit ~abort =
  check_running t;
  let keys = dedup keys in
  (* Keys grouped by owning actor, preserving key order within each. *)
  let per_owner = Array.make (live t) [] in
  List.iter (fun k -> per_owner.(owner t ~key:k) <- k :: per_owner.(owner t ~key:k)) keys;
  let per_owner = Array.map List.rev per_owner in
  let owners =
    Array.to_list per_owner
    |> List.mapi (fun i ks -> (i, ks))
    |> List.filter (fun (_, ks) -> ks <> [])
  in
  (* Local run of prepare-all / commit-or-abort over one actor's keys;
     on a prepare failure the actor rolls back its own prepares at once
     (it needs no one's permission to abort). *)
  let local resolve ks =
    let rec go prepared = function
      | [] ->
        List.iter (fun (k, p) -> commit k (resolve k) p) (List.rev prepared);
        Ok ()
      | k :: rest -> (
        match prepare k (resolve k) with
        | Ok p -> go ((k, p) :: prepared) rest
        | Error e ->
          List.iter (fun (k, p) -> abort k (resolve k) p) (List.rev prepared);
          Error e)
    in
    go [] ks
  in
  match owners with
  | [] -> Ok ()
  | [ (o, ks) ] ->
    (* Single-owner fast path: the whole transaction is local to the
       owning actor — no votes, no freeze. *)
    call_on t o (fun resolve -> local resolve ks)
  | owners ->
    (* The exception path.  The caller (driver thread) is the
       coordinator; each owning actor prepares, votes, then freezes —
       stops draining its mailbox — until the decision arrives. *)
    Mutex.lock t.coord;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.coord)
      (fun () ->
        let n = List.length owners in
        let m = Mutex.create () in
        let c = Condition.create () in
        let votes = Array.make n None in (* per participant: Ok prepared-count | Error e *)
        let voted = ref 0 in
        let decision = ref None in
        let acked = ref 0 in
        List.iteri
          (fun i (o, ks) ->
            dispatch t o (fun resolve ->
                let prepared = ref [] in
                let err = ref None in
                List.iter
                  (fun k ->
                    if !err = None then
                      match prepare k (resolve k) with
                      | Ok p -> prepared := (k, p) :: !prepared
                      | Error e -> err := Some e)
                  ks;
                (match !err with
                 | Some _ ->
                   (* Vote no: roll back own prepares immediately. *)
                   List.iter (fun (k, p) -> abort k (resolve k) p) (List.rev !prepared);
                   prepared := []
                 | None -> ());
                Mutex.lock m;
                votes.(i) <- Some !err;
                incr voted;
                Condition.broadcast c;
                (* Freeze window: hold prepared state until the verdict. *)
                while !decision = None do
                  Condition.wait c m
                done;
                let d = Option.get !decision in
                Mutex.unlock m;
                (match d with
                 | Commit -> List.iter (fun (k, p) -> commit k (resolve k) p) (List.rev !prepared)
                 | Abort _ -> List.iter (fun (k, p) -> abort k (resolve k) p) (List.rev !prepared));
                Mutex.lock m;
                incr acked;
                Condition.broadcast c;
                Mutex.unlock m))
          owners;
        Mutex.lock m;
        while !voted < n do
          Condition.wait c m
        done;
        (* First error by owner order decides (and names) the abort. *)
        let verdict =
          Array.to_list votes
          |> List.find_map (function Some (Some e) -> Some e | _ -> None)
          |> function
          | Some e -> Abort e
          | None -> Commit
        in
        decision := Some verdict;
        Condition.broadcast c;
        while !acked < n do
          Condition.wait c m
        done;
        Mutex.unlock m;
        match verdict with Commit -> Ok () | Abort e -> Error e)

(** Shared-nothing partition actors.

    One long-lived domain owns each group of partition state end-to-end:
    requests are routed by an integer key to the owning actor, which
    runs them against group state only it ever touches.  No locks guard
    the groups — ownership is the synchronization.  Cross-group work is
    the explicit exception, via the two-phase [coordinate] protocol.

    The runtime clamps the number of spawned domains to the host's
    recommended domain count by default: actor domains beyond the
    hardware's parallelism can only add stop-the-world GC pressure, so a
    4-actor runtime on a 1-core host runs as one actor multiplexing all
    groups.  [requested] and [live] expose both numbers so benchmarks
    can report the clamp honestly.  A live count of 1 spawns no domain
    at all: messages run inline on the caller, making the sequential
    configuration pay nothing — and making "1 actor" and "N actors"
    share one code path for the outcome-identity oracle.

    One driver thread posts, calls, drains and shuts down; actor tasks
    must not touch the runtime themselves (except through the group
    state handed to them). *)

type 'g t

val create :
  ?mailbox_capacity:int ->
  ?clamp:bool ->
  ?on_batch_end:('g -> unit) ->
  actors:int ->
  make:(int -> 'g) ->
  unit ->
  'g t
(** [create ~actors ~make ()] starts a runtime of [actors] actors
    (clamped to at least 1).  [make key] builds the state of group
    [key]; it runs on the owning actor's domain the first time a
    message for [key] arrives, so group state is born shared-nothing.
    [clamp] (default [true]) limits spawned domains to
    [Domain.recommended_domain_count ()]; [mailbox_capacity] (default
    64) bounds each actor's mailbox — a full mailbox blocks the sender,
    which is the runtime's backpressure.

    [on_batch_end] is the per-actor group-commit boundary: it runs on
    the owning actor's domain over each of its groups whenever the
    actor's mailbox runs dry, before a [drain] barrier answers, and at
    shutdown — so a run of back-to-back messages forms one batch (e.g.
    one WAL sync under [Relational.Wal.Never]) instead of paying
    per-message durability.  With a single live actor every task is its
    own batch, matching the [Every_batch] cost that configuration
    always paid.  Hook time counts as actor busy time; a hook exception
    is stored and re-raised like a posted task's. *)

val requested : _ t -> int
(** The actor count asked for at [create]. *)

val live : _ t -> int
(** The actor count actually running after the clamp; routing uses
    this, so groups multiplex onto live actors. *)

val owner : _ t -> key:int -> int
(** The live actor index owning group [key] — a pure function of
    [key] and [live t], so routing is deterministic. *)

val post : 'g t -> key:int -> ('g -> unit) -> unit
(** Fire-and-forget: enqueue a task on the owner of [key].  Blocks
    while the owner's mailbox is full.  If a posted task raises, the
    first exception (lowest actor index, then arrival order) is
    re-raised at the next [drain] or [shutdown]. *)

val call : 'g t -> key:int -> ('g -> 'a) -> 'a
(** Round-trip: run the task on the owner of [key] and return its
    result, re-raising its exception in the caller.  FIFO with [post]:
    all earlier posts to the same owner complete first. *)

val drain : 'g t -> unit
(** Wait until every message posted so far has been processed and all
    actors are idle; then re-raise the first stored [post] exception,
    if any.  After [drain] returns (normally), the driver may read
    group state directly — every actor is parked on its empty mailbox
    and the sentinel round-trip ordered the reads after the writes. *)

val group : 'g t -> key:int -> 'g option
(** The state of group [key], or [None] if no message ever reached it.
    Driver-side; only safe after [drain] or [shutdown]. *)

type stats = {
  busy_ns : int;  (** summed wall time spent running tasks *)
  messages : int;  (** tasks processed, sentinels excluded *)
}

val stats : _ t -> stats array
(** Per-live-actor counters.  Only stable after [drain]. *)

val coordinate :
  'g t ->
  keys:int list ->
  prepare:(int -> 'g -> ('p, 'e) result) ->
  commit:(int -> 'g -> 'p -> unit) ->
  abort:(int -> 'g -> 'p -> unit) ->
  (unit, 'e) result
(** Two-phase cross-group transaction over [keys] (deduplicated).  When
    one actor owns every key, the whole protocol collapses to a local
    run on that actor — the common case under routing by partition.
    Otherwise each owning actor prepares its keys in order and votes;
    yes-voters freeze (their mailbox stops draining) until the
    coordinator — the calling driver thread, never an actor — collects
    every vote and broadcasts commit (all yes) or abort.  A participant
    whose own prepare fails aborts its earlier prepares immediately and
    votes no.  Returns the lowest-owner first error on abort.
    Coordinations are serialized runtime-wide, so two of them can never
    freeze actors in opposite orders. *)

val shutdown : _ t -> unit
(** Drain, stop and join every actor domain.  Re-raises like [drain].
    The runtime must not be used afterwards; idempotent otherwise. *)

(* Composition of resource transactions (Lemma 3.4 / Theorem 3.5).

   The satisfiability of the composed body over the extensional database
   guarantees a consistent set of groundings for the whole pending
   sequence.  For a body atom [b] of the transaction at position [k] in
   the sequence T_0 .. T_{k} the clause is

     ⋁_{j<k} ⋁_{i ∈ inserts(T_j)} ( ϕ(b, i) ∧ ⋀_{j<m<k, d ∈ deletes(T_m)} ¬ϕ(b, d) )
     ∨ ( b ∧ ⋀_{m<k, d ∈ deletes(T_m)} ¬ϕ(b, d) )

   i.e. [b] grounds either on a tuple inserted by an earlier pending
   transaction and not deleted in between, or on the extensional database
   and on no tuple any earlier pending transaction deletes.  With a single
   earlier transaction this is exactly Lemma 3.4; the paper's Theorem 3.5
   states the two-transaction generalization and we extend it to
   sequences, tracking the temporal position of inserts and deletes.

   Beyond the paper's statement we also emit:
   - existence clauses for delete atoms that do not textually repeat a
     body atom (a delete must find its tuple when executed), and
   - key-safety clauses for inserts: an insert must not collide with a
     tuple already present (unless an earlier pending delete removes it)
     nor with an earlier pending insert.  These preserve the set-semantics
     assumption the composition proof relies on. *)

open Logic

(* The update context a new transaction composes against: earlier pending
   transactions in sequence order. *)
type context = Rtxn.t list

let negated_predicate a b = Formula.negate (Unify.predicate a b)

(* Clause for one grounding obligation [b] of the transaction at the end of
   [prior].  The negated-delete predicates are unification work, so they
   are built once per earlier transaction and shared: the database option
   uses all of them, and the insert options at position j reuse the suffix
   for positions after j (suffix lists share tails), instead of
   recomputing the predicates per position — which was quadratic in
   |prior|. *)
let clause_for_atom (prior : context) (b : Atom.t) =
  let no_deletes_per_txn =
    List.map (fun t -> List.map (negated_predicate b) (Rtxn.deletes t)) prior
  in
  (* Pair each transaction with the concatenated negated deletes of every
     LATER transaction; building right-to-left shares the suffix spines. *)
  let rec with_suffixes txns nds =
    match txns, nds with
    | [], _ | _, [] -> ([], [])
    | t :: later, nd :: later_nds ->
      let annotated, suffix_after = with_suffixes later later_nds in
      ((t, suffix_after) :: annotated, nd @ suffix_after)
  in
  let annotated, all_no_deletes = with_suffixes prior no_deletes_per_txn in
  let ground_on_db = Formula.and_ (Formula.atom b :: all_no_deletes) in
  (* Options grounding on an insert of T_j: suffix deletes are those of
     transactions after j. *)
  let insert_options =
    List.concat_map
      (fun (t, suffix_no_deletes) ->
        List.filter_map
          (fun i ->
            match Unify.predicate b i with
            | Formula.False -> None
            | phi -> Some (Formula.and_ (phi :: suffix_no_deletes)))
          (Rtxn.inserts t))
      annotated
  in
  Formula.or_ (ground_on_db :: insert_options)

(* Delete atoms that are not already body atoms need their own existence
   obligation (e.g. a cancellation transaction whose body is the booking
   it deletes states it twice in the paper's examples; when it does not,
   the obligation must still hold). *)
let delete_obligations t =
  List.filter (fun d -> not (List.exists (Atom.equal d) t.Rtxn.hard)) (Rtxn.deletes t)

(* Key columns of a relation: [key_of] resolves from the live schema; when
   it yields nothing the whole tuple is treated as the key (the
   conservative default — set semantics on full tuples). *)
type key_resolver = string -> int array option

let whole_tuple_key : key_resolver = fun _ -> None

(* Resolver backed by a live catalog.  Callers composing against a real
   database must use this (or equivalent): [Formula.Key_free] is evaluated
   against the schema's actual key, so the freeing/collision predicates
   must be built from the same key columns. *)
let resolver_of_db db : key_resolver =
 fun rel ->
  match Relational.Database.find_table db rel with
  | Some table -> Some (Relational.Schema.key_indices (Relational.Table.schema table))
  | None -> None

let key_positions (key_of : key_resolver) (a : Atom.t) =
  match key_of a.Atom.rel with
  | Some ks -> ks
  | None -> Array.init (Atom.arity a) Fun.id

(* ϕ restricted to key columns: the predicate under which two atoms of the
   same relation denote tuples with the same key. *)
let key_predicate key_of (a : Atom.t) (b : Atom.t) =
  if (not (String.equal a.Atom.rel b.Atom.rel)) || Atom.arity a <> Atom.arity b then Formula.fls
  else
    Formula.and_
      (Array.to_list
         (Array.map (fun p -> Formula.eq a.Atom.args.(p) b.Atom.args.(p)) (key_positions key_of a)))

(* Key-safety for an insert [i] of the new transaction (the set-semantics
   assumption of Section 3.2.1 enforced compositionally):

   - the key is free against the extensional database, or some earlier
     pending delete removes the tuple holding it, and
   - for every earlier pending insert [i'] (of T_j), either the keys
     differ or a delete *between* T_j and the new transaction consumes
     [i']'s tuple (full-tuple unification there: a delete removes exactly
     one concrete tuple, e.g. a cancellation consuming a pending
     booking). *)
let insert_safety ?(key_of = whole_tuple_key) (prior : context) (i : Atom.t) =
  let freed_before =
    List.concat_map
      (fun t ->
        List.filter_map
          (fun d ->
            match key_predicate key_of i d with
            | Formula.False -> None
            | phi -> Some phi)
          (Rtxn.deletes t))
      prior
  in
  let free_or_freed = Formula.or_ (Formula.key_free i :: freed_before) in
  let rec prior_insert_clauses = function
    | [] -> []
    | t :: later ->
      let consumed_later i' =
        List.concat_map
          (fun t' ->
            List.filter_map
              (fun d ->
                match Unify.predicate i' d with
                | Formula.False -> None
                | phi -> Some phi)
              (Rtxn.deletes t'))
          later
      in
      let clauses_here =
        List.filter_map
          (fun i' ->
            match key_predicate key_of i i' with
            | Formula.False -> None (* keys can never clash *)
            | key_phi ->
              Some (Formula.or_ (Formula.negate key_phi :: consumed_later i')))
          (Rtxn.inserts t)
      in
      clauses_here @ prior_insert_clauses later
  in
  Formula.and_ (free_or_freed :: prior_insert_clauses prior)

(* Intra-transaction applicability: a grounding under which two deletes of
   the same transaction target one tuple, or two inserts collide on a key,
   has no valid execution (the batch would fail halfway).  Multi-atom
   bodies make this reachable — e.g. a group booking of three seats must
   not ground two of them on the same Available row. *)
let intra_update_constraints ?(key_of = whole_tuple_key) (txn : Rtxn.t) =
  let rec delete_pairs = function
    | d1 :: rest -> List.map (fun d2 -> negated_predicate d1 d2) rest @ delete_pairs rest
    | [] -> []
  in
  let rec insert_pairs = function
    | i1 :: rest ->
      List.map (fun i2 -> Formula.negate (key_predicate key_of i1 i2)) rest @ insert_pairs rest
    | [] -> []
  in
  delete_pairs (Rtxn.deletes txn) @ insert_pairs (Rtxn.inserts txn)

(* All clauses contributed by [txn] when appended after [prior]. *)
let clauses_for ?(check_inserts = true) ?key_of (prior : context) (txn : Rtxn.t) =
  let body_clauses = List.map (clause_for_atom prior) txn.Rtxn.hard in
  let delete_clauses = List.map (clause_for_atom prior) (delete_obligations txn) in
  let insert_clauses =
    if check_inserts then List.map (insert_safety ?key_of prior) (Rtxn.inserts txn) else []
  in
  Formula.and_
    (body_clauses @ txn.Rtxn.constraints @ delete_clauses @ insert_clauses
    @ intra_update_constraints ?key_of txn)

(* The composed body of a whole sequence — Theorem 3.5 iterated. *)
let body_of_sequence ?check_inserts ?key_of (txns : Rtxn.t list) =
  let rec go prior_rev acc = function
    | [] -> Formula.and_ (List.rev acc)
    | txn :: rest ->
      let clauses = clauses_for ?check_inserts ?key_of (List.rev prior_rev) txn in
      go (txn :: prior_rev) (clauses :: acc) rest
  in
  go [] [] txns

(* -- Incrementally composed bodies (the admission hot path) ---------------

   A partition's composed body is the conjunction of one clause chunk per
   pending transaction, each composed against the transactions admitted
   before it — [body_of_sequence]'s shape, kept as a list instead of
   re-derived.  Admitting T_{k+1} appends only [delta prior T_{k+1}];
   merging partitions concatenates chunk lists; grounding, aborts and
   blind-write resplits rebuild from scratch with [compose] (the
   invalidation path, since those events change the sequence itself).
   The flattened conjunction is memoized and [formula] forces it, so the
   structural result is identical to the eager construction. *)
module Inc = struct
  type t = {
    mutable chunks_rev : Formula.t list; (* newest transaction's chunk first *)
    mutable clauses : int; (* top-level conjunct count across all chunks *)
    mutable memo : Formula.t option; (* flattened conjunction of all chunks *)
  }

  let chunk_clauses c = List.length (Formula.conjuncts c)

  let of_chunks_rev chunks_rev =
    {
      chunks_rev;
      clauses = List.fold_left (fun n c -> n + chunk_clauses c) 0 chunks_rev;
      memo = None;
    }

  let empty () = of_chunks_rev []

  let delta ?check_inserts ?key_of (prior : context) txn =
    Formula.intern (clauses_for ?check_inserts ?key_of prior txn)

  let compose ?check_inserts ?key_of (txns : Rtxn.t list) =
    let rec go prior_rev acc = function
      | [] -> of_chunks_rev acc
      | txn :: rest -> go (txn :: prior_rev) (delta ?check_inserts ?key_of (List.rev prior_rev) txn :: acc) rest
    in
    go [] [] txns

  let extend t chunk =
    t.chunks_rev <- chunk :: t.chunks_rev;
    t.clauses <- t.clauses + chunk_clauses chunk;
    t.memo <- None

  let formula t =
    match t.memo with
    | Some f -> f
    | None ->
      let f = Formula.and_ (List.rev t.chunks_rev) in
      t.memo <- Some f;
      f

  let clause_count t = t.clauses

  let chunks t = List.rev t.chunks_rev

  (* Conjunction of independent partitions' bodies; chunk order follows
     the given partition order, matching the eager [Formula.and_] merge
     this replaces. *)
  let merge ts = of_chunks_rev (List.concat_map (fun t -> t.chunks_rev) (List.rev ts))
end

(* Optional obligations of [txn] in composition context: each soft unit is
   rewritten so its atoms may also ground on earlier pending inserts,
   mirroring the hard-clause construction. *)
let soft_clauses_for (prior : context) (txn : Rtxn.t) =
  let rewrite_unit f =
    let rec rw f =
      match f with
      | Formula.Atom a -> clause_for_atom prior a
      | Formula.And fs -> Formula.and_ (List.map rw fs)
      | Formula.Or fs -> Formula.or_ (List.map rw fs)
      | Formula.True | Formula.False | Formula.Not_atom _ | Formula.Key_free _
      | Formula.Eq _ | Formula.Neq _ | Formula.Lt _ | Formula.Le _ -> f
    in
    rw f
  in
  List.map rewrite_unit (Rtxn.soft_formulas txn)

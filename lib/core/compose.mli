(** Composition of resource transactions — Lemma 3.4 / Theorem 3.5,
    generalized to sequences with temporal insert/delete tracking, plus
    delete-existence and insert key-safety obligations. *)

type context = Rtxn.t list
(** Earlier pending transactions, oldest first. *)

val clause_for_atom : context -> Logic.Atom.t -> Logic.Formula.t
(** The grounding clause for one body atom appended after [context]: ground
    on the database avoiding all earlier pending deletes, or on an earlier
    pending insert not deleted in between. *)

type key_resolver = string -> int array option
(** Key column positions per relation; [None] means the whole tuple. *)

val whole_tuple_key : key_resolver

val resolver_of_db : Relational.Database.t -> key_resolver
(** Resolver backed by a live catalog — required when composing against a
    real database, so the key predicates match how [Formula.Key_free] is
    evaluated. *)

val key_predicate :
  key_resolver -> Logic.Atom.t -> Logic.Atom.t -> Logic.Formula.t
(** ϕ restricted to key columns: when two atoms denote same-key tuples. *)

val insert_safety : ?key_of:key_resolver -> context -> Logic.Atom.t -> Logic.Formula.t
(** Key-safety: the inserted tuple's key is free (or freed by an earlier
    pending delete) and distinct from every earlier pending insert's key. *)

val intra_update_constraints : ?key_of:key_resolver -> Rtxn.t -> Logic.Formula.t list
(** Applicability within one transaction: no two deletes may target the
    same tuple, no two inserts the same key. *)

val clauses_for :
  ?check_inserts:bool -> ?key_of:key_resolver -> context -> Rtxn.t -> Logic.Formula.t
(** Everything [txn] contributes to the composed body when appended. *)

val body_of_sequence :
  ?check_inserts:bool -> ?key_of:key_resolver -> Rtxn.t list -> Logic.Formula.t
(** The full composed body of a pending sequence; its satisfiability over
    the extensional database is the quantum-database invariant. *)

val soft_clauses_for : context -> Rtxn.t -> Logic.Formula.t list
(** The transaction's optional obligations, rewritten into the same
    composition context (soft units for {!Solver.Soft.solve}). *)

(** Incrementally composed bodies: one clause chunk per pending
    transaction, so admission appends a delta instead of recomposing the
    sequence.  [formula] is structurally identical to what the eager
    construction produced.  Chunks are interned ({!Logic.Formula.intern}). *)
module Inc : sig
  type t

  val empty : unit -> t

  val compose : ?check_inserts:bool -> ?key_of:key_resolver -> Rtxn.t list -> t
  (** From-scratch composition of a sequence (the invalidation path —
      grounding, aborts, blind-write resplits); chunk-per-transaction
      equivalent of {!body_of_sequence}. *)

  val delta :
    ?check_inserts:bool -> ?key_of:key_resolver -> context -> Rtxn.t -> Logic.Formula.t
  (** The chunk [txn] contributes after [context] ({!clauses_for},
      interned).  Does not mutate anything: callers [extend] on success
      and drop the chunk on rejection. *)

  val extend : t -> Logic.Formula.t -> unit
  (** Append a newly admitted transaction's chunk. *)

  val formula : t -> Logic.Formula.t
  (** The flattened composed body (memoized until the next [extend]). *)

  val clause_count : t -> int
  (** Top-level conjunct count — the [qdb.partition.composed_clauses]
      observability gauge. *)

  val chunks : t -> Logic.Formula.t list
  (** Per-transaction chunks, oldest first — the delta units the
      incremental SAT session ({!Sat.Inc}) encodes and gates. *)

  val merge : t list -> t
  (** Concatenate partitions' chunk lists (their bodies share no
      variables, so conjunction in partition order is the merged body). *)
end

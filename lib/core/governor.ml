(* Resource governor for the admission pipeline.

   Every admission check runs under one budget: a solver node budget, an
   optional monotonic-clock deadline, and an optional SAT-encoder budget,
   threaded from [Qdb.submit] down through the solution cache into the
   search.  When a budget runs out the engine does not guess — it climbs
   a degradation ladder:

     1. retry the witness-seeded incremental solve with an exponentially
        larger node budget (bounded retries, deterministic jittered
        backoff),
     2. fall back to one full-recompose solve with a further-escalated
        budget,
     3. report [Overloaded] — a structured outcome distinct from
        [Rejected] that leaves partition chunks, caches and the WAL
        untouched.

   The governor itself is pure configuration plus arithmetic; the ladder
   control flow lives in [Qdb.check_admission] where the counters and
   the [Obs.Flight.Governor] phase are charged.  The default governor
   reproduces the old scattered-[node_limit] behaviour exactly: base
   budget = the engine's [node_limit], no deadline, and escalated
   retries that previously did not exist only run where exhaustion used
   to escape as a raw exception. *)

type t = {
  node_budget : int option;
      (* base solver node budget per admission attempt; [None] inherits
         the engine's [config.node_limit] *)
  deadline_ns : int64 option; (* per-admission wall budget, relative ns *)
  sat_budget : Sat.Encode.budget option; (* SAT-backend encode budget *)
  max_retries : int; (* escalated incremental retries before degrading *)
  escalation : int; (* node-budget multiplier per ladder rung *)
  backoff_ns : int64; (* base backoff before each retry; 0 = none *)
}

let default =
  {
    node_budget = None;
    deadline_ns = None;
    sat_budget = None;
    max_retries = 2;
    escalation = 8;
    backoff_ns = 0L;
  }

let make ?node_budget ?deadline_ns ?sat_budget ?(max_retries = 2) ?(escalation = 8)
    ?(backoff_ns = 0L) () =
  {
    node_budget;
    deadline_ns;
    sat_budget;
    max_retries = max 0 max_retries;
    escalation = max 1 escalation;
    backoff_ns = (if Int64.compare backoff_ns 0L > 0 then backoff_ns else 0L);
  }

(* An armed budget: the relative deadline pinned to an absolute
   monotonic-clock instant at the top of one admission. *)
type charge = {
  gov : t;
  deadline : int64 option;
}

let arm gov =
  {
    gov;
    deadline = Option.map (fun d -> Int64.add (Obs.Mclock.now_ns ()) d) gov.deadline_ns;
  }

let deadline charge = charge.deadline
let sat_budget charge = charge.gov.sat_budget
let max_retries charge = charge.gov.max_retries

let expired charge =
  match charge.deadline with
  | None -> false
  | Some d -> Int64.compare (Obs.Mclock.now_ns ()) d > 0

(* Node budget of ladder rung [retry] (0 = first attempt): base times
   escalation^retry, saturating well short of overflow. *)
let node_budget charge ~default_limit ~retry =
  let base = max 1 (Option.value charge.gov.node_budget ~default:default_limit) in
  let esc = charge.gov.escalation in
  let rec go b i = if i <= 0 || b > max_int / (esc + 1) then b else go (b * esc) (i - 1) in
  go base retry

(* Deterministic jitter in [0, 1): a splitmix64-style mix of (salt,
   retry).  No global PRNG state, so identical runs — the bit-identical
   1/2/4-domain oracle included — back off identically. *)
let jitter ~salt ~retry =
  let z =
    Int64.add (Int64.mul (Int64.of_int salt) 0x9E3779B97F4A7C15L) (Int64.of_int (retry + 1))
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let bits = Int64.to_int (Int64.logand (Int64.logxor z (Int64.shift_right_logical z 31)) 0xFFFFL) in
  float_of_int bits /. 65536.

(* Exponential backoff with jitter before retry [retry] (0-based), capped
   at 50 ms so a misconfigured governor cannot stall an admission for
   seconds.  A zero base (the default) never sleeps. *)
let backoff charge ~salt ~retry =
  if Int64.compare charge.gov.backoff_ns 0L > 0 then begin
    let base = Int64.to_float charge.gov.backoff_ns *. float_of_int (1 lsl min retry 16) in
    let ns = Float.min (base *. (0.5 +. jitter ~salt ~retry)) 50_000_000. in
    Unix.sleepf (ns /. 1e9)
  end

let pp fmt g =
  Format.fprintf fmt "@[<h>node_budget=%s deadline=%s retries=%d escalation=%dx backoff=%Ldns@]"
    (match g.node_budget with Some n -> string_of_int n | None -> "engine")
    (match g.deadline_ns with Some d -> Printf.sprintf "%Ldns" d | None -> "none")
    g.max_retries g.escalation g.backoff_ns

(** Resource governor for the admission pipeline: one per-admission
    budget (solver node budget, optional monotonic-clock deadline,
    optional SAT-encode budget) plus the parameters of the degradation
    ladder — escalated retries, full-recompose fallback, and finally the
    structured [Overloaded] outcome.

    The governor is pure configuration and arithmetic; [Qdb] owns the
    ladder control flow.  {!default} reproduces the engine's historical
    behaviour (budget = [config.node_limit], no deadline). *)

type t = {
  node_budget : int option;
      (** base solver node budget per admission attempt;
          [None] inherits the engine's [config.node_limit] *)
  deadline_ns : int64 option;  (** per-admission wall budget, relative ns *)
  sat_budget : Sat.Encode.budget option;  (** SAT-backend encode budget *)
  max_retries : int;  (** escalated incremental retries before degrading *)
  escalation : int;  (** node-budget multiplier per ladder rung *)
  backoff_ns : int64;  (** base backoff before each retry; 0 = none *)
}

val default : t

val make :
  ?node_budget:int ->
  ?deadline_ns:int64 ->
  ?sat_budget:Sat.Encode.budget ->
  ?max_retries:int ->
  ?escalation:int ->
  ?backoff_ns:int64 ->
  unit ->
  t
(** Defaults: inherit the engine node limit, no deadline, no SAT budget
    override, 2 retries, 8x escalation, no backoff.  [max_retries] is
    clamped to ≥ 0, [escalation] to ≥ 1. *)

type charge
(** An armed budget: the relative deadline pinned to an absolute
    monotonic instant at the top of one admission. *)

val arm : t -> charge

val deadline : charge -> int64 option
(** Absolute monotonic-clock deadline, for threading into the solver. *)

val sat_budget : charge -> Sat.Encode.budget option
val max_retries : charge -> int

val expired : charge -> bool
(** Has the armed deadline already passed? *)

val node_budget : charge -> default_limit:int -> retry:int -> int
(** Node budget of ladder rung [retry] (0 = first attempt): base times
    [escalation]^retry, saturating. *)

val backoff : charge -> salt:int -> retry:int -> unit
(** Sleep the jittered exponential backoff before retry [retry]
    (0-based).  Jitter is a pure hash of [(salt, retry)] — deterministic
    across runs and domain counts — and the sleep is capped at 50 ms.
    No-op when the governor's base backoff is 0 (the default). *)

val pp : Format.formatter -> t -> unit

(* Engine-level counters and latency histograms, the raw material of the
   experiment harness (Figures 5, 7, 8) and of the telemetry exporters.

   The flat wall-clock accumulators of the first prototype are gone:
   submit/ground/read latencies are recorded per-operation into
   log-bucketed histograms (p50/p90/p99/max), timed on the monotonic
   clock.  [time_submit]/[time_ground]/[time_read] survive as derived
   sums so the harness tables and [pp] output are unchanged. *)

type t = {
  mutable submitted : int;
  mutable committed : int;
  mutable rejected : int;
  mutable overloaded : int; (* admissions refused on budget exhaustion, not semantics *)
  mutable grounded : int;
  mutable forced_groundings : int; (* k-pressure or read-induced *)
  mutable reads : int;
  mutable writes : int;
  mutable writes_rejected : int;
  mutable partition_merges : int;
  mutable governor_retries : int; (* escalated-budget admission re-solves *)
  mutable governor_degraded_full_solve : int; (* incremental → full-recompose fallbacks *)
  mutable governor_exhaustions : int; (* every budget blowup the ladder absorbed *)
  mutable refill_failures : int; (* cache-refill fan-outs abandoned on a job failure *)
  (* CDCL SAT-backend session counters, synced from the engine's
     incremental session after every SAT admission check (cumulative
     across session rebuilds). *)
  mutable sat_conflicts : int;
  mutable sat_learned : int;
  mutable sat_restarts : int;
  mutable sat_propagations : int;
  mutable sat_fallbacks : int;
      (* SAT-backend checks that fell back to the search solver (body not
         SAT-encodable or over the encode budget) *)
  submit_latency : Obs.Histogram.t; (* seconds, one observation per submit *)
  accept_latency : Obs.Histogram.t; (* submit latency split by outcome... *)
  reject_latency : Obs.Histogram.t;
  overload_latency : Obs.Histogram.t;
  ground_latency : Obs.Histogram.t; (* per grounding call *)
  read_latency : Obs.Histogram.t; (* per read *)
  cache_stats : Solver.Cache.stats;
  solver_stats : Solver.Backtrack.stats;
}

let create () =
  {
    submitted = 0;
    committed = 0;
    rejected = 0;
    overloaded = 0;
    grounded = 0;
    forced_groundings = 0;
    reads = 0;
    writes = 0;
    writes_rejected = 0;
    partition_merges = 0;
    governor_retries = 0;
    governor_degraded_full_solve = 0;
    governor_exhaustions = 0;
    refill_failures = 0;
    sat_conflicts = 0;
    sat_learned = 0;
    sat_restarts = 0;
    sat_propagations = 0;
    sat_fallbacks = 0;
    submit_latency = Obs.Histogram.create ();
    accept_latency = Obs.Histogram.create ();
    reject_latency = Obs.Histogram.create ();
    overload_latency = Obs.Histogram.create ();
    ground_latency = Obs.Histogram.create ();
    read_latency = Obs.Histogram.create ();
    cache_stats = Solver.Cache.fresh_stats ();
    solver_stats = Solver.Backtrack.fresh_stats ();
  }

let reset m =
  m.submitted <- 0;
  m.committed <- 0;
  m.rejected <- 0;
  m.overloaded <- 0;
  m.grounded <- 0;
  m.forced_groundings <- 0;
  m.reads <- 0;
  m.writes <- 0;
  m.writes_rejected <- 0;
  m.partition_merges <- 0;
  m.governor_retries <- 0;
  m.governor_degraded_full_solve <- 0;
  m.governor_exhaustions <- 0;
  m.refill_failures <- 0;
  m.sat_conflicts <- 0;
  m.sat_learned <- 0;
  m.sat_restarts <- 0;
  m.sat_propagations <- 0;
  m.sat_fallbacks <- 0;
  Obs.Histogram.reset m.submit_latency;
  Obs.Histogram.reset m.accept_latency;
  Obs.Histogram.reset m.reject_latency;
  Obs.Histogram.reset m.overload_latency;
  Obs.Histogram.reset m.ground_latency;
  Obs.Histogram.reset m.read_latency;
  m.cache_stats.Solver.Cache.extensions <- 0;
  m.cache_stats.Solver.Cache.extension_hits <- 0;
  m.cache_stats.Solver.Cache.full_solves <- 0;
  m.cache_stats.Solver.Cache.invalidations <- 0;
  m.solver_stats.Solver.Backtrack.nodes <- 0;
  m.solver_stats.Solver.Backtrack.candidates <- 0;
  m.solver_stats.Solver.Backtrack.backtracks <- 0;
  m.solver_stats.Solver.Backtrack.propagations <- 0

let timed accumulate f =
  let start = Obs.Mclock.now_ns () in
  let finally () = accumulate (Obs.Mclock.elapsed_s start) in
  Fun.protect ~finally f

let observe histogram f = timed (Obs.Histogram.observe histogram) f

let time_submit m = Obs.Histogram.sum m.submit_latency
let time_ground m = Obs.Histogram.sum m.ground_latency
let time_read m = Obs.Histogram.sum m.read_latency

let pp fmt m =
  Format.fprintf fmt
    "@[<v>submitted=%d committed=%d rejected=%d overloaded=%d grounded=%d forced=%d@,\
     reads=%d writes=%d writes_rejected=%d merges=%d@,\
     governor: retries=%d degraded_full=%d exhaustions=%d refill_failures=%d@,\
     t_submit=%.3fs t_ground=%.3fs t_read=%.3fs@,\
     cache: ext=%d hit=%d full=%d inval=%d@,\
     solver: nodes=%d cand=%d back=%d@,\
     sat: conflicts=%d learned=%d restarts=%d props=%d fallbacks=%d@]"
    m.submitted m.committed m.rejected m.overloaded m.grounded m.forced_groundings m.reads
    m.writes m.writes_rejected m.partition_merges m.governor_retries
    m.governor_degraded_full_solve m.governor_exhaustions m.refill_failures (time_submit m)
    (time_ground m) (time_read m)
    m.cache_stats.Solver.Cache.extensions m.cache_stats.Solver.Cache.extension_hits
    m.cache_stats.Solver.Cache.full_solves m.cache_stats.Solver.Cache.invalidations
    m.solver_stats.Solver.Backtrack.nodes m.solver_stats.Solver.Backtrack.candidates
    m.solver_stats.Solver.Backtrack.backtracks m.sat_conflicts m.sat_learned m.sat_restarts
    m.sat_propagations m.sat_fallbacks

(* Fold another engine's metrics into [into] — the harness aggregates the
   per-run engines it creates into one sink for telemetry export. *)
let merge ~into m =
  into.submitted <- into.submitted + m.submitted;
  into.committed <- into.committed + m.committed;
  into.rejected <- into.rejected + m.rejected;
  into.overloaded <- into.overloaded + m.overloaded;
  into.grounded <- into.grounded + m.grounded;
  into.forced_groundings <- into.forced_groundings + m.forced_groundings;
  into.reads <- into.reads + m.reads;
  into.writes <- into.writes + m.writes;
  into.writes_rejected <- into.writes_rejected + m.writes_rejected;
  into.partition_merges <- into.partition_merges + m.partition_merges;
  into.governor_retries <- into.governor_retries + m.governor_retries;
  into.governor_degraded_full_solve <-
    into.governor_degraded_full_solve + m.governor_degraded_full_solve;
  into.governor_exhaustions <- into.governor_exhaustions + m.governor_exhaustions;
  into.refill_failures <- into.refill_failures + m.refill_failures;
  into.sat_conflicts <- into.sat_conflicts + m.sat_conflicts;
  into.sat_learned <- into.sat_learned + m.sat_learned;
  into.sat_restarts <- into.sat_restarts + m.sat_restarts;
  into.sat_propagations <- into.sat_propagations + m.sat_propagations;
  into.sat_fallbacks <- into.sat_fallbacks + m.sat_fallbacks;
  Obs.Histogram.merge ~into:into.submit_latency m.submit_latency;
  Obs.Histogram.merge ~into:into.accept_latency m.accept_latency;
  Obs.Histogram.merge ~into:into.reject_latency m.reject_latency;
  Obs.Histogram.merge ~into:into.overload_latency m.overload_latency;
  Obs.Histogram.merge ~into:into.ground_latency m.ground_latency;
  Obs.Histogram.merge ~into:into.read_latency m.read_latency;
  into.cache_stats.Solver.Cache.extensions <-
    into.cache_stats.Solver.Cache.extensions + m.cache_stats.Solver.Cache.extensions;
  into.cache_stats.Solver.Cache.extension_hits <-
    into.cache_stats.Solver.Cache.extension_hits + m.cache_stats.Solver.Cache.extension_hits;
  into.cache_stats.Solver.Cache.full_solves <-
    into.cache_stats.Solver.Cache.full_solves + m.cache_stats.Solver.Cache.full_solves;
  into.cache_stats.Solver.Cache.invalidations <-
    into.cache_stats.Solver.Cache.invalidations + m.cache_stats.Solver.Cache.invalidations;
  Solver.Backtrack.add_stats ~into:into.solver_stats m.solver_stats

(* Registry snapshot for the exporters: counters are copied, histograms
   are installed by reference (so a held registry stays live). *)
let snapshot m =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.set_counter reg in
  c "qdb.submitted" m.submitted;
  c "qdb.committed" m.committed;
  c "qdb.rejected" m.rejected;
  c "qdb.admission.overloaded" m.overloaded;
  c "qdb.grounded" m.grounded;
  c "qdb.forced_groundings" m.forced_groundings;
  c "qdb.reads" m.reads;
  c "qdb.writes" m.writes;
  c "qdb.writes_rejected" m.writes_rejected;
  c "qdb.partition_merges" m.partition_merges;
  c "qdb.governor.retries" m.governor_retries;
  c "qdb.governor.degraded_full_solve" m.governor_degraded_full_solve;
  c "qdb.governor.exhaustions" m.governor_exhaustions;
  c "qdb.governor.refill_failures" m.refill_failures;
  c "cache.extensions" m.cache_stats.Solver.Cache.extensions;
  c "cache.extension_hits" m.cache_stats.Solver.Cache.extension_hits;
  c "cache.full_solves" m.cache_stats.Solver.Cache.full_solves;
  c "cache.invalidations" m.cache_stats.Solver.Cache.invalidations;
  c "solver.nodes" m.solver_stats.Solver.Backtrack.nodes;
  c "solver.candidates" m.solver_stats.Solver.Backtrack.candidates;
  c "solver.backtracks" m.solver_stats.Solver.Backtrack.backtracks;
  c "solver.propagations" m.solver_stats.Solver.Backtrack.propagations;
  c "sat.conflicts" m.sat_conflicts;
  c "sat.learned" m.sat_learned;
  c "sat.restarts" m.sat_restarts;
  c "sat.propagations" m.sat_propagations;
  c "sat.fallbacks" m.sat_fallbacks;
  Obs.Registry.set_histogram reg "qdb.submit.latency" m.submit_latency;
  Obs.Registry.set_histogram reg "qdb.submit.accept_latency" m.accept_latency;
  Obs.Registry.set_histogram reg "qdb.submit.reject_latency" m.reject_latency;
  Obs.Registry.set_histogram reg "qdb.submit.overload_latency" m.overload_latency;
  Obs.Registry.set_histogram reg "qdb.ground.latency" m.ground_latency;
  Obs.Registry.set_histogram reg "qdb.read.latency" m.read_latency;
  reg

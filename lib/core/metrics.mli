(** Engine-level counters and latency histograms — the raw material of
    the experiment harness (Figures 5, 7, 8) and the telemetry exporters.

    Latencies are per-operation log-bucketed histograms timed on the
    monotonic clock; the old flat accumulators survive as the derived
    sums {!time_submit}/{!time_ground}/{!time_read}. *)

type t = {
  mutable submitted : int;
  mutable committed : int;
  mutable rejected : int;
  mutable overloaded : int;
      (** admissions refused on budget exhaustion, not semantics *)
  mutable grounded : int;
  mutable forced_groundings : int;  (** k-pressure or read-induced *)
  mutable reads : int;
  mutable writes : int;
  mutable writes_rejected : int;
  mutable partition_merges : int;
  mutable governor_retries : int;  (** escalated-budget admission re-solves *)
  mutable governor_degraded_full_solve : int;
      (** incremental → full-recompose ladder fallbacks *)
  mutable governor_exhaustions : int;
      (** every budget blowup the ladder absorbed, wherever it was caught *)
  mutable refill_failures : int;
      (** cache-refill fan-outs abandoned after a job failure *)
  mutable sat_conflicts : int;
      (** CDCL session counters, synced after every SAT admission check
          (cumulative across session rebuilds) *)
  mutable sat_learned : int;
  mutable sat_restarts : int;
  mutable sat_propagations : int;
  mutable sat_fallbacks : int;
      (** SAT-backend checks that fell back to the search solver *)
  submit_latency : Obs.Histogram.t;  (** seconds, one observation per submit *)
  accept_latency : Obs.Histogram.t;  (** submit latency split by outcome... *)
  reject_latency : Obs.Histogram.t;
  overload_latency : Obs.Histogram.t;
  ground_latency : Obs.Histogram.t;  (** per grounding call *)
  read_latency : Obs.Histogram.t;  (** per read *)
  cache_stats : Solver.Cache.stats;
  solver_stats : Solver.Backtrack.stats;
}

val create : unit -> t

val reset : t -> unit
(** Zero every counter, histogram and solver/cache stat in place. *)

val timed : (float -> unit) -> (unit -> 'a) -> 'a
(** [timed accumulate f] runs [f], passing its monotonic-clock duration in
    seconds to [accumulate] even when [f] raises. *)

val observe : Obs.Histogram.t -> (unit -> 'a) -> 'a
(** [observe h f] times [f] into histogram [h] (even when [f] raises). *)

val time_submit : t -> float
(** Total seconds spent in [submit] — the sum of {!t.submit_latency}. *)

val time_ground : t -> float
val time_read : t -> float

val merge : into:t -> t -> unit
(** Fold counters, histograms and solver/cache stats of one engine's
    metrics into another — the harness's per-run aggregation. *)

val snapshot : t -> Obs.Registry.t
(** Registry view for {!Obs.Export}: counters copied, histograms shared
    by reference. *)

val pp : Format.formatter -> t -> unit

(* Independent-set partitioning of pending transactions (Section 4,
   "Quantum State").

   Two pending transactions belong to the same partition when any of their
   atoms unify — the conservative dependence test of the paper.  Each
   partition carries its own composed body, its own solution cache and its
   own transaction order; transactions over disjoint resources (different
   flights) stay in different partitions, which is what keeps admission
   checks small and Figure 7 linear. *)

open Logic

type partition = {
  pid : int;
  mutable txns : Rtxn.t list; (* sequence order: oldest (lowest id) first *)
  mutable formula : Formula.t; (* composed hard body of [txns] *)
  cache : Solver.Cache.t;
}

type t = {
  mutable partitions : partition list;
  mutable next_pid : int;
  cache_stats : Solver.Cache.stats;
  (* recomposition settings, mirrored from the engine config *)
  key_of : Compose.key_resolver;
  check_inserts : bool;
  cache_capacity : int;
}

let create ?(cache_stats = Solver.Cache.fresh_stats ())
    ?(key_of = Compose.whole_tuple_key) ?(check_inserts = true)
    ?(cache_capacity = Solver.Cache.default_capacity) () =
  { partitions = []; next_pid = 0; cache_stats; key_of; check_inserts; cache_capacity }

let partitions t = t.partitions
let pending_count t = List.fold_left (fun n p -> n + List.length p.txns) 0 t.partitions
let all_pending t = List.concat_map (fun p -> p.txns) t.partitions

let find_txn t id =
  List.find_map
    (fun p ->
      List.find_map (fun txn -> if txn.Rtxn.id = id then Some (p, txn) else None) p.txns)
    t.partitions

let fresh_partition t txns formula =
  let p =
    {
      pid = t.next_pid;
      txns;
      formula;
      cache = Solver.Cache.create ~stats:t.cache_stats ~capacity:t.cache_capacity ();
    }
  in
  t.next_pid <- t.next_pid + 1;
  p

let depends txn p =
  let atoms = Rtxn.dependence_atoms txn in
  List.exists (fun other -> Unify.any_unifiable atoms (Rtxn.dependence_atoms other)) p.txns

(* Partitions the new transaction touches, and the rest. *)
let split_dependent t txn = List.partition (depends txn) t.partitions

(* Merge partitions into a single transaction sequence ordered by admission
   id (= arrival order), with the conjoined formula.  Cross-clauses between
   formerly independent partitions are all vacuous, so conjunction is exact
   — asserted by the test suite against a from-scratch recomposition. *)
let merge_witnesses parts =
  List.fold_left
    (fun acc p ->
      match Solver.Cache.witness p.cache with
      | Some w ->
        Option.map
          (fun acc ->
            List.fold_left (fun acc (v, term) -> Subst.bind v term acc) acc (Subst.bindings w))
          acc
      | None -> None)
    (Some Subst.empty) parts

let merged_view parts =
  let txns =
    List.sort
      (fun a b -> Int.compare a.Rtxn.id b.Rtxn.id)
      (List.concat_map (fun p -> p.txns) parts)
  in
  let formula = Formula.and_ (List.map (fun p -> p.formula) parts) in
  (txns, formula)

(* Install a new partition holding [txns]/[formula], replacing [old_parts];
   carries over a merged witness when every constituent had one. *)
let replace t old_parts txns formula witness =
  let keep = List.filter (fun p -> not (List.memq p old_parts)) t.partitions in
  let p = fresh_partition t txns formula in
  (match witness with
   | Some w -> Solver.Cache.set_witness p.cache w
   | None -> ());
  t.partitions <- p :: keep;
  p

let remove_partition t p = t.partitions <- List.filter (fun q -> not (q == p)) t.partitions

(* After grounding removed transactions from [p], re-partition the
   remainder into independent sets (a grounded transaction may have been
   the only bridge between two groups). *)
let resplit t p =
  remove_partition t p;
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"qdb"
      ~args:[ ("partition", Obs.Trace.Int p.pid); ("txns", Obs.Trace.Int (List.length p.txns)) ]
      "qdb.partition_resplit";
  let groups : Rtxn.t list list ref = ref [] in
  List.iter
    (fun txn ->
      let atoms = Rtxn.dependence_atoms txn in
      let linked, free =
        List.partition
          (fun group ->
            List.exists
              (fun other -> Unify.any_unifiable atoms (Rtxn.dependence_atoms other))
              group)
          !groups
      in
      groups := (txn :: List.concat linked) :: free)
    p.txns;
  let witness = Solver.Cache.witness p.cache in
  List.map
    (fun group ->
      let txns = List.sort (fun a b -> Int.compare a.Rtxn.id b.Rtxn.id) group in
      let formula =
        Compose.body_of_sequence ~check_inserts:t.check_inserts ~key_of:t.key_of txns
      in
      let q = fresh_partition t txns formula in
      (match witness with
       | Some w ->
         let vars =
           List.fold_left
             (fun acc txn -> Term.Var_set.union acc (Rtxn.all_vars txn))
             Term.Var_set.empty txns
         in
         Solver.Cache.set_witness q.cache (Subst.restrict vars w)
       | None -> ());
      t.partitions <- q :: t.partitions;
      q)
    !groups

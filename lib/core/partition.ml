(* Independent-set partitioning of pending transactions (Section 4,
   "Quantum State").

   Two pending transactions belong to the same partition when any of their
   atoms unify — the conservative dependence test of the paper.  Each
   partition carries its own composed body, its own solution cache and its
   own transaction order; transactions over disjoint resources (different
   flights) stay in different partitions, which is what keeps admission
   checks small and Figure 7 linear.

   A txn-id → partition hash table mirrors the partition lists, giving
   O(1) [find_txn] / [pending_count] instead of nested list walks; every
   membership change must therefore go through this module ([set_txns],
   [replace], [remove_partition], [resplit]). *)

open Logic

type partition = {
  pid : int;
  mutable txns : Rtxn.t list; (* sequence order: oldest (lowest id) first *)
  mutable body : Compose.Inc.t; (* composed hard body of [txns], chunk per txn *)
  cache : Solver.Cache.t;
}

let formula p = Compose.Inc.formula p.body
let composed_clauses p = Compose.Inc.clause_count p.body

(* Immutable snapshot of a partition for read-only solver work on a
   worker domain: nothing a concurrent main-thread mutation can pull out
   from under the solve. *)
type frozen = {
  f_pid : int;
  f_txns : Rtxn.t list;
  f_formula : Formula.t;
  f_witnesses : Subst.t list;
}

type t = {
  mutable partitions : partition list;
  mutable next_pid : int;
  by_txn : (int, partition) Hashtbl.t; (* txn id -> owning partition *)
  cache_stats : Solver.Cache.stats;
  solver_stats : Solver.Backtrack.stats option; (* shared with partition caches *)
  (* recomposition settings, mirrored from the engine config *)
  key_of : Compose.key_resolver;
  check_inserts : bool;
  cache_capacity : int;
}

let create ?(cache_stats = Solver.Cache.fresh_stats ()) ?solver_stats
    ?(key_of = Compose.whole_tuple_key) ?(check_inserts = true)
    ?(cache_capacity = Solver.Cache.default_capacity) () =
  {
    partitions = [];
    next_pid = 0;
    by_txn = Hashtbl.create 64;
    cache_stats;
    solver_stats;
    key_of;
    check_inserts;
    cache_capacity;
  }

let partitions t = t.partitions
let pending_count t = Hashtbl.length t.by_txn
let all_pending t = List.concat_map (fun p -> p.txns) t.partitions

let find_txn t id =
  match Hashtbl.find_opt t.by_txn id with
  | None -> None
  | Some p ->
    (* The partition's own sequence is short (k-bounded). *)
    List.find_map (fun txn -> if txn.Rtxn.id = id then Some (p, txn) else None) p.txns

let register t p = List.iter (fun txn -> Hashtbl.replace t.by_txn txn.Rtxn.id p) p.txns
let unregister t p = List.iter (fun txn -> Hashtbl.remove t.by_txn txn.Rtxn.id) p.txns

(* The only sanctioned way to change a partition's membership: keeps the
   id → partition table in sync. *)
let set_txns t p txns =
  unregister t p;
  p.txns <- txns;
  register t p

(* The admission success path and recovery share one append: the
   sequence extension and the chunk-cache extension move together, so
   the id table, the transaction order and the composed body can never
   disagree about what was admitted. *)
let append_txn t p txn ~new_clauses =
  set_txns t p (p.txns @ [ txn ]);
  Compose.Inc.extend p.body new_clauses

let freeze p =
  {
    f_pid = p.pid;
    f_txns = p.txns;
    f_formula = formula p;
    f_witnesses = Solver.Cache.witnesses p.cache;
  }

let fresh_partition t txns body =
  let p =
    {
      pid = t.next_pid;
      txns;
      body;
      cache =
        Solver.Cache.create ~stats:t.cache_stats ?solver_stats:t.solver_stats
          ~capacity:t.cache_capacity ();
    }
  in
  t.next_pid <- t.next_pid + 1;
  register t p;
  p

let depends txn p =
  let atoms = Rtxn.dependence_atoms txn in
  List.exists (fun other -> Unify.any_unifiable atoms (Rtxn.dependence_atoms other)) p.txns

(* Partitions the new transaction touches, and the rest. *)
let split_dependent t txn = List.partition (depends txn) t.partitions

(* Merge partitions into a single transaction sequence ordered by admission
   id (= arrival order), with the conjoined formula.  Cross-clauses between
   formerly independent partitions are all vacuous, so conjunction is exact
   — asserted by the test suite against a from-scratch recomposition. *)
let merge_witnesses parts =
  List.fold_left
    (fun acc p ->
      match Solver.Cache.witness p.cache with
      | Some w ->
        Option.map
          (fun acc ->
            List.fold_left (fun acc (v, term) -> Subst.bind v term acc) acc (Subst.bindings w))
          acc
      | None -> None)
    (Some Subst.empty) parts

let merged_view parts =
  let txns =
    List.sort
      (fun a b -> Int.compare a.Rtxn.id b.Rtxn.id)
      (List.concat_map (fun p -> p.txns) parts)
  in
  let body = Compose.Inc.merge (List.map (fun p -> p.body) parts) in
  (txns, body)

(* Install a new partition holding [txns]/[body], replacing [old_parts];
   carries over a merged witness when every constituent had one. *)
let replace t old_parts txns body witness =
  let keep = List.filter (fun p -> not (List.memq p old_parts)) t.partitions in
  List.iter (unregister t) old_parts;
  let p = fresh_partition t txns body in
  (match witness with
   | Some w -> Solver.Cache.set_witness p.cache w
   | None -> ());
  t.partitions <- p :: keep;
  p

let remove_partition t p =
  unregister t p;
  t.partitions <- List.filter (fun q -> not (q == p)) t.partitions

(* After grounding removed transactions from [p], re-partition the
   remainder into independent sets (a grounded transaction may have been
   the only bridge between two groups). *)
let resplit t p =
  remove_partition t p;
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"qdb"
      ~args:[ ("partition", Obs.Trace.Int p.pid); ("txns", Obs.Trace.Int (List.length p.txns)) ]
      "qdb.partition_resplit";
  let groups : Rtxn.t list list ref = ref [] in
  List.iter
    (fun txn ->
      let atoms = Rtxn.dependence_atoms txn in
      let linked, free =
        List.partition
          (fun group ->
            List.exists
              (fun other -> Unify.any_unifiable atoms (Rtxn.dependence_atoms other))
              group)
          !groups
      in
      groups := (txn :: List.concat linked) :: free)
    p.txns;
  let witness = Solver.Cache.witness p.cache in
  List.map
    (fun group ->
      let txns = List.sort (fun a b -> Int.compare a.Rtxn.id b.Rtxn.id) group in
      let body = Compose.Inc.compose ~check_inserts:t.check_inserts ~key_of:t.key_of txns in
      let q = fresh_partition t txns body in
      (match witness with
       | Some w ->
         let vars =
           List.fold_left
             (fun acc txn -> Term.Var_set.union acc (Rtxn.all_vars txn))
             Term.Var_set.empty txns
         in
         Solver.Cache.set_witness q.cache (Subst.restrict vars w)
       | None -> ());
      t.partitions <- q :: t.partitions;
      q)
    !groups

(** Independent-set partitioning of pending transactions: the "Quantum
    State" organisation of the paper's prototype.  Each partition owns a
    transaction sequence, its composed body and a solution cache. *)

type partition = {
  pid : int;
  mutable txns : Rtxn.t list;
      (** sequence order, oldest first.  Mutate only through
          {!set_txns} — an id → partition table mirrors membership. *)
  mutable body : Compose.Inc.t;
      (** composed hard body, one clause chunk per transaction; admission
          extends it in place ({!Compose.Inc.extend}) and the invalidation
          paths (ground / abort / blind write) swap in a fresh
          composition. *)
  cache : Solver.Cache.t;
}

val formula : partition -> Logic.Formula.t
(** The flattened composed body (memoized by the chunk cache). *)

val composed_clauses : partition -> int
(** Top-level clause count of the composed body (observability gauge). *)

type frozen = {
  f_pid : int;
  f_txns : Rtxn.t list;
  f_formula : Logic.Formula.t;
  f_witnesses : Logic.Subst.t list;
}
(** Immutable snapshot for read-only solver work on a worker domain. *)

type t

val create :
  ?cache_stats:Solver.Cache.stats ->
  ?solver_stats:Solver.Backtrack.stats ->
  ?key_of:Compose.key_resolver ->
  ?check_inserts:bool ->
  ?cache_capacity:int ->
  unit ->
  t
(** [solver_stats], when given, is shared with every partition cache so
    engine-level telemetry sees cache-path solver work. *)

val partitions : t -> partition list

val pending_count : t -> int
(** O(1): size of the maintained id → partition table. *)

val all_pending : t -> Rtxn.t list

val find_txn : t -> int -> (partition * Rtxn.t) option
(** O(1) partition lookup through the id table (plus a scan of that
    partition's short, k-bounded sequence). *)

val set_txns : t -> partition -> Rtxn.t list -> unit
(** Replace a partition's transaction sequence, keeping the id table in
    sync.  The only sanctioned way to change membership from outside. *)

val append_txn : t -> partition -> Rtxn.t -> new_clauses:Logic.Formula.t -> unit
(** Append an admitted transaction: extend the sequence (via
    {!set_txns}) and the composed chunk cache together.  [new_clauses]
    must be the delta composition of the transaction against the
    partition's current sequence. *)

val freeze : partition -> frozen

val depends : Rtxn.t -> partition -> bool
(** Conservative: any atom of the transaction unifies with any atom of a
    partition member. *)

val split_dependent : t -> Rtxn.t -> partition list * partition list

val merged_view : partition list -> Rtxn.t list * Compose.Inc.t
(** Transactions of all parts in admission order, with the merged chunk
    cache (concatenation is exact, because the parts were independent). *)

val merge_witnesses : partition list -> Logic.Subst.t option
(** Union of the cached witnesses; [None] when any part lacks one. *)

val replace :
  t -> partition list -> Rtxn.t list -> Compose.Inc.t -> Logic.Subst.t option -> partition
(** Swap [old_parts] for a single fresh partition. *)

val remove_partition : t -> partition -> unit

val resplit : t -> partition -> partition list
(** Re-partition a partition's transactions into independent sets after
    groundings removed members; recomposes each group's body and projects
    the witness onto it. *)

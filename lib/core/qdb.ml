(* The quantum database engine (Sections 3 and 4).

   A quantum database is an extensional store plus an ordered set of
   pending (committed, not yet grounded) resource transactions, organised
   into independent partitions.  The engine maintains the invariant that
   every partition's composed body is satisfiable over the current
   extensional database — equivalently, that the represented set of
   possible worlds is nonempty — and transforms the state on:

   - [submit]: admission-check a new resource transaction (Section 3.2.1),
   - [read]: answer a query, collapsing impacted pending transactions
     under the chosen read policy (Section 3.2.2),
   - [write]: admission-check a blind external write (Section 3.2.2),
   - [ground]: fix value assignments under strict or semantic
     serializability (Section 3.2.3).

   Durability follows the prototype (Section 4): pending transactions are
   serialized into a [__pending_xacts] table before the commit is
   acknowledged, and groundings delete their entry in the same atomic
   batch as their updates. *)

module Database = Relational.Database
module Store = Relational.Store
module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Sexp = Relational.Sexp
open Logic

let log_src = Logs.Src.create "quantum.qdb" ~doc:"Quantum database engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type serializability =
  | Strict (* ground in arrival order: classical serializability *)
  | Semantic (* reorder-to-front when the reordered body stays satisfiable *)

type read_policy =
  | Collapse (* fix impacted values at read time (the paper's choice) *)
  | Peek (* answer from the current witness without fixing anything *)
  | Expose (* return answers across (a sample of) possible worlds *)

type solver_backend =
  | Backtracking (* dynamic-order search with solution cache (default) *)
  | Limit_one_plan of int (* static plans with bounded optimizer lookahead *)
  | Sat_backend (* CNF encoding + DPLL (Section 6 ablation) *)

type config = {
  k : int; (* max pending transactions per partition *)
  serializability : serializability;
  read_policy : read_policy;
  backend : solver_backend;
  check_inserts : bool;
  node_limit : int;
  adaptive : bool; (* phase-transition-aware forced grounding *)
  adaptive_slack : float; (* min resources-per-pending-delete before fixing *)
  cache_capacity : int; (* witnesses per partition (Section 4's multi-solution strategy) *)
  incremental : bool;
  (* delta-composed, witness-seeded admission (default).  [false] is the
     from-scratch ablation: recompose the whole sequence and solve it
     unseeded on every admission — the pre-incremental cost profile the
     admission bench compares against. *)
  governor : Governor.t;
  (* per-admission budget + degradation ladder.  The default inherits
     [node_limit] and has no deadline, reproducing the engine's
     historical behaviour except that budget exhaustion now degrades
     instead of escaping as a raw solver exception. *)
}

let default_config =
  {
    k = 61; (* the prototype's MySQL join ceiling *)
    serializability = Semantic;
    read_policy = Collapse;
    backend = Backtracking;
    check_inserts = true;
    node_limit = Solver.Backtrack.default_node_limit;
    adaptive = false;
    adaptive_slack = 1.5;
    cache_capacity = Solver.Cache.default_capacity;
    incremental = true;
    governor = Governor.default;
  }

let pending_table_name = "__pending_xacts"

type grounding = {
  txn : Rtxn.t;
  valuation : Logic.Subst.t;
  optional_satisfied : bool array;
}

type t = {
  store : Store.t;
  parts : Partition.t;
  config : config;
  metrics : Metrics.t;
  (* Domain pool for partition-level solver fan-out (cache refills,
     blind-write re-checks).  [None] or a size-1 pool runs the same job
     plans inline — one code path, so 1-domain and N-domain executions
     are deterministic replicas of each other. *)
  pool : Par.Pool.t option;
  mutable next_id : int;
  (* observer invoked for every grounding, wherever it was triggered
     (explicit, read-induced, partner arrival, k-pressure) — the paper's
     optional second notification that values have been assigned. *)
  mutable ground_hook : (grounding -> unit) option;
  (* chaos hook (fault-injection harness): invoked on the worker before
     every fan-out job with a deterministic (kind, fanout seq, job index)
     coordinate; raising poisons that job.  [None] in production. *)
  mutable fault_injector : (kind:string -> fanout:int -> job:int -> unit) option;
  mutable fanout_seq : int;
  (* Incremental CDCL session for the SAT backend, created on first use:
     one per engine, so encoded chunks and learned clauses survive across
     admissions instead of re-encoding the composed body from scratch. *)
  mutable sat_session : Sat.Inc.t option;
}

type commit_result =
  | Committed of int
  | Rejected of string
  | Overloaded of string

exception Inconsistent of string

exception Engine_overloaded of string
(* A grounding solve ran out of budget even after escalation.  Distinct
   from [Inconsistent]: the composed body is satisfiable by invariant —
   the engine could not afford to re-prove it, not disprove it. *)

let inconsistent fmt = Format.kasprintf (fun msg -> raise (Inconsistent msg)) fmt

let db t = Store.db t.store
let metrics t = t.metrics
let config t = t.config
let pending_count t = Partition.pending_count t.parts
let pending t = Partition.all_pending t.parts
let partition_count t = List.length (Partition.partitions t.parts)

(* Per-partition (pending count, composed-body statistics) — the joins a
   LIMIT-1 compilation of each invariant check would need; the prototype's
   MySQL backend capped these at 61. *)
let partition_stats t =
  List.map
    (fun p -> (List.length p.Partition.txns, Formula.stats (Partition.formula p)))
    (Partition.partitions t.parts)

let composed_clause_total t =
  List.fold_left
    (fun n p -> n + Partition.composed_clauses p)
    0
    (Partition.partitions t.parts)

let max_partition_size t =
  List.fold_left
    (fun m p -> max m (List.length p.Partition.txns))
    0
    (Partition.partitions t.parts)

let pending_schema =
  Schema.make ~name:pending_table_name
    ~columns:[ Schema.column "id" Value.Tint; Schema.column "payload" Value.Tstr ]
    ~key:[ "id" ] ()

(* Key resolver backed by the live catalog, so composition emits
   key-accurate insert-safety and delete-freeing predicates. *)
let key_resolver store rel =
  match Store.find_table store rel with
  | Some table -> Some (Schema.key_indices (Relational.Table.schema table))
  | None -> None

let create ?(config = default_config) ?pool store =
  (match Store.find_table store pending_table_name with
   | Some _ -> ()
   | None -> ignore (Store.create_table store pending_schema));
  let metrics = Metrics.create () in
  {
    store;
    parts =
      Partition.create ~cache_stats:metrics.Metrics.cache_stats
        ~solver_stats:metrics.Metrics.solver_stats ~key_of:(key_resolver store)
        ~check_inserts:config.check_inserts ~cache_capacity:config.cache_capacity ();
    config;
    metrics;
    pool;
    next_id = 0;
    ground_hook = None;
    fault_injector = None;
    fanout_seq = 0;
    sat_session = None;
  }

(* Fan a list of pure compute jobs across the domain pool (inline without
   one).  Results come back in input order either way. *)
let pool_map t f xs =
  match t.pool with
  | Some pool when Par.Pool.size pool > 1 -> Par.Pool.map pool f xs
  | Some _ | None -> List.map f xs

(* Chaos-instrumented fan-out: with an injector installed, every job is
   preceded by an injector call keyed on a deterministic coordinate —
   the fan-out sequence number (assigned here, on the orchestrating
   thread) and the job's input-order index.  Decisions made from these
   coordinates are identical at any domain count, and an injected raise
   rides the pool's exception plumbing exactly like a real worker
   crash. *)
let pool_map_injectable t ~kind f xs =
  match t.fault_injector with
  | None -> pool_map t f xs
  | Some inject ->
    let fanout = t.fanout_seq in
    t.fanout_seq <- t.fanout_seq + 1;
    let indexed = List.mapi (fun i x -> (i, x)) xs in
    pool_map t
      (fun (i, x) ->
        inject ~kind ~fanout ~job:i;
        f x)
      indexed

let set_fault_injector t inject = t.fault_injector <- Some inject
let clear_fault_injector t = t.fault_injector <- None

let pending_row txn =
  Tuple.of_list
    [ Value.Int txn.Rtxn.id; Value.Str (Sexp.to_string (Rtxn.to_sexp txn)) ]

(* -- Solver dispatch ------------------------------------------------------ *)

(* Three-way admission verdict: budget exhaustion is structurally
   distinct from unsatisfiability, so it can never masquerade as a
   semantic rejection. *)
type check_verdict =
  | Check_sat of Logic.Subst.t
  | Check_unsat
  | Check_overload of string

(* Conflict budget for the CDCL backend, derived from the same node
   budget the governor escalates for the search solver: one conflict
   (propagate-analyze-learn-backjump) is worth roughly 64 search nodes of
   work, floored so even a squeezed budget lets the solver move. *)
let sat_conflict_limit node_limit =
  if node_limit >= max_int / 64 then max_int else max 16 (node_limit / 64)

let sat_session t ~charge =
  match t.sat_session with
  | Some s -> s
  | None ->
    let s = Sat.Inc.create ?budget:(Governor.sat_budget charge) () in
    t.sat_session <- Some s;
    s

(* Mirror the session's cumulative counters into the engine metrics after
   every SAT check (absolute copy: one session per engine). *)
let sync_sat_metrics t =
  match t.sat_session with
  | None -> ()
  | Some s ->
    let st = Sat.Inc.stats s in
    t.metrics.Metrics.sat_conflicts <- st.Sat.Cdcl.conflicts;
    t.metrics.Metrics.sat_learned <- st.Sat.Cdcl.learned;
    t.metrics.Metrics.sat_restarts <- st.Sat.Cdcl.restarts;
    t.metrics.Metrics.sat_propagations <- st.Sat.Cdcl.propagations

(* Admission check through the configured backend, under the governor's
   budget and degradation ladder.  The backtracking backend goes through
   the partition's solution cache: each cached witness is tried as a seed
   over just the new transaction's clauses (the unaffected pending
   transactions stay pinned), and only when every extension fails does it
   force [full_formula] for an unseeded re-solve — so acceptance
   decisions match the from-scratch path exactly, while extension hits
   never flatten the whole body.  The SAT backend keeps a persistent CDCL
   session: per-transaction chunks are encoded once and solved under
   activation literals, so learned clauses survive across admissions and
   the hot path touches neither the flattened body nor a fresh encoding
   (the non-incremental configuration runs the from-scratch
   encode-and-DPLL ablation instead).

   On exhaustion the ladder climbs: bounded escalated retries of the
   incremental solve (deterministic jittered backoff between rungs),
   then one degraded full-recompose solve at the next escalation rung,
   then [Check_overload] — nothing is mutated along the way. *)
let check_admission t (p : Partition.partition) ~gov ~salt ~txn ~new_clauses ~full_formula =
  let database = db t in
  let charge = Governor.arm gov in
  let deadline_ns = Governor.deadline charge in
  let exhausted reason =
    t.metrics.Metrics.governor_exhaustions <- t.metrics.Metrics.governor_exhaustions + 1;
    if Obs.Trace.on () then
      Obs.Trace.instant ~cat:"governor"
        ~args:[ ("partition", Obs.Trace.Int p.Partition.pid); ("reason", Obs.Trace.Str reason) ]
        "governor.exhausted";
    reason
  in
  let full_solve ~node_limit () =
    Solver.Cache.solve_full ~node_limit ?deadline_ns p.Partition.cache database
      (Lazy.force full_formula)
  in
  (* Generic governor ladder: [attempt retry] is one bounded solve through
     some backend, [None] meaning the backend cannot represent the body —
     the climb aborts and the caller picks a fallback.  The degraded rung
     is always an unseeded full-recompose search solve, the engine's
     completeness escape hatch whatever backend exhausted. *)
  let climb attempt =
    let rec go retry =
      match attempt retry with
      | None -> None
      | Some (Solver.Cache.Sat w) -> Some (Check_sat w)
      | Some Solver.Cache.Unsat -> Some Check_unsat
      | Some (Solver.Cache.Exhausted reason) ->
        let reason = exhausted reason in
        if Governor.expired charge then Some (Check_overload reason)
        else if retry < Governor.max_retries charge then begin
          t.metrics.Metrics.governor_retries <- t.metrics.Metrics.governor_retries + 1;
          Governor.backoff charge ~salt ~retry;
          go (retry + 1)
        end
        else begin
          (* Last rung before refusing: one unseeded full-recompose solve
             with a further-escalated budget.  For the non-incremental
             ablation this is just one more escalation of the same solve. *)
          t.metrics.Metrics.governor_degraded_full_solve <-
            t.metrics.Metrics.governor_degraded_full_solve + 1;
          let node_limit =
            Governor.node_budget charge ~default_limit:t.config.node_limit ~retry:(retry + 1)
          in
          Some
            (match full_solve ~node_limit () with
            | Solver.Cache.Sat w -> Check_sat w
            | Solver.Cache.Unsat -> Check_unsat
            | Solver.Cache.Exhausted reason -> Check_overload (exhausted reason))
        end
    in
    go 0
  in
  let ladder ~incremental =
    match
      climb (fun retry ->
          let node_limit =
            Governor.node_budget charge ~default_limit:t.config.node_limit ~retry
          in
          Some
            (if incremental then
               Solver.Cache.try_extend ~node_limit ?deadline_ns p.Partition.cache database
                 ~new_clauses ~full_formula
             else full_solve ~node_limit ()))
    with
    | Some verdict -> verdict
    | None -> assert false (* search attempts are total *)
  in
  (* Ladder orchestration is its own flight phase; the solves inside
     account themselves (exclusively) as cache/solve time. *)
  Obs.Flight.time Obs.Flight.Governor @@ fun () ->
  match t.config.backend with
  | Backtracking when not t.config.incremental -> ladder ~incremental:false
  | Backtracking -> ladder ~incremental:true
  | Limit_one_plan depth ->
    (match
       Obs.Flight.time Obs.Flight.Solve (fun () ->
           Solver.Limit_one.solve ~search_depth:depth database (Lazy.force full_formula))
     with
     | Some w ->
       Solver.Cache.set_witness p.Partition.cache w;
       Check_sat w
     | None -> Check_unsat)
  | Sat_backend when t.config.incremental ->
    (* Incremental CDCL: the engine-wide session already holds the prior
       transactions' chunks; only the new chunk is encoded, and the solve
       runs under the live chunks' activation literals with every learned
       clause from earlier admissions still in force. *)
    let session = sat_session t ~charge in
    let chunks = Compose.Inc.chunks p.Partition.body @ [ new_clauses ] in
    let live_vars =
      List.fold_left
        (fun acc tx -> Term.Var_set.union acc (Rtxn.all_vars tx))
        (Rtxn.all_vars txn) p.Partition.txns
    in
    let verdict =
      climb (fun retry ->
          let node_limit =
            Governor.node_budget charge ~default_limit:t.config.node_limit ~retry
          in
          Solver.Cache.check_sat ~conflict_limit:(sat_conflict_limit node_limit) ?deadline_ns
            p.Partition.cache session database ~chunks ~live_vars)
    in
    sync_sat_metrics t;
    (match verdict with
     | Some v -> v
     | None ->
       (* Not SAT-encodable (negative atoms, order constraints, oversized
          equality theory, encode budget): fall back to search so
          admission stays complete. *)
       t.metrics.Metrics.sat_fallbacks <- t.metrics.Metrics.sat_fallbacks + 1;
       ladder ~incremental:true)
  | Sat_backend ->
    (* From-scratch ablation: eager encode of the flattened body plus one
       bounded DPLL run per admission — the pre-CDCL cost profile the SAT
       bench's "dpll" series measures. *)
    let attempt retry =
      let node_limit = Governor.node_budget charge ~default_limit:t.config.node_limit ~retry in
      match
        Obs.Flight.time Obs.Flight.Solve (fun () ->
            Sat.Encode.solve ?budget:(Governor.sat_budget charge) ~node_limit ?deadline_ns
              database (Lazy.force full_formula))
      with
      | Some (Some w) ->
        Solver.Cache.set_witness p.Partition.cache w;
        Some (Solver.Cache.Sat w)
      | Some None -> Some Solver.Cache.Unsat
      | None -> None (* over the encoding budget *)
      | exception Sat.Encode.Unsupported _ -> None
      | exception Sat.Dpll.Too_many_nodes ->
        Some (Solver.Cache.Exhausted "solver node budget exhausted")
      | exception Sat.Dpll.Timed_out ->
        Some (Solver.Cache.Exhausted "admission deadline exceeded")
    in
    (match climb attempt with
     | Some v -> v
     | None ->
       t.metrics.Metrics.sat_fallbacks <- t.metrics.Metrics.sat_fallbacks + 1;
       ladder ~incremental:true)

(* -- Grounding (Section 3.2.3) -------------------------------------------- *)

(* Position-aware soft clauses: the optional obligations of each grounded
   transaction, composed against every *other* transaction in the
   partition (a partner's pending insert must be visible to the adjacency
   optional regardless of arrival order). *)
let soft_units sequence grounded =
  List.concat_map
    (fun txn ->
      let others = List.filter (fun t -> t.Rtxn.id <> txn.Rtxn.id) sequence in
      let units = Compose.soft_clauses_for others txn in
      List.map (fun u -> (txn.Rtxn.id, u)) units)
    grounded

(* Ground the transactions [targets] of partition [p]:
   - Strict: the prefix of the arrival order up to the last target;
   - Semantic: targets move to the front when the reordered composed body
     is still satisfiable, otherwise fall back to Strict.
   Solves the whole partition body with the targets' optionals as soft
   units, applies the grounded transactions' updates (and pending-table
   deletions) in one atomic batch, then recomposes and re-splits the
   remainder. *)
let ground_partition_body t (p : Partition.partition) target_ids =
  let database = db t in
  let is_target txn = List.mem txn.Rtxn.id target_ids in
  let arrival = p.Partition.txns in
  let strict_sequence_and_cut () =
    (* Everything up to the last target grounds too. *)
    let rec last_pos i pos = function
      | [] -> pos
      | txn :: rest -> last_pos (i + 1) (if is_target txn then i else pos) rest
    in
    let cut = last_pos 0 (-1) arrival in
    (arrival, cut + 1)
  in
  (* Seed for re-solves: the cached witness restricted to the variables of
     the transactions that are NOT being grounded.  This pins every
     unaffected transaction to its current planned grounding, so the
     search only ranges over the targets — the incremental behaviour the
     paper's solution cache is for.  An unseeded solve remains the
     fallback (bounded, since near-full states make exhaustive search
     explode). *)
  let others_seed exclude =
    match Solver.Cache.witness p.Partition.cache with
    | None -> None
    | Some w ->
      let keep =
        List.fold_left
          (fun acc txn ->
            if List.exists (fun g -> g.Rtxn.id = txn.Rtxn.id) exclude then acc
            else Term.Var_set.union acc (Rtxn.all_vars txn))
          Term.Var_set.empty arrival
      in
      Some (Subst.restrict keep w)
  in
  (* [precomposed] carries the reordered body forward when reordering
     succeeded, so the hard formula below is not composed a second time. *)
  let sequence, cut, precomposed =
    match t.config.serializability with
    | Strict ->
      let s, c = strict_sequence_and_cut () in
      (s, c, None)
    | Semantic ->
      let targets, others = List.partition is_target arrival in
      let reordered = targets @ others in
      let reordered_body =
        Obs.Flight.time Obs.Flight.Compose (fun () ->
            Compose.body_of_sequence ~check_inserts:t.config.check_inserts
              ~key_of:(key_resolver t.store) reordered)
      in
      let sat seed =
        Obs.Flight.time Obs.Flight.Solve (fun () ->
            Solver.Backtrack.satisfiable ~node_limit:t.config.node_limit ?seed
              ~stats:t.metrics.Metrics.solver_stats database reordered_body)
      in
      let reorder_ok =
        (* Exhaustion here is NOT "reordering is unsatisfiable" — it is a
           counted recovery retry that degrades to strict arrival order,
           the always-available conservative schedule. *)
        let sat_or_degrade seed =
          try sat seed
          with Solver.Backtrack.Too_many_nodes ->
            t.metrics.Metrics.governor_exhaustions <-
              t.metrics.Metrics.governor_exhaustions + 1;
            false
        in
        match others_seed targets with
        | Some seed -> sat_or_degrade (Some seed) || sat_or_degrade None
        | None -> sat_or_degrade None
      in
      if reorder_ok then (reordered, List.length targets, Some reordered_body)
      else
        let s, c = strict_sequence_and_cut () in
        (s, c, None)
  in
  let grounded_txns = List.filteri (fun i _ -> i < cut) sequence in
  let remaining = List.filteri (fun i _ -> i >= cut) sequence in
  if grounded_txns = [] then []
  else begin
    let hard =
      match precomposed with
      | Some f -> f
      | None ->
        Obs.Flight.time Obs.Flight.Compose (fun () ->
            Compose.body_of_sequence ~check_inserts:t.config.check_inserts
              ~key_of:(key_resolver t.store) sequence)
    in
    let soft = soft_units sequence grounded_txns in
    let soft_formulas = List.map snd soft in
    let solve ?seed ?(node_limit = t.config.node_limit) () =
      Obs.Flight.time Obs.Flight.Solve (fun () ->
          Solver.Soft.solve ~node_limit ?seed ~stats:t.metrics.Metrics.solver_stats database
            ~hard ~soft:soft_formulas)
    in
    let all_satisfied o = Solver.Soft.satisfied_count o = List.length soft in
    let exhausted () =
      t.metrics.Metrics.governor_exhaustions <- t.metrics.Metrics.governor_exhaustions + 1
    in
    (* Escalated unseeded budget for when a solve blows its primary
       budget: the partition body is satisfiable by invariant, so running
       out of nodes is a budget problem, never proof of inconsistency. *)
    let escalated_limit =
      Governor.node_budget
        (Governor.arm t.config.governor)
        ~default_limit:t.config.node_limit ~retry:1
    in
    let solve_escalated_or_overload () =
      t.metrics.Metrics.governor_retries <- t.metrics.Metrics.governor_retries + 1;
      try solve ~node_limit:escalated_limit ()
      with Solver.Backtrack.Too_many_nodes ->
        exhausted ();
        raise
          (Engine_overloaded
             (Printf.sprintf "partition %d: grounding solve budget exhausted" p.Partition.pid))
    in
    (* Seeded solve first; when the pinned context blocks some optional,
       retry unseeded with a reduced budget and keep the better outcome.
       A seeded budget blowup (previously an uncaught escape) climbs the
       same ladder as admission: escalated unseeded retry, then a
       structured overload error. *)
    let outcome =
      match others_seed grounded_txns with
      | Some seed ->
        (match
           try `Solved (solve ~seed ())
           with Solver.Backtrack.Too_many_nodes ->
             exhausted ();
             `Blown
         with
         | `Solved (Some seeded) when all_satisfied seeded -> Some seeded
         | `Solved seeded ->
           let unseeded =
             (* Tightly bounded: near-full states make exhaustive optional
                search degenerate into pigeonhole proofs; a failed repair
                attempt must stay cheap.  Exhaustion of this *optional*
                repair keeps the seeded outcome — a counted degradation,
                not a rejection. *)
             try solve ~node_limit:(max 1000 (t.config.node_limit / 256)) ()
             with Solver.Backtrack.Too_many_nodes ->
               exhausted ();
               None
           in
           (match seeded, unseeded with
            | Some a, Some b ->
              if Solver.Soft.satisfied_count b > Solver.Soft.satisfied_count a then Some b
              else Some a
            | Some a, None -> Some a
            | None, other -> other)
         | `Blown -> solve_escalated_or_overload ())
      | None ->
        (try solve ()
         with Solver.Backtrack.Too_many_nodes ->
           exhausted ();
           solve_escalated_or_overload ())
    in
    match outcome with
    | None ->
      inconsistent "partition %d: invariant violated, composed body unsatisfiable"
        p.Partition.pid
    | Some { Solver.Soft.valuation; satisfied } ->
      (* Per-transaction optional satisfaction flags. *)
      let groundings =
        List.map
          (fun txn ->
            let optional_satisfied =
              soft
              |> List.mapi (fun i (id, _) -> (i, id))
              |> List.filter_map (fun (i, id) ->
                if id = txn.Rtxn.id then Some satisfied.(i) else None)
              |> Array.of_list
            in
            { txn; valuation; optional_satisfied })
          grounded_txns
      in
      (* One atomic batch: every grounded transaction's updates in sequence
         order, plus its pending-table deletion. *)
      let ops =
        List.concat_map
          (fun txn ->
            Rtxn.ops_under txn valuation
            @ [ Database.Delete (pending_table_name, pending_row txn) ])
          grounded_txns
      in
      (match Obs.Flight.time Obs.Flight.Wal (fun () -> Store.apply t.store ops) with
       | Ok () -> ()
       | Error err ->
         inconsistent "grounding batch failed: %s" (Database.op_error_to_string err));
      t.metrics.Metrics.grounded <- t.metrics.Metrics.grounded + List.length grounded_txns;
      Log.debug (fun m ->
          m "grounded [%s] (%d left pending in partition %d)"
            (String.concat "," (List.map (fun x -> x.Rtxn.label) grounded_txns))
            (List.length remaining) p.Partition.pid);
      (* Rebuild the partition over the remainder.  The stale chunk cache
         is not recomposed here: [resplit] recomposes each independent
         group from scratch anyway (grounding is an invalidation point),
         and [p] itself is discarded by it. *)
      Partition.set_txns t.parts p remaining;
      let remaining_vars =
        List.fold_left
          (fun acc txn -> Term.Var_set.union acc (Rtxn.all_vars txn))
          Term.Var_set.empty remaining
      in
      Solver.Cache.set_witness p.Partition.cache (Subst.restrict remaining_vars valuation);
      ignore (Partition.resplit t.parts p);
      (match t.ground_hook with
       | Some hook -> List.iter hook groundings
       | None -> ());
      groundings
  end

(* Every grounding call — explicit, read-induced, partner arrival or
   k-pressure — funnels through here, so one span covers the whole
   collapse step of the lifecycle. *)
let ground_in_partition t (p : Partition.partition) target_ids =
  let grounded = ref [] in
  Obs.Trace.span ~cat:"qdb"
    ~args:(fun () ->
      [ ("partition", Obs.Trace.Int p.Partition.pid);
        ("targets", Obs.Trace.Int (List.length target_ids));
        ("grounded", Obs.Trace.Int (List.length !grounded));
      ])
    "qdb.ground"
    (fun () ->
      (* Ground phase self time = orchestration; its solves and the WAL
         batch account themselves (exclusively) inside. *)
      let gs =
        Obs.Flight.time Obs.Flight.Ground (fun () -> ground_partition_body t p target_ids)
      in
      grounded := gs;
      gs)

let set_ground_hook t hook = t.ground_hook <- Some hook
let clear_ground_hook t = t.ground_hook <- None

let ground t id =
  match Partition.find_txn t.parts id with
  | None -> []
  | Some (p, _) ->
    Metrics.observe t.metrics.Metrics.ground_latency (fun () -> ground_in_partition t p [ id ])

let ground_all t =
  Metrics.observe t.metrics.Metrics.ground_latency (fun () ->
      List.concat_map
        (fun p -> ground_in_partition t p (List.map (fun x -> x.Rtxn.id) p.Partition.txns))
        (Partition.partitions t.parts))

(* -- Adaptive grounding (Section 6, phase transitions) -------------------- *)

(* Constrainedness estimate of a partition: remaining resources per
   pending delete, per relation.  When the minimum slack drops under the
   configured threshold the problem is approaching its hard region and
   the engine pre-emptively grounds the older half of the partition,
   trading allocation quality for response time, as Section 6 suggests. *)
let partition_slack t (p : Partition.partition) =
  let database = db t in
  let demand = Hashtbl.create 8 in
  List.iter
    (fun txn ->
      List.iter
        (fun d ->
          let rel = d.Atom.rel in
          Hashtbl.replace demand rel (1 + Option.value ~default:0 (Hashtbl.find_opt demand rel)))
        (Rtxn.deletes txn))
    p.Partition.txns;
  Hashtbl.fold
    (fun rel count slack ->
      match Database.find_table database rel with
      | None -> slack
      | Some table ->
        Float.min slack (float_of_int (Relational.Table.cardinality table) /. float_of_int count))
    demand infinity

let adapt_partition t (p : Partition.partition) =
  if t.config.adaptive && List.length p.Partition.txns > 1 then begin
    if partition_slack t p < t.config.adaptive_slack then begin
      let n = List.length p.Partition.txns / 2 in
      let oldest = List.filteri (fun i _ -> i < n) p.Partition.txns in
      t.metrics.Metrics.forced_groundings <- t.metrics.Metrics.forced_groundings + List.length oldest;
      if Obs.Trace.on () then
        Obs.Trace.instant ~cat:"qdb"
          ~args:
            [ ("txns", Obs.Trace.Int (List.length oldest));
              ("reason", Obs.Trace.Str "adaptive");
            ]
          "qdb.forced_ground";
      ignore (ground_in_partition t p (List.map (fun x -> x.Rtxn.id) oldest))
    end
  end

(* -- Submission (Section 3.2.1) ------------------------------------------- *)

(* Multi-solution caches (Section 4's background-process strategy): top
   every partition's witness pool back up after the state changed.  The
   compute phase is pure per partition — the paper's "background process"
   made real: with a domain pool the solves run concurrently across
   partitions; without one the same tightly-budgeted job plans run inline
   on the commit path.  Installs happen on this thread in ascending-pid
   order, and each job solves with a private stats record merged here, so
   the outcome and telemetry are identical at any pool size. *)
let refill_caches t =
  if t.config.cache_capacity > 1 then begin
    Obs.Flight.time Obs.Flight.Coordination @@ fun () ->
    let budget = max 1000 (t.config.node_limit / 256) in
    (* Freeze: snapshotting each partition's composed body for the worker
       jobs — [Partition.formula] flattens (memoized) the chunk cache. *)
    let plans =
      Obs.Flight.time Obs.Flight.Freeze @@ fun () ->
      Obs.Trace.span ~cat:"qdb" "qdb.freeze" @@ fun () ->
      List.filter_map
        (fun p ->
          Option.map
            (fun job -> (p, job))
            (Solver.Cache.refill_plan p.Partition.cache (Partition.formula p)))
        (List.sort
           (fun a b -> Int.compare a.Partition.pid b.Partition.pid)
           (Partition.partitions t.parts))
    in
    if plans <> [] then begin
      let database = db t in
      (* The refill is best-effort by design (the paper's background
         process): if any fan-out job dies — a worker exception, an
         injected fault — the whole batch is abandoned before install, so
         the caches and stats are exactly as if the refill never ran.
         That holds at every domain count: results are discarded wholesale
         and refill jobs are pure, so partially-run batches cannot leak. *)
      match
        pool_map_injectable t ~kind:"refill"
          (fun ((p : Partition.partition), job) ->
            Obs.Trace.span ~cat:"cache"
              ~args:(fun () -> [ ("partition", Obs.Trace.Int p.Partition.pid) ])
              "cache.refill_compute"
            @@ fun () ->
            let stats = Solver.Backtrack.fresh_stats () in
            let fresh = Solver.Cache.refill_compute ~node_limit:budget ~stats database job in
            (fresh, stats))
          plans
      with
      | exception e ->
        t.metrics.Metrics.refill_failures <- t.metrics.Metrics.refill_failures + 1;
        Log.warn (fun m ->
            m "cache refill abandoned (%d partitions): %s" (List.length plans)
              (Printexc.to_string e));
        if Obs.Trace.on () then
          Obs.Trace.instant ~cat:"cache"
            ~args:[ ("partitions", Obs.Trace.Int (List.length plans)) ]
            "cache.refill_failed"
      | results ->
        Obs.Flight.time Obs.Flight.Install @@ fun () ->
        Obs.Trace.span ~cat:"cache"
          ~args:(fun () -> [ ("partitions", Obs.Trace.Int (List.length plans)) ])
          "cache.install"
        @@ fun () ->
        List.iter2
          (fun (p, _) (fresh, stats) ->
            Solver.Backtrack.add_stats ~into:t.metrics.Metrics.solver_stats stats;
            ignore (Solver.Cache.refill_install p.Partition.cache fresh))
          plans results
    end
  end

(* Ground pending partners eagerly: an entangled resource transaction is
   executed as soon as its partner arrives (Section 5.1). *)
let trigger_partners t committed =
  let partner_of label txn =
    match txn.Rtxn.trigger with
    | Rtxn.On_partner p -> String.equal p label
    | Rtxn.On_demand -> false
  in
  let waiting_for_me =
    List.filter (partner_of committed.Rtxn.label) (Partition.all_pending t.parts)
  in
  let my_partner =
    match committed.Rtxn.trigger with
    | Rtxn.On_partner p ->
      List.filter
        (fun txn -> String.equal txn.Rtxn.label p && txn.Rtxn.id <> committed.Rtxn.id)
        (Partition.all_pending t.parts)
    | Rtxn.On_demand -> []
  in
  match waiting_for_me @ my_partner with
  | [] -> []
  | partners ->
    if Obs.Trace.on () then
      Obs.Trace.instant ~cat:"qdb"
        ~args:
          [ ("label", Obs.Trace.Str committed.Rtxn.label);
            ("partners", Obs.Trace.Int (List.length partners));
          ]
        "qdb.partner_trigger";
    (* Ground the committed transaction together with every partner that
       was waiting; they share a partition by construction (their atoms
       unify through the coordination constraint), but be defensive and
       group by partition. *)
    let ids = committed.Rtxn.id :: List.map (fun x -> x.Rtxn.id) partners in
    let by_partition = Hashtbl.create 4 in
    List.iter
      (fun id ->
        match Partition.find_txn t.parts id with
        | Some (p, _) ->
          let existing =
            Option.value ~default:[] (Hashtbl.find_opt by_partition p.Partition.pid)
          in
          Hashtbl.replace by_partition p.Partition.pid (id :: existing)
        | None -> ())
      ids;
    Hashtbl.fold
      (fun pid ids acc ->
        let p =
          List.find (fun p -> p.Partition.pid = pid) (Partition.partitions t.parts)
        in
        ground_in_partition t p ids @ acc)
      by_partition []

(* An admission that passed its satisfiability check but has not yet
   mutated anything durable: the two-phase split the actor runtime's
   cross-partition protocol needs.  Everything [prepare_admission] did —
   partition merges, k-pressure groundings, cache witness movement — is
   exactly what a *rejected* admission also does and leaves behind, so
   an abort needs no rollback; commit is where the sequence, the chunk
   cache, the pending table and the WAL change. *)
type prepared = {
  prep_p : Partition.partition;
  prep_txn : Rtxn.t;
  prep_new_clauses : Formula.t;
}

type admission_step =
  | Admission_prepared of prepared
  | Admission_refused of commit_result

let rec prepare_admission t txn ~gov ~attempts =
  let dependent, _ = Partition.split_dependent t.parts txn in
  let prior, merged_body = Partition.merged_view dependent in
  (* k-bound (Section 4): force-ground the oldest pending transaction of
     the would-be partition until the new one fits. *)
  if List.length prior >= t.config.k && attempts < t.config.k + 1 then begin
    match prior with
    | [] -> assert false
    | oldest :: _ ->
      (match Partition.find_txn t.parts oldest.Rtxn.id with
       | Some (p, _) ->
         t.metrics.Metrics.forced_groundings <- t.metrics.Metrics.forced_groundings + 1;
         if Obs.Trace.on () then
           Obs.Trace.instant ~cat:"qdb"
             ~args:
               [ ("txn", Obs.Trace.Int oldest.Rtxn.id);
                 ("reason", Obs.Trace.Str "k_pressure");
               ]
             "qdb.forced_ground";
         ignore (ground_in_partition t p [ oldest.Rtxn.id ])
       | None -> ());
      prepare_admission t txn ~gov ~attempts:(attempts + 1)
  end
  else begin
    if List.length dependent > 1 then begin
      t.metrics.Metrics.partition_merges <- t.metrics.Metrics.partition_merges + 1;
      if Obs.Trace.on () then
        Obs.Trace.instant ~cat:"qdb"
          ~args:[ ("partitions", Obs.Trace.Int (List.length dependent)) ]
          "qdb.partition_merge"
    end;
    let witness = Partition.merge_witnesses dependent in
    let p = Partition.replace t.parts dependent prior merged_body witness in
    (* Delta composition: only the new transaction's clauses are built;
       the partition's chunk cache already holds everything earlier.  The
       flattened full body is forced only when witness extension misses
       (or a non-default backend needs it); the ablation recomposes the
       whole sequence from scratch instead, like the pre-incremental
       engine did. *)
    Obs.Flight.note_chunks_reused (List.length prior);
    let new_clauses =
      Obs.Flight.time Obs.Flight.Compose (fun () ->
          Compose.Inc.delta ~check_inserts:t.config.check_inserts
            ~key_of:(key_resolver t.store) prior txn)
    in
    let full_formula =
      if t.config.incremental then
        lazy
          (Obs.Flight.time Obs.Flight.Compose (fun () ->
               Formula.and_ [ Compose.Inc.formula merged_body; new_clauses ]))
      else
        lazy
          (Obs.Flight.time Obs.Flight.Compose (fun () ->
               Compose.body_of_sequence ~check_inserts:t.config.check_inserts
                 ~key_of:(key_resolver t.store) (prior @ [ txn ])))
    in
    match check_admission t p ~gov ~salt:txn.Rtxn.id ~txn ~new_clauses ~full_formula with
    | Check_sat _ ->
      Admission_prepared { prep_p = p; prep_txn = txn; prep_new_clauses = new_clauses }
    | Check_unsat ->
      t.metrics.Metrics.rejected <- t.metrics.Metrics.rejected + 1;
      Log.info (fun m -> m "rejected %s: no consistent grounding exists" txn.Rtxn.label);
      Admission_refused
        (Rejected
           (Printf.sprintf "transaction %s: no consistent grounding exists" txn.Rtxn.label))
    | Check_overload reason ->
      (* Every budget rung ran dry.  Like a rejection, nothing was
         mutated: chunk cache, pending table and WAL are untouched, so
         the same transaction can be resubmitted with a bigger budget. *)
      t.metrics.Metrics.overloaded <- t.metrics.Metrics.overloaded + 1;
      Log.warn (fun m -> m "overloaded %s: %s" txn.Rtxn.label reason);
      Admission_refused (Overloaded (Printf.sprintf "transaction %s: %s" txn.Rtxn.label reason))
  end

(* Second phase of a successful admission: extend the partition (sequence
   + chunk cache in one step), durably record the pending transaction
   before acknowledging (Section 4, Recovery), then run the post-commit
   work — cache refills, partner triggers, adaptive grounding. *)
let finish_commit t { prep_p = p; prep_txn = txn; prep_new_clauses = new_clauses } =
  (* The chunk cache extends only on success; a rejected transaction
     leaves the partition's body untouched. *)
  Partition.append_txn t.parts p txn ~new_clauses;
  (match
     Obs.Flight.time Obs.Flight.Wal (fun () ->
         Store.apply t.store [ Database.Insert (pending_table_name, pending_row txn) ])
   with
   | Ok () -> ()
   | Error err -> inconsistent "pending-table insert: %s" (Database.op_error_to_string err));
  t.metrics.Metrics.committed <- t.metrics.Metrics.committed + 1;
  Log.debug (fun m ->
      m "committed %d:%s (partition of %d pending)" txn.Rtxn.id txn.Rtxn.label
        (List.length p.Partition.txns));
  refill_caches t;
  ignore (trigger_partners t txn);
  adapt_partition t p;
  Committed txn.Rtxn.id

let admit t txn ~gov ~attempts =
  match prepare_admission t txn ~gov ~attempts with
  | Admission_prepared pr -> finish_commit t pr
  | Admission_refused result -> result

(* -- Two-phase admission (cross-partition coordination) --------------------

   The exception path of the actor model: a coordinator needs every
   participating engine to hold an admission in the prepared state until
   all of them have voted.  [prepare] runs the full admission check and
   stops just short of mutating the durable state; [commit_prepared]
   finishes it; [abort_prepared] walks away — safe without rollback
   because a prepared admission has changed exactly what a rejected one
   does (partition merges and k-pressure groundings persist by design).

   Between an engine's [prepare] and its [commit_prepared] /
   [abort_prepared] no other operation may run on that engine — in the
   actor runtime the freeze window of the owning actor guarantees it.

   Accounting: a refused prepare is a complete submission (counted with
   its outcome here); a successful prepare counts nothing until
   [commit_prepared] (submitted + committed together); an abort counts
   nothing at all — so committed + rejected + overloaded = submitted
   holds at every quiescent point, whatever mix of paths ran. *)

let prepare ?governor t txn =
  let gov = Option.value governor ~default:t.config.governor in
  let txn = Rtxn.freshen txn in
  let txn = { txn with Rtxn.id = t.next_id } in
  Rtxn.validate txn;
  t.next_id <- t.next_id + 1;
  match prepare_admission t txn ~gov ~attempts:0 with
  | Admission_prepared pr -> Ok pr
  | Admission_refused result ->
    t.metrics.Metrics.submitted <- t.metrics.Metrics.submitted + 1;
    Error result

let prepared_id pr = pr.prep_txn.Rtxn.id

let commit_prepared t pr =
  t.metrics.Metrics.submitted <- t.metrics.Metrics.submitted + 1;
  finish_commit t pr

let abort_prepared _t pr =
  (* Nothing durable to undo; just witness hygiene.  The prepare's
     satisfiability check may have extended cached witnesses over the
     aborted transaction's variables — fresh variables nothing else
     references — so project the cache back onto the partition's live
     ones. *)
  let p = pr.prep_p in
  let live_vars =
    List.fold_left
      (fun acc txn -> Term.Var_set.union acc (Rtxn.all_vars txn))
      Term.Var_set.empty p.Partition.txns
  in
  Solver.Cache.restrict_witnesses p.Partition.cache live_vars;
  Log.debug (fun m -> m "aborted prepared %d:%s" pr.prep_txn.Rtxn.id pr.prep_txn.Rtxn.label)

let submit ?governor t txn =
  t.metrics.Metrics.submitted <- t.metrics.Metrics.submitted + 1;
  let gov = Option.value governor ~default:t.config.governor in
  let txn = Rtxn.freshen txn in
  let txn = { txn with Rtxn.id = t.next_id } in
  Rtxn.validate txn;
  t.next_id <- t.next_id + 1;
  let outcome = ref "exception" in
  (* Flight record: one per submission, with the solver-work delta over
     this engine's stats (phase times accrue via the recorder's own
     instrumentation points).  Closed in [finally] so a rejected or even
     exploding admission still leaves its record. *)
  let stats = t.metrics.Metrics.solver_stats in
  let nodes0 = stats.Solver.Backtrack.nodes in
  let candidates0 = stats.Solver.Backtrack.candidates in
  Obs.Flight.begin_admission ~txn_id:txn.Rtxn.id ~label:txn.Rtxn.label;
  Fun.protect
    ~finally:(fun () ->
      Obs.Flight.end_admission ~outcome:!outcome
        ~solver_nodes:(stats.Solver.Backtrack.nodes - nodes0)
        ~solver_candidates:(stats.Solver.Backtrack.candidates - candidates0))
    (fun () ->
      (* One clock serves both the total and the per-outcome latency
         split (accept / reject / overload — the contention bench's raw
         material); an escaping exception still records the total. *)
      let start = Obs.Mclock.now_ns () in
      Fun.protect
        ~finally:(fun () ->
          let dt = Obs.Mclock.elapsed_s start in
          Obs.Histogram.observe t.metrics.Metrics.submit_latency dt;
          match !outcome with
          | "committed" -> Obs.Histogram.observe t.metrics.Metrics.accept_latency dt
          | "rejected" -> Obs.Histogram.observe t.metrics.Metrics.reject_latency dt
          | "overloaded" -> Obs.Histogram.observe t.metrics.Metrics.overload_latency dt
          | _ -> ())
        (fun () ->
          Obs.Trace.span ~cat:"qdb"
            ~args:(fun () ->
              [ ("id", Obs.Trace.Int txn.Rtxn.id);
                ("label", Obs.Trace.Str txn.Rtxn.label);
                ("outcome", Obs.Trace.Str !outcome);
              ])
            "qdb.submit"
            (fun () ->
              let result = admit t txn ~gov ~attempts:0 in
              (outcome :=
                 match result with
                 | Committed _ -> "committed"
                 | Rejected _ -> "rejected"
                 | Overloaded _ -> "overloaded");
              result)))

(* -- Reads (Section 3.2.2) ------------------------------------------------ *)

(* Impacted pending transactions: the conservative unifiability criterion
   — a query atom unifies with a pending update. *)
let read_impact t (q : Solver.Query.t) =
  List.filter
    (fun txn ->
      Unify.any_unifiable q.Solver.Query.body (List.map Rtxn.update_atom txn.Rtxn.updates))
    (Partition.all_pending t.parts)

(* Shadow database: current extensional state plus every pending
   transaction's updates under the cached witnesses. *)
let shadow_db t =
  let shadow = Database.copy (db t) in
  List.iter
    (fun p ->
      match Solver.Cache.witness p.Partition.cache with
      | None -> ()
      | Some w ->
        List.iter
          (fun txn ->
            match Database.apply_ops shadow (Rtxn.ops_under txn w) with
            | Ok () -> ()
            | Error _ -> ())
          p.Partition.txns)
    (Partition.partitions t.parts);
  shadow

let read ?policy t q =
  t.metrics.Metrics.reads <- t.metrics.Metrics.reads + 1;
  let policy = Option.value ~default:t.config.read_policy policy in
  let policy_name =
    match policy with
    | Collapse -> "collapse"
    | Peek -> "peek"
    | Expose -> "expose"
  in
  let n_answers = ref 0 in
  Metrics.observe t.metrics.Metrics.read_latency @@ fun () ->
  Obs.Trace.span ~cat:"qdb"
    ~args:(fun () ->
      [ ("policy", Obs.Trace.Str policy_name); ("answers", Obs.Trace.Int !n_answers) ])
    "qdb.read"
  @@ fun () ->
  let result =
    (fun () ->
      match policy with
      | Collapse ->
        let impacted = read_impact t q in
        List.iter
          (fun txn ->
            match Partition.find_txn t.parts txn.Rtxn.id with
            | Some (p, _) ->
              t.metrics.Metrics.forced_groundings <- t.metrics.Metrics.forced_groundings + 1;
              if Obs.Trace.on () then
                Obs.Trace.instant ~cat:"qdb"
                  ~args:[ ("txn", Obs.Trace.Int txn.Rtxn.id); ("reason", Obs.Trace.Str "read") ]
                  "qdb.collapse";
              ignore (ground_in_partition t p [ txn.Rtxn.id ])
            | None -> () (* already grounded by an earlier impact in this read *))
          impacted;
        Solver.Query.all (db t) q
      | Peek -> Solver.Query.all (shadow_db t) q
      | Expose ->
        (* Sample possible worlds: enumerate groundings per partition (a
           bounded number) and union the answers over each resulting
           world. *)
        let worlds_limit = 32 in
        let answers = Hashtbl.create 16 in
        let rec explore parts world =
          match parts with
          | [] ->
            List.iter
              (fun tuple -> Hashtbl.replace answers tuple ())
              (Solver.Query.all world q)
          | p :: rest ->
            let solutions =
              Solver.Backtrack.solutions ~limit:worlds_limit (db t) (Partition.formula p)
            in
            (match solutions with
             | [] -> explore rest world
             | _ ->
               List.iter
                 (fun w ->
                   let forked = Database.copy world in
                   let ok =
                     List.for_all
                       (fun txn ->
                         match Database.apply_ops forked (Rtxn.ops_under txn w) with
                         | Ok () -> true
                         | Error _ -> false
                         | exception Rtxn.Ill_formed _ -> false)
                       p.Partition.txns
                   in
                   if ok then explore rest forked)
                 solutions)
        in
        explore (Partition.partitions t.parts) (Database.copy (db t));
        Hashtbl.fold (fun tuple () acc -> tuple :: acc) answers [])
      ()
  in
  n_answers := List.length result;
  result

(* -- Blind writes (Section 3.2.2) ------------------------------------------ *)

let write t ops =
  t.metrics.Metrics.writes <- t.metrics.Metrics.writes + 1;
  let accepted = ref false in
  Obs.Trace.span ~cat:"qdb"
    ~args:(fun () ->
      [ ("ops", Obs.Trace.Int (List.length ops)); ("accepted", Obs.Trace.Bool !accepted) ])
    "qdb.write"
  @@ fun () ->
  let record result =
    accepted := Result.is_ok result;
    result
  in
  record
  @@
  let database = db t in
  let atoms_of_ops =
    List.map
      (fun op ->
        match op with
        | Database.Insert (rel, tuple) | Database.Delete (rel, tuple) ->
          Atom.of_tuple rel tuple)
      ops
  in
  let affected =
    List.filter
      (fun p ->
        List.exists
          (fun txn -> Unify.any_unifiable atoms_of_ops (Rtxn.all_atoms txn))
          p.Partition.txns)
      (Partition.partitions t.parts)
  in
  (* Apply tentatively, re-check every affected composed body, then either
     keep (logging through the store) or roll back. *)
  match Database.apply_ops database ops with
  | Error err -> Error (Database.op_error_to_string err)
  | Ok () ->
    (* Revalidation fan-out: each affected partition's re-check (witness
       filter, then a full re-solve when every witness died) is pure over
       a frozen partition view, so the jobs run across the domain pool;
       cache installs and stats merges happen here, in partition order. *)
    let verdict =
      (* If the fan-out itself blows up (an injected fault, a pool-worker
         crash), the tentative ops MUST still be rolled back — otherwise
         the write stays half-applied with no WAL record and the store is
         poisoned.  Compute under [try]; rollback happens in every arm. *)
      try
        let checks, outcomes =
          Obs.Flight.time Obs.Flight.Coordination @@ fun () ->
          let checks =
            Obs.Flight.time Obs.Flight.Freeze @@ fun () ->
            Obs.Trace.span ~cat:"qdb" "qdb.freeze" @@ fun () ->
            List.map (fun p -> (p, Partition.freeze p)) affected
          in
          let outcomes =
            pool_map_injectable t ~kind:"recheck"
              (fun ((p : Partition.partition), fz) ->
                Obs.Trace.span ~cat:"cache"
                  ~args:(fun () -> [ ("partition", Obs.Trace.Int p.Partition.pid) ])
                  "cache.recheck_compute"
                @@ fun () ->
                let stats = Solver.Backtrack.fresh_stats () in
                let outcome =
                  Solver.Cache.recheck_compute ~node_limit:t.config.node_limit ~stats database
                    ~witnesses:fz.Partition.f_witnesses ~formula:fz.Partition.f_formula
                in
                (outcome, stats))
              checks
          in
          (checks, outcomes)
        in
        let still_ok =
          Obs.Flight.time Obs.Flight.Install @@ fun () ->
          Obs.Trace.span ~cat:"cache"
            ~args:(fun () -> [ ("partitions", Obs.Trace.Int (List.length checks)) ])
            "cache.recheck_install"
          @@ fun () ->
          List.fold_left2
            (fun ok (p, _) (outcome, stats) ->
              Solver.Backtrack.add_stats ~into:t.metrics.Metrics.solver_stats stats;
              Solver.Cache.recheck_install p.Partition.cache outcome && ok)
            true checks outcomes
        in
        `Checked still_ok
      with e -> `Aborted (Printexc.to_string e)
    in
    (* Roll back the tentative application; on acceptance re-apply through
       the store so the WAL sees it. *)
    List.iter (fun op -> Database.apply_op database (Database.invert op)) (List.rev ops);
    match verdict with
    | `Aborted reason ->
      (* Conservative refusal: no caches were installed (installs run after
         the fan-out completes), the database is back to its pre-write
         state, and nothing reached the WAL. *)
      t.metrics.Metrics.writes_rejected <- t.metrics.Metrics.writes_rejected + 1;
      Obs.Trace.instant ~cat:"qdb" "qdb.write_aborted";
      Log.warn (fun m -> m "blind write aborted: revalidation failed (%s)" reason);
      Error (Printf.sprintf "write revalidation aborted: %s" reason)
    | `Checked still_ok ->
    if still_ok then begin
      match Obs.Flight.time Obs.Flight.Wal (fun () -> Store.apply t.store ops) with
      | Ok () -> Ok ()
      | Error err -> Error (Database.op_error_to_string err)
    end
    else begin
      t.metrics.Metrics.writes_rejected <- t.metrics.Metrics.writes_rejected + 1;
      Log.info (fun m -> m "blind write refused: conflicts with pending transactions");
      Error "write conflicts with pending resource transactions"
    end

(* -- Telemetry ------------------------------------------------------------- *)

(* Full registry view of this engine: metrics counters and latency
   histograms, plus live gauges (pending set, partitions) and the durable
   store's WAL counters.  This is what the CLI's `stats` subcommand and
   the bench harness export. *)
let registry t =
  let reg = Metrics.snapshot t.metrics in
  Obs.Registry.set_gauge reg "qdb.pending" (float_of_int (pending_count t));
  Obs.Registry.set_gauge reg "qdb.partitions" (float_of_int (partition_count t));
  Obs.Registry.set_gauge reg "qdb.max_partition_size" (float_of_int (max_partition_size t));
  (* Incremental clause-cache observability: total composed-body size and
     one gauge per live partition. *)
  Obs.Registry.set_gauge reg "qdb.partition.composed_clauses"
    (float_of_int (composed_clause_total t));
  List.iter
    (fun p ->
      Obs.Registry.set_gauge reg
        (Printf.sprintf "qdb.partition.%d.composed_clauses" p.Partition.pid)
        (float_of_int (Partition.composed_clauses p)))
    (Partition.partitions t.parts);
  (match t.sat_session with
   | None -> ()
   | Some s ->
     Obs.Registry.set_gauge reg "sat.session.live_clauses"
       (float_of_int (Sat.Inc.live_clauses s));
     Obs.Registry.set_gauge reg "sat.session.resets" (float_of_int (Sat.Inc.resets s)));
  let ws = Store.wal_stats t.store in
  Obs.Registry.set_counter reg "wal.records" ws.Relational.Wal.records;
  Obs.Registry.set_counter reg "wal.batches" ws.Relational.Wal.batches;
  Obs.Registry.set_counter reg "wal.checkpoints" ws.Relational.Wal.checkpoints;
  Obs.Registry.set_counter reg "wal.bytes" ws.Relational.Wal.bytes;
  Obs.Registry.set_counter reg "wal.syncs" ws.Relational.Wal.syncs;
  (match Store.recovery_report t.store with
   | None -> ()
   | Some r ->
     let g = Obs.Registry.set_gauge reg in
     g "wal.recovery.records_kept" (float_of_int r.Relational.Wal.records_kept);
     g "wal.recovery.records_dropped" (float_of_int r.Relational.Wal.records_dropped);
     g "wal.recovery.batches_applied" (float_of_int r.Relational.Wal.batches_applied);
     g "wal.recovery.truncated"
       (if r.Relational.Wal.truncation_reason <> None then 1.0 else 0.0));
  reg

(* -- Invariant check (tests, possible-worlds cross-validation) ------------- *)

(* Test hook: beyond satisfiability of the live (incrementally composed)
   bodies, recompose each partition from scratch and require agreement —
   the delta-composition equivalence property — and that every cached
   witness still seeds a successful solve of the from-scratch body. *)
let invariant_holds t =
  List.for_all
    (fun p ->
      let sat ?seed f =
        Solver.Backtrack.satisfiable ?seed ~node_limit:t.config.node_limit (db t) f
      in
      let scratch =
        Compose.body_of_sequence ~check_inserts:t.config.check_inserts
          ~key_of:(key_resolver t.store) p.Partition.txns
      in
      sat scratch
      && sat (Partition.formula p)
      && List.for_all (fun w -> sat ~seed:w scratch) (Solver.Cache.witnesses p.Partition.cache))
    (Partition.partitions t.parts)

(* -- Recovery (Section 4) -------------------------------------------------- *)

(* Rebuild the quantum state from the pending-transactions table: parse
   every recorded transaction, then recompose partitions in admission
   order without re-running admission checks (they held before the crash
   and the extensional state is exactly the pre-crash committed state). *)
let sat_session_resets t =
  match t.sat_session with
  | Some s -> Sat.Inc.resets s
  | None -> 0

let recovery_report t = Store.recovery_report t.store

let recover ?(config = default_config) ?pool ?strict backend =
  let store = Store.crash_and_recover ?strict backend in
  let t = create ~config ?pool store in
  let table = Store.table store pending_table_name in
  let rows = List.sort Tuple.compare (Relational.Table.to_list table) in
  let txns =
    List.map
      (fun row ->
        match Tuple.to_list row with
        | [ Value.Int id; Value.Str payload ] ->
          let txn = Rtxn.of_sexp (Sexp.of_string payload) in
          { txn with Rtxn.id }
        | _ -> inconsistent "malformed pending-transactions row")
      rows
  in
  List.iter
    (fun txn ->
      t.next_id <- max t.next_id (txn.Rtxn.id + 1);
      let dependent, _ = Partition.split_dependent t.parts txn in
      let prior, merged_body = Partition.merged_view dependent in
      let witness = Partition.merge_witnesses dependent in
      let p = Partition.replace t.parts dependent prior merged_body witness in
      let new_clauses =
        Compose.Inc.delta ~check_inserts:config.check_inserts ~key_of:(key_resolver store)
          prior txn
      in
      let full_formula =
        lazy (Formula.and_ [ Compose.Inc.formula merged_body; new_clauses ])
      in
      (* Restore the witness invariant eagerly (the full formula must not
         include the new chunk twice, so extend only afterwards). *)
      ignore
        (Solver.Cache.extend_or_resolve ~node_limit:config.node_limit p.Partition.cache (db t)
           ~new_clauses ~full_formula);
      Partition.append_txn t.parts p txn ~new_clauses)
    txns;
  t

(** The quantum database engine (paper Sections 3–4).

    An extensional durable store plus an ordered set of pending resource
    transactions in independent partitions, maintaining the invariant that
    every partition's composed body is satisfiable — i.e. the set of
    possible worlds is never empty. *)

type serializability =
  | Strict  (** ground in arrival order (classical serializability) *)
  | Semantic  (** reorder-to-front when the reordered body stays satisfiable *)

type read_policy =
  | Collapse  (** fix impacted values at read time — the paper's default *)
  | Peek  (** answer from the current witness, fixing nothing *)
  | Expose  (** answers across a sample of possible worlds *)

type solver_backend =
  | Backtracking  (** dynamic-order search + solution cache (default) *)
  | Limit_one_plan of int  (** static plans, bounded optimizer lookahead *)
  | Sat_backend
      (** CNF admission backend (Section 6 offloading).  With
          [config.incremental] (the default) this is a first-class
          incremental CDCL backend: per-transaction chunks are encoded
          once into a persistent engine-wide session and solved under
          activation-literal assumptions, so learned clauses survive
          across admissions.  With [incremental = false] it is the
          from-scratch ablation — eager {!Sat.Encode} of the flattened
          body plus one DPLL run per admission.  Bodies the encoder
          cannot express (negative atoms, order constraints, oversized
          equality classes) fall back to the search solver, so admission
          outcomes are identical to {!Backtracking} in every case. *)

type config = {
  k : int;  (** max pending transactions per partition (prototype: 61) *)
  serializability : serializability;
  read_policy : read_policy;
  backend : solver_backend;
  check_inserts : bool;  (** emit insert key-safety clauses *)
  node_limit : int;
  adaptive : bool;  (** phase-transition-aware pre-emptive grounding *)
  adaptive_slack : float;
  cache_capacity : int;
      (** witnesses kept per partition — the multi-solution cache strategy
          of Section 4 (the paper's prototype kept one) *)
  incremental : bool;
      (** delta-composed, witness-seeded admission (default [true]).
          [false] is the from-scratch ablation: every admission recomposes
          the whole pending sequence and solves it unseeded.  Accept /
          reject outcomes are identical either way; only cost differs. *)
  governor : Governor.t;
      (** per-admission resource budget and degradation ladder
          (see {!Governor}); {!Governor.default} reproduces the engine's
          historical behaviour. *)
}

val default_config : config
val pending_table_name : string

type t

type commit_result =
  | Committed of int  (** admission id; values still unassigned *)
  | Rejected of string  (** the composed body is unsatisfiable — a semantic no *)
  | Overloaded of string
      (** the admission budget ran out even after the degradation ladder
          (escalated retries, full recompose) — NOT a semantic rejection.
          Partition chunks, caches and the WAL are untouched; resubmission
          with a larger budget may still commit. *)

exception Inconsistent of string
(** Internal invariant breach — never raised unless the store is mutated
    behind the engine's back. *)

exception Engine_overloaded of string
(** A grounding (not an admission) exhausted its solver budget even after
    escalation.  The pending set is left untouched. *)

val create : ?config:config -> ?pool:Par.Pool.t -> Relational.Store.t -> t
(** Wrap a store; creates the pending-transactions table when missing.
    [pool], when given, runs partition-level solver fan-out (cache
    refills, blind-write re-checks) across its domains; the same job
    plans run inline without one, so outcomes are identical at any pool
    size.  WAL appends and grounding commits always stay on the calling
    thread. *)

val db : t -> Relational.Database.t
val metrics : t -> Metrics.t

val registry : t -> Obs.Registry.t
(** Telemetry snapshot for {!Obs.Export}: metrics counters and latency
    histograms plus live gauges (pending set, partition count, max
    partition size) and the store's WAL counters. *)

val config : t -> config
val pending_count : t -> int
val pending : t -> Rtxn.t list
val partition_count : t -> int
val max_partition_size : t -> int

val partition_stats : t -> (int * Logic.Formula.stats) list
(** Per partition: pending count and composed-body statistics — the join
    width a LIMIT-1 compilation would need (the prototype's MySQL ceiling
    was 61 relations per query). *)

val composed_clause_total : t -> int
(** Sum of the partitions' composed-body clause counts, read off the
    incremental chunk caches (also exported as the
    [qdb.partition.composed_clauses] gauge). *)

val sat_session_resets : t -> int
(** How many times the SAT backend's incremental session rebuilt itself
    under clause-budget pressure (0 when the backend never ran; also the
    [sat.session.resets] gauge). *)

val submit : ?governor:Governor.t -> t -> Rtxn.t -> commit_result
(** Admission check (Section 3.2.1): freshen, merge dependent partitions,
    enforce the k-bound by force-grounding the oldest, compose, check
    satisfiability through the configured backend, and durably record the
    pending transaction before acknowledging.  Entangled partners waiting
    for this transaction's label are grounded together with it.

    The check runs under [governor] (default: the engine config's) — on
    budget exhaustion it climbs the degradation ladder and, if that too
    runs dry, returns {!Overloaded} instead of guessing. *)

(** {2 Two-phase admission}

    The cross-partition exception path of the actor model: a coordinator
    holds admissions on several engines in the prepared state until all
    of them have voted.  Between an engine's [prepare] and the matching
    [commit_prepared] / [abort_prepared], no other operation may run on
    that engine (the owning actor's freeze window guarantees this in the
    actor runtime).

    Accounting: a refused [prepare] is a complete submission, counted
    with its outcome immediately; a successful [prepare] counts nothing
    until [commit_prepared]; an abort counts nothing — so
    committed + rejected + overloaded = submitted at every quiescent
    point. *)

type prepared
(** An admission that passed its satisfiability check but has not yet
    touched the partition sequence, the pending table or the WAL. *)

val prepare : ?governor:Governor.t -> t -> Rtxn.t -> (prepared, commit_result) result
(** Run the full admission check (freshen, merge, k-bound, compose,
    solve under the governor) and stop just short of durable mutation.
    [Error] carries the {!Rejected} / {!Overloaded} verdict. *)

val prepared_id : prepared -> int
(** The admission id the transaction will commit under. *)

val commit_prepared : t -> prepared -> commit_result
(** Finish a prepared admission: extend the partition, record the
    pending transaction durably, run post-commit work (cache refills,
    partner triggers, adaptive grounding).  Always {!Committed}. *)

val abort_prepared : t -> prepared -> unit
(** Walk away from a prepared admission.  No rollback is needed — a
    prepared admission has mutated exactly what a rejected one does
    (partition merges and k-pressure groundings persist by design) —
    only cache-witness hygiene runs. *)

type grounding = {
  txn : Rtxn.t;
  valuation : Logic.Subst.t;
  optional_satisfied : bool array;  (** per soft unit of this transaction *)
}

val set_ground_hook : t -> (grounding -> unit) -> unit
(** Observe every grounding, however triggered (explicit, read-induced,
    partner arrival, k-pressure) — the optional second notification of the
    paper's programming API ("values have now been assigned"). *)

val clear_ground_hook : t -> unit

val ground : t -> int -> grounding list
(** Fix the values of one pending transaction (Section 3.2.3).  Under
    [Strict] the whole arrival-order prefix grounds with it; under
    [Semantic] it is moved to the front when the reordered body stays
    satisfiable.  Returns every transaction grounded as a consequence. *)

val ground_all : t -> grounding list

val read : ?policy:read_policy -> t -> Solver.Query.t -> Relational.Tuple.t list
(** Answer a query under the configured read policy (overridable per
    read, as Section 3.2.2's application-specific discussion suggests);
    [Collapse] first grounds every pending transaction whose updates unify
    with a query atom (the conservative impact criterion). *)

val read_impact : t -> Solver.Query.t -> Rtxn.t list
val shadow_db : t -> Relational.Database.t

val write : t -> Relational.Database.op list -> (unit, string) result
(** Blind external write: admitted only when every affected partition's
    composed body stays satisfiable afterwards. *)

val set_fault_injector : t -> (kind:string -> fanout:int -> job:int -> unit) -> unit
(** Chaos hook: called before every pool-fan-out job the engine schedules,
    with the fan-out kind ("refill", "recheck"), a per-engine
    fan-out sequence number (assigned on the orchestrator thread, so it is
    independent of the domain count) and the job's input-order index.
    Raising from the injector simulates a worker crash; the engine must
    absorb it — refills are abandoned wholesale, write revalidations
    refuse conservatively — leaving state consistent and deterministic. *)

val clear_fault_injector : t -> unit

val invariant_holds : t -> bool
(** Test hook: recompose every partition from scratch, require the result
    satisfiable, the live incrementally-composed body to agree, and every
    cached witness to seed a successful solve of the from-scratch body. *)

val recovery_report : t -> Relational.Wal.recovery_report option
(** Set when this engine was produced by {!recover}: what WAL replay
    kept, what it dropped and why.  Also exported as [wal.recovery.*]
    gauges by {!registry}. *)

val recover : ?config:config -> ?pool:Par.Pool.t -> ?strict:bool -> Relational.Wal.backend -> t
(** Crash recovery (Section 4): replay the WAL (leniently unless
    [~strict], truncating a damaged tail after the last complete batch),
    re-parse the pending-transactions table and rebuild partitions,
    composed bodies and witnesses. *)

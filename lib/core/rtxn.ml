(* Resource transactions (Section 2).

   In the Datalog-like notation a resource transaction is

       U :-1 B

   where U is the update portion (inserts [+R(...)], deletes [-R(...)])
   and B the body: hard atoms, optional (underlined, here [?]-prefixed)
   atoms, and residual (dis)equality constraints.  CHOOSE 1 is implicit:
   exactly one grounding of the body is selected when values are fixed. *)

module Sexp = Relational.Sexp
open Logic

type update =
  | Ins of Atom.t
  | Del of Atom.t

(* When deferred value assignment should end (Section 5.1: application
   logic decides how long a transaction stays in a quantum state). *)
type trigger =
  | On_demand (* grounded on read, k-pressure or explicit request *)
  | On_partner of string (* grounded as soon as the named label commits *)

type t = {
  id : int; (* admission order; -1 before admission *)
  label : string; (* client-side identity, e.g. the requesting user *)
  hard : Atom.t list;
  optional : Atom.t list;
  constraints : Formula.t list; (* hard residual (dis)equalities *)
  optional_constraints : Formula.t list;
  updates : update list;
  trigger : trigger;
  mutable dep_memo : Atom.t list option;
      (* cached [dependence_atoms]; partitioning consults it once per
         (txn, txn) pair, so recomputing would be quadratic in resplit *)
}

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun msg -> raise (Ill_formed msg)) fmt

let update_atom = function
  | Ins a -> a
  | Del a -> a

let inserts t = List.filter_map (function Ins a -> Some a | Del _ -> None) t.updates
let deletes t = List.filter_map (function Del a -> Some a | Ins _ -> None) t.updates

let body_vars t =
  let constraint_vars =
    List.fold_left
      (fun acc f -> Term.Var_set.union acc (Formula.vars f))
      Term.Var_set.empty t.constraints
  in
  List.fold_left
    (fun acc a -> Term.Var_set.union acc (Atom.vars a))
    constraint_vars t.hard

let all_vars t =
  let add_atoms set atoms =
    List.fold_left (fun acc a -> Term.Var_set.union acc (Atom.vars a)) set atoms
  in
  let add_formulas set fs =
    List.fold_left (fun acc f -> Term.Var_set.union acc (Formula.vars f)) set fs
  in
  add_formulas
    (add_atoms
       (add_atoms (add_atoms (body_vars t) t.optional) (List.map update_atom t.updates))
       [])
    t.optional_constraints

(* Every atom of the transaction (conservative unifiability tests). *)
let all_atoms t = t.hard @ t.optional @ List.map update_atom t.updates

(* Atoms that create *hard* dependence between pending transactions: the
   hard body and the updates.  Optional atoms are excluded — the only
   invariant a committed resource transaction carries concerns its
   non-optional atoms (Section 2), so two transactions whose only overlap
   is through optional atoms (e.g. the flight-agnostic Adjacent relation)
   may live in independent partitions, which is what lets the system
   "correctly identify the independence of queries between different
   flights" (Section 5.3). *)
let dependence_atoms t =
  match t.dep_memo with
  | Some atoms -> atoms
  | None ->
    let atoms = t.hard @ List.map update_atom t.updates in
    t.dep_memo <- Some atoms;
    atoms

let validate t =
  if t.hard = [] && t.updates <> [] then
    (* A pure write needs no CHOOSE; model it as a blind write instead. *)
    ill_formed "transaction %s: updates without a body" t.label;
  (* Range restriction (Section 2): update variables must appear in the
     hard body — optional atoms may go unsatisfied, so a variable bound
     only there could stay unassigned. *)
  let bvars = body_vars t in
  List.iter
    (fun u ->
      let a = update_atom u in
      Term.Var_set.iter
        (fun v ->
          if not (Term.Var_set.mem v bvars) then
            ill_formed "transaction %s: update variable %s_%d not range-restricted" t.label
              v.Term.vname v.Term.vid)
        (Atom.vars a))
    t.updates;
  (* Optional constraints may only mention body or optional-atom variables. *)
  let known = all_vars t in
  List.iter
    (fun f ->
      Term.Var_set.iter
        (fun v ->
          if not (Term.Var_set.mem v known) then
            ill_formed "transaction %s: stray variable %s_%d" t.label v.Term.vname v.Term.vid)
        (Formula.vars f))
    t.optional_constraints

let make ?(id = -1) ?(label = "txn") ?(optional = []) ?(constraints = [])
    ?(optional_constraints = []) ?(trigger = On_demand) ~hard ~updates () =
  let t =
    {
      id; label; hard; optional; constraints; optional_constraints; updates; trigger;
      dep_memo = None;
    }
  in
  validate t;
  t

(* Hard body as a formula (without composition context). *)
let hard_formula t = Formula.and_ (List.map Formula.atom t.hard @ t.constraints)

(* Optional obligations as soft units.  Optional atoms that share
   variables express a single preference spread over several atoms (e.g.
   Bookings(G, f, s2) ∧ Adjacent(s, s2): s2 is meaningless alone), so
   they are grouped by variable-connectivity into all-or-nothing units;
   independent optional atoms stay separate, preserving the paper's
   maximize-the-number-of-satisfied-conditions rule across unrelated
   preferences.  Optional constraints join every unit they share a
   variable with (or form their own). *)
let soft_formulas t =
  let items =
    List.map (fun a -> (Atom.vars a, Formula.atom a)) t.optional
    @ List.map (fun f -> (Formula.vars f, f)) t.optional_constraints
  in
  (* Union by shared variables, preserving insertion order inside units. *)
  let groups : (Term.Var_set.t * Formula.t list) list ref = ref [] in
  List.iter
    (fun (vars, f) ->
      let linked, free =
        List.partition
          (fun (gvars, _) -> not (Term.Var_set.is_empty (Term.Var_set.inter vars gvars)))
          !groups
      in
      let merged_vars =
        List.fold_left (fun acc (gv, _) -> Term.Var_set.union acc gv) vars linked
      in
      let merged_fs = List.concat_map snd linked @ [ f ] in
      groups := free @ [ (merged_vars, merged_fs) ])
    items;
  List.map (fun (_, fs) -> Formula.and_ fs) !groups

(* Rename every variable to a fresh one; applied on admission so pending
   transactions have pairwise-disjoint variables (assumed by Lemma 3.4). *)
let freshen t =
  let mapping = Hashtbl.create 16 in
  let rename_var v =
    match Hashtbl.find_opt mapping v.Term.vid with
    | Some v' -> v'
    | None ->
      let v' = Term.fresh_var v.Term.vname in
      Hashtbl.add mapping v.Term.vid v';
      v'
  in
  let rename_term = function
    | Term.V v -> Term.V (rename_var v)
    | Term.C _ as c -> c
  in
  let rename_atom a = { a with Atom.args = Array.map rename_term a.Atom.args } in
  let rec rename_formula f =
    match f with
    | Formula.True | Formula.False -> f
    | Formula.Atom a -> Formula.Atom (rename_atom a)
    | Formula.Not_atom a -> Formula.Not_atom (rename_atom a)
    | Formula.Key_free a -> Formula.Key_free (rename_atom a)
    | Formula.Eq (x, y) -> Formula.Eq (rename_term x, rename_term y)
    | Formula.Neq (x, y) -> Formula.Neq (rename_term x, rename_term y)
    | Formula.Lt (x, y) -> Formula.Lt (rename_term x, rename_term y)
    | Formula.Le (x, y) -> Formula.Le (rename_term x, rename_term y)
    | Formula.And fs -> Formula.And (List.map rename_formula fs)
    | Formula.Or fs -> Formula.Or (List.map rename_formula fs)
  in
  let rename_update = function
    | Ins a -> Ins (rename_atom a)
    | Del a -> Del (rename_atom a)
  in
  {
    t with
    hard = List.map rename_atom t.hard;
    optional = List.map rename_atom t.optional;
    constraints = List.map rename_formula t.constraints;
    optional_constraints = List.map rename_formula t.optional_constraints;
    updates = List.map rename_update t.updates;
    dep_memo = None; (* atoms changed; never share the old memo *)
  }

(* Concrete update operations under a grounding valuation. *)
let ops_under t subst =
  List.map
    (fun u ->
      let a = Subst.apply_atom subst (update_atom u) in
      if not (Atom.is_ground a) then
        ill_formed "transaction %s: grounding left update %s open" t.label (Atom.to_string a);
      match u with
      | Ins _ -> Relational.Database.Insert (a.Atom.rel, Atom.to_tuple a)
      | Del _ -> Relational.Database.Delete (a.Atom.rel, Atom.to_tuple a))
    t.updates

(* -- Pretty printing in the paper's notation ------------------------------ *)

let pp_update fmt = function
  | Ins a -> Format.fprintf fmt "+%a" Atom.pp a
  | Del a -> Format.fprintf fmt "-%a" Atom.pp a

let pp fmt t =
  let sep fmt () = Format.fprintf fmt ",@ " in
  Format.fprintf fmt "@[<hov 2>[%d:%s]@ %a :-1@ %a" t.id t.label
    (Format.pp_print_list ~pp_sep:sep pp_update)
    t.updates
    (Format.pp_print_list ~pp_sep:sep Atom.pp)
    t.hard;
  List.iter (fun a -> Format.fprintf fmt ",@ ?%a" Atom.pp a) t.optional;
  List.iter (fun f -> Format.fprintf fmt ",@ %a" Formula.pp f) t.constraints;
  List.iter (fun f -> Format.fprintf fmt ",@ ?{%a}" Formula.pp f) t.optional_constraints;
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t

(* -- Durable serialization (pending-transactions table, Section 4) -------- *)

let rec formula_to_sexp f =
  let open Sexp in
  match f with
  | Formula.True -> Atom "true"
  | Formula.False -> Atom "false"
  | Formula.Atom a -> List [ Atom "atom"; Logic.Atom.to_sexp a ]
  | Formula.Not_atom a -> List [ Atom "natom"; Logic.Atom.to_sexp a ]
  | Formula.Key_free a -> List [ Atom "keyfree"; Logic.Atom.to_sexp a ]
  | Formula.Eq (x, y) -> List [ Atom "eq"; Term.to_sexp x; Term.to_sexp y ]
  | Formula.Neq (x, y) -> List [ Atom "neq"; Term.to_sexp x; Term.to_sexp y ]
  | Formula.Lt (x, y) -> List [ Atom "lt"; Term.to_sexp x; Term.to_sexp y ]
  | Formula.Le (x, y) -> List [ Atom "le"; Term.to_sexp x; Term.to_sexp y ]
  | Formula.And fs -> List (Atom "and" :: List.map formula_to_sexp fs)
  | Formula.Or fs -> List (Atom "or" :: List.map formula_to_sexp fs)

let rec formula_of_sexp s =
  let open Sexp in
  match s with
  | Atom "true" -> Formula.True
  | Atom "false" -> Formula.False
  | List [ Atom "atom"; a ] -> Formula.Atom (Logic.Atom.of_sexp a)
  | List [ Atom "natom"; a ] -> Formula.Not_atom (Logic.Atom.of_sexp a)
  | List [ Atom "keyfree"; a ] -> Formula.Key_free (Logic.Atom.of_sexp a)
  | List [ Atom "eq"; x; y ] -> Formula.Eq (Term.of_sexp x, Term.of_sexp y)
  | List [ Atom "neq"; x; y ] -> Formula.Neq (Term.of_sexp x, Term.of_sexp y)
  | List [ Atom "lt"; x; y ] -> Formula.Lt (Term.of_sexp x, Term.of_sexp y)
  | List [ Atom "le"; x; y ] -> Formula.Le (Term.of_sexp x, Term.of_sexp y)
  | List (Atom "and" :: fs) -> Formula.And (List.map formula_of_sexp fs)
  | List (Atom "or" :: fs) -> Formula.Or (List.map formula_of_sexp fs)
  | s -> raise (Sexp.Parse_error ("bad formula sexp: " ^ Sexp.to_string s))

let update_to_sexp = function
  | Ins a -> Sexp.List [ Sexp.Atom "+"; Atom.to_sexp a ]
  | Del a -> Sexp.List [ Sexp.Atom "-"; Atom.to_sexp a ]

let update_of_sexp = function
  | Sexp.List [ Sexp.Atom "+"; a ] -> Ins (Atom.of_sexp a)
  | Sexp.List [ Sexp.Atom "-"; a ] -> Del (Atom.of_sexp a)
  | s -> raise (Sexp.Parse_error ("bad update sexp: " ^ Sexp.to_string s))

let trigger_to_sexp = function
  | On_demand -> Sexp.Atom "on-demand"
  | On_partner p -> Sexp.List [ Sexp.Atom "on-partner"; Sexp.Atom p ]

let trigger_of_sexp = function
  | Sexp.Atom "on-demand" -> On_demand
  | Sexp.List [ Sexp.Atom "on-partner"; Sexp.Atom p ] -> On_partner p
  | s -> raise (Sexp.Parse_error ("bad trigger sexp: " ^ Sexp.to_string s))

let to_sexp t =
  let open Sexp in
  List
    [ Atom (string_of_int t.id);
      Atom t.label;
      List (List.map Atom.to_sexp t.hard);
      List (List.map Atom.to_sexp t.optional);
      List (List.map formula_to_sexp t.constraints);
      List (List.map formula_to_sexp t.optional_constraints);
      List (List.map update_to_sexp t.updates);
      trigger_to_sexp t.trigger;
    ]

let of_sexp s =
  let open Sexp in
  match s with
  | List
      [ Atom id; Atom label; List hard; List optional; List constraints;
        List optional_constraints; List updates; trigger ] ->
    {
      id = int_of_string id;
      label;
      hard = List.map Atom.of_sexp hard;
      optional = List.map Atom.of_sexp optional;
      constraints = List.map formula_of_sexp constraints;
      optional_constraints = List.map formula_of_sexp optional_constraints;
      updates = List.map update_of_sexp updates;
      trigger = trigger_of_sexp trigger;
      dep_memo = None;
    }
  | s -> raise (Sexp.Parse_error ("bad rtxn sexp: " ^ Sexp.to_string s))

(** Resource transactions (paper Section 2): [U :-1 B] — an update portion
    of blind single-tuple writes, executed under a deferred CHOOSE-1
    grounding of the body's hard atoms, with OPTIONAL soft preferences. *)

(** Blind writes of the FOLLOWED BY block. *)
type update =
  | Ins of Logic.Atom.t
  | Del of Logic.Atom.t

(** When deferred value assignment should end (Section 5.1 leaves this to
    application logic). *)
type trigger =
  | On_demand  (** grounded on read, k-pressure or explicit request *)
  | On_partner of string  (** grounded as soon as the named label commits *)

type t = {
  id : int;  (** admission order; -1 before admission *)
  label : string;  (** client-side identity, e.g. the requesting user *)
  hard : Logic.Atom.t list;
  optional : Logic.Atom.t list;
  constraints : Logic.Formula.t list;  (** hard residual (dis)equalities *)
  optional_constraints : Logic.Formula.t list;
  updates : update list;
  trigger : trigger;
  mutable dep_memo : Logic.Atom.t list option;
      (** cached [dependence_atoms]; managed by this module — construct
          transactions through {!make}/{!of_sexp}/{!freshen}, which
          initialize it, and leave it [None] in any manual record copy
          that changes atoms *)
}

exception Ill_formed of string

val make :
  ?id:int ->
  ?label:string ->
  ?optional:Logic.Atom.t list ->
  ?constraints:Logic.Formula.t list ->
  ?optional_constraints:Logic.Formula.t list ->
  ?trigger:trigger ->
  hard:Logic.Atom.t list ->
  updates:update list ->
  unit ->
  t
(** @raise Ill_formed on range-restriction violations: every update
    variable must appear in the hard body (optional atoms may go
    unsatisfied, so they cannot bind update variables). *)

val validate : t -> unit
val update_atom : update -> Logic.Atom.t
val inserts : t -> Logic.Atom.t list
val deletes : t -> Logic.Atom.t list
val body_vars : t -> Logic.Term.Var_set.t
val all_vars : t -> Logic.Term.Var_set.t

val all_atoms : t -> Logic.Atom.t list
(** Every atom, including optional ones. *)

val dependence_atoms : t -> Logic.Atom.t list
(** Hard body and update atoms only — the atoms that create hard
    dependence between pending transactions.  Optional atoms carry no
    invariant (Section 2), so optional-only overlap keeps partitions
    independent (the flight-independence of Section 5.3). *)

val hard_formula : t -> Logic.Formula.t

val soft_formulas : t -> Logic.Formula.t list
(** Optional obligations grouped by variable-connectivity into
    all-or-nothing units (an adjacency preference is one unit); unrelated
    optional atoms stay separate, preserving the paper's
    maximize-satisfied-conditions rule. *)

val freshen : t -> t
(** Rename every variable to a fresh one; pending transactions must have
    pairwise-disjoint variables (assumed by Lemma 3.4). *)

val ops_under : t -> Logic.Subst.t -> Relational.Database.op list
(** The concrete update batch under a grounding valuation.
    @raise Ill_formed when the valuation leaves an update variable open. *)

val pp_update : Format.formatter -> update -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val formula_to_sexp : Logic.Formula.t -> Relational.Sexp.t
val formula_of_sexp : Relational.Sexp.t -> Logic.Formula.t
val to_sexp : t -> Relational.Sexp.t
val of_sexp : Relational.Sexp.t -> t
(** Durable codec for the pending-transactions table (Section 4). *)

(* Client sessions over a shared quantum database — the programming API of
   Section 2's execution model.

   The paper's contract: the application is notified when its resource
   transaction *commits* (a guarantee that a suitable resource exists and
   will exist when needed), and — optionally — a second time when values
   are actually assigned ("such a second notification could in principle
   be issued if desired").  This layer delivers both through per-client
   mailboxes, routes value-assignment notifications to the transaction's
   owner wherever the grounding was triggered (read, partner arrival,
   k-pressure, explicit), and serializes concurrent clients with a mutex —
   the engine itself is deliberately single-threaded middle-tier state, as
   in the prototype.

   Groundings can fire *inside* an engine call, before the caller has had
   a chance to register ownership of a just-committed transaction (partner
   arrival grounds both partners within submit).  The ground hook
   therefore only buffers; every session operation flushes the buffer to
   mailboxes after ownership bookkeeping is done. *)

module Database = Relational.Database

(** The paper's optional second notification: values have been assigned. *)
type assignment = {
  txn_id : int;
  label : string;
  ops : Database.op list;  (** the concrete writes that were executed *)
  optionals_satisfied : int;
  optionals_total : int;
}

type notification =
  | Committed_ack of { txn_id : int; label : string }
      (** the guarantee: a suitable resource exists and will exist *)
  | Values_assigned of assignment
  | Write_refused of string

type t = {
  qdb : Qdb.t;
  lock : Mutex.t;
  owners : (int, string) Hashtbl.t; (* txn id -> owning client *)
  (* Per-client bounded mailboxes (the actor-runtime channel type):
     [poll_wait] can park on one without holding the hub lock, and
     [disconnect] closing it is what wakes a parked client up.
     Deliveries are best-effort — a full mailbox drops the notification,
     like a disconnected owner always has — so a client that never polls
     cannot wedge the hub. *)
  mailboxes : (string, notification Par.Mailbox.t) Hashtbl.t;
  buffered : Qdb.grounding Queue.t; (* groundings awaiting routing *)
}

let mailbox_capacity = 1024

type client = {
  hub : t;
  client_name : string;
}

(* Lock acquisition is timed into the span of the operation that waited
   (the [name] span wraps both the wait and the engine call), so client
   contention is visible in traces. *)
let with_lock ?(name = "session.op") ?(client = "") t f =
  Obs.Trace.span ~cat:"session"
    ~args:(fun () -> if client = "" then [] else [ ("client", Obs.Trace.Str client) ])
    name
  @@ fun () ->
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let deliver t name note =
  match Hashtbl.find_opt t.mailboxes name with
  | Some q ->
    if Obs.Trace.on () then
      Obs.Trace.instant ~cat:"session" ~args:[ ("client", Obs.Trace.Str name) ] "session.notify";
    ignore (Par.Mailbox.try_send q note : bool) (* full/closed: dropped *)
  | None -> () (* owner disconnected: notification dropped *)

(* Route buffered groundings to their owners.  Must run with the lock
   held, after ownership for any just-committed transaction is recorded. *)
let flush_groundings t =
  Queue.iter
    (fun (g : Qdb.grounding) ->
      let txn = g.Qdb.txn in
      match Hashtbl.find_opt t.owners txn.Rtxn.id with
      | Some owner ->
        Hashtbl.remove t.owners txn.Rtxn.id;
        let satisfied =
          Array.fold_left (fun n b -> if b then n + 1 else n) 0 g.Qdb.optional_satisfied
        in
        deliver t owner
          (Values_assigned
             {
               txn_id = txn.Rtxn.id;
               label = txn.Rtxn.label;
               ops = Rtxn.ops_under txn g.Qdb.valuation;
               optionals_satisfied = satisfied;
               optionals_total = Array.length g.Qdb.optional_satisfied;
             })
      | None -> () (* ownerless transaction (submitted through Qdb directly) *))
    t.buffered;
  Queue.clear t.buffered

let create ?config store =
  let t =
    {
      qdb = Qdb.create ?config store;
      lock = Mutex.create ();
      owners = Hashtbl.create 64;
      mailboxes = Hashtbl.create 8;
      buffered = Queue.create ();
    }
  in
  Qdb.set_ground_hook t.qdb (fun g -> Queue.push g t.buffered);
  t

let qdb t = t.qdb

let connect t client_name =
  with_lock t (fun () ->
      if Hashtbl.mem t.mailboxes client_name then
        invalid_arg (Printf.sprintf "Session.connect: client %s already connected" client_name);
      Hashtbl.add t.mailboxes client_name (Par.Mailbox.create ~capacity:mailbox_capacity ());
      { hub = t; client_name })

let disconnect c =
  with_lock c.hub (fun () ->
      (match Hashtbl.find_opt c.hub.mailboxes c.client_name with
       | Some q -> Par.Mailbox.close q (* wakes a parked [poll_wait] *)
       | None -> ());
      Hashtbl.remove c.hub.mailboxes c.client_name)

let submit c txn =
  with_lock ~name:"session.submit" ~client:c.client_name c.hub (fun () ->
      match Qdb.submit c.hub.qdb txn with
      | Qdb.Committed id as result ->
        Hashtbl.replace c.hub.owners id c.client_name;
        deliver c.hub c.client_name (Committed_ack { txn_id = id; label = txn.Rtxn.label });
        flush_groundings c.hub;
        result
      | (Qdb.Rejected _ | Qdb.Overloaded _) as result ->
        flush_groundings c.hub;
        result)

let read c q =
  with_lock ~name:"session.read" ~client:c.client_name c.hub (fun () ->
      let answers = Qdb.read c.hub.qdb q in
      flush_groundings c.hub;
      answers)

let write c ops =
  with_lock ~name:"session.write" ~client:c.client_name c.hub (fun () ->
      match Qdb.write c.hub.qdb ops with
      | Ok () ->
        flush_groundings c.hub;
        Ok ()
      | Error reason ->
        deliver c.hub c.client_name (Write_refused reason);
        Error reason)

let ground c id =
  with_lock ~name:"session.ground" ~client:c.client_name c.hub (fun () ->
      let gs = Qdb.ground c.hub.qdb id in
      flush_groundings c.hub;
      gs)

let ground_all c =
  with_lock ~name:"session.ground_all" ~client:c.client_name c.hub (fun () ->
      let gs = Qdb.ground_all c.hub.qdb in
      flush_groundings c.hub;
      gs)

(* The mailbox lookup needs the hub lock; the drain does not — mailboxes
   carry their own synchronization, which is what lets [poll_wait] block
   without stalling every other client. *)
let own_mailbox c =
  with_lock c.hub (fun () -> Hashtbl.find_opt c.hub.mailboxes c.client_name)

let rec drain q acc =
  match Par.Mailbox.try_recv q with
  | Some note -> drain q (note :: acc)
  | None -> List.rev acc

let poll c =
  match own_mailbox c with
  | Some q -> drain q []
  | None -> []

let poll_wait c =
  match own_mailbox c with
  | None -> []
  | Some q ->
    (match Par.Mailbox.recv q with
     | None -> [] (* disconnected while waiting *)
     | Some first -> first :: drain q [])

let notification_to_string = function
  | Committed_ack { txn_id; label } ->
    Printf.sprintf "committed #%d (%s): a suitable resource is guaranteed" txn_id label
  | Values_assigned { txn_id; label; ops; optionals_satisfied; optionals_total } ->
    Printf.sprintf "values assigned for #%d (%s): %d write(s), %d/%d optional(s) satisfied"
      txn_id label (List.length ops) optionals_satisfied optionals_total
  | Write_refused reason -> Printf.sprintf "write refused: %s" reason

(** Client sessions over a shared quantum database: the paper's programming
    API, with commit acknowledgments (the resource guarantee) and the
    optional second notification when values are actually assigned.
    Mutex-serialized, so multiple threads may hold clients. *)

(** The paper's optional second notification: values have been assigned. *)
type assignment = {
  txn_id : int;
  label : string;
  ops : Relational.Database.op list;
  optionals_satisfied : int;
  optionals_total : int;
}

type notification =
  | Committed_ack of { txn_id : int; label : string }
  | Values_assigned of assignment
  | Write_refused of string

type t
type client

val create : ?config:Qdb.config -> Relational.Store.t -> t
val qdb : t -> Qdb.t

val connect : t -> string -> client
(** @raise Invalid_argument when the name is already connected. *)

val disconnect : client -> unit

val submit : client -> Rtxn.t -> Qdb.commit_result
(** On commit the client receives [Committed_ack]; when the transaction's
    values are later fixed — by a read, a partner arrival, k-pressure or
    an explicit grounding — it receives [Values_assigned]. *)

val read : client -> Solver.Query.t -> Relational.Tuple.t list
val write : client -> Relational.Database.op list -> (unit, string) result
val ground : client -> int -> Qdb.grounding list
val ground_all : client -> Qdb.grounding list

val poll : client -> notification list
(** Drain this client's mailbox (oldest first) without blocking. *)

val poll_wait : client -> notification list
(** Like {!poll}, but block until at least one notification arrives.
    Returns [[]] only when the client is disconnected (from another
    thread) while waiting.  Does not hold the hub lock while parked, so
    other clients keep making progress — and their engine calls are what
    produce the notification being waited for. *)

val notification_to_string : notification -> string

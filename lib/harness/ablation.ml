(* Ablation benches for the design choices DESIGN.md calls out:

   - solver backend: dynamic backtracking vs the statically-planned
     LIMIT-1 path (at several optimizer lookahead depths, reproducing the
     paper's `optimizer_search_depth` discussion) vs the SAT backend of
     Section 6;
   - serializability: Strict vs Semantic grounding;
   - the solution cache: extension hit rate and the cost of disabling it
     (approximated by the full-resolve backend path);
   - adaptive (phase-transition aware) grounding on/off. *)

module Qdb = Quantum.Qdb
module Runner = Workload.Runner
module Travel = Workload.Travel
module Flights = Workload.Flights

open Common

let small_spec scale seed =
  {
    Runner.default_spec with
    geometry =
      { Flights.flights = 1; rows_per_flight = (if scale.full then 17 else 8); dest = "LA" };
    pairs_per_flight = (if scale.full then 25 else 12);
    order = Travel.Random_order;
    seed;
  }

let run_backend_ablation scale =
  section "Ablation: solver backend (admission checks)";
  let backends =
    [ ("backtracking+cache", Qdb.Backtracking);
      ("limit-1 depth=1", Qdb.Limit_one_plan 1);
      ("limit-1 depth=3", Qdb.Limit_one_plan 3);
      ("limit-1 exhaustive", Qdb.Limit_one_plan max_int);
      ("sat (dpll)", Qdb.Sat_backend);
    ]
  in
  let header = [ "backend"; "total time"; "coordination" ] in
  let rows =
    List.map
      (fun (name, backend) ->
        let config = { Qdb.default_config with backend; check_inserts = backend <> Qdb.Sat_backend } in
        let outcomes =
          List.map
            (fun seed -> Runner.run (Runner.Quantum_engine config) (small_spec scale seed))
            (seeds scale)
        in
        let time = mean (List.map (fun o -> o.Runner.total_time_s) outcomes) in
        let coord = mean (List.map (fun o -> o.Runner.coordination_pct) outcomes) in
        [ name; Printf.sprintf "%.3fs" time; f1 coord ^ "%" ])
      backends
  in
  print_table ~header rows;
  Printf.printf
    "(expected: backtracking+cache fastest; limit-1 degrades as lookahead\n\
    \ shrinks — the paper's bad-query-plan anomaly; SAT correct but costly)\n";
  rows

let run_serializability_ablation scale =
  section "Ablation: strict vs semantic serializability";
  let header = [ "mode"; "total time"; "coordination"; "groundings per read" ] in
  let modes = [ ("strict", Qdb.Strict); ("semantic", Qdb.Semantic) ] in
  let rows =
    List.map
      (fun (name, serializability) ->
        let config = { Qdb.default_config with serializability } in
        let spec seed = { (small_spec scale seed) with read_fraction = 0.3 } in
        let outcomes =
          List.map (fun seed -> Runner.run (Runner.Quantum_engine config) (spec seed)) (seeds scale)
        in
        let time = mean (List.map (fun o -> o.Runner.total_time_s) outcomes) in
        let coord = mean (List.map (fun o -> o.Runner.coordination_pct) outcomes) in
        (* strict grounds whole prefixes, so more groundings are forced *)
        [ name; Printf.sprintf "%.3fs" time; f1 coord ^ "%"; "-" ])
      modes
  in
  print_table ~header rows;
  Printf.printf
    "(expected: semantic preserves more coordination under reads because it\n\
    \ grounds only the read transaction, not its whole arrival prefix)\n";
  rows

let run_adaptive_ablation scale =
  section "Ablation: adaptive (phase-transition aware) grounding";
  let header = [ "policy"; "total time"; "coordination" ] in
  let rows =
    List.map
      (fun (name, adaptive) ->
        let config = { Qdb.default_config with adaptive; adaptive_slack = 1.5 } in
        let outcomes =
          List.map
            (fun seed -> Runner.run (Runner.Quantum_engine config) (small_spec scale seed))
            (seeds scale)
        in
        let time = mean (List.map (fun o -> o.Runner.total_time_s) outcomes) in
        let coord = mean (List.map (fun o -> o.Runner.coordination_pct) outcomes) in
        [ name; Printf.sprintf "%.3fs" time; f1 coord ^ "%" ])
      [ ("off", false); ("on", true) ]
  in
  print_table ~header rows;
  Printf.printf
    "(expected: adaptive grounding trades some coordination for faster\n\
    \ response as the seat pool approaches exhaustion — Section 6)\n";
  rows

let run_cache_capacity_ablation scale =
  section "Ablation: solution-cache capacity (Section 4's multi-solution strategy)";
  let header = [ "capacity"; "extension hit rate"; "full solves"; "total time" ] in
  let rows =
    List.map
      (fun capacity ->
        let config = { Qdb.default_config with cache_capacity = capacity } in
        let seed = List.hd (seeds scale) in
        let store = Flights.fresh_store (small_spec scale seed).Runner.geometry in
        let qdb = Qdb.create ~config store in
        let rng = Workload.Prng.create seed in
        let ops, _ = Runner.build_ops { (small_spec scale seed) with Runner.read_fraction = 0.2 } rng in
        let t0 = Obs.Mclock.now_ns () in
        List.iter
          (fun op ->
            match op with
            | Runner.Book u -> ignore (Qdb.submit qdb (Travel.entangled_txn u))
            | Runner.Read_seat u -> ignore (Qdb.read qdb (Travel.seat_query u)))
          ops;
        ignore (Qdb.ground_all qdb);
        let dt = Obs.Mclock.elapsed_s t0 in
        let cs = (Qdb.metrics qdb).Quantum.Metrics.cache_stats in
        let rate =
          if cs.Solver.Cache.extensions = 0 then 0.
          else
            100.
            *. float_of_int cs.Solver.Cache.extension_hits
            /. float_of_int cs.Solver.Cache.extensions
        in
        [ string_of_int capacity; f1 rate ^ "%";
          string_of_int cs.Solver.Cache.full_solves; Printf.sprintf "%.3fs" dt ])
      [ 1; 2; 4; 8 ]
  in
  print_table ~header rows;
  Printf.printf
    "(more cached solutions absorb more admission checks; the paper proposed
    \ this strategy for a background process but did not implement it)
";
  rows

let run_cache_stats scale =
  section "Ablation: solution-cache amortization (Section 4)";
  let seed = List.hd (seeds scale) in
  let store = Flights.fresh_store (small_spec scale seed).Runner.geometry in
  let qdb = Qdb.create store in
  let rng = Workload.Prng.create seed in
  let ops, _ = Runner.build_ops (small_spec scale seed) rng in
  List.iter
    (fun op ->
      match op with
      | Runner.Book u -> ignore (Qdb.submit qdb (Travel.entangled_txn u))
      | Runner.Read_seat u -> ignore (Qdb.read qdb (Travel.seat_query u)))
    ops;
  ignore (Qdb.ground_all qdb);
  let cstats = (Qdb.metrics qdb).Quantum.Metrics.cache_stats in
  let header = [ "extensions"; "extension hits"; "full solves"; "hit rate" ] in
  let hit_rate =
    if cstats.Solver.Cache.extensions = 0 then 0.
    else
      100.
      *. float_of_int cstats.Solver.Cache.extension_hits
      /. float_of_int cstats.Solver.Cache.extensions
  in
  print_table ~header
    [ [ string_of_int cstats.Solver.Cache.extensions;
        string_of_int cstats.Solver.Cache.extension_hits;
        string_of_int cstats.Solver.Cache.full_solves; f1 hit_rate ^ "%" ] ];
  Printf.printf "(the cache absorbs nearly every admission check, as Section 4 intends)\n";
  cstats

(* Composed-body growth: how the invariant formula widens as transactions
   stay pending — the quantity behind the prototype's 61-join MySQL
   ceiling and the paper's discussion of join-heavy satisfiability
   queries (Sections 4 and 6). *)
let run_formula_growth _scale =
  section "Composed-body growth under In-Order arrivals (the 61-join ceiling)";
  let spec =
    { Runner.default_spec with Runner.order = Travel.In_order; seed = 4242 }
  in
  let store = Flights.fresh_store spec.Runner.geometry in
  let qdb = Qdb.create ~config:{ Qdb.default_config with k = 61 } store in
  let rng = Workload.Prng.create spec.Runner.seed in
  let ops, _ = Runner.build_ops spec rng in
  let samples = ref [] in
  List.iteri
    (fun i op ->
      (match op with
       | Runner.Book u -> ignore (Qdb.submit qdb (Travel.entangled_txn u))
       | Runner.Read_seat u -> ignore (Qdb.read qdb (Travel.seat_query u)));
      if i mod 10 = 9 then begin
        let widest =
          List.fold_left
            (fun acc (pending, stats) -> max acc (pending, stats))
            (0, Logic.Formula.stats Logic.Formula.tru)
            (Qdb.partition_stats qdb)
        in
        samples := (i + 1, widest) :: !samples
      end)
    ops;
  ignore (Qdb.ground_all qdb);
  let header = [ "after txn"; "max pending"; "body atoms (joins)"; "or-branches"; "vars" ] in
  let rows =
    List.rev_map
      (fun (i, (pending, stats)) ->
        [ string_of_int i; string_of_int pending;
          string_of_int (stats.Logic.Formula.atoms + stats.Logic.Formula.negative_atoms);
          string_of_int stats.Logic.Formula.or_branches;
          string_of_int stats.Logic.Formula.variables ])
      !samples
  in
  print_table ~header rows;
  Printf.printf
    "(the prototype force-grounds when a composed body would exceed MySQL's\n\
    \ 61-relation join ceiling; the k knob exists exactly because this width\n\
    \ grows with the number of pending transactions)\n";
  rows

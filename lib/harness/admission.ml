(* Incremental-admission k-sweep ("Figure 7 revisited"): cost of one
   admission as the pending set deepens.

   One flight, k plain bookings into a single partition, so the k-th
   admission composes against k-1 standing transactions — the worst case
   for from-scratch recomposition (O(k^2) clause work per admission) and
   the best case for delta composition + witness-seeded solving.  Each k
   runs twice, [incremental] on and off (the [Qdb.config.incremental]
   ablation), and the sweep asserts the accept/reject outcomes are
   bit-identical between the two modes and across domain-pool sizes
   1/2/4 before recording anything into BENCH_admission.json.

   Wall time per point is the best of [repeats] runs (fresh store and
   engine each time), which filters allocator/GC noise without hiding
   the asymptotic gap the bench exists to track. *)

module Qdb = Quantum.Qdb
module Travel = Workload.Travel
module Flights = Workload.Flights

type point = {
  k : int;
  incremental : bool;
  wall_s : float;
  ns_per_admission : float;
  composed_clauses : int;  (** composed-body clauses standing after the sweep *)
  solver_nodes : int;
  committed : int;
  rejected : int;
}

type recording = {
  ks : int list;
  repeats : int;
  cores : int;
  series : point list;
  speedups : (int * float) list;  (** per k: from-scratch ns / incremental ns *)
  deterministic : bool;
      (** outcomes identical incremental vs from-scratch and at 1/2/4 domains *)
}

let default_ks = [ 5; 10; 20; 40 ]

let users_for k =
  List.filteri (fun i _ -> i < k) (Travel.make_users ~flights:1 ~pairs_per_flight:((k + 1) / 2))

let config ~incremental k =
  (* k+1 bound: the sweep itself must never trigger k-pressure grounding,
     which would shrink the partition mid-measurement.  Capacity 1 (the
     paper prototype's) keeps the post-commit refill out of the measured
     path: with spare-witness refills on, every admission pays one full
     solve of the whole body in BOTH modes and the sweep measures the
     refill, not the admission. *)
  { Qdb.default_config with Qdb.k = k + 1; cache_capacity = 1; incremental }

(* One sweep: k admissions into a fresh engine.  Returns the engine (for
   gauge/stat readout), the per-submission outcome trace and wall time. *)
let sweep ?pool ~incremental k =
  let store = Flights.fresh_store { Flights.flights = 1; rows_per_flight = k; dest = "LA" } in
  let qdb = Qdb.create ~config:(config ~incremental k) ?pool store in
  (* Monotonic clock: Unix.gettimeofday is not NTP-safe and must not time
     latency measurements (see lib/obs/mclock.ml). *)
  let t0 = Obs.Mclock.now_ns () in
  let outcomes =
    List.map
      (fun u ->
        match Qdb.submit qdb (Travel.plain_txn u) with
        | Qdb.Committed _ -> true
        | Qdb.Rejected _ | Qdb.Overloaded _ -> false)
      (users_for k)
  in
  (qdb, outcomes, Obs.Mclock.elapsed_s t0)

let run_point ~repeats ~incremental k =
  let runs = List.init repeats (fun _ -> sweep ~incremental k) in
  let qdb, outcomes, _ = List.hd runs in
  let wall_s = List.fold_left (fun acc (_, _, w) -> Float.min acc w) infinity runs in
  let m = Qdb.metrics qdb in
  let committed = List.length (List.filter Fun.id outcomes) in
  ( {
      k;
      incremental;
      wall_s;
      ns_per_admission = wall_s *. 1e9 /. float_of_int k;
      composed_clauses = Qdb.composed_clause_total qdb;
      solver_nodes = m.Quantum.Metrics.solver_stats.Solver.Backtrack.nodes;
      committed;
      rejected = List.length outcomes - committed;
    },
    outcomes )

(* Outcome identity across the ablation and across domain-pool sizes —
   the bench refuses to record numbers for diverging configurations. *)
let check_identical ~reference k =
  List.for_all
    (fun domains ->
      let pool = Par.Pool.create ~domains () in
      Fun.protect
        ~finally:(fun () -> Par.Pool.shutdown pool)
        (fun () ->
          let _, outcomes, _ = sweep ~pool ~incremental:true k in
          outcomes = reference))
    [ 1; 2; 4 ]

let run ?(ks = default_ks) ?(repeats = 3) () =
  let raw =
    List.map
      (fun k ->
        let inc, inc_outcomes = run_point ~repeats ~incremental:true k in
        let scratch, scratch_outcomes = run_point ~repeats ~incremental:false k in
        let identical =
          inc_outcomes = scratch_outcomes && check_identical ~reference:inc_outcomes k
        in
        (k, inc, scratch, identical))
      ks
  in
  {
    ks;
    repeats;
    cores = Domain.recommended_domain_count ();
    series = List.concat_map (fun (_, inc, scratch, _) -> [ inc; scratch ]) raw;
    speedups =
      List.map
        (fun (k, inc, scratch, _) ->
          ( k,
            if inc.ns_per_admission > 0. then scratch.ns_per_admission /. inc.ns_per_admission
            else 0. ))
        raw;
    deterministic = List.for_all (fun (_, _, _, identical) -> identical) raw;
  }

(* -- Reporting -------------------------------------------------------------- *)

let mode_name p = if p.incremental then "incremental" else "from-scratch"

let print r =
  Common.section "Incremental admission: pending-depth sweep (Figure 7 revisited)";
  let rows =
    List.map
      (fun p ->
        [ string_of_int p.k;
          mode_name p;
          Printf.sprintf "%.1f" (p.ns_per_admission /. 1000.);
          string_of_int p.composed_clauses;
          string_of_int p.solver_nodes;
          string_of_int p.committed;
          string_of_int p.rejected;
        ])
      r.series
  in
  Common.print_table ~csv:"admission"
    ~header:[ "k"; "mode"; "us/adm"; "clauses"; "nodes"; "committed"; "rejected" ]
    rows;
  List.iter
    (fun (k, x) -> Printf.printf "k=%-3d incremental speedup: %.2fx\n%!" k x)
    r.speedups;
  Printf.printf "(host cores: %d; outcomes %s across modes and 1/2/4 domains)\n%!" r.cores
    (if r.deterministic then "identical" else "DIVERGED");
  if not r.deterministic then
    failwith "admission bench: outcomes diverged across modes or domain counts"

let json_of_recording r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"qdb.bench.admission/v1\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"workload\": {\"ks\": [%s], \"repeats\": %d},\n"
       (String.concat ", " (List.map string_of_int r.ks))
       r.repeats);
  Buffer.add_string b
    (Printf.sprintf "  \"host\": {\"cores\": %d},\n  \"deterministic\": %b,\n  \"series\": [\n"
       r.cores r.deterministic);
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"k\": %d, \"mode\": \"%s\", \"wall_s\": %.6f, \"ns_per_admission\": %.1f, \
            \"composed_clauses\": %d, \"solver_nodes\": %d, \"committed\": %d, \"rejected\": \
            %d}%s\n"
           p.k (mode_name p) p.wall_s p.ns_per_admission p.composed_clauses p.solver_nodes
           p.committed p.rejected
           (if i = List.length r.series - 1 then "" else ",")))
    r.series;
  Buffer.add_string b "  ],\n  \"speedup_vs_scratch\": [\n";
  List.iteri
    (fun i (k, x) ->
      Buffer.add_string b
        (Printf.sprintf "    {\"k\": %d, \"x\": %.3f}%s\n" k x
           (if i = List.length r.speedups - 1 then "" else ",")))
    r.speedups;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write ?(path = "results/BENCH_admission.json") r =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  output_string oc (json_of_recording r);
  close_out oc;
  Printf.printf "(admission series written to %s)\n%!" path;
  path

(* Calendar displacement experiment (motivated by Section 1's second
   scenario, not a paper figure): flexible team meetings are scheduled
   weeks ahead; high-priority fixed-slot meetings arrive at short notice.

   Classical eager scheduling fixes every meeting's slot at creation, so
   a late high-priority meeting that lands on an occupied slot forces a
   *reschedule* (the offsite anecdote — someone re-coordinates the whole
   team).  A quantum calendar keeps flexible meetings unfixed, so the
   late meeting simply commits and the flexible ones' possibilities
   shrink.  We measure, under increasing high-priority pressure:

   - how many high-priority meetings could be accommodated, and
   - how many reschedules (human interventions) each approach needed. *)

module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn
module Calendar = Workload.Calendar
module Prng = Workload.Prng

open Common

type outcome = {
  hp_total : int;
  hp_accommodated : int;
  reschedules : int;
  flexible_scheduled : int;
  flexible_total : int;
}

let people = [ "ann"; "bob"; "cat"; "dan"; "eve" ]

(* A stream of [n_flex] flexible meetings (random 2–3 participants) and
   [n_hp] high-priority fixed-slot meetings (random participant + slot),
   interleaved with the fixed ones arriving in the later half. *)
let build_stream rng ~n_flex ~n_hp ~slots =
  let flex =
    List.init n_flex (fun i ->
        let k = 2 + Prng.int rng 2 in
        let participants =
          List.filteri (fun j _ -> j < k) (Prng.shuffle_list rng people)
        in
        `Flexible (Printf.sprintf "flex%d" i, participants))
  in
  let hp =
    List.init n_hp (fun i ->
        let who = Prng.pick rng people in
        `Fixed (Printf.sprintf "hp%d" i, [ who ], Prng.int rng slots))
  in
  (* Flexible meetings book early; high-priority ones land late. *)
  flex @ Prng.shuffle_list rng hp

let run_quantum stream ~slots:_ store =
  let qdb = Qdb.create store in
  let hp_total = ref 0 and hp_ok = ref 0 and flex_total = ref 0 in
  List.iter
    (fun item ->
      match item with
      | `Flexible (mid, participants) ->
        incr flex_total;
        ignore (Qdb.submit qdb (Calendar.meeting_txn ~mid ~participants ()))
      | `Fixed (mid, participants, slot) ->
        incr hp_total;
        (match Qdb.submit qdb (Calendar.fixed_meeting_txn ~mid ~participants ~slot ()) with
         | Qdb.Committed _ -> incr hp_ok
         | Qdb.Rejected _ | Qdb.Overloaded _ -> ()))
    stream;
  ignore (Qdb.ground_all qdb);
  let scheduled =
    Relational.Table.cardinality (Relational.Database.table (Qdb.db qdb) "Meeting")
  in
  {
    hp_total = !hp_total;
    hp_accommodated = !hp_ok;
    reschedules = 0; (* deferral never reschedules: nothing was fixed *)
    flexible_scheduled = scheduled - !hp_ok;
    flexible_total = !flex_total;
  }

(* Eager classical baseline: every meeting is fixed at creation (ground
   immediately).  A high-priority meeting whose slot is blocked by a
   flexible meeting displaces it: the flexible meeting is cancelled and
   re-booked on any remaining common slot — one reschedule (and possibly
   a cascade when re-booking fails). *)
let run_eager stream ~slots store =
  let qdb = Qdb.create store in
  let db = Qdb.db qdb in
  let hp_total = ref 0 and hp_ok = ref 0 and reschedules = ref 0 in
  let flex_total = ref 0 in
  (* mid -> participants, for displacement bookkeeping *)
  let booked : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  let book_eager mid participants =
    match Qdb.submit qdb (Calendar.meeting_txn ~mid ~participants ()) with
    | Qdb.Committed id ->
      ignore (Qdb.ground qdb id);
      Hashtbl.replace booked mid participants;
      true
    | Qdb.Rejected _ | Qdb.Overloaded _ -> false
  in
  let free_the_slot mid_hp participants slot =
    (* Find fixed flexible meetings blocking [participants] at [slot]. *)
    ignore mid_hp;
    let blockers =
      Hashtbl.fold
        (fun mid ps acc ->
          if
            Calendar.meeting_slot db mid = Some slot
            && List.exists (fun p -> List.mem p ps) participants
          then (mid, ps) :: acc
          else acc)
        booked []
    in
    List.iter
      (fun (mid, ps) ->
        incr reschedules;
        (* Cancel: restore the participants' slot and drop the meeting. *)
        let ops =
          Relational.Database.Delete
            ( "Meeting",
              Relational.Tuple.of_list [ Relational.Value.Str mid; Relational.Value.Int slot ] )
          :: List.map
               (fun p ->
                 Relational.Database.Insert
                   ( "Free",
                     Relational.Tuple.of_list
                       [ Relational.Value.Str p; Relational.Value.Int slot ] ))
               ps
        in
        (match Qdb.write qdb ops with
         | Ok () -> ()
         | Error _ -> ());
        Hashtbl.remove booked mid;
        (* Re-book somewhere else, eagerly again (may fail: the meeting is
           then lost — the stressful outcome the paper describes). *)
        ignore (book_eager mid ps))
      blockers
  in
  List.iter
    (fun item ->
      match item with
      | `Flexible (mid, participants) ->
        incr flex_total;
        ignore (book_eager mid participants)
      | `Fixed (mid, participants, slot) ->
        incr hp_total;
        let try_fixed () =
          match Qdb.submit qdb (Calendar.fixed_meeting_txn ~mid ~participants ~slot ()) with
          | Qdb.Committed id ->
            ignore (Qdb.ground qdb id);
            true
          | Qdb.Rejected _ | Qdb.Overloaded _ -> false
        in
        if try_fixed () then incr hp_ok
        else begin
          (* Displace whoever blocks the slot, then retry once. *)
          free_the_slot mid participants slot;
          if try_fixed () then incr hp_ok
        end)
    stream;
  ignore slots;
  let scheduled =
    Relational.Table.cardinality (Relational.Database.table (Qdb.db qdb) "Meeting")
  in
  {
    hp_total = !hp_total;
    hp_accommodated = !hp_ok;
    reschedules = !reschedules;
    flexible_scheduled = scheduled - !hp_ok;
    flexible_total = !flex_total;
  }

let run scale =
  section "Calendar displacement (Section 1's scenario; beyond the paper's figures)";
  let days = 5 and hours = 4 in
  let slots = days * hours in
  let header =
    [ "hp meetings"; "engine"; "hp accommodated"; "reschedules"; "flex scheduled" ]
  in
  let rows =
    List.concat_map
      (fun n_hp ->
        let measure engine_name run_engine =
          let per_seed seed =
            let rng = Prng.create seed in
            let stream = build_stream rng ~n_flex:10 ~n_hp ~slots in
            let store = Calendar.fresh_store ~people ~days ~hours_per_day:hours () in
            run_engine stream ~slots store
          in
          let outs = List.map per_seed (seeds scale) in
          let avg f = mean (List.map (fun o -> float_of_int (f o)) outs) in
          [ string_of_int n_hp; engine_name;
            Printf.sprintf "%.1f/%d" (avg (fun o -> o.hp_accommodated)) n_hp;
            f1 (avg (fun o -> o.reschedules));
            Printf.sprintf "%.1f/%d" (avg (fun o -> o.flexible_scheduled)) 10;
          ]
        in
        [ measure "quantum" run_quantum; measure "eager" run_eager ])
      [ 2; 5; 10 ]
  in
  print_table ~csv:"calendar" ~header rows;
  Printf.printf
    "(expected: the quantum calendar absorbs high-priority meetings with zero\n\
    \ reschedules; eager fixing needs human-visible reschedules and still\n\
    \ loses meetings as pressure grows)\n";
  rows

(* Shared experiment infrastructure: scaled-vs-paper-sized parameter sets,
   run averaging, and aligned table printing.

   Absolute sizes default to a scaled-down configuration so the whole
   suite regenerates in minutes on a laptop; [--full] switches to the
   paper's sizes.  Shapes — who wins, slopes, crossovers — are preserved
   at either scale (EXPERIMENTS.md records both paper and measured
   numbers). *)

module Qdb = Quantum.Qdb
module Runner = Workload.Runner
module Travel = Workload.Travel
module Flights = Workload.Flights

type scale = {
  full : bool;
  runs : int; (* independent seeds averaged per data point (paper: 5) *)
}

let default_scale = { full = false; runs = 3 }
let paper_scale = { full = true; runs = 5 }

let seeds scale = List.init scale.runs (fun i -> 1000 + (7 * i))

let mean values =
  match values with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. values /. float_of_int (List.length values)

(* Average a float-valued measurement over the scale's seeds. *)
let averaged scale f = mean (List.map f (seeds scale))

(* -- Output ----------------------------------------------------------------- *)

let section title =
  Printf.printf "\n== %s ==\n%!" title

let subsection title = Printf.printf "-- %s --\n%!" title

(* When set (bench --csv DIR), experiments also dump their tables as CSV
   files for external plotting. *)
let csv_dir : string option ref = ref None

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv name ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    let line cells = output_string oc (String.concat "," (List.map csv_escape cells) ^ "\n") in
    line header;
    List.iter line rows;
    close_out oc;
    Printf.printf "(csv written to %s)\n%!" path

(* Machine-readable telemetry: the registry snapshot (engine counters,
   latency histograms, micro-bench gauges) written as JSON next to the
   CSVs — or under results/ when no --csv dir was given, so automation
   (scripts/ci.sh) always has a stable place to look. *)
let metrics_path () =
  let dir = Option.value ~default:"results" !csv_dir in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Filename.concat dir "metrics.json"

let write_metrics registry =
  let path = metrics_path () in
  Obs.Export.write_json_snapshot path registry;
  Printf.printf "(metrics written to %s)\n%!" path;
  path

let print_table ?csv ~header rows =
  (match csv with
   | Some name -> write_csv name ~header rows
   | None -> ());
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    List.iter2 (fun w cell -> Printf.printf "%-*s  " w cell) widths row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  flush stdout

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let ms x = Printf.sprintf "%.1f" (x *. 1000.)

(* -- Workload presets -------------------------------------------------------- *)

(* Figures 5/6: one flight, 102 seats, 102 users, k = 61 (the prototype's
   MySQL join ceiling).  Cheap enough to run at paper size always. *)
let fig56_spec _scale order seed = { Runner.default_spec with order; seed }

let fig56_config = { Qdb.default_config with k = 61 }

(* Figure 7 / Table 2: flights sweep, full occupancy, random order.  The
   per-flight load stays at the paper's size (150 seats, 75 couples) so
   the k-effect of Table 2 is preserved; the reduced scale only sweeps
   fewer flights. *)
let fig7_flight_counts scale = if scale.full then [ 10; 25; 50; 75; 100 ] else [ 1; 2; 4; 6 ]
let fig7_rows _scale = 50
let fig7_pairs _scale = 75
let fig7_ks = [ 20; 30; 40 ]

let fig7_spec scale ~flights seed =
  {
    Runner.default_spec with
    geometry = { Flights.flights; rows_per_flight = fig7_rows scale; dest = "LA" };
    pairs_per_flight = fig7_pairs scale;
    order = Travel.Random_order;
    seed;
  }

(* Figures 8/9: fixed fleet, read fraction sweep. *)
let fig89_flights scale = if scale.full then 40 else 2
let fig89_read_fractions = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]

let fig89_spec scale ~read_fraction seed =
  {
    Runner.geometry =
      { Flights.flights = fig89_flights scale; rows_per_flight = fig7_rows scale; dest = "LA" };
    pairs_per_flight = fig7_pairs scale;
    order = Travel.Random_order;
    read_fraction;
    seed;
  }

let config_with_k k = { Qdb.default_config with k }

(* Flash-crowd contention bench: drive admission into the 10–50%
   rejection regime and record what degradation costs.

   Two workload shapes, both deliberately over capacity:

   - ticket_sale: one flight, far more buyers than seats — the flash
     crowd.  Scarcity (buyers/seats) sweeps the rejection rate; the
     entangled fraction sweeps how much optional-adjacency reasoning
     each admission carries.
   - hotel_overbooking: group bookings (one transaction per party of
     three) against a room pool that only fits some of the parties.

   One point additionally runs the whole crowd under a squeezed governor
   (a node budget far below what the contended tail needs) so the
   recording also covers the [Overloaded] outcome and its latency.

   Every point runs on a fresh engine; outcome counts are deterministic
   (pigeonhole capacity arguments, fixed seeds), which is what the CI
   gate pins — the latency split (accept / reject / overload: count,
   mean, p50, p99, max in µs) is recorded as measured and never gated.
   Results go to results/BENCH_contention.json (schema
   qdb.bench.contention/v1); the committed baseline lives at the repo
   root. *)

module Qdb = Quantum.Qdb
module Governor = Quantum.Governor
module Metrics = Quantum.Metrics
module Travel = Workload.Travel
module Flights = Workload.Flights
module Prng = Workload.Prng
module Histogram = Obs.Histogram

type latency_split = {
  count : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  max_us : float;
}

type spec = {
  name : string;
  kind : string; (* "ticket_sale" | "hotel_overbooking" *)
  rows : int; (* seat rows on the one flight (3 seats each) *)
  crowd : int; (* buyers (ticket_sale) or parties of three (hotel) *)
  entangled_pct : int; (* % of buyers booking with the partner condition *)
  node_budget : int; (* 0 = engine default (unlimited in practice) *)
  seed : int;
}

type point = {
  spec : spec;
  seats : int;
  submissions : int;
  committed : int;
  rejected : int;
  overloaded : int;
  reject_pct : float;
  overload_pct : float;
  accept : latency_split;
  reject : latency_split;
  overload : latency_split;
}

type recording = {
  seed : int;
  cores : int;
  deterministic : bool;
  series : point list;
}

let split_of h =
  let us x = 1e6 *. x in
  {
    count = Histogram.count h;
    mean_us = us (Histogram.mean h);
    p50_us = us (Histogram.quantile h 0.5);
    p99_us = us (Histogram.quantile h 0.99);
    max_us = us (Histogram.max_value h);
  }

(* The default sweep: scarcity from a near-miss to a crush, one group
   workload, one squeezed-governor point.  Capacity on 3 rows is 9
   seats, so the expected rejection rates are 1/10, 5/14, 7/16 and (for
   the hotel) 2/5 — all inside the 10–50% regime the gate pins. *)
let default_specs seed =
  [
    { name = "ticket_sale_light"; kind = "ticket_sale"; rows = 3; crowd = 10;
      entangled_pct = 50; node_budget = 0; seed };
    { name = "ticket_sale_rush"; kind = "ticket_sale"; rows = 3; crowd = 14;
      entangled_pct = 50; node_budget = 0; seed = seed + 1 };
    { name = "ticket_sale_crush"; kind = "ticket_sale"; rows = 3; crowd = 16;
      entangled_pct = 100; node_budget = 0; seed = seed + 2 };
    { name = "hotel_overbooking"; kind = "hotel_overbooking"; rows = 2; crowd = 5;
      entangled_pct = 0; node_budget = 0; seed = seed + 3 };
    { name = "ticket_sale_squeezed"; kind = "ticket_sale"; rows = 3; crowd = 14;
      entangled_pct = 100; node_budget = 8; seed = seed + 1 };
  ]

let run_point spec =
  let geometry = { Flights.flights = 1; rows_per_flight = spec.rows; dest = "LA" } in
  let store = Flights.fresh_store geometry in
  let qdb = Qdb.create store in
  let governor =
    if spec.node_budget > 0 then
      Some (Governor.make ~node_budget:spec.node_budget ~max_retries:1 ~escalation:2 ())
    else None
  in
  let rng = Prng.create spec.seed in
  let txns =
    match spec.kind with
    | "ticket_sale" ->
      let users =
        List.filteri
          (fun i _ -> i < spec.crowd)
          (Travel.make_users ~flights:1 ~pairs_per_flight:((spec.crowd + 1) / 2))
      in
      let users = Prng.shuffle_list rng users in
      List.map
        (fun u ->
          if Prng.int rng 100 < spec.entangled_pct then Travel.entangled_txn u
          else Travel.plain_txn u)
        users
    | "hotel_overbooking" ->
      List.init spec.crowd (fun g ->
          let members = List.map (Printf.sprintf "party%d_%c" g) [ 'a'; 'b' ] in
          Travel.group_txn ~members ~flight:0 ())
    | other -> invalid_arg (Printf.sprintf "Contention.run_point: unknown kind %S" other)
  in
  List.iter (fun txn -> ignore (Qdb.submit ?governor qdb txn)) txns;
  let m = Qdb.metrics qdb in
  let submissions = m.Metrics.submitted in
  let pct n = if submissions > 0 then 100. *. float_of_int n /. float_of_int submissions else 0. in
  {
    spec;
    seats = Flights.seats_per_flight geometry;
    submissions;
    committed = m.Metrics.committed;
    rejected = m.Metrics.rejected;
    overloaded = m.Metrics.overloaded;
    reject_pct = pct m.Metrics.rejected;
    overload_pct = pct m.Metrics.overloaded;
    accept = split_of m.Metrics.accept_latency;
    reject = split_of m.Metrics.reject_latency;
    overload = split_of m.Metrics.overload_latency;
  }

let counts p = (p.submissions, p.committed, p.rejected, p.overloaded)

let run ?(seed = 7000) () =
  let specs = default_specs seed in
  (* Determinism probe: the first point twice, counts must agree. *)
  let deterministic =
    match specs with
    | [] -> true
    | s :: _ -> counts (run_point s) = counts (run_point s)
  in
  let series = List.map run_point specs in
  {
    seed;
    cores = Domain.recommended_domain_count ();
    deterministic;
    series;
  }

let print_summary r =
  Common.section "Flash-crowd contention sweep";
  let rows =
    List.map
      (fun p ->
        [
          p.spec.name;
          Printf.sprintf "%d/%d" p.spec.crowd p.seats;
          string_of_int p.committed;
          string_of_int p.rejected;
          string_of_int p.overloaded;
          Common.f1 p.reject_pct ^ "%";
          Common.f1 p.accept.mean_us;
          Common.f1 p.reject.mean_us;
          (if p.overload.count > 0 then Common.f1 p.overload.mean_us else "-");
        ])
      r.series
  in
  Common.print_table ~csv:"contention"
    ~header:
      [ "point"; "crowd/seats"; "commit"; "reject"; "ovl"; "rej%"; "acc us"; "rej us"; "ovl us" ]
    rows;
  Printf.printf "outcome counts %s across repeat runs\n%!"
    (if r.deterministic then "identical" else "DIVERGED");
  if not r.deterministic then failwith "contention bench: outcome counts diverged across runs"

let split_json name s =
  Printf.sprintf
    "\"%s\": {\"count\": %d, \"mean_us\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, \
     \"max_us\": %.1f}"
    name s.count s.mean_us s.p50_us s.p99_us s.max_us

let json_of_recording r =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"qdb.bench.contention/v1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"workload\": {\"seed\": %d, \"flights\": 1},\n" r.seed);
  Buffer.add_string b
    (Printf.sprintf "  \"host\": {\"cores\": %d},\n  \"deterministic\": %b,\n" r.cores
       r.deterministic);
  Buffer.add_string b "  \"series\": [\n";
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"point\": \"%s\", \"kind\": \"%s\", \"crowd\": %d, \"seats\": %d, \
            \"entangled_pct\": %d, \"node_budget\": %d,\n\
           \     \"submissions\": %d, \"committed\": %d, \"rejected\": %d, \"overloaded\": \
            %d, \"reject_pct\": %.2f, \"overload_pct\": %.2f,\n\
           \     \"latency_us\": {%s, %s, %s}}%s\n"
           p.spec.name p.spec.kind p.spec.crowd p.seats p.spec.entangled_pct
           p.spec.node_budget p.submissions p.committed p.rejected p.overloaded p.reject_pct
           p.overload_pct (split_json "accept" p.accept) (split_json "reject" p.reject)
           (split_json "overload" p.overload)
           (if i = List.length r.series - 1 then "" else ",")))
    r.series;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write ?(path = "results/BENCH_contention.json") r =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (json_of_recording r));
  Printf.printf "contention series written to %s\n%!" path;
  r

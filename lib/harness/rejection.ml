(* Rejection-path smoke: drive an over-capacity workload and assert the
   rejection observability actually fires.

   Every committed bench records [rejected: 0] (their workloads are sized
   to seat capacity), so without this check the rejection counters, the
   rejected-outcome submit spans and the flight-recorder records for
   rejected admissions are dead code as far as CI is concerned.  Here one
   flight has 6 seats and 16 travellers book plain (any-seat) txns: the
   first 6 admissions commit, every later composed body is pigeonhole-
   unsatisfiable and must be rejected — deterministically, whatever the
   engine configuration defaults are.

   [run] enables tracing + the flight recorder for its own window
   (restoring the previous state), checks every assertion, and raises
   [Failure] on any violation — bench/main exits non-zero on it, which is
   what scripts/ci.sh gates on. *)

module Qdb = Quantum.Qdb
module Travel = Workload.Travel
module Flights = Workload.Flights
module Trace = Obs.Trace
module Flight = Obs.Flight

type summary = {
  submitted : int;
  committed : int;
  rejected : int;
  rejection_spans : int; (* qdb.submit spans with outcome "rejected" *)
  rejected_records : int; (* flight-recorder records with outcome "rejected" *)
}

let seats = 6 (* one flight, 2 rows x 3 seats *)
let travellers = 16

let check cond fmt = Printf.ksprintf (fun msg -> if not cond then failwith msg) fmt

let run ?(quiet = false) () =
  let trace_was_on = Trace.on () in
  let flight_was_on = Flight.on () in
  if not trace_was_on then Trace.enable ();
  if not flight_was_on then Flight.enable ();
  Fun.protect
    ~finally:(fun () ->
      if not trace_was_on then Trace.disable ();
      if not flight_was_on then Flight.disable ())
  @@ fun () ->
  let geometry = { Flights.flights = 1; rows_per_flight = 2; dest = "LA" } in
  let store = Flights.fresh_store geometry in
  let qdb = Qdb.create store in
  let users =
    List.filteri
      (fun i _ -> i < travellers)
      (Travel.make_users ~flights:1 ~pairs_per_flight:((travellers + 1) / 2))
  in
  let outcomes =
    List.map
      (fun u ->
        match Qdb.submit qdb (Travel.plain_txn u) with
        | Qdb.Committed _ -> true
        | Qdb.Rejected _ | Qdb.Overloaded _ -> false)
      users
  in
  let committed = List.length (List.filter Fun.id outcomes) in
  let rejected = List.length outcomes - committed in
  let m = Qdb.metrics qdb in
  let rejection_spans =
    List.filter
      (fun (e : Trace.event) ->
        String.equal e.Trace.name "qdb.submit"
        && List.exists
             (fun (k, v) -> String.equal k "outcome" && v = Trace.Str "rejected")
             e.Trace.args)
      (Trace.events ())
  in
  let records = Flight.records () in
  let rejected_records =
    List.filter (fun (r : Flight.record) -> String.equal r.Flight.outcome "rejected") records
  in
  (* The contract, piece by piece. *)
  check (committed = seats) "rejection smoke: %d committed, want %d (seat capacity)" committed
    seats;
  check (rejected = travellers - seats) "rejection smoke: %d rejected, want %d" rejected
    (travellers - seats);
  check
    (m.Quantum.Metrics.rejected = rejected)
    "rejection smoke: metrics.rejected = %d, want %d" m.Quantum.Metrics.rejected rejected;
  check
    (List.length rejection_spans = rejected)
    "rejection smoke: %d rejected-outcome submit spans, want %d"
    (List.length rejection_spans) rejected;
  check
    (List.length records >= travellers)
    "rejection smoke: %d flight records, want >= %d" (List.length records) travellers;
  check
    (List.length rejected_records = rejected)
    "rejection smoke: %d rejected flight records, want %d"
    (List.length rejected_records) rejected;
  (* A rejection is a failed admission check, never a free pass: each
     rejected record must show cache-extension and/or solver time. *)
  List.iter
    (fun (r : Flight.record) ->
      let worked =
        Flight.record_phase_ns r Flight.Solve
        + Flight.record_phase_ns r Flight.Cache
        + Flight.record_phase_ns r Flight.Compose
      in
      check (worked > 0) "rejection smoke: rejected txn %d shows no admission-check time"
        r.Flight.txn_id)
    rejected_records;
  let s =
    {
      submitted = List.length users;
      committed;
      rejected;
      rejection_spans = List.length rejection_spans;
      rejected_records = List.length rejected_records;
    }
  in
  if not quiet then begin
    Common.section "Rejection-path smoke (over-capacity workload)";
    Printf.printf
      "%d submitted -> %d committed / %d rejected; %d rejection spans, %d rejected flight \
       records — all observability checks passed\n%!"
      s.submitted s.committed s.rejected s.rejection_spans s.rejected_records
  end;
  s

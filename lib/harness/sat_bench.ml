(* SAT-backend ablation sweep: cost of one admission as the pending set
   deepens, across three solver backends on identical workloads —

   - backtracking: the production path (delta composition + witness
     extension through the solution cache);
   - dpll: [Sat_backend] with [incremental = false] — eager re-encode of
     the flattened body plus one from-scratch DPLL run per admission (the
     pre-CDCL cost profile);
   - cdcl: [Sat_backend] with [incremental = true] — the persistent
     incremental session; per-transaction chunks encode once, solves run
     under activation-literal assumptions and learned clauses survive.

   One flight with ~k seats, k plain bookings into one partition: the
   k-th admission composes against k-1 standing transactions with
   pairwise seat-distinctness through the delete-freeing predicates, and
   the flight ends nearly full.  A second,
   dense point drives entangled pair bookings (partner triggers ground
   pairs mid-sweep, exercising chunk staleness re-encoding in the
   session).  Insert-safety checks are off in ALL modes — their negative
   atoms are not SAT-encodable, and the sweep must compare backends on
   the same composed body.

   The sweep refuses to record anything unless the accept/reject outcome
   traces are bit-identical across the three backends at every point.
   Wall time per point is the best of [repeats] runs (fresh store and
   engine each time).  [fallbacks] counts admissions the SAT backend
   could not solve natively (encode budget / unsupported body) and handed
   to the search solver — the honest "could DPLL even do this?" signal
   the k=160 point exists to record. *)

module Qdb = Quantum.Qdb
module Metrics = Quantum.Metrics
module Travel = Workload.Travel
module Flights = Workload.Flights

type mode =
  | Backtracking
  | Dpll
  | Cdcl

let mode_name = function
  | Backtracking -> "backtracking"
  | Dpll -> "dpll"
  | Cdcl -> "cdcl"

let all_modes = [ Backtracking; Dpll; Cdcl ]

type point = {
  mode : string;
  k : int;
  dense : bool;  (** entangled pair workload instead of plain bookings *)
  wall_s : float;
  ns_per_admission : float;
  committed : int;
  rejected : int;
  conflicts : int;  (** CDCL session counters; 0 for the other modes *)
  learned : int;
  restarts : int;
  propagations : int;
  fallbacks : int;  (** SAT checks handed to the search solver *)
  resets : int;  (** session rebuilds under clause-budget pressure *)
}

type recording = {
  ks : int list;
  dense_k : int;
  repeats : int;
  cores : int;
  series : point list;
  speedup_vs_dpll : (int * float) list;  (** per k: dpll ns / cdcl ns *)
  speedup_vs_backtracking : (int * float) list;
  deterministic : bool;  (** outcomes identical across all three backends *)
}

let default_ks = [ 40; 80; 160 ]
let default_dense_k = 24

let users_for k =
  List.filteri (fun i _ -> i < k) (Travel.make_users ~flights:1 ~pairs_per_flight:((k + 1) / 2))

let config mode k =
  (* k+1 bound: no k-pressure grounding mid-measurement.  Capacity 1
     keeps post-commit refills out of the measured path (see the
     admission bench).  check_inserts off in every mode — see header. *)
  let base =
    { Qdb.default_config with Qdb.k = k + 1; cache_capacity = 1; check_inserts = false }
  in
  match mode with
  | Backtracking -> base
  | Dpll -> { base with Qdb.backend = Qdb.Sat_backend; incremental = false }
  | Cdcl -> { base with Qdb.backend = Qdb.Sat_backend; incremental = true }

(* One sweep: k admissions into a fresh engine.  Returns the engine (for
   counter readout), the per-submission outcome trace and wall time. *)
let sweep mode ~dense k =
  (* 3 seats per row: size the flight to k seats (rounded up to a whole
     row), so the k-th booking runs against a nearly-full flight and the
     per-variable domain stays k-sized rather than 3k. *)
  let store =
    Flights.fresh_store { Flights.flights = 1; rows_per_flight = (k + 2) / 3; dest = "LA" }
  in
  let qdb = Qdb.create ~config:(config mode k) store in
  let txn_of u = if dense then Travel.entangled_txn u else Travel.plain_txn u in
  let t0 = Obs.Mclock.now_ns () in
  let outcomes =
    List.map
      (fun u ->
        match Qdb.submit qdb (txn_of u) with
        | Qdb.Committed _ -> true
        | Qdb.Rejected _ | Qdb.Overloaded _ -> false)
      (users_for k)
  in
  (qdb, outcomes, Obs.Mclock.elapsed_s t0)

let run_point ~repeats mode ~dense k =
  let runs = List.init repeats (fun _ -> sweep mode ~dense k) in
  let qdb, outcomes, _ = List.hd runs in
  let wall_s = List.fold_left (fun acc (_, _, w) -> Float.min acc w) infinity runs in
  let m = Qdb.metrics qdb in
  let committed = List.length (List.filter Fun.id outcomes) in
  ( {
      mode = mode_name mode;
      k;
      dense;
      wall_s;
      ns_per_admission = wall_s *. 1e9 /. float_of_int k;
      committed;
      rejected = List.length outcomes - committed;
      conflicts = m.Metrics.sat_conflicts;
      learned = m.Metrics.sat_learned;
      restarts = m.Metrics.sat_restarts;
      propagations = m.Metrics.sat_propagations;
      fallbacks = m.Metrics.sat_fallbacks;
      resets = Qdb.sat_session_resets qdb;
    },
    outcomes )

let run ?(ks = default_ks) ?(dense_k = default_dense_k) ?(repeats = 3) () =
  let measure ~dense k =
    let results = List.map (fun mode -> run_point ~repeats mode ~dense k) all_modes in
    let reference = snd (List.hd results) in
    let identical = List.for_all (fun (_, outcomes) -> outcomes = reference) results in
    (List.map fst results, identical)
  in
  let sparse = List.map (fun k -> (k, measure ~dense:false k)) ks in
  let dense_points, dense_identical = measure ~dense:true dense_k in
  let find mode points = List.find (fun p -> p.mode = mode_name mode) points in
  let speedup num den = if den.ns_per_admission > 0. then num.ns_per_admission /. den.ns_per_admission else 0. in
  {
    ks;
    dense_k;
    repeats;
    cores = Domain.recommended_domain_count ();
    series = List.concat_map (fun (_, (points, _)) -> points) sparse @ dense_points;
    speedup_vs_dpll =
      List.map
        (fun (k, (points, _)) -> (k, speedup (find Dpll points) (find Cdcl points)))
        sparse;
    speedup_vs_backtracking =
      List.map
        (fun (k, (points, _)) -> (k, speedup (find Backtracking points) (find Cdcl points)))
        sparse;
    deterministic =
      dense_identical && List.for_all (fun (_, (_, identical)) -> identical) sparse;
  }

(* -- Reporting -------------------------------------------------------------- *)

let print r =
  Common.section "SAT backend: CDCL vs DPLL vs backtracking (pending-depth sweep)";
  let rows =
    List.map
      (fun p ->
        [ string_of_int p.k;
          (if p.dense then p.mode ^ "/dense" else p.mode);
          Printf.sprintf "%.1f" (p.ns_per_admission /. 1000.);
          string_of_int p.committed;
          string_of_int p.rejected;
          string_of_int p.conflicts;
          string_of_int p.learned;
          string_of_int p.fallbacks;
          string_of_int p.resets;
        ])
      r.series
  in
  Common.print_table ~csv:"sat"
    ~header:[ "k"; "mode"; "us/adm"; "committed"; "rejected"; "conflicts"; "learned"; "fallbacks"; "resets" ]
    rows;
  List.iter2
    (fun (k, d) (_, b) ->
      Printf.printf "k=%-3d cdcl speedup: %.2fx vs dpll, %.2fx vs backtracking\n%!" k d b)
    r.speedup_vs_dpll r.speedup_vs_backtracking;
  Printf.printf "(host cores: %d; outcomes %s across the three backends)\n%!" r.cores
    (if r.deterministic then "identical" else "DIVERGED");
  if not r.deterministic then
    failwith "sat bench: outcomes diverged across backends"

let json_of_recording r =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"qdb.bench.sat/v1\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"workload\": {\"ks\": [%s], \"dense_k\": %d, \"repeats\": %d},\n"
       (String.concat ", " (List.map string_of_int r.ks))
       r.dense_k r.repeats);
  Buffer.add_string b
    (Printf.sprintf "  \"host\": {\"cores\": %d},\n  \"deterministic\": %b,\n  \"series\": [\n"
       r.cores r.deterministic);
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"k\": %d, \"mode\": \"%s\", \"dense\": %b, \"wall_s\": %.6f, \
            \"ns_per_admission\": %.1f, \"committed\": %d, \"rejected\": %d, \"conflicts\": \
            %d, \"learned\": %d, \"restarts\": %d, \"propagations\": %d, \"fallbacks\": %d, \
            \"resets\": %d}%s\n"
           p.k p.mode p.dense p.wall_s p.ns_per_admission p.committed p.rejected p.conflicts
           p.learned p.restarts p.propagations p.fallbacks p.resets
           (if i = List.length r.series - 1 then "" else ",")))
    r.series;
  let speedups name xs =
    Buffer.add_string b (Printf.sprintf "  ],\n  \"%s\": [\n" name);
    List.iteri
      (fun i (k, x) ->
        Buffer.add_string b
          (Printf.sprintf "    {\"k\": %d, \"x\": %.3f}%s\n" k x
             (if i = List.length xs - 1 then "" else ",")))
      xs
  in
  speedups "speedup_cdcl_vs_dpll" r.speedup_vs_dpll;
  speedups "speedup_cdcl_vs_backtracking" r.speedup_vs_backtracking;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write ?(path = "results/BENCH_sat.json") r =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  output_string oc (json_of_recording r);
  close_out oc;
  Printf.printf "(sat series written to %s)\n%!" path;
  path

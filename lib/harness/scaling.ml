(* Figure-7 scalability baseline: the multi-flight workload under a
   domain pool of increasing size.

   Flights are independent partitions (Section 5.3), so per-flight
   admission is embarrassingly parallel; this bench runs the SAME seeded
   operation stream sharded by flight ([Runner.run_sharded]) at each
   domain count, checks that the admission outcomes are bit-identical
   across pool sizes, and records wall-clock, ns/admission, speedup vs
   1 domain and solver work into BENCH_scaling.json — the first entry of
   the repo's perf trajectory, which later PRs must not regress.

   Honesty note: the recorded [host.cores] matters.  On a single-core
   container every domain count serializes onto one CPU and speedup
   hovers around 1.0x (pool overhead included); the numbers are recorded
   as measured, with the hardware context to interpret them. *)

module Runner = Workload.Runner
module Qdb = Quantum.Qdb

type point = {
  domains : int;
  wall_s : float;
  ns_per_admission : float;
  speedup_vs_1 : float;
  committed : int;
  rejected : int;
  coordination_pct : float;
  solver_nodes : int;
  solver_candidates : int;
}

type recording = {
  flights : int;
  rows_per_flight : int;
  pairs_per_flight : int;
  seed : int;
  k : int;
  cores : int;
  series : point list;
  deterministic : bool; (* identical outcomes at every domain count *)
}

let default_domains = [ 1; 2; 4 ]

let spec ~flights ~rows ~pairs ~seed =
  {
    Runner.default_spec with
    Runner.geometry = { Workload.Flights.flights; rows_per_flight = rows; dest = "LA" };
    pairs_per_flight = pairs;
    order = Workload.Travel.Random_order;
    seed;
  }

let run_point ~config ~spec domains =
  let pool = Par.Pool.create ~domains () in
  let sink = Runner.metrics_sink in
  let nodes0 = sink.Quantum.Metrics.solver_stats.Solver.Backtrack.nodes in
  let cands0 = sink.Quantum.Metrics.solver_stats.Solver.Backtrack.candidates in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Par.Pool.shutdown pool)
      (fun () -> Runner.run_sharded ~pool (Runner.Quantum_engine config) spec)
  in
  let admissions = outcome.Runner.committed + outcome.Runner.rejected in
  let wall_s = outcome.Runner.total_time_s in
  ( outcome,
    {
      domains;
      wall_s;
      ns_per_admission =
        (if admissions = 0 then 0. else wall_s *. 1e9 /. float_of_int admissions);
      speedup_vs_1 = 1.0; (* filled against the 1-domain point below *)
      committed = outcome.Runner.committed;
      rejected = outcome.Runner.rejected;
      coordination_pct = outcome.Runner.coordination_pct;
      solver_nodes = sink.Quantum.Metrics.solver_stats.Solver.Backtrack.nodes - nodes0;
      solver_candidates =
        sink.Quantum.Metrics.solver_stats.Solver.Backtrack.candidates - cands0;
    } )

let run ?(domains_list = default_domains) ?(flights = 10) ?(rows = 50) ?(pairs = 75)
    ?(seed = 1000) ?(k = 40) () =
  let config = { Qdb.default_config with Qdb.k; cache_capacity = 2 } in
  let spec = spec ~flights ~rows ~pairs ~seed in
  let raw = List.map (fun d -> run_point ~config ~spec d) domains_list in
  let base_wall =
    match raw with
    | (_, p) :: _ -> p.wall_s
    | [] -> 0.
  in
  let series =
    List.map
      (fun (_, p) ->
        { p with speedup_vs_1 = (if p.wall_s > 0. then base_wall /. p.wall_s else 0.) })
      raw
  in
  let deterministic =
    match series with
    | [] -> true
    | first :: rest ->
      List.for_all
        (fun p ->
          p.committed = first.committed && p.rejected = first.rejected
          && Float.equal p.coordination_pct first.coordination_pct)
        rest
  in
  {
    flights;
    rows_per_flight = rows;
    pairs_per_flight = pairs;
    seed;
    k;
    cores = Domain.recommended_domain_count ();
    series;
    deterministic;
  }

(* -- Reporting -------------------------------------------------------------- *)

let print r =
  Common.section
    (Printf.sprintf "Figure 7 scalability: %d flights x %d seats, domain sweep" r.flights
       (3 * r.rows_per_flight));
  let rows =
    List.map
      (fun p ->
        [ string_of_int p.domains;
          Printf.sprintf "%.3fs" p.wall_s;
          Printf.sprintf "%.0f" (p.ns_per_admission /. 1000.);
          Printf.sprintf "%.2fx" p.speedup_vs_1;
          string_of_int p.committed;
          string_of_int p.rejected;
          Common.f1 p.coordination_pct ^ "%";
          string_of_int p.solver_nodes;
        ])
      r.series
  in
  Common.print_table ~csv:"scaling"
    ~header:[ "domains"; "wall"; "us/adm"; "speedup"; "committed"; "rejected"; "coord"; "nodes" ]
    rows;
  Printf.printf "(host cores: %d; outcomes %s across domain counts)\n%!" r.cores
    (if r.deterministic then "identical" else "DIVERGED");
  if not r.deterministic then
    failwith "scaling bench: outcomes diverged across domain counts"

let json_of_recording r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"qdb.bench.scaling/v1\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"workload\": {\"flights\": %d, \"rows_per_flight\": %d, \"pairs_per_flight\": %d, \
        \"seed\": %d, \"k\": %d},\n"
       r.flights r.rows_per_flight r.pairs_per_flight r.seed r.k);
  Buffer.add_string b
    (Printf.sprintf "  \"host\": {\"cores\": %d},\n  \"deterministic\": %b,\n  \"series\": [\n"
       r.cores r.deterministic);
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"domains\": %d, \"wall_s\": %.6f, \"ns_per_admission\": %.1f, \
            \"speedup_vs_1\": %.3f, \"committed\": %d, \"rejected\": %d, \
            \"coordination_pct\": %.2f, \"solver_nodes\": %d, \"solver_candidates\": %d}%s\n"
           p.domains p.wall_s p.ns_per_admission p.speedup_vs_1 p.committed p.rejected
           p.coordination_pct p.solver_nodes p.solver_candidates
           (if i = List.length r.series - 1 then "" else ",")))
    r.series;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write ?(path = "results/BENCH_scaling.json") r =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  output_string oc (json_of_recording r);
  close_out oc;
  Printf.printf "(scaling series written to %s)\n%!" path;
  path

(* Figure-7 scalability baseline: the multi-flight workload at increasing
   domain counts, in either execution mode.

   Flights are independent partitions (Section 5.3), so per-flight
   admission is embarrassingly parallel.  This bench runs the SAME
   seeded operation stream at each domain count, checks that admission
   outcomes are bit-identical across counts, and records wall-clock,
   ns/admission, speedup vs 1 domain, solver work and a per-phase time
   breakdown into BENCH_scaling.json (schema v3).

   Two modes:

   - [Actor] (default): shared-nothing partition owners
     ([Runner.run_actors]) — one long-lived domain per live actor owns
     its flight groups end-to-end, the driver routes op by op through
     bounded mailboxes, and the runtime clamps spawned domains to the
     host's parallelism (requested [domains] vs live [actors] are both
     recorded).  There is no centralized queue on the hot path, so
     queue_wait is structurally ~0 — the pathology the old sharded
     sweep measured (179 s of summed queue wait against a 43 s wall at
     2 domains) cannot occur.
   - [Pool]: the legacy "main thread orchestrates, pool assists" path
     ([Runner.run_sharded]), kept runnable for comparison.

   Phase attribution: per-point deltas of the flight recorder's
   process-wide exclusive per-phase totals, folded into six buckets.
   [attributed_pct] is the coverage figure, and its denominator is the
   fix for the old 615%/694% readings (summed cross-domain phase time
   divided by one domain's wall clock): in actor mode it is measured
   actor busy time, in pool mode wall x domains — either way "of the
   domain-time actually spent, how much did the recorder attribute", a
   floor that is meaningful at every domain count.
   [parallelism_efficiency] reports separately how much of the
   theoretical domain-time budget (wall x live domains) was busy.

   A contended companion series (always actor-mode) reuses the
   contention harness's regimes — an over-capacity crowd for real
   rejections and a squeezed governor for real Overloaded outcomes — so
   actor routing is exercised on every admission path, not just
   accepts, and its outcome counts are pinned across domain counts. *)

module Runner = Workload.Runner
module Qdb = Quantum.Qdb
module Governor = Quantum.Governor
module Flight = Obs.Flight

type mode =
  | Pool
  | Actor

let mode_to_string = function
  | Pool -> "pool"
  | Actor -> "actor"

(* The six phase buckets, in seconds. *)
type phases = {
  queue_wait_s : float;
  freeze_s : float;
  compute_s : float;
  merge_s : float;
  install_s : float;
  wal_s : float;
}

let phase_fields p =
  [ ("queue_wait", p.queue_wait_s);
    ("freeze", p.freeze_s);
    ("compute", p.compute_s);
    ("merge", p.merge_s);
    ("install", p.install_s);
    ("wal", p.wal_s);
  ]

let phases_total_s p = List.fold_left (fun acc (_, s) -> acc +. s) 0. (phase_fields p)

type point = {
  domains : int; (* requested *)
  actors : int; (* live after the hardware clamp (= domains in pool mode) *)
  wall_s : float;
  busy_s : float; (* summed actor task time; 0 in pool mode (not measured) *)
  ns_per_admission : float;
  speedup_vs_1 : float;
  committed : int;
  rejected : int;
  coordination_pct : float;
      (* semantic travel-pair coordination (coordinated users / max
         possible) — a workload outcome, not a time share; used by the
         determinism check and recorded once at the top level of the
         JSON, not per point. *)
  solver_nodes : int;
  solver_candidates : int;
  phases : phases;
  attributed_pct : float; (* summed phase time / busy basis, percent *)
  parallelism_efficiency : float; (* busy / (wall x live domains) *)
}

(* One contended companion point: over-capacity (rejections) or
   squeezed-governor (Overloaded) regime at one domain count. *)
type contended_point = {
  c_regime : string;
  c_domains : int;
  c_actors : int;
  c_wall_s : float;
  c_committed : int;
  c_rejected : int;
  c_overloaded : int;
}

type recording = {
  mode : mode;
  flights : int;
  rows_per_flight : int;
  pairs_per_flight : int;
  seed : int;
  k : int;
  repeats : int;
  cores : int;
  series : point list;
  contended : contended_point list;
  deterministic : bool; (* identical outcomes at every domain count *)
}

let default_domains = [ 1; 2; 4 ]

let spec ~flights ~rows ~pairs ~seed =
  {
    Runner.default_spec with
    Runner.geometry = { Workload.Flights.flights; rows_per_flight = rows; dest = "LA" };
    pairs_per_flight = pairs;
    order = Workload.Travel.Random_order;
    seed;
  }

(* Fold the recorder's twelve phases into the schema's six buckets. *)
let bucket_deltas before after =
  let delta p = List.assq p after - List.assq p before in
  let s p = float_of_int (delta p) *. 1e-9 in
  {
    queue_wait_s = s Flight.Queue;
    freeze_s = s Flight.Freeze;
    merge_s = s Flight.Merge;
    install_s = s Flight.Install;
    wal_s = s Flight.Wal;
    compute_s =
      s Flight.Compose +. s Flight.Cache +. s Flight.Solve +. s Flight.Ground
      +. s Flight.Compute +. s Flight.Coordination +. s Flight.Governor;
  }

let run_point ~mode ~config ~spec domains =
  let sink = Runner.metrics_sink in
  let nodes0 = sink.Quantum.Metrics.solver_stats.Solver.Backtrack.nodes in
  let cands0 = sink.Quantum.Metrics.solver_stats.Solver.Backtrack.candidates in
  let totals0 = Flight.totals () in
  let outcome, actors, busy_s =
    match mode with
    | Pool ->
      let pool = Par.Pool.create ~domains () in
      let outcome =
        Fun.protect
          ~finally:(fun () -> Par.Pool.shutdown pool)
          (fun () -> Runner.run_sharded ~pool (Runner.Quantum_engine config) spec)
      in
      (outcome, domains, 0.)
    | Actor ->
      let outcome, report =
        Runner.run_actors ~actors:domains (Runner.Quantum_engine config) spec
      in
      (outcome, report.Runner.actors_live, report.Runner.busy_s)
  in
  let phases = bucket_deltas totals0 (Flight.totals ()) in
  let admissions = outcome.Runner.committed + outcome.Runner.rejected in
  let wall_s = outcome.Runner.total_time_s in
  (* Attribution denominator: the domain-time actually spent.  Actor mode
     measures it; pool mode has no per-worker busy clock, so the honest
     upper bound wall x domains stands in. *)
  let busy_basis = if busy_s > 0. then busy_s else wall_s *. float_of_int actors in
  ( outcome,
    {
      domains;
      actors;
      wall_s;
      busy_s;
      ns_per_admission =
        (if admissions = 0 then 0. else wall_s *. 1e9 /. float_of_int admissions);
      speedup_vs_1 = 1.0; (* filled against the 1-domain point below *)
      committed = outcome.Runner.committed;
      rejected = outcome.Runner.rejected;
      coordination_pct = outcome.Runner.coordination_pct;
      solver_nodes = sink.Quantum.Metrics.solver_stats.Solver.Backtrack.nodes - nodes0;
      solver_candidates =
        sink.Quantum.Metrics.solver_stats.Solver.Backtrack.candidates - cands0;
      phases;
      attributed_pct =
        (if busy_basis > 0. then 100. *. phases_total_s phases /. busy_basis else 0.);
      parallelism_efficiency =
        (if wall_s > 0. && actors > 0 && busy_s > 0. then
           busy_s /. (wall_s *. float_of_int actors)
         else 0.);
    } )

(* Wall-clock stability: re-run each point [repeats] times and keep the
   fastest run's record (outcome counts are deterministic, so only the
   clock varies; minimum is the standard noise floor estimator). *)
let run_point_best ~mode ~config ~spec ~repeats domains =
  let rec go best n =
    if n = 0 then Option.get best
    else begin
      let (_, p) as r = run_point ~mode ~config ~spec domains in
      let best =
        match best with
        | Some (_, b) when b.wall_s <= p.wall_s -> best
        | _ -> Some r
      in
      go best (n - 1)
    end
  in
  go None (max 1 repeats)

(* -- Contended companion series (actor mode) --------------------------------

   The contention harness's regimes scaled down to the sweep's flight
   count: an over-capacity ticket crowd (14 travellers onto 9 seats per
   flight — the 10-50% rejection band) under the default governor, and
   the same crowd under a squeezed governor (node budget 2, one retry,
   2x escalation) whose contended admissions run out of budget and
   surface as Overloaded.  Outcome counts come from the metrics sink,
   which splits true rejections from overloads. *)

let contended_regimes = [ ("reject", None); ("overload", Some 2) ]

let run_contended ~flights ~seed domains =
  let spec = spec ~flights ~rows:3 ~pairs:7 ~seed:(seed + 7919) in
  List.map
    (fun (regime, node_budget) ->
      let config =
        match node_budget with
        | None -> { Qdb.default_config with Qdb.cache_capacity = 2 }
        | Some budget ->
          {
            Qdb.default_config with
            Qdb.cache_capacity = 2;
            governor = Governor.make ~node_budget:budget ~max_retries:1 ~escalation:2 ();
          }
      in
      let sink = Runner.metrics_sink in
      let committed0 = sink.Quantum.Metrics.committed in
      let rejected0 = sink.Quantum.Metrics.rejected in
      let overloaded0 = sink.Quantum.Metrics.overloaded in
      let outcome, report =
        Runner.run_actors ~actors:domains (Runner.Quantum_engine config) spec
      in
      {
        c_regime = regime;
        c_domains = domains;
        c_actors = report.Runner.actors_live;
        c_wall_s = outcome.Runner.total_time_s;
        c_committed = sink.Quantum.Metrics.committed - committed0;
        c_rejected = sink.Quantum.Metrics.rejected - rejected0;
        c_overloaded = sink.Quantum.Metrics.overloaded - overloaded0;
      })
    contended_regimes

let run ?(mode = Actor) ?(domains_list = default_domains) ?(flights = 10) ?(rows = 50)
    ?(pairs = 75) ?(seed = 1000) ?(k = 40) ?(repeats = 1) () =
  let config = { Qdb.default_config with Qdb.k; cache_capacity = 2 } in
  let spec = spec ~flights ~rows ~pairs ~seed in
  (* The phase breakdown needs the flight recorder; turn it on for the
     sweep unless the caller already runs one (then just read deltas).
     The determinism check below doubles as proof that the recorder does
     not perturb admission outcomes. *)
  let flight_was_on = Flight.on () in
  if not flight_was_on then Flight.enable ();
  let raw, contended =
    Fun.protect
      ~finally:(fun () -> if not flight_was_on then Flight.disable ())
      (fun () ->
        let raw = List.map (run_point_best ~mode ~config ~spec ~repeats) domains_list in
        let contended = List.concat_map (run_contended ~flights ~seed) domains_list in
        (raw, contended))
  in
  let base_wall =
    match raw with
    | (_, p) :: _ -> p.wall_s
    | [] -> 0.
  in
  let series =
    List.map
      (fun (_, p) ->
        { p with speedup_vs_1 = (if p.wall_s > 0. then base_wall /. p.wall_s else 0.) })
      raw
  in
  let main_deterministic =
    match series with
    | [] -> true
    | first :: rest ->
      List.for_all
        (fun p ->
          p.committed = first.committed && p.rejected = first.rejected
          && Float.equal p.coordination_pct first.coordination_pct)
        rest
  in
  (* Contended outcome counts pinned across domain counts, per regime. *)
  let contended_deterministic =
    List.for_all
      (fun (regime, _) ->
        match List.filter (fun c -> c.c_regime = regime) contended with
        | [] -> true
        | first :: rest ->
          List.for_all
            (fun c ->
              c.c_committed = first.c_committed && c.c_rejected = first.c_rejected
              && c.c_overloaded = first.c_overloaded)
            rest)
      contended_regimes
  in
  {
    mode;
    flights;
    rows_per_flight = rows;
    pairs_per_flight = pairs;
    seed;
    k;
    repeats = max 1 repeats;
    cores = Domain.recommended_domain_count ();
    series;
    contended;
    deterministic = main_deterministic && contended_deterministic;
  }

(* -- Reporting -------------------------------------------------------------- *)

let print r =
  Common.section
    (Printf.sprintf "Figure 7 scalability (%s mode): %d flights x %d seats, domain sweep"
       (mode_to_string r.mode) r.flights (3 * r.rows_per_flight));
  let rows =
    List.map
      (fun p ->
        [ string_of_int p.domains;
          string_of_int p.actors;
          Printf.sprintf "%.3fs" p.wall_s;
          Printf.sprintf "%.0f" (p.ns_per_admission /. 1000.);
          Printf.sprintf "%.2fx" p.speedup_vs_1;
          string_of_int p.committed;
          string_of_int p.rejected;
          string_of_int p.solver_nodes;
          Common.f1 p.attributed_pct ^ "%";
          Printf.sprintf "%.2f" p.parallelism_efficiency;
        ])
      r.series
  in
  Common.print_table ~csv:"scaling"
    ~header:
      [ "domains"; "actors"; "wall"; "us/adm"; "speedup"; "committed"; "rejected"; "nodes";
        "attrib"; "par_eff" ]
    rows;
  Common.subsection "phase breakdown (seconds of attributed time)";
  let phase_rows =
    List.map
      (fun p ->
        string_of_int p.domains
        :: List.map (fun (_, s) -> Printf.sprintf "%.3f" s) (phase_fields p.phases))
      r.series
  in
  Common.print_table ~csv:"scaling_phases"
    ~header:("domains" :: List.map fst (phase_fields { queue_wait_s = 0.; freeze_s = 0.;
                                                      compute_s = 0.; merge_s = 0.;
                                                      install_s = 0.; wal_s = 0. }))
    phase_rows;
  if r.contended <> [] then begin
    Common.subsection "contended companion (actor routing on reject / overload paths)";
    let rows =
      List.map
        (fun c ->
          [ c.c_regime;
            string_of_int c.c_domains;
            string_of_int c.c_actors;
            Printf.sprintf "%.3fs" c.c_wall_s;
            string_of_int c.c_committed;
            string_of_int c.c_rejected;
            string_of_int c.c_overloaded;
          ])
        r.contended
    in
    Common.print_table ~csv:"scaling_contended"
      ~header:[ "regime"; "domains"; "actors"; "wall"; "committed"; "rejected"; "overloaded" ]
      rows
  end;
  (match r.series with
   | p :: _ -> Printf.printf "(workload coordination: %.1f%% of possible pairs seated together)\n" p.coordination_pct
   | [] -> ());
  Printf.printf "(host cores: %d; outcomes %s across domain counts)\n%!" r.cores
    (if r.deterministic then "identical" else "DIVERGED");
  if not r.deterministic then
    failwith "scaling bench: outcomes diverged across domain counts"

let json_of_recording r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"qdb.bench.scaling/v3\",\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": \"%s\",\n" (mode_to_string r.mode));
  (* [repeats] is a measurement knob, not workload shape — it lives
     outside the workload object so bench diff's field-for-field
     workload equality check does not couple CI's repeat count to the
     baseline's. *)
  Buffer.add_string b
    (Printf.sprintf
       "  \"workload\": {\"flights\": %d, \"rows_per_flight\": %d, \"pairs_per_flight\": %d, \
        \"seed\": %d, \"k\": %d},\n"
       r.flights r.rows_per_flight r.pairs_per_flight r.seed r.k);
  Buffer.add_string b (Printf.sprintf "  \"repeats\": %d,\n" r.repeats);
  Buffer.add_string b
    (Printf.sprintf "  \"host\": {\"cores\": %d},\n  \"deterministic\": %b,\n" r.cores
       r.deterministic);
  (match r.series with
   | p :: _ ->
     Buffer.add_string b
       (Printf.sprintf "  \"workload_coordination_pct\": %.2f,\n" p.coordination_pct)
   | [] -> ());
  Buffer.add_string b "  \"series\": [\n";
  List.iteri
    (fun i p ->
      let phases_json =
        String.concat ", "
          (List.map (fun (k, s) -> Printf.sprintf "\"%s\": %.6f" k s) (phase_fields p.phases))
      in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"domains\": %d, \"actors\": %d, \"wall_s\": %.6f, \"busy_s\": %.6f, \
            \"ns_per_admission\": %.1f, \"speedup_vs_1\": %.3f, \"committed\": %d, \
            \"rejected\": %d, \"solver_nodes\": %d, \"solver_candidates\": %d,\n\
           \     \"phases_s\": {%s}, \"attributed_pct\": %.1f, \
            \"parallelism_efficiency\": %.3f}%s\n"
           p.domains p.actors p.wall_s p.busy_s p.ns_per_admission p.speedup_vs_1 p.committed
           p.rejected p.solver_nodes p.solver_candidates phases_json p.attributed_pct
           p.parallelism_efficiency
           (if i = List.length r.series - 1 then "" else ",")))
    r.series;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"contended\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"regime\": \"%s\", \"domains\": %d, \"actors\": %d, \"wall_s\": %.6f, \
            \"committed\": %d, \"rejected\": %d, \"overloaded\": %d}%s\n"
           c.c_regime c.c_domains c.c_actors c.c_wall_s c.c_committed c.c_rejected
           c.c_overloaded
           (if i = List.length r.contended - 1 then "" else ",")))
    r.contended;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write ?(path = "results/BENCH_scaling.json") r =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  output_string oc (json_of_recording r);
  close_out oc;
  Printf.printf "(scaling series written to %s)\n%!" path;
  path

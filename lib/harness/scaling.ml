(* Figure-7 scalability baseline: the multi-flight workload under a
   domain pool of increasing size.

   Flights are independent partitions (Section 5.3), so per-flight
   admission is embarrassingly parallel; this bench runs the SAME seeded
   operation stream sharded by flight ([Runner.run_sharded]) at each
   domain count, checks that the admission outcomes are bit-identical
   across pool sizes, and records wall-clock, ns/admission, speedup vs
   1 domain, solver work AND a per-phase time breakdown into
   BENCH_scaling.json (schema v2) — the perf trajectory later PRs must
   not regress, now attributable phase-by-phase.

   Phase attribution comes from the engine's flight-recorder
   instrumentation ([Obs.Flight]): per-point deltas of the process-wide
   exclusive per-phase totals, folded into the six buckets of the v2
   schema.  queue_wait / freeze / merge / install / wal map directly;
   "compute" collects everything that runs inside a shard or worker job
   (compose, cache extension, solver search, grounding, fan-out
   orchestration, residual shard time).  [attributed_pct] is the honest
   coverage figure: summed phase time over wall time — under parallel
   execution phases overlap the wall clock, so it can exceed 100 (total
   busy time across domains vs elapsed time on one).

   Honesty note: the recorded [host.cores] matters.  On a single-core
   container every domain count serializes onto one CPU and speedup
   hovers around 1.0x (pool overhead included); the numbers are recorded
   as measured, with the hardware context to interpret them. *)

module Runner = Workload.Runner
module Qdb = Quantum.Qdb
module Flight = Obs.Flight

(* The v2 schema's six buckets, in seconds. *)
type phases = {
  queue_wait_s : float;
  freeze_s : float;
  compute_s : float;
  merge_s : float;
  install_s : float;
  wal_s : float;
}

let phase_fields p =
  [ ("queue_wait", p.queue_wait_s);
    ("freeze", p.freeze_s);
    ("compute", p.compute_s);
    ("merge", p.merge_s);
    ("install", p.install_s);
    ("wal", p.wal_s);
  ]

let phases_total_s p = List.fold_left (fun acc (_, s) -> acc +. s) 0. (phase_fields p)

type point = {
  domains : int;
  wall_s : float;
  ns_per_admission : float;
  speedup_vs_1 : float;
  committed : int;
  rejected : int;
  coordination_pct : float;
      (* semantic travel-pair coordination (coordinated users / max
         possible) — a workload outcome, not a time share; used by the
         determinism check and recorded once at the top level of the
         JSON, no longer per point. *)
  solver_nodes : int;
  solver_candidates : int;
  phases : phases;
  attributed_pct : float; (* summed phase time / wall time, percent *)
}

type recording = {
  flights : int;
  rows_per_flight : int;
  pairs_per_flight : int;
  seed : int;
  k : int;
  cores : int;
  series : point list;
  deterministic : bool; (* identical outcomes at every domain count *)
}

let default_domains = [ 1; 2; 4 ]

let spec ~flights ~rows ~pairs ~seed =
  {
    Runner.default_spec with
    Runner.geometry = { Workload.Flights.flights; rows_per_flight = rows; dest = "LA" };
    pairs_per_flight = pairs;
    order = Workload.Travel.Random_order;
    seed;
  }

(* Fold the recorder's twelve phases into the schema's six buckets. *)
let bucket_deltas before after =
  let delta p = List.assq p after - List.assq p before in
  let s p = float_of_int (delta p) *. 1e-9 in
  {
    queue_wait_s = s Flight.Queue;
    freeze_s = s Flight.Freeze;
    merge_s = s Flight.Merge;
    install_s = s Flight.Install;
    wal_s = s Flight.Wal;
    compute_s =
      s Flight.Compose +. s Flight.Cache +. s Flight.Solve +. s Flight.Ground
      +. s Flight.Compute +. s Flight.Coordination +. s Flight.Governor;
  }

let run_point ~config ~spec domains =
  let pool = Par.Pool.create ~domains () in
  let sink = Runner.metrics_sink in
  let nodes0 = sink.Quantum.Metrics.solver_stats.Solver.Backtrack.nodes in
  let cands0 = sink.Quantum.Metrics.solver_stats.Solver.Backtrack.candidates in
  let totals0 = Flight.totals () in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Par.Pool.shutdown pool)
      (fun () -> Runner.run_sharded ~pool (Runner.Quantum_engine config) spec)
  in
  let phases = bucket_deltas totals0 (Flight.totals ()) in
  let admissions = outcome.Runner.committed + outcome.Runner.rejected in
  let wall_s = outcome.Runner.total_time_s in
  ( outcome,
    {
      domains;
      wall_s;
      ns_per_admission =
        (if admissions = 0 then 0. else wall_s *. 1e9 /. float_of_int admissions);
      speedup_vs_1 = 1.0; (* filled against the 1-domain point below *)
      committed = outcome.Runner.committed;
      rejected = outcome.Runner.rejected;
      coordination_pct = outcome.Runner.coordination_pct;
      solver_nodes = sink.Quantum.Metrics.solver_stats.Solver.Backtrack.nodes - nodes0;
      solver_candidates =
        sink.Quantum.Metrics.solver_stats.Solver.Backtrack.candidates - cands0;
      phases;
      attributed_pct = (if wall_s > 0. then 100. *. phases_total_s phases /. wall_s else 0.);
    } )

let run ?(domains_list = default_domains) ?(flights = 10) ?(rows = 50) ?(pairs = 75)
    ?(seed = 1000) ?(k = 40) () =
  let config = { Qdb.default_config with Qdb.k; cache_capacity = 2 } in
  let spec = spec ~flights ~rows ~pairs ~seed in
  (* The phase breakdown needs the flight recorder; turn it on for the
     sweep unless the caller already runs one (then just read deltas).
     The determinism check below doubles as proof that the recorder does
     not perturb admission outcomes. *)
  let flight_was_on = Flight.on () in
  if not flight_was_on then Flight.enable ();
  let raw =
    Fun.protect
      ~finally:(fun () -> if not flight_was_on then Flight.disable ())
      (fun () -> List.map (fun d -> run_point ~config ~spec d) domains_list)
  in
  let base_wall =
    match raw with
    | (_, p) :: _ -> p.wall_s
    | [] -> 0.
  in
  let series =
    List.map
      (fun (_, p) ->
        { p with speedup_vs_1 = (if p.wall_s > 0. then base_wall /. p.wall_s else 0.) })
      raw
  in
  let deterministic =
    match series with
    | [] -> true
    | first :: rest ->
      List.for_all
        (fun p ->
          p.committed = first.committed && p.rejected = first.rejected
          && Float.equal p.coordination_pct first.coordination_pct)
        rest
  in
  {
    flights;
    rows_per_flight = rows;
    pairs_per_flight = pairs;
    seed;
    k;
    cores = Domain.recommended_domain_count ();
    series;
    deterministic;
  }

(* -- Reporting -------------------------------------------------------------- *)

let print r =
  Common.section
    (Printf.sprintf "Figure 7 scalability: %d flights x %d seats, domain sweep" r.flights
       (3 * r.rows_per_flight));
  let rows =
    List.map
      (fun p ->
        [ string_of_int p.domains;
          Printf.sprintf "%.3fs" p.wall_s;
          Printf.sprintf "%.0f" (p.ns_per_admission /. 1000.);
          Printf.sprintf "%.2fx" p.speedup_vs_1;
          string_of_int p.committed;
          string_of_int p.rejected;
          string_of_int p.solver_nodes;
          Common.f1 p.attributed_pct ^ "%";
        ])
      r.series
  in
  Common.print_table ~csv:"scaling"
    ~header:
      [ "domains"; "wall"; "us/adm"; "speedup"; "committed"; "rejected"; "nodes"; "attrib" ]
    rows;
  Common.subsection "phase breakdown (seconds of attributed time)";
  let phase_rows =
    List.map
      (fun p ->
        string_of_int p.domains
        :: List.map (fun (_, s) -> Printf.sprintf "%.3f" s) (phase_fields p.phases))
      r.series
  in
  Common.print_table ~csv:"scaling_phases"
    ~header:("domains" :: List.map fst (phase_fields { queue_wait_s = 0.; freeze_s = 0.;
                                                      compute_s = 0.; merge_s = 0.;
                                                      install_s = 0.; wal_s = 0. }))
    phase_rows;
  (match r.series with
   | p :: _ -> Printf.printf "(workload coordination: %.1f%% of possible pairs seated together)\n" p.coordination_pct
   | [] -> ());
  Printf.printf "(host cores: %d; outcomes %s across domain counts)\n%!" r.cores
    (if r.deterministic then "identical" else "DIVERGED");
  if not r.deterministic then
    failwith "scaling bench: outcomes diverged across domain counts"

let json_of_recording r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"qdb.bench.scaling/v2\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"workload\": {\"flights\": %d, \"rows_per_flight\": %d, \"pairs_per_flight\": %d, \
        \"seed\": %d, \"k\": %d},\n"
       r.flights r.rows_per_flight r.pairs_per_flight r.seed r.k);
  Buffer.add_string b
    (Printf.sprintf "  \"host\": {\"cores\": %d},\n  \"deterministic\": %b,\n" r.cores
       r.deterministic);
  (match r.series with
   | p :: _ ->
     Buffer.add_string b
       (Printf.sprintf "  \"workload_coordination_pct\": %.2f,\n" p.coordination_pct)
   | [] -> ());
  Buffer.add_string b "  \"series\": [\n";
  List.iteri
    (fun i p ->
      let phases_json =
        String.concat ", "
          (List.map (fun (k, s) -> Printf.sprintf "\"%s\": %.6f" k s) (phase_fields p.phases))
      in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"domains\": %d, \"wall_s\": %.6f, \"ns_per_admission\": %.1f, \
            \"speedup_vs_1\": %.3f, \"committed\": %d, \"rejected\": %d, \
            \"solver_nodes\": %d, \"solver_candidates\": %d,\n\
           \     \"phases_s\": {%s}, \"attributed_pct\": %.1f}%s\n"
           p.domains p.wall_s p.ns_per_admission p.speedup_vs_1 p.committed p.rejected
           p.solver_nodes p.solver_candidates phases_json p.attributed_pct
           (if i = List.length r.series - 1 then "" else ",")))
    r.series;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write ?(path = "results/BENCH_scaling.json") r =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  output_string oc (json_of_recording r);
  close_out oc;
  Printf.printf "(scaling series written to %s)\n%!" path;
  path

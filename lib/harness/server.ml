(* Open-loop load generation for the network front door (see mli).

   The generator never waits for a response before sending the next
   request: arrival i of a session fires at [start + i/rate] on the
   monotonic clock, however far behind the server is.  Latency is
   matched receiver-side — responses are FIFO per session, so the
   receiver pairs each response with the oldest outstanding send
   timestamp.  That makes the recorded accept/reject latency include
   engine queueing and group-commit delay, which is the quantity the
   front door's backpressure design actually controls. *)

module Server = Net.Server
module Client = Net.Client
module Frame = Net.Frame
module Wal = Relational.Wal
module Store = Relational.Store
module Travel = Workload.Travel
module Flights = Workload.Flights
module Mclock = Obs.Mclock
module Histogram = Obs.Histogram

type spec = {
  sessions : int;
  requests_per_session : int;
  target_hz : float;
  domains : int;
  seed : int;
}

let default_spec =
  { sessions = 4; requests_per_session = 400; target_hz = 800.; domains = 1; seed = 11 }

type split = {
  count : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
}

type recording = {
  spec : spec;
  committed : int;
  rejected : int;
  overloaded : int;
  errors : int;
  wall_s : float;
  achieved_hz : float;
  accept : split;
  reject : split;
  batches : int;
  acked_durable : int;
  mean_batch_size : float;
  wal_syncs : int;
  deterministic : bool;
}

(* Session geometry: each session owns a contiguous band of small
   flights — 8 users and 3 seats per flight, so roughly a third of the
   session's requests commit and both latency splits fill.  Shallow
   flights are load-bearing: admission cost grows superlinearly with
   the pending set standing on a partition (see lib/harness/admission.ml),
   so a bench that funnelled hundreds of bookings into one flight would
   measure the solver's deep-k regime, not the front door. *)
let users_per_flight = 8

let flights_per_session spec =
  max 1 ((spec.requests_per_session + users_per_flight - 1) / users_per_flight)

let geometry_for ~sessions ~requests_per_session =
  let fps =
    flights_per_session
      { sessions; requests_per_session; target_hz = 0.; domains = 0; seed = 0 }
  in
  { Flights.flights = sessions * fps; rows_per_flight = 1; dest = "LA" }

let geometry_of spec =
  geometry_for ~sessions:spec.sessions ~requests_per_session:spec.requests_per_session

let submission_of ~seed u =
  let entangled = Hashtbl.hash (seed, u.Travel.name, "load") land 1 = 0 in
  let text = if entangled then Travel.entangled_txn_text u else Travel.plain_txn_text u in
  let partner = if entangled then Some u.Travel.partner else None in
  { Frame.label = u.Travel.name; partner; text }

(* Per-session outcome + latency tally, collected by the receiver. *)
type tally = {
  mutable t_committed : int;
  mutable t_rejected : int;
  mutable t_overloaded : int;
  mutable t_errors : int;
  t_accept : Histogram.t;
  t_reject : Histogram.t;
}

let fresh_tally () =
  {
    t_committed = 0;
    t_rejected = 0;
    t_overloaded = 0;
    t_errors = 0;
    t_accept = Histogram.create ();
    t_reject = Histogram.create ();
  }

(* One session: a sender thread pacing the absolute-time schedule and a
   receiver thread (this one) matching FIFO responses to send stamps.
   The timestamp queue is the only shared state; both sides touch it
   under [m]. *)
let drive_session ~connect ~seed ~target_hz ~requests users tally =
  let client = connect () in
  let stamps = Queue.create () in
  let m = Mutex.create () in
  let interval = 1. /. target_hz in
  let submissions =
    Array.init requests (fun i -> submission_of ~seed (List.nth users (i mod List.length users)))
  in
  let sent = ref 0 in
  let sender =
    Thread.create
      (fun () ->
        let start = Mclock.now_ns () in
        (try
           for i = 0 to requests - 1 do
             let due = float_of_int i *. interval in
             let behind = due -. Mclock.elapsed_s start in
             if behind > 0. then Unix.sleepf behind;
             Mutex.lock m;
             Queue.push (Mclock.now_ns ()) stamps;
             Mutex.unlock m;
             if not (Client.send client (Frame.Submit_datalog submissions.(i))) then raise Exit;
             incr sent
           done
         with Exit -> ()))
      ()
  in
  (try
     for _ = 0 to requests - 1 do
       match Client.recv client with
       | Error _ -> raise Exit
       | Ok frame ->
         let stamp =
           Mutex.lock m;
           let s = Queue.pop stamps in
           Mutex.unlock m;
           s
         in
         let dt = Mclock.elapsed_s stamp in
         (match frame with
          | Frame.Committed _ ->
            tally.t_committed <- tally.t_committed + 1;
            Histogram.observe tally.t_accept dt
          | Frame.Rejected _ ->
            tally.t_rejected <- tally.t_rejected + 1;
            Histogram.observe tally.t_reject dt
          | Frame.Overloaded _ -> tally.t_overloaded <- tally.t_overloaded + 1
          | _ -> tally.t_errors <- tally.t_errors + 1)
     done
   with Exit | Queue.Empty -> ());
  Thread.join sender;
  Client.close client;
  !sent

let split_of h =
  let q p = 1e6 *. Histogram.quantile h p in
  {
    count = Histogram.count h;
    mean_us = 1e6 *. Histogram.mean h;
    p50_us = q 0.5;
    p99_us = q 0.99;
    p999_us = q 0.999;
  }

let merge_tallies ts =
  let acc = fresh_tally () in
  List.iter
    (fun t ->
      acc.t_committed <- acc.t_committed + t.t_committed;
      acc.t_rejected <- acc.t_rejected + t.t_rejected;
      acc.t_overloaded <- acc.t_overloaded + t.t_overloaded;
      acc.t_errors <- acc.t_errors + t.t_errors;
      Histogram.merge ~into:acc.t_accept t.t_accept;
      Histogram.merge ~into:acc.t_reject t.t_reject)
    ts;
  acc

let run_sessions ~connect ~spec =
  let geometry = geometry_of spec in
  let fps = flights_per_session spec in
  let users =
    Travel.make_users ~flights:geometry.Flights.flights
      ~pairs_per_flight:(users_per_flight / 2)
  in
  let tallies = List.init spec.sessions (fun _ -> fresh_tally ()) in
  let start = Mclock.now_ns () in
  let total_sent = ref 0 in
  let sent_m = Mutex.create () in
  let threads =
    List.mapi
      (fun f tally ->
        Thread.create
          (fun () ->
            let mine = List.filter (fun u -> u.Travel.flight / fps = f) users in
            let n =
              drive_session ~connect ~seed:spec.seed ~target_hz:spec.target_hz
                ~requests:spec.requests_per_session mine tally
            in
            Mutex.lock sent_m;
            total_sent := !total_sent + n;
            Mutex.unlock sent_m)
          ())
      tallies
  in
  List.iter Thread.join threads;
  let wall = Mclock.elapsed_s start in
  (merge_tallies tallies, wall, !total_sent)

(* -- In-process loopback bench ---------------------------------------------- *)

let one_run ~spec ~wal_path =
  if Sys.file_exists wal_path then Sys.remove wal_path;
  let backend = Wal.file_backend wal_path in
  let store = Flights.fresh_store ~backend (geometry_of spec) in
  let config =
    { Server.default_config with Server.domains = spec.domains; engine_queue = 1024 }
  in
  let server = Server.start ~config ~store (Server.Tcp ("127.0.0.1", 0)) in
  let connect () = Client.connect (Server.address server) in
  let tally, wall, _sent = run_sessions ~connect ~spec in
  let gc = Server.group_commit server in
  let batches = Net.Group_commit.batches gc in
  let acked = Net.Group_commit.acked_durable gc in
  let mean_bs = Net.Group_commit.mean_batch_size gc in
  Server.stop server;
  (match Server.failure server with
   | Some exn -> failwith ("server failed under load: " ^ Printexc.to_string exn)
   | None -> ());
  let syncs = (Store.wal_stats store).Wal.syncs in
  if Sys.file_exists wal_path then Sys.remove wal_path;
  (tally, wall, batches, acked, mean_bs, syncs)

let outcomes t = (t.t_committed, t.t_rejected, t.t_overloaded, t.t_errors)

let bench ?(spec = default_spec) ?(wal_path = "results/server_bench.wal") () =
  let dir = Filename.dirname wal_path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  (* Same seed twice: arrival *timing* varies with the scheduler, but
     per-flight admission order is each session's send order, so the
     verdicts must not.  Keep the warm run's clocks. *)
  let cold, _, _, _, _, _ = one_run ~spec ~wal_path in
  let tally, wall, batches, acked, mean_bs, syncs = one_run ~spec ~wal_path in
  let requests = spec.sessions * spec.requests_per_session in
  {
    spec;
    committed = tally.t_committed;
    rejected = tally.t_rejected;
    overloaded = tally.t_overloaded;
    errors = tally.t_errors;
    wall_s = wall;
    achieved_hz = (if wall > 0. then float_of_int requests /. wall else 0.);
    accept = split_of tally.t_accept;
    reject = split_of tally.t_reject;
    batches;
    acked_durable = acked;
    mean_batch_size = mean_bs;
    wal_syncs = syncs;
    deterministic = outcomes cold = outcomes tally;
  }

(* -- Reporting ---------------------------------------------------------------- *)

let print_split name s =
  Printf.printf "  %-7s %6d obs  mean %8.1f us  p50 %8.1f  p99 %8.1f  p999 %8.1f\n" name
    s.count s.mean_us s.p50_us s.p99_us s.p999_us

let print r =
  Printf.printf
    "server bench: %d session(s) x %d req @ %.0f Hz each, %d domain(s), seed %d\n"
    r.spec.sessions r.spec.requests_per_session r.spec.target_hz r.spec.domains r.spec.seed;
  Printf.printf
    "  outcomes: %d committed, %d rejected, %d overloaded, %d errors in %.2fs (%.0f req/s)\n"
    r.committed r.rejected r.overloaded r.errors r.wall_s r.achieved_hz;
  Printf.printf "  group commit: %d batches, %d acked, mean batch %.2f, %d wal syncs\n"
    r.batches r.acked_durable r.mean_batch_size r.wal_syncs;
  print_split "accept" r.accept;
  print_split "reject" r.reject;
  Printf.printf "  deterministic outcomes across same-seed reruns: %b\n%!" r.deterministic

let split_json s =
  Printf.sprintf
    "{\"count\": %d, \"mean\": %.1f, \"p50\": %.1f, \"p99\": %.1f, \"p999\": %.1f}"
    s.count s.mean_us s.p50_us s.p99_us s.p999_us

let json_of_recording r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"qdb.bench.server/v1\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"workload\": {\"sessions\": %d, \"requests_per_session\": %d, \"target_hz\": %.1f, \
        \"domains\": %d, \"seed\": %d},\n"
       r.spec.sessions r.spec.requests_per_session r.spec.target_hz r.spec.domains r.spec.seed);
  Buffer.add_string b
    (Printf.sprintf "  \"deterministic\": %b,\n" r.deterministic);
  Buffer.add_string b
    (Printf.sprintf
       "  \"outcomes\": {\"committed\": %d, \"rejected\": %d, \"overloaded\": %d, \
        \"errors\": %d},\n"
       r.committed r.rejected r.overloaded r.errors);
  Buffer.add_string b
    (Printf.sprintf
       "  \"group_commit\": {\"batches\": %d, \"acked_durable\": %d, \
        \"mean_batch_size\": %.3f, \"wal_syncs\": %d},\n"
       r.batches r.acked_durable r.mean_batch_size r.wal_syncs);
  Buffer.add_string b (Printf.sprintf "  \"wall_s\": %.3f,\n" r.wall_s);
  Buffer.add_string b (Printf.sprintf "  \"achieved_hz\": %.1f,\n" r.achieved_hz);
  Buffer.add_string b
    (Printf.sprintf "  \"latency_us\": {\n    \"accept\": %s,\n    \"reject\": %s\n  }\n"
       (split_json r.accept) (split_json r.reject));
  Buffer.add_string b "}\n";
  Buffer.contents b

let write ?(path = "results/BENCH_server.json") r =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  output_string oc (json_of_recording r);
  close_out oc;
  Printf.printf "(server bench written to %s)\n%!" path;
  path

(* -- External-server load ----------------------------------------------------- *)

type load_stats = {
  l_sent : int;
  l_committed : int;
  l_rejected : int;
  l_overloaded : int;
  l_errors : int;
  l_wall_s : float;
  l_accept : split;
  l_reject : split;
}

let load ~host ~port ~sessions ~requests_per_session ~target_hz ~seed =
  let spec = { sessions; requests_per_session; target_hz; domains = 1; seed } in
  let connect () = Client.connect (Server.Tcp (host, port)) in
  let tally, wall, sent = run_sessions ~connect ~spec in
  {
    l_sent = sent;
    l_committed = tally.t_committed;
    l_rejected = tally.t_rejected;
    l_overloaded = tally.t_overloaded;
    l_errors = tally.t_errors;
    l_wall_s = wall;
    l_accept = split_of tally.t_accept;
    l_reject = split_of tally.t_reject;
  }

let print_load s =
  Printf.printf "load: %d sent, %d committed, %d rejected, %d overloaded, %d errors in %.2fs\n"
    s.l_sent s.l_committed s.l_rejected s.l_overloaded s.l_errors s.l_wall_s;
  print_split "accept" s.l_accept;
  print_split "reject" s.l_reject;
  flush stdout

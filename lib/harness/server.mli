(** Open-loop load generator and latency recording for the network
    front door.

    Arrivals are scheduled on an absolute clock at a target rate —
    requests are fired whether or not earlier responses came back, so
    measured latency includes every queueing effect (the coordinated
    omission an ask-then-wait loop would hide).  Each session is one
    connection driving its own band of small flights (8 users, 3 seats
    each — shallow pending sets keep admission cost flat, so the bench
    measures the front door, not the solver's deep-k regime); a sender
    thread follows the arrival schedule while a receiver thread matches
    the FIFO responses against their send timestamps.

    {!bench} runs server and clients in one process over a loopback
    socket on a file-backed WAL (real fsyncs, so group commit has
    something to amortise), twice with the same seed: admission
    outcomes must be identical run to run ([deterministic]), and the
    recording keeps the second (warm) run.  {!load} drives an external
    server and only reports the client-side view. *)

type spec = {
  sessions : int;  (** concurrent connections; a band of flights each *)
  requests_per_session : int;
  target_hz : float;  (** per-session arrival rate *)
  domains : int;  (** server-side Par pool size *)
  seed : int;
}

val default_spec : spec
(** 4 sessions x 400 requests at 800 Hz each, 1 domain, seed 11 — past the
    engine's sustained rate, so group-commit batches actually form. *)

val geometry_for : sessions:int -> requests_per_session:int -> Workload.Flights.geometry
(** The store geometry a given load shape books against — [qdb_cli
    serve] uses this to build a store that [qdb_cli load] with the same
    shape can drive. *)

type split = {
  count : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
}

type recording = {
  spec : spec;
  committed : int;
  rejected : int;
  overloaded : int;
  errors : int;
  wall_s : float;
  achieved_hz : float;  (** all sessions together *)
  accept : split;  (** latency of admissions acked [Committed] *)
  reject : split;  (** latency of [Rejected] verdicts *)
  batches : int;  (** group-commit batches that synced *)
  acked_durable : int;  (** admissions acked across all batches *)
  mean_batch_size : float;  (** acked_durable / batches *)
  wal_syncs : int;
  deterministic : bool;  (** same-seed rerun had identical outcomes *)
}

val bench : ?spec:spec -> ?wal_path:string -> unit -> recording
(** In-process loopback bench.  [wal_path] (default
    [results/server_bench.wal]) is created fresh for each run and
    removed afterwards. *)

val print : recording -> unit

val write : ?path:string -> recording -> string
(** Write the recording as [qdb.bench.server/v1] JSON (default
    [results/BENCH_server.json]); returns the path. *)

type load_stats = {
  l_sent : int;
  l_committed : int;
  l_rejected : int;
  l_overloaded : int;
  l_errors : int;
  l_wall_s : float;
  l_accept : split;
  l_reject : split;
}

val load :
  host:string -> port:int -> sessions:int -> requests_per_session:int ->
  target_hz:float -> seed:int -> load_stats
(** Drive an already-running server (started with [qdb_cli serve]) with
    the same open-loop schedule; sessions book into the flight bands of
    {!geometry_for}, so point it at a server whose store was built for
    the same [sessions] x [requests_per_session] shape. *)

val print_load : load_stats -> unit

(* Composed-body formulas (Section 3.2.1).

   The grammar is negation-normal by construction: the only negations the
   composition theorem produces are negated unification predicates, which
   are disjunctions of disequalities, plus negated atoms used for
   strict-insert checking.  Smart constructors simplify eagerly, keeping
   composed bodies small as pending transactions accumulate. *)

type t =
  | True
  | False
  | Atom of Atom.t (* must ground on the extensional database *)
  | Not_atom of Atom.t (* must NOT hold in the extensional database *)
  | Key_free of Atom.t (* no extensional row may share this tuple's key *)
  | Eq of Term.t * Term.t
  | Neq of Term.t * Term.t
  | Lt of Term.t * Term.t (* strict order on Value.compare *)
  | Le of Term.t * Term.t
  | And of t list
  | Or of t list

let tru = True
let fls = False
let atom a = Atom a
let not_atom a = Not_atom a
let key_free a = Key_free a

let eq t1 t2 =
  if Term.equal t1 t2 then True
  else
    match t1, t2 with
    | Term.C a, Term.C b -> if Relational.Value.equal a b then True else False
    | _ -> Eq (t1, t2)

let neq t1 t2 =
  if Term.equal t1 t2 then False
  else
    match t1, t2 with
    | Term.C a, Term.C b -> if Relational.Value.equal a b then False else True
    | _ -> Neq (t1, t2)

let lt t1 t2 =
  if Term.equal t1 t2 then False
  else
    match t1, t2 with
    | Term.C a, Term.C b -> if Relational.Value.compare a b < 0 then True else False
    | _ -> Lt (t1, t2)

let le t1 t2 =
  if Term.equal t1 t2 then True
  else
    match t1, t2 with
    | Term.C a, Term.C b -> if Relational.Value.compare a b <= 0 then True else False
    | _ -> Le (t1, t2)

let and_ fs =
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | True :: rest -> flatten acc rest
    | False :: _ -> None
    | And gs :: rest -> flatten acc (gs @ rest)
    | f :: rest -> flatten (f :: acc) rest
  in
  match flatten [] fs with
  | None -> False
  | Some [] -> True
  | Some [ f ] -> f
  | Some fs -> And fs

let or_ fs =
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | False :: rest -> flatten acc rest
    | True :: _ -> None
    | Or gs :: rest -> flatten acc (gs @ rest)
    | f :: rest -> flatten (f :: acc) rest
  in
  match flatten [] fs with
  | None -> True
  | Some [] -> False
  | Some [ f ] -> f
  | Some fs -> Or fs

(* Negation stays within the grammar by De Morgan and atom duals. *)
let rec negate = function
  | True -> False
  | False -> True
  | Atom a -> Not_atom a
  | Not_atom a -> Atom a
  | Key_free a ->
    invalid_arg
      (Printf.sprintf "Formula.negate: Key_free %s has no dual in this fragment"
         (Atom.to_string a))
  | Eq (a, b) -> neq a b
  | Neq (a, b) -> eq a b
  | Lt (a, b) -> le b a
  | Le (a, b) -> lt b a
  | And fs -> or_ (List.map negate fs)
  | Or fs -> and_ (List.map negate fs)

let of_equations eqs = and_ (List.map (fun (a, b) -> eq a b) eqs)

let rec vars = function
  | True | False -> Term.Var_set.empty
  | Atom a | Not_atom a | Key_free a -> Atom.vars a
  | Eq (a, b) | Neq (a, b) | Lt (a, b) | Le (a, b) ->
    let add acc = function
      | Term.V v -> Term.Var_set.add v acc
      | Term.C _ -> acc
    in
    add (add Term.Var_set.empty a) b
  | And fs | Or fs ->
    List.fold_left (fun acc f -> Term.Var_set.union acc (vars f)) Term.Var_set.empty fs

(* Map over a list, reusing the original spine (and the list itself) when
   [f] returns every element physically unchanged. *)
let rec map_sharing f l =
  match l with
  | [] -> l
  | x :: rest ->
    let x' = f x in
    let rest' = map_sharing f rest in
    if x' == x && rest' == rest then l else x' :: rest'

(* Physical-equality fast paths: a substitution that binds none of a
   subformula's variables returns that subformula unchanged, so applying a
   witness extension to a large composed body only rebuilds the clauses it
   actually touches. *)
let rec apply_subst s f =
  match f with
  | True | False -> f
  | Atom a ->
    let a' = Subst.apply_atom s a in
    if a' == a then f else atom a'
  | Not_atom a ->
    let a' = Subst.apply_atom s a in
    if a' == a then f else not_atom a'
  | Key_free a ->
    let a' = Subst.apply_atom s a in
    if a' == a then f else key_free a'
  | Eq (a, b) ->
    let a' = Subst.apply_term s a and b' = Subst.apply_term s b in
    if a' == a && b' == b then f else eq a' b'
  | Neq (a, b) ->
    let a' = Subst.apply_term s a and b' = Subst.apply_term s b in
    if a' == a && b' == b then f else neq a' b'
  | Lt (a, b) ->
    let a' = Subst.apply_term s a and b' = Subst.apply_term s b in
    if a' == a && b' == b then f else lt a' b'
  | Le (a, b) ->
    let a' = Subst.apply_term s a and b' = Subst.apply_term s b in
    if a' == a && b' == b then f else le a' b'
  | And fs ->
    let fs' = map_sharing (apply_subst s) fs in
    if fs' == fs then f else and_ fs'
  | Or fs ->
    let fs' = map_sharing (apply_subst s) fs in
    if fs' == fs then f else or_ fs'

(* Top-level conjuncts: the clause list of a composed body.  [and_] of the
   result rebuilds the formula, and [True] is the empty conjunction. *)
let conjuncts = function
  | True -> []
  | And fs -> fs
  | f -> [ f ]

(* -- Hash-consing --------------------------------------------------------- *)

(* Structurally equal subformulas collapse onto one shared node, so later
   [apply_subst]/[map_sharing] passes hit their physical-equality fast
   paths and repeated clauses cost one allocation.  The table is
   per-domain ([Domain.DLS]): sharded engines and pool workers each intern
   into their own table, so no synchronisation is needed — interning is
   semantically the identity, only sharing differs across domains. *)
let intern_table_key : (t, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

(* Drop the table rather than grow without bound; correctness is
   unaffected, only sharing resets. *)
let intern_table_max = 1 lsl 16

let intern f =
  let tbl = Domain.DLS.get intern_table_key in
  if Hashtbl.length tbl > intern_table_max then Hashtbl.reset tbl;
  let rec go f =
    let node =
      match f with
      | True | False | Atom _ | Not_atom _ | Key_free _ | Eq _ | Neq _ | Lt _ | Le _ -> f
      | And fs ->
        let fs' = map_sharing go fs in
        if fs' == fs then f else And fs'
      | Or fs ->
        let fs' = map_sharing go fs in
        if fs' == fs then f else Or fs'
    in
    match node with
    | True | False -> node
    | _ ->
      (match Hashtbl.find_opt tbl node with
       | Some canonical -> canonical
       | None ->
         Hashtbl.add tbl node node;
         node)
  in
  go f

(* -- Statistics (drive the adaptive grounding policy and benches) --------- *)

type stats = {
  atoms : int;
  negative_atoms : int;
  equalities : int;
  disequalities : int;
  or_nodes : int;
  or_branches : int;
  variables : int;
}

let stats f =
  let atoms = ref 0
  and negative_atoms = ref 0
  and equalities = ref 0
  and disequalities = ref 0
  and or_nodes = ref 0
  and or_branches = ref 0 in
  let rec go = function
    | True | False -> ()
    | Atom _ -> incr atoms
    | Not_atom _ | Key_free _ -> incr negative_atoms
    | Eq _ -> incr equalities
    | Neq _ | Lt _ | Le _ -> incr disequalities
    | And fs -> List.iter go fs
    | Or fs ->
      incr or_nodes;
      or_branches := !or_branches + List.length fs;
      List.iter go fs
  in
  go f;
  {
    atoms = !atoms;
    negative_atoms = !negative_atoms;
    equalities = !equalities;
    disequalities = !disequalities;
    or_nodes = !or_nodes;
    or_branches = !or_branches;
    variables = Term.Var_set.cardinal (vars f);
  }

(* -- Ground evaluation (the semantics; reference for the solver) ---------- *)

exception Unbound of Term.var

let eval_term valuation = function
  | Term.C v -> v
  | Term.V v ->
    (match valuation v with
     | Some value -> value
     | None -> raise (Unbound v))

let rec eval db valuation = function
  | True -> true
  | False -> false
  | Atom a ->
    let tuple = Array.map (eval_term valuation) a.Atom.args in
    Relational.Database.mem_tuple db a.Atom.rel tuple
  | Not_atom a ->
    let tuple = Array.map (eval_term valuation) a.Atom.args in
    not (Relational.Database.mem_tuple db a.Atom.rel tuple)
  | Key_free a ->
    let tuple = Array.map (eval_term valuation) a.Atom.args in
    not (Relational.Database.key_occupied db a.Atom.rel tuple)
  | Eq (a, b) -> Relational.Value.equal (eval_term valuation a) (eval_term valuation b)
  | Neq (a, b) -> not (Relational.Value.equal (eval_term valuation a) (eval_term valuation b))
  | Lt (a, b) -> Relational.Value.compare (eval_term valuation a) (eval_term valuation b) < 0
  | Le (a, b) -> Relational.Value.compare (eval_term valuation a) (eval_term valuation b) <= 0
  | And fs -> List.for_all (eval db valuation) fs
  | Or fs -> List.exists (eval db valuation) fs

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Atom a -> Atom.pp fmt a
  | Not_atom a -> Format.fprintf fmt "!%a" Atom.pp a
  | Key_free a -> Format.fprintf fmt "keyfree %a" Atom.pp a
  | Eq (a, b) -> Format.fprintf fmt "%a=%a" Term.pp a Term.pp b
  | Neq (a, b) -> Format.fprintf fmt "%a<>%a" Term.pp a Term.pp b
  | Lt (a, b) -> Format.fprintf fmt "%a<%a" Term.pp a Term.pp b
  | Le (a, b) -> Format.fprintf fmt "%a<=%a" Term.pp a Term.pp b
  | And fs ->
    Format.fprintf fmt "(@[<hov>%a@])"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ∧@ ") pp)
      fs
  | Or fs ->
    Format.fprintf fmt "(@[<hov>%a@])"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ∨@ ") pp)
      fs

let to_string f = Format.asprintf "%a" pp f

(** Composed-body formulas (Section 3.2.1 of the paper).

    Negation-normal by construction: composition only produces negated
    unification predicates (disjunctions of disequalities) and negated atoms.
    Use the smart constructors — they simplify eagerly. *)

type t =
  | True
  | False
  | Atom of Atom.t  (** must ground on the extensional database *)
  | Not_atom of Atom.t  (** must be absent from the extensional database *)
  | Key_free of Atom.t
      (** no extensional row may share this tuple's key (insert safety
          under set semantics) *)
  | Eq of Term.t * Term.t
  | Neq of Term.t * Term.t
  | Lt of Term.t * Term.t  (** strict order under {!Relational.Value.compare} *)
  | Le of Term.t * Term.t
  | And of t list
  | Or of t list

val tru : t
val fls : t
val atom : Atom.t -> t
val not_atom : Atom.t -> t
val key_free : Atom.t -> t
val eq : Term.t -> Term.t -> t
val neq : Term.t -> Term.t -> t
val lt : Term.t -> Term.t -> t
val le : Term.t -> Term.t -> t
val and_ : t list -> t
val or_ : t list -> t

val negate : t -> t
(** De Morgan within the grammar; atoms flip to their duals.
    @raise Invalid_argument on [Key_free], which has no dual here. *)

val of_equations : (Term.t * Term.t) list -> t
(** Conjunction of equalities — a unification predicate (Definition 3.3). *)

val vars : t -> Term.Var_set.t

val apply_subst : Subst.t -> t -> t
(** Applies with physical-equality fast paths: subformulas the
    substitution does not touch are returned unchanged (same node), so
    sharing from {!intern} survives repeated application. *)

val conjuncts : t -> t list
(** Top-level clause list of a composed body: [And fs] gives [fs], [True]
    the empty list, anything else a singleton.  [and_ (conjuncts f)] is
    equivalent to [f]. *)

val intern : t -> t
(** Hash-cons: structurally equal subformulas interned on the same domain
    return physically equal nodes, making the [apply_subst]/solver
    fast paths fire and deduplicating repeated clauses.  Semantically the
    identity.  The intern table is per-domain (thread-safe by
    construction); it is bounded and may be dropped under pressure. *)

type stats = {
  atoms : int;
  negative_atoms : int;
  equalities : int;
  disequalities : int;
  or_nodes : int;
  or_branches : int;
  variables : int;
}

val stats : t -> stats

exception Unbound of Term.var

val eval : Relational.Database.t -> (Term.var -> Relational.Value.t option) -> t -> bool
(** Ground semantics under a valuation; the specification the solver is
    tested against.  @raise Unbound on a free variable the valuation does
    not cover. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

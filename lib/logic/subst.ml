(* Substitutions: finite maps from variables to terms.

   Bindings may be in triangular form (a variable bound to another bound
   variable); [resolve] chases chains, and all exported application
   functions resolve fully, so callers always observe the idempotent
   closure. *)

type t = Term.t Term.Var_map.t

let empty : t = Term.Var_map.empty
let is_empty = Term.Var_map.is_empty
let cardinal = Term.Var_map.cardinal
let find v (s : t) = Term.Var_map.find_opt v s
let bindings (s : t) = Term.Var_map.bindings s

(* Chase variable chains to a fixpoint.  Chains are acyclic by construction
   (unification only binds unresolved variables), so this terminates. *)
let rec resolve (s : t) term =
  match term with
  | Term.C _ -> term
  | Term.V v ->
    (match Term.Var_map.find_opt v s with
     | Some t -> resolve s t
     | None -> term)

let bind v term (s : t) : t = Term.Var_map.add v term s

let apply_term s term = resolve s term

(* Atoms are immutable, so when the substitution binds none of the atom's
   variables the original atom comes back physically unchanged — the
   solver's and composer's physical-equality fast paths key off this. *)
let apply_atom s (a : Atom.t) =
  let args = a.Atom.args in
  let n = Array.length args in
  let rec first_change i =
    if i >= n then -1
    else if resolve s args.(i) == args.(i) then first_change (i + 1)
    else i
  in
  let i = first_change 0 in
  if i < 0 then a
  else begin
    let fresh = Array.copy args in
    for j = i to n - 1 do
      fresh.(j) <- resolve s fresh.(j)
    done;
    { a with Atom.args = fresh }
  end

(* Rebind every key directly to its resolved term, collapsing chains.
   Restriction must flatten first or a kept variable could point at a
   dropped intermediate variable. *)
let flatten (s : t) : t = Term.Var_map.map (fun t -> resolve s t) s

(* Restrict to a variable set (used when projecting cached solutions after a
   transaction is grounded and leaves its partition). *)
let restrict keep (s : t) : t =
  Term.Var_map.filter (fun v _ -> Term.Var_set.mem v keep) (flatten s)

let of_list l : t =
  List.fold_left (fun acc (v, t) -> Term.Var_map.add v t acc) Term.Var_map.empty l

let equations (s : t) = List.map (fun (v, t) -> (Term.V v, t)) (bindings s)

let pp fmt (s : t) =
  let pp_binding fmt (v, t) = Format.fprintf fmt "%a/%a" Term.pp_var v Term.pp t in
  Format.fprintf fmt "{@[<h>%a@]}"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ") pp_binding)
    (bindings s)

let to_string s = Format.asprintf "%a" pp s

(* Terms: variables and constants.

   Variables carry a user-facing name and a globally unique id; resource
   transactions are freshened on admission so pending transactions never
   share variables accidentally (the proof of Lemma 3.4 assumes disjoint
   variable sets). *)

type var = {
  vname : string;
  vid : int;
}

type t =
  | V of var
  | C of Relational.Value.t

(* Atomic so ids stay unique when independent engines mint variables from
   pool worker domains (per-flight sharded workloads). *)
let counter = Atomic.make 0

let fresh_var name = { vname = name; vid = 1 + Atomic.fetch_and_add counter 1 }

let var v = V v
let const c = C c
let int n = C (Relational.Value.Int n)
let str s = C (Relational.Value.Str s)
let bool b = C (Relational.Value.Bool b)

let is_var = function
  | V _ -> true
  | C _ -> false

let compare_var a b = Int.compare a.vid b.vid
let equal_var a b = a.vid = b.vid

let compare a b =
  match a, b with
  | V x, V y -> compare_var x y
  | C x, C y -> Relational.Value.compare x y
  | V _, C _ -> -1
  | C _, V _ -> 1

let equal a b = compare a b = 0

let pp_var fmt v = Format.fprintf fmt "%s_%d" v.vname v.vid

let pp fmt = function
  | V v -> pp_var fmt v
  | C c -> Relational.Value.pp fmt c

let to_string t = Format.asprintf "%a" pp t

module Var_map = Map.Make (struct
  type t = var

  let compare = compare_var
end)

module Var_set = Set.Make (struct
  type t = var

  let compare = compare_var
end)

let to_sexp = function
  | V v ->
    Relational.Sexp.List
      [ Relational.Sexp.Atom "v"; Relational.Sexp.Atom v.vname;
        Relational.Sexp.Atom (string_of_int v.vid) ]
  | C c -> Relational.Sexp.List [ Relational.Sexp.Atom "c"; Relational.Value.to_sexp c ]

let of_sexp = function
  | Relational.Sexp.List
      [ Relational.Sexp.Atom "v"; Relational.Sexp.Atom name; Relational.Sexp.Atom id ] ->
    (match int_of_string_opt id with
     | Some vid ->
       (* Keep the fresh-variable counter ahead of every deserialized id so
          recovery never re-mints an id that is still live in a pending
          transaction. *)
       let rec bump () =
         let cur = Atomic.get counter in
         if vid > cur && not (Atomic.compare_and_set counter cur vid) then bump ()
       in
       bump ();
       V { vname = name; vid }
     | None -> raise (Relational.Sexp.Parse_error ("bad var id: " ^ id)))
  | Relational.Sexp.List [ Relational.Sexp.Atom "c"; v ] -> C (Relational.Value.of_sexp v)
  | s -> raise (Relational.Sexp.Parse_error ("bad term sexp: " ^ Relational.Sexp.to_string s))

(* Blocking protocol client over one framed connection. *)

module Qdb = Quantum.Qdb

type t = { conn : Conn.t }

let connect ?max_payload address =
  let fd =
    match (address : Server.address) with
    | Server.Tcp (host, port) ->
      let addr = Conn.resolve host in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (addr, port))
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
    | Server.Unix_sock path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
  in
  { conn = Conn.of_fd ?max_payload fd }

let close t = Conn.close t.conn
let send t frame = Conn.write_frame t.conn frame
let recv t = Conn.read_frame t.conn

let call t frame =
  if send t frame then recv t else Error Conn.Closed

let transport_error = function
  | Conn.Closed -> "connection closed"
  | Conn.Protocol msg -> "protocol error: " ^ msg

let hello t =
  match call t (Frame.Hello "client") with
  | Ok (Frame.Hello_ok banner) -> Ok banner
  | Ok (Frame.Error_msg msg) -> Error msg
  | Ok other -> Error ("unexpected response: " ^ Frame.to_string other)
  | Error e -> Error (transport_error e)

let verdict = function
  | Ok (Frame.Committed id) -> Ok (Qdb.Committed id)
  | Ok (Frame.Rejected reason) -> Ok (Qdb.Rejected reason)
  | Ok (Frame.Overloaded reason) -> Ok (Qdb.Overloaded reason)
  | Ok (Frame.Error_msg msg) -> Error msg
  | Ok other -> Error ("unexpected response: " ^ Frame.to_string other)
  | Error e -> Error (transport_error e)

let submit_datalog t ~label ?partner text =
  verdict (call t (Frame.Submit_datalog { Frame.label; partner; text }))

let submit_sql t ~label ?partner text =
  verdict (call t (Frame.Submit_sql { Frame.label; partner; text }))

let query t text =
  match call t (Frame.Query text) with
  | Ok (Frame.Rows rows) -> Ok rows
  | Ok (Frame.Error_msg msg) | Ok (Frame.Overloaded msg) -> Error msg
  | Ok other -> Error ("unexpected response: " ^ Frame.to_string other)
  | Error e -> Error (transport_error e)

let grounded = function
  | Ok (Frame.Grounded n) -> Ok n
  | Ok (Frame.Error_msg msg) | Ok (Frame.Overloaded msg) -> Error msg
  | Ok other -> Error ("unexpected response: " ^ Frame.to_string other)
  | Error e -> Error (transport_error e)

let ground t id = grounded (call t (Frame.Ground id))
let ground_all t = grounded (call t Frame.Ground_all)

let ping t payload =
  match call t (Frame.Ping payload) with
  | Ok (Frame.Pong p) -> Ok p
  | Ok (Frame.Error_msg msg) -> Error msg
  | Ok other -> Error ("unexpected response: " ^ Frame.to_string other)
  | Error e -> Error (transport_error e)

(** Thin blocking client for the front-door protocol.

    One connection is one logical session.  [send]/[recv] are split so
    load generators can pipeline (open-loop) from separate sender and
    receiver threads; [call] is the synchronous convenience.  Not
    thread-safe beyond that split: at most one sender thread and one
    receiver thread. *)

type t

val connect : ?max_payload:int -> Server.address -> t
(** @raise Unix.Unix_error when the server cannot be reached. *)

val close : t -> unit

val send : t -> Frame.t -> bool
(** Fire one request without waiting; [false] when the connection is
    gone. *)

val recv : t -> (Frame.t, Conn.read_error) result
(** Next response, in request order. *)

val call : t -> Frame.t -> (Frame.t, Conn.read_error) result

val hello : t -> (string, string) result
(** Handshake; returns the server banner. *)

val submit_datalog :
  t -> label:string -> ?partner:string -> string -> (Quantum.Qdb.commit_result, string) result
(** Submit a Datalog-text transaction and wait for the (post-fsync)
    verdict.  [Error] is a transport or protocol failure, not a
    rejection — rejections are [Ok (Rejected _)]. *)

val submit_sql :
  t -> label:string -> ?partner:string -> string -> (Quantum.Qdb.commit_result, string) result

val query : t -> string -> (string list, string) result
val ground : t -> int -> (int, string) result
val ground_all : t -> (int, string) result
val ping : t -> string -> (string, string) result

(* Framed socket IO.  The read path keeps one growable buffer per
   connection: bytes accumulate at the front, [Frame.decode] is retried
   after every read, and a decoded frame's bytes are shifted out.  The
   buffer never grows past the frame size limit plus header, so a slow
   loris peer cannot balloon memory. *)

type t = {
  fd : Unix.file_descr;
  max_payload : int;
  mutable rbuf : Bytes.t;
  mutable rlen : int; (* valid bytes at offset 0 *)
  wmutex : Mutex.t;
  smutex : Mutex.t; (* guards [state] transitions *)
  mutable state : [ `Open | `Shutdown | `Closed ];
}

type read_error =
  | Closed
  | Protocol of string

(* A peer that vanished mid-conversation must surface as EPIPE from
   [write], not as a process-killing SIGPIPE — every socket writer here
   (server acks to a dead client, client requests to a crashed server)
   treats write failure as connection death. *)
let ignore_sigpipe =
  lazy
    (if not Sys.win32 then
       try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Sys_error _ -> ())

(* One resolver for server bind and client connect.  [gethostbyname] is
   a trap here: beyond being obsolete, an entry with an empty address
   list makes [h_addr_list.(0)] raise [Invalid_argument].  Literal
   addresses short-circuit; names go through [getaddrinfo], which never
   returns an empty-address entry. *)
let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ ->
    let candidates =
      try
        Unix.getaddrinfo host ""
          [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with Unix.Unix_error _ | Not_found -> []
    in
    (match
       List.find_map
         (function { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } -> Some a | _ -> None)
         candidates
     with
     | Some addr -> addr
     | None -> failwith (Printf.sprintf "cannot resolve host %S" host))

let of_fd ?(max_payload = Frame.default_max_payload) fd =
  Lazy.force ignore_sigpipe;
  {
    fd;
    max_payload;
    rbuf = Bytes.create 4096;
    rlen = 0;
    wmutex = Mutex.create ();
    smutex = Mutex.create ();
    state = `Open;
  }

let shutdown t =
  Mutex.lock t.smutex;
  if t.state = `Open then begin
    t.state <- `Shutdown;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  end;
  Mutex.unlock t.smutex

let close t =
  Mutex.lock t.smutex;
  if t.state <> `Closed then begin
    t.state <- `Closed;
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end;
  Mutex.unlock t.smutex

let grow t =
  if t.rlen = Bytes.length t.rbuf then begin
    let cap = min (4 + t.max_payload) (max 4096 (2 * Bytes.length t.rbuf)) in
    if cap > Bytes.length t.rbuf then begin
      let nbuf = Bytes.create cap in
      Bytes.blit t.rbuf 0 nbuf 0 t.rlen;
      t.rbuf <- nbuf
    end
  end

let rec read_frame t =
  match Frame.decode ~max_payload:t.max_payload t.rbuf ~off:0 ~len:t.rlen with
  | Frame.Frame (frame, consumed) ->
    Bytes.blit t.rbuf consumed t.rbuf 0 (t.rlen - consumed);
    t.rlen <- t.rlen - consumed;
    Ok frame
  | Frame.Malformed msg -> Error (Protocol msg)
  | Frame.Need_more ->
    grow t;
    let n =
      try Unix.read t.fd t.rbuf t.rlen (Bytes.length t.rbuf - t.rlen) with
      | Unix.Unix_error (Unix.EINTR, _, _) -> -1 (* retry *)
      | Unix.Unix_error _ -> 0 (* reset/closed: treat as EOF *)
    in
    if n < 0 then read_frame t
    else if n = 0 then
      if t.rlen = 0 then Error Closed else Error (Protocol "eof inside a frame")
    else begin
      t.rlen <- t.rlen + n;
      read_frame t
    end

let write_frame t frame =
  let data = Bytes.unsafe_of_string (Frame.encode frame) in
  Mutex.lock t.wmutex;
  let ok =
    try
      let len = Bytes.length data in
      let sent = ref 0 in
      while !sent < len do
        match Unix.write t.fd data !sent (len - !sent) with
        | n -> sent := !sent + n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      true
    with Unix.Unix_error _ -> false
  in
  Mutex.unlock t.wmutex;
  ok

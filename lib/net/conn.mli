(** Blocking framed IO over a socket: one {!Frame.t} at a time in either
    direction, with the read buffering and error taxonomy the protocol
    needs.  Reads are single-consumer; writes are mutex-serialized so an
    acker and a control path may share the connection. *)

type t

type read_error =
  | Closed  (** orderly EOF (or the peer vanished) between frames *)
  | Protocol of string
      (** a {!Frame.Malformed} payload, or EOF in mid-frame — the stream
          cannot resynchronise *)

val resolve : string -> Unix.inet_addr
(** Resolve a literal IPv4 address or a hostname (via [getaddrinfo]) to
    an address usable for bind/connect.  Shared by {!Server} and
    {!Client} so both fail the same way.  @raise Failure when the name
    does not resolve to any IPv4 address. *)

val of_fd : ?max_payload:int -> Unix.file_descr -> t
(** Wrap a connected socket.  [max_payload] bounds incoming frames
    (default {!Frame.default_max_payload}). *)

val read_frame : t -> (Frame.t, read_error) result
(** Block until one complete frame arrives.  Never raises on wire
    garbage: protocol violations come back as [Error (Protocol _)]. *)

val write_frame : t -> Frame.t -> bool
(** Write one frame, blocking until fully sent.  [false] when the peer
    (or this side) has closed the connection. *)

val shutdown : t -> unit
(** Shut down both directions without closing the descriptor: wakes a
    thread blocked in {!read_frame} (it sees [Closed]).  Idempotent. *)

val close : t -> unit
(** Close the descriptor.  Idempotent; implies {!shutdown}. *)

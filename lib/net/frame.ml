(* Length-prefixed binary framing (see frame.mli for the wire layout).

   Encoding builds the body in a Buffer and prepends the 4-byte length;
   decoding reads through a bounds-checked cursor whose failures surface
   as [Malformed], never as exceptions — a hostile peer can at worst get
   its connection closed. *)

type submission = {
  label : string;
  partner : string option;
  text : string;
}

type t =
  | Hello of string
  | Submit_datalog of submission
  | Submit_sql of submission
  | Query of string
  | Ground of int
  | Ground_all
  | Ping of string
  | Hello_ok of string
  | Committed of int
  | Rejected of string
  | Overloaded of string
  | Rows of string list
  | Grounded of int
  | Pong of string
  | Error_msg of string

let default_max_payload = 1 lsl 20

let tag = function
  | Hello _ -> 0x01
  | Submit_datalog _ -> 0x02
  | Submit_sql _ -> 0x03
  | Query _ -> 0x04
  | Ground _ -> 0x05
  | Ground_all -> 0x06
  | Ping _ -> 0x07
  | Hello_ok _ -> 0x41
  | Committed _ -> 0x42
  | Rejected _ -> 0x43
  | Overloaded _ -> 0x44
  | Rows _ -> 0x45
  | Grounded _ -> 0x46
  | Pong _ -> 0x47
  | Error_msg _ -> 0x48

let is_request = function
  | Hello _ | Submit_datalog _ | Submit_sql _ | Query _ | Ground _ | Ground_all
  | Ping _ ->
    true
  | Hello_ok _ | Committed _ | Rejected _ | Overloaded _ | Rows _ | Grounded _
  | Pong _ | Error_msg _ ->
    false

(* -- Encoding -------------------------------------------------------------- *)

let put_u32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

let put_i64 buf n =
  let n = Int64.of_int n in
  for shift = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * shift)) 0xffL)))
  done

let put_string buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_submission buf { label; partner; text } =
  put_string buf label;
  (match partner with
   | None -> Buffer.add_char buf '\000'
   | Some p ->
     Buffer.add_char buf '\001';
     put_string buf p);
  put_string buf text

let encode frame =
  let body = Buffer.create 64 in
  (match frame with
   | Hello s | Hello_ok s | Query s | Ping s | Pong s -> put_string body s
   | Submit_datalog sub | Submit_sql sub -> put_submission body sub
   | Ground n | Committed n | Grounded n -> put_i64 body n
   | Ground_all -> ()
   | Rejected s | Overloaded s | Error_msg s -> put_string body s
   | Rows rows ->
     put_u32 body (List.length rows);
     List.iter (put_string body) rows);
  let payload_len = 1 + Buffer.length body in
  let out = Buffer.create (4 + payload_len) in
  put_u32 out payload_len;
  Buffer.add_char out (Char.chr (tag frame));
  Buffer.add_buffer out body;
  Buffer.contents out

(* -- Decoding -------------------------------------------------------------- *)

exception Bad of string

(* Cursor over the payload body; every read is bounds-checked against the
   declared payload length, so a lying length field turns into [Bad]. *)
type cursor = {
  buf : Bytes.t;
  mutable pos : int;
  stop : int;
}

let need cur n what =
  if cur.stop - cur.pos < n then raise (Bad (Printf.sprintf "truncated %s" what))

let get_u8 cur what =
  need cur 1 what;
  let b = Char.code (Bytes.get cur.buf cur.pos) in
  cur.pos <- cur.pos + 1;
  b

let get_u32 cur what =
  need cur 4 what;
  let b i = Char.code (Bytes.get cur.buf (cur.pos + i)) in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  cur.pos <- cur.pos + 4;
  n

let get_i64 cur what =
  need cur 8 what;
  let n = ref 0L in
  for i = 0 to 7 do
    n :=
      Int64.logor (Int64.shift_left !n 8)
        (Int64.of_int (Char.code (Bytes.get cur.buf (cur.pos + i))))
  done;
  cur.pos <- cur.pos + 8;
  Int64.to_int !n

let get_string cur what =
  let n = get_u32 cur what in
  (* The length just read is itself bounded by the remaining payload, so
     a garbage length cannot trigger a giant allocation. *)
  if cur.stop - cur.pos < n then raise (Bad (Printf.sprintf "truncated %s" what));
  let s = Bytes.sub_string cur.buf cur.pos n in
  cur.pos <- cur.pos + n;
  s

let get_submission cur =
  let label = get_string cur "submission label" in
  let partner =
    match get_u8 cur "submission partner flag" with
    | 0 -> None
    | 1 -> Some (get_string cur "submission partner")
    | b -> raise (Bad (Printf.sprintf "bad option flag 0x%02x" b))
  in
  let text = get_string cur "submission text" in
  { label; partner; text }

type decode_result =
  | Frame of t * int
  | Need_more
  | Malformed of string

let decode ?(max_payload = default_max_payload) buf ~off ~len =
  if len < 4 then Need_more
  else begin
    let b i = Char.code (Bytes.get buf (off + i)) in
    let payload_len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if payload_len < 1 then Malformed "zero-length frame"
    else if payload_len > max_payload then
      Malformed
        (Printf.sprintf "oversized frame: %d bytes (limit %d)" payload_len max_payload)
    else if len < 4 + payload_len then Need_more
    else begin
      let cur = { buf; pos = off + 4; stop = off + 4 + payload_len } in
      match
        let tag = get_u8 cur "tag" in
        let frame =
          match tag with
          | 0x01 -> Hello (get_string cur "hello banner")
          | 0x02 -> Submit_datalog (get_submission cur)
          | 0x03 -> Submit_sql (get_submission cur)
          | 0x04 -> Query (get_string cur "query text")
          | 0x05 -> Ground (get_i64 cur "ground id")
          | 0x06 -> Ground_all
          | 0x07 -> Ping (get_string cur "ping payload")
          | 0x41 -> Hello_ok (get_string cur "hello_ok banner")
          | 0x42 -> Committed (get_i64 cur "committed id")
          | 0x43 -> Rejected (get_string cur "rejected reason")
          | 0x44 -> Overloaded (get_string cur "overloaded reason")
          | 0x45 ->
            let n = get_u32 cur "row count" in
            (* Each row needs at least its 4-byte length on the wire. *)
            if n > (cur.stop - cur.pos) / 4 then raise (Bad "row count exceeds payload");
            Rows (List.init n (fun _ -> get_string cur "row"))
          | 0x46 -> Grounded (get_i64 cur "grounded count")
          | 0x47 -> Pong (get_string cur "pong payload")
          | 0x48 -> Error_msg (get_string cur "error message")
          | t -> raise (Bad (Printf.sprintf "unknown frame tag 0x%02x" t))
        in
        if cur.pos <> cur.stop then
          raise (Bad (Printf.sprintf "%d trailing bytes in frame" (cur.stop - cur.pos)));
        frame
      with
      | frame -> Frame (frame, 4 + payload_len)
      | exception Bad msg -> Malformed msg
    end
  end

(* -- Rendering ------------------------------------------------------------- *)

let clip s = if String.length s <= 40 then s else String.sub s 0 37 ^ "..."

let to_string = function
  | Hello s -> Printf.sprintf "Hello(%s)" (clip s)
  | Submit_datalog { label; _ } -> Printf.sprintf "Submit_datalog(%s)" label
  | Submit_sql { label; _ } -> Printf.sprintf "Submit_sql(%s)" label
  | Query q -> Printf.sprintf "Query(%s)" (clip q)
  | Ground id -> Printf.sprintf "Ground(%d)" id
  | Ground_all -> "Ground_all"
  | Ping s -> Printf.sprintf "Ping(%s)" (clip s)
  | Hello_ok s -> Printf.sprintf "Hello_ok(%s)" (clip s)
  | Committed id -> Printf.sprintf "Committed(%d)" id
  | Rejected r -> Printf.sprintf "Rejected(%s)" (clip r)
  | Overloaded r -> Printf.sprintf "Overloaded(%s)" (clip r)
  | Rows rows -> Printf.sprintf "Rows(%d)" (List.length rows)
  | Grounded n -> Printf.sprintf "Grounded(%d)" n
  | Pong s -> Printf.sprintf "Pong(%s)" (clip s)
  | Error_msg m -> Printf.sprintf "Error_msg(%s)" (clip m)

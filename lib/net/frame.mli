(** Wire protocol of the network front door.

    Every frame is length-prefixed binary: a 4-byte big-endian payload
    length (tag byte + body, so at least 1), a 1-byte type tag, then the
    body.  Bodies carry the engine's existing *text* surfaces — SQL and
    Datalog transaction/query forms — plus small binary scalars
    (admission ids as 8-byte big-endian, strings as 4-byte-length +
    bytes).  The codec is total: {!decode} classifies any byte sequence
    as a frame, a prefix of one, or a protocol violation, and never
    raises. *)

(** A transaction submission: the Datalog/SQL text plus the client-side
    identity ([label], e.g. the requesting user) and the optional
    entanglement partner whose commit triggers grounding. *)
type submission = {
  label : string;
  partner : string option;
  text : string;
}

type t =
  (* requests *)
  | Hello of string  (** protocol handshake; body is the client banner *)
  | Submit_datalog of submission
  | Submit_sql of submission
  | Query of string  (** Datalog read query text *)
  | Ground of int  (** fix the values of one admission *)
  | Ground_all
  | Ping of string
  (* responses *)
  | Hello_ok of string  (** server banner *)
  | Committed of int  (** admission id; sent only after the WAL fsync *)
  | Rejected of string
  | Overloaded of string
  | Rows of string list  (** query answer tuples, rendered as text *)
  | Grounded of int  (** number of transactions grounded *)
  | Pong of string
  | Error_msg of string  (** protocol or execution error *)

val default_max_payload : int
(** Upper bound on the declared payload length (1 MiB): anything larger
    is a protocol violation, decoded as {!Malformed} before any
    allocation of that size happens. *)

val encode : t -> string
(** The complete wire image of a frame, header included. *)

type decode_result =
  | Frame of t * int
      (** A complete frame and the total bytes it consumed. *)
  | Need_more
      (** The buffer holds a prefix of a valid frame; read more bytes. *)
  | Malformed of string
      (** Protocol violation (oversized/zero length, unknown tag, body
          that does not parse or has trailing bytes).  The connection
          cannot resynchronise and must be closed. *)

val decode : ?max_payload:int -> Bytes.t -> off:int -> len:int -> decode_result
(** Decode one frame from [len] bytes starting at [off].  Total: never
    raises on any input (out-of-range [off]/[len] excepted). *)

val is_request : t -> bool
val to_string : t -> string
(** One-line rendering for logs and errors (payload texts truncated). *)

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable permits : int;
  mutable closed : bool;
}

let create n =
  if n < 0 then invalid_arg "Gate.create: negative permit count";
  { mutex = Mutex.create (); cond = Condition.create (); permits = n; closed = false }

let acquire t =
  Mutex.lock t.mutex;
  while t.permits = 0 && not t.closed do
    Condition.wait t.cond t.mutex
  done;
  let taken = not t.closed in
  if taken then t.permits <- t.permits - 1;
  Mutex.unlock t.mutex;
  taken

let release t =
  Mutex.lock t.mutex;
  t.permits <- t.permits + 1;
  Condition.signal t.cond;
  Mutex.unlock t.mutex

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

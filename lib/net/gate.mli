(** A closable counting semaphore for the per-session request window.

    Identical to [Semaphore.Counting] until {!close}: after that every
    blocked and future {!acquire} returns [false] immediately, so a
    reader parked on a full window wakes up and can run its teardown
    when the session (or the whole server) goes away. *)

type t

val create : int -> t
(** [create n] starts with [n] permits. *)

val acquire : t -> bool
(** Block until a permit is available or the gate closes.  [true] means
    a permit was taken; [false] means the gate is closed (no permit
    held — do not {!release}). *)

val release : t -> unit
(** Return one permit.  Safe after {!close} (the extra permit is
    irrelevant once every acquire fails). *)

val close : t -> unit
(** Wake every blocked {!acquire} and make all future ones fail.
    Idempotent. *)

(* Group commit: stage acks, sync once, release.  Single-consumer by
   design (the engine thread), but the telemetry counters are read by
   stats snapshots from other threads, so they sit behind a mutex. *)

type t = {
  sync : unit -> unit;
  mutable open_acks : (unit -> unit) list; (* newest first *)
  mutable open_durable : int;
  mutable open_count : int;
  (* telemetry *)
  mutex : Mutex.t;
  mutable batches : int;
  mutable acked_durable : int;
  batch_size : Obs.Histogram.t;
}

let create ~sync () =
  {
    sync;
    open_acks = [];
    open_durable = 0;
    open_count = 0;
    mutex = Mutex.create ();
    batches = 0;
    acked_durable = 0;
    batch_size = Obs.Histogram.create ();
  }

let stage t ~durable ack =
  t.open_acks <- ack :: t.open_acks;
  t.open_count <- t.open_count + 1;
  if durable then t.open_durable <- t.open_durable + 1

let staged t = t.open_count

let flush t =
  if t.open_count = 0 then 0
  else begin
    let durable = t.open_durable in
    (* Sync before the batch state is consumed: if the sync raises (the
       crash monkey injects exactly this), the staged acks stay staged
       and unrun — the caller tears the server down and no client ever
       hears about an admission the WAL may not hold. *)
    if durable > 0 then t.sync ();
    let acks = List.rev t.open_acks in
    t.open_acks <- [];
    t.open_durable <- 0;
    t.open_count <- 0;
    List.iter (fun ack -> ack ()) acks;
    if durable > 0 then begin
      Mutex.lock t.mutex;
      t.batches <- t.batches + 1;
      t.acked_durable <- t.acked_durable + durable;
      Obs.Histogram.observe t.batch_size (float_of_int durable);
      Mutex.unlock t.mutex
    end;
    durable
  end

let batches t =
  Mutex.lock t.mutex;
  let n = t.batches in
  Mutex.unlock t.mutex;
  n

let acked_durable t =
  Mutex.lock t.mutex;
  let n = t.acked_durable in
  Mutex.unlock t.mutex;
  n

let mean_batch_size t =
  Mutex.lock t.mutex;
  let m = if t.batches = 0 then 0. else float_of_int t.acked_durable /. float_of_int t.batches in
  Mutex.unlock t.mutex;
  m

let batch_size t = t.batch_size

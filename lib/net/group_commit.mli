(** The group-commit queue: acknowledgments staged against one shared
    fsync.

    The consumer thread that owns the engine processes a batch of
    admissions with the store's sync policy off, {!stage}s each
    request's acknowledgment thunk, then calls {!flush}: one durable
    sync covers every staged admission, and only then do the
    acknowledgments run — the ack-after-fsync contract.  Requests that
    wrote nothing durable (rejections, pings, witness reads) ride the
    same queue so per-session response order is preserved, but they
    never force a sync of their own. *)

type t

val create : sync:(unit -> unit) -> unit -> t
(** [sync] makes everything staged so far durable (e.g.
    [Relational.Store.sync]); it is called at most once per {!flush},
    and only when the open batch contains durable work. *)

val stage : t -> durable:bool -> (unit -> unit) -> unit
(** Append an acknowledgment to the open batch.  [durable] marks work
    whose effects must hit stable storage before the ack runs. *)

val staged : t -> int
(** Acks in the open batch. *)

val flush : t -> int
(** Close the open batch: sync once if any staged ack was durable, then
    run every staged ack in stage order.  Returns the durable count.
    An exception from [sync] aborts the flush with every ack unrun —
    nothing unsynced is ever acknowledged. *)

(** {2 Telemetry} (monotonic since [create]) *)

val batches : t -> int
(** Flushes that actually synced. *)

val acked_durable : t -> int
(** Durable acknowledgments released across all batches. *)

val mean_batch_size : t -> float
(** Durable admissions per sync; [0.] before the first sync. *)

val batch_size : t -> Obs.Histogram.t
(** Distribution of durable-admissions-per-sync (observations are
    counts, not seconds). *)

(* The network front door (see server.mli for the thread shape and the
   backpressure/durability contracts).

   Ownership: the engine thread is the only toucher of the [Qdb.t] and
   the store; session readers only parse bytes and enqueue; session
   writers only dequeue and write.  Every cross-thread edge is either a
   [Par.Mailbox] or a semaphore, so nothing here needs the engine to be
   thread-safe. *)

module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn
module Datalog_parser = Quantum.Datalog_parser
module Sql_parser = Quantum.Sql_parser
module Mailbox = Par.Mailbox
module Store = Relational.Store
module Wal = Relational.Wal
module Mclock = Obs.Mclock

type config = {
  engine_config : Qdb.config;
  domains : int;
  max_batch : int;
  session_buffer : int;
  engine_queue : int;
  max_payload : int;
}

let default_config =
  {
    engine_config = Qdb.default_config;
    domains = 1;
    max_batch = 64;
    session_buffer = 16;
    engine_queue = 256;
    max_payload = Frame.default_max_payload;
  }

type address =
  | Tcp of string * int
  | Unix_sock of string

let banner = "qdb/1"

type session = {
  sid : int;
  conn : Conn.t;
  (* Each queued frame is tagged with whether its request took an
     [inflight] permit, so the writer releases exactly the permits that
     were acquired — an inline frame (the reader's one terminal error)
     must not widen the window. *)
  out : (Frame.t * bool) Mailbox.t;
  inflight : Gate.t;
  mutable writer : Thread.t option;
  torn : bool Atomic.t; (* teardown ran (from its reader or from stop) *)
}

type request = {
  rq_frame : Frame.t;
  rq_arrival : int64;
  rq_session : session;
}

type t = {
  cfg : config;
  store : Store.t;
  qdb : Qdb.t;
  pool : Par.Pool.t option;
  gc : Group_commit.t;
  engine_q : request Mailbox.t;
  listen_fd : Unix.file_descr;
  bound : address;
  mutable acceptor : Thread.t option;
  mutable engine : Thread.t option;
  stopping : bool Atomic.t;
  stop_mutex : Mutex.t; (* serializes [stop] *)
  mutable stopped : bool;
  mutable failure_exn : exn option;
  sessions : (int, session) Hashtbl.t;
  sessions_mutex : Mutex.t;
  next_sid : int Atomic.t;
  (* telemetry *)
  sessions_opened : int Atomic.t;
  sessions_closed : int Atomic.t;
  frames_in : int Atomic.t;
  frames_out : int Atomic.t;
  protocol_errors : int Atomic.t;
  accept_lat : Obs.Histogram.t;
  reject_lat : Obs.Histogram.t;
  overload_lat : Obs.Histogram.t;
  request_lat : Obs.Histogram.t;
}

(* -- Session lifecycle ----------------------------------------------------- *)

let sessions_snapshot t =
  Mutex.lock t.sessions_mutex;
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [] in
  Mutex.unlock t.sessions_mutex;
  all

(* Idempotent: runs from the session's own reader on disconnect, and
   from [stop] for sessions still alive at shutdown.  Only the first
   caller acts; joining the writer twice is safe anyway. *)
let teardown_session t sess =
  if not (Atomic.exchange sess.torn true) then begin
    Conn.shutdown sess.conn;
    (* Wake a reader parked on a full window; it sees the closed gate,
       exits its loop, and re-enters here as a no-op. *)
    Gate.close sess.inflight;
    Mailbox.close sess.out;
    (match sess.writer with Some w -> Thread.join w | None -> ());
    Conn.close sess.conn;
    Mutex.lock t.sessions_mutex;
    Hashtbl.remove t.sessions sess.sid;
    Mutex.unlock t.sessions_mutex;
    Atomic.incr t.sessions_closed
  end

let writer_loop t sess =
  let rec loop () =
    match Mailbox.recv sess.out with
    | Some (frame, took_slot) ->
      if Conn.write_frame sess.conn frame then Atomic.incr t.frames_out;
      (* Release after the bytes left the process: the slot count is
         exactly the requests whose response has not reached the socket,
         which is what keeps a stalled peer's backlog on its own
         connection. *)
      if took_slot then Gate.release sess.inflight;
      loop ()
    | None -> ()
  in
  loop ()

let reader_loop t sess =
  (* [fatal] is terminal: the loop never continues past it, so at most
     one slot-less frame per session ever enters the out mailbox — the
     "+1" reserved at [spawn_session].  Every other frame (including
     Hello_ok) holds an [inflight] permit, so mailbox occupancy never
     exceeds capacity and the engine's acknowledgment sends stay
     non-blocking no matter what a protocol-legal client does. *)
  let fatal msg =
    Atomic.incr t.protocol_errors;
    ignore (Mailbox.send sess.out (Frame.Error_msg msg, false))
  in
  let rec loop () =
    match Conn.read_frame sess.conn with
    | Error Conn.Closed -> ()
    | Error (Conn.Protocol msg) -> fatal ("protocol error: " ^ msg)
    | Ok frame ->
      Atomic.incr t.frames_in;
      (match frame with
       | Frame.Hello _ ->
         (* Handshake handled inline (no engine round-trip), but it
            still takes a window slot: a Hello flood must queue behind
            the session's own unread responses, not grow them.  FIFO
            with later acks holds because this precedes any subsequent
            request's enqueue. *)
         if Gate.acquire sess.inflight then begin
           ignore (Mailbox.send sess.out (Frame.Hello_ok banner, true));
           loop ()
         end
       | frame when Frame.is_request frame ->
         let arrival = Mclock.now_ns () in
         if not (Gate.acquire sess.inflight) then ()
         else if Mailbox.send t.engine_q { rq_frame = frame; rq_arrival = arrival; rq_session = sess }
         then loop ()
         else fatal "server shutting down"
       | frame -> fatal ("unexpected response frame: " ^ Frame.to_string frame))
  in
  loop ();
  teardown_session t sess

let spawn_session t fd =
  let conn = Conn.of_fd ~max_payload:t.cfg.max_payload fd in
  let sess =
    {
      sid = Atomic.fetch_and_add t.next_sid 1;
      conn;
      (* +1: the reader's single terminal error frame is the only
         producer that bypasses the [inflight] window, so one reserved
         slot keeps it from competing with the [session_buffer]
         permit-holding frames for mailbox room — the engine's staged
         sends stay non-blocking. *)
      out = Mailbox.create ~capacity:(t.cfg.session_buffer + 1) ();
      inflight = Gate.create t.cfg.session_buffer;
      writer = None;
      torn = Atomic.make false;
    }
  in
  Mutex.lock t.sessions_mutex;
  Hashtbl.replace t.sessions sess.sid sess;
  Mutex.unlock t.sessions_mutex;
  Atomic.incr t.sessions_opened;
  sess.writer <- Some (Thread.create (fun () -> writer_loop t sess) ());
  ignore (Thread.create (fun () -> reader_loop t sess) ())

(* -- Failure ---------------------------------------------------------------- *)

(* A dead engine (or acceptor) is a dead server: drop every connection
   without acknowledging anything staged — exactly what a process crash
   after the last completed fsync would look like to clients. *)
let server_failed t exn =
  t.failure_exn <- Some exn;
  Atomic.set t.stopping true;
  Mailbox.close t.engine_q;
  List.iter
    (fun sess ->
      Conn.shutdown sess.conn;
      Gate.close sess.inflight;
      Mailbox.close sess.out)
    (sessions_snapshot t)

(* -- Acceptor --------------------------------------------------------------- *)

let acceptor_loop t =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else begin
      match Unix.select [ t.listen_fd ] [] [] 0.05 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ ->
        (match Unix.accept ~cloexec:true t.listen_fd with
         | fd, _ ->
           if Atomic.get t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
           else spawn_session t fd;
           loop ()
         | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                                      | Unix.ECONNABORTED | Unix.ECONNRESET), _, _) ->
           (* The half-open connection died before we got it; next. *)
           loop ()
         | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE
                                      | Unix.ENOBUFS | Unix.ENOMEM), _, _) ->
           (* Fd/buffer exhaustion is routine under a connection flood:
              back off and keep serving — existing sessions will close
              and return descriptors.  The pending connection stays in
              the listen backlog meanwhile. *)
           Thread.delay 0.05;
           loop ()
         | exception (Unix.Unix_error _ as exn) ->
           (* Anything else means we can no longer accept: a silently
              dead acceptor would look like a healthy server that
              ignores the world, so fail loudly and tear down. *)
           server_failed t exn)
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> loop ()
      | exception (Unix.Unix_error _ as exn) -> server_failed t exn
    end
  in
  loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

(* -- Engine ----------------------------------------------------------------- *)

(* Per-request failures a hostile or confused client can cause come back
   as response frames; anything else means the engine (or its store) can
   no longer be trusted and kills the server like a process crash. *)
let run_request t (req : request) : Frame.t =
  let admit parse =
    match parse () with
    | exception Datalog_parser.Syntax_error msg -> Frame.Error_msg ("syntax error: " ^ msg)
    | exception Sql_parser.Syntax_error msg -> Frame.Error_msg ("syntax error: " ^ msg)
    | exception Rtxn.Ill_formed msg -> Frame.Error_msg ("ill-formed transaction: " ^ msg)
    | txn ->
      (match Qdb.submit t.qdb txn with
       | Qdb.Committed id -> Frame.Committed id
       | Qdb.Rejected reason -> Frame.Rejected reason
       | Qdb.Overloaded reason -> Frame.Overloaded reason)
  in
  let trigger = function
    | None -> Rtxn.On_demand
    | Some p -> Rtxn.On_partner p
  in
  match req.rq_frame with
  | Frame.Submit_datalog { label; partner; text } ->
    admit (fun () -> Datalog_parser.parse_txn ~label ~trigger:(trigger partner) text)
  | Frame.Submit_sql { label; partner = _; text } ->
    let schema_of name =
      Option.map Relational.Table.schema (Relational.Database.find_table (Qdb.db t.qdb) name)
    in
    admit (fun () -> Sql_parser.parse_txn ~label ~schema_of text)
  | Frame.Query text ->
    (match Datalog_parser.parse_query text with
     | exception Datalog_parser.Syntax_error msg -> Frame.Error_msg ("syntax error: " ^ msg)
     | query ->
       (match Qdb.read t.qdb query with
        | rows -> Frame.Rows (List.map Relational.Tuple.to_string rows)
        | exception Qdb.Engine_overloaded msg -> Frame.Overloaded msg))
  | Frame.Ground id ->
    (match Qdb.ground t.qdb id with
     | groundings -> Frame.Grounded (List.length groundings)
     | exception Qdb.Engine_overloaded msg -> Frame.Overloaded msg
     | exception Not_found -> Frame.Error_msg (Printf.sprintf "no pending transaction %d" id)
     | exception Invalid_argument msg -> Frame.Error_msg msg
     | exception Failure msg -> Frame.Error_msg msg)
  | Frame.Ground_all ->
    (match Qdb.ground_all t.qdb with
     | groundings -> Frame.Grounded (List.length groundings)
     | exception Qdb.Engine_overloaded msg -> Frame.Overloaded msg)
  | Frame.Ping payload -> Frame.Pong payload
  | frame -> Frame.Error_msg ("unexpected frame: " ^ Frame.to_string frame)

let observe_latency t resp dt =
  let hist =
    match resp with
    | Frame.Committed _ -> t.accept_lat
    | Frame.Rejected _ -> t.reject_lat
    | Frame.Overloaded _ -> t.overload_lat
    | _ -> t.request_lat
  in
  Obs.Histogram.observe hist dt

let process t (req : request) =
  let records_before = (Store.wal_stats t.store).Wal.records in
  let resp = run_request t req in
  let durable = (Store.wal_stats t.store).Wal.records > records_before in
  Group_commit.stage t.gc ~durable (fun () ->
      observe_latency t resp (Mclock.elapsed_s req.rq_arrival);
      if Mailbox.send req.rq_session.out (resp, true) then Atomic.incr t.frames_out)

let engine_loop t =
  let rec loop () =
    match Mailbox.recv_batch ~max:t.cfg.max_batch t.engine_q with
    | [] -> () (* closed and drained: stop already flushed us empty *)
    | batch ->
      (match
         List.iter (process t) batch;
         ignore (Group_commit.flush t.gc)
       with
      | () -> loop ()
      | exception exn -> server_failed t exn)
  in
  loop ()

(* -- Lifecycle -------------------------------------------------------------- *)

let bind_listener = function
  | Tcp (host, port) ->
    let addr = Conn.resolve host in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (try Unix.bind fd (Unix.ADDR_INET (addr, port))
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    Unix.listen fd 128;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (a, p) -> Tcp (Unix.string_of_inet_addr a, p)
      | _ -> Tcp (host, port)
    in
    (fd, bound)
  | Unix_sock path as addr ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.bind fd (Unix.ADDR_UNIX path)
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    Unix.listen fd 128;
    (fd, addr)

let start ?(config = default_config) ~store address =
  let listen_fd, bound = bind_listener address in
  (* The group committer owns durability from here on: the engine
     thread decides when the WAL hits the disk, once per batch. *)
  Store.set_sync store Wal.Never;
  let pool = if config.domains > 1 then Some (Par.Pool.create ~domains:config.domains ()) else None in
  let qdb = Qdb.create ~config:config.engine_config ?pool store in
  let t =
    {
      cfg = config;
      store;
      qdb;
      pool;
      gc = Group_commit.create ~sync:(fun () -> Store.sync store) ();
      engine_q = Mailbox.create ~capacity:config.engine_queue ();
      listen_fd;
      bound;
      acceptor = None;
      engine = None;
      stopping = Atomic.make false;
      stop_mutex = Mutex.create ();
      stopped = false;
      failure_exn = None;
      sessions = Hashtbl.create 64;
      sessions_mutex = Mutex.create ();
      next_sid = Atomic.make 0;
      sessions_opened = Atomic.make 0;
      sessions_closed = Atomic.make 0;
      frames_in = Atomic.make 0;
      frames_out = Atomic.make 0;
      protocol_errors = Atomic.make 0;
      accept_lat = Obs.Histogram.create ();
      reject_lat = Obs.Histogram.create ();
      overload_lat = Obs.Histogram.create ();
      request_lat = Obs.Histogram.create ();
    }
  in
  t.engine <- Some (Thread.create (fun () -> engine_loop t) ());
  t.acceptor <- Some (Thread.create (fun () -> acceptor_loop t) ());
  t

let address t = t.bound
let qdb t = t.qdb
let group_commit t = t.gc
let failure t = t.failure_exn

let stop t =
  Mutex.lock t.stop_mutex;
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    (* Drain before disconnect: the engine processes everything already
       admitted to the queue, flushes it under one last sync, and acks
       it — a graceful stop loses nothing that was accepted. *)
    Mailbox.close t.engine_q;
    (match t.engine with Some th -> Thread.join th | None -> ());
    List.iter (teardown_session t) (sessions_snapshot t);
    (match t.pool with Some p -> Par.Pool.shutdown p | None -> ());
    (match t.bound with
     | Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
     | Tcp _ -> ())
  end;
  Mutex.unlock t.stop_mutex

let wait t =
  match t.engine with
  | Some th -> Thread.join th
  | None -> ()

let registry t =
  let reg = Qdb.registry t.qdb in
  Obs.Registry.set_counter reg "net.sessions.opened" (Atomic.get t.sessions_opened);
  Obs.Registry.set_counter reg "net.sessions.closed" (Atomic.get t.sessions_closed);
  Obs.Registry.set_counter reg "net.frames.in" (Atomic.get t.frames_in);
  Obs.Registry.set_counter reg "net.frames.out" (Atomic.get t.frames_out);
  Obs.Registry.set_counter reg "net.protocol_errors" (Atomic.get t.protocol_errors);
  Obs.Registry.set_histogram reg "net.accept.latency" t.accept_lat;
  Obs.Registry.set_histogram reg "net.reject.latency" t.reject_lat;
  Obs.Registry.set_histogram reg "net.overload.latency" t.overload_lat;
  Obs.Registry.set_histogram reg "net.request.latency" t.request_lat;
  Obs.Registry.set_counter reg "net.group_commit.batches" (Group_commit.batches t.gc);
  Obs.Registry.set_counter reg "net.group_commit.acked" (Group_commit.acked_durable t.gc);
  Obs.Registry.set_gauge reg "net.group_commit.mean_batch_size" (Group_commit.mean_batch_size t.gc);
  Obs.Registry.set_histogram reg "net.group_commit.batch_size" (Group_commit.batch_size t.gc);
  reg

(** The network front door: a socket server over one engine.

    Thread shape: a single acceptor thread; per connection one reader
    thread and one writer thread; one engine thread that owns the
    [Quantum.Qdb.t].  Every request frame crosses exactly one bounded
    {!Par.Mailbox} (many session readers, one engine consumer), the
    engine drains it in batches with {!Par.Mailbox.recv_batch}, and
    each batch's durable effects hit the WAL under a single
    {!Group_commit} fsync before any acknowledgment frame is released.

    Backpressure is layered: each session holds at most
    [session_buffer] unacknowledged requests (its reader stops pulling
    bytes off the socket until acks drain, so a flooding client stalls
    itself, not the engine), and the engine mailbox bounds total queued
    work (a full engine blocks the readers feeding it).  Because every
    in-flight request — including the inline-handled [Hello] — holds a
    reserved slot in its session's response mailbox until its response
    reaches the socket, the engine's acknowledgment sends never block:
    a stalled reader on one connection cannot delay another session's
    acks, no matter what frame sequence the peer sends. *)

type config = {
  engine_config : Quantum.Qdb.config;
  domains : int;  (** Par pool size for solver fan-out; <= 1 runs inline *)
  max_batch : int;  (** group-commit batch cap per engine drain *)
  session_buffer : int;  (** per-session in-flight (unacked) request cap *)
  engine_queue : int;  (** central request mailbox capacity *)
  max_payload : int;  (** per-frame byte bound, see {!Frame.decode} *)
}

val default_config : config
(** [engine_config = Quantum.Qdb.default_config], [domains = 1],
    [max_batch = 64], [session_buffer = 16], [engine_queue = 256],
    [max_payload = Frame.default_max_payload]. *)

type address =
  | Tcp of string * int  (** host, port; port 0 binds an ephemeral port *)
  | Unix_sock of string  (** filesystem path *)

type t

val start : ?config:config -> store:Relational.Store.t -> address -> t
(** Bind, listen and serve.  The server takes ownership of [store]: it
    switches the WAL sync policy to [Never] and issues the fsyncs
    itself at group-commit boundaries.  @raise Unix.Unix_error when the
    address cannot be bound. *)

val address : t -> address
(** The bound address — with the real port when [Tcp (_, 0)] was
    given. *)

val qdb : t -> Quantum.Qdb.t

val registry : t -> Obs.Registry.t
(** Engine registry plus [net.*] counters and latency histograms
    ([net.accept.latency], [net.reject.latency], [net.request.latency],
    [net.group_commit.*], session/frame counters). *)

val group_commit : t -> Group_commit.t

val failure : t -> exn option
(** Set when the engine thread died on an unrecoverable exception (an
    injected crash, [Quantum.Qdb.Inconsistent]); the server is torn down as if
    the process were lost: connections drop, nothing unsynced was ever
    acknowledged. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, let the engine drain and flush
    every queued request, acknowledge them, then close every session.
    Idempotent; safe after an engine failure (joins what remains). *)

val wait : t -> unit
(** Block until the engine thread exits (a {!stop} from another thread,
    or an engine failure). *)

(* Telemetry exporters.

   Three machine-readable formats over the same data:
   - Chrome trace_event JSON ("about:tracing" / Perfetto) for the span ring,
   - Prometheus text exposition for the registry,
   - a JSON snapshot of the registry (counters + gauges + histogram
     quantiles), the format `results/metrics.json` is written in. *)

(* -- Chrome trace_event ----------------------------------------------------- *)

let arg_to_json = function
  | Trace.Int i -> Json.Num (float_of_int i)
  | Trace.Float x -> Json.Num x
  | Trace.Str s -> Json.Str s
  | Trace.Bool b -> Json.Bool b

let ns_to_us ns = Int64.to_float ns /. 1e3

let event_to_json (e : Trace.event) =
  let base =
    [ ("name", Json.Str e.Trace.name);
      ("cat", Json.Str e.Trace.cat);
      ("pid", Json.Num 1.);
      ("tid", Json.Num (float_of_int e.Trace.tid));
      ("ts", Json.Num (ns_to_us e.Trace.ts_ns));
    ]
  in
  let phase =
    match e.Trace.ph with
    | Trace.Span -> [ ("ph", Json.Str "X"); ("dur", Json.Num (ns_to_us e.Trace.dur_ns)) ]
    | Trace.Instant -> [ ("ph", Json.Str "i"); ("s", Json.Str "t") ]
  in
  (* Span ids and parent links ride in args — Perfetto shows them in the
     details pane and tests reconstruct the causal tree from them. *)
  let causal =
    (if e.Trace.id <> 0 then [ ("span_id", Trace.Int e.Trace.id) ] else [])
    @ if e.Trace.parent <> 0 then [ ("parent", Trace.Int e.Trace.parent) ] else []
  in
  let args =
    match causal @ e.Trace.args with
    | [] -> []
    | args -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) args)) ]
  in
  Json.Obj (base @ phase @ args)

(* Flow events ("s"/"f" pairs) drawing an arrow from a parent span to each
   child recorded on a DIFFERENT domain — the cross-domain hops (pool
   fan-out → worker job) that a per-track view would otherwise hide. *)
let flow_events events =
  let tid_of = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) -> if e.Trace.id <> 0 then Hashtbl.replace tid_of e.Trace.id e.Trace.tid)
    events;
  List.concat_map
    (fun (e : Trace.event) ->
      match Hashtbl.find_opt tid_of e.Trace.parent with
      | Some parent_tid when e.Trace.id <> 0 && parent_tid <> e.Trace.tid ->
        let base name tid extra =
          Json.Obj
            ([ ("name", Json.Str "spawn");
               ("cat", Json.Str "flow");
               ("ph", Json.Str name);
               ("id", Json.Num (float_of_int e.Trace.id));
               ("pid", Json.Num 1.);
               ("tid", Json.Num (float_of_int tid));
               ("ts", Json.Num (ns_to_us e.Trace.ts_ns));
             ]
             @ extra)
        in
        [ base "s" parent_tid []; base "f" e.Trace.tid [ ("bp", Json.Str "e") ] ]
      | _ -> [])
    events

let chrome_trace events =
  Json.Obj
    [ ("traceEvents", Json.List (List.map event_to_json events @ flow_events events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let chrome_trace_string events = Json.to_string (chrome_trace events)

(* -- Prometheus text exposition --------------------------------------------- *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let prom_float x =
  if x = infinity then "+Inf"
  else if x = neg_infinity then "-Inf"
  else Json.number_to_string x

let prometheus registry =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, value) ->
      let n = sanitize name in
      match value with
      | Registry.Counter v ->
        line "# TYPE %s counter" n;
        line "%s %d" n v
      | Registry.Gauge v ->
        line "# TYPE %s gauge" n;
        line "%s %s" n (prom_float v)
      | Registry.Histogram h ->
        line "# TYPE %s histogram" n;
        let cumulative = ref 0 in
        List.iter
          (fun (upper, count) ->
            cumulative := !cumulative + count;
            line "%s_bucket{le=\"%s\"} %d" n (prom_float upper) !cumulative)
          (Histogram.nonempty_buckets h);
        line "%s_bucket{le=\"+Inf\"} %d" n (Histogram.count h);
        line "%s_sum %s" n (prom_float (Histogram.sum h));
        line "%s_count %d" n (Histogram.count h);
        (* Tail quantile as a companion gauge: log-bucketed histograms
           resolve p999 to ~5% already, and scrape-side quantile math over
           20/decade buckets only loses precision. *)
        line "# TYPE %s_p999 gauge" n;
        line "%s_p999 %s" n (prom_float (Histogram.quantile h 0.999)))
    (Registry.items registry);
  Buffer.contents buf

(* -- JSON registry snapshot ------------------------------------------------- *)

let histogram_to_json h =
  Json.Obj
    [ ("count", Json.Num (float_of_int (Histogram.count h)));
      ("sum_s", Json.Num (Histogram.sum h));
      ("min_s", Json.Num (Histogram.min_value h));
      ("mean_s", Json.Num (Histogram.mean h));
      ("p50_s", Json.Num (Histogram.quantile h 0.5));
      ("p90_s", Json.Num (Histogram.quantile h 0.9));
      ("p99_s", Json.Num (Histogram.quantile h 0.99));
      ("p999_s", Json.Num (Histogram.quantile h 0.999));
      ("max_s", Json.Num (Histogram.max_value h));
    ]

let json_snapshot registry =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (name, value) ->
      match value with
      | Registry.Counter v -> counters := (name, Json.Num (float_of_int v)) :: !counters
      | Registry.Gauge v -> gauges := (name, Json.Num v) :: !gauges
      | Registry.Histogram h -> histograms := (name, histogram_to_json h) :: !histograms)
    (Registry.items registry);
  Json.Obj
    [ ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !histograms));
    ]

let json_snapshot_string registry = Json.to_string (json_snapshot registry)

(* -- File helpers ----------------------------------------------------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write_chrome_trace path events = write_file path (chrome_trace_string events)
let write_json_snapshot path registry = write_file path (json_snapshot_string registry)

(** Telemetry exporters: Chrome [trace_event] JSON for the span ring,
    Prometheus text exposition and a JSON snapshot for the registry. *)

val chrome_trace : Trace.event list -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}] — loadable in
    chrome://tracing and Perfetto.  Spans become complete ("X") events,
    instants become "i" events; timestamps are microseconds.  Each event
    lands on its recording domain's track ([tid]), span ids and parent
    links ride in [args], and cross-domain parent→child hops additionally
    emit flow ("s"/"f") arrows. *)

val chrome_trace_string : Trace.event list -> string

val prometheus : Registry.t -> string
(** Text exposition: counters and gauges as single samples, histograms as
    cumulative [_bucket{le="..."}] samples plus [_sum], [_count] and a
    [_p999] tail-quantile gauge.  Names are sanitized to [[A-Za-z0-9_]]. *)

val json_snapshot : Registry.t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}] with
    count/sum/min/mean/p50/p90/p99/p999/max per histogram (seconds) — the
    format [results/metrics.json] is written in. *)

val json_snapshot_string : Registry.t -> string

val write_file : string -> string -> unit
val write_chrome_trace : string -> Trace.event list -> unit
val write_json_snapshot : string -> Registry.t -> unit

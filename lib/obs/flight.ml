(* Per-admission flight recorder + process-wide phase accounting.

   Two things share one set of instrumentation points:

   - [time phase f] attributes wall time to a pipeline phase.  Attribution
     is *exclusive*: a phase's self time is its elapsed time minus the
     time spent in phases nested inside it, so the per-phase totals are a
     partition of instrumented wall time and never double count (the
     engine's Ground solve runs inside the Ground wrapper but accrues to
     Solve, not to both).  Totals are process-global atomics — worker
     domains accrue concurrently — and each domain keeps its own frame
     stack in DLS, so attribution is race-free without locks.

   - a fixed-size ring of per-admission records: while an admission is
     open (between [begin_admission] and [end_admission]) every phase
     interval measured on the same domain is also charged to that
     admission's record, alongside its outcome, solver work and
     chunk-reuse counts.  Admissions exceeding [slow_ns] additionally
     capture the trace events of their window into a bounded dump list —
     the offending record plus its spans, retrievable after the run.

   Like tracing, the recorder is process-global and off by default; every
   entry point's first instruction is a flag test.  Recording must never
   change engine behaviour — it only reads clocks and counters. *)

type phase =
  | Compose (* delta/body composition *)
  | Cache (* witness-extension attempts in the solution cache *)
  | Solve (* unseeded/seeded solver search (admission, refill, recheck, ground) *)
  | Wal (* store applies: pending-table inserts, grounding batches *)
  | Ground (* grounding orchestration around its solves and WAL writes *)
  | Freeze (* snapshotting partition state for worker jobs *)
  | Queue (* pool queue wait: enqueue to dequeue *)
  | Compute (* worker-side shard/job execution not otherwise attributed *)
  | Merge (* result recombination on the orchestrating domain *)
  | Install (* installing worker results into caches *)
  | Coordination (* fan-out orchestration: planning, waiting on the pool *)
  | Governor (* admission-budget ladder: retries, backoff, degradation *)

let n_phases = 12

let index = function
  | Compose -> 0
  | Cache -> 1
  | Solve -> 2
  | Wal -> 3
  | Ground -> 4
  | Freeze -> 5
  | Queue -> 6
  | Compute -> 7
  | Merge -> 8
  | Install -> 9
  | Coordination -> 10
  | Governor -> 11

let phase_name = function
  | Compose -> "compose"
  | Cache -> "cache"
  | Solve -> "solve"
  | Wal -> "wal"
  | Ground -> "ground"
  | Freeze -> "freeze"
  | Queue -> "queue_wait"
  | Compute -> "compute"
  | Merge -> "merge"
  | Install -> "install"
  | Coordination -> "coordination"
  | Governor -> "governor"

let all_phases =
  [ Compose; Cache; Solve; Wal; Ground; Freeze; Queue; Compute; Merge; Install; Coordination;
    Governor ]

type record = {
  seq : int; (* admission order, monotonically increasing *)
  txn_id : int;
  label : string;
  outcome : string; (* "committed" / "rejected" / "exception" *)
  total_ns : int;
  phase_ns : int array; (* indexed by [index], exclusive self time *)
  solver_nodes : int;
  solver_candidates : int;
  chunks_reused : int; (* composed chunks the delta path did not rebuild *)
}

let record_phase_ns r phase = r.phase_ns.(index phase)

(* -- Process-global state --------------------------------------------------- *)

let enabled = ref false
let default_capacity = 4096
let default_slow_ns = Int64.max_int
let max_slow_dumps = 8

let totals_ns : int Atomic.t array = Array.init n_phases (fun _ -> Atomic.make 0)

(* Ring of per-admission records, shared across domains (run_sharded
   admits from workers); same locking shape as the trace ring. *)
let ring : record option array ref = ref [||]
let total = ref 0
let slow_ns = ref default_slow_ns
let slow_dumps_list : (record * Trace.event list) list ref = ref []
let ring_mutex = Mutex.create ()

(* -- Per-domain state (no locks) -------------------------------------------- *)

type frame = {
  f_phase : int;
  f_start : int64;
  mutable f_child_ns : int64; (* time claimed by nested phases *)
}

let stack_key : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

type cell = {
  c_seq : int;
  c_txn_id : int;
  c_label : string;
  c_start : int64;
  c_phase_ns : int array;
  mutable c_chunks_reused : int;
}

let cell_key : cell option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let next_seq = Atomic.make 0

let on () = !enabled

let enable ?(capacity = default_capacity) ?(slow_threshold_ns = default_slow_ns) () =
  Mutex.lock ring_mutex;
  ring := Array.make (max 16 capacity) None;
  total := 0;
  slow_ns := slow_threshold_ns;
  slow_dumps_list := [];
  Array.iter (fun a -> Atomic.set a 0) totals_ns;
  Atomic.set next_seq 0;
  Mutex.unlock ring_mutex;
  enabled := true

let disable () = enabled := false

let clear () =
  Mutex.lock ring_mutex;
  total := 0;
  slow_dumps_list := [];
  Array.iter (fun a -> Atomic.set a 0) totals_ns;
  Atomic.set next_seq 0;
  Mutex.unlock ring_mutex

let capacity () = Array.length !ring
let recorded () = !total
let dropped () = max 0 (!total - Array.length !ring)

(* -- Phase attribution ------------------------------------------------------ *)

let charge phase_idx self_ns =
  ignore (Atomic.fetch_and_add totals_ns.(phase_idx) self_ns);
  match !(Domain.DLS.get cell_key) with
  | Some cell -> cell.c_phase_ns.(phase_idx) <- cell.c_phase_ns.(phase_idx) + self_ns
  | None -> ()

let time phase f =
  if not !enabled then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let fr = { f_phase = index phase; f_start = Mclock.now_ns (); f_child_ns = 0L } in
    stack := fr :: !stack;
    let finally () =
      let elapsed = Mclock.elapsed_ns fr.f_start in
      (match !stack with
       | top :: rest when top == fr -> stack := rest
       | _ -> () (* unbalanced only if f tampered with the recorder; don't corrupt *));
      charge fr.f_phase (max 0 (Int64.to_int (Int64.sub elapsed fr.f_child_ns)));
      match !stack with
      | parent :: _ -> parent.f_child_ns <- Int64.add parent.f_child_ns elapsed
      | [] -> ()
    in
    Fun.protect ~finally f
  end

(* Attribute an interval measured by the caller (e.g. queue wait, clocked
   from the enqueuing domain).  Counts as a nested phase of the current
   frame so the enclosing phase's self time stays exclusive. *)
let add_ns phase ns =
  if !enabled && ns > 0L then begin
    charge (index phase) (Int64.to_int ns);
    match !(Domain.DLS.get stack_key) with
    | parent :: _ -> parent.f_child_ns <- Int64.add parent.f_child_ns ns
    | [] -> ()
  end

let totals () =
  List.map (fun p -> (p, Atomic.get totals_ns.(index p))) all_phases

let total_attributed_ns () =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 totals_ns

(* -- Per-admission records -------------------------------------------------- *)

let begin_admission ~txn_id ~label =
  if !enabled then begin
    let cell = Domain.DLS.get cell_key in
    match !cell with
    | Some _ -> () (* nested admission (k-pressure re-entry is not one); keep outer *)
    | None ->
      cell :=
        Some
          {
            c_seq = Atomic.fetch_and_add next_seq 1;
            c_txn_id = txn_id;
            c_label = label;
            c_start = Mclock.now_ns ();
            c_phase_ns = Array.make n_phases 0;
            c_chunks_reused = 0;
          }
  end

let note_chunks_reused n =
  if !enabled then
    match !(Domain.DLS.get cell_key) with
    | Some cell -> cell.c_chunks_reused <- n
    | None -> ()

let push_record r =
  Mutex.lock ring_mutex;
  let ring' = !ring in
  if Array.length ring' > 0 then begin
    ring'.(!total mod Array.length ring') <- Some r;
    incr total
  end;
  if r.total_ns >= Int64.to_int (Int64.min !slow_ns (Int64.of_int max_int))
     && List.length !slow_dumps_list < max_slow_dumps
  then begin
    (* The admission's window of the trace ring: spans that started (or
       instants that fired) after the admission began.  Empty when
       tracing is off — the record itself still dumps. *)
    let start = Int64.sub (Mclock.now_ns ()) (Int64.of_int r.total_ns) in
    let window =
      List.filter (fun (e : Trace.event) -> Int64.compare e.Trace.ts_ns start >= 0)
        (Trace.events ())
    in
    slow_dumps_list := !slow_dumps_list @ [ (r, window) ]
  end;
  Mutex.unlock ring_mutex

(* Clears the open cell even when recording was disabled mid-admission,
   so a toggle never leaks attribution into a later admission. *)
let end_admission ~outcome ~solver_nodes ~solver_candidates =
  let cell = Domain.DLS.get cell_key in
  match !cell with
  | None -> ()
  | Some c ->
    cell := None;
    if !enabled then
      push_record
        {
          seq = c.c_seq;
          txn_id = c.c_txn_id;
          label = c.c_label;
          outcome;
          total_ns = max 0 (Int64.to_int (Mclock.elapsed_ns c.c_start));
          phase_ns = c.c_phase_ns;
          solver_nodes;
          solver_candidates;
          chunks_reused = c.c_chunks_reused;
        }

(* Surviving records, oldest first. *)
let records () =
  Mutex.lock ring_mutex;
  let r = !ring in
  let cap = Array.length r in
  let n = min !total cap in
  let out = List.init n (fun i -> r.((!total - n + i) mod cap)) in
  Mutex.unlock ring_mutex;
  List.filter_map Fun.id out

let top_slow n =
  let by_total a b = Int.compare b.total_ns a.total_ns in
  List.filteri (fun i _ -> i < n) (List.stable_sort by_total (records ()))

let slow_dumps () =
  Mutex.lock ring_mutex;
  let d = !slow_dumps_list in
  Mutex.unlock ring_mutex;
  d

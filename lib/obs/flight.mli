(** Per-admission flight recorder + process-wide phase accounting.

    Off by default (one flag test per entry point when disabled); never
    changes engine behaviour.  [time] attributes exclusive wall time to a
    pipeline phase, both into process-global totals and — while an
    admission is open on the same domain — into that admission's record.
    Records land in a fixed-size ring; admissions slower than the
    configured threshold also dump their record plus the trace events of
    their window. *)

type phase =
  | Compose  (** delta/body composition *)
  | Cache  (** witness-extension attempts in the solution cache *)
  | Solve  (** solver search: admission, refill, recheck, ground *)
  | Wal  (** store applies: pending-table inserts, grounding batches *)
  | Ground  (** grounding orchestration around its solves and WAL writes *)
  | Freeze  (** snapshotting partition state for worker jobs *)
  | Queue  (** pool queue wait: enqueue to dequeue *)
  | Compute  (** worker-side shard/job execution not otherwise attributed *)
  | Merge  (** result recombination on the orchestrating domain *)
  | Install  (** installing worker results into caches *)
  | Coordination  (** fan-out orchestration: planning, waiting on the pool *)
  | Governor  (** admission-budget ladder: retries, backoff, degradation *)

val phase_name : phase -> string
val all_phases : phase list

type record = {
  seq : int;  (** admission order, monotonically increasing *)
  txn_id : int;
  label : string;
  outcome : string;  (** "committed" / "rejected" / "exception" *)
  total_ns : int;
  phase_ns : int array;  (** per-phase exclusive self time; see [record_phase_ns] *)
  solver_nodes : int;
  solver_candidates : int;
  chunks_reused : int;  (** composed chunks the delta path did not rebuild *)
}

val record_phase_ns : record -> phase -> int

val enable : ?capacity:int -> ?slow_threshold_ns:int64 -> unit -> unit
(** Reset all totals/records and start recording.  [capacity] is the
    record ring size (clamped to ≥ 16); admissions taking at least
    [slow_threshold_ns] (default: never) dump record + trace window. *)

val disable : unit -> unit
val clear : unit -> unit
val on : unit -> bool

val time : phase -> (unit -> 'a) -> 'a
(** Run [f], attributing its {e exclusive} wall time (elapsed minus time
    claimed by nested [time]/[add_ns] calls) to [phase].  Identity when
    disabled. *)

val add_ns : phase -> int64 -> unit
(** Attribute an externally measured interval (e.g. queue wait clocked
    from another domain).  Counts as nested time of the current frame. *)

val totals : unit -> (phase * int) list
(** Process-wide per-phase totals, ns, in [all_phases] order. *)

val total_attributed_ns : unit -> int

(** {1 Per-admission records} *)

val begin_admission : txn_id:int -> label:string -> unit
(** Open an admission on this domain; phase time measured here is charged
    to it until [end_admission].  Nested opens are ignored. *)

val note_chunks_reused : int -> unit

val end_admission : outcome:string -> solver_nodes:int -> solver_candidates:int -> unit
(** Close the open admission and push its record into the ring. *)

val records : unit -> record list
(** Surviving records, oldest first. *)

val top_slow : int -> record list
(** The [n] slowest surviving records, slowest first (stable on ties). *)

val slow_dumps : unit -> (record * Trace.event list) list
(** Records that crossed the slow threshold, each with the trace events
    of its window (empty when tracing was off); capped at 8 per run. *)

val capacity : unit -> int
val recorded : unit -> int
(** Admissions recorded since [enable]/[clear], including overwritten. *)

val dropped : unit -> int

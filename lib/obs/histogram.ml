(* Log-bucketed latency histogram.

   Buckets grow geometrically — [per_decade] buckets per power of ten —
   covering 1 ns to 1000 s, plus an underflow and an overflow bucket.
   With 20 buckets per decade the relative width of a bucket is
   10^(1/20) - 1 ≈ 12%, which bounds the quantile estimation error; count,
   sum, min and max are tracked exactly.  Observations are in seconds. *)

let lo = 1e-9 (* lower bound of the first regular bucket *)
let per_decade = 20
let decades = 12 (* 1e-9 .. 1e3 s *)
let regular = per_decade * decades
let nbuckets = regular + 2 (* + underflow, + overflow *)
let hi = lo *. (10. ** float_of_int decades)

type t = {
  counts : int array; (* counts.(0) underflow, counts.(nbuckets-1) overflow *)
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { counts = Array.make nbuckets 0; count = 0; sum = 0.; min = infinity; max = neg_infinity }

let reset t =
  Array.fill t.counts 0 nbuckets 0;
  t.count <- 0;
  t.sum <- 0.;
  t.min <- infinity;
  t.max <- neg_infinity

(* Bucket index of value [v]: underflow is 0, regular buckets are
   1..regular (bucket i covers [lo*r^(i-1), lo*r^i) with r = 10^(1/20)),
   overflow is nbuckets-1. *)
let index v =
  if v < lo then 0
  else if v >= hi then nbuckets - 1
  else begin
    let i = 1 + int_of_float (Float.log10 (v /. lo) *. float_of_int per_decade) in
    (* log10 rounding can push a value sitting exactly on a boundary one
       bucket either way; clamp into the regular range. *)
    if i < 1 then 1 else if i > regular then regular else i
  end

(* Upper bound of bucket [i] (1-based regular buckets). *)
let bucket_upper i =
  if i <= 0 then lo
  else if i >= nbuckets - 1 then infinity
  else lo *. (10. ** (float_of_int i /. float_of_int per_decade))

let bucket_lower i = if i <= 1 then 0. else bucket_upper (i - 1)

let observe t v =
  let v = if Float.is_nan v || v < 0. then 0. else v in
  t.counts.(index v) <- t.counts.(index v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0. else t.min
let max_value t = if t.count = 0 then 0. else t.max
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

(* Quantile estimate: find the bucket holding the rank-[q] observation and
   return its geometric midpoint, clamped into the exact [min, max]
   envelope (so p100 = max and quantiles of single-observation histograms
   are exact). *)
let quantile t q =
  if t.count = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = int_of_float (Float.round (q *. float_of_int (t.count - 1))) + 1 in
    let rec find i seen =
      if i >= nbuckets then nbuckets - 1
      else begin
        let seen = seen + t.counts.(i) in
        if seen >= rank then i else find (i + 1) seen
      end
    in
    let i = find 0 0 in
    let estimate =
      if i = 0 then t.min
      else if i = nbuckets - 1 then t.max
      else sqrt (Float.max lo (bucket_lower i) *. bucket_upper i)
    in
    Float.max t.min (Float.min t.max estimate)
  end

let merge ~into src =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.count > 0 then begin
    if src.min < into.min then into.min <- src.min;
    if src.max > into.max then into.max <- src.max
  end

(* Non-empty buckets as (upper_bound_seconds, count); the overflow bucket
   reports an infinite upper bound.  Exporters build cumulative
   Prometheus-style `le` buckets from this. *)
let nonempty_buckets t =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bucket_upper i, t.counts.(i)) :: !acc
  done;
  !acc

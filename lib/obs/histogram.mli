(** Log-bucketed latency histogram (observations in seconds).

    Geometric buckets — 20 per decade, 1 ns to 1000 s, plus underflow and
    overflow — bound the relative quantile-estimation error at
    10^(1/20) - 1 ≈ 12%; count, sum, min and max are exact.  Negative and
    NaN observations clamp to zero rather than raising: telemetry must
    never take the engine down. *)

type t

val create : unit -> t
val reset : t -> unit

val observe : t -> float -> unit
(** Record one observation, in seconds. *)

val count : t -> int
val sum : t -> float

val min_value : t -> float
(** Exact minimum; [0.] when empty. *)

val max_value : t -> float
(** Exact maximum; [0.] when empty. *)

val mean : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1] (clamped): the geometric midpoint of
    the bucket holding the rank-[q] observation, clamped into the exact
    [min, max] envelope.  [0.] when empty. *)

val merge : into:t -> t -> unit
(** Add [src]'s buckets and moments into [into]. *)

val nonempty_buckets : t -> (float * int) list
(** Non-empty buckets as [(upper_bound_seconds, count)], ascending; the
    overflow bucket's upper bound is [infinity]. *)

(**/**)

val index : float -> int
(** Bucket index of a value — exposed for boundary tests. *)

val bucket_upper : int -> float
val bucket_lower : int -> float

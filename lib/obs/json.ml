(* Minimal JSON tree, printer and parser — just enough for the telemetry
   exporters (and for tests to parse their output back).  No dependency on
   an external JSON package, by design: the observability layer sits under
   every other library in the repo. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* -- Printing -------------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.12g" x

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> Buffer.add_string buf (number_to_string x)
  | Str s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* -- Parsing --------------------------------------------------------------- *)

type cursor = { text : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.text
    && (match c.text.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> error c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.text then error c "unterminated string";
    let ch = c.text.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (if c.pos >= String.length c.text then error c "unterminated escape";
       let e = c.text.[c.pos] in
       c.pos <- c.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         if c.pos + 4 > String.length c.text then error c "bad \\u escape";
         let hex = String.sub c.text c.pos 4 in
         c.pos <- c.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex) with _ -> error c "bad \\u escape"
         in
         (* Telemetry output is ASCII; decode BMP code points as UTF-8. *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
       | _ -> error c "bad escape");
      go ()
    | ch -> Buffer.add_char buf ch; go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let number_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.text && number_char c.text.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then error c "expected number";
  match float_of_string_opt (String.sub c.text start (c.pos - start)) with
  | Some x -> x
  | None -> error c "malformed number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
    expect c '[';
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> error c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    expect c '{';
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          fields (kv :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev (kv :: acc)
        | _ -> error c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some _ -> Num (parse_number c)

let of_string text =
  let c = { text; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length text then error c "trailing garbage";
  v

(* -- Accessors (for tests and tooling) ------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function
  | List items -> items
  | _ -> []

let to_number = function
  | Num x -> Some x
  | _ -> None

let to_str = function
  | Str s -> Some s
  | _ -> None

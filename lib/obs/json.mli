(** Minimal JSON tree, printer and parser for the telemetry exporters.

    Deliberately dependency-free: the observability layer sits under every
    other library in the repo, so it cannot pull in an external JSON
    package.  The parser exists so tests (and tooling) can read exporter
    output back instead of string-matching it. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact (single-line) rendering.  Non-finite numbers print as [null];
    integral values print without a fractional part. *)

val number_to_string : float -> string
(** The number formatting [to_string] uses, for non-JSON emitters that
    want identical rendering. *)

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing key or non-object. *)

val to_list : t -> t list
(** Elements of a [List]; [[]] for any other constructor. *)

val to_number : t -> float option
val to_str : t -> string option

(* Monotonic time source, shared with the Bechamel micro-benchmarks (both
   sit on the same clock_gettime(CLOCK_MONOTONIC) stub).  Wall-clock time
   (Unix.gettimeofday) is not robust to NTP adjustments and must not be
   used for latency measurement anywhere in the engine. *)

let now_ns () = Monotonic_clock.now ()

let elapsed_ns since = Int64.sub (now_ns ()) since

let ns_to_s ns = Int64.to_float ns *. 1e-9

let elapsed_s since = ns_to_s (elapsed_ns since)

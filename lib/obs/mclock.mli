(** Monotonic time source — the same [clock_gettime(CLOCK_MONOTONIC)] stub
    Bechamel's micro-benchmarks measure with.  All engine timing goes
    through this module; wall-clock time is not robust to clock
    adjustments and is never used for durations. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary fixed origin; strictly non-decreasing. *)

val elapsed_ns : int64 -> int64
(** [elapsed_ns t0] is [now_ns () - t0]. *)

val ns_to_s : int64 -> float
val elapsed_s : int64 -> float

(* Metrics registry: a flat namespace of counters, gauges and histograms.

   Metric names are dotted paths ("qdb.submit.latency", "solver.nodes");
   exporters sanitize them per format.  Histograms can be created here or
   installed by reference, so long-lived engine histograms (Metrics.t)
   appear in snapshots without copying. *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Histogram.t

type t = { tbl : (string, value) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let set_counter t name v = Hashtbl.replace t.tbl name (Counter v)
let set_gauge t name v = Hashtbl.replace t.tbl name (Gauge v)
let set_histogram t name h = Hashtbl.replace t.tbl name (Histogram h)

let incr_counter ?(by = 1) t name =
  let current =
    match Hashtbl.find_opt t.tbl name with
    | Some (Counter v) -> v
    | Some (Gauge _) | Some (Histogram _) | None -> 0
  in
  Hashtbl.replace t.tbl name (Counter (current + by))

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some (Counter _) | Some (Gauge _) | None ->
    let h = Histogram.create () in
    Hashtbl.replace t.tbl name (Histogram h);
    h

let find t name = Hashtbl.find_opt t.tbl name

let items t =
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge ~into src =
  List.iter
    (fun (name, v) ->
      match v, find into name with
      | Counter c, Some (Counter c') -> set_counter into name (c + c')
      | Histogram h, Some (Histogram h') -> Histogram.merge ~into:h' h
      | Histogram h, _ ->
        let fresh = Histogram.create () in
        Histogram.merge ~into:fresh h;
        set_histogram into name fresh
      | (Counter _ | Gauge _), _ -> Hashtbl.replace into.tbl name v)
    (items src)

(** Metrics registry: a flat namespace of counters, gauges and
    log-bucketed latency histograms, consumed by {!Export}.

    Names are dotted paths (["qdb.submit.latency"]); exporters sanitize
    them per output format. *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of Histogram.t

type t

val create : unit -> t

val set_counter : t -> string -> int -> unit
val incr_counter : ?by:int -> t -> string -> unit
val set_gauge : t -> string -> float -> unit

val set_histogram : t -> string -> Histogram.t -> unit
(** Install an existing histogram by reference — long-lived engine
    histograms appear in snapshots without copying. *)

val histogram : t -> string -> Histogram.t
(** Get-or-create. *)

val find : t -> string -> value option

val items : t -> (string * value) list
(** Sorted by name. *)

val merge : into:t -> t -> unit
(** Sum counters, merge histograms (into fresh copies when absent from
    [into]), and overwrite gauges. *)

(* Structured trace layer: a fixed-capacity ring of span / instant events
   covering the resource-transaction lifecycle (submit → admission →
   pending → ground/collapse) plus the layers underneath it (solver
   search, solution cache, partitions, WAL).

   Tracing is process-global and off by default.  The fast path when
   disabled is a single flag test — instrumentation sites either call
   [span]/[instant] (whose first instruction is that test) or guard bigger
   argument computations behind [on ()].  When the ring wraps, the oldest
   events are overwritten; [dropped ()] reports how many.

   Causality: every span gets a process-unique id and records the id of
   the span that was current on its domain when it started.  [capture] /
   [with_ctx] carry that "current span" across a domain-pool hop, so a
   worker-side solve is parented to the orchestrator-side fan-out span
   that scheduled it, and each event's [tid] (the recording domain) puts
   it on the right track in the Chrome trace.

   The ring is shared mutable state, and solver work may record events
   from pool worker domains, so the slow path ([record]/[events]) is
   mutex-protected; the [on ()] fast path stays a lock-free flag read,
   and the per-domain current-span cell is domain-local (DLS), touched
   without any lock. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type phase =
  | Span (* complete event: start timestamp + duration *)
  | Instant

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_ns : int64; (* monotonic start time *)
  dur_ns : int64; (* 0 for instants *)
  tid : int; (* recording domain — one Chrome track per domain *)
  id : int; (* span id, unique per process; 0 for instants *)
  parent : int; (* enclosing span id (possibly cross-domain); 0 = root *)
  args : (string * arg) list;
}

let default_capacity = 65536

let enabled = ref false
let ring : event array ref = ref [||]
let total = ref 0 (* events ever recorded since [enable]/[clear] *)

let on () = !enabled

(* Span ids start at 1 so 0 can mean "no span" in [parent] fields. *)
let next_id = Atomic.make 1

(* Current span id of each domain; jobs hopping domains overwrite it via
   [with_ctx] for their duration. *)
let current_key = Domain.DLS.new_key (fun () -> ref 0)

let domain_id () = (Domain.self () :> int)

let enable ?(capacity = default_capacity) () =
  let capacity = max 16 capacity in
  let dummy =
    { name = ""; cat = ""; ph = Instant; ts_ns = 0L; dur_ns = 0L; tid = 0; id = 0; parent = 0;
      args = [] }
  in
  ring := Array.make capacity dummy;
  total := 0;
  enabled := true

let disable () = enabled := false

let clear () = total := 0

let capacity () = Array.length !ring
let recorded () = !total
let dropped () = max 0 (!total - Array.length !ring)

let ring_mutex = Mutex.create ()

let record ev =
  Mutex.lock ring_mutex;
  let r = !ring in
  if Array.length r > 0 then begin
    r.(!total mod Array.length r) <- ev;
    incr total
  end;
  Mutex.unlock ring_mutex

let instant ?(cat = "engine") ?(args = []) name =
  if !enabled then
    record
      { name; cat; ph = Instant; ts_ns = Mclock.now_ns (); dur_ns = 0L; tid = domain_id ();
        id = 0; parent = !(Domain.DLS.get current_key); args }

(* [args] is a thunk evaluated after [f] returns, so sites can report
   results (and pay nothing when tracing is off).  The span is recorded
   even when [f] raises — a rejected admission still shows up. *)
let span ?(cat = "engine") ?(args = fun () -> []) name f =
  if not !enabled then f ()
  else begin
    let current = Domain.DLS.get current_key in
    let parent = !current in
    let id = Atomic.fetch_and_add next_id 1 in
    current := id;
    let t0 = Mclock.now_ns () in
    let finally () =
      current := parent;
      record
        { name; cat; ph = Span; ts_ns = t0; dur_ns = Mclock.elapsed_ns t0; tid = domain_id ();
          id; parent; args = args () }
    in
    Fun.protect ~finally f
  end

(* A span whose interval was measured by the caller (e.g. queue wait: the
   clock started on the enqueuing domain, the span is recorded by the
   worker that dequeued).  Gets an id like any span so children can link
   to it, but does not become the current span of this domain. *)
let complete ?(cat = "engine") ?(args = []) ?parent ~ts_ns ~dur_ns name =
  if !enabled then begin
    let parent =
      match parent with
      | Some p -> p
      | None -> !(Domain.DLS.get current_key)
    in
    record
      { name; cat; ph = Span; ts_ns; dur_ns; tid = domain_id ();
        id = Atomic.fetch_and_add next_id 1; parent; args }
  end

(* -- Cross-domain span context ---------------------------------------------- *)

(* A captured ctx is just the capturing domain's current span id; [None]
   when tracing is off, so disabled runs don't even allocate. *)
type ctx = int option

let capture () = if !enabled then Some !(Domain.DLS.get current_key) else None

let with_ctx ctx f =
  match ctx with
  | None -> f ()
  | Some span_id ->
    let current = Domain.DLS.get current_key in
    let saved = !current in
    current := span_id;
    Fun.protect ~finally:(fun () -> current := saved) f

let current_span () = !(Domain.DLS.get current_key)

(* Chronological event list, oldest surviving event first. *)
let events () =
  Mutex.lock ring_mutex;
  let r = !ring in
  let cap = Array.length r in
  let n = min !total cap in
  let evs = List.init n (fun i -> r.((!total - n + i) mod cap)) in
  Mutex.unlock ring_mutex;
  evs

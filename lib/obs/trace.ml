(* Structured trace layer: a fixed-capacity ring of span / instant events
   covering the resource-transaction lifecycle (submit → admission →
   pending → ground/collapse) plus the layers underneath it (solver
   search, solution cache, partitions, WAL).

   Tracing is process-global and off by default.  The fast path when
   disabled is a single flag test — instrumentation sites either call
   [span]/[instant] (whose first instruction is that test) or guard bigger
   argument computations behind [on ()].  When the ring wraps, the oldest
   events are overwritten; [dropped ()] reports how many.

   The ring is shared mutable state, and solver work may record events
   from pool worker domains, so the slow path ([record]/[events]) is
   mutex-protected; the [on ()] fast path stays a lock-free flag read. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type phase =
  | Span (* complete event: start timestamp + duration *)
  | Instant

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_ns : int64; (* monotonic start time *)
  dur_ns : int64; (* 0 for instants *)
  args : (string * arg) list;
}

let default_capacity = 65536

let enabled = ref false
let ring : event array ref = ref [||]
let total = ref 0 (* events ever recorded since [enable]/[clear] *)

let on () = !enabled

let enable ?(capacity = default_capacity) () =
  let capacity = max 16 capacity in
  let dummy = { name = ""; cat = ""; ph = Instant; ts_ns = 0L; dur_ns = 0L; args = [] } in
  ring := Array.make capacity dummy;
  total := 0;
  enabled := true

let disable () = enabled := false

let clear () = total := 0

let capacity () = Array.length !ring
let recorded () = !total
let dropped () = max 0 (!total - Array.length !ring)

let ring_mutex = Mutex.create ()

let record ev =
  Mutex.lock ring_mutex;
  let r = !ring in
  if Array.length r > 0 then begin
    r.(!total mod Array.length r) <- ev;
    incr total
  end;
  Mutex.unlock ring_mutex

let instant ?(cat = "engine") ?(args = []) name =
  if !enabled then
    record { name; cat; ph = Instant; ts_ns = Mclock.now_ns (); dur_ns = 0L; args }

(* [args] is a thunk evaluated after [f] returns, so sites can report
   results (and pay nothing when tracing is off).  The span is recorded
   even when [f] raises — a rejected admission still shows up. *)
let span ?(cat = "engine") ?(args = fun () -> []) name f =
  if not !enabled then f ()
  else begin
    let t0 = Mclock.now_ns () in
    let finally () =
      record { name; cat; ph = Span; ts_ns = t0; dur_ns = Mclock.elapsed_ns t0; args = args () }
    in
    Fun.protect ~finally f
  end

(* Chronological event list, oldest surviving event first. *)
let events () =
  Mutex.lock ring_mutex;
  let r = !ring in
  let cap = Array.length r in
  let n = min !total cap in
  let evs = List.init n (fun i -> r.((!total - n + i) mod cap)) in
  Mutex.unlock ring_mutex;
  evs

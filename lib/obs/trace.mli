(** Ring-buffered structured tracing for the engine.

    Process-global and off by default; when disabled, [span] and [instant]
    cost one flag test.  When enabled, events land in a fixed-capacity
    ring — wraparound overwrites the oldest events, so a trace is always
    bounded-memory no matter how long the engine runs.

    Every span carries a process-unique [id], the [parent] span that was
    current on its domain when it started, and the recording domain as
    [tid] — enough to reconstruct the causal tree even when solver work
    hops to pool worker domains ([capture]/[with_ctx] carry the parent
    across the hop). *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type phase =
  | Span  (** complete event: start timestamp plus duration *)
  | Instant

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_ns : int64;  (** monotonic start time *)
  dur_ns : int64;  (** 0 for instants *)
  tid : int;  (** recording domain — one Chrome track per domain *)
  id : int;  (** span id, unique per process; 0 for instants *)
  parent : int;  (** enclosing span id (possibly cross-domain); 0 = root *)
  args : (string * arg) list;
}

val default_capacity : int

val enable : ?capacity:int -> unit -> unit
(** Allocate a fresh ring (clearing any previous events) and turn tracing
    on.  [capacity] is clamped to at least 16. *)

val disable : unit -> unit
(** Stop recording; already-captured events remain readable. *)

val clear : unit -> unit

val on : unit -> bool
(** True when tracing is enabled — guard for instrumentation sites whose
    argument computation is not free. *)

val span : ?cat:string -> ?args:(unit -> (string * arg) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording a complete event with its monotonic
    start time and duration.  [args] is evaluated after [f] returns, so
    sites can report results; the span is recorded even when [f] raises.
    While [f] runs, the span is the current span of this domain — nested
    spans and instants record it as their [parent].  When tracing is
    disabled this is exactly [f ()]. *)

val complete :
  ?cat:string -> ?args:(string * arg) list -> ?parent:int -> ts_ns:int64 -> dur_ns:int64 ->
  string -> unit
(** Record a span whose interval the caller measured itself (e.g. queue
    wait, timed from enqueue on one domain to dequeue on another).
    [parent] defaults to this domain's current span. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit

(** {1 Cross-domain span context} *)

type ctx
(** The current span of a domain, captured for propagation into a job
    that will run elsewhere. *)

val capture : unit -> ctx
(** Capture this domain's current span (cheap; [with_ctx] of the result
    is a no-op when tracing was off at capture time). *)

val with_ctx : ctx -> (unit -> 'a) -> 'a
(** [with_ctx ctx f] runs [f] with the captured span installed as this
    domain's current span, so spans recorded inside parent to it. *)

val current_span : unit -> int
(** Id of this domain's current span; 0 when not inside any span. *)

val events : unit -> event list
(** Chronological, oldest surviving event first. *)

val capacity : unit -> int
val recorded : unit -> int
(** Events recorded since [enable]/[clear], including overwritten ones. *)

val dropped : unit -> int
(** How many events the ring has overwritten. *)

(** Ring-buffered structured tracing for the engine.

    Process-global and off by default; when disabled, [span] and [instant]
    cost one flag test.  When enabled, events land in a fixed-capacity
    ring — wraparound overwrites the oldest events, so a trace is always
    bounded-memory no matter how long the engine runs. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type phase =
  | Span  (** complete event: start timestamp plus duration *)
  | Instant

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_ns : int64;  (** monotonic start time *)
  dur_ns : int64;  (** 0 for instants *)
  args : (string * arg) list;
}

val default_capacity : int

val enable : ?capacity:int -> unit -> unit
(** Allocate a fresh ring (clearing any previous events) and turn tracing
    on.  [capacity] is clamped to at least 16. *)

val disable : unit -> unit
(** Stop recording; already-captured events remain readable. *)

val clear : unit -> unit

val on : unit -> bool
(** True when tracing is enabled — guard for instrumentation sites whose
    argument computation is not free. *)

val span : ?cat:string -> ?args:(unit -> (string * arg) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording a complete event with its monotonic
    start time and duration.  [args] is evaluated after [f] returns, so
    sites can report results; the span is recorded even when [f] raises.
    When tracing is disabled this is exactly [f ()]. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit

val events : unit -> event list
(** Chronological, oldest surviving event first. *)

val capacity : unit -> int
val recorded : unit -> int
(** Events recorded since [enable]/[clear], including overwritten ones. *)

val dropped : unit -> int
(** How many events the ring has overwritten. *)

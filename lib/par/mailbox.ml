(* Bounded blocking MPSC mailbox (mutex + two condvars).

   The bound is load-bearing: a full mailbox blocks [send], which is the
   actor runtime's backpressure — clients queue behind a slow partition
   owner instead of piling unbounded work onto it.  [not_full] wakes
   blocked senders when the consumer pops or the box closes; [not_empty]
   wakes the consumer when a message lands or the box closes. *)

type 'a t = {
  capacity : int;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  queue : 'a Queue.t;
  mutable closed : bool;
}

let create ?(capacity = 64) () =
  {
    capacity = max 1 capacity;
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    queue = Queue.create ();
    closed = false;
  }

let send t msg =
  Mutex.lock t.mutex;
  while (not t.closed) && Queue.length t.queue >= t.capacity do
    Condition.wait t.not_full t.mutex
  done;
  let accepted = not t.closed in
  if accepted then begin
    Queue.add msg t.queue;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.mutex;
  accepted

let try_send t msg =
  Mutex.lock t.mutex;
  let accepted = (not t.closed) && Queue.length t.queue < t.capacity in
  if accepted then begin
    Queue.add msg t.queue;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.mutex;
  accepted

let recv t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.not_empty t.mutex
  done;
  let msg =
    if Queue.is_empty t.queue then None (* closed and drained *)
    else begin
      let m = Queue.pop t.queue in
      Condition.signal t.not_full;
      Some m
    end
  in
  Mutex.unlock t.mutex;
  msg

(* Blocking batch receive: wait for the first message, then take
   everything else already queued, up to [max], under one lock
   acquisition — the batch boundary is exactly "what had arrived by the
   time the consumer came back", which is what group commit wants. *)
let recv_batch ?(max = Stdlib.max_int) t =
  if max <= 0 then invalid_arg "Mailbox.recv_batch: max must be positive";
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.not_empty t.mutex
  done;
  let batch = ref [] in
  let n = ref 0 in
  while !n < max && not (Queue.is_empty t.queue) do
    batch := Queue.pop t.queue :: !batch;
    incr n
  done;
  if !n > 0 then Condition.broadcast t.not_full;
  Mutex.unlock t.mutex;
  List.rev !batch

let try_recv t =
  Mutex.lock t.mutex;
  let msg =
    if Queue.is_empty t.queue then None
    else begin
      let m = Queue.pop t.queue in
      Condition.signal t.not_full;
      Some m
    end
  in
  Mutex.unlock t.mutex;
  msg

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex

let closed t =
  Mutex.lock t.mutex;
  let c = t.closed in
  Mutex.unlock t.mutex;
  c

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let capacity t = t.capacity

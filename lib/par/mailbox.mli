(** Bounded blocking mailbox: the MPSC channel under every partition
    actor.

    Many producers [send]; one consumer [recv]s.  The bound is the
    backpressure mechanism — a full mailbox blocks senders until the
    consumer drains, so a slow actor slows its clients instead of
    growing an unbounded queue.  [close] makes the shutdown handshake
    explicit: senders find out immediately, the consumer still drains
    whatever was accepted before the close. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ~capacity ()] makes an empty mailbox holding at most
    [capacity] messages (clamped to at least 1; default 64). *)

val send : 'a t -> 'a -> bool
(** Enqueue a message, blocking while the mailbox is full.  Returns
    [false] (without enqueuing) if the mailbox is closed — including
    when the close happens while blocked on a full mailbox. *)

val try_send : 'a t -> 'a -> bool
(** Non-blocking [send]: [false] (nothing enqueued) when the mailbox is
    full or closed.  For best-effort producers that prefer dropping to
    waiting. *)

val recv : 'a t -> 'a option
(** Dequeue the oldest message, blocking while the mailbox is empty.
    Returns [None] only when the mailbox is closed AND drained: every
    message accepted by [send] is delivered before [None]. *)

val try_recv : 'a t -> 'a option
(** Non-blocking [recv]: [None] when empty, whether or not closed. *)

val recv_batch : ?max:int -> 'a t -> 'a list
(** Blocking batch [recv]: wait until at least one message is queued (or
    the mailbox is closed), then return everything queued at that moment,
    oldest first, capped at [max] (default: unbounded).  Returns [[]]
    only when the mailbox is closed AND drained.  This is the
    group-commit primitive: messages that piled up while the consumer was
    busy coalesce into one batch.  Raises [Invalid_argument] when
    [max <= 0]. *)

val close : 'a t -> unit
(** Reject future [send]s and unblock everyone.  Idempotent. *)

val closed : 'a t -> bool
val length : 'a t -> int
val capacity : 'a t -> int

(* Fixed-size domain pool for partition-level solver work.

   The engine's partitions are independent by construction (Section 5.3:
   transactions over disjoint resources never share a composed body), so
   their solver work — cache refills, blind-write re-checks, per-flight
   admission — is embarrassingly parallel.  This pool runs such jobs on
   [size - 1] spawned domains plus the calling domain, with:

   - a mutex + condvar work queue (no domainslib dependency);
   - deterministic result collection: [map] returns results in input
     order regardless of completion order, and exceptions are re-raised
     first-by-index, so a 1-domain pool and an N-domain pool are
     observationally identical on pure jobs;
   - a single orchestrator: one thread owns the pool and calls [map] /
     [shutdown]; jobs themselves must not submit new jobs.

   A pool of size 1 spawns no domains at all and [map] degenerates to
   [List.map] — the sequential engine pays nothing. *)

type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t; (* signalled when the queue gains a job or on stop *)
  idle : Condition.t; (* signalled when outstanding drops to zero *)
  queue : (unit -> unit) Queue.t;
  mutable outstanding : int; (* jobs queued or running *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.size

(* Worker loop: pop, run, decrement.  Jobs are exception-safe wrappers
   built by [map]; they never raise. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.work t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* stop, queue drained *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    job ();
    Mutex.lock t.mutex;
    t.outstanding <- t.outstanding - 1;
    if t.outstanding = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.mutex;
    worker_loop t
  end

let create ?(domains = 1) () =
  let size = max 1 domains in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      outstanding = 0;
      stop = false;
      workers = [];
    }
  in
  if size > 1 then
    t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

type 'a outcome =
  | Value of 'a
  | Raised of exn * Printexc.raw_backtrace

let map t f items =
  match items with
  | [] -> []
  | [ x ] -> [ f x ] (* nothing to fan out *)
  | items when t.size = 1 -> List.map f items
  | items ->
    Obs.Trace.span ~cat:"pool"
      ~args:(fun () ->
        [ ("jobs", Obs.Trace.Int (List.length items)); ("domains", Obs.Trace.Int t.size) ])
      "pool.fanout"
    @@ fun () ->
    let arr = Array.of_list items in
    let n = Array.length arr in
    let results = Array.make n None in
    (* Observability wrapper, built once per fan-out: carries the captured
       span context onto whichever domain dequeues the job (so worker-side
       spans parent to this fan-out on their own track), accounts the
       enqueue→dequeue wait as queue time, and wraps the body in a span.
       With tracing and the flight recorder both off this is just [f]. *)
    let observed =
      if Obs.Trace.on () || Obs.Flight.on () then begin
        let ctx = Obs.Trace.capture () in
        let enqueued_ns = Obs.Mclock.now_ns () in
        fun i x ->
          Obs.Trace.with_ctx ctx @@ fun () ->
          let wait_ns = Obs.Mclock.elapsed_ns enqueued_ns in
          Obs.Flight.add_ns Obs.Flight.Queue wait_ns;
          Obs.Trace.complete ~cat:"pool" ~ts_ns:enqueued_ns ~dur_ns:wait_ns "pool.queue_wait";
          Obs.Trace.span ~cat:"pool"
            ~args:(fun () -> [ ("job", Obs.Trace.Int i) ])
            "pool.job"
            (fun () -> f x)
      end
      else fun _ x -> f x
    in
    let job i () =
      let r =
        try Value (observed i arr.(i))
        with e -> Raised (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (job i) t.queue
    done;
    t.outstanding <- t.outstanding + n;
    Condition.broadcast t.work;
    (* The caller is a pool member too: help drain the queue instead of
       blocking while size-1 workers chew through n jobs. *)
    let rec help () =
      if not (Queue.is_empty t.queue) then begin
        let job = Queue.pop t.queue in
        Mutex.unlock t.mutex;
        job ();
        Mutex.lock t.mutex;
        t.outstanding <- t.outstanding - 1;
        help ()
      end
    in
    help ();
    while t.outstanding > 0 do
      Condition.wait t.idle t.mutex
    done;
    Mutex.unlock t.mutex;
    (* Deterministic collection: results in input order, first-by-index
       exception re-raised (matching where a sequential run would stop). *)
    Array.to_list
      (Array.map
         (function
           | Some (Value v) -> v
           | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
         results)

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

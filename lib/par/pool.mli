(** Fixed-size domain pool with deterministic result collection.

    Built for the engine's partition-level solver work: independent
    partitions (paper Section 5.3) make cache refills, blind-write
    re-checks and per-flight admission embarrassingly parallel.  A pool
    of size [n] uses [n - 1] spawned domains plus the calling domain; a
    pool of size 1 spawns nothing and runs jobs inline, so sequential
    and parallel configurations share one code path. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (clamped to
    at least 1; default 1 = fully sequential). *)

val size : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Run [f] over every item concurrently; results come back in input
    order regardless of completion order.  If any job raised, the
    exception of the lowest-index failing job is re-raised (with its
    backtrace) after all jobs finished — observationally the same stop
    point as a sequential run on pure jobs.  One orchestrating thread
    only; jobs must not call [map] or [shutdown] themselves.

    When tracing / the flight recorder are enabled, the fan-out records a
    "pool.fanout" span, every job runs under a "pool.job" span parented
    to it (on the executing domain's track) with its enqueue→dequeue wait
    accounted as queue time.  Inline paths (empty, singleton, size-1
    pool) stay uninstrumented — there is no fan-out to show. *)

val shutdown : t -> unit
(** Drain and join the worker domains.  The pool must not be used
    afterwards. *)

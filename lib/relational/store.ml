(* Durable store: a live database whose every change is logged ahead of
   application.  This is the substrate the quantum middle tier sits on —
   the counterpart of MySQL/InnoDB in the paper's prototype. *)

type t = {
  mutable db : Database.t;
  wal : Wal.t;
}

let create ?sync backend = { db = Database.create (); wal = Wal.create ?sync backend }

let open_ ?sync ?strict backend =
  let wal = Wal.create ?sync backend in
  let db, _report = Wal.replay_report ?strict wal in
  { db; wal }

let db t = t.db

let create_table t schema =
  let table = Database.create_table t.db schema in
  Wal.log t.wal (Wal.Create_table schema);
  table

let table t name = Database.table t.db name
let find_table t name = Database.find_table t.db name

(* Log ahead, then apply.  If application fails (conflict), the batch is in
   the log but harmless: replay is defined over the same database states, so
   a failing batch would also fail identically on replay — to keep replay
   total we instead validate first with a dry run and only log when the
   batch is applicable. *)
let wal_stats t = Wal.stats t.wal
let recovery_report t = Wal.last_recovery t.wal
let sync t = Wal.sync t.wal
let set_sync t policy = Wal.set_sync t.wal policy
let close t = Wal.close t.wal

let apply t ops =
  Obs.Trace.span ~cat:"store"
    ~args:(fun () -> [ ("ops", Obs.Trace.Int (List.length ops)) ])
    "store.apply"
  @@ fun () ->
  if Database.can_apply_ops t.db ops then begin
    ignore (Wal.log_batch t.wal ops);
    match Database.apply_ops t.db ops with
    | Ok () -> Ok ()
    | Error err ->
      (* Unreachable: the dry run above succeeded and nothing intervened. *)
      Error err
  end
  else
    match Database.apply_ops t.db ops with
    | Ok () -> assert false
    | Error err -> Error err

let checkpoint t = Wal.checkpoint t.wal t.db

(* Simulate a crash: drop all volatile state and recover from the log. *)
let crash_and_recover ?sync ?strict backend = open_ ?sync ?strict backend

(** Durable store: a live {!Database.t} with write-ahead logging.

    The quantum middle tier's counterpart of MySQL/InnoDB: every schema
    change and update batch is logged before it is applied, and
    {!crash_and_recover} rebuilds the exact pre-crash committed state. *)

type t

val create : Wal.backend -> t
(** Fresh empty store over a (possibly non-empty) backend; does not replay. *)

val open_ : Wal.backend -> t
(** Open an existing log and replay it. *)

val db : t -> Database.t
val create_table : t -> Schema.t -> Table.t
val table : t -> string -> Table.t
val find_table : t -> string -> Table.t option

val apply : t -> Database.op list -> (unit, Database.op_error) result
(** Validate, log ahead, then apply atomically. *)

val wal_stats : t -> Wal.stats
(** Write-side WAL telemetry (records, batches, checkpoints, bytes). *)

val checkpoint : t -> unit
val crash_and_recover : Wal.backend -> t

(** Durable store: a live {!Database.t} with write-ahead logging.

    The quantum middle tier's counterpart of MySQL/InnoDB: every schema
    change and update batch is logged before it is applied, and
    {!crash_and_recover} rebuilds the pre-crash committed state — even
    from a log with a torn or corrupted tail, which is truncated after
    the last complete batch (see {!Wal.replay_report}). *)

type t

val create : ?sync:Wal.sync_policy -> Wal.backend -> t
(** Fresh empty store over a (possibly non-empty) backend; does not
    replay.  [sync] defaults to {!Wal.Every_batch}. *)

val open_ : ?sync:Wal.sync_policy -> ?strict:bool -> Wal.backend -> t
(** Open an existing log and replay it (leniently unless [~strict]). *)

val db : t -> Database.t
val create_table : t -> Schema.t -> Table.t
val table : t -> string -> Table.t
val find_table : t -> string -> Table.t option

val apply : t -> Database.op list -> (unit, Database.op_error) result
(** Validate, log ahead, then apply atomically. *)

val wal_stats : t -> Wal.stats
(** Write-side WAL telemetry (records, batches, checkpoints, bytes,
    syncs). *)

val recovery_report : t -> Wal.recovery_report option
(** Set when this store was produced by {!open_}/{!crash_and_recover}. *)

val sync : t -> unit
(** Force the WAL to stable storage regardless of the sync policy. *)

val set_sync : t -> Wal.sync_policy -> unit
(** Switch the WAL durability policy (see {!Wal.set_sync}); a group
    committer sets [Never] and owns the {!sync} cadence itself. *)

val close : t -> unit

val checkpoint : t -> unit
(** Write a full database image and compact the log to it. *)

val crash_and_recover : ?sync:Wal.sync_policy -> ?strict:bool -> Wal.backend -> t

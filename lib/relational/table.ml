(* In-memory table with a primary key and optional secondary hash indexes.

   Rows are stored in a hash table keyed by the primary-key projection, which
   enforces set semantics.  Secondary indexes map a column projection to a
   *sorted* set of matching primary keys; they are maintained eagerly on
   insert and delete, and are what keeps LIMIT-1 grounding searches fast
   under the workloads of Section 5.

   Buckets (and a table-wide mirror of all primary keys) are persistent
   sorted sets, so pattern lookups stream rows in primary-key order with no
   per-lookup materialization or sort — the solver's candidate enumeration
   reads straight off the index — and a snapshot taken for a parallel read
   is O(1). *)

module Key_set = Set.Make (Tuple)

(* Sorted primary-key bucket with O(1) size (the solver's branching
   heuristic reads sizes on every choice point). *)
type bucket = {
  mutable bkeys : Key_set.t;
  mutable bsize : int;
}

let bucket_add b pkey =
  let keys = Key_set.add pkey b.bkeys in
  if keys != b.bkeys then begin
    b.bkeys <- keys;
    b.bsize <- b.bsize + 1
  end

let bucket_remove b pkey =
  let keys = Key_set.remove pkey b.bkeys in
  if keys != b.bkeys then begin
    b.bkeys <- keys;
    b.bsize <- b.bsize - 1
  end

type index = {
  idx_cols : int array;
  (* projection on idx_cols -> sorted set of primary keys *)
  idx_map : (Tuple.t, bucket) Hashtbl.t;
}

module Value_map = Map.Make (Value)

(* Ordered secondary index on a single column: supports range scans in
   value order.  Backed by a persistent map under a mutable cell (cheap
   snapshots, O(log n) maintenance). *)
type ordered_index = {
  oi_col : int;
  mutable oi_map : bucket Value_map.t; (* value -> sorted pkeys *)
}

type t = {
  schema : Schema.t;
  rows : (Tuple.t, Tuple.t) Hashtbl.t; (* key projection -> full tuple *)
  mutable key_order : Key_set.t; (* every primary key, sorted *)
  mutable indexes : index list;
  mutable ordered_indexes : ordered_index list;
  mutable version : int; (* bumped on every row mutation; estimate caches key on it *)
}

type insert_result =
  | Inserted
  | Duplicate_key

let create schema =
  {
    schema;
    rows = Hashtbl.create 64;
    key_order = Key_set.empty;
    indexes = [];
    ordered_indexes = [];
    version = 0;
  }
let schema t = t.schema
let cardinality t = Hashtbl.length t.rows
let version t = t.version

let index_add idx pkey row =
  let proj = Tuple.project idx.idx_cols row in
  let bucket =
    match Hashtbl.find_opt idx.idx_map proj with
    | Some b -> b
    | None ->
      let b = { bkeys = Key_set.empty; bsize = 0 } in
      Hashtbl.add idx.idx_map proj b;
      b
  in
  bucket_add bucket pkey

let index_remove idx pkey row =
  let proj = Tuple.project idx.idx_cols row in
  match Hashtbl.find_opt idx.idx_map proj with
  | None -> ()
  | Some bucket ->
    bucket_remove bucket pkey;
    if bucket.bsize = 0 then Hashtbl.remove idx.idx_map proj

let ordered_add oi pkey row =
  let v = row.(oi.oi_col) in
  let bucket =
    match Value_map.find_opt v oi.oi_map with
    | Some b -> b
    | None ->
      let b = { bkeys = Key_set.empty; bsize = 0 } in
      oi.oi_map <- Value_map.add v b oi.oi_map;
      b
  in
  bucket_add bucket pkey

let ordered_remove oi pkey row =
  let v = row.(oi.oi_col) in
  match Value_map.find_opt v oi.oi_map with
  | None -> ()
  | Some bucket ->
    bucket_remove bucket pkey;
    if bucket.bsize = 0 then oi.oi_map <- Value_map.remove v oi.oi_map

let create_index t cols =
  let arity = Schema.arity t.schema in
  Array.iter
    (fun c ->
      if c < 0 || c >= arity then
        raise (Schema.Invalid (Printf.sprintf "index column %d out of range" c)))
    cols;
  let exists =
    List.exists (fun idx -> idx.idx_cols = cols) t.indexes
  in
  if not exists then begin
    let idx = { idx_cols = cols; idx_map = Hashtbl.create 64 } in
    Hashtbl.iter (fun pkey row -> index_add idx pkey row) t.rows;
    t.indexes <- idx :: t.indexes
  end

let create_ordered_index t col =
  let arity = Schema.arity t.schema in
  if col < 0 || col >= arity then
    raise (Schema.Invalid (Printf.sprintf "ordered index column %d out of range" col));
  if not (List.exists (fun oi -> oi.oi_col = col) t.ordered_indexes) then begin
    let oi = { oi_col = col; oi_map = Value_map.empty } in
    Hashtbl.iter (fun pkey row -> ordered_add oi pkey row) t.rows;
    t.ordered_indexes <- oi :: t.ordered_indexes
  end

let create_ordered_index_on t col_name =
  match Schema.column_index t.schema col_name with
  | Some col -> create_ordered_index t col
  | None ->
    raise (Schema.Invalid (Printf.sprintf "no column %s in %s" col_name t.schema.Schema.name))

let create_index_on t col_names =
  let cols =
    List.map
      (fun name ->
        match Schema.column_index t.schema name with
        | Some i -> i
        | None ->
          raise (Schema.Invalid (Printf.sprintf "no column %s in %s" name t.schema.Schema.name)))
      col_names
  in
  create_index t (Array.of_list cols)

let insert t row =
  Schema.check_tuple t.schema row;
  let pkey = Schema.key_of_tuple t.schema row in
  if Hashtbl.mem t.rows pkey then Duplicate_key
  else begin
    Hashtbl.add t.rows pkey row;
    t.key_order <- Key_set.add pkey t.key_order;
    List.iter (fun idx -> index_add idx pkey row) t.indexes;
    List.iter (fun oi -> ordered_add oi pkey row) t.ordered_indexes;
    t.version <- t.version + 1;
    Inserted
  end

let find_by_key t pkey = Hashtbl.find_opt t.rows pkey

let mem t row =
  match find_by_key t (Schema.key_of_tuple t.schema row) with
  | Some existing -> Tuple.equal existing row
  | None -> false

let delete t row =
  let pkey = Schema.key_of_tuple t.schema row in
  match Hashtbl.find_opt t.rows pkey with
  | Some existing when Tuple.equal existing row ->
    Hashtbl.remove t.rows pkey;
    t.key_order <- Key_set.remove pkey t.key_order;
    List.iter (fun idx -> index_remove idx pkey existing) t.indexes;
    List.iter (fun oi -> ordered_remove oi pkey existing) t.ordered_indexes;
    t.version <- t.version + 1;
    true
  | Some _ | None -> false

let delete_by_key t pkey =
  match Hashtbl.find_opt t.rows pkey with
  | Some existing ->
    Hashtbl.remove t.rows pkey;
    t.key_order <- Key_set.remove pkey t.key_order;
    List.iter (fun idx -> index_remove idx pkey existing) t.indexes;
    List.iter (fun oi -> ordered_remove oi pkey existing) t.ordered_indexes;
    t.version <- t.version + 1;
    true
  | None -> false

let iter f t = Hashtbl.iter (fun _ row -> f row) t.rows
let fold f t init = Hashtbl.fold (fun _ row acc -> f row acc) t.rows init
let to_list t = fold (fun row acc -> row :: acc) t []
let to_seq t = Hashtbl.to_seq_values t.rows

(* -- Pattern lookups ----------------------------------------------------- *)

type pattern = Value.t option array

let pattern_matches pat row =
  let n = Array.length pat in
  let rec go i =
    i >= n
    ||
    match pat.(i) with
    | None -> go (i + 1)
    | Some v -> Value.equal v row.(i) && go (i + 1)
  in
  go 0

let bound_columns pat =
  let cols = ref [] in
  Array.iteri (fun i v -> if v <> None then cols := i :: !cols) pat;
  Array.of_list (List.rev !cols)

(* True when every column of [cols] is bound in [pat]. *)
let covers pat cols = Array.for_all (fun c -> pat.(c) <> None) cols

let key_probe t pat =
  if covers pat (Schema.key_indices t.schema) then begin
    let pkey =
      Array.map
        (fun i ->
          match pat.(i) with
          | Some v -> v
          | None -> assert false)
        (Schema.key_indices t.schema)
    in
    Some pkey
  end
  else None

(* Pick the applicable secondary index with the widest projection: more
   bound columns means smaller buckets. *)
let best_index t pat =
  List.fold_left
    (fun best idx ->
      if covers pat idx.idx_cols then
        match best with
        | Some b when Array.length b.idx_cols >= Array.length idx.idx_cols -> best
        | _ -> Some idx
      else best)
    None t.indexes

let index_bucket t idx pat =
  let proj =
    Array.map
      (fun i ->
        match pat.(i) with
        | Some v -> v
        | None -> assert false)
      idx.idx_cols
  in
  match Hashtbl.find_opt idx.idx_map proj with
  | None -> Seq.empty
  | Some bucket ->
    Seq.filter_map (fun pkey -> Hashtbl.find_opt t.rows pkey) (Key_set.to_seq bucket.bkeys)

(* Rows matching [pat], streamed in ascending primary-key order (the
   buckets and the key_order mirror are sorted sets, so no sort happens
   here).  The solver relies on this order for its low-end-packing
   heuristic and for run-to-run determinism. *)
let lookup_seq t pat =
  if Array.length pat <> Schema.arity t.schema then
    raise (Schema.Invalid "pattern arity mismatch");
  match key_probe t pat with
  | Some pkey ->
    (match Hashtbl.find_opt t.rows pkey with
     | Some row when pattern_matches pat row -> Seq.return row
     | Some _ | None -> Seq.empty)
  | None ->
    let candidates =
      match best_index t pat with
      | Some idx -> index_bucket t idx pat
      | None ->
        Seq.filter_map (fun pkey -> Hashtbl.find_opt t.rows pkey)
          (Key_set.to_seq t.key_order)
    in
    Seq.filter (pattern_matches pat) candidates

let lookup t pat = List.of_seq (lookup_seq t pat)
let lookup_first t pat = Seq.uncons (lookup_seq t pat) |> Option.map fst
let count_matches t pat = Seq.fold_left (fun n _ -> n + 1) 0 (lookup_seq t pat)

(* Upper bound on matches without scanning rows: bucket sizes when an index
   applies, table cardinality otherwise.  Used by the solver's MRV atom
   ordering. *)
let estimate_matches t pat =
  match key_probe t pat with
  | Some pkey -> if Hashtbl.mem t.rows pkey then 1 else 0
  | None ->
    (match best_index t pat with
     | Some idx ->
       let proj =
         Array.map
           (fun i ->
             match pat.(i) with
             | Some v -> v
             | None -> assert false)
           idx.idx_cols
       in
       (match Hashtbl.find_opt idx.idx_map proj with
        | Some bucket -> bucket.bsize
        | None -> 0)
     | None -> cardinality t)

(* Per-index statistics: (columns, number of distinct keys).  The join-order
   planner divides cardinality by distinct keys to estimate bucket sizes. *)
let index_stats t =
  List.map (fun idx -> (idx.idx_cols, Hashtbl.length idx.idx_map)) t.indexes

(* -- Range scans ---------------------------------------------------------- *)

type bound =
  | Unbounded
  | Inclusive of Value.t
  | Exclusive of Value.t

let in_range lo hi v =
  (match lo with
   | Unbounded -> true
   | Inclusive b -> Value.compare v b >= 0
   | Exclusive b -> Value.compare v b > 0)
  &&
  match hi with
  | Unbounded -> true
  | Inclusive b -> Value.compare v b <= 0
  | Exclusive b -> Value.compare v b < 0

(* Rows whose [col] value falls within the bounds, in ascending value
   order (ties in arbitrary order).  Uses an ordered index when one
   exists, otherwise scans and sorts. *)
let range t ~col ?(lo = Unbounded) ?(hi = Unbounded) () =
  if col < 0 || col >= Schema.arity t.schema then
    raise (Schema.Invalid "range column out of range");
  match List.find_opt (fun oi -> oi.oi_col = col) t.ordered_indexes with
  | Some oi ->
    (* Persistent-map traversal in key order, filtered to the bounds. *)
    Value_map.fold
      (fun v bucket acc ->
        if in_range lo hi v then
          Key_set.fold
            (fun pkey acc ->
              match Hashtbl.find_opt t.rows pkey with
              | Some row -> row :: acc
              | None -> acc)
            bucket.bkeys acc
        else acc)
      oi.oi_map []
    |> List.rev
  | None ->
    fold (fun row acc -> if in_range lo hi row.(col) then row :: acc else acc) t []
    |> List.sort (fun a b -> Value.compare a.(col) b.(col))

let range_on t ~col_name ?lo ?hi () =
  match Schema.column_index t.schema col_name with
  | Some col -> range t ~col ?lo ?hi ()
  | None ->
    raise (Schema.Invalid (Printf.sprintf "no column %s in %s" col_name t.schema.Schema.name))

let min_value t ~col =
  match List.find_opt (fun oi -> oi.oi_col = col) t.ordered_indexes with
  | Some oi -> Option.map fst (Value_map.min_binding_opt oi.oi_map)
  | None ->
    fold
      (fun row acc ->
        match acc with
        | Some m when Value.compare m row.(col) <= 0 -> acc
        | _ -> Some row.(col))
      t None

let max_value t ~col =
  match List.find_opt (fun oi -> oi.oi_col = col) t.ordered_indexes with
  | Some oi -> Option.map fst (Value_map.max_binding_opt oi.oi_map)
  | None ->
    fold
      (fun row acc ->
        match acc with
        | Some m when Value.compare m row.(col) >= 0 -> acc
        | _ -> Some row.(col))
      t None

let copy t =
  let fresh =
    {
      schema = t.schema;
      rows = Hashtbl.copy t.rows;
      key_order = t.key_order;
      indexes = [];
      ordered_indexes = [];
      version = t.version;
    }
  in
  List.iter (fun idx -> create_index fresh idx.idx_cols) t.indexes;
  List.iter (fun oi -> create_ordered_index fresh oi.oi_col) t.ordered_indexes;
  fresh

let clear t =
  Hashtbl.reset t.rows;
  t.key_order <- Key_set.empty;
  List.iter (fun idx -> Hashtbl.reset idx.idx_map) t.indexes;
  List.iter (fun oi -> oi.oi_map <- Value_map.empty) t.ordered_indexes;
  t.version <- t.version + 1

let pp fmt t =
  let rows = List.sort Tuple.compare (to_list t) in
  Format.fprintf fmt "@[<v 2>%s (%d rows)" t.schema.Schema.name (cardinality t);
  List.iter (fun row -> Format.fprintf fmt "@,%a" Tuple.pp row) rows;
  Format.fprintf fmt "@]"

(** In-memory tables with a primary key and secondary hash indexes.

    Set semantics is enforced through the schema's key.  Secondary indexes
    accelerate pattern lookups and drive the solver's candidate enumeration
    during grounding searches. *)

type t

type insert_result =
  | Inserted
  | Duplicate_key

val create : Schema.t -> t
val schema : t -> Schema.t
val cardinality : t -> int

val version : t -> int
(** Monotonic mutation counter: bumped by [insert], [delete],
    [delete_by_key] and [clear].  Solver-side estimate caches use it to
    detect that a cached [estimate_matches] answer went stale. *)

val create_index : t -> int array -> unit
(** Add a secondary hash index on the given column indices (idempotent).
    Existing rows are indexed immediately. *)

val create_index_on : t -> string list -> unit
(** Same, naming columns.  @raise Schema.Invalid on unknown columns. *)

val create_ordered_index : t -> int -> unit
(** Add an ordered (range-scan) index on one column (idempotent). *)

val create_ordered_index_on : t -> string -> unit

val insert : t -> Tuple.t -> insert_result
(** @raise Schema.Invalid when the tuple does not fit the schema. *)

val find_by_key : t -> Tuple.t -> Tuple.t option
val mem : t -> Tuple.t -> bool
(** [mem t row] holds only when exactly [row] is stored (key present with the
    same non-key columns). *)

val delete : t -> Tuple.t -> bool
(** Delete exactly [row]; [false] when absent or the stored row differs on
    non-key columns. *)

val delete_by_key : t -> Tuple.t -> bool

val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Tuple.t list
val to_seq : t -> Tuple.t Seq.t

(** Selection patterns: [None] is a wildcard, [Some v] an equality bound. *)
type pattern = Value.t option array

val pattern_matches : pattern -> Tuple.t -> bool
val bound_columns : pattern -> int array

val lookup : t -> pattern -> Tuple.t list
(** Matching rows, in ascending primary-key order. *)

val lookup_seq : t -> pattern -> Tuple.t Seq.t
(** Matching rows streamed in ascending primary-key order, straight off
    sorted index buckets — no per-lookup materialization or sort.  The
    solver's candidate enumeration depends on this order for low-end
    packing and determinism. *)

val lookup_first : t -> pattern -> Tuple.t option
val count_matches : t -> pattern -> int

val estimate_matches : t -> pattern -> int
(** Cheap upper bound on [count_matches] (index bucket size or table
    cardinality); used for most-constrained-first atom ordering. *)

(** Range bounds for ordered scans. *)
type bound =
  | Unbounded
  | Inclusive of Value.t
  | Exclusive of Value.t

val range : t -> col:int -> ?lo:bound -> ?hi:bound -> unit -> Tuple.t list
(** Rows with [col] in the bounds, ascending by that column (ties
    arbitrary); uses an ordered index when present, else scan + sort. *)

val range_on : t -> col_name:string -> ?lo:bound -> ?hi:bound -> unit -> Tuple.t list
val min_value : t -> col:int -> Value.t option
val max_value : t -> col:int -> Value.t option

val index_stats : t -> (int array * int) list
(** Per secondary index: its columns and the number of distinct keys; the
    basis of the join-order planner's bucket-size estimates. *)

val copy : t -> t
(** Deep copy (rows and indexes); the possible-worlds reference forks states
    with this. *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit

(* Write-ahead log with batch atomicity.

   Each record is one s-expression per line.  A batch is bracketed by
   [Begin n] and [Commit n]; replay applies only complete batches, so a
   crash in the middle of a batch loses the batch but never tears it.
   DDL ([Create_table]) and checkpoints are recorded inline: a [Checkpoint]
   record carries a full database image and resets the replay baseline. *)

type record =
  | Create_table of Schema.t
  | Begin of int
  | Op of Database.op
  | Commit of int
  | Checkpoint of Sexp.t (* serialized database image *)

type backend = {
  append : string -> unit;
  read_all : unit -> string list;
  reset : unit -> unit;
}

let mem_backend () =
  let lines = ref [] in
  {
    append = (fun line -> lines := line :: !lines);
    read_all = (fun () -> List.rev !lines);
    reset = (fun () -> lines := []);
  }

let file_backend path =
  let append line =
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    output_string oc line;
    output_char oc '\n';
    close_out oc
  in
  let read_all () =
    if not (Sys.file_exists path) then []
    else begin
      let ic = open_in path in
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file ->
          close_in ic;
          List.rev acc
      in
      go []
    end
  in
  let reset () = if Sys.file_exists path then Sys.remove path in
  { append; read_all; reset }

let record_to_sexp = function
  | Create_table schema -> Sexp.List [ Sexp.Atom "ddl"; Schema.to_sexp schema ]
  | Begin n -> Sexp.List [ Sexp.Atom "begin"; Sexp.Atom (string_of_int n) ]
  | Op op -> Sexp.List [ Sexp.Atom "op"; Database.op_to_sexp op ]
  | Commit n -> Sexp.List [ Sexp.Atom "commit"; Sexp.Atom (string_of_int n) ]
  | Checkpoint image -> Sexp.List [ Sexp.Atom "checkpoint"; image ]

let record_of_sexp = function
  | Sexp.List [ Sexp.Atom "ddl"; schema ] -> Create_table (Schema.of_sexp schema)
  | Sexp.List [ Sexp.Atom "begin"; Sexp.Atom n ] -> Begin (int_of_string n)
  | Sexp.List [ Sexp.Atom "op"; op ] -> Op (Database.op_of_sexp op)
  | Sexp.List [ Sexp.Atom "commit"; Sexp.Atom n ] -> Commit (int_of_string n)
  | Sexp.List [ Sexp.Atom "checkpoint"; image ] -> Checkpoint image
  | s -> raise (Sexp.Parse_error ("bad wal record: " ^ Sexp.to_string s))

(* Cheap write-side telemetry: how much the log has absorbed since this
   handle was created (replayed history is not counted). *)
type stats = {
  mutable records : int;
  mutable batches : int;
  mutable checkpoints : int;
  mutable bytes : int; (* serialized bytes appended, newlines included *)
}

let fresh_stats () = { records = 0; batches = 0; checkpoints = 0; bytes = 0 }

type t = {
  backend : backend;
  mutable next_batch : int;
  stats : stats;
}

let create backend = { backend; next_batch = 0; stats = fresh_stats () }
let stats t = t.stats

let log t record =
  let line = Sexp.to_string (record_to_sexp record) in
  t.stats.records <- t.stats.records + 1;
  t.stats.bytes <- t.stats.bytes + String.length line + 1;
  (match record with
   | Checkpoint _ -> t.stats.checkpoints <- t.stats.checkpoints + 1
   | Create_table _ | Begin _ | Op _ | Commit _ -> ());
  t.backend.append line

let log_batch t ops =
  t.stats.batches <- t.stats.batches + 1;
  let id = t.next_batch in
  t.next_batch <- id + 1;
  Obs.Trace.span ~cat:"wal"
    ~args:(fun () -> [ ("batch", Obs.Trace.Int id); ("ops", Obs.Trace.Int (List.length ops)) ])
    "wal.append_batch"
    (fun () ->
      log t (Begin id);
      List.iter (fun op -> log t (Op op)) ops;
      log t (Commit id));
  id

let records t = List.map (fun line -> record_of_sexp (Sexp.of_string line)) (t.backend.read_all ())

(* -- Database images for checkpoints ------------------------------------- *)

let database_to_sexp db =
  let table_sexp name =
    let table = Database.table db name in
    Sexp.List
      [ Schema.to_sexp (Table.schema table);
        Sexp.List (List.map Tuple.to_sexp (List.sort Tuple.compare (Table.to_list table)));
      ]
  in
  Sexp.List (List.map table_sexp (Database.table_names db))

let database_of_sexp sexp =
  let db = Database.create () in
  (match sexp with
   | Sexp.List tables ->
     List.iter
       (fun t ->
         match t with
         | Sexp.List [ schema; Sexp.List rows ] ->
           let table = Database.create_table db (Schema.of_sexp schema) in
           List.iter
             (fun row ->
               match Table.insert table (Tuple.of_sexp row) with
               | Table.Inserted -> ()
               | Table.Duplicate_key ->
                 raise (Sexp.Parse_error "duplicate row in checkpoint image"))
             rows
         | s -> raise (Sexp.Parse_error ("bad table image: " ^ Sexp.to_string s)))
       tables
   | Sexp.Atom _ -> raise (Sexp.Parse_error "bad database image"));
  db

let checkpoint t db =
  Obs.Trace.span ~cat:"wal" "wal.checkpoint" (fun () ->
      log t (Checkpoint (database_to_sexp db)))

(* Replay the log into a fresh database.  Incomplete trailing batches are
   dropped; a checkpoint record replaces everything seen so far. *)
let replay t =
  let replayed = ref 0 in
  Obs.Trace.span ~cat:"wal"
    ~args:(fun () -> [ ("records", Obs.Trace.Int !replayed) ])
    "wal.replay"
  @@ fun () ->
  let db = ref (Database.create ()) in
  let pending = ref None in
  let max_batch = ref (-1) in
  let apply_record = function
    | Create_table schema -> ignore (Database.create_table !db schema)
    | Checkpoint image ->
      db := database_of_sexp image;
      pending := None
    | Begin n ->
      max_batch := max !max_batch n;
      pending := Some (n, [])
    | Op op ->
      (match !pending with
       | Some (n, ops) -> pending := Some (n, op :: ops)
       | None -> raise (Sexp.Parse_error "op outside batch in wal"))
    | Commit n ->
      (match !pending with
       | Some (m, ops) when m = n ->
         (match Database.apply_ops !db (List.rev ops) with
          | Ok () -> ()
          | Error err ->
            raise (Sexp.Parse_error ("wal replay failed: " ^ Database.op_error_to_string err)));
         pending := None
       | Some _ | None -> raise (Sexp.Parse_error "mismatched commit in wal"))
  in
  let rs = records t in
  replayed := List.length rs;
  List.iter apply_record rs;
  t.next_batch <- !max_batch + 1;
  !db

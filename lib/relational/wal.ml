(* Write-ahead log with batch atomicity — v2 format.

   Each record is one line:

     {seq} {crc32-hex} {s-expression payload}

   [seq] is a monotonically increasing record sequence number and the
   CRC-32 covers both the sequence field and the payload, so torn writes,
   bit flips and misordered segments are all detectable.  Legacy v1 lines
   (a bare s-expression, first character '(') are still accepted on
   replay — unchecked — so pre-v2 logs and hand-written test fixtures
   keep working.

   A batch is bracketed by [Begin n] and [Commit n]; replay applies only
   complete batches, so a crash in the middle of a batch loses the batch
   but never tears it.  DDL ([Create_table]) is recorded inline; a
   [Checkpoint] record carries a full database image, and taking a
   checkpoint compacts the log to that single record via an atomic
   rewrite-and-rename segment swap.

   Replay is lenient by default: the first corrupt, partial or
   out-of-sequence record truncates the log after the last complete
   batch, the damaged tail is physically removed (so later appends are
   not stranded behind it), and a structured {!recovery_report} says
   what was kept and why the rest was dropped.  [~strict:true] restores
   fail-stop behaviour for tests, raising {!Corrupt}. *)

type record =
  | Create_table of Schema.t
  | Begin of int
  | Op of Database.op
  | Commit of int
  | Checkpoint of Sexp.t (* serialized database image *)

exception Corrupt of { index : int; reason : string }

let corrupt index fmt =
  Format.kasprintf (fun reason -> raise (Corrupt { index; reason })) fmt

type backend = {
  append : string -> unit;
  iter_lines : (string -> unit) -> unit;
  read_all : unit -> string list;
  truncate : int -> unit; (* keep only the first n lines *)
  rewrite : string list -> unit; (* atomically replace the whole log *)
  flush : unit -> unit; (* push buffered appends to stable storage *)
  close : unit -> unit;
  reset : unit -> unit;
}

let mem_backend () =
  let lines = ref [] in
  (* newest first *)
  {
    append = (fun line -> lines := line :: !lines);
    iter_lines = (fun f -> List.iter f (List.rev !lines));
    read_all = (fun () -> List.rev !lines);
    truncate =
      (fun n -> lines := List.rev (List.filteri (fun i _ -> i < n) (List.rev !lines)));
    rewrite = (fun ls -> lines := List.rev ls);
    flush = (fun () -> ());
    close = (fun () -> ());
    reset = (fun () -> lines := []);
  }

(* One out-channel for the handle's lifetime (opened on first append,
   reopened after a segment swap) — the previous open/append/close per
   record cost a file open on every single log write. *)
let file_backend path =
  let oc = ref None in
  let get_oc () =
    match !oc with
    | Some c -> c
    | None ->
      let c = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      oc := Some c;
      c
  in
  let flush_buffers () =
    match !oc with
    | Some c -> flush c
    | None -> ()
  in
  let close_oc () =
    match !oc with
    | Some c ->
      close_out c;
      oc := None
    | None -> ()
  in
  let fsync_channel c =
    flush c;
    try Unix.fsync (Unix.descr_of_out_channel c) with Unix.Unix_error _ -> ()
  in
  let append line =
    let c = get_oc () in
    output_string c line;
    output_char c '\n'
  in
  let iter_lines f =
    flush_buffers ();
    if Sys.file_exists path then begin
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go () =
            match input_line ic with
            | line ->
              f line;
              go ()
            | exception End_of_file -> ()
          in
          go ())
    end
  in
  let read_all () =
    let acc = ref [] in
    iter_lines (fun l -> acc := l :: !acc);
    List.rev !acc
  in
  let write_tmp_and_swap emit =
    let tmp = path ^ ".tmp" in
    let c = open_out tmp in
    (try emit c
     with e ->
       close_out_noerr c;
       raise e);
    fsync_channel c;
    close_out c;
    close_oc ();
    Sys.rename tmp path
  in
  let rewrite ls =
    write_tmp_and_swap (fun c ->
        List.iter
          (fun l ->
            output_string c l;
            output_char c '\n')
          ls)
  in
  let truncate n =
    (* Streamed copy of the first n lines, then swap — O(1) memory even
       on a large log. *)
    flush_buffers ();
    write_tmp_and_swap (fun c ->
        let i = ref 0 in
        iter_lines (fun l ->
            if !i < n then begin
              output_string c l;
              output_char c '\n'
            end;
            incr i))
  in
  let flush_to_disk () =
    match !oc with
    | Some c -> fsync_channel c
    | None -> ()
  in
  let reset () =
    close_oc ();
    if Sys.file_exists path then Sys.remove path
  in
  {
    append;
    iter_lines;
    read_all;
    truncate;
    rewrite;
    flush = flush_to_disk;
    close = close_oc;
    reset;
  }

(* -- Record codec --------------------------------------------------------- *)

let record_to_sexp = function
  | Create_table schema -> Sexp.List [ Sexp.Atom "ddl"; Schema.to_sexp schema ]
  | Begin n -> Sexp.List [ Sexp.Atom "begin"; Sexp.Atom (string_of_int n) ]
  | Op op -> Sexp.List [ Sexp.Atom "op"; Database.op_to_sexp op ]
  | Commit n -> Sexp.List [ Sexp.Atom "commit"; Sexp.Atom (string_of_int n) ]
  | Checkpoint image -> Sexp.List [ Sexp.Atom "checkpoint"; image ]

let record_of_sexp_at ~index = function
  | Sexp.List [ Sexp.Atom "ddl"; schema ] -> Create_table (Schema.of_sexp schema)
  | Sexp.List [ Sexp.Atom "begin"; Sexp.Atom n ] -> Begin (int_of_string n)
  | Sexp.List [ Sexp.Atom "op"; op ] -> Op (Database.op_of_sexp op)
  | Sexp.List [ Sexp.Atom "commit"; Sexp.Atom n ] -> Commit (int_of_string n)
  | Sexp.List [ Sexp.Atom "checkpoint"; image ] -> Checkpoint image
  | s -> corrupt index "bad wal record: %s" (Sexp.to_string s)

let record_of_sexp s = record_of_sexp_at ~index:(-1) s

(* CRC-32 (IEEE 802.3 reflected polynomial), table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let encode_line ~seq record =
  let payload = Sexp.to_string (record_to_sexp record) in
  let covered = string_of_int seq ^ " " ^ payload in
  Printf.sprintf "%d %08x %s" seq (crc32 covered) payload

(* Decode one line into (sequence number if v2, record).  Raises
   {!Corrupt} on any damage; the caller decides whether that is fatal. *)
let decode_line_seq ~index line =
  if String.length line = 0 then corrupt index "empty line"
  else if line.[0] = '(' then
    (* Legacy v1: bare s-expression, no checksum, no sequence number. *)
    match record_of_sexp_at ~index (Sexp.of_string line) with
    | record -> (None, record)
    | exception Sexp.Parse_error msg -> corrupt index "unreadable record: %s" msg
  else
    match String.index_opt line ' ' with
    | None -> corrupt index "partial record header"
    | Some i ->
      (match String.index_from_opt line (i + 1) ' ' with
       | None -> corrupt index "partial record header"
       | Some j ->
         let seq_str = String.sub line 0 i in
         let crc_str = String.sub line (i + 1) (j - i - 1) in
         let payload = String.sub line (j + 1) (String.length line - j - 1) in
         let seq =
           match int_of_string_opt seq_str with
           | Some s when s >= 0 -> s
           | Some _ | None -> corrupt index "bad sequence field %S" seq_str
         in
         let crc =
           match if crc_str = "" then None else int_of_string_opt ("0x" ^ crc_str) with
           | Some c -> c
           | None -> corrupt index "bad checksum field %S" crc_str
         in
         if crc32 (seq_str ^ " " ^ payload) <> crc then
           corrupt index "checksum mismatch (record torn or bit-flipped)";
         (match record_of_sexp_at ~index (Sexp.of_string payload) with
          | record -> (Some seq, record)
          | exception Sexp.Parse_error msg -> corrupt index "unreadable record: %s" msg))

let decode_line ~index line = snd (decode_line_seq ~index line)

(* -- Durability policy ----------------------------------------------------- *)

type sync_policy =
  | Never (* leave flushing to the OS *)
  | Every_batch (* flush + fsync at every batch boundary (default) *)
  | Every_n of int (* flush once at least n records have accumulated *)

(* Cheap write-side telemetry: how much the log has absorbed since this
   handle was created (replayed history is not counted). *)
type stats = {
  mutable records : int;
  mutable batches : int;
  mutable checkpoints : int;
  mutable bytes : int; (* serialized bytes appended, newlines included *)
  mutable syncs : int; (* explicit flushes issued by the sync policy *)
}

let fresh_stats () = { records = 0; batches = 0; checkpoints = 0; bytes = 0; syncs = 0 }

(* -- Recovery report ------------------------------------------------------- *)

type recovery_report = {
  total_records : int;
  records_kept : int;
  records_dropped : int;
  batches_applied : int;
  truncated_at : int option; (* record index where replay stopped *)
  truncation_reason : string option;
}

let report_to_string r =
  match r.truncation_reason with
  | None -> Printf.sprintf "clean: %d record(s), %d batch(es)" r.records_kept r.batches_applied
  | Some reason ->
    Printf.sprintf "truncated at record %d (%s): kept %d, dropped %d"
      (Option.value ~default:(-1) r.truncated_at)
      reason r.records_kept r.records_dropped

type t = {
  backend : backend;
  mutable sync : sync_policy;
  mutable next_batch : int;
  mutable next_seq : int;
  mutable unsynced : int; (* records appended since the last flush *)
  mutable last_recovery : recovery_report option;
  stats : stats;
}

let create ?(sync = Every_batch) backend =
  {
    backend;
    sync;
    next_batch = 0;
    next_seq = 0;
    unsynced = 0;
    last_recovery = None;
    stats = fresh_stats ();
  }

let stats t = t.stats
let last_recovery t = t.last_recovery
let set_sync t policy = t.sync <- policy

let force_sync t =
  if t.unsynced > 0 then begin
    t.backend.flush ();
    t.stats.syncs <- t.stats.syncs + 1;
    t.unsynced <- 0
  end

let sync = force_sync
let close t = t.backend.close ()

(* Flush decision at a batch (or standalone-record) boundary. *)
let sync_boundary t =
  match t.sync with
  | Never -> ()
  | Every_batch -> force_sync t
  | Every_n n -> if t.unsynced >= n then force_sync t

let append_record t record =
  let line = encode_line ~seq:t.next_seq record in
  t.next_seq <- t.next_seq + 1;
  t.stats.records <- t.stats.records + 1;
  t.stats.bytes <- t.stats.bytes + String.length line + 1;
  (match record with
   | Checkpoint _ -> t.stats.checkpoints <- t.stats.checkpoints + 1
   | Create_table _ | Begin _ | Op _ | Commit _ -> ());
  t.backend.append line;
  t.unsynced <- t.unsynced + 1

let log t record =
  append_record t record;
  sync_boundary t

let log_batch t ops =
  t.stats.batches <- t.stats.batches + 1;
  let id = t.next_batch in
  t.next_batch <- id + 1;
  Obs.Trace.span ~cat:"wal"
    ~args:(fun () -> [ ("batch", Obs.Trace.Int id); ("ops", Obs.Trace.Int (List.length ops)) ])
    "wal.append_batch"
    (fun () ->
      append_record t (Begin id);
      List.iter (fun op -> append_record t (Op op)) ops;
      append_record t (Commit id);
      sync_boundary t);
  id

(* Full decode of the log — materializes everything, test use only;
   replay streams. *)
let records t =
  List.mapi (fun index line -> decode_line ~index line) (t.backend.read_all ())

(* -- Database images for checkpoints ------------------------------------- *)

let database_to_sexp db =
  let table_sexp name =
    let table = Database.table db name in
    Sexp.List
      [ Schema.to_sexp (Table.schema table);
        Sexp.List (List.map Tuple.to_sexp (List.sort Tuple.compare (Table.to_list table)));
      ]
  in
  Sexp.List (List.map table_sexp (Database.table_names db))

let database_of_sexp sexp =
  let db = Database.create () in
  (match sexp with
   | Sexp.List tables ->
     List.iter
       (fun t ->
         match t with
         | Sexp.List [ schema; Sexp.List rows ] ->
           let table = Database.create_table db (Schema.of_sexp schema) in
           List.iter
             (fun row ->
               match Table.insert table (Tuple.of_sexp row) with
               | Table.Inserted -> ()
               | Table.Duplicate_key ->
                 raise (Sexp.Parse_error "duplicate row in checkpoint image"))
             rows
         | s -> raise (Sexp.Parse_error ("bad table image: " ^ Sexp.to_string s)))
       tables
   | Sexp.Atom _ -> raise (Sexp.Parse_error "bad database image"));
  db

(* Checkpoint = compaction: the whole log is atomically replaced by one
   checkpoint record, so it no longer grows without bound.  Sequence
   numbering restarts at 0 in the fresh segment. *)
let checkpoint t db =
  Obs.Trace.span ~cat:"wal" "wal.checkpoint" (fun () ->
      let line = encode_line ~seq:0 (Checkpoint (database_to_sexp db)) in
      t.backend.rewrite [ line ];
      t.next_seq <- 1;
      t.unsynced <- 0;
      t.stats.records <- t.stats.records + 1;
      t.stats.bytes <- t.stats.bytes + String.length line + 1;
      t.stats.checkpoints <- t.stats.checkpoints + 1;
      t.stats.syncs <- t.stats.syncs + 1)

(* -- Replay ---------------------------------------------------------------- *)

(* Stream the log into a fresh database.  Complete batches apply at their
   [Commit]; DDL and checkpoints apply immediately and, like commits, mark
   a stable point.  In lenient mode (default) the first corrupt, partial
   or out-of-sequence record — or any structural error such as an op
   outside a batch — truncates replay after the last stable point and the
   damaged tail is removed from the backend.  In strict mode the same
   conditions raise {!Corrupt}.  An incomplete trailing batch (a clean
   crash mid-batch) is dropped in both modes and reported. *)
let replay_report ?(strict = false) t =
  let total = ref 0 in
  Obs.Trace.span ~cat:"wal"
    ~args:(fun () -> [ ("records", Obs.Trace.Int !total) ])
    "wal.replay"
  @@ fun () ->
  let db = ref (Database.create ()) in
  let pending = ref None in
  let expected_seq = ref None in
  let seq_hwm = ref None in (* highest v2 seq among processed records *)
  let kept = ref 0 in (* records up to the last stable point *)
  let kept_seq = ref None in (* seq high-water mark at the last stable point *)
  let batches = ref 0 in
  let max_batch = ref (-1) in
  let trunc = ref None in
  let truncate_at index reason =
    if strict then raise (Corrupt { index; reason }) else trunc := Some (index, reason)
  in
  let stable index =
    kept := index + 1;
    kept_seq := !seq_hwm
  in
  let apply index record =
    match record with
    | Create_table schema ->
      (match Database.create_table !db schema with
       | _ -> stable index
       | exception Schema.Invalid msg ->
         truncate_at index (Printf.sprintf "ddl replay failed: %s" msg))
    | Checkpoint image ->
      (match database_of_sexp image with
       | db' ->
         db := db';
         pending := None;
         stable index
       | exception Sexp.Parse_error msg ->
         truncate_at index (Printf.sprintf "bad checkpoint image: %s" msg))
    | Begin n ->
      (match !pending with
       | None -> pending := Some (n, [])
       | Some (m, _) ->
         truncate_at index (Printf.sprintf "begin %d inside open batch %d" n m))
    | Op op ->
      (match !pending with
       | Some (n, ops) -> pending := Some (n, op :: ops)
       | None -> truncate_at index "op outside batch")
    | Commit n ->
      (match !pending with
       | Some (m, ops) when m = n ->
         (match Database.apply_ops !db (List.rev ops) with
          | Ok () ->
            pending := None;
            incr batches;
            max_batch := max !max_batch n;
            stable index
          | Error err ->
            truncate_at index
              (Printf.sprintf "batch %d not applicable: %s" n
                 (Database.op_error_to_string err)))
       | Some (m, _) ->
         truncate_at index (Printf.sprintf "mismatched commit: begin %d, commit %d" m n)
       | None -> truncate_at index (Printf.sprintf "commit %d outside batch" n))
  in
  t.backend.iter_lines (fun line ->
      let index = !total in
      incr total;
      if !trunc = None then
        match decode_line_seq ~index line with
        | exception Corrupt { reason; _ } -> truncate_at index reason
        | seq_opt, record ->
          let seq_ok =
            match seq_opt with
            | None -> true (* legacy v1 line: no sequencing *)
            | Some s ->
              (match !expected_seq with
               | Some e when s <> e ->
                 truncate_at index
                   (Printf.sprintf "out-of-sequence record: expected %d, found %d" e s);
                 false
               | _ ->
                 expected_seq := Some (s + 1);
                 seq_hwm := Some s;
                 true)
          in
          if seq_ok then apply index record);
  (* A clean crash mid-batch: Begin (and maybe ops) without a Commit. *)
  (match (!pending, !trunc) with
   | Some (n, _), None ->
     trunc := Some (!kept, Printf.sprintf "incomplete trailing batch %d" n)
   | _ -> ());
  let dropped = !total - !kept in
  let report =
    {
      total_records = !total;
      records_kept = !kept;
      records_dropped = dropped;
      batches_applied = !batches;
      truncated_at = (match !trunc with Some (i, _) -> Some i | None -> None);
      truncation_reason = (match !trunc with Some (_, r) -> Some r | None -> None);
    }
  in
  (* Repair: physically drop the damaged/incomplete tail so future
     appends are not stranded behind it on the next replay. *)
  if dropped > 0 then t.backend.truncate !kept;
  t.next_batch <- !max_batch + 1;
  t.next_seq <- (match !kept_seq with Some s -> s + 1 | None -> 0);
  t.last_recovery <- Some report;
  (!db, report)

let replay ?strict t = fst (replay_report ?strict t)

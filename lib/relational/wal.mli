(** Write-ahead log with batch atomicity and checkpoints.

    Records are one s-expression per line on a pluggable backend (in-memory
    for tests and crash simulation, file for real persistence).  Replay
    applies only complete [Begin]/[Commit] batches, so a crash mid-batch
    never tears an update. *)

type record =
  | Create_table of Schema.t
  | Begin of int
  | Op of Database.op
  | Commit of int
  | Checkpoint of Sexp.t

type backend = {
  append : string -> unit;
  read_all : unit -> string list;
  reset : unit -> unit;
}

val mem_backend : unit -> backend
val file_backend : string -> backend

val record_to_sexp : record -> Sexp.t
val record_of_sexp : Sexp.t -> record

type stats = {
  mutable records : int;
  mutable batches : int;
  mutable checkpoints : int;
  mutable bytes : int;  (** serialized bytes appended, newlines included *)
}
(** Write-side telemetry since this handle was created; replayed history
    is not counted. *)

val fresh_stats : unit -> stats

type t

val create : backend -> t
val stats : t -> stats
val log : t -> record -> unit

val log_batch : t -> Database.op list -> int
(** Bracket [ops] in a fresh batch; returns the batch id. *)

val records : t -> record list

val database_to_sexp : Database.t -> Sexp.t
val database_of_sexp : Sexp.t -> Database.t

val checkpoint : t -> Database.t -> unit
(** Append a full database image; replay restarts from the latest one. *)

val replay : t -> Database.t
(** Rebuild the database from the log, dropping incomplete trailing batches,
    and reposition the batch counter past the highest batch seen. *)

(** Write-ahead log with batch atomicity, checkpoints and crash-safe
    recovery (v2 format).

    Each record is one line — [{seq} {crc32-hex} {sexp}] — on a pluggable
    backend (in-memory for tests and crash simulation, file for real
    persistence).  The CRC-32 covers the sequence number and the payload,
    so torn writes, bit flips and misordered segments are detectable;
    legacy v1 lines (bare s-expressions) are still accepted on replay.
    Replay applies only complete [Begin]/[Commit] batches, so a crash
    mid-batch never tears an update; by default it is lenient, truncating
    the log after the last complete batch on damage instead of raising. *)

type record =
  | Create_table of Schema.t
  | Begin of int
  | Op of Database.op
  | Commit of int
  | Checkpoint of Sexp.t

exception Corrupt of { index : int; reason : string }
(** Log-structure damage: checksum mismatch, unparseable or
    out-of-sequence record, op outside a batch, mismatched commit, or a
    batch that no longer applies.  [index] is the 0-based record index
    (-1 when decoding outside a log context).  Distinct from
    {!Sexp.Parse_error}, which now only ever signals s-expression
    syntax errors. *)

type backend = {
  append : string -> unit;
  iter_lines : (string -> unit) -> unit;  (** streaming read, oldest first *)
  read_all : unit -> string list;
  truncate : int -> unit;  (** keep only the first [n] lines *)
  rewrite : string list -> unit;
      (** atomically replace the whole log (segment swap) *)
  flush : unit -> unit;  (** push buffered appends to stable storage *)
  close : unit -> unit;
  reset : unit -> unit;
}

val mem_backend : unit -> backend

val file_backend : string -> backend
(** Holds one output channel for the handle's lifetime; [flush] is
    channel flush + [fsync], [rewrite]/[truncate] go through a
    write-to-temp-and-rename segment swap. *)

val record_to_sexp : record -> Sexp.t

val record_of_sexp : Sexp.t -> record
(** @raise Corrupt on a sexp that is not a WAL record. *)

val crc32 : string -> int
(** CRC-32 (IEEE, reflected) of a string — exposed for fault-injection
    tests that need to forge or verify record checksums. *)

val encode_line : seq:int -> record -> string

val decode_line : index:int -> string -> record
(** Decode one log line (v2 checksummed or legacy v1 bare sexp).
    @raise Corrupt on damage, blaming record [index]. *)

type sync_policy =
  | Never  (** leave flushing to the OS *)
  | Every_batch  (** flush + fsync at every batch boundary (default) *)
  | Every_n of int  (** flush once at least [n] records have accumulated *)

type stats = {
  mutable records : int;
  mutable batches : int;
  mutable checkpoints : int;
  mutable bytes : int;  (** serialized bytes appended, newlines included *)
  mutable syncs : int;  (** explicit flushes issued by the sync policy *)
}
(** Write-side telemetry since this handle was created; replayed history
    is not counted. *)

val fresh_stats : unit -> stats

type recovery_report = {
  total_records : int;  (** lines present in the log, kept or not *)
  records_kept : int;
  records_dropped : int;
  batches_applied : int;
  truncated_at : int option;  (** record index where replay stopped *)
  truncation_reason : string option;
}
(** What {!replay_report} kept, what it dropped, and why. *)

val report_to_string : recovery_report -> string

type t

val create : ?sync:sync_policy -> backend -> t
(** Fresh handle; [sync] defaults to [Every_batch]. *)

val stats : t -> stats

val last_recovery : t -> recovery_report option
(** The report of the most recent replay through this handle, if any. *)

val log : t -> record -> unit
val log_batch : t -> Database.op list -> int
(** Bracket [ops] in a fresh batch; returns the batch id. *)

val sync : t -> unit
(** Force a flush regardless of the sync policy. *)

val set_sync : t -> sync_policy -> unit
(** Switch the durability policy of a live handle.  The network front
    door uses this to take over fsync scheduling: [Never] plus explicit
    {!sync} calls at group-commit boundaries. *)

val close : t -> unit

val records : t -> record list
(** Decode the whole log at once — materializes every record, test use
    only; {!replay_report} streams. *)

val database_to_sexp : Database.t -> Sexp.t
val database_of_sexp : Sexp.t -> Database.t

val checkpoint : t -> Database.t -> unit
(** Write a full database image and compact: the log is atomically
    replaced by the single checkpoint record (rewrite-and-rename), so it
    no longer grows without bound. *)

val replay_report : ?strict:bool -> t -> Database.t * recovery_report
(** Rebuild the database from the log.  Lenient by default: the first
    corrupt, partial or out-of-sequence record truncates replay after
    the last complete batch and the damaged tail is removed from the
    backend.  With [~strict:true] the same conditions raise {!Corrupt}.
    Also repositions the batch and sequence counters past the retained
    prefix. *)

val replay : ?strict:bool -> t -> Database.t

(* Conflict-driven clause learning with incremental solving under
   assumptions — the Section 6 "modern solver" upgrade of {!Dpll}.

   Two watched literals per clause, 1UIP conflict analysis with basic
   clause minimization, VSIDS-style variable activity with decay and an
   order heap, saved phases, Luby restarts and activity-driven learned
   clause reduction.  The solver instance is persistent: variables and
   clauses are added between [solve] calls, each [solve] runs under a set
   of assumption literals (decided first, in order), and the instance
   returns to decision level 0 afterwards with every learned clause kept
   — which is what makes admission checks incremental: per-transaction
   CNF chunks are gated behind activation literals, and only the
   activation literals change from one admission to the next.

   Budgets mirror {!Solver.Backtrack}: a conflict limit (the node budget
   translated by the caller) raises {!Conflict_budget_exceeded}, a
   monotonic-clock deadline raises {!Timed_out}; both are checked on a
   stride so the hot propagation loop stays clock-free, plus once at
   entry so a pre-expired deadline never starts a search.  Either way the
   solver unwinds to level 0 first and stays usable. *)

exception Conflict_budget_exceeded
exception Timed_out

type result =
  | Sat
  | Unsat

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;  (* trail literals whose watch lists were processed *)
  restarts : int;
  learned : int;  (* learned clauses added over the solver's lifetime *)
  minimized : int;  (* literals dropped by clause minimization *)
}

(* Growable int vector — watch lists and the clause arena index space. *)
module Veci = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  let push t x =
    if t.n = Array.length t.a then begin
      let b = Array.make (if t.n = 0 then 4 else 2 * t.n) 0 in
      Array.blit t.a 0 b 0 t.n;
      t.a <- b
    end;
    t.a.(t.n) <- x;
    t.n <- t.n + 1
end

type clause = {
  mutable lits : int array;  (* lits.(0) and lits.(1) are watched *)
  mutable act : float;
  learnt : bool;
  mutable dead : bool;
}

type t = {
  mutable nvars : int;
  (* Var-indexed state (1-based; slot 0 unused), grown by {!new_var}. *)
  mutable assign : int array;  (* 1 true, -1 false, 0 unassigned *)
  mutable level : int array;
  mutable reason : int array;  (* arena index, -1 for decisions/unassigned *)
  mutable activity : float array;
  mutable phase : bool array;  (* saved polarity; default false *)
  mutable seen : int array;
  mutable heap_pos : int array;  (* -1 when not in the order heap *)
  mutable heap : int array;
  mutable heap_n : int;
  mutable watches : Veci.t array;  (* indexed by literal, see {!lidx} *)
  mutable arena : clause array;
  mutable arena_n : int;
  mutable trail : int array;  (* assigned literals in order *)
  mutable trail_n : int;
  mutable trail_lim : int array;  (* trail_n at each decision level *)
  mutable trail_lim_n : int;
  mutable qhead : int;
  mutable ok : bool;  (* false once the clause set is unsat at level 0 *)
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable n_learnt : int;  (* live learned clauses *)
  mutable max_learnt : int;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learned_total : int;
  mutable minimized : int;
  mutable model : int array;  (* last Sat assignment, var-indexed *)
}

let lidx l = if l > 0 then 2 * l else (2 * -l) + 1

let dummy_clause = { lits = [||]; act = 0.; learnt = false; dead = true }

let create () =
  {
    nvars = 0;
    assign = Array.make 16 0;
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    activity = Array.make 16 0.;
    phase = Array.make 16 false;
    seen = Array.make 16 0;
    heap_pos = Array.make 16 (-1);
    heap = Array.make 16 0;
    heap_n = 0;
    watches = Array.init 32 (fun _ -> Veci.create ());
    arena = Array.make 16 dummy_clause;
    arena_n = 0;
    trail = Array.make 16 0;
    trail_n = 0;
    trail_lim = Array.make 16 0;
    trail_lim_n = 0;
    qhead = 0;
    ok = true;
    var_inc = 1.;
    cla_inc = 1.;
    n_learnt = 0;
    max_learnt = 4000;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learned_total = 0;
    minimized = 0;
    model = [||];
  }

let num_vars t = t.nvars

let stats t =
  {
    conflicts = t.conflicts;
    decisions = t.decisions;
    propagations = t.propagations;
    restarts = t.restarts;
    learned = t.learned_total;
    minimized = t.minimized;
  }

let grow_var_arrays t =
  let cap = Array.length t.assign in
  let ncap = 2 * cap in
  let gi a d =
    let b = Array.make ncap d in
    Array.blit a 0 b 0 cap;
    b
  in
  t.assign <- gi t.assign 0;
  t.level <- gi t.level 0;
  t.reason <- gi t.reason (-1);
  t.seen <- gi t.seen 0;
  t.heap_pos <- gi t.heap_pos (-1);
  t.heap <- gi t.heap 0;
  t.trail <- gi t.trail 0;
  let bf = Array.make ncap 0. in
  Array.blit t.activity 0 bf 0 cap;
  t.activity <- bf;
  let bb = Array.make ncap false in
  Array.blit t.phase 0 bb 0 cap;
  t.phase <- bb;
  let w = Array.init (2 * ncap) (fun _ -> Veci.create ()) in
  Array.blit t.watches 0 w 0 (Array.length t.watches);
  t.watches <- w

(* Order heap: max-heap on variable activity. *)
let heap_lt t a b = t.activity.(a) > t.activity.(b)

let heap_swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.heap_pos.(a) <- j;
  t.heap_pos.(b) <- i

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt t t.heap.(i) t.heap.(p) then begin
      heap_swap t i p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_n && heap_lt t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_n && heap_lt t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    t.heap.(t.heap_n) <- v;
    t.heap_pos.(v) <- t.heap_n;
    t.heap_n <- t.heap_n + 1;
    heap_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_n <- t.heap_n - 1;
  if t.heap_n > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_n);
    t.heap_pos.(t.heap.(0)) <- 0
  end;
  t.heap_pos.(v) <- -1;
  if t.heap_n > 0 then heap_down t 0;
  v

let new_var t =
  let v = t.nvars + 1 in
  if v >= Array.length t.assign then grow_var_arrays t;
  t.nvars <- v;
  t.assign.(v) <- 0;
  t.level.(v) <- 0;
  t.reason.(v) <- -1;
  t.activity.(v) <- 0.;
  t.phase.(v) <- false;
  t.seen.(v) <- 0;
  t.heap_pos.(v) <- -1;
  heap_insert t v;
  v

let lit_value t l =
  let a = t.assign.(abs l) in
  if l > 0 then a else -a

let decision_level t = t.trail_lim_n

let bump_var t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for u = 1 to t.nvars do
      t.activity.(u) <- t.activity.(u) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

let bump_clause t c =
  c.act <- c.act +. t.cla_inc;
  if c.act > 1e20 then begin
    for i = 0 to t.arena_n - 1 do
      let d = t.arena.(i) in
      if d.learnt then d.act <- d.act *. 1e-20
    done;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let decay t =
  t.var_inc <- t.var_inc /. 0.95;
  t.cla_inc <- t.cla_inc /. 0.999

let push_trail t l =
  t.trail.(t.trail_n) <- l;
  t.trail_n <- t.trail_n + 1

let enqueue t l reason =
  let v = abs l in
  t.assign.(v) <- (if l > 0 then 1 else -1);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  push_trail t l

let new_decision_level t =
  if t.trail_lim_n = Array.length t.trail_lim then begin
    let b = Array.make (2 * t.trail_lim_n) 0 in
    Array.blit t.trail_lim 0 b 0 t.trail_lim_n;
    t.trail_lim <- b
  end;
  t.trail_lim.(t.trail_lim_n) <- t.trail_n;
  t.trail_lim_n <- t.trail_lim_n + 1

(* Unwind the trail to decision level [lvl], saving phases and returning
   variables to the order heap. *)
let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_n - 1 downto bound do
      let l = t.trail.(i) in
      let v = abs l in
      t.phase.(v) <- t.assign.(v) > 0;
      t.assign.(v) <- 0;
      t.reason.(v) <- -1;
      heap_insert t v
    done;
    t.trail_n <- bound;
    t.qhead <- bound;
    t.trail_lim_n <- lvl
  end

let alloc_clause t lits ~learnt =
  if t.arena_n = Array.length t.arena then begin
    let b = Array.make (2 * t.arena_n) dummy_clause in
    Array.blit t.arena 0 b 0 t.arena_n;
    t.arena <- b
  end;
  let ci = t.arena_n in
  t.arena.(ci) <- { lits; act = 0.; learnt; dead = false };
  t.arena_n <- t.arena_n + 1;
  if Array.length lits >= 2 then begin
    Veci.push t.watches.(lidx lits.(0)) ci;
    Veci.push t.watches.(lidx lits.(1)) ci
  end;
  ci

(* Propagate every queued assignment.  Returns the arena index of a
   conflicting clause, or -1. *)
let propagate t =
  let conflict = ref (-1) in
  while !conflict < 0 && t.qhead < t.trail_n do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.propagations <- t.propagations + 1;
    let f = -p in
    (* Every clause watching the now-false literal [f]. *)
    let w = t.watches.(lidx f) in
    let i = ref 0 and j = ref 0 in
    while !i < w.Veci.n do
      let ci = w.Veci.a.(!i) in
      incr i;
      let c = t.arena.(ci) in
      if not c.dead then begin
        let lits = c.lits in
        if lits.(0) = f then begin
          lits.(0) <- lits.(1);
          lits.(1) <- f
        end;
        let first = lits.(0) in
        if lit_value t first = 1 then begin
          w.Veci.a.(!j) <- ci;
          incr j
        end
        else begin
          (* Look for a replacement watch. *)
          let n = Array.length lits in
          let k = ref 2 in
          while !k < n && lit_value t lits.(!k) = -1 do
            incr k
          done;
          if !k < n then begin
            lits.(1) <- lits.(!k);
            lits.(!k) <- f;
            Veci.push t.watches.(lidx lits.(1)) ci
          end
          else begin
            w.Veci.a.(!j) <- ci;
            incr j;
            if lit_value t first = -1 then begin
              (* Conflict: keep the remaining watches and stop. *)
              while !i < w.Veci.n do
                w.Veci.a.(!j) <- w.Veci.a.(!i);
                incr j;
                incr i
              done;
              t.qhead <- t.trail_n;
              conflict := ci
            end
            else enqueue t first ci
          end
        end
      end
    done;
    w.Veci.n <- !j
  done;
  !conflict

(* A literal of the pending learned clause is redundant when its reason's
   other literals are all already in the clause (still marked seen) or
   fixed at level 0 — the basic (non-recursive) minimization. *)
let lit_redundant t q =
  let r = t.reason.(abs q) in
  r >= 0
  &&
  let lits = t.arena.(r).lits in
  let n = Array.length lits in
  let rec go i =
    i >= n
    ||
    let v = abs lits.(i) in
    (t.seen.(v) = 1 || t.level.(v) = 0) && go (i + 1)
  in
  go 1

(* 1UIP conflict analysis.  Returns the learned clause (asserting literal
   first, a second-highest-level literal second) and the backtrack level. *)
let analyze t confl_ci =
  let out = ref [] in
  let pathc = ref 0 in
  let p = ref 0 in
  let confl = ref confl_ci in
  let index = ref (t.trail_n - 1) in
  let continue = ref true in
  while !continue do
    let c = t.arena.(!confl) in
    if c.learnt then bump_clause t c;
    let start = if !p = 0 then 0 else 1 in
    for k = start to Array.length c.lits - 1 do
      let q = c.lits.(k) in
      let v = abs q in
      if t.seen.(v) = 0 && t.level.(v) > 0 then begin
        t.seen.(v) <- 1;
        bump_var t v;
        if t.level.(v) >= decision_level t then incr pathc
        else out := q :: !out
      end
    done;
    while t.seen.(abs t.trail.(!index)) = 0 do
      decr index
    done;
    p := t.trail.(!index);
    decr index;
    t.seen.(abs !p) <- 0;
    decr pathc;
    if !pathc > 0 then confl := t.reason.(abs !p) else continue := false
  done;
  let kept =
    List.filter
      (fun q ->
        if lit_redundant t q then begin
          t.minimized <- t.minimized + 1;
          false
        end
        else true)
      !out
  in
  List.iter (fun q -> t.seen.(abs q) <- 0) !out;
  let btlevel = List.fold_left (fun m q -> max m (t.level.(abs q))) 0 kept in
  (* Asserting literal first; a literal from the backtrack level second so
     both watches are sound after the jump. *)
  let lits = Array.of_list (- !p :: kept) in
  let n = Array.length lits in
  if n > 2 then begin
    let k = ref 1 in
    for i = 2 to n - 1 do
      if t.level.(abs lits.(i)) > t.level.(abs lits.(!k)) then k := i
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!k);
    lits.(!k) <- tmp
  end;
  (lits, btlevel)

(* Halve the learned-clause database: lowest-activity first, keeping
   binaries and clauses currently locked as reasons. *)
let reduce_db t =
  let cands = ref [] in
  for ci = 0 to t.arena_n - 1 do
    let c = t.arena.(ci) in
    if c.learnt && (not c.dead) && Array.length c.lits > 2 then
      if not (t.reason.(abs c.lits.(0)) = ci && lit_value t c.lits.(0) = 1) then
        cands := (c.act, c) :: !cands
  done;
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) !cands in
  let drop = List.length sorted / 2 in
  List.iteri (fun i (_, c) -> if i < drop then c.dead <- true) sorted;
  t.n_learnt <- t.n_learnt - min drop (List.length sorted)

let add_clause t lits =
  if decision_level t <> 0 then invalid_arg "Cdcl.add_clause: not at level 0";
  Array.iter
    (fun l ->
      if l = 0 || abs l > t.nvars then invalid_arg "Cdcl.add_clause: bad literal")
    lits;
  if t.ok then begin
    (* Sort/dedup, drop tautologies and level-0-false literals, skip
       clauses already true at level 0. *)
    let ls = List.sort_uniq compare (Array.to_list lits) in
    let taut = List.exists (fun l -> List.mem (-l) ls) ls in
    let sat0 = List.exists (fun l -> lit_value t l = 1) ls in
    if not (taut || sat0) then begin
      let ls = List.filter (fun l -> lit_value t l <> -1) ls in
      match ls with
      | [] -> t.ok <- false
      | [ l ] ->
        enqueue t l (-1);
        if propagate t >= 0 then t.ok <- false
      | _ ->
        let _ci = alloc_clause t (Array.of_list ls) ~learnt:false in
        ()
    end
  end

let luby x =
  (* Finite subsequence index -> Luby value (1, 1, 2, 1, 1, 2, 4, ...). *)
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let restart_base = 100

(* Search until Sat / Unsat / restart budget spent.  [bound] is this
   run's conflict allowance; [limit] the solve-wide conflict budget
   (already-spent count passed in [spent]). *)
type search_outcome =
  | S_sat
  | S_unsat
  | S_restart

let check_deadline deadline_ns =
  match deadline_ns with
  | None -> ()
  | Some d -> if Obs.Mclock.now_ns () >= d then raise Timed_out

let search t ~assumptions ~bound ~conflict_limit ~deadline_ns ~spent =
  let local = ref 0 in
  let result = ref None in
  while !result = None do
    let confl = propagate t in
    if confl >= 0 then begin
      t.conflicts <- t.conflicts + 1;
      incr local;
      (match conflict_limit with
       | Some lim when spent + !local > lim ->
         cancel_until t 0;
         raise Conflict_budget_exceeded
       | _ -> ());
      if (spent + !local) land 255 = 0 then begin
        try check_deadline deadline_ns
        with Timed_out ->
          cancel_until t 0;
          raise Timed_out
      end;
      if decision_level t = 0 then begin
        t.ok <- false;
        result := Some S_unsat
      end
      else begin
        let lits, btlevel = analyze t confl in
        cancel_until t btlevel;
        if Array.length lits = 1 then enqueue t lits.(0) (-1)
        else begin
          let ci = alloc_clause t lits ~learnt:true in
          bump_clause t t.arena.(ci);
          t.n_learnt <- t.n_learnt + 1;
          t.learned_total <- t.learned_total + 1;
          enqueue t lits.(0) ci
        end;
        decay t
      end
    end
    else if !local >= bound then begin
      (* Restart: back to level 0; assumptions are re-decided next run. *)
      cancel_until t 0;
      t.restarts <- t.restarts + 1;
      result := Some S_restart
    end
    else if t.n_learnt > t.max_learnt then begin
      reduce_db t;
      t.max_learnt <- t.max_learnt + (t.max_learnt / 2)
    end
    else begin
      (* Decide: assumptions first (one per level, in order), then the
         highest-activity unassigned variable at its saved phase. *)
      let rec skip_assumed k = function
        | [] -> `Free
        | a :: rest ->
          if k > 0 then skip_assumed (k - 1) rest
          else (
            match lit_value t a with
            | 1 ->
              new_decision_level t;
              `Decided
            | -1 -> `Conflict
            | _ ->
              new_decision_level t;
              enqueue t a (-1);
              `Decided)
      in
      let step =
        if decision_level t < List.length assumptions then
          skip_assumed (decision_level t) assumptions
        else `Free
      in
      match step with
      | `Conflict ->
        (* An assumption is false under the others: unsat under
           assumptions, but the clause set itself stays consistent. *)
        cancel_until t 0;
        result := Some S_unsat
      | `Decided -> ()
      | `Free -> (
        let v = ref 0 in
        while !v = 0 && t.heap_n > 0 do
          let u = heap_pop t in
          if t.assign.(u) = 0 then v := u
        done;
        if !v = 0 then result := Some S_sat
        else begin
          t.decisions <- t.decisions + 1;
          if t.decisions land 1023 = 0 then begin
            try check_deadline deadline_ns
            with Timed_out ->
              cancel_until t 0;
              raise Timed_out
          end;
          new_decision_level t;
          enqueue t (if t.phase.(!v) then !v else - !v) (-1)
        end)
    end
  done;
  (Option.get !result, !local)

let solve ?conflict_limit ?deadline_ns ?(assumptions = []) t =
  check_deadline deadline_ns;
  if not t.ok then Unsat
  else begin
    List.iter
      (fun a ->
        if a = 0 || abs a > t.nvars then invalid_arg "Cdcl.solve: bad assumption")
      assumptions;
    let spent = ref 0 in
    let answer = ref None in
    let round = ref 0 in
    (try
       while !answer = None do
         let bound = restart_base * luby !round in
         incr round;
         let outcome, used =
           search t ~assumptions ~bound ~conflict_limit ~deadline_ns ~spent:!spent
         in
         spent := !spent + used;
         match outcome with
         | S_sat ->
           (* Capture the model before unwinding. *)
           if Array.length t.model <= t.nvars then
             t.model <- Array.make (Array.length t.assign) 0;
           Array.blit t.assign 0 t.model 0 (t.nvars + 1);
           cancel_until t 0;
           answer := Some Sat
         | S_unsat ->
           cancel_until t 0;
           answer := Some Unsat
         | S_restart -> ()
       done
     with e ->
       cancel_until t 0;
       raise e);
    Option.get !answer
  end

let value t v =
  v >= 1 && v < Array.length t.model && t.model.(v) = 1

let num_clauses t =
  let n = ref 0 in
  for i = 0 to t.arena_n - 1 do
    if not t.arena.(i).dead then incr n
  done;
  !n

(** Conflict-driven clause learning with incremental solving under
    assumptions — the paper's Section 6 "modern SAT solver" backend.

    A solver instance is persistent: {!new_var} and {!add_clause} grow
    the instance between {!solve} calls, each solve runs under assumption
    literals (decided first, in order), and learned clauses survive
    across calls.  Admission checking gates each per-transaction CNF
    chunk behind an activation literal and re-solves under the live
    chunks' activation assumptions — the SAT mirror of the engine's
    delta composition. *)

type t

exception Conflict_budget_exceeded
(** The conflict budget of one {!solve} ran out.  The instance has been
    unwound to level 0 and stays usable. *)

exception Timed_out
(** The monotonic-clock deadline of one {!solve} passed (checked at
    entry and on conflict/decision strides).  Instance stays usable. *)

type result =
  | Sat
  | Unsat

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;  (** trail literals whose watch lists were walked *)
  restarts : int;
  learned : int;  (** learned clauses added over the instance lifetime *)
  minimized : int;  (** literals dropped by learned-clause minimization *)
}

val create : unit -> t
val new_var : t -> int
(** Fresh 1-based variable. *)

val add_clause : t -> int array -> unit
(** Add a problem clause (DIMACS literals over {!new_var} results) at
    decision level 0.  Tautologies and level-0-satisfied clauses are
    dropped; an empty (or immediately contradictory) clause makes every
    later {!solve} return [Unsat].
    @raise Invalid_argument on literal 0, unknown variables, or when the
    instance is mid-search. *)

val solve :
  ?conflict_limit:int ->
  ?deadline_ns:int64 ->
  ?assumptions:int list ->
  t ->
  result
(** Solve the current clause set under [assumptions].  [Unsat] with
    assumptions means unsat {e under those assumptions} — the instance
    itself stays consistent and reusable.  [conflict_limit] bounds this
    call's conflicts ({!Conflict_budget_exceeded}); [deadline_ns] is an
    absolute {!Obs.Mclock} deadline ({!Timed_out}). *)

val value : t -> int -> bool
(** Model value of a variable after a [Sat] answer (false for anything
    unassigned or out of range).  Valid until the next [solve]. *)

val num_vars : t -> int
val num_clauses : t -> int
(** Live (non-deleted) clauses, problem and learned. *)

val stats : t -> stats
(** Cumulative over the instance's lifetime. *)

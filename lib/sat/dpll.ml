(* DPLL SAT solver with two watched literals per clause, unit propagation,
   activity-guided branching and chronological backtracking.

   Section 6 of the paper proposes offloading composed-body satisfiability
   to SAT/SMT solvers; this solver plus {!Encode} realizes that proposal as
   the from-scratch ablation backend ({!Cdcl} is the learning, incremental
   upgrade).  Budget hooks mirror {!Solver.Backtrack}: a node (decision +
   propagation) limit and a monotonic-clock deadline, so no admission
   backend can run unbounded. *)

exception Too_many_nodes
exception Timed_out

type result =
  | Sat of bool array (* assignment indexed by variable (1-based; index 0 unused) *)
  | Unsat

type assignment =
  | Unassigned
  | True_at of int (* decision level *)
  | False_at of int

type state = {
  num_vars : int;
  clauses : int array array;
  (* watches.(lit_index l) = clauses watching literal l *)
  watches : int list array;
  assign : assignment array;
  mutable trail : (int * bool) list; (* (var, was_decision) newest first *)
  mutable level : int;
  activity : float array;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  node_limit : int; (* decisions + propagations allowance; max_int = none *)
  deadline_ns : int64; (* absolute monotonic deadline; max value = none *)
}

let lit_index num_vars l = if l > 0 then l else num_vars + -l

let value st l =
  match st.assign.(abs l) with
  | Unassigned -> None
  | True_at _ -> Some (l > 0)
  | False_at _ -> Some (l < 0)

let make ?(node_limit = max_int) ?(deadline_ns = Int64.max_int) num_vars clauses =
  {
    num_vars;
    clauses = Array.of_list (List.map Array.copy clauses);
    watches = Array.make ((2 * num_vars) + 1) [];
    assign = Array.make (num_vars + 1) Unassigned;
    trail = [];
    level = 0;
    activity = Array.make (num_vars + 1) 0.;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    node_limit;
    deadline_ns;
  }

(* Same accounting shape as [Solver.Backtrack]: every decision and every
   propagated literal is a node; the deadline is only consulted on a node
   stride so the hot path stays clock-free. *)
let deadline_stride = 256

let charge_node st =
  let nodes = st.decisions + st.propagations in
  if nodes > st.node_limit then raise Too_many_nodes;
  if
    st.deadline_ns <> Int64.max_int
    && nodes land (deadline_stride - 1) = 0
    && Obs.Mclock.now_ns () >= st.deadline_ns
  then raise Timed_out

let watch st l ci = st.watches.(lit_index st.num_vars l) <- ci :: st.watches.(lit_index st.num_vars l)

(* Move a satisfied or unassigned literal into watch position [wi] (0 or 1)
   of clause [ci]; returns the new watched literal or None when none exists. *)
let find_new_watch st ci wi =
  let clause = st.clauses.(ci) in
  let other = clause.(1 - wi) in
  let n = Array.length clause in
  let rec go i =
    if i >= n then None
    else begin
      let l = clause.(i) in
      if l <> other && value st l <> Some false then begin
        let tmp = clause.(wi) in
        clause.(wi) <- l;
        clause.(i) <- tmp;
        Some l
      end
      else go (i + 1)
    end
  in
  go 2

let assign_lit st l ~decision =
  let v = abs l in
  st.assign.(v) <- (if l > 0 then True_at st.level else False_at st.level);
  st.trail <- (v, decision) :: st.trail

(* Propagate the consequences of literal [l] having become true.  Returns
   false on conflict. *)
let rec propagate st l =
  st.propagations <- st.propagations + 1;
  charge_node st;
  let falsified = -l in
  let watching = st.watches.(lit_index st.num_vars falsified) in
  st.watches.(lit_index st.num_vars falsified) <- [];
  let rec process kept = function
    | [] ->
      st.watches.(lit_index st.num_vars falsified) <-
        kept @ st.watches.(lit_index st.num_vars falsified);
      true
    | ci :: rest ->
      let clause = st.clauses.(ci) in
      let wi = if clause.(0) = falsified then 0 else 1 in
      (match find_new_watch st ci wi with
       | Some new_lit ->
         watch st new_lit ci;
         process kept rest
       | None ->
         let other = clause.(1 - wi) in
         (match value st other with
          | Some true -> process (ci :: kept) rest
          | Some false ->
            (* Conflict: restore remaining watches before reporting. *)
            st.watches.(lit_index st.num_vars falsified) <-
              (ci :: kept) @ rest @ st.watches.(lit_index st.num_vars falsified);
            st.conflicts <- st.conflicts + 1;
            false
          | None ->
            assign_lit st other ~decision:false;
            if propagate st other then process (ci :: kept) rest
            else begin
              st.watches.(lit_index st.num_vars falsified) <-
                (ci :: kept) @ rest @ st.watches.(lit_index st.num_vars falsified);
              false
            end))
  in
  process [] watching

(* Undo trail entries down to and including the most recent decision;
   returns that decision variable, or None at level 0. *)
let backtrack st =
  let rec undo = function
    | [] ->
      st.trail <- [];
      None
    | (v, decision) :: rest ->
      let was_true =
        match st.assign.(v) with
        | True_at _ -> true
        | False_at _ | Unassigned -> false
      in
      st.assign.(v) <- Unassigned;
      if decision then begin
        st.trail <- rest;
        st.level <- st.level - 1;
        Some (v, was_true)
      end
      else undo rest
  in
  undo st.trail

let pick_branch_var st =
  let best = ref 0 and best_act = ref neg_infinity in
  for v = 1 to st.num_vars do
    if st.assign.(v) = Unassigned && st.activity.(v) > !best_act then begin
      best := v;
      best_act := st.activity.(v)
    end
  done;
  if !best = 0 then None else Some !best

let bump st clause = Array.iter (fun l -> st.activity.(abs l) <- st.activity.(abs l) +. 1.) clause

let solve ?(num_vars = 0) ?node_limit ?deadline_ns clauses =
  (match deadline_ns with
   | Some d when Obs.Mclock.now_ns () >= d -> raise Timed_out
   | _ -> ());
  let num_vars =
    List.fold_left (fun m c -> Array.fold_left (fun m l -> max m (abs l)) m c) num_vars clauses
  in
  (* Empty clause means immediate UNSAT; single-literal clauses become
     level-0 assignments below. *)
  if List.exists (fun c -> Array.length c = 0) clauses then Unsat
  else begin
    let multi, units = List.partition (fun c -> Array.length c >= 2) clauses in
    let st = make ?node_limit ?deadline_ns num_vars multi in
    Array.iteri
      (fun ci clause ->
        watch st clause.(0) ci;
        watch st clause.(1) ci;
        bump st clause)
      st.clauses;
    let conflict = ref false in
    List.iter
      (fun clause ->
        if not !conflict then begin
          let l = clause.(0) in
          match value st l with
          | Some true -> ()
          | Some false -> conflict := true
          | None ->
            assign_lit st l ~decision:false;
            if not (propagate st l) then conflict := true
        end)
      units;
    if !conflict then Unsat
    else begin
      (* Main DPLL loop with chronological backtracking: try var=false
         first (most encoder variables are "this candidate is unused"),
         flip on conflict, backtrack when both polarities failed. *)
      let rec decide () =
        match pick_branch_var st with
        | None ->
          let model = Array.make (num_vars + 1) false in
          for v = 1 to num_vars do
            model.(v) <-
              (match st.assign.(v) with
               | True_at _ -> true
               | False_at _ | Unassigned -> false)
          done;
          Sat model
        | Some v ->
          st.decisions <- st.decisions + 1;
          charge_node st;
          st.level <- st.level + 1;
          branch v false ~flipped:false
      and branch v polarity ~flipped =
        assign_lit st (if polarity then v else -v) ~decision:true;
        if propagate st (if polarity then v else -v) then decide ()
        else resolve_conflict v polarity ~flipped
      and resolve_conflict _v _polarity ~flipped:_ =
        (* Undo to the most recent decision; flip it when it was tried in
           only one polarity, otherwise keep unwinding. *)
        let rec unwind () =
          match backtrack st with
          | None -> Unsat
          | Some (dv, was_true) ->
            if was_true then unwind ()
            else begin
              st.level <- st.level + 1;
              branch dv true ~flipped:true
            end
        in
        unwind ()
      in
      decide ()
    end
  end

let check_model clauses model =
  List.for_all
    (fun clause ->
      Array.exists (fun l -> if l > 0 then model.(l) else not model.(-l)) clause)
    clauses

(** DPLL SAT solver: two watched literals, unit propagation,
    activity-guided branching, chronological backtracking.  Realizes the
    paper's Section 6 proposal of offloading composed-body satisfiability
    to a SAT solver (via {!Encode}); {!Cdcl} is the learning, incremental
    upgrade and this solver survives as the from-scratch ablation. *)

exception Too_many_nodes
(** The decision + propagation allowance of one {!solve} ran out. *)

exception Timed_out
(** The monotonic-clock deadline passed (checked at entry and on a node
    stride). *)

type result =
  | Sat of bool array  (** model indexed by variable, 1-based *)
  | Unsat

val solve : ?num_vars:int -> ?node_limit:int -> ?deadline_ns:int64 -> int array list -> result
(** Solve a clause list (DIMACS-style literals).  [num_vars] may be given
    when it exceeds the largest literal.  [node_limit] bounds decisions +
    propagations ({!Too_many_nodes}); [deadline_ns] is an absolute
    {!Obs.Mclock} deadline ({!Timed_out}) — the governor hooks that keep
    every admission backend bounded. *)

val check_model : int array list -> bool array -> bool
(** Does the model satisfy every clause? *)

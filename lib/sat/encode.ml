(* Encoding composed-body satisfiability into CNF (the paper's Section 6
   "SMT solver" direction, propositional fragment).

   Shape of the encoding:
   - Tseitin selectors mirror the and/or structure; the root is asserted.
   - A selected positive atom must choose exactly one candidate tuple from
     its table (candidates come from the atom's constant pattern).
   - Choosing a tuple implies value literals e[v=c] for the atom's variable
     positions; at-most-one over a variable's value literals enforces
     functional consistency across atoms sharing the variable.
   - (Dis)equality leaves become conditional conflicts over value literals;
     a variable with no selected binding atom is unconstrained, matching
     the vacuous-satisfiability semantics of the search solver.

   The encoding is deliberately eager (no lazy theory propagation), so its
   size grows with candidate counts; [Too_large] signals when the instance
   budget is exceeded.  That cost profile is the point of the ablation —
   at paper-workload scale the search solver wins, as Section 6
   anticipates when it calls for a *specialized* background theory. *)

module Value = Relational.Value
module Table = Relational.Table
module Database = Relational.Database
open Logic

exception Unsupported of string
exception Too_large

type budget = {
  max_candidates_per_atom : int;
  max_clauses : int;
}

let default_budget = { max_candidates_per_atom = 4000; max_clauses = 400_000 }

type value_key = int * Value.t (* variable id, value *)

type env = {
  cnf : Cnf.t;
  db : Database.t;
  budget : budget;
  (* value literal per (variable, value) *)
  value_lits : (value_key, Cnf.lit) Hashtbl.t;
  (* values minted per variable id, for pairwise exclusions *)
  var_values : (int, Value.t list ref) Hashtbl.t;
  (* chosen-tuple literals: (atom occurrence id, tuple) *)
  mutable atom_choices : (Cnf.lit * Atom.t * Relational.Tuple.t) list;
  (* equality bits per unordered variable pair (mini-EUF; see
     [prepare_equality_theory]) *)
  eq_bits : (int * int, Cnf.lit) Hashtbl.t;
}

let check_size env =
  if Cnf.num_clauses env.cnf > env.budget.max_clauses then raise Too_large

let value_lit env (v : Term.var) value =
  let key = (v.Term.vid, value) in
  match Hashtbl.find_opt env.value_lits key with
  | Some l -> l
  | None ->
    let l = Cnf.fresh_var env.cnf in
    Hashtbl.add env.value_lits key l;
    let known =
      match Hashtbl.find_opt env.var_values v.Term.vid with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add env.var_values v.Term.vid r;
        r
    in
    (* A variable takes at most one value. *)
    List.iter
      (fun other ->
        Cnf.add_clause env.cnf [ Cnf.neg l; Cnf.neg (Hashtbl.find env.value_lits (v.Term.vid, other)) ])
      !known;
    known := value :: !known;
    check_size env;
    l

(* Selector for a positive atom leaf. *)
let encode_atom env (a : Atom.t) =
  let selector = Cnf.fresh_var env.cnf in
  (match Database.find_table env.db a.Atom.rel with
   | None ->
     (* Unknown relation: the atom can never ground. *)
     Cnf.add_clause env.cnf [ Cnf.neg selector ]
   | Some table ->
     let candidates = Table.lookup table (Atom.to_pattern a) in
     if List.length candidates > env.budget.max_candidates_per_atom then raise Too_large;
     let choice_lits =
       List.map
         (fun tuple ->
           let b = Cnf.fresh_var env.cnf in
           env.atom_choices <- (b, a, tuple) :: env.atom_choices;
           Array.iteri
             (fun i t ->
               match t with
               | Term.V v -> Cnf.add_clause env.cnf [ Cnf.neg b; value_lit env v tuple.(i) ]
               | Term.C _ -> ())
             a.Atom.args;
           b)
         candidates
     in
     (match choice_lits with
      | [] -> Cnf.add_clause env.cnf [ Cnf.neg selector ]
      | _ ->
        Cnf.add_clause env.cnf (Cnf.neg selector :: choice_lits);
        Cnf.add_at_most_one env.cnf choice_lits));
  check_size env;
  selector

let values_of_var env (v : Term.var) =
  match Hashtbl.find_opt env.var_values v.Term.vid with
  | Some r -> !r
  | None -> []

(* Equality bit of an unordered variable pair; minted (with its value
   bridging) by [prepare_equality_theory], which must have seen the pair. *)
let eq_bit env (v1 : Term.var) (v2 : Term.var) =
  let key = (min v1.Term.vid v2.Term.vid, max v1.Term.vid v2.Term.vid) in
  match Hashtbl.find_opt env.eq_bits key with
  | Some l -> l
  | None ->
    (* A pair outside every prepared class: its bit is fresh and only the
       leaf selectors constrain it (both variables are value-free). *)
    let l = Cnf.fresh_var env.cnf in
    Hashtbl.add env.eq_bits key l;
    l

let encode_eq env t1 t2 =
  let selector = Cnf.fresh_var env.cnf in
  (match t1, t2 with
   | Term.C a, Term.C b ->
     if not (Value.equal a b) then Cnf.add_clause env.cnf [ Cnf.neg selector ]
   | Term.V v, Term.C c | Term.C c, Term.V v ->
     (* v = c: assert the value literal (so equality chains propagate even
        for variables no atom binds) and exclude every other value. *)
     Cnf.add_clause env.cnf [ Cnf.neg selector; value_lit env v c ];
     List.iter
       (fun value ->
         if not (Value.equal value c) then
           Cnf.add_clause env.cnf [ Cnf.neg selector; Cnf.neg (value_lit env v value) ])
       (values_of_var env v)
   | Term.V v1, Term.V v2 ->
     if not (Term.equal_var v1 v2) then
       Cnf.add_clause env.cnf [ Cnf.neg selector; eq_bit env v1 v2 ]);
  check_size env;
  selector

let encode_neq env t1 t2 =
  let selector = Cnf.fresh_var env.cnf in
  (match t1, t2 with
   | Term.C a, Term.C b ->
     if Value.equal a b then Cnf.add_clause env.cnf [ Cnf.neg selector ]
   | Term.V v, Term.C c | Term.C c, Term.V v ->
     Cnf.add_clause env.cnf [ Cnf.neg selector; Cnf.neg (value_lit env v c) ]
   | Term.V v1, Term.V v2 ->
     if Term.equal_var v1 v2 then Cnf.add_clause env.cnf [ Cnf.neg selector ]
     else Cnf.add_clause env.cnf [ Cnf.neg selector; Cnf.neg (eq_bit env v1 v2) ]);
  check_size env;
  selector

(* Three passes: atoms first so every variable's candidate values exist;
   then an equality-closure pass that equalizes domains across var-var
   equality links (so transitive chains like v1=v2 ∧ v2=v3 propagate even
   when the middle variable is bound by no atom); finally the structure
   selectors. *)
let rec mint_atoms env f acc =
  match f with
  | Formula.Atom a -> (f, encode_atom env a) :: acc
  | Formula.And fs | Formula.Or fs -> List.fold_left (fun acc f -> mint_atoms env f acc) acc fs
  | Formula.Not_atom _ | Formula.Key_free _ ->
    raise (Unsupported "negative atoms are not SAT-encodable here")
  | Formula.Lt _ | Formula.Le _ ->
    raise (Unsupported "order constraints are not SAT-encodable here")
  | Formula.True | Formula.False | Formula.Eq _ | Formula.Neq _ -> acc

let equalize_domains env formula =
  (* Collect var-const constraints (minting their value literals) and
     var-var (dis)equality links from every leaf, regardless of Or context
     — an over-approximation that only adds conditional clauses, never
     spurious conflicts.  Links remember whether the pair carries an
     equality anywhere: only Eq links merge classes. *)
  let links = Hashtbl.create 32 in
  let record (v1 : Term.var) (v2 : Term.var) ~eq =
    let key = (min v1.Term.vid v2.Term.vid, max v1.Term.vid v2.Term.vid) in
    match Hashtbl.find_opt links key with
    | Some (_, _, has_eq) -> if eq then has_eq := true
    | None -> Hashtbl.add links key (v1, v2, ref eq)
  in
  let rec walk = function
    | Formula.True | Formula.False | Formula.Atom _ | Formula.Not_atom _
    | Formula.Key_free _ -> ()
    | Formula.Eq (Term.V v, Term.C c) | Formula.Eq (Term.C c, Term.V v)
    | Formula.Neq (Term.V v, Term.C c) | Formula.Neq (Term.C c, Term.V v) ->
      ignore (value_lit env v c)
    | Formula.Eq (Term.V v1, Term.V v2) ->
      if not (Term.equal_var v1 v2) then record v1 v2 ~eq:true
    | Formula.Neq (Term.V v1, Term.V v2) ->
      if not (Term.equal_var v1 v2) then record v1 v2 ~eq:false
    | Formula.Eq _ | Formula.Neq _ | Formula.Lt _ | Formula.Le _ -> ()
    | Formula.And fs | Formula.Or fs -> List.iter walk fs
  in
  walk formula;
  (* Union-find over *equality* links only.  Disequality webs (pairwise
     distinctness across a partition's resource variables) used to merge
     everything into one class and blow the closure budget; they carry no
     unification information, so they stay out of the classes and get the
     cheap value-level treatment below instead. *)
  let parent = Hashtbl.create 16 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | Some p when p <> v ->
      let root = find p in
      Hashtbl.replace parent v root;
      root
    | _ -> v
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  let vars_of_class = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ ((v1 : Term.var), (v2 : Term.var), has_eq) ->
      if !has_eq then union v1.Term.vid v2.Term.vid)
    links;
  Hashtbl.iter
    (fun _ ((v1 : Term.var), (v2 : Term.var), has_eq) ->
      if !has_eq then
        List.iter
          (fun v ->
            let root = find v.Term.vid in
            let members = Option.value ~default:[] (Hashtbl.find_opt vars_of_class root) in
            if not (List.exists (fun (m : Term.var) -> m.Term.vid = v.Term.vid) members) then
              Hashtbl.replace vars_of_class root (v :: members))
          [ v1; v2 ])
    links;
  (* Equalize domains and build the equality theory per class: every
     member gets every class value; every pair gets an equality bit with
     value bridging (eq ∧ v1=a → v2=a, and same-value → eq); triples get
     transitivity.  This is a small eager EUF fragment — sufficient
     because classes are the chains unification would merge, which real
     bodies keep tiny (entangled partners, not distinctness webs). *)
  Hashtbl.iter
    (fun _root members ->
      let all_values =
        List.sort_uniq Value.compare (List.concat_map (values_of_var env) members)
      in
      List.iter
        (fun v -> List.iter (fun value -> ignore (value_lit env v value)) all_values)
        members;
      let members = Array.of_list members in
      let n = Array.length members in
      if n > 16 then raise Too_large;
      let bit i j =
        let v1 = members.(i) and v2 = members.(j) in
        let key = (min v1.Term.vid v2.Term.vid, max v1.Term.vid v2.Term.vid) in
        match Hashtbl.find_opt env.eq_bits key with
        | Some l -> l
        | None ->
          let l = Cnf.fresh_var env.cnf in
          Hashtbl.add env.eq_bits key l;
          l
      in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let eq = bit i j in
          List.iter
            (fun a ->
              let l1 = value_lit env members.(i) a and l2 = value_lit env members.(j) a in
              (* eq ∧ (vi = a) → (vj = a), both directions. *)
              Cnf.add_clause env.cnf [ Cnf.neg eq; Cnf.neg l1; l2 ];
              Cnf.add_clause env.cnf [ Cnf.neg eq; Cnf.neg l2; l1 ];
              (* same concrete value forces the bit. *)
              Cnf.add_clause env.cnf [ Cnf.neg l1; Cnf.neg l2; eq ])
            all_values
        done
      done;
      (* Transitivity over every triple. *)
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          for k = j + 1 to n - 1 do
            let ij = bit i j and jk = bit j k and ik = bit i k in
            Cnf.add_clause env.cnf [ Cnf.neg ij; Cnf.neg jk; ik ];
            Cnf.add_clause env.cnf [ Cnf.neg ij; Cnf.neg ik; jk ];
            Cnf.add_clause env.cnf [ Cnf.neg jk; Cnf.neg ik; ij ]
          done
        done
      done;
      check_size env)
    vars_of_class;
  (* Pairs linked across (or outside) the classes carry no equality
     constraint, so nothing can force their bit true except concrete
     values: one clause per shared domain value — same value forces the
     bit, which the Neq selector then refutes.  The eq → value-propagation
     directions are vacuous for such pairs (the bit can always be false)
     and are omitted; that keeps a k-variable distinctness clique at
     O(k² · |dom|) clauses with no transitivity triples at all. *)
  Hashtbl.iter
    (fun key ((v1 : Term.var), (v2 : Term.var), _) ->
      if find v1.Term.vid <> find v2.Term.vid then begin
        let eq =
          match Hashtbl.find_opt env.eq_bits key with
          | Some l -> l
          | None ->
            let l = Cnf.fresh_var env.cnf in
            Hashtbl.add env.eq_bits key l;
            l
        in
        List.iter
          (fun a ->
            if Hashtbl.mem env.value_lits (v2.Term.vid, a) then
              Cnf.add_clause env.cnf
                [ Cnf.neg (value_lit env v1 a); Cnf.neg (value_lit env v2 a); eq ])
          (values_of_var env v1);
        check_size env
      end)
    links

let rec encode_node env atom_selectors f =
  match f with
  | Formula.True ->
    let l = Cnf.fresh_var env.cnf in
    l
  | Formula.False ->
    let l = Cnf.fresh_var env.cnf in
    Cnf.add_clause env.cnf [ Cnf.neg l ];
    l
  | Formula.Atom _ ->
    (* Physical identity: every atom occurrence was minted exactly once. *)
    let rec find = function
      | [] -> assert false
      | (g, l) :: rest -> if g == f then l else find rest
    in
    find atom_selectors
  | Formula.Not_atom _ | Formula.Key_free _ ->
    raise (Unsupported "negative atoms are not SAT-encodable here")
  | Formula.Lt _ | Formula.Le _ ->
    raise (Unsupported "order constraints are not SAT-encodable here")
  | Formula.Eq (a, b) -> encode_eq env a b
  | Formula.Neq (a, b) -> encode_neq env a b
  | Formula.And fs ->
    let selector = Cnf.fresh_var env.cnf in
    List.iter
      (fun f ->
        let l = encode_node env atom_selectors f in
        Cnf.add_clause env.cnf [ Cnf.neg selector; l ])
      fs;
    check_size env;
    selector
  | Formula.Or fs ->
    let selector = Cnf.fresh_var env.cnf in
    let lits = List.map (encode_node env atom_selectors) fs in
    Cnf.add_clause env.cnf (Cnf.neg selector :: lits);
    check_size env;
    selector

type encoded = {
  cnf : Cnf.t;
  decode : bool array -> Subst.t;
}

let encode ?(budget = default_budget) db formula =
  let env =
    {
      cnf = Cnf.create ();
      db;
      budget;
      value_lits = Hashtbl.create 256;
      var_values = Hashtbl.create 64;
      atom_choices = [];
      eq_bits = Hashtbl.create 64;
    }
  in
  let atom_selectors = mint_atoms env formula [] in
  equalize_domains env formula;
  let root = encode_node env atom_selectors formula in
  Cnf.add_clause env.cnf [ root ];
  let choices = env.atom_choices in
  let value_lits = Hashtbl.fold (fun k l acc -> (k, l) :: acc) env.value_lits [] in
  let decode model =
    (* Recover bindings from the value literals; tuple-choice literals are
       implied and need no separate walk. *)
    let subst =
      List.fold_left
        (fun acc ((vid, value), l) ->
          if model.(l) then
            (* Reconstruct a variable with the right id; names are lost in
               the key but irrelevant for identity. *)
            Subst.bind { Term.vname = "x"; vid } (Term.C value) acc
          else acc)
        Subst.empty value_lits
    in
    ignore choices;
    subst
  in
  { cnf = env.cnf; decode }

let satisfiable ?budget ?node_limit ?deadline_ns db formula =
  match formula with
  | Formula.True -> Some true
  | Formula.False -> Some false
  | _ ->
    (match encode ?budget db formula with
     | { cnf; _ } ->
       (match Dpll.solve ?node_limit ?deadline_ns (Cnf.clauses cnf) with
        | Dpll.Sat _ -> Some true
        | Dpll.Unsat -> Some false)
     | exception Too_large -> None)

let solve ?budget ?node_limit ?deadline_ns db formula =
  match encode ?budget db formula with
  | { cnf; decode } ->
    (match Dpll.solve ?node_limit ?deadline_ns (Cnf.clauses cnf) with
     | Dpll.Sat model -> Some (Some (decode model))
     | Dpll.Unsat -> Some None)
  | exception Too_large -> None

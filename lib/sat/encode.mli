(** CNF encoding of composed-body satisfiability — the ablation backend for
    the paper's Section 6 SAT/SMT-offloading proposal. *)

exception Unsupported of string
(** Raised on formulas with negative atoms (not SAT-encodable eagerly). *)

exception Too_large

type budget = {
  max_candidates_per_atom : int;
  max_clauses : int;
}

val default_budget : budget

type encoded = {
  cnf : Cnf.t;
  decode : bool array -> Logic.Subst.t;
}

val encode : ?budget:budget -> Relational.Database.t -> Logic.Formula.t -> encoded
(** @raise Too_large when the instance exceeds the budget.
    @raise Unsupported on negative atoms. *)

val satisfiable :
  ?budget:budget ->
  ?node_limit:int ->
  ?deadline_ns:int64 ->
  Relational.Database.t ->
  Logic.Formula.t ->
  bool option
(** [Some verdict], or [None] when the encoding exceeded its budget.
    [node_limit]/[deadline_ns] bound the DPLL run
    ({!Dpll.Too_many_nodes} / {!Dpll.Timed_out}). *)

val solve :
  ?budget:budget ->
  ?node_limit:int ->
  ?deadline_ns:int64 ->
  Relational.Database.t ->
  Logic.Formula.t ->
  Logic.Subst.t option option
(** [Some (Some subst)] with a decoded witness, [Some None] when
    unsatisfiable, [None] when over budget.  Budget hooks as in
    {!satisfiable}. *)

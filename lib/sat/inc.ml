(* Incremental CNF session: {!Encode}'s eager encoding re-cast as a
   persistent delta against a live {!Cdcl} instance.

   One session serves every admission check of an engine.  Each
   per-transaction chunk of a composed body (the same chunks
   [Compose.Inc] keeps) is encoded once, gated behind a fresh activation
   literal — only the chunk's root assertion is conditional
   ([¬act ∨ root]); every other clause the encoder emits (selector →
   choices, at-most-one, choice → value, value exclusions, equality
   theory) is vacuously satisfiable with its selectors false, so it is
   added unconditionally and shared.  A check then solves under the
   activation literals of exactly the live chunks: a rejected admission
   leaves its chunk's clauses behind as inert garbage, the next check
   simply assumes a different activation set, and everything the solver
   learned — including across partitions, which share nothing but the
   store — stays.

   Two things can invalidate an encoded chunk:
   - staleness: candidate tuples are looked up at encode time, so a chunk
     is keyed to the versions of the tables it read (groundings, blind
     writes and — for dependence atoms — pending-table inserts bump
     them); a stale chunk is re-encoded fresh under a new activation
     literal, and the old gating literal is simply never assumed again;
   - the clause budget: when accumulated garbage exceeds
     [budget.max_clauses] the whole session is rebuilt from the live
     chunks (learned clauses are the only loss — correctness never
     depends on them).

   The equality theory ({!Encode.equalize_domains}) is repaired rather
   than rebuilt: (dis)equality links accumulate across chunks, the
   union-find closure over *equality* links is recomputed per push, and
   only theory clauses not yet emitted are added — sound because every
   theory clause is a monotone conditional addition.  Pairs linked only
   by disequalities (the pairwise distinctness web across a partition's
   resource variables) stay out of the classes: nothing can force their
   equality bit true except concrete values, so they get one
   same-value → bit clause per shared domain value and no transitivity,
   which keeps a k-variable clique at O(k² · |dom|) clauses instead of
   blowing the class-size cap. *)

module Value = Relational.Value
module Table = Relational.Table
module Database = Relational.Database
open Logic

type verdict =
  | V_sat of Subst.t
      (* decoded model over every value literal in the session; the
         caller restricts to the variables it cares about *)
  | V_unsat
  | V_unsupported of string  (* not (re-)encodable: fall back *)

type chunk_entry = {
  act : int;
  deps : (string * int) list;  (* table versions read at encode time *)
  link_vids : int list;  (* vars this chunk put into equality links *)
  clauses : int;  (* clauses this chunk's encode added (incl. AMO) *)
}

type t = {
  budget : Encode.budget;
  mutable solver : Cdcl.t;
  value_lits : (int * Value.t, int) Hashtbl.t;
  var_values : (int, Value.t list ref) Hashtbl.t;
  eq_bits : (int * int, int) Hashtbl.t;
  (* per variable id: the tail of its at-most-one ladder (see
     [value_lit]) *)
  amo_tail : (int, int) Hashtbl.t;
  chunks : (Formula.t, chunk_entry) Hashtbl.t;
  failed : (Formula.t, string) Hashtbl.t;
  (* (lo vid, hi vid) -> the pair and whether any chunk links it by
     equality (only those merge union-find classes) *)
  links : (int * int, Term.var * Term.var * bool ref) Hashtbl.t;
  bridged : (int * int * Value.t, unit) Hashtbl.t;
  trans : (int * int * int, unit) Hashtbl.t;
  (* per cross-class pair: domain sizes already swept for same-value
     clauses, so a repair only walks values minted since the last one *)
  pair_done : (int * int, int * int) Hashtbl.t;
  (* members of equality classes too large to encode eagerly — checks
     whose chunks touch one of these fall back instead of solving with an
     incomplete theory *)
  oversized : (int, unit) Hashtbl.t;
  mutable added_clauses : int;
  mutable theory_clauses : int;  (* live subset of [added_clauses] from repairs *)
  mutable resets : int;
  mutable retired : Cdcl.stats;  (* stats folded in from replaced solvers *)
}

exception Chunk_failed of string

let create ?(budget = Encode.default_budget) () =
  {
    budget;
    solver = Cdcl.create ();
    value_lits = Hashtbl.create 256;
    var_values = Hashtbl.create 64;
    amo_tail = Hashtbl.create 64;
    eq_bits = Hashtbl.create 64;
    chunks = Hashtbl.create 64;
    failed = Hashtbl.create 16;
    links = Hashtbl.create 64;
    bridged = Hashtbl.create 256;
    trans = Hashtbl.create 64;
    pair_done = Hashtbl.create 64;
    oversized = Hashtbl.create 16;
    added_clauses = 0;
    theory_clauses = 0;
    resets = 0;
    retired =
      {
        Cdcl.conflicts = 0;
        decisions = 0;
        propagations = 0;
        restarts = 0;
        learned = 0;
        minimized = 0;
      };
  }

let resets t = t.resets

let stats t =
  let s = Cdcl.stats t.solver and r = t.retired in
  {
    Cdcl.conflicts = s.Cdcl.conflicts + r.Cdcl.conflicts;
    decisions = s.Cdcl.decisions + r.Cdcl.decisions;
    propagations = s.Cdcl.propagations + r.Cdcl.propagations;
    restarts = s.Cdcl.restarts + r.Cdcl.restarts;
    learned = s.Cdcl.learned + r.Cdcl.learned;
    minimized = s.Cdcl.minimized + r.Cdcl.minimized;
  }

let live_clauses t = t.added_clauses

let reset t =
  t.retired <- stats t;
  t.solver <- Cdcl.create ();
  Hashtbl.reset t.value_lits;
  Hashtbl.reset t.var_values;
  Hashtbl.reset t.amo_tail;
  Hashtbl.reset t.eq_bits;
  Hashtbl.reset t.chunks;
  Hashtbl.reset t.failed;
  Hashtbl.reset t.links;
  Hashtbl.reset t.bridged;
  Hashtbl.reset t.trans;
  Hashtbl.reset t.pair_done;
  Hashtbl.reset t.oversized;
  t.added_clauses <- 0;
  t.theory_clauses <- 0;
  t.resets <- t.resets + 1

let add_clause t lits =
  Cdcl.add_clause t.solver lits;
  t.added_clauses <- t.added_clauses + 1

let value_lit t (v : Term.var) value =
  let key = (v.Term.vid, value) in
  match Hashtbl.find_opt t.value_lits key with
  | Some l -> l
  | None ->
    let l = Cdcl.new_var t.solver in
    Hashtbl.add t.value_lits key l;
    let known =
      match Hashtbl.find_opt t.var_values v.Term.vid with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add t.var_values v.Term.vid r;
        r
    in
    (* A variable takes at most one value — an incrementally grown
       sequential ladder: [s_i] means "one of the first i values is
       chosen", so each new value costs 3 clauses however many values the
       variable has accumulated across chunks (pairwise exclusion would
       cost one clause per prior value, quadratic over a partition's
       shared domain). *)
    let s = Cdcl.new_var t.solver in
    add_clause t [| -l; s |];
    (match Hashtbl.find_opt t.amo_tail v.Term.vid with
     | None -> ()
     | Some s_prev ->
       add_clause t [| -s_prev; s |];
       add_clause t [| -l; -s_prev |]);
    Hashtbl.replace t.amo_tail v.Term.vid s;
    known := value :: !known;
    l

let values_of_var t (v : Term.var) =
  match Hashtbl.find_opt t.var_values v.Term.vid with
  | Some r -> !r
  | None -> []

let eq_bit t (v1 : Term.var) (v2 : Term.var) =
  let key = (min v1.Term.vid v2.Term.vid, max v1.Term.vid v2.Term.vid) in
  match Hashtbl.find_opt t.eq_bits key with
  | Some l -> l
  | None ->
    let l = Cdcl.new_var t.solver in
    Hashtbl.add t.eq_bits key l;
    l

(* --- per-chunk encoding (the {!Encode} passes, session-ified) --- *)

type chunk_ctx = {
  mutable deps : (string * int) list;
  mutable chunk_clauses : int;
  mutable atom_selectors : (Formula.t * int) list;
  mutable link_vids : int list;
}

let chunk_clause t ctx lits =
  ctx.chunk_clauses <- ctx.chunk_clauses + 1;
  if ctx.chunk_clauses > t.budget.Encode.max_clauses then
    raise (Chunk_failed "sat chunk exceeds clause budget");
  add_clause t lits

let record_dep ctx db rel =
  let version =
    match Database.find_table db rel with
    | Some table -> Table.version table
    | None -> -1
  in
  if not (List.mem (rel, version) ctx.deps) then ctx.deps <- (rel, version) :: ctx.deps

let encode_atom t ctx db (a : Atom.t) =
  let selector = Cdcl.new_var t.solver in
  record_dep ctx db a.Atom.rel;
  (match Database.find_table db a.Atom.rel with
   | None -> chunk_clause t ctx [| -selector |]
   | Some table ->
     let candidates = Table.lookup table (Atom.to_pattern a) in
     if List.length candidates > t.budget.Encode.max_candidates_per_atom then
       raise (Chunk_failed "sat atom candidate budget exceeded");
     let choice_lits =
       List.map
         (fun tuple ->
           let b = Cdcl.new_var t.solver in
           Array.iteri
             (fun i term ->
               match term with
               | Term.V v -> chunk_clause t ctx [| -b; value_lit t v tuple.(i) |]
               | Term.C _ -> ())
             a.Atom.args;
           b)
         candidates
     in
     (match choice_lits with
      | [] -> chunk_clause t ctx [| -selector |]
      | _ ->
        chunk_clause t ctx (Array.of_list (-selector :: choice_lits));
        (* at-most-one over the choices: sequential ladder, 3 clauses per
           choice instead of a quadratic pairwise web *)
        let prev = ref 0 in
        List.iter
          (fun b ->
            let s = Cdcl.new_var t.solver in
            chunk_clause t ctx [| -b; s |];
            if !prev <> 0 then begin
              chunk_clause t ctx [| - !prev; s |];
              chunk_clause t ctx [| -b; - !prev |]
            end;
            prev := s)
          choice_lits));
  selector

let encode_eq t ctx (t1 : Term.t) (t2 : Term.t) =
  let selector = Cdcl.new_var t.solver in
  (match t1, t2 with
   | Term.C a, Term.C b ->
     if not (Value.equal a b) then chunk_clause t ctx [| -selector |]
   | Term.V v, Term.C c | Term.C c, Term.V v ->
     chunk_clause t ctx [| -selector; value_lit t v c |];
     List.iter
       (fun value ->
         if not (Value.equal value c) then
           chunk_clause t ctx [| -selector; -value_lit t v value |])
       (values_of_var t v)
   | Term.V v1, Term.V v2 ->
     if not (Term.equal_var v1 v2) then
       chunk_clause t ctx [| -selector; eq_bit t v1 v2 |]);
  selector

let encode_neq t ctx (t1 : Term.t) (t2 : Term.t) =
  let selector = Cdcl.new_var t.solver in
  (match t1, t2 with
   | Term.C a, Term.C b -> if Value.equal a b then chunk_clause t ctx [| -selector |]
   | Term.V v, Term.C c | Term.C c, Term.V v ->
     chunk_clause t ctx [| -selector; -value_lit t v c |]
   | Term.V v1, Term.V v2 ->
     if Term.equal_var v1 v2 then chunk_clause t ctx [| -selector |]
     else chunk_clause t ctx [| -selector; -eq_bit t v1 v2 |]);
  selector

let rec mint_atoms t ctx db f =
  match f with
  | Formula.Atom a -> ctx.atom_selectors <- (f, encode_atom t ctx db a) :: ctx.atom_selectors
  | Formula.And fs | Formula.Or fs -> List.iter (mint_atoms t ctx db) fs
  | Formula.Not_atom _ | Formula.Key_free _ ->
    raise (Chunk_failed "negative atoms are not SAT-encodable here")
  | Formula.Lt _ | Formula.Le _ ->
    raise (Chunk_failed "order constraints are not SAT-encodable here")
  | Formula.True | Formula.False | Formula.Eq _ | Formula.Neq _ -> ()

(* Collect the chunk's var-const value mints and var-var links into the
   session-wide link set ({!Encode.equalize_domains}'s walk). *)
let record_link t ctx (v1 : Term.var) (v2 : Term.var) ~eq =
  let key = (min v1.Term.vid v2.Term.vid, max v1.Term.vid v2.Term.vid) in
  (match Hashtbl.find_opt t.links key with
   | Some (_, _, has_eq) -> if eq then has_eq := true
   | None -> Hashtbl.add t.links key (v1, v2, ref eq));
  ctx.link_vids <- v1.Term.vid :: v2.Term.vid :: ctx.link_vids

let rec collect_links t ctx f =
  match f with
  | Formula.True | Formula.False | Formula.Atom _ | Formula.Not_atom _
  | Formula.Key_free _ -> ()
  | Formula.Eq (Term.V v, Term.C c)
  | Formula.Eq (Term.C c, Term.V v)
  | Formula.Neq (Term.V v, Term.C c)
  | Formula.Neq (Term.C c, Term.V v) ->
    ignore ctx;
    ignore (value_lit t v c)
  | Formula.Eq (Term.V v1, Term.V v2) ->
    if not (Term.equal_var v1 v2) then record_link t ctx v1 v2 ~eq:true
  | Formula.Neq (Term.V v1, Term.V v2) ->
    if not (Term.equal_var v1 v2) then record_link t ctx v1 v2 ~eq:false
  | Formula.Eq _ | Formula.Neq _ | Formula.Lt _ | Formula.Le _ -> ()
  | Formula.And fs | Formula.Or fs -> List.iter (collect_links t ctx) fs

let rec encode_node t ctx f =
  match f with
  | Formula.True -> Cdcl.new_var t.solver
  | Formula.False ->
    let l = Cdcl.new_var t.solver in
    chunk_clause t ctx [| -l |];
    l
  | Formula.Atom _ ->
    let rec find = function
      | [] -> assert false
      | (g, l) :: rest -> if g == f then l else find rest
    in
    find ctx.atom_selectors
  | Formula.Not_atom _ | Formula.Key_free _ ->
    raise (Chunk_failed "negative atoms are not SAT-encodable here")
  | Formula.Lt _ | Formula.Le _ ->
    raise (Chunk_failed "order constraints are not SAT-encodable here")
  | Formula.Eq (a, b) -> encode_eq t ctx a b
  | Formula.Neq (a, b) -> encode_neq t ctx a b
  | Formula.And fs ->
    let selector = Cdcl.new_var t.solver in
    List.iter
      (fun f ->
        let l = encode_node t ctx f in
        chunk_clause t ctx [| -selector; l |])
      fs;
    selector
  | Formula.Or fs ->
    let selector = Cdcl.new_var t.solver in
    let lits = List.map (encode_node t ctx) fs in
    chunk_clause t ctx (Array.of_list (-selector :: lits));
    selector

(* Recompute the union-find closure over the *equality* links seen so far
   and emit whatever theory clauses are still missing.  Equality classes
   get the full treatment (domain equalization, pairwise value bridging,
   transitivity) under the class-size cap — unification keeps them tiny.
   Pairs linked only by disequalities stay outside the classes: nothing
   can force their equality bit true except concrete values, so they get
   one same-value → bit clause per shared domain value, no propagation
   directions, no transitivity and no cap — a k-variable distinctness
   clique costs O(k² · |dom|) clauses instead of blowing the cap. *)
let repair_equality_theory t =
  let before = t.added_clauses in
  let parent = Hashtbl.create 16 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | Some p when p <> v ->
      let root = find p in
      Hashtbl.replace parent v root;
      root
    | _ -> v
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  Hashtbl.iter
    (fun _ ((v1 : Term.var), (v2 : Term.var), has_eq) ->
      if !has_eq then union v1.Term.vid v2.Term.vid)
    t.links;
  let vars_of_class = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ ((v1 : Term.var), (v2 : Term.var), has_eq) ->
      if !has_eq then
        List.iter
          (fun (v : Term.var) ->
            let root = find v.Term.vid in
            let members = Option.value ~default:[] (Hashtbl.find_opt vars_of_class root) in
            if not (List.exists (fun (m : Term.var) -> m.Term.vid = v.Term.vid) members)
            then Hashtbl.replace vars_of_class root (v :: members))
          [ v1; v2 ])
    t.links;
  Hashtbl.iter
    (fun _root members ->
      try
      let all_values =
        List.sort_uniq Value.compare (List.concat_map (values_of_var t) members)
      in
      List.iter
        (fun v -> List.iter (fun value -> ignore (value_lit t v value)) all_values)
        members;
      let members = Array.of_list members in
      let n = Array.length members in
      if n > 16 then begin
        (* Too big to bridge eagerly: poison the class's variables so any
           check whose chunks touch them falls back, and emit nothing
           (never solve against a half-built theory). *)
        Array.iter (fun (v : Term.var) -> Hashtbl.replace t.oversized v.Term.vid ()) members;
        raise Exit
      end;
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let v1 = members.(i) and v2 = members.(j) in
          let lo = min v1.Term.vid v2.Term.vid and hi = max v1.Term.vid v2.Term.vid in
          let eq = eq_bit t v1 v2 in
          List.iter
            (fun a ->
              if not (Hashtbl.mem t.bridged (lo, hi, a)) then begin
                Hashtbl.add t.bridged (lo, hi, a) ();
                let l1 = value_lit t v1 a and l2 = value_lit t v2 a in
                add_clause t [| -eq; -l1; l2 |];
                add_clause t [| -eq; -l2; l1 |];
                add_clause t [| -l1; -l2; eq |]
              end)
            all_values
        done
      done;
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          for k = j + 1 to n - 1 do
            let ids =
              List.sort compare
                [ members.(i).Term.vid; members.(j).Term.vid; members.(k).Term.vid ]
            in
            let key =
              match ids with [ a; b; c ] -> (a, b, c) | _ -> assert false
            in
            if not (Hashtbl.mem t.trans key) then begin
              Hashtbl.add t.trans key ();
              let ij = eq_bit t members.(i) members.(j)
              and jk = eq_bit t members.(j) members.(k)
              and ik = eq_bit t members.(i) members.(k) in
              add_clause t [| -ij; -jk; ik |];
              add_clause t [| -ij; -ik; jk |];
              add_clause t [| -jk; -ik; ij |]
            end
          done
        done
      done
      with Exit -> ())
    vars_of_class;
  (* Cross-class pairs: sweep only the domain values minted since this
     pair's last repair (fresh values sit at the head of each domain
     list), emitting the same-value → bit clause when the value exists on
     both sides.  A value already swept from one side is re-considered
     when it later appears on the other, so coverage stays exact as
     domains grow chunk by chunk. *)
  Hashtbl.iter
    (fun key ((v1 : Term.var), (v2 : Term.var), _) ->
      if find v1.Term.vid <> find v2.Term.vid then begin
        let d1 = values_of_var t v1 and d2 = values_of_var t v2 in
        let n1 = List.length d1 and n2 = List.length d2 in
        let p1, p2 = Option.value ~default:(0, 0) (Hashtbl.find_opt t.pair_done key) in
        if n1 > p1 || n2 > p2 then begin
          let eq = eq_bit t v1 v2 in
          let emit a = add_clause t [| -value_lit t v1 a; -value_lit t v2 a; eq |] in
          let fresh1 = Hashtbl.create 8 in
          List.iteri
            (fun i a ->
              if i < n1 - p1 then begin
                Hashtbl.replace fresh1 a ();
                if Hashtbl.mem t.value_lits (v2.Term.vid, a) then emit a
              end)
            d1;
          List.iteri
            (fun i a ->
              if
                i < n2 - p2
                && (not (Hashtbl.mem fresh1 a))
                && Hashtbl.mem t.value_lits (v1.Term.vid, a)
              then emit a)
            d2;
          Hashtbl.replace t.pair_done key (n1, n2)
        end
      end)
    t.links;
  t.theory_clauses <- t.theory_clauses + (t.added_clauses - before)

let encode_chunk t db chunk =
  let before = t.added_clauses in
  let ctx = { deps = []; chunk_clauses = 0; atom_selectors = []; link_vids = [] } in
  mint_atoms t ctx db chunk;
  collect_links t ctx chunk;
  let root = encode_node t ctx chunk in
  let act = Cdcl.new_var t.solver in
  add_clause t [| -act; root |];
  Hashtbl.replace t.chunks chunk
    {
      act;
      deps = ctx.deps;
      link_vids = ctx.link_vids;
      clauses = t.added_clauses - before;
    };
  act

let deps_fresh db deps =
  List.for_all
    (fun (rel, version) ->
      let current =
        match Database.find_table db rel with
        | Some table -> Table.version table
        | None -> -1
      in
      current = version)
    deps

let check ?conflict_limit ?deadline_ns t db ~chunks =
  match
    List.find_opt (fun chunk -> Hashtbl.mem t.failed chunk) chunks
  with
  | Some chunk -> V_unsupported (Hashtbl.find t.failed chunk)
  | None ->
    (* The clause budget bounds *garbage* (clauses gated by retired
       activation literals), not the live working set: rebuild only when
       the solver holds more than twice the clauses the cached chunks
       account for, and has outgrown the nominal budget.  A legitimately
       large live body stays resident instead of thrashing through a
       rebuild per check. *)
    let live =
      Hashtbl.fold (fun _ e acc -> acc + e.clauses) t.chunks 0 + t.theory_clauses
    in
    if t.added_clauses > t.budget.Encode.max_clauses && t.added_clauses > 2 * live then reset t;
    (* Encode what's missing (new chunks, or chunks whose tables moved
       under them), then repair the shared equality theory once. *)
    let result =
      try
        let encoded_any = ref false in
        let acts =
          List.map
            (fun chunk ->
              match Hashtbl.find_opt t.chunks chunk with
              | Some entry when deps_fresh db entry.deps -> entry.act
              | Some _ | None ->
                (* Stale entries are dropped; the old activation literal
                   is simply never assumed again, so the garbage clauses
                   it gates stay inert. *)
                Hashtbl.remove t.chunks chunk;
                encoded_any := true;
                (try encode_chunk t db chunk
                 with Chunk_failed why ->
                   Hashtbl.replace t.failed chunk why;
                   raise (Chunk_failed why)))
            chunks
        in
        if !encoded_any then repair_equality_theory t;
        Ok acts
      with Chunk_failed why -> Error why
    in
    (match result with
     | Error why -> V_unsupported why
     | Ok assumptions ->
       let touches_oversized =
         Hashtbl.length t.oversized > 0
         && List.exists
              (fun chunk ->
                match Hashtbl.find_opt t.chunks chunk with
                | Some entry ->
                  List.exists (fun vid -> Hashtbl.mem t.oversized vid) entry.link_vids
                | None -> false)
              chunks
       in
       if touches_oversized then V_unsupported "equality class too large to SAT-encode"
       else begin
         match Cdcl.solve ?conflict_limit ?deadline_ns ~assumptions t.solver with
         | Cdcl.Unsat -> V_unsat
         | Cdcl.Sat ->
           let subst =
             Hashtbl.fold
               (fun (vid, value) l acc ->
                 if Cdcl.value t.solver l then
                   Subst.bind { Term.vname = "x"; vid } (Term.C value) acc
                 else acc)
               t.value_lits Subst.empty
           in
           V_sat subst
       end)

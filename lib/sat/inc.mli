(** Incremental CNF session: {!Encode} re-cast as a persistent delta
    against one live {!Cdcl} instance, for incremental solving under
    assumptions.

    Per-transaction chunks of a composed body are encoded once and gated
    behind activation literals; a check solves under exactly the live
    chunks' activations, so learned clauses survive across admissions and
    a rejected chunk's clauses stay behind as inert garbage.  Chunks are
    keyed to the table versions they read and re-encoded when those move;
    the session rebuilds itself when accumulated garbage exceeds the
    clause budget. *)

type t

type verdict =
  | V_sat of Logic.Subst.t
      (** decoded model over every value literal the session holds —
          restrict to the variables of interest before use *)
  | V_unsat  (** unsatisfiable under the live chunks *)
  | V_unsupported of string
      (** a chunk is not (re-)encodable — negative atoms, order
          constraints, candidate/clause budget, oversized equality class;
          the caller falls back to another backend *)

val create : ?budget:Encode.budget -> unit -> t

val check :
  ?conflict_limit:int ->
  ?deadline_ns:int64 ->
  t ->
  Relational.Database.t ->
  chunks:Logic.Formula.t list ->
  verdict
(** Is the conjunction of [chunks] satisfiable against [db]?  Encodes
    whatever is missing, then solves under the chunks' activation
    literals.  @raise Cdcl.Conflict_budget_exceeded and
    @raise Cdcl.Timed_out on budget blowups (the session stays usable —
    the governor ladder owns the retry). *)

val stats : t -> Cdcl.stats
(** Cumulative across the session's lifetime, including solver rebuilds. *)

val resets : t -> int
(** How many times the clause budget forced a session rebuild. *)

val live_clauses : t -> int
(** Clauses pushed into the current solver instance (including inert
    garbage — the rebuild trigger). *)

val reset : t -> unit
(** Drop everything (chunks, theory, learned clauses) and start from an
    empty solver; cumulative {!stats} are preserved. *)

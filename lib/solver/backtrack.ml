(* Grounding search: find a valuation of a composed-body formula over the
   extensional database, or report that none exists.

   This is the satisfiability checker at the heart of the quantum database
   invariant (Section 3.2.1).  The paper's prototype compiles the composed
   body to a LIMIT 1 SQL query; we search directly with the same effect —
   an indexed nested-loop join that stops at the first answer:

   - equalities are unified eagerly (union-find style via Subst),
   - positive atoms are choice points enumerated through table indexes,
     picked most-constrained-first (smallest candidate estimate),
   - OR nodes (from unification predicates of inserts) are choice points
     over branches,
   - disequalities and negated atoms are deferred until ground, then
     checked; constraints still non-ground when all atoms are placed are
     vacuously satisfiable because the value universe is unbounded and the
     remaining variables are otherwise unconstrained. *)

module Value = Relational.Value
module Table = Relational.Table
module Database = Relational.Database
open Logic

type stats = {
  mutable nodes : int; (* choice points expanded *)
  mutable candidates : int; (* tuples / branches tried *)
  mutable backtracks : int;
  mutable propagations : int;
}

let fresh_stats () = { nodes = 0; candidates = 0; backtracks = 0; propagations = 0 }

let add_stats ~into s =
  into.nodes <- into.nodes + s.nodes;
  into.candidates <- into.candidates + s.candidates;
  into.backtracks <- into.backtracks + s.backtracks;
  into.propagations <- into.propagations + s.propagations

exception Too_many_nodes
exception Timed_out

(* Deadline checks are amortized: the monotonic clock is read once per
   [deadline_stride] expanded nodes, so an armed deadline costs one land
   and compare per choice point on the hot path. *)
let deadline_stride = 256

let check_deadline deadline_ns nodes =
  match deadline_ns with
  | None -> ()
  | Some d ->
    if nodes land (deadline_stride - 1) = 0 && Int64.compare (Obs.Mclock.now_ns ()) d > 0 then
      raise Timed_out

(* Internal goals after decomposing the conjunctive structure. *)
type goal =
  | G_atom of Atom.t
  | G_or of Formula.t list
  | G_neq of Term.t * Term.t
  | G_not_atom of Atom.t
  | G_key_free of Atom.t
  | G_lt of Term.t * Term.t
  | G_le of Term.t * Term.t

(* Decompose a conjunction into goals, preserving formula order: ties in
   the branching heuristic fall back to list order, so callers can put the
   most conflict-prone obligations first (the grounding path relies on
   this to keep failures shallow). *)
let goals_of_formula f init =
  let rec go f acc =
    match f with
    | Formula.True -> Some acc
    | Formula.False -> None
    | Formula.Atom a -> Some (G_atom a :: acc)
    | Formula.Not_atom a -> Some (G_not_atom a :: acc)
    | Formula.Key_free a -> Some (G_key_free a :: acc)
    | Formula.Eq _ ->
      (* Equalities are consumed by propagation before decomposition; keep
         them as a one-branch Or so the generic path handles stragglers. *)
      Some (G_or [ f ] :: acc)
    | Formula.Neq (t1, t2) -> Some (G_neq (t1, t2) :: acc)
    | Formula.Lt (t1, t2) -> Some (G_lt (t1, t2) :: acc)
    | Formula.Le (t1, t2) -> Some (G_le (t1, t2) :: acc)
    | Formula.And fs -> List.fold_left (fun acc f -> Option.bind acc (go f)) (Some acc) fs
    | Formula.Or fs -> Some (G_or fs :: acc)
  in
  Option.map (fun gs -> List.rev_append gs init) (go f [])

(* Simplify a formula under the current bindings; cheap and local. *)
let simplify subst f = Formula.apply_subst subst f

(* One propagation pass over the goal list.  Returns [None] on conflict,
   otherwise the simplified remaining goals and the extended substitution.
   [changed] reports whether anything was learned, so the caller can run to
   a fixpoint. *)
let propagate db stats subst goals =
  let changed = ref false in
  let rec go subst acc = function
    | [] -> Some (subst, List.rev acc, !changed)
    | G_atom a :: rest ->
      let a = Subst.apply_atom subst a in
      if Atom.is_ground a then begin
        stats.propagations <- stats.propagations + 1;
        changed := true;
        if Database.mem_tuple db a.Atom.rel (Atom.to_tuple a) then go subst acc rest
        else None
      end
      else go subst (G_atom a :: acc) rest
    | G_neq (t1, t2) :: rest ->
      (match Formula.neq (Subst.resolve subst t1) (Subst.resolve subst t2) with
       | Formula.True ->
         changed := true;
         go subst acc rest
       | Formula.False -> None
       | Formula.Neq (t1, t2) -> go subst (G_neq (t1, t2) :: acc) rest
       | _ -> assert false)
    | G_lt (t1, t2) :: rest ->
      (match Formula.lt (Subst.resolve subst t1) (Subst.resolve subst t2) with
       | Formula.True ->
         changed := true;
         go subst acc rest
       | Formula.False -> None
       | Formula.Lt (t1, t2) -> go subst (G_lt (t1, t2) :: acc) rest
       | _ -> assert false)
    | G_le (t1, t2) :: rest ->
      (match Formula.le (Subst.resolve subst t1) (Subst.resolve subst t2) with
       | Formula.True ->
         changed := true;
         go subst acc rest
       | Formula.False -> None
       | Formula.Le (t1, t2) -> go subst (G_le (t1, t2) :: acc) rest
       | _ -> assert false)
    | G_not_atom a :: rest ->
      let a = Subst.apply_atom subst a in
      if Atom.is_ground a then begin
        changed := true;
        if Database.mem_tuple db a.Atom.rel (Atom.to_tuple a) then None else go subst acc rest
      end
      else go subst (G_not_atom a :: acc) rest
    | G_key_free a :: rest ->
      let a = Subst.apply_atom subst a in
      if Atom.is_ground a then begin
        changed := true;
        if Database.key_occupied db a.Atom.rel (Atom.to_tuple a) then None
        else go subst acc rest
      end
      else go subst (G_key_free a :: acc) rest
    | G_or fs :: rest ->
      let fs = List.map (simplify subst) fs in
      (match Formula.or_ fs with
       | Formula.True ->
         changed := true;
         go subst acc rest
       | Formula.False -> None
       | Formula.Eq (t1, t2) ->
         (* The disjunction collapsed to a single equality: unify now. *)
         changed := true;
         (match Unify.unify_terms subst t1 t2 with
          | Some subst -> go subst acc rest
          | None -> None)
       | Formula.And _ as f ->
         (* Collapsed to one branch: splice its goals in. *)
         changed := true;
         (match goals_of_formula f [] with
          | Some gs -> go subst acc (gs @ rest)
          | None -> None)
       | Formula.Atom a ->
         changed := true;
         go subst acc (G_atom a :: rest)
       | Formula.Not_atom a ->
         changed := true;
         go subst acc (G_not_atom a :: rest)
       | Formula.Key_free a ->
         changed := true;
         go subst acc (G_key_free a :: rest)
       | Formula.Neq (t1, t2) ->
         changed := true;
         go subst acc (G_neq (t1, t2) :: rest)
       | Formula.Lt (t1, t2) ->
         changed := true;
         go subst acc (G_lt (t1, t2) :: rest)
       | Formula.Le (t1, t2) ->
         changed := true;
         go subst acc (G_le (t1, t2) :: rest)
       | Formula.Or fs -> go subst (G_or fs :: acc) rest)
  in
  go subst [] goals

let rec propagate_fix db stats subst goals =
  match propagate db stats subst goals with
  | None -> None
  | Some (subst', goals', changed) ->
    if changed then propagate_fix db stats subst' goals' else Some (subst', goals')

(* Estimate cache for one solve call: [pick_branch] re-ranks every goal at
   every choice point, and distinct goals with the same post-substitution
   (relation, pattern) shape share one [Table.estimate_matches] answer.
   Entries remember the table version they were computed at, so a table
   mutation invalidates them (a stale entry misses instead of lying). *)
type est_cache = (string * Table.pattern, int * int) Hashtbl.t

(* Candidate estimate for branching choice, through the cache. *)
let atom_estimate_cached db (cache : est_cache) subst a =
  let a = Subst.apply_atom subst a in
  match Database.find_table db a.Atom.rel with
  | None -> 0
  | Some table ->
    let pat = Atom.to_pattern a in
    let key = (a.Atom.rel, pat) in
    let version = Table.version table in
    (match Hashtbl.find_opt cache key with
     | Some (v, est) when v = version -> est
     | _ ->
       let est = Table.estimate_matches table pat in
       Hashtbl.replace cache key (version, est);
       est)

(* Does any branch of the disjunction contain a positive atom?  Such OR
   nodes are *generators* (e.g. ground-on-db vs ground-on-pending-insert
   options) and are worth branching early; OR nodes made purely of
   (dis)equalities are *constraints* (negated unification predicates) and
   branching them first multiplies the search by 2^#pairs — they must be
   left to propagation, which decides them as atoms ground. *)
let rec formula_has_atom = function
  | Formula.Atom _ -> true
  | Formula.And fs | Formula.Or fs -> List.exists formula_has_atom fs
  | Formula.True | Formula.False | Formula.Not_atom _ | Formula.Key_free _ | Formula.Eq _
  | Formula.Neq _ | Formula.Lt _ | Formula.Le _ -> false

(* Pick the goal to branch on: the positive atom or generator-OR node with
   the fewest alternatives; constraint-OR nodes only when nothing else is
   left.  Returns the goal and the list without it. *)
let pick_branch db cache subst goals =
  let best = ref None and fallback = ref None in
  let consider cell goal cost =
    match !cell with
    | Some (_, c) when c <= cost -> ()
    | _ -> cell := Some (goal, cost)
  in
  (try
     List.iter
       (fun goal ->
         match goal with
         | G_atom a ->
           let cost = atom_estimate_cached db cache subst a in
           consider best goal cost;
           (* An empty candidate set cannot be beaten, and ties break to
              the first goal in list order either way: stop scanning.
              (OR goals always cost >= 1, so this is the global minimum.) *)
           if cost = 0 then raise Exit
         | G_or fs ->
           if List.exists formula_has_atom fs then consider best goal (List.length fs)
           else consider fallback goal (List.length fs)
         | G_neq _ | G_not_atom _ | G_key_free _ | G_lt _ | G_le _ -> ())
       goals
   with Exit -> ());
  let chosen =
    match !best with
    | Some _ as b -> b
    | None -> !fallback
  in
  match chosen with
  | None -> None
  | Some (goal, _) ->
    let removed = ref false in
    let rest =
      List.filter
        (fun g ->
          if (not !removed) && g == goal then begin
            removed := true;
            false
          end
          else true)
        goals
    in
    Some (goal, rest)

let default_node_limit = 2_000_000

let solve_goals ?(node_limit = default_node_limit) ?deadline_ns db stats subst goals =
  (* The budget is per call: [stats] may be a long-lived cumulative
     counter shared across the engine's lifetime. *)
  let base_nodes = stats.nodes in
  let node_ceiling = base_nodes + node_limit in
  let cache : est_cache = Hashtbl.create 64 in
  let rec search subst goals =
    if stats.nodes > node_ceiling then raise Too_many_nodes;
    (* Stride relative to this call's entry: [stats] is cumulative and
       need not be 256-aligned, and the very first check (offset 0) makes
       an already-expired deadline fire before any search happens. *)
    check_deadline deadline_ns (stats.nodes - base_nodes);
    match propagate_fix db stats subst goals with
    | None -> None
    | Some (subst, goals) ->
      (match pick_branch db cache subst goals with
       | None ->
         (* Only deferred Neq / Not_atom goals remain, all with at least one
            unbound, otherwise-unconstrained variable: vacuously satisfiable
            over an unbounded value universe. *)
         Some subst
       | Some (goal, rest) ->
         stats.nodes <- stats.nodes + 1;
         (match goal with
          | G_atom a ->
            let a = Subst.apply_atom subst a in
            (match Database.find_table db a.Atom.rel with
             | None -> None
             | Some table ->
               (* Primary-key-ordered streaming enumeration, straight off
                  the table's sorted index buckets: deterministic, no
                  per-choice-point materialization or sort, and it *packs*
                  witnesses into the low end of each resource domain,
                  which keeps contiguous resources (whole seat rows) free
                  for later coordination constraints.  Measurably better
                  than hash order for the seeded grounding solves. *)
               let candidates = Table.lookup_seq table (Atom.to_pattern a) in
               try_tuples a rest subst candidates)
          | G_or fs -> try_branches rest subst fs
          | G_neq _ | G_not_atom _ | G_key_free _ | G_lt _ | G_le _ -> assert false))
  and try_tuples a rest subst candidates =
    match Seq.uncons candidates with
    | None ->
      stats.backtracks <- stats.backtracks + 1;
      if Obs.Trace.on () then
        Obs.Trace.instant ~cat:"solver"
          ~args:[ ("rel", Obs.Trace.Str a.Atom.rel); ("node", Obs.Trace.Int stats.nodes) ]
          "solver.backtrack";
      None
    | Some (tuple, more) ->
      stats.candidates <- stats.candidates + 1;
      let ground = Atom.of_tuple a.Atom.rel tuple in
      (match Unify.mgu ~subst a ground with
       | Some subst' ->
         (match search subst' rest with
          | Some _ as result -> result
          | None -> try_tuples a rest subst more)
       | None -> try_tuples a rest subst more)
  and try_branches rest subst = function
    | [] ->
      stats.backtracks <- stats.backtracks + 1;
      if Obs.Trace.on () then
        Obs.Trace.instant ~cat:"solver"
          ~args:[ ("rel", Obs.Trace.Str "or"); ("node", Obs.Trace.Int stats.nodes) ]
          "solver.backtrack";
      None
    | branch :: more ->
      stats.candidates <- stats.candidates + 1;
      (match goals_of_formula (simplify subst branch) [] with
       | Some branch_goals ->
         (match search subst (branch_goals @ rest) with
          | Some _ as result -> result
          | None -> try_branches rest subst more)
       | None -> try_branches rest subst more)
  in
  search subst goals

(* One span per solve call, reporting the search effort it added to the
   (possibly shared, cumulative) stats record. *)
let solve_span name stats found f =
  if not (Obs.Trace.on ()) then f ()
  else begin
    let nodes0 = stats.nodes and backtracks0 = stats.backtracks in
    let candidates0 = stats.candidates in
    Obs.Trace.span ~cat:"solver"
      ~args:(fun () ->
        [ ("nodes", Obs.Trace.Int (stats.nodes - nodes0));
          ("candidates", Obs.Trace.Int (stats.candidates - candidates0));
          ("backtracks", Obs.Trace.Int (stats.backtracks - backtracks0));
          ("found", Obs.Trace.Bool (found ()));
        ])
      name f
  end

let solve ?node_limit ?deadline_ns ?(seed = Subst.empty) ?stats db formula =
  let stats =
    match stats with
    | Some s -> s
    | None -> fresh_stats ()
  in
  let result = ref None in
  solve_span "solver.solve" stats
    (fun () -> Option.is_some !result)
    (fun () ->
      match goals_of_formula (simplify seed formula) [] with
      | None -> None
      | Some goals ->
        let r = solve_goals ?node_limit ?deadline_ns db stats seed goals in
        result := r;
        r)

let satisfiable ?node_limit ?deadline_ns ?seed ?stats db formula =
  Option.is_some (solve ?node_limit ?deadline_ns ?seed ?stats db formula)

(* -- All-solutions enumeration (read queries, possible-worlds checks) ----- *)

let solutions ?(node_limit = default_node_limit) ?deadline_ns ?(seed = Subst.empty) ?stats
    ?(limit = max_int) db formula =
  let stats =
    match stats with
    | Some s -> s
    | None -> fresh_stats ()
  in
  let results = ref [] in
  let count = ref 0 in
  let exception Done in
  let emit subst =
    results := subst :: !results;
    incr count;
    if !count >= limit then raise Done
  in
  let base_nodes = stats.nodes in
  let node_ceiling = base_nodes + node_limit in
  let cache : est_cache = Hashtbl.create 64 in
  let rec search subst goals =
    if stats.nodes > node_ceiling then raise Too_many_nodes;
    check_deadline deadline_ns (stats.nodes - base_nodes);
    match propagate_fix db stats subst goals with
    | None -> ()
    | Some (subst, goals) ->
      (match pick_branch db cache subst goals with
       | None -> emit subst
       | Some (goal, rest) ->
         stats.nodes <- stats.nodes + 1;
         (* A choice point none of whose alternatives led to a solution is
            one dead end — the same accounting [solve] uses for an empty
            candidate stream.  [Done] (the enumeration limit) escapes
            before the increment, like a success would. *)
         let emitted = !count in
         (match goal with
          | G_atom a ->
            let a = Subst.apply_atom subst a in
            (match Database.find_table db a.Atom.rel with
             | None -> ()
             | Some table ->
               Seq.iter
                 (fun tuple ->
                   stats.candidates <- stats.candidates + 1;
                   match Unify.mgu ~subst a (Atom.of_tuple a.Atom.rel tuple) with
                   | Some subst' -> search subst' rest
                   | None -> ())
                 (Table.lookup_seq table (Atom.to_pattern a)))
          | G_or fs ->
            List.iter
              (fun branch ->
                stats.candidates <- stats.candidates + 1;
                match goals_of_formula (simplify subst branch) [] with
                | Some branch_goals -> search subst (branch_goals @ rest)
                | None -> ())
              fs
          | G_neq _ | G_not_atom _ | G_key_free _ | G_lt _ | G_le _ -> assert false);
         if !count = emitted then begin
           stats.backtracks <- stats.backtracks + 1;
           if Obs.Trace.on () then
             Obs.Trace.instant ~cat:"solver"
               ~args:[ ("node", Obs.Trace.Int stats.nodes) ]
               "solver.backtrack"
         end)
  in
  solve_span "solver.solutions" stats
    (fun () -> !results <> [])
    (fun () ->
      (try
         match goals_of_formula (simplify seed formula) [] with
         | None -> ()
         | Some goals -> search seed goals
       with Done -> ());
      List.rev !results)

(** Grounding search over composed-body formulas — the satisfiability
    checker behind the quantum-database invariant.

    Equivalent to the paper's LIMIT 1 compilation: an indexed
    nested-loop-join search that stops at the first valuation, with eager
    equality propagation, most-constrained-first atom selection and
    deferred disequality / negated-atom checking. *)

type stats = {
  mutable nodes : int;
  mutable candidates : int;
  mutable backtracks : int;
  mutable propagations : int;
}

val fresh_stats : unit -> stats
val add_stats : into:stats -> stats -> unit

exception Too_many_nodes

exception Timed_out
(** An armed [deadline_ns] passed mid-search.  Checked every few hundred
    expanded nodes, so overruns are bounded by the work between checks. *)

val default_node_limit : int

val solve :
  ?node_limit:int ->
  ?deadline_ns:int64 ->
  ?seed:Logic.Subst.t ->
  ?stats:stats ->
  Relational.Database.t ->
  Logic.Formula.t ->
  Logic.Subst.t option
(** First satisfying valuation, or [None].  [seed] pre-binds variables —
    the solution-cache extension path.  Variables constrained only by
    deferred disequalities may stay unbound in the result (they are
    vacuously satisfiable).  @raise Too_many_nodes past [node_limit].
    @raise Timed_out past the absolute monotonic-clock [deadline_ns]. *)

val satisfiable :
  ?node_limit:int ->
  ?deadline_ns:int64 ->
  ?seed:Logic.Subst.t ->
  ?stats:stats ->
  Relational.Database.t ->
  Logic.Formula.t ->
  bool

val solutions :
  ?node_limit:int ->
  ?deadline_ns:int64 ->
  ?seed:Logic.Subst.t ->
  ?stats:stats ->
  ?limit:int ->
  Relational.Database.t ->
  Logic.Formula.t ->
  Logic.Subst.t list
(** All satisfying valuations (up to [limit]); used by read queries and the
    possible-worlds cross-checks. *)

(* Solution cache (Section 4, "Solution Cache").

   A quantum database must maintain at least one valid grounding per
   composed transaction body.  Rather than recomputing it on every
   admission check, the cache keeps current witness valuations and first
   tries to *extend* one of them to cover a new transaction's clauses;
   only when every extension fails does it fall back to a full re-solve
   of the whole composed body.

   The paper's prototype kept a single solution and notes: "A strategy to
   avoid such recomputation is to increase the number of solutions
   maintained in the cache.  Such additional solutions can be computed by
   a background process...  Our current prototype does not implement this
   strategy."  This cache implements it: [capacity] witnesses are kept in
   LRU order, and [refill] computes additional diverse witnesses (the
   role of the paper's background process; callers decide when to spend
   the time).  Statistics record how often each path ran. *)

open Logic

type stats = {
  mutable extensions : int;
  mutable extension_hits : int;
  mutable full_solves : int;
  mutable invalidations : int;
}

let fresh_stats () = { extensions = 0; extension_hits = 0; full_solves = 0; invalidations = 0 }

type t = {
  mutable witnesses : Subst.t list; (* most recently useful first *)
  capacity : int;
  stats : stats;
  solver_stats : Backtrack.stats;
}

let default_capacity = 1 (* the prototype's behaviour unless asked otherwise *)

let create ?(stats = fresh_stats ()) ?solver_stats ?(capacity = default_capacity) () =
  let solver_stats =
    match solver_stats with
    | Some s -> s (* shared, e.g. with engine-level telemetry *)
    | None -> Backtrack.fresh_stats ()
  in
  { witnesses = []; capacity = max 1 capacity; stats; solver_stats }

let witness t =
  match t.witnesses with
  | w :: _ -> Some w
  | [] -> None

let witnesses t = t.witnesses
let stats t = t.stats
let solver_stats t = t.solver_stats

let invalidate t =
  t.stats.invalidations <- t.stats.invalidations + 1;
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"cache"
      ~args:[ ("dropped", Obs.Trace.Int (List.length t.witnesses)) ]
      "cache.invalidate";
  t.witnesses <- []

let truncate t ws =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | w :: rest -> w :: take (n - 1) rest
  in
  take t.capacity ws

(* Authoritative witness (e.g. after a grounding re-solve): older
   witnesses belonged to a different composed body and are dropped. *)
let set_witness t subst = t.witnesses <- [ subst ]

let store_witness t subst = t.witnesses <- truncate t (subst :: t.witnesses)

(* Three-way admission verdict: exhaustion (node budget or deadline) is
   distinct from semantic unsatisfiability, so the engine's governor can
   retry or degrade instead of misreporting a rejection. *)
type outcome =
  | Sat of Subst.t
  | Unsat
  | Exhausted of string (* which budget ran out *)

(* From-scratch admission solve: no witness extension, one unseeded solve
   of the whole composed body, witness stored on success.  This is the
   [--no-incremental] ablation path and the reference the seeded path's
   outcomes are tested against. *)
let solve_full ?node_limit ?deadline_ns t db formula =
  t.stats.full_solves <- t.stats.full_solves + 1;
  match
    Obs.Flight.time Obs.Flight.Solve (fun () ->
        Backtrack.solve ?node_limit ?deadline_ns ~stats:t.solver_stats db formula)
  with
  | Some subst ->
    store_witness t subst;
    Sat subst
  | None -> Unsat
  | exception Backtrack.Too_many_nodes -> Exhausted "solver node budget exhausted"
  | exception Backtrack.Timed_out -> Exhausted "admission deadline exceeded"

(* Try to extend each cached witness over [new_clauses]; on a hit the
   successful base moves to the front (LRU).  On miss, re-solve
   [full_formula] from scratch.  [full_formula] is lazy: an extension hit
   never needs the flattened whole-body conjunction, so the admission hot
   path skips building it.  A per-base node-budget blowup moves on to the
   next base (another witness may extend cheaply); a deadline blowup
   aborts the whole check — the clock is shared across bases. *)
let try_extend ?node_limit ?deadline_ns t db ~new_clauses ~full_formula =
  let bases_tried = ref 0 in
  let rec try_bases tried = function
    | [] -> Unsat
    | seed :: rest ->
      t.stats.extensions <- t.stats.extensions + 1;
      incr bases_tried;
      (match
         Backtrack.solve ?node_limit ?deadline_ns ~seed ~stats:t.solver_stats db new_clauses
       with
       | Some subst ->
         t.stats.extension_hits <- t.stats.extension_hits + 1;
         (* Promote the successful base; the extended valuation becomes
            the primary witness. *)
         t.witnesses <- truncate t (subst :: List.rev_append tried rest);
         Sat subst
       | None -> try_bases (seed :: tried) rest
       | exception Backtrack.Too_many_nodes -> try_bases (seed :: tried) rest
       | exception Backtrack.Timed_out -> Exhausted "admission deadline exceeded")
  in
  (* The extend-vs-resolve decision is the cache's whole point; record
     which path this admission check took.  Extension attempts are the
     cache phase; the fallback re-solve below accounts itself as solve. *)
  match Obs.Flight.time Obs.Flight.Cache (fun () -> try_bases [] t.witnesses) with
  | Sat _ as hit ->
    if Obs.Trace.on () then
      Obs.Trace.instant ~cat:"cache"
        ~args:[ ("bases_tried", Obs.Trace.Int !bases_tried) ]
        "cache.extend_hit";
    hit
  | Exhausted _ as e -> e
  | Unsat ->
    let result = solve_full ?node_limit ?deadline_ns t db (Lazy.force full_formula) in
    if Obs.Trace.on () then
      Obs.Trace.instant ~cat:"cache"
        ~args:
          [ ("bases_tried", Obs.Trace.Int !bases_tried);
            ("satisfiable", Obs.Trace.Bool (match result with Sat _ -> true | _ -> false));
          ]
        "cache.full_solve";
    result

(* Incremental-SAT admission check (the Section 6 backend): delegate to a
   persistent {!Sat.Inc} session solving under the live chunks'
   activation literals.  [None] means the body is not SAT-encodable (or
   stopped being — the caller falls back to the search solver); a decoded
   witness is restricted to the partition's live variables before it is
   cached, since the session's model also values dead garbage variables. *)
let check_sat ?conflict_limit ?deadline_ns t session db ~chunks ~live_vars =
  match
    Obs.Flight.time Obs.Flight.Solve (fun () ->
        Sat.Inc.check ?conflict_limit ?deadline_ns session db ~chunks)
  with
  | Sat.Inc.V_unsupported _ -> None
  | Sat.Inc.V_unsat -> Some Unsat
  | Sat.Inc.V_sat subst ->
    let w = Subst.restrict live_vars subst in
    store_witness t w;
    Some (Sat w)
  | exception Sat.Cdcl.Conflict_budget_exceeded ->
    Some (Exhausted "sat conflict budget exhausted")
  | exception Sat.Cdcl.Timed_out -> Some (Exhausted "admission deadline exceeded")

(* Legacy option-typed entry points (recovery, tests, ablations): callers
   without a governor see exhaustion as the raw solver exception, exactly
   as before the outcome split. *)
let reraise_exhausted = function
  | Sat subst -> Some subst
  | Unsat -> None
  | Exhausted _ -> raise Backtrack.Too_many_nodes

let resolve_full ?node_limit t db formula =
  reraise_exhausted (solve_full ?node_limit t db formula)

let extend_or_resolve ?node_limit t db ~new_clauses ~full_formula =
  reraise_exhausted (try_extend ?node_limit t db ~new_clauses ~full_formula)

let witness_satisfies db formula subst =
  let lookup v =
    match Subst.resolve subst (Term.V v) with
    | Term.C value -> Some value
    | Term.V _ -> None
  in
  try Formula.eval db lookup formula with Formula.Unbound _ -> false

(* Re-check the cached witnesses against the current database (after a
   blind write); invalid ones are dropped.  [true] when at least one
   witness survives. *)
let revalidate t db formula =
  let surviving = List.filter (witness_satisfies db formula) t.witnesses in
  if surviving = [] then begin
    if t.witnesses <> [] then invalidate t;
    false
  end
  else begin
    t.witnesses <- surviving;
    true
  end

(* -- Split compute/install phases (domain-parallel fan-out) ---------------

   Refills and blind-write re-checks are the solver work the engine fans
   out across partitions: the *compute* half is pure — it reads only the
   database, an immutable job description and a caller-supplied stats
   record, so it can run on a worker domain against a frozen partition
   view — while the *install* half mutates the cache and runs on the
   orchestrating thread, in deterministic partition order. *)

(* Canonical form of a witness for equality: bindings sorted by variable
   id, so two substitutions with the same content compare equal whatever
   order they were built in. *)
let canonical w =
  List.sort (fun (a, _) (b, _) -> Int.compare a.Term.vid b.Term.vid) (Subst.bindings w)

(* Post-abort hygiene: a prepared-then-aborted admission can leave
   witnesses extended over the aborted transaction's (fresh, now
   unreferenced) variables.  Projecting every witness onto the
   partition's live variables is semantically neutral — a restriction of
   a satisfying valuation still satisfies and still seeds — but keeps
   extension seeds from accreting dead bindings.  Restrictions can
   collide, so the result is deduplicated like a refill. *)
let restrict_witnesses t vars =
  let seen = ref [] in
  let restricted =
    List.filter_map
      (fun w ->
        let r = Subst.restrict vars w in
        let key = canonical r in
        if List.mem key !seen then None
        else begin
          seen := key :: !seen;
          Some r
        end)
      t.witnesses
  in
  t.witnesses <- truncate t restricted

type refill_job = {
  rj_known : Subst.t list;
  rj_capacity : int;
  rj_formula : Formula.t;
}

let refill_plan t formula =
  if List.length t.witnesses >= t.capacity then None
  else Some { rj_known = t.witnesses; rj_capacity = t.capacity; rj_formula = formula }

let refill_compute ?node_limit ~stats db job =
  let missing = job.rj_capacity - List.length job.rj_known in
  if missing <= 0 then []
  else begin
    let fresh =
      try
        (* Ask for capacity = missing + |known| solutions: enough even if
           the enumeration rediscovers every known witness, without the
           old capacity + |witnesses| over-ask. *)
        Obs.Flight.time Obs.Flight.Solve (fun () ->
            Backtrack.solutions ?node_limit ~stats ~limit:job.rj_capacity db job.rj_formula)
      with Backtrack.Too_many_nodes -> []
    in
    (* Distinct against the known witnesses AND among themselves. *)
    let seen = ref (List.map canonical job.rj_known) in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | w :: rest ->
        let key = canonical w in
        if List.mem key !seen then take n rest
        else begin
          seen := key :: !seen;
          w :: take (n - 1) rest
        end
    in
    take missing fresh
  end

let refill_install t fresh =
  (* The cache may have changed since the plan was taken (invalidation, a
     new authoritative witness): dedup against the current content too. *)
  let seen = List.map canonical t.witnesses in
  let novel = List.filter (fun w -> not (List.mem (canonical w) seen)) fresh in
  t.witnesses <- truncate t (t.witnesses @ novel);
  List.length t.witnesses

(* Compute additional diverse witnesses for [formula] up to capacity —
   the paper's background-process role, invoked at the caller's leisure.
   Returns how many witnesses the cache now holds. *)
let refill ?node_limit t db formula =
  Obs.Trace.span ~cat:"cache"
    ~args:(fun () -> [ ("witnesses", Obs.Trace.Int (List.length t.witnesses)) ])
    "cache.refill"
  @@ fun () ->
  match refill_plan t formula with
  | None -> List.length t.witnesses
  | Some job ->
    refill_install t (refill_compute ?node_limit ~stats:t.solver_stats db job)

(* Blind-write re-check, split the same way.  [Keep] preserves surviving
   witnesses, [Rewitness] replaces a fully-dead cache after a successful
   re-solve, [Unsat_now] means the composed body lost satisfiability and
   the write must be refused. *)
type recheck_outcome =
  | Keep of Subst.t list
  | Rewitness of Subst.t
  | Unsat_now

let recheck_compute ?node_limit ~stats db ~witnesses ~formula =
  match
    Obs.Flight.time Obs.Flight.Cache (fun () ->
        List.filter (witness_satisfies db formula) witnesses)
  with
  | _ :: _ as surviving -> Keep surviving
  | [] ->
    (match
       Obs.Flight.time Obs.Flight.Solve (fun () -> Backtrack.solve ?node_limit ~stats db formula)
     with
     | Some w -> Rewitness w
     | None -> Unsat_now)

let recheck_install t outcome =
  match outcome with
  | Keep surviving ->
    t.witnesses <- surviving;
    true
  | Rewitness w ->
    if t.witnesses <> [] then invalidate t;
    set_witness t w;
    true
  | Unsat_now ->
    if t.witnesses <> [] then invalidate t;
    false

(* Solution cache (Section 4, "Solution Cache").

   A quantum database must maintain at least one valid grounding per
   composed transaction body.  Rather than recomputing it on every
   admission check, the cache keeps current witness valuations and first
   tries to *extend* one of them to cover a new transaction's clauses;
   only when every extension fails does it fall back to a full re-solve
   of the whole composed body.

   The paper's prototype kept a single solution and notes: "A strategy to
   avoid such recomputation is to increase the number of solutions
   maintained in the cache.  Such additional solutions can be computed by
   a background process...  Our current prototype does not implement this
   strategy."  This cache implements it: [capacity] witnesses are kept in
   LRU order, and [refill] computes additional diverse witnesses (the
   role of the paper's background process; callers decide when to spend
   the time).  Statistics record how often each path ran. *)

open Logic

type stats = {
  mutable extensions : int;
  mutable extension_hits : int;
  mutable full_solves : int;
  mutable invalidations : int;
}

let fresh_stats () = { extensions = 0; extension_hits = 0; full_solves = 0; invalidations = 0 }

type t = {
  mutable witnesses : Subst.t list; (* most recently useful first *)
  capacity : int;
  stats : stats;
  solver_stats : Backtrack.stats;
}

let default_capacity = 1 (* the prototype's behaviour unless asked otherwise *)

let create ?(stats = fresh_stats ()) ?(capacity = default_capacity) () =
  {
    witnesses = [];
    capacity = max 1 capacity;
    stats;
    solver_stats = Backtrack.fresh_stats ();
  }

let witness t =
  match t.witnesses with
  | w :: _ -> Some w
  | [] -> None

let witnesses t = t.witnesses
let stats t = t.stats
let solver_stats t = t.solver_stats

let invalidate t =
  t.stats.invalidations <- t.stats.invalidations + 1;
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"cache"
      ~args:[ ("dropped", Obs.Trace.Int (List.length t.witnesses)) ]
      "cache.invalidate";
  t.witnesses <- []

let truncate t ws =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | w :: rest -> w :: take (n - 1) rest
  in
  take t.capacity ws

(* Authoritative witness (e.g. after a grounding re-solve): older
   witnesses belonged to a different composed body and are dropped. *)
let set_witness t subst = t.witnesses <- [ subst ]

let store_witness t subst = t.witnesses <- truncate t (subst :: t.witnesses)

(* Try to extend each cached witness over [new_clauses]; on a hit the
   successful base moves to the front (LRU).  On miss, re-solve
   [full_formula] from scratch.  Returns the new witness (and caches it)
   or [None] when the full formula is unsatisfiable. *)
let extend_or_resolve ?node_limit t db ~new_clauses ~full_formula =
  let bases_tried = ref 0 in
  let rec try_bases tried = function
    | [] -> None
    | seed :: rest ->
      t.stats.extensions <- t.stats.extensions + 1;
      incr bases_tried;
      (match Backtrack.solve ?node_limit ~seed ~stats:t.solver_stats db new_clauses with
       | Some subst ->
         t.stats.extension_hits <- t.stats.extension_hits + 1;
         (* Promote the successful base; the extended valuation becomes
            the primary witness. *)
         t.witnesses <- truncate t (subst :: List.rev_append tried rest);
         Some subst
       | None -> try_bases (seed :: tried) rest
       | exception Backtrack.Too_many_nodes -> try_bases (seed :: tried) rest)
  in
  (* The extend-vs-resolve decision is the cache's whole point; record
     which path this admission check took. *)
  match try_bases [] t.witnesses with
  | Some _ as hit ->
    if Obs.Trace.on () then
      Obs.Trace.instant ~cat:"cache"
        ~args:[ ("bases_tried", Obs.Trace.Int !bases_tried) ]
        "cache.extend_hit";
    hit
  | None ->
    t.stats.full_solves <- t.stats.full_solves + 1;
    let result =
      match Backtrack.solve ?node_limit ~stats:t.solver_stats db full_formula with
      | Some subst ->
        store_witness t subst;
        Some subst
      | None -> None
    in
    if Obs.Trace.on () then
      Obs.Trace.instant ~cat:"cache"
        ~args:
          [ ("bases_tried", Obs.Trace.Int !bases_tried);
            ("satisfiable", Obs.Trace.Bool (Option.is_some result));
          ]
        "cache.full_solve";
    result

let witness_satisfies db formula subst =
  let lookup v =
    match Subst.resolve subst (Term.V v) with
    | Term.C value -> Some value
    | Term.V _ -> None
  in
  try Formula.eval db lookup formula with Formula.Unbound _ -> false

(* Re-check the cached witnesses against the current database (after a
   blind write); invalid ones are dropped.  [true] when at least one
   witness survives. *)
let revalidate t db formula =
  let surviving = List.filter (witness_satisfies db formula) t.witnesses in
  if surviving = [] then begin
    if t.witnesses <> [] then invalidate t;
    false
  end
  else begin
    t.witnesses <- surviving;
    true
  end

(* Compute additional diverse witnesses for [formula] up to capacity —
   the paper's background-process role, invoked at the caller's leisure.
   Returns how many witnesses the cache now holds. *)
let refill ?node_limit t db formula =
  Obs.Trace.span ~cat:"cache"
    ~args:(fun () -> [ ("witnesses", Obs.Trace.Int (List.length t.witnesses)) ])
    "cache.refill"
  @@ fun () ->
  let missing = t.capacity - List.length t.witnesses in
  if missing > 0 then begin
    let fresh =
      try
        Backtrack.solutions ?node_limit ~stats:t.solver_stats
          ~limit:(t.capacity + List.length t.witnesses) db formula
      with Backtrack.Too_many_nodes -> []
    in
    (* Keep distinct ones, existing first. *)
    let known = t.witnesses in
    let distinct =
      List.filter
        (fun w -> not (List.exists (fun k -> Subst.bindings k = Subst.bindings w) known))
        fresh
    in
    t.witnesses <- truncate t (known @ distinct)
  end;
  List.length t.witnesses

(** Solution cache (paper Section 4): keeps witness groundings of a
    composed transaction body and amortizes admission checks by extending
    them instead of re-solving.

    Implements the multi-solution strategy the paper describes but left
    unimplemented in its prototype: up to [capacity] witnesses in LRU
    order, plus {!refill} for computing spares out of the critical path. *)

type stats = {
  mutable extensions : int;
  mutable extension_hits : int;
  mutable full_solves : int;
  mutable invalidations : int;
}

val fresh_stats : unit -> stats

type t

val default_capacity : int
(** 1 — the paper prototype's behaviour. *)

val create : ?stats:stats -> ?solver_stats:Backtrack.stats -> ?capacity:int -> unit -> t
(** [solver_stats], when given, receives this cache's solver work (e.g.
    a shared engine-level record); otherwise the cache keeps its own. *)

val witness : t -> Logic.Subst.t option
val witnesses : t -> Logic.Subst.t list
val stats : t -> stats
val solver_stats : t -> Backtrack.stats
val invalidate : t -> unit

val set_witness : t -> Logic.Subst.t -> unit
(** Authoritative witness for a new composed body; spares are dropped. *)

type outcome =
  | Sat of Logic.Subst.t  (** witness found (and cached) *)
  | Unsat  (** composed body unsatisfiable: refuse admission *)
  | Exhausted of string  (** node budget or deadline ran out — NOT a rejection *)

val try_extend :
  ?node_limit:int ->
  ?deadline_ns:int64 ->
  t ->
  Relational.Database.t ->
  new_clauses:Logic.Formula.t ->
  full_formula:Logic.Formula.t Lazy.t ->
  outcome
(** Try to extend each cached witness over [new_clauses] (successful base
    promoted, LRU); on miss force and re-solve [full_formula].  Caches
    the resulting witness.  [full_formula] is lazy so extension hits
    never pay for flattening the whole body.  A per-base node-budget
    blowup tries the next base; a deadline blowup aborts the check.
    [Exhausted] means the verdict is unknown — the governor's retry /
    degrade / overload ladder owns what happens next. *)

val solve_full :
  ?node_limit:int -> ?deadline_ns:int64 -> t -> Relational.Database.t -> Logic.Formula.t -> outcome
(** One unseeded solve of the whole composed body, skipping witness
    extension (the from-scratch ablation and the governor's degraded
    full-recompose rung); stores the witness and counts a full solve. *)

val check_sat :
  ?conflict_limit:int ->
  ?deadline_ns:int64 ->
  t ->
  Sat.Inc.t ->
  Relational.Database.t ->
  chunks:Logic.Formula.t list ->
  live_vars:Logic.Term.Var_set.t ->
  outcome option
(** Incremental-SAT admission check: solve the per-transaction [chunks]
    in the persistent CDCL [session] under their activation literals.
    [None] when the body is not SAT-encodable — the caller falls back to
    the search solver.  A witness is restricted to [live_vars] and
    cached; budget blowups surface as [Exhausted] exactly like the
    backtracking path, so the same governor ladder applies. *)

val extend_or_resolve :
  ?node_limit:int ->
  t ->
  Relational.Database.t ->
  new_clauses:Logic.Formula.t ->
  full_formula:Logic.Formula.t Lazy.t ->
  Logic.Subst.t option
(** [try_extend] with the legacy option signature: [None] means
    unsatisfiable; exhaustion re-raises {!Backtrack.Too_many_nodes}. *)

val resolve_full :
  ?node_limit:int -> t -> Relational.Database.t -> Logic.Formula.t -> Logic.Subst.t option
(** [solve_full] with the legacy option signature (see
    {!extend_or_resolve}). *)

val revalidate : t -> Relational.Database.t -> Logic.Formula.t -> bool
(** After an external write: drop witnesses the current database no
    longer supports; [true] when at least one survives. *)

val restrict_witnesses : t -> Logic.Term.Var_set.t -> unit
(** Project every cached witness onto [vars], deduplicating collisions.
    Semantically neutral (a restriction of a satisfying valuation still
    satisfies); used after an aborted two-phase admission to drop
    bindings of the aborted transaction's dead variables. *)

val refill : ?node_limit:int -> t -> Relational.Database.t -> Logic.Formula.t -> int
(** Top the cache up to capacity with distinct witnesses (the paper's
    background-process role); returns the number now held.  Asks the
    solver for exactly [capacity] solutions and keeps the missing count
    after deduplicating fresh-vs-known {e and} fresh-vs-fresh. *)

(** {2 Split compute/install phases}

    The engine fans refills and blind-write re-checks out across
    partitions on a domain pool.  The [*_compute] half is pure — it
    reads only the database, an immutable job and the caller-supplied
    [stats] record, so it may run on a worker domain — while the
    [*_install] half mutates the cache and must run on the orchestrating
    thread, in deterministic partition order. *)

type refill_job

val refill_plan : t -> Logic.Formula.t -> refill_job option
(** [None] when the cache is already at capacity. *)

val refill_compute :
  ?node_limit:int ->
  stats:Backtrack.stats ->
  Relational.Database.t ->
  refill_job ->
  Logic.Subst.t list
(** Fresh witnesses, distinct from the job's known set and each other. *)

val refill_install : t -> Logic.Subst.t list -> int
(** Merge computed witnesses (re-deduplicating against the live cache,
    which may have moved since the plan); returns the number now held. *)

type recheck_outcome =
  | Keep of Logic.Subst.t list  (** surviving witnesses, order preserved *)
  | Rewitness of Logic.Subst.t  (** all dead, but a re-solve found one *)
  | Unsat_now  (** composed body unsatisfiable: refuse the write *)

val recheck_compute :
  ?node_limit:int ->
  stats:Backtrack.stats ->
  Relational.Database.t ->
  witnesses:Logic.Subst.t list ->
  formula:Logic.Formula.t ->
  recheck_outcome

val recheck_install : t -> recheck_outcome -> bool
(** Apply the outcome to the cache; [true] iff still satisfiable. *)

(* Engine-wide chaos harness: deterministic fault injection beyond the
   WAL (the crash monkey's territory) — solver-budget exhaustion through
   squeezed governors, pool-worker exceptions mid-fan-out (cache refills,
   blind-write rechecks), and the survival contract that goes with them:

   - the engine absorbs every injected fault: no poisoned partition, no
     half-applied write, the composed-satisfiability invariant intact and
     the next submission served normally;
   - outcomes are bit-identical at 1, 2 and 4 domains — fault schedules
     are pure hashes of orchestrator-side coordinates, never of where a
     job happened to run;
   - a squeezed admission that says [Rejected] means it: resubmitting
     with the default governor must reject again (a commit would mean an
     exhaustion was misreported as a semantic no);
   - [Overloaded] leaves the pending set untouched, and resubmitting
     without the squeeze makes progress (commits or genuinely rejects).

   Every cycle is reproducible from its seed; the schedule PRNG is
   consumed only on the orchestrator thread. *)

module Database = Relational.Database
module Value = Relational.Value
module Tuple = Relational.Tuple
module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn
module Governor = Quantum.Governor
module Metrics = Quantum.Metrics

type cycle_outcome = {
  events : string list; (* compact event trace — the determinism fingerprint *)
  submissions : int;
  committed : int;
  rejected : int;
  overloaded : int;
  squeezed : int;
  refill_faults : int;
  write_aborts : int;
  groundings : int;
  violations : string list;
}

type summary = {
  cycles : int;
  submissions : int;
  committed : int;
  rejected : int;
  overloaded : int;
  squeezed : int;
  refill_faults : int;
  write_aborts : int;
  groundings : int;
  determinism_checks : int;
  violations : (int * string) list; (* (cycle, what broke) *)
}

(* In actor mode ([actors]) every engine call round-trips through the
   owning actor on a real spawned domain (clamp off), while the schedule
   PRNG stays on the orchestrator — the event trace must be identical to
   the inline run, which is how the harness proves fault schedules are
   pure functions of orchestrator-side coordinates in actor mode too. *)
let run_cycle ?pool ?actors ~seed () =
  let rng = Prng.create seed in
  let geometry =
    { Flights.flights = 1; rows_per_flight = 2 + Prng.int rng 2; dest = "LA" }
  in
  let store = Flights.fresh_store geometry in
  (* capacity > 1 so commits trigger the refill fan-out the injector
     targets; everything else is the default engine. *)
  let config = { Qdb.default_config with Qdb.cache_capacity = 3 } in
  let qdb = Qdb.create ~config ?pool store in
  let plan =
    { Fault.chaos_seed = seed lxor 0xC4A05; refill_rate = 0.25; recheck_rate = 0.4 }
  in
  Qdb.set_fault_injector qdb (Fault.injector plan);
  (* The squeeze: a node budget far below what contended admissions need,
     with a flat escalation so retries cannot save it.  No deadline — the
     wall clock would break cross-domain determinism. *)
  let squeeze_gov =
    Governor.make ~node_budget:(1 + Prng.int rng 40) ~max_retries:1 ~escalation:1 ()
  in
  let rt =
    match actors with
    | Some n when n >= 1 ->
      Some (Actor.Runtime.create ~clamp:false ~actors:n ~make:(fun _ -> ()) ())
    | _ -> None
  in
  let exec f =
    match rt with
    | Some rt -> Actor.Runtime.call rt ~key:0 (fun () -> f ())
    | None -> f ()
  in
  let events = ref [] in
  let record e = events := e :: !events in
  let violations = ref [] in
  let violate v = violations := v :: !violations in
  let squeezed = ref 0 in
  let write_aborts = ref 0 in
  let groundings = ref 0 in
  (* Over capacity: 4 users per row against 3 seats — the tail of every
     cycle is contended, which is where budgets blow and rejections live. *)
  let users =
    Travel.make_users ~flights:1 ~pairs_per_flight:(2 * geometry.Flights.rows_per_flight)
  in
  let users = Prng.shuffle_list rng users in
  let seats = Flights.seats_per_flight geometry in
  Fun.protect
    ~finally:(fun () -> Option.iter Actor.Runtime.shutdown rt)
    (fun () ->
      List.iter
        (fun u ->
          (match Prng.int rng 10 with
           | 0 ->
             (* Blind write under possible recheck injection: delete one
                PRNG-chosen Available seat.  Accepted, refused or aborted —
                all three must replay identically. *)
             let seat = Prng.int rng seats in
             let op =
               Database.Delete ("Available", Tuple.of_list [ Value.Int 0; Value.Int seat ])
             in
             (match exec (fun () -> Qdb.write qdb [ op ]) with
              | Ok () -> record "W+"
              | Error e when String.length e >= 18 && String.sub e 0 18 = "write revalidation" ->
                incr write_aborts;
                record "W!"
              | Error _ -> record "W-")
           | 1 ->
             (match exec (fun () -> Qdb.pending qdb) with
              | [] -> ()
              | pending ->
                let txn = List.nth pending (Prng.int rng (List.length pending)) in
                let n = List.length (exec (fun () -> Qdb.ground qdb txn.Rtxn.id)) in
                groundings := !groundings + n;
                record (Printf.sprintf "G%d" n))
           | _ -> ());
          let txn = if Prng.bool rng then Travel.entangled_txn u else Travel.plain_txn u in
          if Prng.int rng 4 = 0 then begin
            incr squeezed;
            let before = exec (fun () -> Qdb.pending_count qdb) in
            match exec (fun () -> Qdb.submit ~governor:squeeze_gov qdb txn) with
            | Qdb.Committed _ -> record "sC"
            | Qdb.Rejected _ ->
              record "sR";
              (* Oracle: a rejection under pressure must be a real rejection.
                 Resubmitting with the full default budget committing would
                 mean an exhaustion escaped as a semantic no. *)
              (match exec (fun () -> Qdb.submit qdb txn) with
               | Qdb.Committed _ ->
                 violate "squeezed Rejected committed on unsqueezed resubmit"
               | Qdb.Rejected _ -> record "rr"
               | Qdb.Overloaded _ -> violate "default governor reported Overloaded")
            | Qdb.Overloaded _ ->
              record "sO";
              if exec (fun () -> Qdb.pending_count qdb) <> before then
                violate "Overloaded mutated the pending set";
              (* Resubmitting without the squeeze must make progress. *)
              (match exec (fun () -> Qdb.submit qdb txn) with
               | Qdb.Committed _ -> record "oC"
               | Qdb.Rejected _ -> record "oR"
               | Qdb.Overloaded _ -> violate "default governor reported Overloaded")
          end
          else
            match exec (fun () -> Qdb.submit qdb txn) with
            | Qdb.Committed _ -> record "C"
            | Qdb.Rejected _ -> record "R"
            | Qdb.Overloaded _ -> violate "default governor reported Overloaded")
        users;
      (* Post-cycle survival contract. *)
      (try
         let n = List.length (exec (fun () -> Qdb.ground_all qdb)) in
         groundings := !groundings + n;
         record (Printf.sprintf "GA%d" n)
       with Qdb.Engine_overloaded _ -> violate "ground_all overloaded under default budget");
      if not (exec (fun () -> Qdb.invariant_holds qdb)) then
        violate "composed-satisfiability invariant broken after chaos cycle");
  let m = Qdb.metrics qdb in
  let submitted = m.Metrics.submitted in
  if m.Metrics.committed + m.Metrics.rejected + m.Metrics.overloaded <> submitted then
    violate
      (Printf.sprintf "outcome accounting: %d committed + %d rejected + %d overloaded <> %d submitted"
         m.Metrics.committed m.Metrics.rejected m.Metrics.overloaded submitted);
  {
    events = List.rev !events;
    submissions = submitted;
    committed = m.Metrics.committed;
    rejected = m.Metrics.rejected;
    overloaded = m.Metrics.overloaded;
    squeezed = !squeezed;
    refill_faults = m.Metrics.refill_failures;
    write_aborts = !write_aborts;
    groundings = !groundings;
    violations = List.rev !violations;
  }

let run ?(cycles = 100) ?(seed = 1234) () =
  let pool2 = Par.Pool.create ~domains:2 () in
  let pool4 = Par.Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () ->
      Par.Pool.shutdown pool2;
      Par.Pool.shutdown pool4)
    (fun () ->
      let acc =
        ref
          {
            cycles = 0;
            submissions = 0;
            committed = 0;
            rejected = 0;
            overloaded = 0;
            squeezed = 0;
            refill_faults = 0;
            write_aborts = 0;
            groundings = 0;
            determinism_checks = 0;
            violations = [];
          }
      in
      for cycle = 0 to cycles - 1 do
        let cycle_seed = seed + (cycle * 6151) in
        let o1 = run_cycle ~seed:cycle_seed () in
        let o2 = run_cycle ~pool:pool2 ~seed:cycle_seed () in
        let o4 = run_cycle ~pool:pool4 ~seed:cycle_seed () in
        let oa = run_cycle ~actors:2 ~seed:cycle_seed () in
        let cycle_violations =
          ref (o1.violations @ o2.violations @ o4.violations @ oa.violations)
        in
        if o1.events <> o2.events then
          cycle_violations := "events diverge between 1 and 2 domains" :: !cycle_violations;
        if o1.events <> o4.events then
          cycle_violations := "events diverge between 1 and 4 domains" :: !cycle_violations;
        if o1.events <> oa.events then
          cycle_violations :=
            "events diverge between inline and actor-routed runs" :: !cycle_violations;
        let s = !acc in
        acc :=
          {
            cycles = s.cycles + 1;
            submissions = s.submissions + o1.submissions;
            committed = s.committed + o1.committed;
            rejected = s.rejected + o1.rejected;
            overloaded = s.overloaded + o1.overloaded;
            squeezed = s.squeezed + o1.squeezed;
            refill_faults = s.refill_faults + o1.refill_faults;
            write_aborts = s.write_aborts + o1.write_aborts;
            groundings = s.groundings + o1.groundings;
            determinism_checks = s.determinism_checks + 3;
            violations =
              s.violations @ List.map (fun v -> (cycle, v)) !cycle_violations;
          }
      done;
      !acc)

let pp fmt s =
  Format.fprintf fmt
    "@[<v>%d cycle(s) x {1,2,4} domains + actor replay: %d submission(s) — %d committed, %d \
     rejected, %d overloaded@,\
     %d squeezed admission(s); %d refill fault(s) absorbed, %d write abort(s)@,\
     %d grounding(s); %d determinism check(s); %d violation(s)@]"
    s.cycles s.submissions s.committed s.rejected s.overloaded s.squeezed s.refill_faults
    s.write_aborts s.groundings s.determinism_checks (List.length s.violations)

(** Engine-wide chaos harness: deterministic injection of solver-budget
    exhaustion (squeezed governors), pool-worker exceptions mid-fan-out
    (cache refills, blind-write rechecks), with the survival contract:
    the engine absorbs every fault, outcomes replay bit-identically at
    1/2/4 domains, a squeezed [Rejected] re-rejects under the default
    governor, and [Overloaded] leaves the pending set untouched. *)

type cycle_outcome = {
  events : string list;  (** compact event trace — the determinism fingerprint *)
  submissions : int;
  committed : int;
  rejected : int;
  overloaded : int;
  squeezed : int;
  refill_faults : int;
  write_aborts : int;
  groundings : int;
  violations : string list;
}

type summary = {
  cycles : int;
  submissions : int;
  committed : int;
  rejected : int;
  overloaded : int;
  squeezed : int;
  refill_faults : int;
  write_aborts : int;
  groundings : int;
  determinism_checks : int;
  violations : (int * string) list;  (** (cycle, what broke) *)
}

val run_cycle : ?pool:Par.Pool.t -> ?actors:int -> seed:int -> unit -> cycle_outcome
(** One reproducible chaos cycle: fresh engine over a small scarce travel
    fixture, PRNG-scheduled submissions (a quarter squeezed), blind
    writes and groundings, fault injection on every fan-out kind.  With
    [actors], every engine call round-trips through an owning actor on a
    real spawned domain ({!Actor.Runtime.call}, unclamped) while the
    schedule PRNG stays on the orchestrator. *)

val run : ?cycles:int -> ?seed:int -> unit -> summary
(** Run [cycles] cycles, each at 1, 2 and 4 domains plus an actor-routed
    replay, comparing the event traces bit-for-bit.  Pools are created
    once and reused. *)

val pp : Format.formatter -> summary -> unit

(* Crash monkey: deterministic crash/recover cycles over the full engine.

   Each cycle builds a travel database through a fault-injected WAL
   backend, drives a PRNG-scheduled workload (submits, collapsing reads,
   explicit groundings, checkpoints) through [Store]/[Qdb], kills the
   "process" at a random append with a random damage mode ([Fault]),
   recovers from the damaged log alone, and asserts the recovery
   contract:

   - the recovered database equals some prefix of the batches whose
     commit record reached the log (no committed batch is ever
     half-applied, no state is invented);
   - the recovered engine's composed-satisfiability invariant holds for
     every re-admitted pending transaction (Theorem 3.5 survives the
     crash);
   - the engine's own pending set agrees with the durable
     pending-transactions table.

   A pristine in-memory shadow of every line the engine *attempted* to
   append (damage-free, checkpoint swaps appended rather than replacing,
   so no history is lost) supplies the reference prefix states. *)

module Wal = Relational.Wal
module Database = Relational.Database
module Store = Relational.Store
module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn

type summary = {
  cycles : int;
  crashes : int;
  truncations : int; (* recoveries that dropped at least one record *)
  records_kept : int; (* summed over all recoveries *)
  records_dropped : int;
  clean_crashes : int;
  torn_crashes : int;
  flipped_crashes : int;
  mid_log_flips : int; (* cycles where a silent mid-log bit flip landed *)
  violations : (int * string) list; (* (cycle, what broke) *)
}

(* Mirror every attempted append into [pristine] while the damage-prone
   path goes to the wrapped backend.  Checkpoint segment swaps are
   *appended* to the pristine history (not swapped in), so earlier
   prefix states stay reconstructible even when the real swap is lost. *)
let tee pristine (inner : Wal.backend) =
  {
    inner with
    Wal.append =
      (fun line ->
        pristine.Wal.append line;
        inner.Wal.append line);
    rewrite =
      (fun lines ->
        List.iter pristine.Wal.append lines;
        inner.Wal.rewrite lines);
    reset =
      (fun () ->
        pristine.Wal.reset ();
        inner.Wal.reset ());
  }

(* Every database state at a batch/ddl/checkpoint boundary of the
   pristine history — the states a correct recovery may land on. *)
let prefix_states pristine =
  let db = ref (Database.create ()) in
  let pending = ref None in
  let snaps = ref [ Database.copy !db ] in
  let stable () = snaps := Database.copy !db :: !snaps in
  List.iteri
    (fun index line ->
      match Wal.decode_line ~index line with
      | Wal.Create_table schema ->
        ignore (Database.create_table !db schema);
        stable ()
      | Wal.Checkpoint image ->
        db := Wal.database_of_sexp image;
        pending := None;
        stable ()
      | Wal.Begin n -> pending := Some (n, [])
      | Wal.Op op ->
        (match !pending with
         | Some (n, ops) -> pending := Some (n, op :: ops)
         | None -> ())
      | Wal.Commit n ->
        (match !pending with
         | Some (m, ops) when m = n ->
           (match Database.apply_ops !db (List.rev ops) with
            | Ok () -> stable ()
            | Error _ -> ());
           pending := None
         | Some _ | None -> pending := None))
    (pristine.Wal.read_all ());
  !snaps

type cycle_outcome = {
  crashed : bool;
  damage : Fault.damage;
  flipped_mid_log : bool;
  kept : int;
  dropped : int;
  violation : string option;
}

(* In actor mode every post-fixture engine operation round-trips through
   the owning actor ([Actor.Runtime.call] on a real spawned domain —
   clamping is off so even a 1-core host exercises the hop), proving the
   injected [Fault.Crash] propagates across the domain boundary to the
   driver and that WAL append ordering — what the recovery contract
   checks — is unaffected by which domain ran the engine. *)
let run_cycle ?pool ?actors ?(backend = Qdb.Backtracking) ~seed () =
  let engine_backend = backend in
  let rng = Prng.create seed in
  let fault_rng = Prng.create (seed lxor 0x5EED5EED) in
  let pristine = Wal.mem_backend () in
  let real = Wal.mem_backend () in
  let handle, faulty = Fault.wrap fault_rng real in
  let backend = tee pristine faulty in
  let geometry =
    { Flights.flights = 1; rows_per_flight = 2 + Prng.int rng 2; dest = "LA" }
  in
  let store = Flights.fresh_store ~backend geometry in
  (* Under a pool, exercise the parallel cache-refill fan-out on every
     commit (capacity > 1) — the WAL ordering the recovery contract
     checks must be unaffected by where solver work ran. *)
  let config =
    let base =
      match pool with
      | Some _ -> { Qdb.default_config with Qdb.cache_capacity = 3 }
      | None -> Qdb.default_config
    in
    match engine_backend with
    | Qdb.Sat_backend ->
      (* Insert-safety predicates are negative atoms the eager encoder
         refuses, so the SAT monkey runs without them — on both sides of
         the crash, or recovery re-admission would diverge. *)
      { base with Qdb.backend = Qdb.Sat_backend; Qdb.check_inserts = false }
    | b -> { base with Qdb.backend = b }
  in
  let qdb = Qdb.create ~config ?pool store in
  (* Fault schedule: arm only after the fixture is built, so the crash
     always lands inside the measured workload. *)
  let damage =
    match Prng.int rng 3 with
    | 0 -> Fault.Clean
    | 1 -> Fault.Torn
    | _ -> Fault.Flipped
  in
  let crash_after = Prng.int rng 45 in
  let flip_at =
    if crash_after > 2 && Prng.bool rng then Some (Prng.int rng (crash_after - 1)) else None
  in
  Fault.arm handle { Fault.crash_after; damage; flip_at };
  let users =
    Travel.make_users ~flights:1 ~pairs_per_flight:(3 * geometry.Flights.rows_per_flight / 2)
  in
  let users = Prng.shuffle_list rng users in
  let crashed = ref false in
  let rt =
    match actors with
    | Some n when n >= 1 ->
      Some (Actor.Runtime.create ~clamp:false ~actors:n ~make:(fun _ -> ()) ())
    | _ -> None
  in
  let exec f =
    match rt with
    | Some rt -> Actor.Runtime.call rt ~key:0 (fun () -> f ())
    | None -> f ()
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Actor.Runtime.shutdown rt)
    (fun () ->
      try
        List.iter
          (fun u ->
            (match Prng.int rng 12 with
             | 0 -> exec (fun () -> ignore (Qdb.read qdb (Travel.seat_query u)))
             | 1 -> exec (fun () -> Store.checkpoint store)
             | 2 ->
               exec (fun () ->
                   match Qdb.pending qdb with
                   | [] -> ()
                   | pending ->
                     let txn = List.nth pending (Prng.int rng (List.length pending)) in
                     ignore (Qdb.ground qdb txn.Rtxn.id))
             | _ -> ());
            let txn =
              if Prng.bool rng then Travel.entangled_txn u else Travel.plain_txn u
            in
            exec (fun () -> ignore (Qdb.submit qdb txn)))
          users;
        exec (fun () -> ignore (Qdb.ground_all qdb))
      with Fault.Crash -> crashed := true);
  let flipped_mid_log =
    match flip_at with
    | Some n -> n < handle.Fault.appends
    | None -> false
  in
  (* The process is dead; recover from the (possibly damaged) log alone,
     under the same config so re-admission checks compose the same body. *)
  let qdb' = Qdb.recover ~config real in
  let kept, dropped =
    match Qdb.recovery_report qdb' with
    | Some r -> (r.Wal.records_kept, r.Wal.records_dropped)
    | None -> (0, 0)
  in
  let violation =
    let recovered = Qdb.db qdb' in
    if not (List.exists (fun s -> Database.equal s recovered) (prefix_states pristine))
    then Some "recovered state is not a prefix of the committed batches"
    else if not (Qdb.invariant_holds qdb') then
      Some "composed-satisfiability invariant broken after recovery"
    else begin
      let table_rows =
        Relational.Table.cardinality (Database.table recovered Qdb.pending_table_name)
      in
      if table_rows <> Qdb.pending_count qdb' then
        Some
          (Printf.sprintf "pending table has %d row(s) but engine re-admitted %d" table_rows
             (Qdb.pending_count qdb'))
      else None
    end
  in
  { crashed = !crashed; damage; flipped_mid_log; kept; dropped; violation }

let run ?(cycles = 200) ?(seed = 42) ?pool ?actors ?backend () =
  let acc =
    ref
      {
        cycles = 0;
        crashes = 0;
        truncations = 0;
        records_kept = 0;
        records_dropped = 0;
        clean_crashes = 0;
        torn_crashes = 0;
        flipped_crashes = 0;
        mid_log_flips = 0;
        violations = [];
      }
  in
  for cycle = 0 to cycles - 1 do
    let o = run_cycle ?pool ?actors ?backend ~seed:(seed + (cycle * 7919)) () in
    let s = !acc in
    acc :=
      {
        cycles = s.cycles + 1;
        crashes = (s.crashes + if o.crashed then 1 else 0);
        truncations = (s.truncations + if o.dropped > 0 then 1 else 0);
        records_kept = s.records_kept + o.kept;
        records_dropped = s.records_dropped + o.dropped;
        clean_crashes =
          (s.clean_crashes + if o.crashed && o.damage = Fault.Clean then 1 else 0);
        torn_crashes = (s.torn_crashes + if o.crashed && o.damage = Fault.Torn then 1 else 0);
        flipped_crashes =
          (s.flipped_crashes + if o.crashed && o.damage = Fault.Flipped then 1 else 0);
        mid_log_flips = (s.mid_log_flips + if o.flipped_mid_log then 1 else 0);
        violations =
          (match o.violation with
           | Some v -> (cycle, v) :: s.violations
           | None -> s.violations);
      }
  done;
  let s = !acc in
  { s with violations = List.rev s.violations }

let pp fmt s =
  Format.fprintf fmt
    "@[<v>%d cycle(s): %d crash(es) (%d clean, %d torn, %d bit-flipped), %d mid-log flip(s)@,\
     %d recovery truncation(s); wal records kept %d, dropped %d@,\
     %d invariant violation(s)@]"
    s.cycles s.crashes s.clean_crashes s.torn_crashes s.flipped_crashes s.mid_log_flips
    s.truncations s.records_kept s.records_dropped (List.length s.violations)

(* -- Server mode ------------------------------------------------------------

   The durability contract of the network front door: the store sits on
   a volatile write buffer ([Fault.write_buffered] — appends reach
   stable storage only at a group-commit sync), concurrent client
   sessions pipeline submissions over real sockets, and the n-th sync
   kills the "process" mid-flush.  The oracle then recovers from the
   durable backend alone and demands:

   - every admission a client was ACKED survives recovery — as a
     re-admitted pending transaction or as its grounded booking
     (acks are sent only after the batch fsync, so this is exactly the
     server's contract);
   - the recovered state is a batch-prefix of the attempted history
     (an un-acked admission may vanish entirely but never half-apply);
   - the composed-satisfiability invariant holds after recovery.

   Which admissions end up acked depends on scheduling (batch formation
   races the crash), but the contract must hold at every interleaving
   and every domain count — that is what makes it a contract. *)

module Server = Net.Server
module Client = Net.Client
module Frame = Net.Frame

type server_summary = {
  srv_cycles : int;
  srv_crashes : int;
  srv_acked : int; (* acked admissions checked against recovery *)
  srv_lost_unacked : int; (* un-acked submissions absent after recovery *)
  srv_batches : int; (* group-commit batches that synced *)
  srv_violations : (int * string) list;
}

type ack = {
  ack_label : string;
  ack_verdict : [ `Committed of int | `Rejected | `Overloaded ];
}

(* One session: pipeline every submission, then a Ground_all, and read
   verdicts until the server hangs up (the crash) or everything is
   answered.  Responses are FIFO per session, so sent labels zip with
   received frames. *)
let drive_session addr ~seed users =
  let client = Client.connect addr in
  let requests =
    List.map
      (fun u ->
        let entangled = Hashtbl.hash (seed, u.Travel.name, "txn") land 1 = 0 in
        let text =
          if entangled then Travel.entangled_txn_text u else Travel.plain_txn_text u
        in
        let partner = if entangled then Some u.Travel.partner else None in
        (u.Travel.name, Frame.Submit_datalog { Frame.label = u.Travel.name; partner; text }))
      users
    @ [ ("", Frame.Ground_all) ]
  in
  let sent =
    (* Stop at the first failed send: the server is gone. *)
    let rec fire acc = function
      | [] -> List.rev acc
      | (label, frame) :: rest ->
        if Client.send client frame then fire (label :: acc) rest else List.rev acc
    in
    fire [] requests
  in
  let acks = ref [] in
  (try
     List.iter
       (fun label ->
         match Client.recv client with
         | Ok (Frame.Committed id) ->
           acks := { ack_label = label; ack_verdict = `Committed id } :: !acks
         | Ok (Frame.Rejected _) -> acks := { ack_label = label; ack_verdict = `Rejected } :: !acks
         | Ok (Frame.Overloaded _) ->
           acks := { ack_label = label; ack_verdict = `Overloaded } :: !acks
         | Ok (Frame.Grounded _) | Ok (Frame.Error_msg _) -> ()
         | Ok _ -> ()
         | Error _ -> raise Exit)
       sent
   with Exit -> ());
  Client.close client;
  (sent, List.rev !acks)

let run_server_cycle ~seed ~domains () =
  let rng = Prng.create seed in
  let buf_rng = Prng.create (seed lxor 0xF100F5) in
  let pristine = Wal.mem_backend () in
  let durable = Wal.mem_backend () in
  let fh, buffered = Fault.write_buffered buf_rng durable in
  let backend = tee pristine buffered in
  let geometry = { Flights.flights = 2; rows_per_flight = 2; dest = "LA" } in
  let store = Flights.fresh_store ~backend geometry in
  backend.Wal.flush ();
  (* fixture durable before any fault is armed *)
  let config =
    { Server.default_config with Server.domains; max_batch = 8; session_buffer = 16 }
  in
  let server = Server.start ~config ~store (Server.Tcp ("127.0.0.1", 0)) in
  let addr = Server.address server in
  let damage =
    match Prng.int rng 3 with
    | 0 -> Fault.Clean
    | 1 -> Fault.Torn
    | _ -> Fault.Flipped
  in
  (* Only a handful of group-commit flushes happen per cycle (one per
     engine drain), so aim the crash at the first few. *)
  Fault.arm_flush fh ~crash_at_flush:(Prng.int rng 3) ~damage;
  let pairs = 2 + Prng.int rng 2 in
  let users = Travel.make_users ~flights:geometry.Flights.flights ~pairs_per_flight:pairs in
  let flights_of f = List.filter (fun u -> u.Travel.flight = f) users in
  let results = Array.make geometry.Flights.flights ([], []) in
  let threads =
    List.init geometry.Flights.flights (fun f ->
        Thread.create (fun () -> results.(f) <- drive_session addr ~seed (flights_of f)) ())
  in
  List.iter Thread.join threads;
  (* [stop]'s final drain may itself hit the armed flush, so judge the
     crash only after shutdown finished. *)
  (try Server.stop server with Fault.Crash -> ());
  let crashed = Server.failure server <> None in
  let batches = Net.Group_commit.batches (Server.group_commit server) in
  let all_sent = Array.to_list results |> List.concat_map fst in
  let all_acked = Array.to_list results |> List.concat_map snd in
  (* The process is dead: recover from the durable backend alone. *)
  let qdb' = Qdb.recover durable in
  let recovered = Qdb.db qdb' in
  let pending' = Qdb.pending qdb' in
  let survives label id =
    List.exists (fun t -> t.Rtxn.id = id) pending'
    || Flights.booking_of recovered label <> None
  in
  let violation =
    if not (List.exists (fun s -> Database.equal s recovered) (prefix_states pristine)) then
      Some "recovered state is not a prefix of the committed batches"
    else if not (Qdb.invariant_holds qdb') then
      Some "composed-satisfiability invariant broken after recovery"
    else
      List.find_map
        (fun a ->
          match a.ack_verdict with
          | `Committed id when not (survives a.ack_label id) ->
            Some
              (Printf.sprintf "acked admission %d (%s) did not survive recovery" id
                 a.ack_label)
          | `Committed _ | `Rejected | `Overloaded -> None)
        all_acked
  in
  let acked_labels =
    List.filter_map
      (fun a -> match a.ack_verdict with `Committed _ -> Some a.ack_label | _ -> None)
      all_acked
  in
  let lost_unacked =
    (* Submissions the client never heard back about and recovery does
       not contain: allowed to vanish — counted to show the volatile
       buffer actually bites. *)
    List.length
      (List.filter
         (fun label ->
           label <> ""
           && (not (List.mem label acked_labels))
           && (not (List.exists (fun t -> t.Rtxn.label = label) pending'))
           && Flights.booking_of recovered label = None)
         all_sent)
  in
  (crashed, List.length acked_labels, lost_unacked, batches, violation)

let run_server ?(cycles = 20) ?(seed = 77) ?(domains = 1) () =
  let acc =
    ref
      {
        srv_cycles = 0;
        srv_crashes = 0;
        srv_acked = 0;
        srv_lost_unacked = 0;
        srv_batches = 0;
        srv_violations = [];
      }
  in
  for cycle = 0 to cycles - 1 do
    let crashed, acked, lost, batches, violation =
      run_server_cycle ~seed:(seed + (cycle * 7919)) ~domains ()
    in
    let s = !acc in
    acc :=
      {
        srv_cycles = s.srv_cycles + 1;
        srv_crashes = (s.srv_crashes + if crashed then 1 else 0);
        srv_acked = s.srv_acked + acked;
        srv_lost_unacked = s.srv_lost_unacked + lost;
        srv_batches = s.srv_batches + batches;
        srv_violations =
          (match violation with
           | Some v -> (cycle, v) :: s.srv_violations
           | None -> s.srv_violations);
      }
  done;
  let s = !acc in
  { s with srv_violations = List.rev s.srv_violations }

let pp_server fmt s =
  Format.fprintf fmt
    "@[<v>%d server cycle(s): %d crash(es) mid-sync, %d group-commit batch(es)@,\
     %d acked admission(s) verified durable; %d un-acked submission(s) vanished (allowed)@,\
     %d contract violation(s)@]"
    s.srv_cycles s.srv_crashes s.srv_batches s.srv_acked s.srv_lost_unacked
    (List.length s.srv_violations)

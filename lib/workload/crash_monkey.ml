(* Crash monkey: deterministic crash/recover cycles over the full engine.

   Each cycle builds a travel database through a fault-injected WAL
   backend, drives a PRNG-scheduled workload (submits, collapsing reads,
   explicit groundings, checkpoints) through [Store]/[Qdb], kills the
   "process" at a random append with a random damage mode ([Fault]),
   recovers from the damaged log alone, and asserts the recovery
   contract:

   - the recovered database equals some prefix of the batches whose
     commit record reached the log (no committed batch is ever
     half-applied, no state is invented);
   - the recovered engine's composed-satisfiability invariant holds for
     every re-admitted pending transaction (Theorem 3.5 survives the
     crash);
   - the engine's own pending set agrees with the durable
     pending-transactions table.

   A pristine in-memory shadow of every line the engine *attempted* to
   append (damage-free, checkpoint swaps appended rather than replacing,
   so no history is lost) supplies the reference prefix states. *)

module Wal = Relational.Wal
module Database = Relational.Database
module Store = Relational.Store
module Qdb = Quantum.Qdb
module Rtxn = Quantum.Rtxn

type summary = {
  cycles : int;
  crashes : int;
  truncations : int; (* recoveries that dropped at least one record *)
  records_kept : int; (* summed over all recoveries *)
  records_dropped : int;
  clean_crashes : int;
  torn_crashes : int;
  flipped_crashes : int;
  mid_log_flips : int; (* cycles where a silent mid-log bit flip landed *)
  violations : (int * string) list; (* (cycle, what broke) *)
}

(* Mirror every attempted append into [pristine] while the damage-prone
   path goes to the wrapped backend.  Checkpoint segment swaps are
   *appended* to the pristine history (not swapped in), so earlier
   prefix states stay reconstructible even when the real swap is lost. *)
let tee pristine (inner : Wal.backend) =
  {
    inner with
    Wal.append =
      (fun line ->
        pristine.Wal.append line;
        inner.Wal.append line);
    rewrite =
      (fun lines ->
        List.iter pristine.Wal.append lines;
        inner.Wal.rewrite lines);
    reset =
      (fun () ->
        pristine.Wal.reset ();
        inner.Wal.reset ());
  }

(* Every database state at a batch/ddl/checkpoint boundary of the
   pristine history — the states a correct recovery may land on. *)
let prefix_states pristine =
  let db = ref (Database.create ()) in
  let pending = ref None in
  let snaps = ref [ Database.copy !db ] in
  let stable () = snaps := Database.copy !db :: !snaps in
  List.iteri
    (fun index line ->
      match Wal.decode_line ~index line with
      | Wal.Create_table schema ->
        ignore (Database.create_table !db schema);
        stable ()
      | Wal.Checkpoint image ->
        db := Wal.database_of_sexp image;
        pending := None;
        stable ()
      | Wal.Begin n -> pending := Some (n, [])
      | Wal.Op op ->
        (match !pending with
         | Some (n, ops) -> pending := Some (n, op :: ops)
         | None -> ())
      | Wal.Commit n ->
        (match !pending with
         | Some (m, ops) when m = n ->
           (match Database.apply_ops !db (List.rev ops) with
            | Ok () -> stable ()
            | Error _ -> ());
           pending := None
         | Some _ | None -> pending := None))
    (pristine.Wal.read_all ());
  !snaps

type cycle_outcome = {
  crashed : bool;
  damage : Fault.damage;
  flipped_mid_log : bool;
  kept : int;
  dropped : int;
  violation : string option;
}

(* In actor mode every post-fixture engine operation round-trips through
   the owning actor ([Actor.Runtime.call] on a real spawned domain —
   clamping is off so even a 1-core host exercises the hop), proving the
   injected [Fault.Crash] propagates across the domain boundary to the
   driver and that WAL append ordering — what the recovery contract
   checks — is unaffected by which domain ran the engine. *)
let run_cycle ?pool ?actors ~seed () =
  let rng = Prng.create seed in
  let fault_rng = Prng.create (seed lxor 0x5EED5EED) in
  let pristine = Wal.mem_backend () in
  let real = Wal.mem_backend () in
  let handle, faulty = Fault.wrap fault_rng real in
  let backend = tee pristine faulty in
  let geometry =
    { Flights.flights = 1; rows_per_flight = 2 + Prng.int rng 2; dest = "LA" }
  in
  let store = Flights.fresh_store ~backend geometry in
  (* Under a pool, exercise the parallel cache-refill fan-out on every
     commit (capacity > 1) — the WAL ordering the recovery contract
     checks must be unaffected by where solver work ran. *)
  let config =
    match pool with
    | Some _ -> { Qdb.default_config with Qdb.cache_capacity = 3 }
    | None -> Qdb.default_config
  in
  let qdb = Qdb.create ~config ?pool store in
  (* Fault schedule: arm only after the fixture is built, so the crash
     always lands inside the measured workload. *)
  let damage =
    match Prng.int rng 3 with
    | 0 -> Fault.Clean
    | 1 -> Fault.Torn
    | _ -> Fault.Flipped
  in
  let crash_after = Prng.int rng 45 in
  let flip_at =
    if crash_after > 2 && Prng.bool rng then Some (Prng.int rng (crash_after - 1)) else None
  in
  Fault.arm handle { Fault.crash_after; damage; flip_at };
  let users =
    Travel.make_users ~flights:1 ~pairs_per_flight:(3 * geometry.Flights.rows_per_flight / 2)
  in
  let users = Prng.shuffle_list rng users in
  let crashed = ref false in
  let rt =
    match actors with
    | Some n when n >= 1 ->
      Some (Actor.Runtime.create ~clamp:false ~actors:n ~make:(fun _ -> ()) ())
    | _ -> None
  in
  let exec f =
    match rt with
    | Some rt -> Actor.Runtime.call rt ~key:0 (fun () -> f ())
    | None -> f ()
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Actor.Runtime.shutdown rt)
    (fun () ->
      try
        List.iter
          (fun u ->
            (match Prng.int rng 12 with
             | 0 -> exec (fun () -> ignore (Qdb.read qdb (Travel.seat_query u)))
             | 1 -> exec (fun () -> Store.checkpoint store)
             | 2 ->
               exec (fun () ->
                   match Qdb.pending qdb with
                   | [] -> ()
                   | pending ->
                     let txn = List.nth pending (Prng.int rng (List.length pending)) in
                     ignore (Qdb.ground qdb txn.Rtxn.id))
             | _ -> ());
            let txn =
              if Prng.bool rng then Travel.entangled_txn u else Travel.plain_txn u
            in
            exec (fun () -> ignore (Qdb.submit qdb txn)))
          users;
        exec (fun () -> ignore (Qdb.ground_all qdb))
      with Fault.Crash -> crashed := true);
  let flipped_mid_log =
    match flip_at with
    | Some n -> n < handle.Fault.appends
    | None -> false
  in
  (* The process is dead; recover from the (possibly damaged) log alone. *)
  let qdb' = Qdb.recover real in
  let kept, dropped =
    match Qdb.recovery_report qdb' with
    | Some r -> (r.Wal.records_kept, r.Wal.records_dropped)
    | None -> (0, 0)
  in
  let violation =
    let recovered = Qdb.db qdb' in
    if not (List.exists (fun s -> Database.equal s recovered) (prefix_states pristine))
    then Some "recovered state is not a prefix of the committed batches"
    else if not (Qdb.invariant_holds qdb') then
      Some "composed-satisfiability invariant broken after recovery"
    else begin
      let table_rows =
        Relational.Table.cardinality (Database.table recovered Qdb.pending_table_name)
      in
      if table_rows <> Qdb.pending_count qdb' then
        Some
          (Printf.sprintf "pending table has %d row(s) but engine re-admitted %d" table_rows
             (Qdb.pending_count qdb'))
      else None
    end
  in
  { crashed = !crashed; damage; flipped_mid_log; kept; dropped; violation }

let run ?(cycles = 200) ?(seed = 42) ?pool ?actors () =
  let acc =
    ref
      {
        cycles = 0;
        crashes = 0;
        truncations = 0;
        records_kept = 0;
        records_dropped = 0;
        clean_crashes = 0;
        torn_crashes = 0;
        flipped_crashes = 0;
        mid_log_flips = 0;
        violations = [];
      }
  in
  for cycle = 0 to cycles - 1 do
    let o = run_cycle ?pool ?actors ~seed:(seed + (cycle * 7919)) () in
    let s = !acc in
    acc :=
      {
        cycles = s.cycles + 1;
        crashes = (s.crashes + if o.crashed then 1 else 0);
        truncations = (s.truncations + if o.dropped > 0 then 1 else 0);
        records_kept = s.records_kept + o.kept;
        records_dropped = s.records_dropped + o.dropped;
        clean_crashes =
          (s.clean_crashes + if o.crashed && o.damage = Fault.Clean then 1 else 0);
        torn_crashes = (s.torn_crashes + if o.crashed && o.damage = Fault.Torn then 1 else 0);
        flipped_crashes =
          (s.flipped_crashes + if o.crashed && o.damage = Fault.Flipped then 1 else 0);
        mid_log_flips = (s.mid_log_flips + if o.flipped_mid_log then 1 else 0);
        violations =
          (match o.violation with
           | Some v -> (cycle, v) :: s.violations
           | None -> s.violations);
      }
  done;
  let s = !acc in
  { s with violations = List.rev s.violations }

let pp fmt s =
  Format.fprintf fmt
    "@[<v>%d cycle(s): %d crash(es) (%d clean, %d torn, %d bit-flipped), %d mid-log flip(s)@,\
     %d recovery truncation(s); wal records kept %d, dropped %d@,\
     %d invariant violation(s)@]"
    s.cycles s.crashes s.clean_crashes s.torn_crashes s.flipped_crashes s.mid_log_flips
    s.truncations s.records_kept s.records_dropped (List.length s.violations)

(** Deterministic crash/recover cycles over the full engine.

    Each cycle drives a PRNG-scheduled travel workload through
    {!Quantum.Qdb} on a {!Fault}-wrapped WAL backend, crashes at a random
    append with a random damage mode, recovers from the damaged log
    alone, and asserts the recovery contract: the recovered database is
    a prefix of the committed batches (never a half-applied batch, never
    invented state), the composed-satisfiability invariant holds for
    every re-admitted pending transaction, and the engine's pending set
    agrees with the durable pending-transactions table.

    Everything derives from the seed: same seed, same cycles, same
    summary. *)

type summary = {
  cycles : int;
  crashes : int;
  truncations : int;  (** recoveries that dropped at least one record *)
  records_kept : int;  (** summed over all recoveries *)
  records_dropped : int;
  clean_crashes : int;
  torn_crashes : int;
  flipped_crashes : int;
  mid_log_flips : int;  (** cycles where a silent mid-log bit flip landed *)
  violations : (int * string) list;  (** (cycle, what broke) — must be [] *)
}

val run :
  ?cycles:int ->
  ?seed:int ->
  ?pool:Par.Pool.t ->
  ?actors:int ->
  ?backend:Quantum.Qdb.solver_backend ->
  unit ->
  summary
(** Defaults: 200 cycles, seed 42.  With [pool], each cycle's engine
    runs its cache-refill fan-out across the pool (capacity 3, so the
    fan-out actually fires) — proving WAL ordering and the recovery
    contract are unaffected by where solver work ran.  With [actors],
    every post-fixture engine operation instead round-trips through an
    owning actor on a real spawned domain ({!Actor.Runtime.call},
    unclamped), proving the injected crash propagates across the domain
    boundary and the recovery contract holds in actor mode too.  [backend]
    selects the admission backend under fault injection (default
    {!Qdb.Backtracking}); {!Qdb.Sat_backend} drives the incremental CDCL
    session through every crash/recovery cycle, with insert-safety checks
    off (negative atoms are not SAT-encodable) on both sides of the
    crash. *)

val pp : Format.formatter -> summary -> unit

(** {1 Server mode}

    The same contract through the network front door: the store sits on
    a volatile write buffer ({!Fault.write_buffered} — appends reach
    stable storage only at a group-commit fsync), one client session
    per flight pipelines submissions over real sockets, and an armed
    flush kills the "process" mid-sync.  Recovery from the durable
    backend alone must contain every admission a client was {e acked}
    (acks go out only after the batch fsync), must be a batch-prefix of
    the attempted history (un-acked admissions may vanish but never
    half-apply), and must satisfy the composed-satisfiability
    invariant. *)

type server_summary = {
  srv_cycles : int;
  srv_crashes : int;  (** cycles where the armed flush fired *)
  srv_acked : int;  (** acked admissions verified durable *)
  srv_lost_unacked : int;
      (** un-acked submissions absent after recovery — allowed losses,
          counted to show the volatile buffer actually bites *)
  srv_batches : int;  (** group-commit batches that synced *)
  srv_violations : (int * string) list;  (** (cycle, what broke) — must be [] *)
}

val run_server : ?cycles:int -> ?seed:int -> ?domains:int -> unit -> server_summary
(** Defaults: 20 cycles, seed 77, 1 domain.  Which admissions end up
    acked depends on scheduling (batch formation races the crash), but
    the contract must hold at every interleaving and every domain
    count. *)

val pp_server : Format.formatter -> server_summary -> unit

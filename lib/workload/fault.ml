(* Deterministic fault injection for WAL backends.

   [wrap] interposes on a {!Relational.Wal.backend} and, once armed with
   a {!plan}, simulates storage failures at exact append offsets: clean
   process death, torn writes (a PRNG-chosen prefix of the final line),
   bit flips on the crashing append, and silent mid-log bit flips some
   appends before the crash.  All randomness comes from the supplied
   {!Prng.t}, so every fault schedule is reproducible from its seed —
   the property the crash-monkey harness and the recovery tests rely
   on.

   The wrapper starts transparent; [arm] switches the faults on.  That
   lets a test build its fixture (schema DDL, initial rows) through the
   same backend without risking a crash during setup. *)

module Wal = Relational.Wal

exception Crash
(* Simulated process death: the append (or segment swap) that raised it
   was the last thing the "process" did.  Recovery must proceed from the
   underlying backend alone. *)

type damage =
  | Clean (* nothing of the crashing append reaches the log *)
  | Torn (* a strict prefix of the crashing append is written *)
  | Flipped (* the crashing append is written whole with one bit flipped *)

let damage_to_string = function
  | Clean -> "clean"
  | Torn -> "torn"
  | Flipped -> "flipped"

type plan = {
  crash_after : int; (* crash on append number [crash_after] (0-based, post-arm) *)
  damage : damage; (* what the crashing append leaves behind *)
  flip_at : int option; (* additionally bit-flip append [n] silently, n < crash_after *)
}

type handle = {
  rng : Prng.t;
  mutable armed : plan option;
  mutable appends : int; (* appends observed since arming *)
  mutable crashed : bool;
}

let arm h plan =
  h.armed <- Some plan;
  h.appends <- 0;
  h.crashed <- false

let disarm h = h.armed <- None

(* Flip one PRNG-chosen bit of one PRNG-chosen byte. *)
let flip_one_bit rng line =
  if String.length line = 0 then line
  else begin
    let b = Bytes.of_string line in
    let pos = Prng.int rng (Bytes.length b) in
    let bit = Prng.int rng 8 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    Bytes.to_string b
  end

let wrap rng (inner : Wal.backend) =
  let h = { rng; armed = None; appends = 0; crashed = false } in
  let crash () =
    h.crashed <- true;
    raise Crash
  in
  let append line =
    match h.armed with
    | None -> inner.Wal.append line
    | Some plan ->
      let n = h.appends in
      h.appends <- n + 1;
      if Some n = plan.flip_at then inner.Wal.append (flip_one_bit rng line)
      else if n >= plan.crash_after then begin
        (match plan.damage with
         | Clean -> ()
         | Torn ->
           (* A strict prefix — possibly empty, never the whole line. *)
           let k = Prng.int rng (max 1 (String.length line)) in
           inner.Wal.append (String.sub line 0 k)
         | Flipped -> inner.Wal.append (flip_one_bit rng line));
        crash ()
      end
      else inner.Wal.append line
  in
  let rewrite lines =
    (* Segment swaps (checkpoint compaction) are atomic rename: at a
       crash point the swap either fully happened or not at all —
       decided by the PRNG so both sides get exercised. *)
    match h.armed with
    | None -> inner.Wal.rewrite lines
    | Some plan ->
      let n = h.appends in
      h.appends <- n + 1;
      if n >= plan.crash_after then begin
        if Prng.bool rng then inner.Wal.rewrite lines;
        crash ()
      end
      else inner.Wal.rewrite lines
  in
  ( h,
    {
      inner with
      Wal.append;
      rewrite;
    } )

(* -- Volatile write buffer --------------------------------------------------

   Models the OS page cache under a [Never] sync policy: appends land in
   RAM and reach the durable inner backend only at [flush] — a crash
   loses exactly the unflushed suffix.  This is what makes the network
   front door's ack-after-fsync contract falsifiable: with a plain
   mem-backend every append would be instantly "durable" and an
   unacknowledged admission could never vanish.

   Once armed, the [crash_at_flush]-th flush (0-based, counted from
   [arm_flush]) kills the "process" mid-sync: [Clean] transfers nothing
   of the pending buffer, [Torn] transfers a strict prefix of its lines
   with the next line cut mid-line, [Flipped] transfers everything with
   one bit flipped in the final line.  Lines transferred by earlier
   flushes are never touched — damage is confined to the crashing sync,
   like a real power cut under an ordered page cache. *)

type flush_handle = {
  frng : Prng.t;
  mutable pending_lines : string list; (* newest first; volatile *)
  mutable flushes : int; (* flushes observed since arming *)
  mutable flush_plan : (int * damage) option;
  mutable flush_crashed : bool;
}

let arm_flush h ~crash_at_flush ~damage =
  h.flush_plan <- Some (crash_at_flush, damage);
  h.flushes <- 0;
  h.flush_crashed <- false

let write_buffered rng (inner : Wal.backend) =
  let h =
    { frng = rng; pending_lines = []; flushes = 0; flush_plan = None; flush_crashed = false }
  in
  let drain () =
    let lines = List.rev h.pending_lines in
    h.pending_lines <- [];
    lines
  in
  let transfer lines = List.iter inner.Wal.append lines in
  let sync_all () =
    transfer (drain ());
    inner.Wal.flush ()
  in
  let flush () =
    let n = h.flushes in
    h.flushes <- n + 1;
    match h.flush_plan with
    | Some (at, damage) when n >= at && not h.flush_crashed ->
      let lines = List.rev h.pending_lines in
      (match damage with
       | Clean -> ()
       | Torn ->
         (match lines with
          | [] -> ()
          | _ ->
            let k = Prng.int h.frng (List.length lines) in
            transfer (List.filteri (fun i _ -> i < k) lines);
            (match List.nth_opt lines k with
             | Some line when String.length line > 0 ->
               inner.Wal.append (String.sub line 0 (Prng.int h.frng (String.length line)))
             | _ -> ()))
       | Flipped ->
         (match List.rev lines with
          | [] -> ()
          | last :: before ->
            transfer (List.rev before);
            inner.Wal.append (flip_one_bit h.frng last)));
      inner.Wal.flush ();
      h.flush_crashed <- true;
      raise Crash
    | _ -> sync_all ()
  in
  ( h,
    {
      Wal.append = (fun line -> h.pending_lines <- line :: h.pending_lines);
      iter_lines =
        (fun f ->
          inner.Wal.iter_lines f;
          List.iter f (List.rev h.pending_lines));
      read_all = (fun () -> inner.Wal.read_all () @ List.rev h.pending_lines);
      truncate =
        (fun n ->
          sync_all ();
          inner.Wal.truncate n);
      rewrite =
        (fun lines ->
          h.pending_lines <- [];
          inner.Wal.rewrite lines);
      flush;
      close =
        (fun () ->
          (* Orderly process exit syncs; a crashed one already lost its
             buffer. *)
          if not h.flush_crashed then sync_all ();
          inner.Wal.close ());
      reset =
        (fun () ->
          h.pending_lines <- [];
          inner.Wal.reset ());
    } )

(* -- Engine-level fault injection ------------------------------------------

   Beyond storage, the chaos harness injects faults into the engine's
   parallel fan-outs through [Qdb.set_fault_injector]: a pool-worker job
   raising mid-flight during a cache refill or a blind-write recheck.
   The decision for each job is a pure hash of (seed, kind, fan-out
   sequence number, job index) — no mutable PRNG state — so a schedule
   is identical however the jobs are spread across domains, which is
   exactly what the bit-identical 1/2/4-domain oracle requires. *)

exception Injected of string
(* A simulated pool-worker crash.  The engine must absorb it: refills are
   abandoned wholesale, write revalidations refuse conservatively. *)

type engine_plan = {
  chaos_seed : int;
  refill_rate : float; (* per-job probability a cache-refill job raises *)
  recheck_rate : float; (* per-job probability a write-recheck job raises *)
}

(* splitmix64-style finalizer over the packed decision coordinates. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let decision ~seed ~kind ~fanout ~job =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
      (Int64.of_int ((Hashtbl.hash kind * 0x1F1F1F) lxor (fanout * 8191) lxor job))
  in
  let bits = Int64.to_int (Int64.logand (mix64 z) 0xFFFFFL) in
  float_of_int bits /. 1048576.

let injector plan ~kind ~fanout ~job =
  let rate =
    match kind with
    | "refill" -> plan.refill_rate
    | "recheck" -> plan.recheck_rate
    | _ -> 0.
  in
  if rate > 0. && decision ~seed:plan.chaos_seed ~kind ~fanout ~job < rate then
    raise (Injected (Printf.sprintf "%s fan-out %d job %d" kind fanout job))

(* Deterministic fault injection for WAL backends.

   [wrap] interposes on a {!Relational.Wal.backend} and, once armed with
   a {!plan}, simulates storage failures at exact append offsets: clean
   process death, torn writes (a PRNG-chosen prefix of the final line),
   bit flips on the crashing append, and silent mid-log bit flips some
   appends before the crash.  All randomness comes from the supplied
   {!Prng.t}, so every fault schedule is reproducible from its seed —
   the property the crash-monkey harness and the recovery tests rely
   on.

   The wrapper starts transparent; [arm] switches the faults on.  That
   lets a test build its fixture (schema DDL, initial rows) through the
   same backend without risking a crash during setup. *)

module Wal = Relational.Wal

exception Crash
(* Simulated process death: the append (or segment swap) that raised it
   was the last thing the "process" did.  Recovery must proceed from the
   underlying backend alone. *)

type damage =
  | Clean (* nothing of the crashing append reaches the log *)
  | Torn (* a strict prefix of the crashing append is written *)
  | Flipped (* the crashing append is written whole with one bit flipped *)

let damage_to_string = function
  | Clean -> "clean"
  | Torn -> "torn"
  | Flipped -> "flipped"

type plan = {
  crash_after : int; (* crash on append number [crash_after] (0-based, post-arm) *)
  damage : damage; (* what the crashing append leaves behind *)
  flip_at : int option; (* additionally bit-flip append [n] silently, n < crash_after *)
}

type handle = {
  rng : Prng.t;
  mutable armed : plan option;
  mutable appends : int; (* appends observed since arming *)
  mutable crashed : bool;
}

let arm h plan =
  h.armed <- Some plan;
  h.appends <- 0;
  h.crashed <- false

let disarm h = h.armed <- None

(* Flip one PRNG-chosen bit of one PRNG-chosen byte. *)
let flip_one_bit rng line =
  if String.length line = 0 then line
  else begin
    let b = Bytes.of_string line in
    let pos = Prng.int rng (Bytes.length b) in
    let bit = Prng.int rng 8 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    Bytes.to_string b
  end

let wrap rng (inner : Wal.backend) =
  let h = { rng; armed = None; appends = 0; crashed = false } in
  let crash () =
    h.crashed <- true;
    raise Crash
  in
  let append line =
    match h.armed with
    | None -> inner.Wal.append line
    | Some plan ->
      let n = h.appends in
      h.appends <- n + 1;
      if Some n = plan.flip_at then inner.Wal.append (flip_one_bit rng line)
      else if n >= plan.crash_after then begin
        (match plan.damage with
         | Clean -> ()
         | Torn ->
           (* A strict prefix — possibly empty, never the whole line. *)
           let k = Prng.int rng (max 1 (String.length line)) in
           inner.Wal.append (String.sub line 0 k)
         | Flipped -> inner.Wal.append (flip_one_bit rng line));
        crash ()
      end
      else inner.Wal.append line
  in
  let rewrite lines =
    (* Segment swaps (checkpoint compaction) are atomic rename: at a
       crash point the swap either fully happened or not at all —
       decided by the PRNG so both sides get exercised. *)
    match h.armed with
    | None -> inner.Wal.rewrite lines
    | Some plan ->
      let n = h.appends in
      h.appends <- n + 1;
      if n >= plan.crash_after then begin
        if Prng.bool rng then inner.Wal.rewrite lines;
        crash ()
      end
      else inner.Wal.rewrite lines
  in
  ( h,
    {
      inner with
      Wal.append;
      rewrite;
    } )

(* -- Engine-level fault injection ------------------------------------------

   Beyond storage, the chaos harness injects faults into the engine's
   parallel fan-outs through [Qdb.set_fault_injector]: a pool-worker job
   raising mid-flight during a cache refill or a blind-write recheck.
   The decision for each job is a pure hash of (seed, kind, fan-out
   sequence number, job index) — no mutable PRNG state — so a schedule
   is identical however the jobs are spread across domains, which is
   exactly what the bit-identical 1/2/4-domain oracle requires. *)

exception Injected of string
(* A simulated pool-worker crash.  The engine must absorb it: refills are
   abandoned wholesale, write revalidations refuse conservatively. *)

type engine_plan = {
  chaos_seed : int;
  refill_rate : float; (* per-job probability a cache-refill job raises *)
  recheck_rate : float; (* per-job probability a write-recheck job raises *)
}

(* splitmix64-style finalizer over the packed decision coordinates. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let decision ~seed ~kind ~fanout ~job =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
      (Int64.of_int ((Hashtbl.hash kind * 0x1F1F1F) lxor (fanout * 8191) lxor job))
  in
  let bits = Int64.to_int (Int64.logand (mix64 z) 0xFFFFFL) in
  float_of_int bits /. 1048576.

let injector plan ~kind ~fanout ~job =
  let rate =
    match kind with
    | "refill" -> plan.refill_rate
    | "recheck" -> plan.recheck_rate
    | _ -> 0.
  in
  if rate > 0. && decision ~seed:plan.chaos_seed ~kind ~fanout ~job < rate then
    raise (Injected (Printf.sprintf "%s fan-out %d job %d" kind fanout job))

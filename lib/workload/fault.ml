(* Deterministic fault injection for WAL backends.

   [wrap] interposes on a {!Relational.Wal.backend} and, once armed with
   a {!plan}, simulates storage failures at exact append offsets: clean
   process death, torn writes (a PRNG-chosen prefix of the final line),
   bit flips on the crashing append, and silent mid-log bit flips some
   appends before the crash.  All randomness comes from the supplied
   {!Prng.t}, so every fault schedule is reproducible from its seed —
   the property the crash-monkey harness and the recovery tests rely
   on.

   The wrapper starts transparent; [arm] switches the faults on.  That
   lets a test build its fixture (schema DDL, initial rows) through the
   same backend without risking a crash during setup. *)

module Wal = Relational.Wal

exception Crash
(* Simulated process death: the append (or segment swap) that raised it
   was the last thing the "process" did.  Recovery must proceed from the
   underlying backend alone. *)

type damage =
  | Clean (* nothing of the crashing append reaches the log *)
  | Torn (* a strict prefix of the crashing append is written *)
  | Flipped (* the crashing append is written whole with one bit flipped *)

let damage_to_string = function
  | Clean -> "clean"
  | Torn -> "torn"
  | Flipped -> "flipped"

type plan = {
  crash_after : int; (* crash on append number [crash_after] (0-based, post-arm) *)
  damage : damage; (* what the crashing append leaves behind *)
  flip_at : int option; (* additionally bit-flip append [n] silently, n < crash_after *)
}

type handle = {
  rng : Prng.t;
  mutable armed : plan option;
  mutable appends : int; (* appends observed since arming *)
  mutable crashed : bool;
}

let arm h plan =
  h.armed <- Some plan;
  h.appends <- 0;
  h.crashed <- false

let disarm h = h.armed <- None

(* Flip one PRNG-chosen bit of one PRNG-chosen byte. *)
let flip_one_bit rng line =
  if String.length line = 0 then line
  else begin
    let b = Bytes.of_string line in
    let pos = Prng.int rng (Bytes.length b) in
    let bit = Prng.int rng 8 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    Bytes.to_string b
  end

let wrap rng (inner : Wal.backend) =
  let h = { rng; armed = None; appends = 0; crashed = false } in
  let crash () =
    h.crashed <- true;
    raise Crash
  in
  let append line =
    match h.armed with
    | None -> inner.Wal.append line
    | Some plan ->
      let n = h.appends in
      h.appends <- n + 1;
      if Some n = plan.flip_at then inner.Wal.append (flip_one_bit rng line)
      else if n >= plan.crash_after then begin
        (match plan.damage with
         | Clean -> ()
         | Torn ->
           (* A strict prefix — possibly empty, never the whole line. *)
           let k = Prng.int rng (max 1 (String.length line)) in
           inner.Wal.append (String.sub line 0 k)
         | Flipped -> inner.Wal.append (flip_one_bit rng line));
        crash ()
      end
      else inner.Wal.append line
  in
  let rewrite lines =
    (* Segment swaps (checkpoint compaction) are atomic rename: at a
       crash point the swap either fully happened or not at all —
       decided by the PRNG so both sides get exercised. *)
    match h.armed with
    | None -> inner.Wal.rewrite lines
    | Some plan ->
      let n = h.appends in
      h.appends <- n + 1;
      if n >= plan.crash_after then begin
        if Prng.bool rng then inner.Wal.rewrite lines;
        crash ()
      end
      else inner.Wal.rewrite lines
  in
  ( h,
    {
      inner with
      Wal.append;
      rewrite;
    } )

(** Deterministic, PRNG-driven fault injection for WAL backends.

    Wraps any {!Relational.Wal.backend} and, once armed, simulates
    storage failure at an exact append offset: clean process death, a
    torn write (a strict prefix of the final line), a bit-flipped final
    append, and optionally a silent mid-log bit flip some appends before
    the crash.  All randomness comes from the supplied {!Prng.t}, so
    every fault schedule replays identically from its seed. *)

exception Crash
(** Simulated process death.  The engine that raised it must be
    abandoned; recovery proceeds from the underlying backend alone. *)

type damage =
  | Clean  (** nothing of the crashing append reaches the log *)
  | Torn  (** a strict prefix of the crashing append is written *)
  | Flipped  (** the crashing append is written whole with one bit flipped *)

val damage_to_string : damage -> string

type plan = {
  crash_after : int;
      (** crash on append number [crash_after] (0-based, counted from
          {!arm}) *)
  damage : damage;
  flip_at : int option;
      (** additionally bit-flip append [n] silently, [n < crash_after] —
          corruption in the middle of the log, discovered only at
          replay *)
}

type handle = {
  rng : Prng.t;
  mutable armed : plan option;
  mutable appends : int;
  mutable crashed : bool;
}

val arm : handle -> plan -> unit
(** Switch faults on; append counting starts at 0. *)

val disarm : handle -> unit

val wrap : Prng.t -> Relational.Wal.backend -> handle * Relational.Wal.backend
(** The wrapped backend is transparent until {!arm}.  Checkpoint segment
    swaps ([rewrite]) count as one append and, at the crash point, either
    fully happen or not at all (atomic rename), PRNG-decided. *)

(** {1 Volatile write buffer}

    The OS page cache under a [Never] sync policy: appends stay in RAM
    until [flush] transfers them to the durable inner backend, so a
    crash loses exactly the unflushed suffix.  Gives the network front
    door's ack-after-fsync contract something to violate — on a plain
    mem-backend no unacknowledged admission could ever vanish. *)

type flush_handle = {
  frng : Prng.t;
  mutable pending_lines : string list;  (** newest first; volatile *)
  mutable flushes : int;  (** flushes observed since {!arm_flush} *)
  mutable flush_plan : (int * damage) option;
  mutable flush_crashed : bool;
}

val arm_flush : flush_handle -> crash_at_flush:int -> damage:damage -> unit
(** Crash on flush number [crash_at_flush] (0-based, counted from this
    call): [Clean] transfers none of the buffer, [Torn] a strict prefix
    with the next line cut mid-line, [Flipped] everything with one bit
    flipped in the last line.  Earlier flushes' lines are never
    damaged. *)

val write_buffered : Prng.t -> Relational.Wal.backend -> flush_handle * Relational.Wal.backend
(** The wrapped backend buffers appends until [flush]; recovery must
    proceed from the inner backend alone (the survivor of the crash).
    [close] on an uncrashed handle syncs first (orderly exit);
    [truncate] syncs, [rewrite] discards the buffer (segment swap). *)

(** {1 Engine-level fault injection}

    Faults inside the engine's parallel fan-outs, delivered through
    [Qdb.set_fault_injector].  Each job's fate is a pure hash of
    [(seed, kind, fanout, job)] — no mutable PRNG — so a fault schedule
    is identical at any domain count. *)

exception Injected of string
(** A simulated pool-worker crash mid-fan-out. *)

type engine_plan = {
  chaos_seed : int;
  refill_rate : float;  (** per-job probability a cache-refill job raises *)
  recheck_rate : float;  (** per-job probability a write-recheck job raises *)
}

val injector : engine_plan -> kind:string -> fanout:int -> job:int -> unit
(** The function to install with [Qdb.set_fault_injector]. *)

(* Workload runner: drives a generated operation stream against either the
   quantum engine or the Intelligent Social baseline, collecting the
   measurements the paper's figures report — cumulative per-operation
   time, read/update time split, coordination percentage, and the maximum
   number of pending transactions observed. *)

module Store = Relational.Store
module Qdb = Quantum.Qdb

type engine =
  | Quantum_engine of Qdb.config
  | Intelligent_social

type spec = {
  geometry : Flights.geometry;
  order : Travel.order;
  seed : int;
  read_fraction : float; (* fraction of the op stream that is reads *)
  pairs_per_flight : int;
}

let default_spec =
  {
    geometry = { Flights.flights = 1; rows_per_flight = 34; dest = "LA" };
    order = Travel.Random_order;
    seed = 42;
    read_fraction = 0.;
    pairs_per_flight = 51; (* 102 users for 102 seats, as in Figures 5/6 *)
  }

type op =
  | Book of Travel.user
  | Read_seat of Travel.user

(* Engine metrics accumulated across every quantum run this process has
   executed — each run builds a fresh [Qdb.t] and would otherwise discard
   its counters and latency histograms with it.  The bench harness
   snapshots this sink into results/metrics.json after the experiments. *)
let metrics_sink = Quantum.Metrics.create ()
let reset_metrics_sink () = Quantum.Metrics.reset metrics_sink

type outcome = {
  cumulative_ms : float array; (* wall-clock after each operation *)
  total_time_s : float;
  committed : int;
  rejected : int;
  coordinated : int;
  max_possible : int;
  coordination_pct : float;
  max_pending : int;
  time_reads_s : float;
  time_updates_s : float;
  ops : int;
}

(* Build the operation stream: the ordered bookings with reads injected at
   random positions; each read targets a user who already booked. *)
let build_ops spec rng =
  let users = Travel.make_users ~flights:spec.geometry.Flights.flights
      ~pairs_per_flight:spec.pairs_per_flight
  in
  let ordered = Travel.order_users spec.order rng users in
  let n_books = List.length ordered in
  let n_reads =
    if spec.read_fraction <= 0. then 0
    else begin
      (* reads are a fraction of the total op count: total = books + reads,
         reads/total = f  =>  reads = books * f / (1 - f) *)
      let f = Float.min spec.read_fraction 0.95 in
      int_of_float (Float.round (float_of_int n_books *. f /. (1. -. f)))
    end
  in
  let ops = ref [] in
  let issued = ref [] in
  let pending_reads = ref n_reads in
  let remaining_books = ref n_books in
  List.iter
    (fun user ->
      ops := Book user :: !ops;
      issued := user :: !issued;
      decr remaining_books;
      (* Interleave reads proportionally to the remaining stream. *)
      let reads_now =
        if !remaining_books = 0 then !pending_reads
        else begin
          let per_book =
            float_of_int !pending_reads /. float_of_int (!remaining_books + 1)
          in
          let base = int_of_float per_book in
          base + (if Prng.float rng < per_book -. float_of_int base then 1 else 0)
        end
      in
      for _ = 1 to min reads_now !pending_reads do
        ops := Read_seat (Prng.pick rng !issued) :: !ops;
        decr pending_reads
      done)
    ordered;
  (List.rev !ops, ordered)

(* -- Sharded execution (Figure 7, domain-parallel admission) ----------------

   Flights are independent by construction — [Travel.entangled_txn] binds
   the flight as a constant and optional atoms carry no dependence — so
   the engine's independent-set partitioning never groups transactions
   across flights, and each flight's admission stream can run on its own
   engine, concurrently.  [run_sharded] builds the SAME global operation
   stream as [run] (same seed, same PRNG consumption), splits it by
   flight preserving per-flight order, executes every shard on a private
   store + engine (on the pool when given), and recombines the
   measurements on the calling thread in flight order — so the admission
   outcomes, groundings and coordination are identical at any pool size,
   and match what one engine computes for the same stream.

   Not carried over from [run]: [cumulative_ms] (empty — per-op wall
   clock interleaves across shards) and [max_pending] becomes the max
   over shards rather than a global count. *)
let run_sharded ?pool ?collect engine spec =
  let rng = Prng.create spec.seed in
  let ops, users = build_ops spec rng in
  (* Split by flight, preserving each flight's sub-order. *)
  let by_flight = Hashtbl.create 16 in
  let flight_ids = ref [] in
  List.iter
    (fun op ->
      let u = match op with Book u | Read_seat u -> u in
      let f = u.Travel.flight in
      (match Hashtbl.find_opt by_flight f with
       | Some ops -> Hashtbl.replace by_flight f (op :: ops)
       | None ->
         flight_ids := f :: !flight_ids;
         Hashtbl.replace by_flight f [ op ]))
    ops;
  let shards =
    List.map
      (fun f -> (f, List.rev (Hashtbl.find by_flight f)))
      (List.sort Int.compare !flight_ids)
  in
  let start = Obs.Mclock.now_ns () in
  let run_shard (flight, shard_ops) =
    (* Compute phase: the whole per-flight admission stream, wherever it
       runs (worker domain or the caller helping drain).  The engine's
       own instrumentation carves compose/cache/solve/wal/ground out of
       it, leaving shard-level self time = store setup + op dispatch. *)
    Obs.Flight.time Obs.Flight.Compute @@ fun () ->
    Obs.Trace.span ~cat:"shard"
      ~args:(fun () ->
        [ ("flight", Obs.Trace.Int flight); ("ops", Obs.Trace.Int (List.length shard_ops)) ])
      "shard.run"
    @@ fun () ->
    let store = Flights.fresh_store spec.geometry in
    let committed = ref 0 and rejected = ref 0 in
    let max_pending = ref 0 in
    let time_reads = ref 0. and time_updates = ref 0. in
    let qdb =
      match engine with
      | Quantum_engine config -> Some (Qdb.create ~config store)
      | Intelligent_social -> None
    in
    List.iter
      (fun op ->
        let op_start = Obs.Mclock.now_ns () in
        (match op, qdb with
         | Book user, Some qdb ->
           (match Qdb.submit qdb (Travel.entangled_txn user) with
            | Qdb.Committed _ -> incr committed
            | Qdb.Rejected _ | Qdb.Overloaded _ -> incr rejected);
           max_pending := max !max_pending (Qdb.pending_count qdb)
         | Book user, None ->
           if Travel.is_book store user then incr committed else incr rejected
         | Read_seat user, Some qdb -> ignore (Qdb.read qdb (Travel.seat_query user))
         | Read_seat user, None ->
           ignore (Solver.Query.all (Store.db store) (Travel.seat_query user)));
        let dt = Obs.Mclock.elapsed_s op_start in
        match op with
        | Book _ -> time_updates := !time_updates +. dt
        | Read_seat _ -> time_reads := !time_reads +. dt)
      shard_ops;
    (match qdb with
     | Some qdb -> ignore (Qdb.ground_all qdb)
     | None -> ());
    let metrics = Option.map Qdb.metrics qdb in
    (flight, store, metrics, !committed, !rejected, !max_pending, !time_reads, !time_updates)
  in
  let results =
    match pool with
    | Some pool when Par.Pool.size pool > 1 -> Par.Pool.map pool run_shard shards
    | Some _ | None -> List.map run_shard shards
  in
  let total_time_s = Obs.Mclock.elapsed_s start in
  (* Recombination on the calling thread, in flight order: metrics merge
     into the process-wide sink, per-shard coordination accounting, and
     the caller's database inspection hook. *)
  let committed = ref 0 and rejected = ref 0 in
  let max_pending = ref 0 in
  let time_reads = ref 0. and time_updates = ref 0. in
  let coordinated = ref 0 and max_possible = ref 0 in
  Obs.Flight.time Obs.Flight.Merge @@ fun () ->
  Obs.Trace.span ~cat:"shard"
    ~args:(fun () -> [ ("shards", Obs.Trace.Int (List.length results)) ])
    "shard.merge"
  @@ fun () ->
  List.iter
    (fun (flight, store, metrics, c, r, mp, tr, tu) ->
      (match metrics with
       | Some m -> Quantum.Metrics.merge ~into:metrics_sink m
       | None -> ());
      committed := !committed + c;
      rejected := !rejected + r;
      max_pending := max !max_pending mp;
      time_reads := !time_reads +. tr;
      time_updates := !time_updates +. tu;
      let db = Store.db store in
      let shard_users = List.filter (fun u -> u.Travel.flight = flight) users in
      coordinated := !coordinated + Travel.coordinated_users db shard_users;
      max_possible := !max_possible + Travel.max_coordination spec.geometry shard_users;
      match collect with
      | Some f -> f ~flight db
      | None -> ())
    results;
  {
    cumulative_ms = [||];
    total_time_s;
    committed = !committed;
    rejected = !rejected;
    coordinated = !coordinated;
    max_possible = !max_possible;
    coordination_pct =
      (if !max_possible = 0 then 0.
       else 100. *. float_of_int !coordinated /. float_of_int !max_possible);
    max_pending = !max_pending;
    time_reads_s = !time_reads;
    time_updates_s = !time_updates;
    ops = List.length ops;
  }

(* -- Actor execution (shared-nothing partition owners) ----------------------

   The sharded runner above still orchestrates from the calling thread:
   every flight's whole stream is one pool job, and the enqueue→dequeue
   wait of those giant jobs is what the Figure-7 sweep measured as 179 s
   of queue time against a 43 s wall.  [run_actors] inverts the
   ownership: one long-lived actor domain owns each flight group
   end-to-end — store, engine, admission, grounding, WAL — and the
   driver only routes operations to owners, op by op, through bounded
   mailboxes.  Nothing is enqueued per flight; nothing waits on a
   centralized queue; backpressure is a full mailbox blocking the
   driver.

   Outcome identity: each group runs the SAME per-flight op sequence
   against the same fresh store + engine as a [run_sharded] shard (the
   global stream and PRNG consumption are shared via [build_ops], and
   per-owner mailbox FIFO preserves per-flight order), so admission
   outcomes are bit-identical to [run_sharded] — and across actor
   counts, since a group's stream does not depend on which actor owns
   it. *)

type group = {
  g_flight : int;
  g_store : Store.t;
  g_qdb : Qdb.t option;
  mutable g_committed : int;
  mutable g_rejected : int;
  mutable g_max_pending : int;
  mutable g_time_reads : float;
  mutable g_time_updates : float;
}

type actor_report = {
  actors_requested : int;
  actors_live : int;  (** after the hardware clamp *)
  busy_s : float;  (** summed actor task time, the denominator of phase attribution *)
  messages : int;
}

let run_actors ?mailbox_capacity ?clamp ?collect ~actors engine spec =
  let rng = Prng.create spec.seed in
  let ops, users = build_ops spec rng in
  (* Flight ids in first-appearance order, for the final ground_all round
     and the (sorted) merge. *)
  let seen = Hashtbl.create 16 in
  let flight_ids = ref [] in
  List.iter
    (fun op ->
      let u = match op with Book u | Read_seat u -> u in
      if not (Hashtbl.mem seen u.Travel.flight) then begin
        Hashtbl.add seen u.Travel.flight ();
        flight_ids := u.Travel.flight :: !flight_ids
      end)
    ops;
  let flights = List.sort Int.compare !flight_ids in
  (* Group state is born on the owning actor's domain: the store and
     engine never exist anywhere else. *)
  let make flight =
    let store = Flights.fresh_store spec.geometry in
    (* Group commit at the actor's mailbox-drain boundary (the
       [on_batch_end] hook below) owns durability from here on: the
       per-admission [Every_batch] sync the ROADMAP flagged is retired,
       one sync covers however many admissions drained together. *)
    Store.set_sync store Relational.Wal.Never;
    {
      g_flight = flight;
      g_store = store;
      g_qdb =
        (match engine with
         | Quantum_engine config -> Some (Qdb.create ~config store)
         | Intelligent_social -> None);
      g_committed = 0;
      g_rejected = 0;
      g_max_pending = 0;
      g_time_reads = 0.;
      g_time_updates = 0.;
    }
  in
  let rt =
    Actor.Runtime.create ?mailbox_capacity ?clamp
      ~on_batch_end:(fun g -> Store.sync g.g_store)
      ~actors ~make ()
  in
  Fun.protect ~finally:(fun () -> Actor.Runtime.shutdown rt)
  @@ fun () ->
  let start = Obs.Mclock.now_ns () in
  let apply g op =
    let op_start = Obs.Mclock.now_ns () in
    (match op, g.g_qdb with
     | Book user, Some qdb ->
       (match Qdb.submit qdb (Travel.entangled_txn user) with
        | Qdb.Committed _ -> g.g_committed <- g.g_committed + 1
        | Qdb.Rejected _ | Qdb.Overloaded _ -> g.g_rejected <- g.g_rejected + 1);
       g.g_max_pending <- max g.g_max_pending (Qdb.pending_count qdb)
     | Book user, None ->
       if Travel.is_book g.g_store user then g.g_committed <- g.g_committed + 1
       else g.g_rejected <- g.g_rejected + 1
     | Read_seat user, Some qdb -> ignore (Qdb.read qdb (Travel.seat_query user))
     | Read_seat user, None ->
       ignore (Solver.Query.all (Store.db g.g_store) (Travel.seat_query user)));
    let dt = Obs.Mclock.elapsed_s op_start in
    match op with
    | Book _ -> g.g_time_updates <- g.g_time_updates +. dt
    | Read_seat _ -> g.g_time_reads <- g.g_time_reads +. dt
  in
  (* Route the global stream op by op; per-owner FIFO keeps each flight's
     sub-order. *)
  List.iter
    (fun op ->
      let u = match op with Book u | Read_seat u -> u in
      Actor.Runtime.post rt ~key:u.Travel.flight (fun g -> apply g op))
    ops;
  (* Deferred assignments ground at the end, on their owners. *)
  List.iter
    (fun f ->
      Actor.Runtime.post rt ~key:f (fun g ->
          match g.g_qdb with
          | Some qdb -> ignore (Qdb.ground_all qdb)
          | None -> ()))
    flights;
  Actor.Runtime.drain rt;
  let total_time_s = Obs.Mclock.elapsed_s start in
  (* Merge on the driver, in flight order — safe after [drain] (every
     actor is parked, and the barrier round-trip ordered our reads). *)
  let committed = ref 0 and rejected = ref 0 in
  let max_pending = ref 0 in
  let time_reads = ref 0. and time_updates = ref 0. in
  let coordinated = ref 0 and max_possible = ref 0 in
  (Obs.Flight.time Obs.Flight.Merge @@ fun () ->
   Obs.Trace.span ~cat:"shard"
     ~args:(fun () -> [ ("groups", Obs.Trace.Int (List.length flights)) ])
     "actor.merge"
   @@ fun () ->
   List.iter
     (fun flight ->
       match Actor.Runtime.group rt ~key:flight with
       | None -> ()
       | Some g ->
         (match g.g_qdb with
          | Some qdb -> Quantum.Metrics.merge ~into:metrics_sink (Qdb.metrics qdb)
          | None -> ());
         committed := !committed + g.g_committed;
         rejected := !rejected + g.g_rejected;
         max_pending := max !max_pending g.g_max_pending;
         time_reads := !time_reads +. g.g_time_reads;
         time_updates := !time_updates +. g.g_time_updates;
         let db = Store.db g.g_store in
         let shard_users = List.filter (fun u -> u.Travel.flight = flight) users in
         coordinated := !coordinated + Travel.coordinated_users db shard_users;
         max_possible := !max_possible + Travel.max_coordination spec.geometry shard_users;
         (match collect with
          | Some f -> f ~flight:g.g_flight db
          | None -> ()))
     flights);
  let stats = Actor.Runtime.stats rt in
  let report =
    {
      actors_requested = Actor.Runtime.requested rt;
      actors_live = Actor.Runtime.live rt;
      busy_s =
        Array.fold_left
          (fun acc (s : Actor.Runtime.stats) -> acc +. (float_of_int s.Actor.Runtime.busy_ns *. 1e-9))
          0. stats;
      messages =
        Array.fold_left (fun acc (s : Actor.Runtime.stats) -> acc + s.Actor.Runtime.messages) 0 stats;
    }
  in
  ( {
      cumulative_ms = [||];
      total_time_s;
      committed = !committed;
      rejected = !rejected;
      coordinated = !coordinated;
      max_possible = !max_possible;
      coordination_pct =
        (if !max_possible = 0 then 0.
         else 100. *. float_of_int !coordinated /. float_of_int !max_possible);
      max_pending = !max_pending;
      time_reads_s = !time_reads;
      time_updates_s = !time_updates;
      ops = List.length ops;
    },
    report )

let run engine spec =
  let rng = Prng.create spec.seed in
  let store = Flights.fresh_store spec.geometry in
  let ops, users = build_ops spec rng in
  let n = List.length ops in
  let cumulative_ms = Array.make n 0. in
  let committed = ref 0 and rejected = ref 0 in
  let max_pending = ref 0 in
  let time_reads = ref 0. and time_updates = ref 0. in
  let qdb =
    match engine with
    | Quantum_engine config -> Some (Qdb.create ~config store)
    | Intelligent_social -> None
  in
  let start = Obs.Mclock.now_ns () in
  List.iteri
    (fun i op ->
      let op_start = Obs.Mclock.now_ns () in
      (match op, qdb with
       | Book user, Some qdb ->
         (match Qdb.submit qdb (Travel.entangled_txn user) with
          | Qdb.Committed _ -> incr committed
          | Qdb.Rejected _ | Qdb.Overloaded _ -> incr rejected);
         max_pending := max !max_pending (Qdb.pending_count qdb)
       | Book user, None -> if Travel.is_book store user then incr committed else incr rejected
       | Read_seat user, Some qdb -> ignore (Qdb.read qdb (Travel.seat_query user))
       | Read_seat user, None ->
         ignore (Solver.Query.all (Store.db store) (Travel.seat_query user)));
      let dt = Obs.Mclock.elapsed_s op_start in
      (match op with
       | Book _ -> time_updates := !time_updates +. dt
       | Read_seat _ -> time_reads := !time_reads +. dt);
      cumulative_ms.(i) <- Obs.Mclock.elapsed_s start *. 1000.)
    ops;
  (* Deferred assignments that never collapsed are fixed at the end (the
     travellers eventually check in). *)
  (match qdb with
   | Some qdb -> ignore (Qdb.ground_all qdb)
   | None -> ());
  let total_time_s = Obs.Mclock.elapsed_s start in
  (match qdb with
   | Some qdb -> Quantum.Metrics.merge ~into:metrics_sink (Qdb.metrics qdb)
   | None -> ());
  let db = Store.db store in
  let coordinated = Travel.coordinated_users db users in
  let max_possible = Travel.max_coordination spec.geometry users in
  {
    cumulative_ms;
    total_time_s;
    committed = !committed;
    rejected = !rejected;
    coordinated;
    max_possible;
    coordination_pct =
      (if max_possible = 0 then 0. else 100. *. float_of_int coordinated /. float_of_int max_possible);
    max_pending = !max_pending;
    time_reads_s = !time_reads;
    time_updates_s = !time_updates;
    ops = n;
  }

(** Workload runner: the measurement loop behind Figures 5–9 and Tables
    1–2 — drives one generated operation stream against the quantum engine
    or the Intelligent Social baseline on identical substrates. *)

type engine =
  | Quantum_engine of Quantum.Qdb.config
  | Intelligent_social

type spec = {
  geometry : Flights.geometry;
  order : Travel.order;
  seed : int;
  read_fraction : float;  (** reads as a fraction of all operations *)
  pairs_per_flight : int;
}

val default_spec : spec
(** The Figure 5/6 setting: one flight, 34 rows (102 seats), 102 users. *)

type op =
  | Book of Travel.user
  | Read_seat of Travel.user

type outcome = {
  cumulative_ms : float array;
  total_time_s : float;
  committed : int;
  rejected : int;
  coordinated : int;
  max_possible : int;
  coordination_pct : float;
  max_pending : int;
  time_reads_s : float;
  time_updates_s : float;
  ops : int;
}

val build_ops : spec -> Prng.t -> op list * Travel.user list
(** The operation stream (bookings in arrival order with reads injected)
    and the users issuing bookings. *)

val run : engine -> spec -> outcome
(** Execute the stream; for the quantum engine, any transaction still
    pending at the end is grounded before coordination is measured. *)

val run_sharded :
  ?pool:Par.Pool.t ->
  ?collect:(flight:int -> Relational.Database.t -> unit) ->
  engine ->
  spec ->
  outcome
(** Figure-7 domain-parallel execution: the same global stream as {!run}
    (same seed, same PRNG consumption) split by flight — flights are
    independent partitions by construction — with each shard on a private
    store + engine, run across [pool]'s domains when given.  Admission
    outcomes, groundings and coordination are identical at any pool size.
    [collect] is invoked on the calling thread, per flight in ascending
    order, with the shard's final database.  [cumulative_ms] is empty and
    [max_pending] is the per-shard max. *)

type actor_report = {
  actors_requested : int;
  actors_live : int;  (** after the hardware clamp *)
  busy_s : float;  (** summed actor task time across live actors *)
  messages : int;
}

val run_actors :
  ?mailbox_capacity:int ->
  ?clamp:bool ->
  ?collect:(flight:int -> Relational.Database.t -> unit) ->
  actors:int ->
  engine ->
  spec ->
  outcome * actor_report
(** Shared-nothing actor execution: one long-lived domain owns each
    flight group end-to-end (store, engine, admission, grounding, WAL),
    and the driver routes the global stream op by op through bounded
    mailboxes — no per-flight pool jobs, no centralized queue wait.
    Same stream and PRNG consumption as {!run_sharded}; per-owner FIFO
    preserves per-flight order, so admission outcomes are bit-identical
    to {!run_sharded} and across actor counts.  [clamp] (default true)
    limits spawned domains to the host's recommended parallelism; the
    report records requested vs live actors and their summed busy
    time. *)

val metrics_sink : Quantum.Metrics.t
(** Engine metrics merged across every quantum run in this process —
    snapshot it with {!Quantum.Metrics.snapshot} for telemetry export. *)

val reset_metrics_sink : unit -> unit
